package rational

import "math/big"

// Solve solves the square linear system A·x = b exactly by Gaussian
// elimination with partial (first-nonzero) pivoting over rationals.
// It returns (x, true) if A is nonsingular, and (nil, false) otherwise.
// A and b are not modified.
func Solve(a *Matrix, b Vector) (Vector, bool) {
	n := a.Rows
	if a.Cols != n || len(b) != n {
		panic("rational: Solve requires a square system")
	}
	// Augmented working copy.
	w := NewMatrix(n, n+1)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			w.Set(i, j, a.At(i, j))
		}
		w.Set(i, n, b[i])
	}
	t := new(big.Rat)
	for col := 0; col < n; col++ {
		// Find a pivot row.
		pivot := -1
		for r := col; r < n; r++ {
			if !IsZero(w.At(r, col)) {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, false // singular
		}
		if pivot != col {
			for j := col; j <= n; j++ {
				pv, cv := Clone(w.At(pivot, j)), Clone(w.At(col, j))
				w.Set(pivot, j, cv)
				w.Set(col, j, pv)
			}
		}
		// Normalize the pivot row.
		inv := new(big.Rat).Inv(w.At(col, col))
		for j := col; j <= n; j++ {
			w.Set(col, j, t.Mul(w.At(col, j), inv))
		}
		// Eliminate below and above.
		for r := 0; r < n; r++ {
			if r == col || IsZero(w.At(r, col)) {
				continue
			}
			factor := Clone(w.At(r, col))
			for j := col; j <= n; j++ {
				t.Mul(factor, w.At(col, j))
				w.Set(r, j, new(big.Rat).Sub(w.At(r, j), t))
			}
		}
	}
	x := make(Vector, n)
	for i := 0; i < n; i++ {
		x[i] = Clone(w.At(i, n))
	}
	return x, true
}

// Rank returns the rank of a, computed by exact row reduction. a is not
// modified.
func Rank(a *Matrix) int {
	w := a.Clone()
	t := new(big.Rat)
	rank := 0
	for col := 0; col < w.Cols && rank < w.Rows; col++ {
		pivot := -1
		for r := rank; r < w.Rows; r++ {
			if !IsZero(w.At(r, col)) {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			continue
		}
		if pivot != rank {
			for j := 0; j < w.Cols; j++ {
				pv, cv := Clone(w.At(pivot, j)), Clone(w.At(rank, j))
				w.Set(pivot, j, cv)
				w.Set(rank, j, pv)
			}
		}
		inv := new(big.Rat).Inv(w.At(rank, col))
		for j := 0; j < w.Cols; j++ {
			w.Set(rank, j, t.Mul(w.At(rank, j), inv))
		}
		for r := 0; r < w.Rows; r++ {
			if r == rank || IsZero(w.At(r, col)) {
				continue
			}
			factor := Clone(w.At(r, col))
			for j := 0; j < w.Cols; j++ {
				t.Mul(factor, w.At(rank, j))
				w.Set(r, j, new(big.Rat).Sub(w.At(r, j), t))
			}
		}
		rank++
	}
	return rank
}
