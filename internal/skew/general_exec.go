package skew

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/data"
	"repro/internal/hashing"
	"repro/internal/hypercube"
	"repro/internal/join"
	"repro/internal/mpc"
	"repro/internal/query"
)

// exclCheck is one overweight-exclusion test for a tuple of an atom within
// a bin combination: project the tuple onto attrs and compare its frequency
// against the overweight threshold for the extension variables extra.
type exclCheck struct {
	attrs []int // attribute positions within the atom (sorted), ⊋ x_j
	extra []int // the variables of attrs − x_j (global indices)
}

// atomPlan is the routing plan of one atom within one bin combination.
type atomPlan struct {
	xjAttrs      []int            // positions of x_j in the atom (sorted)
	blocksByProj map[string][]int // projected-value key → block bases
	allBases     []int            // used when x_j = ∅
	exclude      []exclCheck
}

// comboPlan is the executable layout of one bin combination: an HC subgrid
// of blockSize virtual servers per assignment h ∈ C'(B).
type comboPlan struct {
	combo     *binCombo
	freeDims  []int // V−x, sorted (grid dimensions)
	shares    []int // integer share per free dim, product = blockSize
	strides   []int
	blockSize int
	byAtom    []atomPlan
}

// execute lays out virtual servers, routes the database in one round, and
// computes the answers.
func (gs *generalState) execute(cfg GeneralConfig) GeneralResult {
	keys := make([]string, 0, len(gs.combos))
	for key, b := range gs.combos {
		if len(b.cprime) > 0 {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)

	virtual := 0
	predicted := 0.0
	var plans []*comboPlan
	// comboRange[i] is the virtual-ID range [lo, hi) of plans[i].
	type vrange struct{ lo, hi int }
	var comboRanges []vrange
	for _, key := range keys {
		b := gs.combos[key]
		rangeLo := virtual
		var freeDims []int
		for i := 0; i < gs.q.NumVars(); i++ {
			if !b.x.Contains(i) {
				freeDims = append(freeDims, i)
			}
		}
		ideal := make([]float64, len(freeDims))
		for di, v := range freeDims {
			ideal[di] = math.Pow(float64(gs.p), b.expo[v])
		}
		budget := int(math.Pow(float64(gs.p), 1-b.alpha))
		if budget < 1 {
			budget = 1
		}
		shares := hypercube.RoundToBudget(ideal, budget)
		blockSize := 1
		strides := make([]int, len(shares))
		for i := len(shares) - 1; i >= 0; i-- {
			strides[i] = blockSize
			blockSize *= shares[i]
		}
		plan := &comboPlan{
			combo: b, freeDims: freeDims, shares: shares,
			strides: strides, blockSize: blockSize,
			byAtom: make([]atomPlan, gs.q.NumAtoms()),
		}
		// Deterministic block layout per assignment.
		hKeys := make([]string, 0, len(b.cprime))
		for hk := range b.cprime {
			hKeys = append(hKeys, hk)
		}
		sort.Strings(hKeys)
		bases := make(map[string]int, len(hKeys))
		for _, hk := range hKeys {
			bases[hk] = virtual
			virtual += blockSize
		}
		// Per-atom projections and exclusion checks.
		for j := range gs.q.Atoms {
			ap := atomPlan{blocksByProj: make(map[string][]int)}
			for _, hk := range hKeys {
				h := b.cprime[hk]
				attrs, vals, ok := gs.atomProj(j, b.xSorted, h)
				if !ok {
					ap.allBases = append(ap.allBases, bases[hk])
					continue
				}
				ap.xjAttrs = attrs
				pk := vals.Key()
				ap.blocksByProj[pk] = append(ap.blocksByProj[pk], bases[hk])
			}
			ap.exclude = gs.exclusionChecks(j, b)
			plan.byAtom[j] = ap
		}
		plans = append(plans, plan)
		comboRanges = append(comboRanges, vrange{rangeLo, virtual})
		if pl := math.Pow(float64(gs.p), b.lambda); pl > predicted {
			predicted = pl
		}
	}
	if cfg.MaxVirtual > 0 && virtual > cfg.MaxVirtual {
		panic(fmt.Sprintf("skew: %d virtual servers exceed cap %d", virtual, cfg.MaxVirtual))
	}
	if virtual == 0 {
		virtual = 1
	}

	atomIndex := make(map[string]int, gs.q.NumAtoms())
	for j, a := range gs.q.Atoms {
		atomIndex[a.Name] = j
	}
	family := hashing.NewFamily(cfg.Seed)

	router := mpc.RouterFunc(func(rel string, t data.Tuple, dst []int) []int {
		j, ok := atomIndex[rel]
		if !ok {
			return dst
		}
		for _, plan := range plans {
			ap := &plan.byAtom[j]
			// Overweight exclusion (the S^(B)_j membership test).
			excluded := false
			rs := gs.st[rel]
			for _, ec := range ap.exclude {
				proj := make(data.Tuple, len(ec.attrs))
				for pi, a := range ec.attrs {
					proj[pi] = t[a]
				}
				freq := rs.Freq(ec.attrs, proj)
				if freq > 0 && float64(freq) > gs.overweightThreshold(plan.combo, j, ec.extra) {
					excluded = true
					break
				}
			}
			if excluded {
				continue
			}
			var bases []int
			if len(ap.xjAttrs) == 0 {
				bases = ap.allBases
			} else {
				proj := make(data.Tuple, len(ap.xjAttrs))
				for pi, a := range ap.xjAttrs {
					proj[pi] = t[a]
				}
				bases = ap.blocksByProj[proj.Key()]
			}
			if len(bases) == 0 {
				continue
			}
			dst = gs.appendSubcube(dst, plan, j, t, bases, family)
		}
		return dst
	})

	cluster := mpc.NewCluster(virtual)
	if err := cluster.Round(gs.db, router); err != nil {
		panic(fmt.Sprintf("skew: routing failed: %v", err))
	}
	var output []data.Tuple
	if !cfg.SkipJoin {
		q := gs.q
		output = cluster.Compute(func(s *mpc.Server) []data.Tuple {
			return join.Join(q, s.Received)
		})
		output = join.Dedup(output)
	}

	res := GeneralResult{
		Output:         output,
		VirtualServers: virtual,
		NumBinCombos:   len(plans),
		PredictedBits:  predicted,
	}
	res.ByCombo = make([]ComboLoad, len(plans))
	for pi, plan := range plans {
		res.ByCombo[pi] = ComboLoad{
			Vars:      append([]int(nil), plan.combo.xSorted...),
			Bins:      append([]int(nil), plan.combo.bins...),
			CSize:     len(plan.combo.cprime),
			Lambda:    plan.combo.lambda,
			Predicted: math.Pow(float64(gs.p), plan.combo.lambda),
		}
	}
	physical := make([]int64, gs.p)
	for _, sv := range cluster.Servers {
		if sv.BitsIn > res.MaxVirtualBits {
			res.MaxVirtualBits = sv.BitsIn
		}
		for pi, vr := range comboRanges {
			if sv.ID >= vr.lo && sv.ID < vr.hi && sv.BitsIn > res.ByCombo[pi].MaxBits {
				res.ByCombo[pi].MaxBits = sv.BitsIn
			}
		}
		physical[sv.ID%gs.p] += sv.BitsIn
	}
	for _, bbits := range physical {
		if bbits > res.MaxPhysicalBits {
			res.MaxPhysicalBits = bbits
		}
	}
	return res
}

// appendSubcube appends, for every base block, the servers of the HC
// subcube that tuple t of atom j occupies: dimensions of vars(S_j)−x_j are
// fixed by hashing, the remaining free dimensions replicate.
func (gs *generalState) appendSubcube(dst []int, plan *comboPlan, j int, t data.Tuple, bases []int, family *hashing.Family) []int {
	nd := len(plan.freeDims)
	coords := make([]int, nd)
	fixed := make([]bool, nd)
	for di, dim := range plan.freeDims {
		if pos := gs.varPos[j][dim]; pos >= 0 {
			coords[di] = family.Hash(dim, t[pos], plan.shares[di])
			fixed[di] = true
		}
	}
	var rec func(di, offset int)
	rec = func(di, offset int) {
		if di == nd {
			for _, base := range bases {
				dst = append(dst, base+offset)
			}
			return
		}
		if fixed[di] {
			rec(di+1, offset+coords[di]*plan.strides[di])
			return
		}
		for c := 0; c < plan.shares[di]; c++ {
			rec(di+1, offset+c*plan.strides[di])
		}
	}
	rec(0, 0)
	return dst
}

// exclusionChecks enumerates the overweight tests for atom j within B: all
// attribute subsets x” ⊆ vars(S_j) that properly extend x_j (any
// non-empty subset when x_j = ∅).
func (gs *generalState) exclusionChecks(j int, b *binCombo) []exclCheck {
	atom := gs.q.Atoms[j]
	var xjPos []int
	inXj := make(map[int]bool)
	for _, v := range atom.Vars {
		if b.x.Contains(v) {
			xjPos = append(xjPos, gs.varPos[j][v])
			inXj[gs.varPos[j][v]] = true
		}
	}
	sort.Ints(xjPos)
	var outside []int // positions of vars(S_j) − x_j
	for pos := range atom.Vars {
		if !inXj[pos] {
			outside = append(outside, pos)
		}
	}
	var checks []exclCheck
	for mask := 1; mask < 1<<len(outside); mask++ {
		attrs := append([]int(nil), xjPos...)
		var extra []int
		for bit, pos := range outside {
			if mask&(1<<bit) != 0 {
				attrs = append(attrs, pos)
				extra = append(extra, atom.Vars[pos])
			}
		}
		sort.Ints(attrs)
		checks = append(checks, exclCheck{attrs: attrs, extra: extra})
	}
	return checks
}

// BinCombos exposes, for inspection and tests, the bin combinations built
// for q over db at p servers, as (variable set, bins, |C'|, λ) tuples.
type BinComboInfo struct {
	Vars   []int
	Bins   []int
	CSize  int
	Lambda float64
	Alpha  float64
}

// InspectBinCombos runs only the construction phase and reports the combos
// (with the practical overweight factor of GeneralConfig's default).
func InspectBinCombos(q *query.Query, db *data.Database, p int) []BinComboInfo {
	gs := newGeneralState(q, db, p)
	gs.applyOverweightFactor(GeneralConfig{})
	gs.buildCombos()
	keys := make([]string, 0, len(gs.combos))
	for key, b := range gs.combos {
		if len(b.cprime) > 0 {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	var out []BinComboInfo
	for _, key := range keys {
		b := gs.combos[key]
		out = append(out, BinComboInfo{
			Vars:   append([]int(nil), b.xSorted...),
			Bins:   append([]int(nil), b.bins...),
			CSize:  len(b.cprime),
			Lambda: b.lambda,
			Alpha:  b.alpha,
		})
	}
	return out
}
