package rounds

import (
	"testing"

	"repro/internal/data"
	"repro/internal/join"
	"repro/internal/query"
	"repro/internal/workload"
)

func dbFor(q *query.Query, m int, domain int64, seed int64) *data.Database {
	specs := make([]workload.AtomSpec, q.NumAtoms())
	for j, a := range q.Atoms {
		d := domain
		if a.Arity() == 1 && d < int64(4*m) {
			d = int64(4 * m) // keep unary relations sparse enough to sample
		}
		specs[j] = workload.AtomSpec{Name: a.Name, Arity: a.Arity(), M: m, Domain: d}
	}
	return workload.ForQuery(specs, seed)
}

func TestBuildPlanShapes(t *testing.T) {
	cases := []struct {
		q         *query.Query
		steps     int
		cartesian int // steps with no join vars
	}{
		{query.Join2(), 1, 0},
		{query.Triangle(), 2, 0},
		{query.Path(3), 2, 0},
		{query.Star(3), 2, 0},
		{query.Cartesian(2), 1, 1},
	}
	for _, c := range cases {
		plan := BuildPlan(c.q)
		if len(plan.Steps) != c.steps {
			t.Errorf("%s: %d steps, want %d", c.q.Name, len(plan.Steps), c.steps)
		}
		cart := 0
		for _, st := range plan.Steps {
			if len(st.JoinVars) == 0 {
				cart++
			}
		}
		if cart != c.cartesian {
			t.Errorf("%s: %d cartesian steps, want %d", c.q.Name, cart, c.cartesian)
		}
		// Final schema covers all variables.
		last := plan.Steps[len(plan.Steps)-1]
		if len(last.OutVars) != c.q.NumVars() {
			t.Errorf("%s: final schema %v misses variables", c.q.Name, last.OutVars)
		}
	}
}

func TestBuildPlanConnectedAvoidsCartesian(t *testing.T) {
	plan := BuildPlan(query.Cycle(4))
	for i, st := range plan.Steps {
		if len(st.JoinVars) == 0 {
			t.Errorf("step %d of C4 plan is cartesian", i)
		}
	}
}

func TestRunMatchesReference(t *testing.T) {
	for _, q := range []*query.Query{
		query.Join2(), query.Triangle(), query.Path(3), query.Star(2), query.Cartesian(2), query.Cycle(4),
	} {
		db := dbFor(q, 250, 40, 7)
		want := join.Join(q, join.FromDatabase(db))
		for _, skewAware := range []bool{false, true} {
			res := Run(BuildPlan(q), db, Config{P: 8, Seed: 3, SkewAware: skewAware})
			if !join.EqualTupleSets(res.Output, want) {
				t.Errorf("%s skewAware=%v: %d vs %d tuples",
					q.Name, skewAware, len(res.Output), len(want))
			}
		}
	}
}

func TestRunHeadOrderCorrect(t *testing.T) {
	// Query whose plan order differs from head order: verify column
	// permutation back into head order.
	q := query.MustParse("q(a,b,c) = R(b,c), S(a,b)")
	db := data.NewDatabase()
	r := data.NewRelation("R", 2, 100)
	r.Add(1, 2)
	s := data.NewRelation("S", 2, 100)
	s.Add(9, 1)
	db.Put(r)
	db.Put(s)
	res := Run(BuildPlan(q), db, Config{P: 4, Seed: 1})
	if len(res.Output) != 1 {
		t.Fatalf("output = %v", res.Output)
	}
	// Head (a,b,c) = (9,1,2).
	got := res.Output[0]
	if got[0] != 9 || got[1] != 1 || got[2] != 2 {
		t.Errorf("head order wrong: %v", got)
	}
}

func TestRunRoundsAccounting(t *testing.T) {
	q := query.Triangle()
	db := dbFor(q, 300, 50, 5)
	res := Run(BuildPlan(q), db, Config{P: 8, Seed: 2})
	if len(res.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(res.Rounds))
	}
	var sum int64
	var maxR int64
	for _, r := range res.Rounds {
		if r.MaxBits <= 0 || r.TotalBits < r.MaxBits {
			t.Errorf("bad round load %+v", r)
		}
		sum += r.MaxBits
		if r.MaxBits > maxR {
			maxR = r.MaxBits
		}
	}
	if res.SumMaxBits != sum || res.MaxBitsPerRound != maxR {
		t.Error("aggregate load bookkeeping wrong")
	}
}

func TestSkewAwareBeatsPlainOnSkewedStep(t *testing.T) {
	// Join2 with a single shared heavy z: the plain hash join's round has
	// Ω(m) max load; the skew-aware round splits it across a grid.
	q := query.Join2()
	db := data.NewDatabase()
	db.Put(workload.SingleValue("S1", 2, 1000, 100000, 1, 7, 1))
	db.Put(workload.SingleValue("S2", 2, 1000, 100000, 1, 7, 2))
	plan := BuildPlan(q)
	plain := Run(plan, db, Config{P: 64, Seed: 3})
	aware := Run(plan, db, Config{P: 64, Seed: 3, SkewAware: true})
	if !join.EqualTupleSets(plain.Output, aware.Output) {
		t.Fatal("modes disagree on output")
	}
	if aware.Rounds[0].MaxBits*4 > plain.Rounds[0].MaxBits {
		t.Errorf("skew-aware round (%d bits) not clearly below plain (%d bits)",
			aware.Rounds[0].MaxBits, plain.Rounds[0].MaxBits)
	}
}

func TestMultiRoundVsOneRoundTradeoffMatchings(t *testing.T) {
	// On matchings (tiny intermediates) the 2-round plan for C3 has
	// per-round load ~m/p, below the one-round HC's m/p^{2/3}.
	q := query.Triangle()
	db := data.NewDatabase()
	m := 4096
	for j, a := range q.Atoms {
		db.Put(workload.Matching(a.Name, 2, m, 1<<20, int64(j+1)))
	}
	res := Run(BuildPlan(q), db, Config{P: 64, Seed: 1})
	// Each round's max should be near 2m/p (both sides hashed), far below
	// m/p^{2/3}.
	bitsPer := db.MustGet("S1").BitsPerTuple()
	perRoundBudget := 6 * int64(m) / 64 * bitsPer // generous constant
	for i, r := range res.Rounds {
		if r.MaxBits > perRoundBudget {
			t.Errorf("round %d load %d exceeds ~m/p budget %d", i, r.MaxBits, perRoundBudget)
		}
	}
}

func TestRunPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Run(BuildPlan(query.Join2()), data.NewDatabase(), Config{P: 1}) },
		func() { BuildPlan(&query.Query{Name: "bad"}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRunSingleAtomQuery(t *testing.T) {
	q := query.MustParse("q(a,b) = R(b,a)")
	db := data.NewDatabase()
	r := data.NewRelation("R", 2, 10)
	r.Add(1, 2) // R(b=1, a=2) → head (a,b) = (2,1)
	db.Put(r)
	res := Run(BuildPlan(q), db, Config{P: 4, Seed: 1})
	if len(res.Output) != 1 || res.Output[0][0] != 2 || res.Output[0][1] != 1 {
		t.Errorf("single-atom output = %v", res.Output)
	}
	if len(res.Rounds) != 0 {
		t.Errorf("single atom should need 0 rounds, got %d", len(res.Rounds))
	}
}
