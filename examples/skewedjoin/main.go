// The §4.1 skew join end to end: detect heavy hitters, classify them into
// H1/H2/H12, allocate virtual processors per hitter, and compare the
// realized load against both the Eq. (10) prediction and the vanilla hash
// join that skew breaks.
package main

import (
	"fmt"

	"repro"
)

func main() {
	const (
		m      = 5000
		p      = 64
		domain = 1 << 20
	)
	// Zipf-skewed join columns: some z-values are heavy in both relations
	// (H12 -> per-hitter cartesian grids), some in one only (H1/H2 ->
	// partition + broadcast), the rest are light (plain hash join).
	db := repro.NewDatabase()
	db.Put(repro.ZipfRelation("S1", m, domain, 1, 1.4, 1000, 11))
	db.Put(repro.ZipfRelation("S2", m, domain, 1, 1.4, 1000, 12))

	res := repro.RunSkewJoin(db, repro.SkewJoinConfig{P: p, Seed: 3})
	fmt.Printf("skew join of two zipf(1.4) relations, m=%d each, p=%d\n\n", m, p)
	fmt.Printf("heavy hitters: %d jointly heavy (H12), %d heavy in S1 (H1), %d heavy in S2 (H2)\n",
		res.NumH12, res.NumH1, res.NumH2)
	fmt.Printf("virtual processors allocated: %d (Θ(p))\n\n", res.VirtualServers)
	fmt.Printf("answers:           %d tuples\n", len(res.Output))
	fmt.Printf("max virtual load:  %d bits\n", res.MaxVirtualBits)
	fmt.Printf("Eq. (10) predicts: %.0f bits  (measured/predicted = %.2fx)\n",
		res.PredictedBits, float64(res.MaxVirtualBits)/res.PredictedBits)

	vanillaOut, vanillaMax := repro.VanillaJoin(db, p, 3)
	fmt.Printf("\nvanilla hash join on z: %d tuples, max load %d bits\n", len(vanillaOut), vanillaMax)
	fmt.Printf("skew-aware advantage:   %.1fx lower max load\n",
		float64(vanillaMax)/float64(res.MaxVirtualBits))
}
