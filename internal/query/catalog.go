package query

import (
	"fmt"
	"strings"
)

// This file provides constructors for the query families the paper analyzes:
// cartesian products (§1), the two-relation join (Examples 3.3, 4.8), path
// queries L_ℓ (§2.2), cycles C_k including the triangle C3 (Eq. 4), and star
// queries.

// Cartesian returns the u-way cartesian product
// q(x1..xu) = S1(x1), ..., Su(xu).
func Cartesian(u int) *Query {
	if u < 1 {
		panic("query: Cartesian needs u >= 1")
	}
	q := &Query{Name: fmt.Sprintf("Cart%d", u)}
	for i := 0; i < u; i++ {
		q.Vars = append(q.Vars, fmt.Sprintf("x%d", i+1))
		q.Atoms = append(q.Atoms, Atom{Name: fmt.Sprintf("S%d", i+1), Vars: []int{i}})
	}
	return q
}

// Join2 returns q(x,y,z) = S1(x,z), S2(y,z) — the running example of
// Example 3.3 and §4.1.
func Join2() *Query {
	return &Query{
		Name: "Join2",
		Vars: []string{"x", "y", "z"},
		Atoms: []Atom{
			{Name: "S1", Vars: []int{0, 2}},
			{Name: "S2", Vars: []int{1, 2}},
		},
	}
}

// Path returns the length-ℓ path (chain) query
// L_ℓ(x1..x_{ℓ+1}) = S1(x1,x2), S2(x2,x3), ..., S_ℓ(x_ℓ,x_{ℓ+1}).
func Path(l int) *Query {
	if l < 1 {
		panic("query: Path needs l >= 1")
	}
	q := &Query{Name: fmt.Sprintf("L%d", l)}
	for i := 0; i <= l; i++ {
		q.Vars = append(q.Vars, fmt.Sprintf("x%d", i+1))
	}
	for i := 0; i < l; i++ {
		q.Atoms = append(q.Atoms, Atom{Name: fmt.Sprintf("S%d", i+1), Vars: []int{i, i + 1}})
	}
	return q
}

// Cycle returns the k-cycle query
// C_k(x1..xk) = S1(x1,x2), ..., S_{k-1}(x_{k-1},x_k), S_k(x_k,x1).
func Cycle(k int) *Query {
	if k < 3 {
		panic("query: Cycle needs k >= 3")
	}
	q := &Query{Name: fmt.Sprintf("C%d", k)}
	for i := 0; i < k; i++ {
		q.Vars = append(q.Vars, fmt.Sprintf("x%d", i+1))
	}
	for i := 0; i < k; i++ {
		q.Atoms = append(q.Atoms, Atom{Name: fmt.Sprintf("S%d", i+1), Vars: []int{i, (i + 1) % k}})
	}
	return q
}

// Triangle returns C3(x1,x2,x3) = S1(x1,x2), S2(x2,x3), S3(x3,x1) — Eq. (4).
func Triangle() *Query { return Cycle(3) }

// Star returns the star query with r leaves:
// Star_r(z,x1..xr) = S1(z,x1), ..., Sr(z,xr).
func Star(r int) *Query {
	if r < 1 {
		panic("query: Star needs r >= 1")
	}
	q := &Query{Name: fmt.Sprintf("Star%d", r)}
	q.Vars = append(q.Vars, "z")
	for i := 0; i < r; i++ {
		q.Vars = append(q.Vars, fmt.Sprintf("x%d", i+1))
		q.Atoms = append(q.Atoms, Atom{Name: fmt.Sprintf("S%d", i+1), Vars: []int{0, i + 1}})
	}
	return q
}

// Catalog returns a named suite of benchmark queries used across
// experiments and tests.
func Catalog() map[string]*Query {
	return map[string]*Query{
		"cart2":  Cartesian(2),
		"cart3":  Cartesian(3),
		"join2":  Join2(),
		"L3":     Path(3),
		"C3":     Triangle(),
		"C4":     Cycle(4),
		"star3":  Star(3),
		"binary": MustParse("q(x,y) = R(x,y)"),
	}
}

// CatalogNames returns the catalog keys in sorted order.
func CatalogNames() []string {
	c := Catalog()
	names := make([]string, 0, len(c))
	for n := range c {
		names = append(names, n)
	}
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && strings.Compare(names[j], names[j-1]) < 0; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	return names
}
