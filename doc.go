// Package repro is a from-scratch Go reproduction of "Skew in Parallel
// Query Processing" (Beame, Koutris, Suciu — PODS 2014): one-round
// evaluation of full conjunctive queries in the Massively Parallel
// Communication (MPC) model, with communication cost characterized by
// fractional edge packings.
//
// The package is a facade over the internal implementation:
//
//   - Engine (internal/core): plans and executes a query on p simulated
//     servers, choosing between plain HyperCube (§3), the specialized skew
//     join (§4.1), and the general bin-combination algorithm (§4.2) based
//     on heavy-hitter statistics. Every strategy lowers to a PhysicalPlan
//     run by the unified executor (internal/exec), and plans are cached
//     across Execute calls on unchanged inputs.
//   - Lower bounds (internal/bounds): the matching communication lower
//     bounds of Theorems 3.5 and 4.7, in bits.
//   - Packings (internal/packing): exact fractional edge packing polytope
//     vertices, pk(q), τ*, covers, and the AGM bound.
//   - Workloads (internal/workload): the synthetic instance generators the
//     experiments use (uniform, matching, Zipf, planted heavy hitters,
//     degree sequences).
//
// A minimal session:
//
//	q := repro.MustParseQuery("C3(x,y,z) = S1(x,y), S2(y,z), S3(z,x)")
//	db := repro.NewDatabase()
//	db.Put(repro.UniformRelation("S1", 2, 10000, 1<<20, 1))
//	db.Put(repro.UniformRelation("S2", 2, 10000, 1<<20, 2))
//	db.Put(repro.UniformRelation("S3", 2, 10000, 1<<20, 3))
//	res := repro.NewEngine(64, 0).Execute(q, db)
//	fmt.Println(len(res.Output), res.MaxLoadBits, res.Plan.Reason)
//
// See DESIGN.md for the planner/executor layering and system inventory;
// `go test -bench .` regenerates the paper-versus-measured experiment
// tables.
package repro
