// Command hcrun generates a synthetic database for a query and evaluates
// it in one MPC round, printing the plan the engine chose (HyperCube, skew
// join, or bin combinations), the realized loads, and the lower bound.
//
// Usage:
//
//	hcrun -q "q(x,y,z) = S1(x,z), S2(y,z)" -p 64 -m 20000 -zipf 1.6
//
// -zipf 0 generates skew-free matchings; larger exponents skew the last
// column of every relation.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/query"
	"repro/internal/workload"
)

func main() {
	qFlag := flag.String("q", "q(x,y,z) = S1(x,z), S2(y,z)", "query text")
	pFlag := flag.Int("p", 64, "number of servers")
	mFlag := flag.Int("m", 20000, "tuples per relation")
	zipfFlag := flag.Float64("zipf", 0, "zipf exponent for the last column (0 = skew-free)")
	seedFlag := flag.Uint64("seed", 1, "hash/workload seed")
	explainFlag := flag.Bool("explain", false, "print the full plan analysis (packings, shares, bins)")
	repeatFlag := flag.Int("repeat", 1, "execute the query this many times (repeats hit the plan cache)")
	flag.Parse()

	q, err := query.Parse(*qFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "hcrun: %v\n", err)
		os.Exit(2)
	}
	domain := int64(1 << 21)
	db := data.NewDatabase()
	for j, a := range q.Atoms {
		seed := int64(*seedFlag) + int64(j)*101
		var rel *data.Relation
		switch {
		case a.Arity() == 2 && *zipfFlag > 1:
			rel = workload.Zipf(a.Name, *mFlag, domain, 1, *zipfFlag, uint64(*mFlag/8), seed)
		case a.Arity() == 2:
			rel = workload.Matching(a.Name, 2, *mFlag, domain, seed)
		default:
			rel = workload.Uniform(a.Name, a.Arity(), *mFlag, domain, seed)
		}
		db.Put(rel)
	}

	engine := core.NewEngine(*pFlag, *seedFlag)
	if *explainFlag {
		fmt.Print(engine.Explain(q, db))
		return
	}
	plan := engine.PlanQuery(q, db)
	fmt.Printf("query:        %s\n", q)
	fmt.Printf("servers:      p = %d\n", *pFlag)
	fmt.Printf("input:        %d relations × %d tuples (%d bits total)\n",
		q.NumAtoms(), *mFlag, db.TotalBits())
	fmt.Printf("plan:         %s\n", plan.Strategy)
	fmt.Printf("reason:       %s\n", plan.Reason)
	fmt.Printf("lower bound:  %.0f bits per server (Thm 1.2)\n\n", plan.LowerBoundBits)

	res := engine.Execute(q, db)
	for i := 1; i < *repeatFlag; i++ {
		res = engine.Execute(q, db)
	}
	fmt.Printf("answers:      %d tuples\n", len(res.Output))
	fmt.Printf("max load:     %d bits per (virtual) server\n", res.MaxLoadBits)
	if res.PredictedBits > 0 {
		fmt.Printf("predicted:    %.0f bits (algorithm's own bound)\n", res.PredictedBits)
	}
	if plan.LowerBoundBits > 0 {
		fmt.Printf("load / lower: %.2f×\n", float64(res.MaxLoadBits)/plan.LowerBoundBits)
	}
	if len(res.Plan.Shares) > 0 {
		fmt.Printf("shares:       %v\n", res.Plan.Shares)
	}
	if *repeatFlag > 1 {
		cs := engine.CacheStats()
		fmt.Printf("plan cache:   %d hits / %d misses / %d evictions over %d executions\n",
			cs.Hits, cs.Misses, cs.Evictions, *repeatFlag)
	}
}
