// Package rational provides exact linear algebra over arbitrary-precision
// rationals (math/big.Rat). It is the numeric substrate for the fractional
// edge-packing polytope enumeration and the exact simplex solver used to pick
// HyperCube shares: all pivoting decisions are made on exact values, so the
// optimizer is immune to floating-point degeneracy.
package rational

import (
	"fmt"
	"math/big"
	"strings"
)

// Zero returns a new rational equal to 0.
func Zero() *big.Rat { return new(big.Rat) }

// One returns a new rational equal to 1.
func One() *big.Rat { return big.NewRat(1, 1) }

// New returns the rational a/b. It panics if b == 0.
func New(a, b int64) *big.Rat { return big.NewRat(a, b) }

// FromInt returns the rational v/1.
func FromInt(v int64) *big.Rat { return big.NewRat(v, 1) }

// FromFloat converts a float64 losslessly into a rational. Every finite
// float64 has an exact binary-rational representation, so no precision is
// lost; NaN and infinities panic.
func FromFloat(f float64) *big.Rat {
	r := new(big.Rat).SetFloat64(f)
	if r == nil {
		panic(fmt.Sprintf("rational: cannot represent %v", f))
	}
	return r
}

// Clone returns a deep copy of r.
func Clone(r *big.Rat) *big.Rat { return new(big.Rat).Set(r) }

// IsZero reports whether r == 0.
func IsZero(r *big.Rat) bool { return r.Sign() == 0 }

// Vector is a dense vector of rationals. Elements are never nil after
// NewVector; operations allocate fresh big.Rats so vectors may be shared.
type Vector []*big.Rat

// NewVector returns a zero vector of length n.
func NewVector(n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = new(big.Rat)
	}
	return v
}

// VectorFromInts builds a vector from integer entries.
func VectorFromInts(vals ...int64) Vector {
	v := make(Vector, len(vals))
	for i, x := range vals {
		v[i] = big.NewRat(x, 1)
	}
	return v
}

// VectorFromFloats builds a vector from float64 entries (lossless).
func VectorFromFloats(vals ...float64) Vector {
	v := make(Vector, len(vals))
	for i, x := range vals {
		v[i] = FromFloat(x)
	}
	return v
}

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	w := make(Vector, len(v))
	for i, x := range v {
		w[i] = Clone(x)
	}
	return w
}

// Dot returns the inner product of v and w. It panics on length mismatch.
func (v Vector) Dot(w Vector) *big.Rat {
	if len(v) != len(w) {
		panic(fmt.Sprintf("rational: dot length mismatch %d vs %d", len(v), len(w)))
	}
	sum := new(big.Rat)
	t := new(big.Rat)
	for i := range v {
		sum.Add(sum, t.Mul(v[i], w[i]))
	}
	return sum
}

// Sum returns the sum of the entries of v.
func (v Vector) Sum() *big.Rat {
	sum := new(big.Rat)
	for _, x := range v {
		sum.Add(sum, x)
	}
	return sum
}

// Equal reports componentwise equality.
func (v Vector) Equal(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i].Cmp(w[i]) != 0 {
			return false
		}
	}
	return true
}

// Dominates reports whether v >= w componentwise.
func (v Vector) Dominates(w Vector) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i].Cmp(w[i]) < 0 {
			return false
		}
	}
	return true
}

// Floats converts v to float64s (with the usual rounding).
func (v Vector) Floats() []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i], _ = x.Float64()
	}
	return out
}

// String renders the vector as (a, b, c) using RatString forms.
func (v Vector) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = x.RatString()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Matrix is a dense rows×cols rational matrix.
type Matrix struct {
	Rows, Cols int
	data       []*big.Rat // row-major
}

// NewMatrix returns a zero matrix of the given shape.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("rational: negative matrix dimension")
	}
	d := make([]*big.Rat, rows*cols)
	for i := range d {
		d[i] = new(big.Rat)
	}
	return &Matrix{Rows: rows, Cols: cols, data: d}
}

// MatrixFromRows builds a matrix from row vectors, which must have equal
// lengths. The rows are deep-copied.
func MatrixFromRows(rows ...Vector) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic("rational: ragged rows")
		}
		for j, x := range r {
			m.Set(i, j, x)
		}
	}
	return m
}

// At returns the element at (i, j). The returned value is owned by the
// matrix; callers must not mutate it.
func (m *Matrix) At(i, j int) *big.Rat { return m.data[i*m.Cols+j] }

// Set stores a copy of v at (i, j).
func (m *Matrix) Set(i, j int, v *big.Rat) { m.data[i*m.Cols+j].Set(v) }

// SetInt stores the integer v at (i, j).
func (m *Matrix) SetInt(i, j int, v int64) { m.data[i*m.Cols+j].SetInt64(v) }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	for i, x := range m.data {
		c.data[i].Set(x)
	}
	return c
}

// Row returns a deep copy of row i.
func (m *Matrix) Row(i int) Vector {
	v := make(Vector, m.Cols)
	for j := 0; j < m.Cols; j++ {
		v[j] = Clone(m.At(i, j))
	}
	return v
}

// MulVec returns m·v. It panics if len(v) != m.Cols.
func (m *Matrix) MulVec(v Vector) Vector {
	if len(v) != m.Cols {
		panic("rational: MulVec shape mismatch")
	}
	out := NewVector(m.Rows)
	t := new(big.Rat)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out[i].Add(out[i], t.Mul(m.At(i, j), v[j]))
		}
	}
	return out
}

// String renders the matrix row by row.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteString(m.Row(i).String())
		if i != m.Rows-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
