// Package skew implements the skew-aware one-round algorithms of §4 of
// Beame–Koutris–Suciu: the two-table skew join of §4.1 (light hitters by
// hash join, jointly-heavy hitters by per-hitter cartesian grids,
// one-sided-heavy hitters by partition+broadcast) and the general
// bin-combination algorithm of §4.2 for arbitrary conjunctive queries.
//
// Both algorithms allocate Θ(p) virtual processors (as the paper does) and
// run in a single communication round: every routing decision is a pure
// function of the tuple plus the pre-computed heavy-hitter statistics.
package skew

import (
	"math"
	"sort"

	"repro/internal/data"
	"repro/internal/exec"
	"repro/internal/hashing"
	"repro/internal/join"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/stats"
)

// hitterClass says how a z-value is treated by the skew join.
type hitterClass int

const (
	classLight hitterClass = iota
	classH1                // heavy in S1 only: partition S1 on x, broadcast S2
	classH2                // heavy in S2 only: partition S2 on y, broadcast S1
	classH12               // heavy in both: p1×p2 cartesian grid
)

// hitterPlan is the per-heavy-hitter server allocation.
type hitterPlan struct {
	class  hitterClass
	base   int // first virtual server of this hitter's block
	ph     int // number of virtual servers in the block
	p1, p2 int // grid split for classH12 (p1·p2 ≤ ph+slack)
}

// JoinConfig configures the §4.1 skew join of q(x,y,z) = S1(x,z), S2(y,z).
type JoinConfig struct {
	P    int
	Seed uint64
	// ThresholdNum/ThresholdDen scale the heavy-hitter threshold to
	// (Num/Den)·m/p; both default to 1 (the paper's m/p). Ablation A3.
	ThresholdNum, ThresholdDen int64
	// SkipJoin measures routing loads only (no local join, empty Output).
	SkipJoin bool
	// SampleSize, when positive, detects heavy hitters from a uniform
	// sample of that many tuples per relation instead of an exact pass —
	// the sampling practice the paper cites for skew joins. Misclassified
	// hitters only shift load, never correctness: every z-value is still
	// routed consistently by whichever class the (shared) estimate gave
	// it. SampleSeed fixes the sample.
	SampleSize int
	SampleSeed int64
}

// ClassLoads breaks the max virtual load down by the four §4.1 cases, in
// bits. The paper bounds each separately (light by m_j/p, H12 by L12, H1
// and H2 by partition+broadcast); the breakdown shows which case realizes
// the max.
type ClassLoads struct {
	Light, H1, H2, H12 int64
}

// JoinResult reports a skew-join run.
type JoinResult struct {
	Output []data.Tuple
	// MaxVirtualBits is the maximum load over virtual processors (what
	// Eq. 10 bounds); MaxPhysicalBits maps virtual servers onto the p
	// physical ones round-robin.
	MaxVirtualBits  int64
	MaxPhysicalBits int64
	VirtualServers  int
	// PredictedTuples is Eq. (10): max(m1/p, m2/p, L1, L2, L12) in tuples;
	// PredictedBits converts at 2·⌈log₂ n⌉ bits per tuple.
	PredictedTuples      float64
	PredictedBits        float64
	NumH1, NumH2, NumH12 int
	ByClass              ClassLoads
}

// joinShape is the §4.1 query shape extracted from q's own atoms: relation
// names, the position of the shared join variable z in each atom, and the
// hash dimensions (q's variable indices, so renamed queries route their
// own column order — no canonical-name remapping).
type joinShape struct {
	q                *query.Query
	name1, name2     string
	zPos1, zPos2     int // column of z in atom 1 / atom 2
	xPos1, xPos2     int // column of the private variable
	dimX, dimY, dimZ int
}

// shapeOf validates that q is the two-relation join q(x,y,z) = R(..), T(..)
// — two binary atoms sharing exactly one variable — and extracts its shape.
func shapeOf(q *query.Query) joinShape {
	if q.NumAtoms() != 2 || q.NumVars() != 3 ||
		q.Atoms[0].Arity() != 2 || q.Atoms[1].Arity() != 2 {
		panic("skew: PlanJoin needs two binary atoms over three variables: " + q.String())
	}
	a, b := q.Atoms[0], q.Atoms[1]
	sh := joinShape{q: q, name1: a.Name, name2: b.Name, zPos1: -1}
	for pa, va := range a.Vars {
		for pb, vb := range b.Vars {
			if va == vb {
				if sh.zPos1 >= 0 {
					panic("skew: PlanJoin needs exactly one shared variable: " + q.String())
				}
				sh.zPos1, sh.zPos2 = pa, pb
				sh.dimZ = va
			}
		}
	}
	if sh.zPos1 < 0 {
		panic("skew: PlanJoin needs a shared variable: " + q.String())
	}
	sh.xPos1, sh.xPos2 = 1-sh.zPos1, 1-sh.zPos2
	sh.dimX = a.Vars[sh.xPos1]
	sh.dimY = b.Vars[sh.xPos2]
	return sh
}

// JoinPlan is the §4.1 planner output: per-heavy-hitter virtual-server
// blocks lowered to the unified executor's PhysicalPlan, plus the class
// ranges needed for the per-class load breakdown. Plans are reusable
// across executions.
type JoinPlan struct {
	Phys                 *exec.PhysicalPlan
	NumH1, NumH2, NumH12 int
	PredictedTuples      float64
	PredictedBits        float64
	p                    int
	// classRanges are the hitter blocks in ascending virtual-ID order
	// ([0,p) is the implicit light range).
	classRanges []classRange
	skipJoin    bool
}

type classRange struct {
	lo, hi int
	class  hitterClass
}

// RunJoin executes the skew join for q(x,y,z) = S1(x,z), S2(y,z) over db
// (relations "S1", "S2", both binary with z in column 1) — the historical
// entry point; PlanJoin accepts any two-relation join shape under q's own
// names and column order.
func RunJoin(db *data.Database, cfg JoinConfig) JoinResult {
	return PlanJoin(query.Join2(), db, cfg).Execute(db)
}

// PlanJoin detects heavy hitters at threshold m_j/p and allocates virtual
// processors per §4.1 for the two-relation join q over db, routing q's own
// relation names and column order. Every routing decision of the produced
// plan is a pure function of the tuple plus the heavy-hitter statistics
// frozen at plan time.
func PlanJoin(q *query.Query, db *data.Database, cfg JoinConfig) *JoinPlan {
	if cfg.P < 1 {
		panic("skew: P must be >= 1")
	}
	sh := shapeOf(q)
	num, den := cfg.ThresholdNum, cfg.ThresholdDen
	if num <= 0 {
		num = 1
	}
	if den <= 0 {
		den = 1
	}
	s1, s2 := db.MustGet(sh.name1), db.MustGet(sh.name2)
	m1, m2 := int64(s1.Size()), int64(s2.Size())
	var f1, f2 *stats.FreqMap
	if cfg.SampleSize > 0 {
		f1 = stats.SampleFrequencies(s1, []int{sh.zPos1}, cfg.SampleSize, cfg.SampleSeed)
		f2 = stats.SampleFrequencies(s2, []int{sh.zPos2}, cfg.SampleSize, cfg.SampleSeed+1)
	} else {
		f1 = stats.Frequencies(s1, []int{sh.zPos1})
		f2 = stats.Frequencies(s2, []int{sh.zPos2})
	}
	thr1 := float64(m1) * float64(num) / (float64(cfg.P) * float64(den))
	thr2 := float64(m2) * float64(num) / (float64(cfg.P) * float64(den))

	// Classify heavy hitters. The paper's H_j sets use m_j(h) ≥ m_j/p.
	plans := make(map[int64]*hitterPlan)
	var h12Keys, h1Keys, h2Keys []int64
	for k, c1 := range f1.Counts {
		if float64(c1) < thr1 {
			continue
		}
		v := k.At(0)
		if float64(f2.Counts[k]) >= thr2 {
			plans[v] = &hitterPlan{class: classH12}
			h12Keys = append(h12Keys, v)
		} else {
			plans[v] = &hitterPlan{class: classH1}
			h1Keys = append(h1Keys, v)
		}
	}
	for k, c2 := range f2.Counts {
		if float64(c2) < thr2 {
			continue
		}
		v := k.At(0)
		if _, done := plans[v]; !done {
			plans[v] = &hitterPlan{class: classH2}
			h2Keys = append(h2Keys, v)
		}
	}
	sort.Slice(h12Keys, func(i, j int) bool { return h12Keys[i] < h12Keys[j] })
	sort.Slice(h1Keys, func(i, j int) bool { return h1Keys[i] < h1Keys[j] })
	sort.Slice(h2Keys, func(i, j int) bool { return h2Keys[i] < h2Keys[j] })

	count := func(f *stats.FreqMap, v int64) int64 { return f.Counts[data.Key1(v)] }

	// Server allocation (§4.1). Light hitters use virtual servers [0, p).
	next := cfg.P
	var sumK12, sumK1, sumK2 float64
	for _, v := range h12Keys {
		sumK12 += float64(count(f1, v)) * float64(count(f2, v))
	}
	for _, v := range h1Keys {
		sumK1 += float64(count(f1, v))
	}
	for _, v := range h2Keys {
		sumK2 += float64(count(f2, v))
	}
	for _, v := range h12Keys {
		pl := plans[v]
		k12 := float64(count(f1, v)) * float64(count(f2, v))
		pl.ph = int(math.Ceil(float64(cfg.P) * k12 / sumK12))
		// Grid split p1 ∝ sqrt(ph·m1(h)/m2(h)) as in §1, clamped so the
		// block never exceeds ph servers.
		r1 := float64(count(f1, v))
		r2 := float64(count(f2, v))
		pl.p1 = int(math.Round(math.Sqrt(float64(pl.ph) * r1 / r2)))
		if pl.p1 < 1 {
			pl.p1 = 1
		}
		if pl.p1 > pl.ph {
			pl.p1 = pl.ph
		}
		pl.p2 = pl.ph / pl.p1
		if pl.p2 < 1 {
			pl.p2 = 1
		}
		pl.base = next
		next += pl.p1 * pl.p2
	}
	for _, v := range h1Keys {
		pl := plans[v]
		pl.ph = int(math.Ceil(float64(cfg.P) * float64(count(f1, v)) / sumK1))
		pl.base = next
		next += pl.ph
	}
	for _, v := range h2Keys {
		pl := plans[v]
		pl.ph = int(math.Ceil(float64(cfg.P) * float64(count(f2, v)) / sumK2))
		pl.base = next
		next += pl.ph
	}
	virtual := next

	family := hashing.NewFamily(cfg.Seed)
	router := &joinRouter{
		sh:    sh,
		plans: plans,
		p:     cfg.P,
		zSeed: family.DimSeed(sh.dimZ),
		xSeed: family.DimSeed(sh.dimX),
		ySeed: family.DimSeed(sh.dimY),
	}

	jp := &JoinPlan{
		NumH1:    len(h1Keys),
		NumH2:    len(h2Keys),
		NumH12:   len(h12Keys),
		p:        cfg.P,
		skipJoin: cfg.SkipJoin,
	}
	// Class ranges in the virtual-ID space: [0,p) is light; hitter blocks
	// follow in allocation order (H12, H1, H2), so the ranges are sorted.
	for _, v := range h12Keys {
		pl := plans[v]
		jp.classRanges = append(jp.classRanges, classRange{pl.base, pl.base + pl.p1*pl.p2, classH12})
	}
	for _, v := range h1Keys {
		pl := plans[v]
		jp.classRanges = append(jp.classRanges, classRange{pl.base, pl.base + pl.ph, classH1})
	}
	for _, v := range h2Keys {
		pl := plans[v]
		jp.classRanges = append(jp.classRanges, classRange{pl.base, pl.base + pl.ph, classH2})
	}
	// Eq. (10): L = max(m1/p, m2/p, L1, L2, L12).
	p := float64(cfg.P)
	jp.PredictedTuples = math.Max(float64(m1)/p, float64(m2)/p)
	jp.PredictedTuples = math.Max(jp.PredictedTuples, math.Sqrt(sumK12/p))
	jp.PredictedTuples = math.Max(jp.PredictedTuples, math.Sqrt(sumK1/p))
	jp.PredictedTuples = math.Max(jp.PredictedTuples, math.Sqrt(sumK2/p))
	jp.PredictedBits = jp.PredictedTuples * float64(s1.BitsPerTuple())
	jp.Phys = &exec.PhysicalPlan{
		Strategy: "skew-join",
		Virtual:  virtual,
		Physical: cfg.P,
		Router:   router,
		// Route only the join's two relations: serving latency must not
		// scale with unrelated relations sharing the database.
		Relations: q.AtomNames(),
		Local: func(s *mpc.Server) []data.Tuple {
			return join.Join(q, s.Received)
		},
		PredictedBits: jp.PredictedBits,
	}
	// Heavy runs on the join column route span-wise (joinRouter implements
	// mpc.SpanRouter): one hitter-plan resolution per run instead of one map
	// lookup per tuple. In a self-join the router classifies the shared
	// relation by its first atom, so only that atom's column is hinted.
	jp.Phys.PartitionHints = []exec.PartitionHint{{Rel: sh.name1, Attr: sh.zPos1}}
	if sh.name2 != sh.name1 {
		jp.Phys.PartitionHints = append(jp.Phys.PartitionHints, exec.PartitionHint{Rel: sh.name2, Attr: sh.zPos2})
	}
	return jp
}

// joinRouter routes the §4.1 skew join: light z-values hash-join over
// servers [0,p), heavy hitters go to their per-hitter blocks. It carries
// only plan-time tables (hitter classes frozen into plans) and no mutable
// scratch, so one instance is safe for concurrent senders. The columnar
// entry point reads the z and x columns directly; no row is materialized.
type joinRouter struct {
	sh    joinShape
	plans map[int64]*hitterPlan
	p     int
	// Per-dimension hash seeds, precomputed at plan time.
	zSeed, xSeed, ySeed uint64
}

// Destinations implements mpc.Router.
//
//skewlint:noalloc
func (r *joinRouter) Destinations(rel string, t data.Tuple, dst []int) []int {
	// The database may carry relations outside the join (the engine no
	// longer isolates the two via a renamed copy); they are not routed.
	first := rel == r.sh.name1
	if !first && rel != r.sh.name2 {
		return dst
	}
	if first {
		return r.route(true, t[r.sh.zPos1], t[r.sh.xPos1], dst)
	}
	return r.route(false, t[r.sh.zPos2], t[r.sh.xPos2], dst)
}

// DestinationsAt implements mpc.ColumnRouter: identical routing, hashing
// the join columns in place.
//
//skewlint:noalloc
func (r *joinRouter) DestinationsAt(rel *data.Relation, row int, dst []int) []int {
	first := rel.Name == r.sh.name1
	if !first && rel.Name != r.sh.name2 {
		return dst
	}
	cols := rel.Columns()
	if first {
		return r.route(true, cols[r.sh.zPos1][row], cols[r.sh.xPos1][row], dst)
	}
	return r.route(false, cols[r.sh.zPos2][row], cols[r.sh.xPos2][row], dst)
}

// route appends the destinations of one tuple given its join value z and
// private value x.
//
//skewlint:noalloc
func (r *joinRouter) route(first bool, z, x int64, dst []int) []int {
	pl := r.plans[z]
	if pl == nil { // light: hash join on z over servers [0,p)
		return append(dst, hashing.HashSeeded(r.zSeed, z, r.p))
	}
	switch pl.class {
	case classH12:
		if first { // row fixed by hash(x), replicate across columns
			row := hashing.HashSeeded(r.xSeed, x, pl.p1)
			for c := 0; c < pl.p2; c++ {
				dst = append(dst, pl.base+row*pl.p2+c)
			}
		} else { // column fixed by hash(y), replicate across rows
			col := hashing.HashSeeded(r.ySeed, x, pl.p2)
			for rr := 0; rr < pl.p1; rr++ {
				dst = append(dst, pl.base+rr*pl.p2+col)
			}
		}
	case classH1:
		if first { // partition the heavy side on x
			dst = append(dst, pl.base+hashing.HashSeeded(r.xSeed, x, pl.ph))
		} else { // broadcast the light side
			for i := 0; i < pl.ph; i++ {
				dst = append(dst, pl.base+i)
			}
		}
	case classH2:
		if !first { // partition the heavy side on y
			dst = append(dst, pl.base+hashing.HashSeeded(r.ySeed, x, pl.ph))
		} else { // broadcast the light side
			for i := 0; i < pl.ph; i++ {
				dst = append(dst, pl.base+i)
			}
		}
	}
	return dst
}

// SpansAttr implements mpc.SpanRouter: the join column of either relation.
// (In a self-join both atoms resolve to name1, matching Destinations.)
func (r *joinRouter) SpansAttr(rel *data.Relation, attr int) bool {
	if rel.Name == r.sh.name1 {
		return attr == r.sh.zPos1
	}
	if rel.Name == r.sh.name2 {
		return attr == r.sh.zPos2
	}
	return false
}

// CompileSpan implements mpc.SpanRouter: the per-tuple work of route — the
// plans-map lookup and the class dispatch — happens once per heavy run.
// Light runs and broadcast sides compile to uniform destination lists the
// engine bulk-ships; partitioned grid sides still hash the private column
// per row, but through a closure with the hitter plan pre-resolved.
func (r *joinRouter) CompileSpan(rel *data.Relation, attr int, z int64, route *mpc.SpanRoute) bool {
	first := rel.Name == r.sh.name1
	pl := r.plans[z]
	if pl == nil { // light: every row of the run hash-joins to one server
		route.Dests = append(route.Dests, hashing.HashSeeded(r.zSeed, z, r.p))
		return true
	}
	cols := rel.Columns()
	switch pl.class {
	case classH12:
		base, p1, p2 := pl.base, pl.p1, pl.p2
		if first {
			col, seed := cols[r.sh.xPos1], r.xSeed
			route.PerRow = func(row int, dst []int) []int {
				gr := hashing.HashSeeded(seed, col[row], p1)
				for c := 0; c < p2; c++ {
					dst = append(dst, base+gr*p2+c)
				}
				return dst
			}
		} else {
			col, seed := cols[r.sh.xPos2], r.ySeed
			route.PerRow = func(row int, dst []int) []int {
				gc := hashing.HashSeeded(seed, col[row], p2)
				for rr := 0; rr < p1; rr++ {
					dst = append(dst, base+rr*p2+gc)
				}
				return dst
			}
		}
	case classH1:
		if first { // partition the heavy side on x
			base, ph := pl.base, pl.ph
			col, seed := cols[r.sh.xPos1], r.xSeed
			route.PerRow = func(row int, dst []int) []int {
				return append(dst, base+hashing.HashSeeded(seed, col[row], ph))
			}
		} else { // broadcast the light side wholesale
			for i := 0; i < pl.ph; i++ {
				route.Dests = append(route.Dests, pl.base+i)
			}
		}
	case classH2:
		if !first { // partition the heavy side on y
			base, ph := pl.base, pl.ph
			col, seed := cols[r.sh.xPos2], r.ySeed
			route.PerRow = func(row int, dst []int) []int {
				return append(dst, base+hashing.HashSeeded(seed, col[row], ph))
			}
		} else { // broadcast the light side wholesale
			for i := 0; i < pl.ph; i++ {
				route.Dests = append(route.Dests, pl.base+i)
			}
		}
	}
	return true
}

// classOf maps a virtual server ID to its §4.1 case.
func (jp *JoinPlan) classOf(id int) hitterClass {
	if id < jp.p {
		return classLight
	}
	i := sort.Search(len(jp.classRanges), func(i int) bool { return jp.classRanges[i].hi > id })
	if i < len(jp.classRanges) && id >= jp.classRanges[i].lo {
		return jp.classRanges[i].class
	}
	return classLight // unreachable for IDs the plan allocated
}

// Execute runs the plan on the unified executor and assembles the
// skew-join result, including the per-class load breakdown.
func (jp *JoinPlan) Execute(db *data.Database) JoinResult {
	res, _ := jp.ExecuteWith(db, exec.Config{}) // no ctx in the config: never errors
	return res
}

// ExecuteWith is Execute with caller-supplied executor configuration (the
// engine passes a pooled exec.Scratch for allocation-free load accounting
// on cached-plan re-executions). The only error is ec.Ctx's cancellation.
func (jp *JoinPlan) ExecuteWith(db *data.Database, ec exec.Config) (JoinResult, error) {
	ec.SkipCompute = ec.SkipCompute || jp.skipJoin
	er, err := exec.Run(jp.Phys, db, ec)
	if err != nil {
		return JoinResult{}, err
	}
	res := JoinResult{
		Output:          er.Output,
		MaxVirtualBits:  er.MaxVirtualBits,
		MaxPhysicalBits: er.MaxPhysicalBits,
		VirtualServers:  jp.Phys.Virtual,
		PredictedTuples: jp.PredictedTuples,
		PredictedBits:   jp.PredictedBits,
		NumH1:           jp.NumH1,
		NumH2:           jp.NumH2,
		NumH12:          jp.NumH12,
	}
	for id, bits := range er.PerServerBits {
		var slot *int64
		switch jp.classOf(id) {
		case classLight:
			slot = &res.ByClass.Light
		case classH1:
			slot = &res.ByClass.H1
		case classH2:
			slot = &res.ByClass.H2
		case classH12:
			slot = &res.ByClass.H12
		}
		if bits > *slot {
			*slot = bits
		}
	}
	return res, nil
}

// VanillaHashJoin runs the baseline standard hash join on z (shares
// (1,1,p)) for the same query, returning output and the max load in bits —
// the algorithm that degrades to Ω(m) under skew (Example 3.3).
func VanillaHashJoin(db *data.Database, p int, seed uint64) ([]data.Tuple, int64) {
	cluster := vanillaRound(db, p, seed)
	q := query.Join2()
	out := cluster.Compute(func(s *mpc.Server) []data.Tuple {
		return join.Join(q, s.Received)
	})
	return out, cluster.Loads().MaxBits
}

// VanillaHashJoinLoads is VanillaHashJoin without the local join: it
// reports only the max load in bits (communication is identical).
func VanillaHashJoinLoads(db *data.Database, p int, seed uint64) int64 {
	return vanillaRound(db, p, seed).Loads().MaxBits
}

func vanillaRound(db *data.Database, p int, seed uint64) *mpc.Cluster {
	family := hashing.NewFamily(seed)
	cluster := mpc.NewCluster(p)
	router := mpc.RouterFunc(func(rel string, t data.Tuple, dst []int) []int {
		return append(dst, family.Hash(2, t[1], p))
	})
	if err := cluster.Round(db, router); err != nil {
		panic(err)
	}
	return cluster
}
