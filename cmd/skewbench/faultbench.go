package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/exec"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/rounds"
)

// FaultBench is the committed BENCH_fault.json baseline for round-granular
// fault recovery on the triangle pipeline: for each communication round k, a
// seeded schedule tears exactly round k's first attempt, and the bench
// compares the transactional replay path (re-drive only round k against the
// surviving resident state) against the pre-recovery discipline (the torn
// execution fails wholesale and the caller re-executes the entire pipeline).
// Replaying round k skips re-routing rounds 1..k-1's base relations and
// re-computing their intermediates, so the mean recovered latency across
// torn rounds must come out strictly below the full-retry mean — that gap is
// the point of staged delivery commit.
type FaultBench struct {
	Instance string `json:"instance"`
	GoArch   string `json:"goarch"`
	NumCPU   int    `json:"num_cpu"`

	// PipelineRounds is the triangle pipeline's communication-round count.
	PipelineRounds int `json:"pipeline_rounds"`
	// CleanMs is the fault-free end-to-end pipeline latency (median).
	CleanMs float64 `json:"clean_ms"`
	// ReplayMsPerRound[k-1] is the recovered latency when round k tears and
	// is replayed in place; FullRetryMsPerRound[k-1] is the same fault
	// recovered by failing the execution and re-running the pipeline from
	// scratch. Medians over the sample count.
	ReplayMsPerRound    []float64 `json:"replay_ms_per_round"`
	FullRetryMsPerRound []float64 `json:"full_retry_ms_per_round"`
	// Means across torn rounds, and the acceptance check.
	ReplayMeanMs    float64 `json:"replay_mean_ms"`
	FullRetryMeanMs float64 `json:"full_retry_mean_ms"`
	ReplayCheaper   bool    `json:"replay_cheaper"`
}

// pipelineRoundCount counts the communication rounds one execution drives:
// one per stage input kind (resident shuffle, base routing).
func pipelineRoundCount(pipe *exec.Pipeline) int {
	n := 0
	for i := range pipe.Stages {
		if len(pipe.Stages[i].Resident) > 0 {
			n++
		}
		if len(pipe.Stages[i].Base) > 0 {
			n++
		}
	}
	return n
}

// findTearSeed returns a fault seed that tears exactly round k's first
// attempt and keeps every other round's first attempt — including the
// full-retry rerun's rounds k+1..k+total — clean, with round k's replay
// attempt clean too.
func findTearSeed(k, total uint64) (uint64, error) {
	for seed := uint64(0); seed < 200000; seed++ {
		f := &mpc.Faults{Seed: seed, TornRound: 0.5}
		if !f.WouldTearRoundAttempt(k, 1) || f.WouldTearRoundAttempt(k, 2) {
			continue
		}
		ok := true
		for r := uint64(1); r <= k+total; r++ {
			if r != k && f.WouldTearRoundAttempt(r, 1) {
				ok = false
				break
			}
		}
		if ok {
			return seed, nil
		}
	}
	return 0, fmt.Errorf("no fault seed tears exactly round %d of %d", k, total)
}

func medianMs(samples []time.Duration) float64 {
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return float64(samples[len(samples)/2].Nanoseconds()) / 1e6
}

// runFaultBench measures round-replay vs whole-execution recovery latency on
// the triangle pipeline and writes the JSON baseline.
func runFaultBench(path string) error {
	const samplesPerPoint = 9
	db := triangleMatchingsDB()
	q := query.Triangle()
	plan := rounds.PlanPipeline(q, db, rounds.Config{P: 64, Seed: 3})
	pipe := plan.Pipe
	total := pipelineRoundCount(pipe)

	out := FaultBench{
		Instance:       "triangle matchings m=5000 domain=2^20 p=64; torn round k healed on attempt 2",
		GoArch:         runtime.GOARCH,
		NumCPU:         runtime.NumCPU(),
		PipelineRounds: total,
	}

	clean := make([]time.Duration, 0, samplesPerPoint)
	for i := 0; i < samplesPerPoint; i++ {
		start := time.Now()
		if _, err := exec.RunPipeline(pipe, db, exec.Config{}); err != nil {
			return err
		}
		clean = append(clean, time.Since(start))
	}
	out.CleanMs = medianMs(clean)

	for k := 1; k <= total; k++ {
		seed, err := findTearSeed(uint64(k), uint64(total))
		if err != nil {
			return err
		}

		// Replay path: the budgeted retry re-drives only round k in place.
		// Backoff is disabled so the sample is pure recovery work.
		replay := make([]time.Duration, 0, samplesPerPoint)
		for i := 0; i < samplesPerPoint; i++ {
			f := &mpc.Faults{Seed: seed, TornRound: 0.5}
			var rec exec.Recovery
			start := time.Now()
			_, err := exec.RunPipeline(pipe, db, exec.Config{
				Faults:   f,
				Retry:    exec.Retry{BaseBackoff: -1},
				Recovery: &rec,
			})
			if err != nil {
				return fmt.Errorf("replay path, round %d: %w", k, err)
			}
			replay = append(replay, time.Since(start))
			if rec.RoundsReplayed != 1 {
				return fmt.Errorf("replay path, round %d: %d rounds replayed, want 1", k, rec.RoundsReplayed)
			}
		}
		out.ReplayMsPerRound = append(out.ReplayMsPerRound, medianMs(replay))

		// Full-retry path (the pre-recovery discipline): recovery disabled,
		// the torn execution fails wholesale, and the pipeline is re-executed
		// from scratch against the same fault stream.
		full := make([]time.Duration, 0, samplesPerPoint)
		for i := 0; i < samplesPerPoint; i++ {
			f := &mpc.Faults{Seed: seed, TornRound: 0.5}
			cfg := exec.Config{Faults: f, Retry: exec.Retry{MaxAttempts: -1}}
			start := time.Now()
			_, err := exec.RunPipeline(pipe, db, cfg)
			if !errors.Is(err, mpc.ErrTornRound) {
				return fmt.Errorf("full path, round %d: err = %v, want ErrTornRound", k, err)
			}
			if _, err := exec.RunPipeline(pipe, db, cfg); err != nil {
				return fmt.Errorf("full path rerun, round %d: %w", k, err)
			}
			full = append(full, time.Since(start))
		}
		out.FullRetryMsPerRound = append(out.FullRetryMsPerRound, medianMs(full))
	}

	for k := 0; k < total; k++ {
		out.ReplayMeanMs += out.ReplayMsPerRound[k] / float64(total)
		out.FullRetryMeanMs += out.FullRetryMsPerRound[k] / float64(total)
	}
	out.ReplayCheaper = out.ReplayMeanMs < out.FullRetryMeanMs
	if !out.ReplayCheaper {
		fmt.Fprintf(os.Stderr, "skewbench: faultbench: replay mean %.3fms not below full-retry mean %.3fms\n",
			out.ReplayMeanMs, out.FullRetryMeanMs)
	}

	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("fault baseline written to %s\n%s", path, blob)
	return nil
}
