// Fault recovery for the execution layer.
//
// The MPC model computes in rounds separated by barriers, which makes the
// round the natural unit of recovery: the sharded communication engine
// stages a round's deliveries and commits them only when every send part
// arrived (see internal/mpc/comm.go), so a torn round leaves resident state
// bit-identical to the pre-round state and can simply be re-driven. Run and
// RunPipeline build on that invariant — a fault in pipeline round k replays
// only round k, and a failed compute phase re-runs only the failed servers
// (local compute is a pure function of a server's fragments). Retry is the
// policy that bounds this recovery; Recovery reports how much of it an
// execution needed.
package exec

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/data"
	"repro/internal/hashing"
	"repro/internal/mpc"
)

// Defaults for the zero Retry value.
const (
	// DefaultRetryAttempts is the number of times a faulting unit of work
	// may be driven, counting the first try.
	DefaultRetryAttempts = 3
	// DefaultRetryBaseBackoff is the wait before the first retry.
	DefaultRetryBaseBackoff = time.Millisecond
	// DefaultRetryMaxBackoff caps the exponential backoff.
	DefaultRetryMaxBackoff = 100 * time.Millisecond
)

// Retry bounds an execution's fault recovery. The zero value is the default
// policy (DefaultRetryAttempts tries, exponential backoff from
// DefaultRetryBaseBackoff capped at DefaultRetryMaxBackoff, jittered).
type Retry struct {
	// MaxAttempts is the number of times any faulting unit of work — a
	// communication round, a compute phase's failing servers — may be
	// driven, counting the first try; the budget of MaxAttempts-1 retries
	// is shared across the whole execution, so a run can't burn unbounded
	// time recovering a persistently faulty cluster. 0 means
	// DefaultRetryAttempts; negative disables recovery entirely (faults
	// surface on first occurrence).
	MaxAttempts int
	// BaseBackoff is the wait before the first retry; each further retry
	// doubles it, capped at MaxBackoff. 0 means DefaultRetryBaseBackoff;
	// negative disables waiting.
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential backoff; 0 means
	// DefaultRetryMaxBackoff.
	MaxBackoff time.Duration
	// JitterSeed seeds the deterministic jitter applied to each wait
	// (uniform in [d/2, d)). Jitter is a pure hash of (JitterSeed, retry
	// number) — no global randomness, no wall clock — so a seeded run
	// backs off identically every time.
	JitterSeed uint64
	// Sleep, when non-nil, replaces the real timer wait; tests inject a
	// recording hook so every fault-recovery test stays sleep-free. It
	// receives the configured context (possibly nil) and the jittered
	// duration, and its error aborts the retry.
	Sleep func(ctx context.Context, d time.Duration) error
}

// retries resolves the retry budget the policy grants one execution.
func (r Retry) retries() int {
	switch {
	case r.MaxAttempts == 0:
		return DefaultRetryAttempts - 1
	case r.MaxAttempts < 1:
		return 0
	default:
		return r.MaxAttempts - 1
	}
}

// backoff returns the jittered wait before retry number `retry` (1-based).
func (r Retry) backoff(retry int) time.Duration {
	base := r.BaseBackoff
	if base < 0 {
		return 0
	}
	if base == 0 {
		base = DefaultRetryBaseBackoff
	}
	lim := r.MaxBackoff
	if lim <= 0 {
		lim = DefaultRetryMaxBackoff
	}
	d := base
	for i := 1; i < retry && d < lim; i++ {
		d *= 2
	}
	if d > lim {
		d = lim
	}
	h := hashing.Mix64(r.JitterSeed ^ hashing.Mix64(uint64(retry)))
	frac := float64(h>>11) / float64(uint64(1)<<53)
	return d/2 + time.Duration(float64(d/2)*frac)
}

// Wait blocks for retry number `retry`'s backoff (through the Sleep hook
// when set), recording it in rec. A canceled context aborts the wait.
// Exported so owners of higher-level retries (the standing-query reseed)
// share the same backoff policy and accounting.
func (r Retry) Wait(ctx context.Context, retry int, rec *Recovery) error {
	d := r.backoff(retry)
	if d <= 0 {
		return nil
	}
	rec.BackoffWaits++
	rec.Backoff += d
	if r.Sleep != nil {
		return r.Sleep(ctx, d)
	}
	if ctx == nil {
		//skewlint:allow nodeterminismbreak — the default for a nil Sleep hook and nil ctx is a real wait
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Recovery reports how much fault recovery one execution needed. The zero
// value means a clean run.
type Recovery struct {
	// Attempts is the number of recovery attempts consumed from the retry
	// budget: round replays plus failed-server recompute passes. This is
	// the generalization of the legacy Result.FaultRetries counter, which
	// is kept equal to it.
	Attempts int
	// RoundsReplayed counts communication rounds re-driven in place after
	// tearing.
	RoundsReplayed int
	// ServersRecomputed counts servers whose local compute was re-run
	// after a failed compute phase (successful servers' outputs are
	// retained, never recomputed).
	ServersRecomputed int
	// BackoffWaits counts the backoff waits taken; Backoff sums their
	// jittered durations (as scheduled — a wait cut short by cancellation
	// still counts in full).
	BackoffWaits int
	Backoff      time.Duration
}

// Add accumulates other into r (standing queries sum the recovery of their
// seed and advance executions).
func (r *Recovery) Add(other Recovery) {
	r.Attempts += other.Attempts
	r.RoundsReplayed += other.RoundsReplayed
	r.ServersRecomputed += other.ServersRecomputed
	r.BackoffWaits += other.BackoffWaits
	r.Backoff += other.Backoff
}

// retrier tracks one execution's shared recovery budget. The recovery it
// performs is sound only on the transactional sharded engine (the
// executor's pooled clusters always use it); the legacy channel engine
// delivers partially on a torn round, so replaying there would
// double-deliver.
type retrier struct {
	cfg     *Config
	cluster *mpc.Cluster
	rt      Retry
	rec     *Recovery
	retries int
	budget  int
}

func newRetrier(cfg *Config, cluster *mpc.Cluster) retrier {
	r := retrier{cfg: cfg, cluster: cluster, rt: cfg.Retry, rec: cfg.Recovery}
	if r.rec == nil {
		r.rec = &Recovery{}
	}
	r.budget = r.rt.retries()
	return r
}

// allow consumes one retry from the budget if one remains and the context
// is still alive.
func (r *retrier) allow() bool {
	if r.retries >= r.budget || r.cfg.ctxErr() != nil {
		return false
	}
	r.retries++
	r.rec.Attempts++
	return true
}

// wait blocks for the current retry's backoff.
func (r *retrier) wait() error {
	return r.rt.Wait(r.cfg.Ctx, r.retries, r.rec)
}

// driveRound runs one communication round, re-driving it in place when it
// tears: the staged-commit engine guarantees a torn round left resident
// state untouched, so the replay sees exactly the pre-round state. Each
// replay advances the fault schedule's attempt dimension and consumes one
// retry from the execution's budget. replays, when non-nil, additionally
// counts this call's replays (per-stage accounting).
func (r *retrier) driveRound(replays *int, round func() error) error {
	for {
		err := round()
		if err == nil {
			return nil
		}
		if !errors.Is(err, mpc.ErrTornRound) || !r.allow() {
			return err
		}
		if werr := r.wait(); werr != nil {
			return werr
		}
		r.rec.RoundsReplayed++
		if replays != nil {
			*replays++
		}
		r.cluster.MarkReplay()
	}
}

// driveCompute runs one gather-style compute phase, re-running only the
// failing servers until the phase is clean or the budget is spent.
func (r *retrier) driveCompute(strategy string, outs [][]data.Tuple, local func(s *mpc.Server) []data.Tuple) error {
	failed := r.cluster.ComputeGather(outs, local)
	for len(failed) > 0 {
		if !r.allow() {
			return fmt.Errorf("exec: %s: %d server(s) failed compute: %w", strategy, len(failed), mpc.ErrComputeFailed)
		}
		if werr := r.wait(); werr != nil {
			return werr
		}
		r.rec.ServersRecomputed += len(failed)
		failed = r.cluster.RecomputeGather(outs, failed, local)
	}
	return nil
}

// driveComputeResident is driveCompute for resident-style compute: failed
// servers keep their input fragments, so the recompute re-runs the pure
// per-server function against unchanged state.
func (r *retrier) driveComputeResident(strategy string, stage int, local func(s *mpc.Server) *data.Relation) error {
	failed := r.cluster.ComputeResidentRecover(local)
	for len(failed) > 0 {
		if !r.allow() {
			return fmt.Errorf("exec: %s stage %d: %d server(s) failed compute: %w", strategy, stage, len(failed), mpc.ErrComputeFailed)
		}
		if werr := r.wait(); werr != nil {
			return werr
		}
		r.rec.ServersRecomputed += len(failed)
		failed = r.cluster.RecomputeResident(failed, local)
	}
	return nil
}
