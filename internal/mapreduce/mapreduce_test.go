package mapreduce

import (
	"math"
	"testing"

	"repro/internal/query"
	"repro/internal/workload"
)

func TestReplicationLowerBoundTriangleExample52(t *testing.T) {
	// Example 5.2: equal sizes M, the (1/2,1/2,1/2) packing maximizes and
	// r ≥ (3/2)·L/(3M)·(M/L)^{3/2} = (1/2)·sqrt(M/L)... up to constants,
	// the shape is Θ(sqrt(M/L)).
	q := query.Triangle()
	M := math.Pow(2, 20)
	for _, l := range []float64{M / 4, M / 16, M / 64} {
		got := ReplicationLowerBound(q, []float64{M, M, M}, l)
		want := 0.5 * math.Sqrt(M/l)
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("L=%v: r_lb = %v, want %v", l, got, want)
		}
	}
}

func TestReplicationLowerBoundScalesAsSqrt(t *testing.T) {
	// Quartering L must double the bound for the triangle.
	q := query.Triangle()
	M := math.Pow(2, 24)
	r1 := ReplicationLowerBound(q, []float64{M, M, M}, M/16)
	r2 := ReplicationLowerBound(q, []float64{M, M, M}, M/64)
	if math.Abs(r2/r1-2) > 1e-9 {
		t.Errorf("r(L/4)/r(L) = %v, want 2", r2/r1)
	}
}

func TestReplicationLowerBoundUnequalSizes(t *testing.T) {
	// The theorem extends [1] to unequal sizes; just verify the bound is
	// monotone in relation sizes.
	q := query.Triangle()
	small := ReplicationLowerBound(q, []float64{1 << 18, 1 << 18, 1 << 18}, 1<<14)
	large := ReplicationLowerBound(q, []float64{1 << 20, 1 << 20, 1 << 20}, 1<<14)
	if large <= small {
		t.Errorf("bound not monotone: %v vs %v", small, large)
	}
}

func TestReplicationLowerBoundClampsSmallRelations(t *testing.T) {
	// Relations smaller than L contribute factor 1 (footnote 5: send the
	// whole relation for free).
	q := query.Join2()
	got := ReplicationLowerBound(q, []float64{1 << 20, 16}, 1<<10)
	if got <= 0 || math.IsInf(got, 0) || math.IsNaN(got) {
		t.Errorf("bound = %v", got)
	}
}

func TestReplicationLowerBoundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	ReplicationLowerBound(query.Join2(), []float64{1, 1}, 0)
}

func TestMinReducersTriangle(t *testing.T) {
	// Example 5.2: p ≥ Ω((M/L)^{3/2}).
	q := query.Triangle()
	M := math.Pow(2, 20)
	l := M / 16
	got := MinReducers(q, []float64{M, M, M}, l)
	want := 1.5 * math.Pow(M/l, 1.5) // (u·L/ΣM · (M/L)^{3/2}) · ΣM/L with u=3/2
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("MinReducers = %v, want %v", got, want)
	}
}

func TestMeasuredReplicationShape(t *testing.T) {
	// More reducers → smaller max load, larger replication; the measured
	// r should grow roughly like sqrt(p) for the triangle (r = p^{1/3}·...
	// shape check: r increases with p and max load decreases).
	q := query.Triangle()
	specs := []workload.AtomSpec{
		{Name: "S1", Arity: 2, M: 5000, Domain: 1 << 20},
		{Name: "S2", Arity: 2, M: 5000, Domain: 1 << 20},
		{Name: "S3", Arity: 2, M: 5000, Domain: 1 << 20},
	}
	db := workload.ForQuery(specs, 9)
	r8, load8 := MeasuredReplication(q, db, 8, 1)
	r64, load64 := MeasuredReplication(q, db, 64, 1)
	if r64 <= r8 {
		t.Errorf("replication should grow with p: r8=%v r64=%v", r8, r64)
	}
	if load64 >= load8 {
		t.Errorf("max load should shrink with p: %d vs %d", load8, load64)
	}
}

func TestReplicationLowerBoundAllFitTrivial(t *testing.T) {
	// When every relation fits in one reducer the only bound is r >= 1.
	q := query.Triangle()
	if got := ReplicationLowerBound(q, []float64{100, 100, 100}, 1000); got != 1 {
		t.Errorf("all-fit bound = %v, want 1", got)
	}
}
