package mpc

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/data"
)

func TestResidentLayoutInternsIndexes(t *testing.T) {
	l := &ResidentLayout{}
	a := l.AddIndex("S", []int{1, 0})
	b := l.AddIndex("S", []int{0, 1}) // same set, different order
	if a != b {
		t.Fatalf("AddIndex did not intern position sets: %d vs %d", a, b)
	}
	c := l.AddIndex("S", []int{0})
	d := l.AddIndex("T", []int{0})
	if c == a || d == c {
		t.Fatalf("distinct indexes share a kind: %d %d %d", a, c, d)
	}
	if got := l.KindsOf("S"); len(got) != 2 {
		t.Fatalf("KindsOf(S) = %v, want 2 kinds", got)
	}
	if got := l.KindsOf("absent"); got != nil {
		t.Fatalf("KindsOf(absent) = %v, want nil", got)
	}
	if got := l.Kinds[a].Pos; got[0] != 0 || got[1] != 1 {
		t.Fatalf("positions not canonicalized ascending: %v", got)
	}
}

func TestResidentInsertProbeDelete(t *testing.T) {
	l := &ResidentLayout{}
	byZ := l.AddIndex("S", []int{1})
	all := l.AddIndex("S", nil) // zero-key index: disconnected probes
	r := NewResident(l)

	r.Insert("S", data.Tuple{1, 7})
	r.Insert("S", data.Tuple{2, 7})
	r.Insert("S", data.Tuple{3, 8})
	if got := r.Tuples(); got != 3 {
		t.Fatalf("Tuples() = %d, want 3", got)
	}
	if got := r.Probe(byZ, data.Key1(7)); len(got) != 2 {
		t.Fatalf("Probe(z=7) = %v, want 2 matches", got)
	}
	if got := r.Probe(all, data.Key{}); len(got) != 3 {
		t.Fatalf("zero-key probe = %v, want all 3 tuples", got)
	}
	if got := r.Probe(byZ, data.Key1(9)); got != nil {
		t.Fatalf("Probe(z=9) = %v, want nil", got)
	}

	// Delete must remove the tuple from every index over the relation.
	if !r.Delete("S", data.Tuple{2, 7}) {
		t.Fatal("Delete of present tuple returned false")
	}
	if got := r.Probe(byZ, data.Key1(7)); len(got) != 1 || got[0][0] != 1 {
		t.Fatalf("after delete Probe(z=7) = %v, want [[1 7]]", got)
	}
	if got := r.Probe(all, data.Key{}); len(got) != 2 {
		t.Fatalf("after delete zero-key probe = %v, want 2 tuples", got)
	}
	if r.Delete("S", data.Tuple{2, 7}) {
		t.Fatal("Delete of absent tuple reported success")
	}
	// Relations outside the layout are a silent no-op (op streams carry
	// every relation of the database).
	if !r.Delete("unrelated", data.Tuple{1}) {
		t.Fatal("Delete on un-indexed relation must not report inconsistency")
	}

	// Inserted tuples are copies: mutating the caller's slice afterwards
	// must not corrupt resident state.
	mut := data.Tuple{5, 7}
	r.Insert("S", mut)
	mut[1] = 999
	if got := r.Probe(byZ, data.Key1(7)); len(got) != 2 {
		t.Fatalf("resident state aliased a mutated caller tuple: %v", got)
	}
}

func TestCountedTransitions(t *testing.T) {
	c := NewCounted()
	t1 := data.Tuple{1, 2}
	t2 := data.Tuple{3, 4}

	if app, van := c.Add(t1, 1); !app || van {
		t.Fatalf("first derivation: appeared=%v vanished=%v", app, van)
	}
	if app, van := c.Add(t1, 1); app || van {
		t.Fatalf("second derivation of live tuple: appeared=%v vanished=%v", app, van)
	}
	c.Add(t2, 3)
	if c.Len() != 2 || c.Count(data.KeyOf(t1)) != 2 || c.Count(data.KeyOf(t2)) != 3 {
		t.Fatalf("counts wrong: len=%d c1=%d c2=%d", c.Len(), c.Count(data.KeyOf(t1)), c.Count(data.KeyOf(t2)))
	}

	// Retiring one of several derivations keeps the tuple live.
	if app, van := c.Add(t1, -1); app || van {
		t.Fatalf("partial retraction transitioned: appeared=%v vanished=%v", app, van)
	}
	// Retiring the last derivation retracts it from the materialized view.
	if _, van := c.Add(t1, -1); !van {
		t.Fatal("last retraction did not vanish")
	}
	if c.Len() != 1 || c.Count(data.KeyOf(t1)) != 0 {
		t.Fatalf("after full retraction: len=%d count=%d", c.Len(), c.Count(data.KeyOf(t1)))
	}
	live := c.Tuples()
	if len(live) != 1 || !equalTuple(live[0], t2) {
		t.Fatalf("materialized view = %v, want [[3 4]]", live)
	}
	// Re-appearing after a full retraction is a fresh appearance.
	if app, _ := c.Add(t1, 1); !app {
		t.Fatal("re-insert after retraction did not appear")
	}
	var n int
	c.Each(func(tu data.Tuple, count int64) { n++ })
	if n != 2 {
		t.Fatalf("Each visited %d tuples, want 2", n)
	}
}

func TestCountedNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("retracting an underived tuple did not panic")
		}
	}()
	NewCounted().Add(data.Tuple{1}, -1)
}

// TestCountedRandomizedMirrorsMap drives random signed updates through
// Counted and a plain map oracle, checking the materialized view after
// every step (swap-remove bookkeeping is the risky part).
func TestCountedRandomizedMirrorsMap(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	c := NewCounted()
	oracle := make(map[int64]int64)
	for step := 0; step < 5000; step++ {
		v := int64(rng.Intn(40))
		if oracle[v] > 0 && rng.Intn(2) == 0 {
			c.Add(data.Tuple{v}, -1)
			oracle[v]--
		} else {
			c.Add(data.Tuple{v}, 1)
			oracle[v]++
		}
	}
	var wantLive []int64
	for v, n := range oracle {
		if n > 0 {
			wantLive = append(wantLive, v)
		}
	}
	if c.Len() != len(wantLive) {
		t.Fatalf("live count %d, oracle %d", c.Len(), len(wantLive))
	}
	var gotLive []int64
	c.Each(func(tu data.Tuple, count int64) {
		gotLive = append(gotLive, tu[0])
		if count != oracle[tu[0]] {
			t.Fatalf("count of %d = %d, oracle %d", tu[0], count, oracle[tu[0]])
		}
	})
	sort.Slice(gotLive, func(i, j int) bool { return gotLive[i] < gotLive[j] })
	sort.Slice(wantLive, func(i, j int) bool { return wantLive[i] < wantLive[j] })
	for i := range wantLive {
		if gotLive[i] != wantLive[i] {
			t.Fatalf("live sets diverge at %d: %d vs %d", i, gotLive[i], wantLive[i])
		}
	}
}

// BenchmarkResidentChunk sweeps the resident-shuffle chunk size over a
// skewed intermediate (everything on one hot server), the workload the
// chunking exists for: small chunks buy parallel routing of a hot fragment
// at per-part overhead, huge chunks serialize the hot server's send. The
// tuned default (DefaultResidentChunkTuples = 1024) sits on the flat
// bottom of this curve.
func BenchmarkResidentChunk(b *testing.B) {
	const m = 200_000
	domain := int64(1)
	for domain < m {
		domain *= 2
	}
	db := data.NewDatabase()
	r := data.NewRelation("S", 1, domain)
	for i := int64(0); i < m; i++ {
		r.Add(i)
	}
	db.Put(r)
	hot := RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, 0)
	})
	spread := RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, int(tu[0]%16))
	})
	for _, chunk := range []int{128, 512, 1024, 4096, 65536} {
		b.Run(fmt.Sprintf("chunk=%d", chunk), func(b *testing.B) {
			c := NewCluster(16)
			c.ResidentChunk = chunk
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				c.Reset()
				if err := c.Round(db, hot); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
				if err := c.ShuffleResident(spread, "S"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
