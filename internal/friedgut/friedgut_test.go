package friedgut

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/packing"
	"repro/internal/query"
	"repro/internal/workload"
)

func TestPaperC3Example(t *testing.T) {
	// §2.3's illustration: Σ a_xy b_yz c_zx ≤ sqrt(Σa² Σb² Σc²) with the
	// (1/2,1/2,1/2) cover. Use indicator weights over a small instance.
	q := query.Triangle()
	rels := map[string]*data.Relation{
		"S1": relOf("S1", [][2]int64{{1, 2}, {1, 3}, {4, 5}}),
		"S2": relOf("S2", [][2]int64{{2, 3}, {3, 1}, {5, 6}}),
		"S3": relOf("S3", [][2]int64{{3, 1}, {1, 1}, {6, 4}}),
	}
	ws := FromRelations(q, rels)
	u := []float64{0.5, 0.5, 0.5}
	lhs, rhs := LHS(q, ws), RHS(q, ws, u)
	if lhs > rhs+1e-9 {
		t.Errorf("inequality violated: %v > %v", lhs, rhs)
	}
	// RHS = sqrt(3·3·3) for 3 tuples each.
	want := math.Sqrt(27)
	if math.Abs(rhs-want) > 1e-9 {
		t.Errorf("RHS = %v, want %v", rhs, want)
	}
}

func relOf(name string, rows [][2]int64) *data.Relation {
	r := data.NewRelation(name, 2, 1<<20)
	for _, row := range rows {
		r.Add(row[0], row[1])
	}
	return r
}

func TestLHSCountsJoinWithIndicators(t *testing.T) {
	// With 0/1 weights, LHS is exactly |q(I)|.
	q := query.Join2()
	rels := map[string]*data.Relation{
		"S1": relOf("S1", [][2]int64{{1, 9}, {2, 9}}),
		"S2": relOf("S2", [][2]int64{{5, 9}, {6, 9}, {7, 8}}),
	}
	ws := FromRelations(q, rels)
	if got := LHS(q, ws); got != 4 {
		t.Errorf("LHS = %v, want 4 (join size)", got)
	}
}

func TestLHSWeighted(t *testing.T) {
	// Two tuples with weights 0.5 and 2 joining a single partner with
	// weight 3: LHS = 0.5·3 + 2·3 = 7.5.
	q := query.Join2()
	ws := NewWeights()
	ws.Set("S1", data.Tuple{1, 9}, 0.5)
	ws.Set("S1", data.Tuple{2, 9}, 2)
	ws.Set("S2", data.Tuple{5, 9}, 3)
	if got := LHS(q, ws); math.Abs(got-7.5) > 1e-12 {
		t.Errorf("LHS = %v, want 7.5", got)
	}
}

func TestAGMFromIndicators(t *testing.T) {
	q := query.Triangle()
	db := workload.ForQuery([]workload.AtomSpec{
		{Name: "S1", Arity: 2, M: 200, Domain: 30},
		{Name: "S2", Arity: 2, M: 200, Domain: 30},
		{Name: "S3", Arity: 2, M: 200, Domain: 30},
	}, 3)
	out, bound := AGMFromIndicators(q, db.Relations)
	if out > bound+1e-6 {
		t.Errorf("output %v exceeds AGM bound %v", out, bound)
	}
	// Bound = sqrt(m1 m2 m3) for the half cover.
	want := math.Sqrt(200 * 200 * 200)
	if math.Abs(bound-want)/want > 1e-9 {
		t.Errorf("bound = %v, want %v", bound, want)
	}
}

func TestHoldsOnRandomWeightsProperty(t *testing.T) {
	// Friedgut's inequality must hold for arbitrary non-negative weights
	// and any fractional edge cover vertex of the query.
	queries := []*query.Query{query.Join2(), query.Triangle(), query.Path(2), query.Star(2)}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := queries[rng.Intn(len(queries))]
		ws := NewWeights()
		for _, a := range q.Atoms {
			n := 3 + rng.Intn(6)
			for i := 0; i < n; i++ {
				tu := make(data.Tuple, a.Arity())
				for j := range tu {
					tu[j] = int64(rng.Intn(4))
				}
				ws.Set(a.Name, tu, rng.Float64()*3)
			}
		}
		// A valid cover: the all-ones vector always covers.
		u := make([]float64, q.NumAtoms())
		for j := range u {
			u[j] = 1
		}
		if !Holds(q, ws, u) {
			return false
		}
		// And the minimum fractional cover.
		cover, _ := packing.MinCover(q)
		return Holds(q, ws, cover.Floats())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestHoldsTightCaseProductWeights(t *testing.T) {
	// For cartesian products with u = (1,1), the inequality is an equality
	// (Σ over pairs = product of sums).
	q := query.Cartesian(2)
	ws := NewWeights()
	ws.Set("S1", data.Tuple{0}, 2)
	ws.Set("S1", data.Tuple{1}, 3)
	ws.Set("S2", data.Tuple{0}, 5)
	ws.Set("S2", data.Tuple{7}, 1)
	lhs, rhs := LHS(q, ws), RHS(q, ws, []float64{1, 1})
	if math.Abs(lhs-rhs) > 1e-9 {
		t.Errorf("cartesian case should be tight: LHS=%v RHS=%v", lhs, rhs)
	}
	if math.Abs(lhs-30) > 1e-9 {
		t.Errorf("LHS = %v, want (2+3)(5+1) = 30", lhs)
	}
}

func TestZeroCoverWeightUsesMax(t *testing.T) {
	// An atom with u_j = 0 contributes its max weight.
	q := query.Path(2) // S1(x1,x2), S2(x2,x3)
	ws := NewWeights()
	ws.Set("S1", data.Tuple{1, 2}, 0.5)
	ws.Set("S2", data.Tuple{2, 3}, 4)
	// u=(1,0) is a cover of L2? x3 needs S2: no. So use it only to test
	// the RHS mechanics, not validity.
	rhs := RHS(q, ws, []float64{1, 0})
	if math.Abs(rhs-0.5*4) > 1e-12 {
		t.Errorf("RHS = %v, want 2", rhs)
	}
}

func TestSetNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewWeights().Set("S", data.Tuple{1}, -1)
}

func TestRHSLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RHS(query.Join2(), NewWeights(), []float64{1})
}

func TestParseKeyRoundTrip(t *testing.T) {
	for _, tu := range []data.Tuple{{1, 22, 333}, {0}, {5, 0}} {
		got := parseKey(tu.Key(), len(tu))
		if got.Key() != tu.Key() {
			t.Errorf("parseKey(%q) = %v", tu.Key(), got)
		}
	}
}
