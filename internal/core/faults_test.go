package core

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/join"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/workload"
)

// faultEngine builds an engine whose every execution runs under the given
// fault schedule. Tests force HyperCube per call so each attempt costs
// exactly one communication round (making WouldTearRound(n) line up with
// attempt n).
func faultEngine(t *testing.T, f *mpc.Faults) *Engine {
	t.Helper()
	e, err := New(Config{P: 8, Seed: 3, Faults: f})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func faultCase() (*query.Query, *dbOracle) {
	q := query.Join2()
	db := db2(
		workload.Matching("S1", 2, 400, 100000, 1),
		workload.Matching("S2", 2, 400, 100000, 2),
	)
	return q, &dbOracle{db: db, want: join.Join(q, join.FromDatabase(db))}
}

type dbOracle struct {
	db   *data.Database
	want []data.Tuple
}

// findSeed scans for a seed whose fault schedule satisfies ok. Schedules are
// pure functions of the seed, so the search is deterministic and cheap.
func findSeed(t *testing.T, mk func(seed uint64) *mpc.Faults, ok func(*mpc.Faults) bool) uint64 {
	t.Helper()
	for seed := uint64(0); seed < 10000; seed++ {
		if ok(mk(seed)) {
			return seed
		}
	}
	t.Fatal("no seed under 10000 produces the wanted fault schedule")
	return 0
}

func TestFaultTornRoundRetriesOnce(t *testing.T) {
	mk := func(seed uint64) *mpc.Faults { return &mpc.Faults{Seed: seed, TornRound: 0.5} }
	// First attempt's round tears, the retry's round survives.
	seed := findSeed(t, mk, func(f *mpc.Faults) bool {
		return f.WouldTearRound(1) && !f.WouldTearRound(2)
	})
	e := faultEngine(t, mk(seed))
	q, o := faultCase()
	hc := HyperCube
	res, err := e.ExecuteContext(context.Background(), q, o.db, ExecOptions{Strategy: &hc})
	if err != nil {
		t.Fatalf("retryable torn round surfaced: %v", err)
	}
	if res.FaultRetries != 1 {
		t.Fatalf("FaultRetries = %d, want 1", res.FaultRetries)
	}
	if !join.EqualTupleSets(res.Output, o.want) {
		t.Fatalf("post-retry output %d tuples, want %d", len(res.Output), len(o.want))
	}
}

func TestFaultTornRoundTwiceSurfacesTyped(t *testing.T) {
	mk := func(seed uint64) *mpc.Faults { return &mpc.Faults{Seed: seed, TornRound: 0.5} }
	seed := findSeed(t, mk, func(f *mpc.Faults) bool {
		return f.WouldTearRound(1) && f.WouldTearRound(2)
	})
	e := faultEngine(t, mk(seed))
	q, o := faultCase()
	hc := HyperCube
	_, err := e.ExecuteContext(context.Background(), q, o.db, ExecOptions{Strategy: &hc})
	if !errors.Is(err, mpc.ErrTornRound) {
		t.Fatalf("err = %v, want ErrTornRound", err)
	}
}

func TestFaultComputeFailSurfacesTyped(t *testing.T) {
	// Certain compute failure: the retry fails identically, so the typed
	// error must surface rather than loop.
	e := faultEngine(t, &mpc.Faults{Seed: 1, ComputeFail: 1})
	q, o := faultCase()
	hc := HyperCube
	_, err := e.ExecuteContext(context.Background(), q, o.db, ExecOptions{Strategy: &hc})
	if !errors.Is(err, mpc.ErrComputeFailed) {
		t.Fatalf("err = %v, want ErrComputeFailed", err)
	}
}

func TestFaultStragglerCancelMidRound(t *testing.T) {
	// Every send part straggles; the hook cancels the context, so the route
	// worker aborts at its next checkpoint. No sleeps: the "stall" is the
	// hook itself.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	f := &mpc.Faults{Seed: 1, Straggler: 1, OnStraggle: func() { once.Do(cancel) }}
	e := faultEngine(t, f)
	q, o := faultCase()
	hc := HyperCube
	_, err := e.ExecuteContext(ctx, q, o.db, ExecOptions{Strategy: &hc})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFaultRetryNotCountedOnCleanRun(t *testing.T) {
	e := faultEngine(t, &mpc.Faults{Seed: 1})
	q, o := faultCase()
	hc := HyperCube
	res, err := e.ExecuteContext(context.Background(), q, o.db, ExecOptions{Strategy: &hc})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultRetries != 0 {
		t.Fatalf("clean run reported %d retries", res.FaultRetries)
	}
	if !join.EqualTupleSets(res.Output, o.want) {
		t.Fatalf("output %d tuples, want %d", len(res.Output), len(o.want))
	}
}
