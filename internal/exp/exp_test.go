package exp

import (
	"strings"
	"testing"
)

// Every experiment must pass its own internal checks at Quick scale. This
// is the repository's end-to-end gate: each runner regenerates one of the
// paper's tables/examples and asserts the predicted shape.
func TestAllExperimentsPassAtQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are integration-scale")
	}
	for _, r := range All() {
		r := r
		t.Run(r.ID, func(t *testing.T) {
			tb := r.Run(Quick)
			if !tb.OK {
				t.Errorf("%s failed its internal checks:\n%s", tb.ID, Render(tb))
			}
			if len(tb.Rows) == 0 {
				t.Errorf("%s produced no rows", tb.ID)
			}
			if tb.Claim == "" || tb.PaperRef == "" {
				t.Errorf("%s missing claim or paper reference", tb.ID)
			}
		})
	}
}

func TestRenderContainsAllCells(t *testing.T) {
	tb := Table{
		ID: "X", Title: "demo", PaperRef: "ref", Claim: "c",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"v1", "v2"}},
		Notes:   "note here",
		OK:      true,
	}
	out := Render(tb)
	for _, want := range []string{"X", "demo", "ref", "v1", "v2", "note here", "OK"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q in:\n%s", want, out)
		}
	}
}

func TestRenderFailedStatus(t *testing.T) {
	tb := Table{ID: "X", Columns: []string{"a"}, OK: false}
	if !strings.Contains(Render(tb), "CHECK FAILED") {
		t.Error("failed table should render CHECK FAILED")
	}
}

func TestMarkdown(t *testing.T) {
	tb := Table{
		ID: "E0", Title: "t", PaperRef: "r", Claim: "c",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "2"}},
		OK:      true,
	}
	md := Markdown(tb)
	for _, want := range []string{"### E0", "| a | b |", "| 1 | 2 |", "**PASS**"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q in:\n%s", want, md)
		}
	}
	tb.OK = false
	if !strings.Contains(Markdown(tb), "**FAIL**") {
		t.Error("missing FAIL status")
	}
}

func TestAllHaveUniqueIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, r := range All() {
		if seen[r.ID] {
			t.Errorf("duplicate experiment ID %s", r.ID)
		}
		seen[r.ID] = true
	}
	if len(seen) != 18 {
		t.Errorf("expected 18 experiments, got %d", len(seen))
	}
}

// Structural invariant: every experiment's rows match its column count.
func TestAllTablesStructurallyConsistent(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	for _, r := range All() {
		tb := r.Run(Quick)
		for ri, row := range tb.Rows {
			if len(row) != len(tb.Columns) {
				t.Errorf("%s row %d has %d cells, want %d", tb.ID, ri, len(row), len(tb.Columns))
			}
		}
	}
}
