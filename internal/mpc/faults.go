// Deterministic fault injection for the communication/compute simulator.
//
// Faults lets robustness tests drive every serving degradation path —
// torn communication rounds, failed local compute, delayed workers — from a
// seed instead of sleeps: each decision is a pure hash of (seed, stream,
// event index), so a given seed produces the same fault schedule on every
// run, under -race, at any GOMAXPROCS. Production paths pay one nil check.
package mpc

import (
	"errors"
	"sync/atomic"

	"repro/internal/hashing"
)

// Typed injected-fault errors. The executor treats them as recoverable
// degradations (retry once, then surface) — unlike router-contract
// violations, which remain panics.
var (
	// ErrTornRound reports a communication round that delivered only a
	// prefix of its send parts before tearing. Receiver fragments are
	// incomplete; the cluster must be reset (or discarded) before reuse.
	ErrTornRound = errors.New("mpc: torn communication round (injected fault)")
	// ErrComputeFailed reports a server whose local-computation phase
	// failed; the round's output is incomplete.
	ErrComputeFailed = errors.New("mpc: local compute failed (injected fault)")
)

// Fault decision streams: each fault family hashes its events in its own
// stream so enabling one family never perturbs another's schedule.
const (
	streamTorn uint64 = 0x746f726e // "torn"
	streamComp uint64 = 0x636f6d70 // "comp"
	streamStrg uint64 = 0x73747267 // "strg"
)

// Faults is a seeded fault-injection schedule threaded through exec.Config
// into the cluster. The zero value (and a nil *Faults) injects nothing.
// Probabilities are per event: per communication round for TornRound, per
// (compute phase, server) for ComputeFail, per routed send part for
// Straggler. Decisions are deterministic in (Seed, event index); event
// indexes advance on the cluster's own round/compute counters, so a
// sequential run replays identically regardless of scheduling.
//
// One Faults value must not be shared by concurrent executions: the event
// counters are atomic, but interleaving would make event indexes — and so
// the fault schedule — depend on scheduling order.
type Faults struct {
	// Seed pins the schedule; equal seeds and equal call sequences fault
	// identically.
	Seed uint64
	// TornRound is the probability a communication round tears: only a
	// prefix of its send parts is delivered and the round returns
	// ErrTornRound.
	TornRound float64
	// ComputeFail is the probability one server's local compute phase
	// fails, failing the execution with ErrComputeFailed.
	ComputeFail float64
	// Straggler is the probability a route worker stalls at a send-part
	// checkpoint, invoking OnStraggle before routing the part. With a nil
	// OnStraggle it is a no-op: the hook is the delay, so tests block in it
	// (e.g. until a context is canceled) instead of sleeping.
	Straggler float64
	// OnStraggle is called synchronously at each straggling checkpoint.
	OnStraggle func()

	rounds   atomic.Uint64
	computes atomic.Uint64
}

// chance returns the deterministic decision for one event.
func (f *Faults) chance(stream, event uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	h := hashing.Mix64(f.Seed ^ hashing.Mix64(stream) ^ hashing.Mix64(event))
	return float64(h>>11)/float64(uint64(1)<<53) < p
}

// nextRound advances and returns the communication-round counter.
func (f *Faults) nextRound() uint64 { return f.rounds.Add(1) }

// nextComputePhase advances and returns the compute-phase counter.
func (f *Faults) nextComputePhase() uint64 { return f.computes.Add(1) }

// WouldTearRound reports whether communication round number `round`
// (1-based, in cluster call order) tears under this schedule. Tests use it
// to pick seeds that fault exactly where the scenario needs — e.g. tear the
// first attempt's round but not the retry's.
func (f *Faults) WouldTearRound(round uint64) bool {
	return f.chance(streamTorn, round, f.TornRound)
}

// WouldFailCompute reports whether the given server fails in compute phase
// number `phase` (1-based, in cluster call order).
func (f *Faults) WouldFailCompute(phase uint64, server int) bool {
	return f.chance(streamComp, phase<<20^uint64(server), f.ComputeFail)
}

// WouldStraggle reports whether part index `part` of communication round
// `round` stalls at its checkpoint.
func (f *Faults) WouldStraggle(round uint64, part int) bool {
	return f.chance(streamStrg, round<<20^uint64(part), f.Straggler)
}
