package exp

import (
	"math"
	"strings"
	"testing"
)

func TestCSVFormat(t *testing.T) {
	out := CSV([]Series{{Name: "a", X: []float64{1, 2}, Y: []float64{10, 20}}})
	want := "series,x,y\na,1,10\na,2,20\n"
	if out != want {
		t.Errorf("CSV = %q, want %q", out, want)
	}
}

func TestFigureLoadVsPShapes(t *testing.T) {
	series := FigureLoadVsP(Quick)
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	hc, lower, multi := byName["hypercube"], byName["lower-bound"], byName["multi-round"]
	if len(hc.X) == 0 || len(lower.X) != len(hc.X) || len(multi.X) != len(hc.X) {
		t.Fatal("missing series")
	}
	for i := range hc.X {
		// Measured ≥ bound (it is a lower bound) and loads decrease in p.
		if hc.Y[i] < lower.Y[i]*0.99 {
			t.Errorf("p=%v: measured %v below lower bound %v", hc.X[i], hc.Y[i], lower.Y[i])
		}
		if i > 0 && hc.Y[i] > hc.Y[i-1]*1.05 {
			t.Errorf("HC load not decreasing at p=%v", hc.X[i])
		}
	}
	// The HC curve should decay roughly as p^{-2/3}: check the endpoint
	// ratio against the prediction within a factor 2.
	n := len(hc.X) - 1
	gotRatio := hc.Y[0] / hc.Y[n]
	wantRatio := math.Pow(hc.X[n]/hc.X[0], 2.0/3)
	if gotRatio < wantRatio/2 || gotRatio > wantRatio*2 {
		t.Errorf("HC decay ratio %v, want ≈ p^{2/3} ratio %v", gotRatio, wantRatio)
	}
	// Multi-round on matchings decays like 1/p: steeper than HC.
	mrRatio := multi.Y[0] / multi.Y[n]
	if mrRatio <= gotRatio {
		t.Errorf("multi-round decay %v should exceed HC decay %v on matchings", mrRatio, gotRatio)
	}
}

func TestFigureLoadVsSkewShapes(t *testing.T) {
	series := FigureLoadVsSkew(Quick)
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	sj, v := byName["skew-join"], byName["vanilla-hash"]
	n := len(sj.X) - 1
	// At the highest skew, vanilla must be much worse than the skew join.
	if v.Y[n] < 2*sj.Y[n] {
		t.Errorf("at zipf %v vanilla %v not clearly above skew join %v", sj.X[n], v.Y[n], sj.Y[n])
	}
	// Vanilla load grows with skew.
	if v.Y[n] <= v.Y[0] {
		t.Errorf("vanilla load should grow with skew: %v vs %v", v.Y[0], v.Y[n])
	}
}

func TestFigureResilienceShapes(t *testing.T) {
	series := FigureResilience(Quick)
	byName := map[string]Series{}
	for _, s := range series {
		byName[s.Name] = s
	}
	eq, hash, ref := byName["equal-shares"], byName["hash-join"], byName["m-over-cbrt-p"]
	n := len(eq.X) - 1
	// Equal shares decay; hash join stays flat (within 10%).
	if eq.Y[n] >= eq.Y[0] {
		t.Error("equal-share load should decrease with p")
	}
	if math.Abs(hash.Y[n]-hash.Y[0])/hash.Y[0] > 0.1 {
		t.Errorf("hash join load should stay ~flat under total skew: %v vs %v", hash.Y[0], hash.Y[n])
	}
	// Equal-share curve tracks the reference within a factor of 3.
	for i := range eq.X {
		r := eq.Y[i] / ref.Y[i]
		if r < 0.3 || r > 3 {
			t.Errorf("p=%v: equal-share load %v off reference %v (ratio %v)",
				eq.X[i], eq.Y[i], ref.Y[i], r)
		}
	}
}

func TestFiguresRegistry(t *testing.T) {
	figs := Figures()
	for _, name := range []string{"load-vs-p", "load-vs-skew", "resilience"} {
		if figs[name] == nil {
			t.Errorf("missing figure %s", name)
		}
	}
	out := CSV(figs["load-vs-skew"](Quick))
	if !strings.HasPrefix(out, "series,x,y\n") || strings.Count(out, "\n") < 10 {
		t.Error("figure CSV too small")
	}
}
