package core

import (
	"sync"
	"testing"

	"repro/internal/data"
	"repro/internal/query"
	"repro/internal/workload"
)

func tuplesEqual(a, b []data.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				return false
			}
		}
	}
	return true
}

// TestConcurrentExecuteSharedEngine hammers one engine from many
// goroutines with cache-hitting repeat queries — the repeated-traffic
// serving case. Every Execute shares the engine's pooled clusters and
// scratch buffers, so under -race this doubles as the data-race gate for
// cluster pooling, output detaching, and the sharded delivery engine; the
// answer comparison catches pooled buffers leaking into escaped results.
func TestConcurrentExecuteSharedEngine(t *testing.T) {
	zdb := data.NewDatabase()
	zdb.Put(workload.Zipf("S1", 600, 1<<20, 1, 1.6, 80, 1))
	zdb.Put(workload.Zipf("S2", 600, 1<<20, 1, 1.6, 80, 2))
	join2 := query.Join2()

	tdb := data.NewDatabase()
	for j, name := range []string{"S1", "S2", "S3"} {
		tdb.Put(workload.Matching(name, 2, 800, 1<<16, int64(j+1)))
	}
	triangle := query.Triangle()

	e := NewEngine(16, 3)
	refJoin := e.Execute(join2, zdb)
	sortTuples(refJoin.Output)
	refTri := e.Execute(triangle, tdb)
	sortTuples(refTri.Output)
	if len(refJoin.Output) == 0 {
		t.Fatal("reference join produced no answers; the stress test would be vacuous")
	}

	const goroutines = 8
	const iters = 6
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*iters)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				// Alternate plan shapes so concurrent Executes mix cluster
				// sizes in the shared pool, not just trade one cluster.
				if (g+i)%2 == 0 {
					res := e.Execute(join2, zdb)
					sortTuples(res.Output)
					if !tuplesEqual(res.Output, refJoin.Output) {
						errs <- "join2 answers diverged under concurrency"
						return
					}
					if res.MaxLoadBits != refJoin.MaxLoadBits {
						errs <- "join2 loads diverged under concurrency"
						return
					}
				} else {
					res := e.Execute(triangle, tdb)
					sortTuples(res.Output)
					if !tuplesEqual(res.Output, refTri.Output) {
						errs <- "triangle answers diverged under concurrency"
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	if stats := e.CacheStats(); stats.Hits < goroutines*iters {
		t.Errorf("cache hits = %d, want >= %d (stress must exercise the cached-plan path)",
			stats.Hits, goroutines*iters)
	}
}
