package skew

import (
	"testing"

	"repro/internal/data"
	"repro/internal/join"
	"repro/internal/query"
	"repro/internal/workload"
)

// joinDB builds a Join2 database: S1(x,z), S2(y,z), z at column 1.
func joinDB(s1, s2 *data.Relation) *data.Database {
	db := data.NewDatabase()
	s1c := s1.Clone()
	s1c.Name = "S1"
	s2c := s2.Clone()
	s2c.Name = "S2"
	db.Put(s1c)
	db.Put(s2c)
	return db
}

func reference(db *data.Database) []data.Tuple {
	return join.Join(query.Join2(), join.FromDatabase(db))
}

func TestRunJoinCorrectUniform(t *testing.T) {
	db := joinDB(
		workload.Uniform("S1", 2, 500, 60, 1),
		workload.Uniform("S2", 2, 500, 60, 2),
	)
	res := RunJoin(db, JoinConfig{P: 16, Seed: 3})
	if !join.EqualTupleSets(res.Output, reference(db)) {
		t.Errorf("skew join wrong on uniform data: got %d, want %d tuples",
			len(res.Output), len(reference(db)))
	}
}

func TestRunJoinCorrectSingleHeavyBoth(t *testing.T) {
	// All z equal: one hitter heavy in both relations (pure cartesian).
	db := joinDB(
		workload.SingleValue("S1", 2, 300, 1000, 1, 7, 1),
		workload.SingleValue("S2", 2, 200, 1000, 1, 7, 2),
	)
	res := RunJoin(db, JoinConfig{P: 16, Seed: 5})
	want := reference(db)
	if len(want) != 300*200 {
		t.Fatalf("reference size %d, want 60000", len(want))
	}
	if !join.EqualTupleSets(res.Output, want) {
		t.Errorf("skew join wrong on H12 case: got %d tuples", len(res.Output))
	}
	if res.NumH12 != 1 || res.NumH1 != 0 || res.NumH2 != 0 {
		t.Errorf("classification wrong: H12=%d H1=%d H2=%d", res.NumH12, res.NumH1, res.NumH2)
	}
}

func TestRunJoinCorrectOneSidedHeavy(t *testing.T) {
	// Value 9 heavy in S1 only; S2 has it exactly once.
	s1 := workload.PlantedHeavy("S1", 400, 10000, 1, []workload.HeavySpec{{Value: 9, Count: 200}}, 3)
	s2 := workload.PlantedHeavy("S2", 400, 10000, 1, []workload.HeavySpec{{Value: 9, Count: 1}}, 4)
	db := joinDB(s1, s2)
	res := RunJoin(db, JoinConfig{P: 8, Seed: 6})
	if !join.EqualTupleSets(res.Output, reference(db)) {
		t.Errorf("skew join wrong on H1 case: got %d, want %d",
			len(res.Output), len(reference(db)))
	}
	if res.NumH1 != 1 {
		t.Errorf("H1 = %d, want 1 (H2=%d H12=%d)", res.NumH1, res.NumH2, res.NumH12)
	}
}

func TestRunJoinCorrectMixedClasses(t *testing.T) {
	// Hitters of all three classes plus light tuples.
	s1 := workload.PlantedHeavy("S1", 600, 100000, 1, []workload.HeavySpec{
		{Value: 1, Count: 150}, // H12 (also heavy in S2)
		{Value: 2, Count: 120}, // H1 only
	}, 7)
	s2 := workload.PlantedHeavy("S2", 600, 100000, 1, []workload.HeavySpec{
		{Value: 1, Count: 100}, // H12
		{Value: 3, Count: 140}, // H2 only
	}, 8)
	db := joinDB(s1, s2)
	res := RunJoin(db, JoinConfig{P: 8, Seed: 9})
	if !join.EqualTupleSets(res.Output, reference(db)) {
		t.Errorf("skew join wrong on mixed case: got %d, want %d",
			len(res.Output), len(reference(db)))
	}
	if res.NumH12 != 1 || res.NumH1 != 1 || res.NumH2 != 1 {
		t.Errorf("classes: H12=%d H1=%d H2=%d, want 1 each", res.NumH12, res.NumH1, res.NumH2)
	}
}

func TestRunJoinCorrectZipf(t *testing.T) {
	db := joinDB(
		workload.Zipf("S1", 2000, 100000, 1, 1.8, 500, 11),
		workload.Zipf("S2", 2000, 100000, 1, 1.8, 500, 12),
	)
	res := RunJoin(db, JoinConfig{P: 32, Seed: 13})
	if !join.EqualTupleSets(res.Output, reference(db)) {
		t.Errorf("skew join wrong on zipf: got %d, want %d",
			len(res.Output), len(reference(db)))
	}
	if res.NumH12 == 0 {
		t.Error("zipf(1.8) should produce jointly-heavy hitters")
	}
}

func TestRunJoinBeatsVanillaOnSkew(t *testing.T) {
	// Example 3.3 / §4.1 headline: under heavy skew, the skew-aware join's
	// max load is far below the vanilla hash join's Ω(m) load.
	m := 3000
	db := joinDB(
		workload.SingleValue("S1", 2, m, 100000, 1, 7, 1),
		workload.SingleValue("S2", 2, m, 100000, 1, 7, 2),
	)
	p := 64
	res := RunJoin(db, JoinConfig{P: p, Seed: 3, SkipJoin: true})
	vanillaMax := VanillaHashJoinLoads(db, p, 3)
	// Vanilla sends everything to one server: load = 2m tuples worth.
	bitsPer := db.MustGet("S1").BitsPerTuple()
	if vanillaMax < int64(m)*bitsPer {
		t.Errorf("vanilla load %d should be >= m (it hashes all to one server)", vanillaMax)
	}
	if res.MaxVirtualBits*4 > vanillaMax {
		t.Errorf("skew join (%d) not clearly better than vanilla (%d)", res.MaxVirtualBits, vanillaMax)
	}
}

func TestRunJoinLoadNearPrediction(t *testing.T) {
	// Eq. (10): measured virtual load should be within O(log p) of the
	// predicted L.
	db := joinDB(
		workload.Zipf("S1", 5000, 1000000, 1, 1.5, 1000, 21),
		workload.Zipf("S2", 5000, 1000000, 1, 1.5, 1000, 22),
	)
	p := 32
	res := RunJoin(db, JoinConfig{P: p, Seed: 23, SkipJoin: true})
	if res.PredictedBits <= 0 {
		t.Fatal("no prediction")
	}
	ratio := float64(res.MaxVirtualBits) / res.PredictedBits
	if ratio > 12 { // generous O(log p) slack (log 32 ≈ 3.5)
		t.Errorf("measured/predicted = %v, too far above Eq. (10)", ratio)
	}
}

func TestRunJoinVirtualServersTheta(t *testing.T) {
	db := joinDB(
		workload.Zipf("S1", 2000, 100000, 1, 2.0, 300, 31),
		workload.Zipf("S2", 2000, 100000, 1, 2.0, 300, 32),
	)
	p := 16
	res := RunJoin(db, JoinConfig{P: p, Seed: 33, SkipJoin: true})
	// Θ(p): between p and a small multiple of p (each of ≤3p hitter groups
	// gets ceil rounding slack).
	if res.VirtualServers < p || res.VirtualServers > 10*p+100 {
		t.Errorf("virtual servers = %d, want Θ(p) around %d", res.VirtualServers, p)
	}
}

func TestRunJoinThresholdAblation(t *testing.T) {
	db := joinDB(
		workload.Zipf("S1", 2000, 100000, 1, 1.6, 400, 41),
		workload.Zipf("S2", 2000, 100000, 1, 1.6, 400, 42),
	)
	want := reference(db)
	// Halving or doubling the threshold must not affect correctness.
	for _, cfg := range []JoinConfig{
		{P: 16, Seed: 1, ThresholdNum: 1, ThresholdDen: 2},
		{P: 16, Seed: 1, ThresholdNum: 2, ThresholdDen: 1},
	} {
		res := RunJoin(db, cfg)
		if !join.EqualTupleSets(res.Output, want) {
			t.Errorf("threshold %d/%d broke correctness", cfg.ThresholdNum, cfg.ThresholdDen)
		}
	}
}

func TestRunJoinEmptyRelations(t *testing.T) {
	db := data.NewDatabase()
	db.Put(data.NewRelation("S1", 2, 10))
	db.Put(data.NewRelation("S2", 2, 10))
	res := RunJoin(db, JoinConfig{P: 4, Seed: 1})
	if len(res.Output) != 0 {
		t.Error("join of empty relations should be empty")
	}
}

func TestVanillaHashJoinCorrect(t *testing.T) {
	db := joinDB(
		workload.Uniform("S1", 2, 300, 50, 51),
		workload.Uniform("S2", 2, 300, 50, 52),
	)
	out, _ := VanillaHashJoin(db, 8, 1)
	if !join.EqualTupleSets(out, reference(db)) {
		t.Error("vanilla hash join incorrect")
	}
}

func TestRunJoinPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RunJoin(data.NewDatabase(), JoinConfig{P: 0})
}

func TestByClassBreakdown(t *testing.T) {
	// Mixed classes: each class's max must be positive where hitters
	// exist and the overall max must equal the max over classes.
	s1 := workload.PlantedHeavy("S1", 600, 100000, 1, []workload.HeavySpec{
		{Value: 1, Count: 150}, {Value: 2, Count: 120},
	}, 7)
	s2 := workload.PlantedHeavy("S2", 600, 100000, 1, []workload.HeavySpec{
		{Value: 1, Count: 100}, {Value: 3, Count: 140},
	}, 8)
	db := joinDB(s1, s2)
	res := RunJoin(db, JoinConfig{P: 8, Seed: 9, SkipJoin: true})
	bc := res.ByClass
	if bc.Light <= 0 || bc.H12 <= 0 || bc.H1 <= 0 || bc.H2 <= 0 {
		t.Errorf("class loads should all be positive: %+v", bc)
	}
	max := bc.Light
	for _, v := range []int64{bc.H1, bc.H2, bc.H12} {
		if v > max {
			max = v
		}
	}
	if max != res.MaxVirtualBits {
		t.Errorf("class max %d != overall max %d", max, res.MaxVirtualBits)
	}
}

func TestByClassLightBoundedByMOverP(t *testing.T) {
	// The light class is a plain hash join: its max load is O(log p · m/p)
	// bits on light-only data.
	db := joinDB(
		workload.Matching("S1", 2, 4000, 1000000, 1),
		workload.Matching("S2", 2, 4000, 1000000, 2),
	)
	p := 16
	res := RunJoin(db, JoinConfig{P: p, Seed: 3, SkipJoin: true})
	bitsPer := db.MustGet("S1").BitsPerTuple()
	budget := 8 * int64(4000/p) * bitsPer
	if res.ByClass.Light > budget {
		t.Errorf("light-class load %d exceeds budget %d", res.ByClass.Light, budget)
	}
	if res.ByClass.H12 != 0 || res.ByClass.H1 != 0 || res.ByClass.H2 != 0 {
		t.Errorf("no heavy classes expected: %+v", res.ByClass)
	}
}
