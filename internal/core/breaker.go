package core

import "sync"

// breaker is the engine's circuit breaker over cluster-level fault errors
// (torn rounds, failed computes — the errors the retry policy already
// fought and lost). It is deliberately clock-free, so seeded fault tests
// drive every transition deterministically: instead of an open-interval
// timer, an open breaker admits exactly one probe execution at a time
// (half-open); the probe's success closes the circuit, its failure keeps
// it open until the next probe. Everything else fails fast with
// ErrCircuitOpen.
//
// Only fault-typed failures count against the threshold; validation
// errors, context cancellations, and admission sheds are neutral — they
// say nothing about cluster health.
type breaker struct {
	mu        sync.Mutex
	threshold int

	consecutive int  // consecutive fault-typed failures
	open        bool // tripped: shed until a probe succeeds
	probing     bool // a half-open probe is in flight

	successes uint64
	failures  uint64
	trips     uint64
	probes    uint64
	fastFails uint64
}

// admit decides whether an execution may proceed. It returns probe=true
// when the execution is the single half-open probe of an open circuit; the
// caller must pass the same flag to done. err is ErrCircuitOpen when the
// execution is shed.
func (b *breaker) admit() (probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return false, nil
	}
	if b.probing {
		b.fastFails++
		return false, ErrCircuitOpen
	}
	b.probing = true
	b.probes++
	return true, nil
}

// breakerOutcome classifies one admitted execution for the breaker.
type breakerOutcome int

const (
	// breakerOK: the execution completed without error.
	breakerOK breakerOutcome = iota
	// breakerFault: the execution surfaced a cluster-level fault error.
	breakerFault
	// breakerNeutral: the execution failed for reasons unrelated to
	// cluster health (validation, cancellation).
	breakerNeutral
)

// done records an admitted execution's outcome. probe must be admit's
// return value for the same execution.
func (b *breaker) done(probe bool, outcome breakerOutcome) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
	}
	switch outcome {
	case breakerOK:
		b.successes++
		b.consecutive = 0
		b.open = false
	case breakerFault:
		b.failures++
		b.consecutive++
		if !b.open && b.consecutive >= b.threshold {
			b.open = true
			b.trips++
		}
	case breakerNeutral:
		// Says nothing about cluster health: a probe slot is released (the
		// next caller probes instead), the failure streak is untouched.
	}
}

// HealthStats is a snapshot of the engine's circuit-breaker state
// (Engine.HealthStats, surfaced as Session.HealthStats). All counters are
// cumulative since the engine was built.
type HealthStats struct {
	// State is "disabled" (no Config.BreakerThreshold), "closed" (normal
	// service), "half-open" (a probe execution is in flight), or "open"
	// (callers are shed with ErrCircuitOpen until a probe succeeds).
	State string
	// ConsecutiveFailures is the current run of fault-typed failures;
	// reaching Config.BreakerThreshold trips the breaker.
	ConsecutiveFailures int
	// Successes/Failures count admitted executions by outcome (neutral
	// outcomes — validation errors, cancellations — count in neither).
	Successes uint64
	Failures  uint64
	// Trips counts closed→open transitions, Probes the half-open probe
	// executions admitted, FastFails the calls shed with ErrCircuitOpen.
	Trips     uint64
	Probes    uint64
	FastFails uint64
}

// HealthStats reports the engine's circuit-breaker state. Engines without
// a breaker (Config.BreakerThreshold zero, or pre-Session construction)
// report State "disabled" and zero counters.
func (e *Engine) HealthStats() HealthStats {
	b := e.breaker
	if b == nil {
		return HealthStats{State: "disabled"}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	state := "closed"
	if b.open {
		state = "open"
		if b.probing {
			state = "half-open"
		}
	}
	return HealthStats{
		State:               state,
		ConsecutiveFailures: b.consecutive,
		Successes:           b.successes,
		Failures:            b.failures,
		Trips:               b.trips,
		Probes:              b.probes,
		FastFails:           b.fastFails,
	}
}
