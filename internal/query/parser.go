package query

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse reads a conjunctive query in a small datalog-like syntax:
//
//	C3(x,y,z) = S1(x,y), S2(y,z), S3(z,x)
//	q(x,y,z) :- S1(x,z), S2(y,z)
//
// Either "=" or ":-" may separate head and body. The head declares the
// variable order; all body variables must appear in the head (the queries in
// the paper are full) and all head variables must be used.
func Parse(input string) (*Query, error) {
	sep := "="
	if strings.Contains(input, ":-") {
		sep = ":-"
	}
	parts := strings.SplitN(input, sep, 2)
	if len(parts) != 2 {
		return nil, fmt.Errorf("query: missing %q separator in %q", sep, input)
	}
	headName, headVars, err := parseAtomText(strings.TrimSpace(parts[0]))
	if err != nil {
		return nil, fmt.Errorf("query head: %w", err)
	}
	q := &Query{Name: headName}
	varIdx := make(map[string]int)
	for _, v := range headVars {
		if _, dup := varIdx[v]; dup {
			return nil, fmt.Errorf("query head: duplicate variable %q", v)
		}
		varIdx[v] = len(q.Vars)
		q.Vars = append(q.Vars, v)
	}

	for _, atomText := range splitTopLevel(strings.TrimSpace(parts[1])) {
		name, vars, err := parseAtomText(strings.TrimSpace(atomText))
		if err != nil {
			return nil, fmt.Errorf("query body: %w", err)
		}
		atom := Atom{Name: name}
		for _, v := range vars {
			idx, ok := varIdx[v]
			if !ok {
				return nil, fmt.Errorf("query: body variable %q not in head (query must be full)", v)
			}
			atom.Vars = append(atom.Vars, idx)
		}
		q.Atoms = append(q.Atoms, atom)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error; intended for tests and examples
// with literal queries.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

// parseAtomText parses "Name(v1,v2,...)".
func parseAtomText(s string) (string, []string, error) {
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", nil, fmt.Errorf("malformed atom %q", s)
	}
	name := strings.TrimSpace(s[:open])
	if name == "" || !isIdent(name) {
		return "", nil, fmt.Errorf("bad atom name in %q", s)
	}
	inner := s[open+1 : len(s)-1]
	var vars []string
	if strings.TrimSpace(inner) != "" {
		for _, v := range strings.Split(inner, ",") {
			v = strings.TrimSpace(v)
			if v == "" || !isIdent(v) {
				return "", nil, fmt.Errorf("bad variable %q in atom %q", v, s)
			}
			vars = append(vars, v)
		}
	}
	return name, vars, nil
}

// splitTopLevel splits a body on commas that are not inside parentheses.
func splitTopLevel(s string) []string {
	var parts []string
	depth, start := 0, 0
	for i, r := range s {
		switch r {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func isIdent(s string) bool {
	for i, r := range s {
		if unicode.IsLetter(r) || r == '_' || (i > 0 && unicode.IsDigit(r)) {
			continue
		}
		return false
	}
	return s != ""
}
