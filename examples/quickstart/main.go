// Quickstart: parse a conjunctive query, generate a small database, and
// evaluate it in one MPC communication round through the public API.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// The running example of the paper: q(x,y,z) = S1(x,z), S2(y,z).
	q := repro.MustParseQuery("q(x,y,z) = S1(x,z), S2(y,z)")

	// 10k tuples per relation, skew-free (every value unique per column).
	db := repro.NewDatabase()
	db.Put(repro.MatchingRelation("S1", 2, 10000, 1<<20, 1))
	db.Put(repro.MatchingRelation("S2", 2, 10000, 1<<20, 2))

	// 64 simulated servers; the engine plans (here: plain HyperCube with
	// LP-optimal shares) and executes in a single round.
	engine := repro.NewEngine(64, 42)
	res := engine.Execute(q, db)

	fmt.Printf("query:       %s\n", q)
	fmt.Printf("strategy:    %s\n", res.Plan.Strategy)
	fmt.Printf("reason:      %s\n", res.Plan.Reason)
	fmt.Printf("shares:      %v\n", res.Plan.Shares)
	fmt.Printf("answers:     %d tuples\n", len(res.Output))
	fmt.Printf("max load:    %d bits per server\n", res.MaxLoadBits)
	fmt.Printf("lower bound: %.0f bits (Theorem 1.2)\n", res.Plan.LowerBoundBits)
	fmt.Printf("gap:         %.2fx above the information-theoretic bound\n",
		float64(res.MaxLoadBits)/res.Plan.LowerBoundBits)
}
