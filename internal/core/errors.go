package core

import "errors"

// Typed serving-path errors. Callers branch on these with errors.Is; the
// serving API never requires string matching.
var (
	// ErrInvalidQuery wraps query.Validate failures surfaced by
	// ExecuteContext and Standing: the query is structurally malformed
	// (no atoms, out-of-range variables, unsupported self-join, …). The
	// structural detail is wrapped alongside it and stays reachable
	// through errors.Is/As.
	ErrInvalidQuery = errors.New("core: invalid query")

	// ErrOverloaded is returned by admission control when the session is at
	// its in-flight capacity and the wait queue is full: the call was shed
	// immediately instead of queueing without bound.
	ErrOverloaded = errors.New("core: session overloaded: admission queue full")

	// ErrSessionClosed is returned for calls entering a session after Close,
	// and to queued waiters a Close drained away.
	ErrSessionClosed = errors.New("core: session is closed")

	// ErrStandingClosed is returned by StandingQuery methods after Close.
	ErrStandingClosed = errors.New("core: standing query is closed")

	// ErrCircuitOpen is returned without executing anything when the
	// engine's circuit breaker is open: Config.BreakerThreshold consecutive
	// executions ended in cluster-level faults, so further callers fail
	// fast instead of each burning a retry-backoff budget against a
	// persistently failing cluster. One probe execution is admitted at a
	// time (half-open); its success closes the circuit.
	ErrCircuitOpen = errors.New("core: circuit breaker open: cluster faulting persistently")
)
