package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/analysis"
)

// NoDeterminismBreak enforces the determinism contract of the execution
// core (PRs 7/9): fault decisions, backoff jitter, and routing must be
// pure functions of seeds, and tests must stay sleep-free so -race runs
// are schedule-independent rather than timing-dependent.
var NoDeterminismBreak = &analysis.Analyzer{
	Name: "nodeterminismbreak",
	Doc: `forbid wall-clock and global-randomness calls in the deterministic core

Inside repro/internal/mpc, repro/internal/exec, and repro/internal/core:
time.Now, time.Sleep, time.Since, and time.Until are forbidden (the
injectable Retry.Sleep default is the sanctioned escape hatch, waived with
//skewlint:allow nodeterminismbreak), and math/rand may only be used
through explicitly seeded sources (rand.New(rand.NewSource(seed))) — the
global functions draw from process-global state and break seed replay.
In every package, _test.go files must not call time.Sleep: the test suite
is sleep-free by construction (tests that need delay inject hooks and
block on channels).`,
	Run: runNoDeterminismBreak,
}

// seededConstructors are the math/rand entry points that take or build an
// explicit source and therefore stay deterministic under a caller seed.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes a *Rand
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true,
}

func runNoDeterminismBreak(pass *analysis.Pass) error {
	core := enginePaths[pass.Pkg.Path()]
	for i, file := range pass.Files {
		inTest := i < len(pass.IsTest) && pass.IsTest[i]
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			pkg, name := fn.Pkg().Path(), fn.Name()
			switch {
			case pkg == "time" && name == "Sleep":
				if inTest {
					pass.Reportf(call.Pos(), "time.Sleep in a test: the suite is sleep-free — inject a hook (Retry.Sleep, Faults.OnStraggle) and block on a channel instead")
				} else if core {
					pass.Reportf(call.Pos(), "time.Sleep in the deterministic core: waits must flow through the injectable Retry.Sleep hook")
				}
			case core && !inTest && pkg == "time" && (name == "Now" || name == "Since" || name == "Until"):
				pass.Reportf(call.Pos(), "time.%s in the deterministic core: decisions must be pure functions of seeds, not the wall clock", name)
			case core && (pkg == "math/rand" || pkg == "math/rand/v2") && !seededConstructors[name]:
				if fn.Type().(*types.Signature).Recv() == nil {
					pass.Reportf(call.Pos(), "global %s.%s: the deterministic core must draw randomness from an explicitly seeded source (rand.New(rand.NewSource(seed)))", pkg, name)
				}
			}
			return true
		})
	}
	return nil
}
