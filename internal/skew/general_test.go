package skew

import (
	"testing"

	"repro/internal/data"
	"repro/internal/join"
	"repro/internal/query"
	"repro/internal/workload"
)

func generalDB(q *query.Query, rels ...*data.Relation) *data.Database {
	db := data.NewDatabase()
	for _, r := range rels {
		db.Put(r)
	}
	return db
}

func refJoin(q *query.Query, db *data.Database) []data.Tuple {
	return join.Join(q, join.FromDatabase(db))
}

func TestRunGeneralJoin2Uniform(t *testing.T) {
	q := query.Join2()
	db := generalDB(q,
		workload.Uniform("S1", 2, 400, 80, 1),
		workload.Uniform("S2", 2, 400, 80, 2),
	)
	res := RunGeneral(q, db, GeneralConfig{P: 16, Seed: 3})
	want := join.Dedup(refJoin(q, db))
	if !join.EqualTupleSets(res.Output, want) {
		t.Errorf("general algorithm wrong on uniform join2: got %d, want %d",
			len(res.Output), len(want))
	}
}

func TestRunGeneralJoin2SkewedBoth(t *testing.T) {
	q := query.Join2()
	db := generalDB(q,
		workload.SingleValue("S1", 2, 200, 10000, 1, 7, 1),
		workload.SingleValue("S2", 2, 150, 10000, 1, 7, 2),
	)
	res := RunGeneral(q, db, GeneralConfig{P: 16, Seed: 5})
	want := refJoin(q, db)
	if len(want) != 200*150 {
		t.Fatalf("reference = %d", len(want))
	}
	if !join.EqualTupleSets(res.Output, want) {
		t.Errorf("general algorithm wrong on skewed join2: got %d, want %d",
			len(res.Output), len(want))
	}
	if res.NumBinCombos < 2 {
		t.Errorf("expected multiple bin combos on skewed data, got %d", res.NumBinCombos)
	}
}

func TestRunGeneralJoin2ZipfMixed(t *testing.T) {
	q := query.Join2()
	db := generalDB(q,
		workload.Zipf("S1", 1500, 100000, 1, 1.7, 300, 11),
		workload.Zipf("S2", 1500, 100000, 1, 1.7, 300, 12),
	)
	res := RunGeneral(q, db, GeneralConfig{P: 16, Seed: 13})
	want := refJoin(q, db)
	if !join.EqualTupleSets(res.Output, want) {
		t.Errorf("general algorithm wrong on zipf join2: got %d, want %d",
			len(res.Output), len(want))
	}
}

func TestRunGeneralTriangleUniform(t *testing.T) {
	q := query.Triangle()
	db := generalDB(q,
		workload.Uniform("S1", 2, 300, 40, 21),
		workload.Uniform("S2", 2, 300, 40, 22),
		workload.Uniform("S3", 2, 300, 40, 23),
	)
	res := RunGeneral(q, db, GeneralConfig{P: 8, Seed: 24})
	want := refJoin(q, db)
	if !join.EqualTupleSets(res.Output, want) {
		t.Errorf("general algorithm wrong on uniform triangle: got %d, want %d",
			len(res.Output), len(want))
	}
}

func TestRunGeneralTriangleSkewedVertex(t *testing.T) {
	// One popular node: value 0 very frequent in the first column of S1
	// and second column of S3 — a skewed vertex of the triangle.
	q := query.Triangle()
	s1 := workload.PlantedHeavy("S1", 400, 10000, 0, []workload.HeavySpec{{Value: 0, Count: 120}}, 31)
	s2 := workload.Uniform("S2", 2, 400, 60, 32)
	s3 := workload.PlantedHeavy("S3", 400, 10000, 1, []workload.HeavySpec{{Value: 0, Count: 120}}, 33)
	db := generalDB(q, s1, s2, s3)
	res := RunGeneral(q, db, GeneralConfig{P: 8, Seed: 34})
	want := refJoin(q, db)
	if !join.EqualTupleSets(res.Output, want) {
		t.Errorf("general algorithm wrong on skewed triangle: got %d, want %d",
			len(res.Output), len(want))
	}
}

func TestRunGeneralStarSkewedCenter(t *testing.T) {
	// Star query with a heavy center value.
	q := query.Star(2)
	s1 := workload.PlantedHeavy("S1", 300, 10000, 0, []workload.HeavySpec{{Value: 5, Count: 100}}, 41)
	s2 := workload.PlantedHeavy("S2", 300, 10000, 0, []workload.HeavySpec{{Value: 5, Count: 80}}, 42)
	db := generalDB(q, s1, s2)
	res := RunGeneral(q, db, GeneralConfig{P: 8, Seed: 43})
	want := refJoin(q, db)
	if !join.EqualTupleSets(res.Output, want) {
		t.Errorf("general algorithm wrong on skewed star: got %d, want %d",
			len(res.Output), len(want))
	}
}

func TestRunGeneralLoadBeatsVanillaUnderSkew(t *testing.T) {
	q := query.Join2()
	m := 2000
	db := generalDB(q,
		workload.SingleValue("S1", 2, m, 100000, 1, 7, 51),
		workload.SingleValue("S2", 2, m, 100000, 1, 7, 52),
	)
	p := 64
	res := RunGeneral(q, db, GeneralConfig{P: p, Seed: 53, SkipJoin: true})
	vanillaMax := VanillaHashJoinLoads(db, p, 53)
	if res.MaxVirtualBits*3 > vanillaMax {
		t.Errorf("general (%d bits) not clearly better than vanilla (%d bits)",
			res.MaxVirtualBits, vanillaMax)
	}
}

func TestRunGeneralDeterministic(t *testing.T) {
	q := query.Join2()
	db := generalDB(q,
		workload.Zipf("S1", 800, 100000, 1, 1.8, 200, 61),
		workload.Zipf("S2", 800, 100000, 1, 1.8, 200, 62),
	)
	a := RunGeneral(q, db, GeneralConfig{P: 16, Seed: 7})
	b := RunGeneral(q, db, GeneralConfig{P: 16, Seed: 7})
	if a.MaxVirtualBits != b.MaxVirtualBits || len(a.Output) != len(b.Output) ||
		a.VirtualServers != b.VirtualServers {
		t.Error("same seed gave different general runs")
	}
}

func TestInspectBinCombos(t *testing.T) {
	q := query.Join2()
	db := generalDB(q,
		workload.SingleValue("S1", 2, 200, 10000, 1, 7, 71),
		workload.SingleValue("S2", 2, 150, 10000, 1, 7, 72),
	)
	infos := InspectBinCombos(q, db, 16)
	if len(infos) < 2 {
		t.Fatalf("expected B∅ plus at least one heavy combo, got %d", len(infos))
	}
	// B∅ must be present with |C'| = 1.
	foundEmpty := false
	foundZ := false
	for _, in := range infos {
		if len(in.Vars) == 0 {
			foundEmpty = true
			if in.CSize != 1 {
				t.Errorf("B∅ |C'| = %d, want 1", in.CSize)
			}
		}
		if len(in.Vars) == 1 && in.Vars[0] == 2 { // variable z
			foundZ = true
			if in.CSize < 1 {
				t.Error("z-combo should hold the planted hitter")
			}
		}
	}
	if !foundEmpty {
		t.Error("missing B∅")
	}
	if !foundZ {
		t.Error("missing bin combination on {z} for the planted hitter")
	}
}

func TestRunGeneralPanicsOnBadP(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	RunGeneral(query.Join2(), data.NewDatabase(), GeneralConfig{P: 1})
}

func TestRunGeneralEmptyDatabase(t *testing.T) {
	q := query.Join2()
	db := generalDB(q,
		data.NewRelation("S1", 2, 10),
		data.NewRelation("S2", 2, 10),
	)
	res := RunGeneral(q, db, GeneralConfig{P: 4, Seed: 1})
	if len(res.Output) != 0 {
		t.Error("empty database should produce no answers")
	}
}

func TestRunGeneralTernaryAtomSkewed(t *testing.T) {
	// Ternary atom with a heavy value on the shared variable z.
	q := query.MustParse("q(x,y,z,w) = R(x,y,z), S(z,w)")
	db := data.NewDatabase()
	r := data.NewRelation("R", 3, 10000)
	// 60 tuples share z=5; 60 light.
	for i := int64(0); i < 60; i++ {
		r.Add(i, i+100, 5)
		r.Add(i+200, i+300, 1000+i)
	}
	s := data.NewRelation("S", 2, 10000)
	for i := int64(0); i < 40; i++ {
		s.Add(5, i+400)
		s.Add(1000+i, i+500)
	}
	db.Put(r)
	db.Put(s)
	res := RunGeneral(q, db, GeneralConfig{P: 8, Seed: 3})
	want := refJoin(q, db)
	if len(want) == 0 {
		t.Fatal("instance has no answers")
	}
	if !join.EqualTupleSets(res.Output, want) {
		t.Errorf("ternary general: %d vs %d tuples", len(res.Output), len(want))
	}
}

func TestRunGeneralDeepBinCombos(t *testing.T) {
	// A ternary atom with a heavy (x,z) PAIR drives the C'(B) induction to
	// depth 2: x'={z} extends through R's overweight (x,z) hitter into
	// x={x,z} (Appendix D's inductive step).
	q := query.MustParse("q(x,y,z,w) = R(x,y,z), S(z,w)")
	db := data.NewDatabase()
	r := data.NewRelation("R", 3, 10000)
	for i := int64(0); i < 48; i++ {
		r.Add(7, 100+i, 5) // pair (x=7, z=5) occurs 48 times
	}
	for i := int64(0); i < 48; i++ {
		r.Add(500+i, 600+i, 1000+i) // light remainder
	}
	s := data.NewRelation("S", 2, 10000)
	for i := int64(0); i < 40; i++ {
		s.Add(5, 200+i) // z=5 heavy in S too
		s.Add(1000+i, 300+i)
	}
	db.Put(r)
	db.Put(s)

	infos := InspectBinCombos(q, db, 8)
	deep := false
	for _, in := range infos {
		if len(in.Vars) >= 2 {
			deep = true
		}
	}
	if !deep {
		t.Errorf("expected a |x| >= 2 bin combination, got %+v", infos)
	}

	res := RunGeneral(q, db, GeneralConfig{P: 8, Seed: 5})
	want := refJoin(q, db)
	if len(want) == 0 {
		t.Fatal("instance has no answers")
	}
	if !join.EqualTupleSets(res.Output, want) {
		t.Errorf("deep-combo run wrong: %d vs %d tuples", len(res.Output), len(want))
	}
}

func TestRunGeneralByComboAccounting(t *testing.T) {
	q := query.Join2()
	db := generalDB(q,
		workload.SingleValue("S1", 2, 400, 10000, 1, 7, 1),
		workload.SingleValue("S2", 2, 400, 10000, 1, 7, 2),
	)
	res := RunGeneral(q, db, GeneralConfig{P: 16, Seed: 5, SkipJoin: true})
	if len(res.ByCombo) != res.NumBinCombos {
		t.Fatalf("ByCombo has %d entries, want %d", len(res.ByCombo), res.NumBinCombos)
	}
	var max int64
	for _, c := range res.ByCombo {
		if c.MaxBits > max {
			max = c.MaxBits
		}
		if c.Predicted <= 0 || c.CSize < 1 {
			t.Errorf("combo %+v incomplete", c)
		}
	}
	if max != res.MaxVirtualBits {
		t.Errorf("per-combo max %d != overall %d", max, res.MaxVirtualBits)
	}
	// Corollary 4.4 shape: each combo's load within polylog of
	// max(m_j/p, p^λ).
	mjOverP := float64(db.MustGet("S1").Bits()) / 16
	for _, c := range res.ByCombo {
		budget := c.Predicted
		if mjOverP > budget {
			budget = mjOverP
		}
		if float64(c.MaxBits) > 40*budget {
			t.Errorf("combo vars=%v load %d far above its Cor 4.4 budget %.0f",
				c.Vars, c.MaxBits, budget)
		}
	}
}
