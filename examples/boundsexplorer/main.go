// Lower-bound explorer: for each query in the catalog, print τ*, the
// packing vertices pk(q), the space exponent, and how the communication
// bound moves when the data becomes skewed — the content of Theorems 1.1
// and 1.2 as one table.
package main

import (
	"fmt"

	"repro"
)

func main() {
	const (
		m      = 1 << 14
		p      = 64
		domain = 1 << 20
	)
	queries := []*repro.Query{
		repro.CartesianQuery(2),
		repro.Join2Query(),
		repro.PathQuery(3),
		repro.TriangleQuery(),
		repro.CycleQuery(4),
		repro.StarQuery(3),
	}
	fmt.Printf("%-8s %6s %8s %6s %16s %16s\n",
		"query", "τ*", "ε", "|pk|", "L_lower uniform", "L_lower skewed")
	for _, q := range queries {
		bitsM := make([]float64, q.NumAtoms())
		uniform := repro.NewDatabase()
		skewed := repro.NewDatabase()
		for j, a := range q.Atoms {
			var u, s *repro.Relation
			if a.Arity() == 2 {
				u = repro.MatchingRelation(a.Name, 2, m, domain, int64(j+1))
				s = repro.SingleValueRelation(a.Name, 2, m, domain, 1, 7, int64(j+1))
			} else {
				u = repro.UniformRelation(a.Name, a.Arity(), m, domain, int64(j+1))
				s = u.Clone()
			}
			uniform.Put(u)
			skewed.Put(s)
			bitsM[j] = float64(u.Bits())
		}
		lu, _ := repro.LowerBound(q, uniform, p)
		ls, _ := repro.LowerBound(q, skewed, p)
		fmt.Printf("%-8s %6.2f %8.3f %6d %16.0f %16.0f\n",
			q.Name, repro.Tau(q), repro.SpaceExponent(q, bitsM, p),
			len(repro.PackingVertices(q)), lu, ls)
	}
	fmt.Println("\nSkew raises L_lower exactly when a residual packing saturates the")
	fmt.Println("skewed variable (Theorem 4.7); matchings never do (Theorem 3.5 is tight).")
}
