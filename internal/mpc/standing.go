// Standing-query storage: the per-server resident state an incremental
// (delta-routed) evaluation maintains between advances.
//
// A one-round plan's communication phase partitions every base relation
// across virtual servers; the local phase joins each server's fragments.
// A standing query freezes that layout and keeps, per virtual server, the
// base-side fragments as hash indexes keyed exactly the way the local
// join will probe them (Resident), plus one global counted output fragment
// (Counted) whose per-tuple derivation counts make deletes retract exactly:
// an output tuple is live while its count is positive, and routing a
// delete through the same deterministic router removes precisely the
// derivations its insert created.
package mpc

import (
	"fmt"
	"sort"

	"repro/internal/data"
)

// SenderRouter resolves the router instance one goroutine should use for
// routing: the private-scratch instance for PerSenderRouter
// implementations, the router itself otherwise. Standing queries route
// delta tuples outside a communication phase (single-threaded, one tuple
// at a time) and need the same per-goroutine discipline the phase workers
// get internally.
func SenderRouter(r Router) Router { return forSender(r) }

// ResidentIndex names one hash index a standing query maintains: the
// fragment of relation Rel indexed by the (ascending) attribute positions
// Pos. An empty Pos indexes the whole fragment under the zero key — the
// probe shares no bound variables (disconnected queries).
type ResidentIndex struct {
	Rel string
	Pos []int
}

// ResidentLayout is the set of indexes every server of one standing query
// maintains, deduplicated: two probes of the same relation on the same
// position set share an index. Build it once per standing query with
// AddIndex and share it (read-only) across all servers.
type ResidentLayout struct {
	Kinds []ResidentIndex
	// byRel maps a relation name to the kind IDs maintained over it.
	byRel map[string][]int
}

// AddIndex interns the index (rel, pos) and returns its kind ID. pos is
// copied and sorted ascending (the canonical probe order).
func (l *ResidentLayout) AddIndex(rel string, pos []int) int {
	sorted := append([]int(nil), pos...)
	sort.Ints(sorted)
	for id, k := range l.Kinds {
		if k.Rel != rel || len(k.Pos) != len(sorted) {
			continue
		}
		same := true
		for i := range sorted {
			if k.Pos[i] != sorted[i] {
				same = false
				break
			}
		}
		if same {
			return id
		}
	}
	if l.byRel == nil {
		l.byRel = make(map[string][]int)
	}
	id := len(l.Kinds)
	l.Kinds = append(l.Kinds, ResidentIndex{Rel: rel, Pos: sorted})
	l.byRel[rel] = append(l.byRel[rel], id)
	return id
}

// KindsOf returns the kind IDs maintained over rel (nil when the relation
// has no index — it is not part of the standing query).
func (l *ResidentLayout) KindsOf(rel string) []int { return l.byRel[rel] }

// Resident is one virtual server's resident base-side state: for every
// index kind of the layout, a hash map from probe key to the fragment
// tuples matching it. Tuples are stored by value (copied on insert), so
// resident state never aliases a mutating relation.
type Resident struct {
	layout *ResidentLayout
	idx    []map[data.Key][]data.Tuple
	// n counts stored tuples (each once, however many indexes cover it),
	// maintained on Insert/Delete so Tuples is O(1) — Advance reads it on
	// every call and must stay O(delta).
	n int64
}

// NewResident returns an empty per-server store for the layout.
func NewResident(layout *ResidentLayout) *Resident {
	return &Resident{layout: layout, idx: make([]map[data.Key][]data.Tuple, len(layout.Kinds))}
}

// keyFor projects t onto the kind's positions.
func keyFor(k *ResidentIndex, t data.Tuple) data.Key {
	switch len(k.Pos) {
	case 0:
		return data.Key{}
	case 1:
		return data.Key1(t[k.Pos[0]])
	}
	proj := make(data.Tuple, len(k.Pos))
	for i, p := range k.Pos {
		proj[i] = t[p]
	}
	return data.KeyOf(proj)
}

// Insert adds one tuple of rel to every index maintained over it. The
// tuple is copied once; all indexes share the copy.
func (r *Resident) Insert(rel string, t data.Tuple) {
	kinds := r.layout.byRel[rel]
	if len(kinds) == 0 {
		return
	}
	r.n++
	cp := append(data.Tuple(nil), t...)
	for _, id := range kinds {
		if r.idx[id] == nil {
			r.idx[id] = make(map[data.Key][]data.Tuple)
		}
		k := keyFor(&r.layout.Kinds[id], cp)
		r.idx[id][k] = append(r.idx[id][k], cp)
	}
}

// Delete removes one occurrence of t from every index maintained over rel,
// reporting whether it was present (fragments are duplicate-free, so the
// occurrence is unique). A false return means the resident state is
// inconsistent with the op stream — the caller should rebuild from
// scratch.
func (r *Resident) Delete(rel string, t data.Tuple) bool {
	kinds := r.layout.byRel[rel]
	if len(kinds) == 0 {
		return true
	}
	found := false
	for _, id := range kinds {
		m := r.idx[id]
		if m == nil {
			continue
		}
		k := keyFor(&r.layout.Kinds[id], t)
		bucket := m[k]
		for i, bt := range bucket {
			if equalTuple(bt, t) {
				last := len(bucket) - 1
				bucket[i] = bucket[last]
				bucket[last] = nil
				if last == 0 {
					delete(m, k)
				} else {
					m[k] = bucket[:last]
				}
				found = true
				break
			}
		}
	}
	if found {
		r.n--
	}
	return found
}

// Probe returns the fragment tuples of index kind `kind` matching key —
// the bucket is live internal storage, read-only for the caller and only
// valid until the next Insert/Delete.
func (r *Resident) Probe(kind int, key data.Key) []data.Tuple {
	m := r.idx[kind]
	if m == nil {
		return nil
	}
	return m[key]
}

// Tuples returns the number of distinct stored tuples across the server's
// fragments (each tuple counted once however many indexes cover it).
func (r *Resident) Tuples() int64 { return r.n }

func equalTuple(a, b data.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counted is a retraction-aware output fragment: a multiset of tuples with
// per-tuple derivation counts plus an incrementally maintained materialized
// view of the live tuples (count > 0). Counting-based maintenance makes
// deletes exact: an advance that removes the last derivation of a tuple
// retracts it from the materialized result, and overlapping derivations
// (the §4.2 bin combinations produce the same answer in several
// combinations) retire one at a time without ever retracting early.
type Counted struct {
	counts map[data.Key]int64
	pos    map[data.Key]int
	tuples []data.Tuple
}

// NewCounted returns an empty counted fragment.
func NewCounted() *Counted {
	return &Counted{counts: make(map[data.Key]int64), pos: make(map[data.Key]int)}
}

// Add folds n (positive or negative) derivations of t into the fragment
// and reports the materialization transition: appeared (count left zero
// going up) or vanished (count reached zero going down). A negative count
// is an inconsistency — the caller routed a retraction that was never
// derived — and panics, because continuing would silently corrupt the
// standing result.
func (c *Counted) Add(t data.Tuple, n int64) (appeared, vanished bool) {
	if n == 0 {
		return false, false
	}
	k := data.KeyOf(t)
	old := c.counts[k]
	now := old + n
	switch {
	case now < 0:
		panic(fmt.Sprintf("mpc: counted fragment: %v retracted below zero (%d%+d)", t, old, n))
	case now == 0:
		delete(c.counts, k)
	default:
		c.counts[k] = now
	}
	if old == 0 && now > 0 {
		c.pos[k] = len(c.tuples)
		c.tuples = append(c.tuples, append(data.Tuple(nil), t...))
		return true, false
	}
	if old > 0 && now == 0 {
		i := c.pos[k]
		last := len(c.tuples) - 1
		if i != last {
			c.tuples[i] = c.tuples[last]
			c.pos[data.KeyOf(c.tuples[i])] = i
		}
		c.tuples[last] = nil
		c.tuples = c.tuples[:last]
		delete(c.pos, k)
		return false, true
	}
	return false, false
}

// Count returns the derivation count of key (0 when absent).
func (c *Counted) Count(k data.Key) int64 { return c.counts[k] }

// Len returns the number of live (count > 0) tuples.
func (c *Counted) Len() int { return len(c.tuples) }

// Tuples returns the live tuples. The slice and its rows are internal
// storage: read-only, valid until the next Add.
func (c *Counted) Tuples() []data.Tuple { return c.tuples }

// Each calls f on every live tuple with its derivation count.
func (c *Counted) Each(f func(t data.Tuple, count int64)) {
	for _, t := range c.tuples {
		f(t, c.counts[data.KeyOf(t)])
	}
}
