package codec

import (
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/workload"
)

func TestBitWriterReaderRoundTrip(t *testing.T) {
	var w BitWriter
	vals := []uint64{0, 1, 5, 1023, 7}
	widths := []int{1, 3, 4, 10, 3}
	for i, v := range vals {
		w.WriteBits(v, widths[i])
	}
	r := NewBitReader(w.Bytes())
	for i, want := range vals {
		got, err := r.ReadBits(widths[i])
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("value %d: got %d, want %d", i, got, want)
		}
	}
}

func TestBitWriterBitCount(t *testing.T) {
	var w BitWriter
	w.WriteBits(3, 7)
	w.WriteBits(1, 9)
	if w.Bits() != 16 {
		t.Errorf("Bits = %d, want 16", w.Bits())
	}
}

func TestBitReaderShortBuffer(t *testing.T) {
	r := NewBitReader([]byte{0xFF})
	if _, err := r.ReadBits(9); err == nil {
		t.Error("expected short-buffer error")
	}
}

func TestWriteBitsPanicsOnBadWidth(t *testing.T) {
	for _, width := range []int{0, 65} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			var w BitWriter
			w.WriteBits(1, width)
		}()
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rel := workload.Uniform("S", 3, 500, 1000, 1)
	wire := Encode(rel)
	back, err := Decode("S", wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != rel.Size() || back.Arity != rel.Arity || back.Domain != rel.Domain {
		t.Fatalf("shape mismatch: %d/%d/%d", back.Size(), back.Arity, back.Domain)
	}
	for i := 0; i < rel.Size(); i++ {
		if rel.Tuple(i).Key() != back.Tuple(i).Key() {
			t.Fatalf("tuple %d differs", i)
		}
	}
}

func TestPayloadBitsMatchesModel(t *testing.T) {
	// The wire payload must realize exactly M_j = a·m·⌈log₂ n⌉ bits.
	rel := workload.Uniform("S", 2, 321, 1<<13, 2)
	var w BitWriter
	width := data.BitsPerValue(rel.Domain)
	rel.Each(func(_ int, tu data.Tuple) bool {
		for _, v := range tu {
			w.WriteBits(uint64(v), width)
		}
		return true
	})
	if int64(w.Bits()) != rel.Bits() {
		t.Errorf("payload %d bits, model says %d", w.Bits(), rel.Bits())
	}
	if PayloadBits(rel) != rel.Bits() {
		t.Error("PayloadBits disagrees")
	}
}

func TestEncodeEmptyRelation(t *testing.T) {
	rel := data.NewRelation("E", 2, 16)
	back, err := Decode("E", Encode(rel))
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != 0 {
		t.Errorf("Size = %d", back.Size())
	}
}

func TestDecodeCorruptHeaders(t *testing.T) {
	if _, err := Decode("X", nil); err == nil {
		t.Error("nil wire should fail")
	}
	if _, err := Decode("X", []byte{2}); err == nil {
		t.Error("truncated header should fail")
	}
	// Valid header claiming more tuples than the payload holds.
	rel := data.NewRelation("X", 1, 16)
	rel.Add(3)
	wire := Encode(rel)
	wire = wire[:len(wire)-1] // chop payload
	if _, err := Decode("X", wire); err == nil {
		t.Error("chopped payload should fail")
	}
}

func TestDecodeDomainOneValues(t *testing.T) {
	rel := data.NewRelation("D", 2, 1) // all values 0, width 1
	rel.Add(0, 0)
	rel.Add(0, 0)
	back, err := Decode("D", Encode(rel))
	if err != nil {
		t.Fatal(err)
	}
	if back.Size() != 2 {
		t.Errorf("Size = %d", back.Size())
	}
}

// Property: encode/decode is the identity on random relations.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, arity8, m8 uint8) bool {
		arity := 1 + int(arity8%3)
		m := 1 + int(m8%64)
		domain := int64(1 + (seed&0xFF)*7 + 2)
		if pow := int64(1); true {
			for i := 0; i < arity; i++ {
				pow *= domain
			}
			if int64(m) > pow/2 {
				return true // skip too-dense draws
			}
		}
		rel := workload.Uniform("R", arity, m, domain, seed)
		back, err := Decode("R", Encode(rel))
		if err != nil {
			return false
		}
		if back.Size() != rel.Size() {
			return false
		}
		for i := 0; i < rel.Size(); i++ {
			if rel.Tuple(i).Key() != back.Tuple(i).Key() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
