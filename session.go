package repro

import (
	"context"
	"runtime"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/exec"
	"repro/internal/mpc"
)

// Config is the immutable configuration of a Session. The zero value is
// not usable: P must be at least 2.
type Config struct {
	// P is the physical server count queries execute on (≥ 2). Individual
	// calls may override it with WithP.
	P int
	// Seed pins every hash family the session derives; equal seeds make
	// runs reproducible.
	Seed uint64
	// PlanCacheCapacity bounds the plan cache: 0 means the default (64),
	// negative means unbounded.
	PlanCacheCapacity int
	// ConsiderMultiRound adds multi-round pipelines to plan selection;
	// WithMultiRound overrides it per call.
	ConsiderMultiRound bool
	// ReplanDriftFactor arms adaptive re-planning: when an execution's
	// realized max load exceeds ReplanDriftFactor × the plan's predicted
	// bits and the database content has changed since the plan was built
	// (Database.Apply), the cached plan is marked stale and the next Exec
	// replans against current statistics, reporting Result.Replanned.
	// 0 disables re-planning; values in (0, 1) are rejected by Open.
	ReplanDriftFactor float64
	// ClusterPoolDepth bounds the session's warm-cluster pool per size
	// bucket (0 means the default, 4); see PoolStats.
	ClusterPoolDepth int
	// ResidentChunkTuples sets the chunk size (in tuples) for resident
	// fragment transfers and standing-query seeding; 0 means the tuned
	// default (see mpc.DefaultResidentChunkTuples and
	// BenchmarkResidentChunk), negative is rejected by Open.
	ResidentChunkTuples int
	// MaxInFlight bounds the Exec calls executing concurrently: excess
	// calls wait in a FIFO queue (MaxQueue) and beyond that are shed with
	// ErrOverloaded. 0 means a generous default, max(2×GOMAXPROCS, 8);
	// negative disables the bound entirely (never queues, never sheds).
	MaxInFlight int
	// MaxQueue bounds the admission wait queue; waiting calls honor their
	// context. 0 means a default of max(4×effective MaxInFlight, 64);
	// negative means no queue — calls at capacity shed immediately.
	// Ignored when the in-flight bound is disabled.
	MaxQueue int
	// BackgroundReplan moves drift-triggered replanning off the request
	// path: a drift-marked plan keeps serving (correct for any content,
	// merely load-suboptimal) while a background worker rebuilds it against
	// fresh statistics and swaps it in — so no Exec ever pays the replan
	// latency. Sessions with it set should be Closed to stop the worker.
	BackgroundReplan bool
	// Faults, when non-nil, arms a seeded deterministic fault-injection
	// schedule (see Faults): injected torn rounds and failed computes are
	// recovered at round/server granularity within Retry's budget
	// (Result.Recovery) and then surface as ErrTornRound /
	// ErrComputeFailed. Robustness tests use it to drive every degradation
	// path without sleeps or real failures.
	Faults *Faults
	// Retry bounds each execution's fault recovery: the total attempts any
	// faulting round or compute phase may consume and the backoff between
	// them. The zero value is the default policy (3 attempts, jittered
	// exponential backoff from 1ms capped at 100ms); MaxAttempts < 0
	// disables recovery so faults surface on first occurrence.
	Retry Retry
	// BreakerThreshold arms the session's circuit breaker: after that many
	// consecutive executions ending in cluster-level faults (post-retry),
	// further Execs fail fast with ErrCircuitOpen while one probe execution
	// at a time tests whether the cluster recovered (see HealthStats). 0
	// disables the breaker; negative is rejected by Open.
	BreakerThreshold int
	// DisableAutoPartition turns off the skew-adaptive storage maintenance
	// Execs drive by default: after planning, relations the plan routes by
	// a single heavy attribute get a heavy-partition column layout
	// (contiguous per-hitter runs) so later Execs bulk-ship whole runs
	// instead of routing tuple by tuple. Rebuilds happen on the mutable
	// master and surface on the next snapshot epoch; Stats reports them as
	// Repartitions.
	DisableAutoPartition bool
}

// Session is the serving-grade entry point: an Engine behind an immutable
// configuration, per-call functional options, context cancellation, and a
// plan cache that databases may mutate under (Database.Apply) with
// adaptive re-planning when realized loads drift from the statistics plans
// were frozen at. Sessions are safe for concurrent use.
//
// Execs read immutable snapshot epochs (Database.Snapshot) rather than
// holding the database's read lock, so queries never block Apply and Apply
// never blocks queries; and every Exec passes an admission gate
// (Config.MaxInFlight/MaxQueue) that sheds excess load with ErrOverloaded
// instead of letting latency collapse. See the package documentation's
// "Serving under overload" discussion.
//
// Unlike the pre-Session Engine API, a Session never panics on invalid
// input: Open and Exec return errors.
type Session struct {
	eng  *core.Engine
	gate *core.Gate
}

// Open validates cfg and returns a Session.
func Open(cfg Config) (*Session, error) {
	eng, err := core.New(core.Config{
		P:                    cfg.P,
		Seed:                 cfg.Seed,
		PlanCacheCapacity:    cfg.PlanCacheCapacity,
		ConsiderMultiRound:   cfg.ConsiderMultiRound,
		DriftFactor:          cfg.ReplanDriftFactor,
		ClusterPoolDepth:     cfg.ClusterPoolDepth,
		ResidentChunkTuples:  cfg.ResidentChunkTuples,
		BackgroundReplan:     cfg.BackgroundReplan,
		Faults:               cfg.Faults,
		Retry:                cfg.Retry,
		BreakerThreshold:     cfg.BreakerThreshold,
		DisableAutoPartition: cfg.DisableAutoPartition,
	})
	if err != nil {
		return nil, err
	}
	inflight, queue := admissionBounds(cfg.MaxInFlight, cfg.MaxQueue)
	return &Session{eng: eng, gate: core.NewGate(inflight, queue)}, nil
}

// admissionBounds resolves the configured admission limits to the gate's
// (capacity, queue) form. The defaults are deliberately generous — an
// unconfigured session behaves like the ungated one it used to be unless
// traffic is extreme.
func admissionBounds(maxInFlight, maxQueue int) (capacity, queue int) {
	switch {
	case maxInFlight < 0:
		return 0, 0 // unbounded
	case maxInFlight == 0:
		capacity = max(2*runtime.GOMAXPROCS(0), 8)
	default:
		capacity = maxInFlight
	}
	switch {
	case maxQueue < 0:
		return capacity, 0 // no queue: shed at capacity
	case maxQueue == 0:
		return capacity, max(4*capacity, 64)
	default:
		return capacity, maxQueue
	}
}

// Close drains and closes the session: new Exec calls and queued waiters
// fail with ErrSessionClosed, Close blocks until every in-flight call has
// finished, and the session's background workers (BackgroundReplan) are
// stopped. Standing queries opened from the session are independent handles
// and are closed separately. Close is idempotent; it always returns nil
// (the error return is for future compatibility).
func (s *Session) Close() error {
	s.gate.Close()
	s.eng.Close()
	return nil
}

// AdmissionStats reports the session's admission-gate counters: calls
// admitted, queued, and shed, plus current in-flight and queue occupancy.
func (s *Session) AdmissionStats() AdmissionStats { return s.gate.Stats() }

// ExecOption is a per-call option for Session.Exec.
type ExecOption struct {
	apply func(*core.ExecOptions)
}

// WithStrategy forces the plan to use the given strategy instead of
// letting statistics pick one.
func WithStrategy(s Strategy) ExecOption {
	return ExecOption{func(o *core.ExecOptions) {
		forced := s
		o.Strategy = &forced
	}}
}

// WithMultiRound overrides the session's ConsiderMultiRound for this call:
// whether multi-round pipelines compete with the one-round strategies on
// predicted cost.
func WithMultiRound(on bool) ExecOption {
	return ExecOption{func(o *core.ExecOptions) {
		mr := on
		o.MultiRound = &mr
	}}
}

// WithoutCache bypasses the plan cache for this call: plan, execute,
// discard. Diagnostics and one-off queries use it to avoid polluting the
// serving cache.
func WithoutCache() ExecOption {
	return ExecOption{func(o *core.ExecOptions) { o.NoCache = true }}
}

// WithP overrides the session's server count for this call (≥ 2). Plans
// are cached per p, so alternating p values coexist in the cache.
func WithP(p int) ExecOption {
	return ExecOption{func(o *core.ExecOptions) { o.P = p }}
}

// Exec plans and executes q over db, honoring ctx: cancellation is checked
// before planning, before the communication round, and between the rounds
// of a multi-round pipeline, returning ctx.Err() if it fires.
//
// Exec serves from the session's plan cache keyed by (query, database
// identity and schema, p, options that change plan selection) — database
// *content* is deliberately not part of the key, so plans survive
// Database.Apply deltas: a physical plan routes tuples by column position
// and stays correct for any content, merely tuned for the statistics it
// was planned with. Config.ReplanDriftFactor decides when "merely tuned"
// has drifted into "replan it".
//
// Exec first passes the session's admission gate: at most
// Config.MaxInFlight calls execute concurrently, at most Config.MaxQueue
// more wait FIFO (honoring ctx), and beyond that Exec sheds immediately
// with ErrOverloaded; after Session.Close it fails with ErrSessionClosed.
// Once admitted, Exec reads an immutable snapshot epoch of db
// (Database.Snapshot) — it never holds the database lock, so a slow query
// cannot block Database.Apply and a large Apply cannot stall queries; each
// Exec observes the epoch current at admission time.
func (s *Session) Exec(ctx context.Context, q *Query, db *Database, opts ...ExecOption) (Result, error) {
	o := core.ExecOptions{Serving: true}
	for _, opt := range opts {
		if opt.apply != nil {
			opt.apply(&o)
		}
	}
	if err := s.gate.Enter(ctx); err != nil {
		return Result{}, err
	}
	defer s.gate.Leave()
	return s.eng.ExecuteContext(ctx, q, db.Snapshot(), o)
}

// Standing registers q over db as a standing query: it executes once to
// seed per-server resident state and a materialized result, then each
// Advance routes only the tuples of the Deltas applied since the last
// advance — not the database — through the cached physical plan's router,
// maintaining the result incrementally. Deletes retract exactly via
// counting-based multiset maintenance. Single-round plans advance
// incrementally; multi-round pipelines fall back to full re-execution
// behind the same API. The handle observes Database.Apply automatically;
// call Advance to fold pending deltas into the result, and Close when
// done. See StandingQuery for invalidation (schema changes, new heavy
// hitters, ClearPlanCache) and staleness semantics.
func (s *Session) Standing(ctx context.Context, q *Query, db *Database, opts ...ExecOption) (*StandingQuery, error) {
	o := core.ExecOptions{}
	for _, opt := range opts {
		if opt.apply != nil {
			opt.apply(&o)
		}
	}
	// The seed is an execution; it passes the admission gate like any Exec
	// (and a closed session refuses new registrations).
	if err := s.gate.Enter(ctx); err != nil {
		return nil, err
	}
	defer s.gate.Leave()
	return s.eng.Standing(ctx, q, db, o)
}

// Explain renders the engine's plan analysis for q over db (strategy
// choice, per-strategy predicted costs, bounds). Like Exec it reads a
// snapshot epoch, never the database lock.
func (s *Session) Explain(q *Query, db *Database) string {
	return s.eng.Explain(q, db.Snapshot())
}

// CacheStats reports the session's plan-cache counters, including
// drift-triggered Replans.
func (s *Session) CacheStats() CacheStats { return s.eng.CacheStats() }

// PoolStats reports the session's warm-cluster pool occupancy — how many
// clusters are parked for reuse and the memory they pin.
func (s *Session) PoolStats() PoolStats { return s.eng.PoolStats() }

// ClearPlanCache drops every cached plan and resets the cache counters.
func (s *Session) ClearPlanCache() { s.eng.ClearPlanCache() }

// HealthStats reports the session's circuit-breaker state and counters.
// Sessions without a breaker (Config.BreakerThreshold zero) report State
// "disabled".
func (s *Session) HealthStats() HealthStats { return s.eng.HealthStats() }

// Typed serving errors, re-exported from the internal packages so callers
// can branch with errors.Is against the public package alone.
var (
	// ErrOverloaded reports an Exec shed at admission: the session was at
	// MaxInFlight with a full wait queue.
	ErrOverloaded = core.ErrOverloaded
	// ErrSessionClosed reports a call made after (or during) Session.Close.
	ErrSessionClosed = core.ErrSessionClosed
	// ErrStandingClosed reports an Advance on a closed StandingQuery.
	ErrStandingClosed = core.ErrStandingClosed
	// ErrTornRound reports an injected communication-round fault that
	// persisted through the retry budget (see Config.Faults, Config.Retry).
	ErrTornRound = mpc.ErrTornRound
	// ErrComputeFailed reports an injected local-compute fault that
	// persisted through the retry budget (see Config.Faults, Config.Retry).
	ErrComputeFailed = mpc.ErrComputeFailed
	// ErrCircuitOpen reports an Exec shed by the session's circuit breaker
	// (Config.BreakerThreshold): the cluster has been faulting
	// persistently, so calls fail fast instead of burning retry budgets.
	ErrCircuitOpen = core.ErrCircuitOpen
)

// Serving-API types re-exported from the internal packages.
type (
	// CacheStats reports plan-cache counters and occupancy.
	CacheStats = core.CacheStats
	// PoolStats reports cluster-pool traffic and occupancy.
	PoolStats = exec.PoolStats
	// AdmissionStats reports admission-gate counters and occupancy.
	AdmissionStats = core.AdmissionStats
	// Faults is a seeded deterministic fault-injection schedule; see
	// Config.Faults.
	Faults = mpc.Faults
	// Delta is a batched database mutation applied by Database.Apply; the
	// maintained statistics make the apply (and every fingerprint after
	// it) cost O(delta), not O(database).
	Delta = data.Delta
	// StandingQuery is a live incremental view over a mutable database;
	// see Session.Standing.
	StandingQuery = core.StandingQuery
	// ResultDelta is the net result change reported by one
	// StandingQuery.Advance.
	ResultDelta = core.ResultDelta
	// StandingStats reports a standing query's cumulative maintenance
	// counters.
	StandingStats = core.StandingStats
	// Retry is the session's fault-recovery policy; see Config.Retry.
	Retry = core.Retry
	// Recovery reports the fault recovery one execution needed; see
	// Result.Recovery.
	Recovery = core.Recovery
	// HealthStats is a snapshot of the session's circuit-breaker state;
	// see Session.HealthStats.
	HealthStats = core.HealthStats
)

// NewDelta returns an empty delta for chaining:
// NewDelta().Insert("S1", 1, 2).Delete("S2", 3, 4).
func NewDelta() *Delta { return new(data.Delta) }
