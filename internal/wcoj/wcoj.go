// Package wcoj implements a generic worst-case optimal join in the style
// of Ngo–Porat–Ré–Rudra ("Worst-case optimal join algorithms", PODS 2012),
// cited as [9] by Beame–Koutris–Suciu: §1 notes that the *sequential*
// complexity of a query is captured by its fractional edge cover (the AGM
// bound), the counterpart of this paper's result that *parallel* one-round
// complexity is captured by the fractional edge packing.
//
// The algorithm proceeds variable by variable: at each level it intersects
// the candidate values of the current variable across all atoms that
// contain it (seeding from the smallest candidate set), then recurses.
// Its running time is within a log factor of the AGM bound — unlike
// binary join plans, which can materialize intermediates asymptotically
// larger than the output (the triangle query being the classic example).
package wcoj

import (
	"sort"

	"repro/internal/data"
	"repro/internal/query"
)

// Join evaluates q over rels with the generic worst-case optimal
// algorithm, returning all answers in q's head order. Input relations must
// be duplicate-free.
func Join(q *query.Query, rels map[string]*data.Relation) []data.Tuple {
	k := q.NumVars()
	// Atoms with their relations; empty/missing → empty result.
	type atomState struct {
		atom query.Atom
		rel  *data.Relation
		// varPos[v] = column of variable v in the atom, or -1.
		varPos []int
		// candidates for the current partial assignment, as row indices.
		rows []int
	}
	states := make([]*atomState, q.NumAtoms())
	for j, a := range q.Atoms {
		rel := rels[a.Name]
		if rel == nil || rel.Size() == 0 {
			return nil
		}
		vp := make([]int, k)
		for i := range vp {
			vp[i] = -1
		}
		for pos, v := range a.Vars {
			vp[v] = pos
		}
		rows := make([]int, rel.Size())
		for i := range rows {
			rows[i] = i
		}
		states[j] = &atomState{atom: a, rel: rel, varPos: vp, rows: rows}
	}

	assignment := make(data.Tuple, k)
	var out []data.Tuple

	// Precompute, per atom and level, the grouping of the FULL relation by
	// that level's value. When an atom reaches a level unrestricted (its
	// rows are still the whole relation), the recursion reuses this map
	// instead of rebuilding it — without this, atoms first touched deep in
	// the recursion are regrouped at every node, costing a quadratic
	// factor on the AGM-hard instances the algorithm exists to handle.
	fullGroups := make([]map[int]map[int64][]int, len(states))
	for si, st := range states {
		fullGroups[si] = make(map[int]map[int64][]int)
		for level := 0; level < k; level++ {
			p := st.varPos[level]
			if p < 0 {
				continue
			}
			m := make(map[int64][]int)
			for i, v := range st.rel.Column(p) { // single-column scan
				m[v] = append(m[v], i)
			}
			fullGroups[si][level] = m
		}
	}
	stateIndex := make(map[*atomState]int, len(states))
	for si, st := range states {
		stateIndex[st] = si
	}

	var rec func(level int)
	rec = func(level int) {
		if level == k {
			out = append(out, append(data.Tuple(nil), assignment...))
			return
		}
		// Atoms containing this variable.
		var touching []*atomState
		for _, st := range states {
			if st.varPos[level] >= 0 {
				touching = append(touching, st)
			}
		}
		if len(touching) == 0 {
			// Variable not in any atom cannot happen on validated queries.
			panic("wcoj: uncovered variable")
		}
		// The smallest candidate list is the pivot: only its rows are
		// grouped by value at this node. Every other atom is checked by
		// intersecting its (sorted) restricted rows with the prebuilt full
		// grouping — never by regrouping its whole restriction, which on
		// AGM-hard instances is what used to reintroduce a quadratic
		// factor per node.
		sort.Slice(touching, func(a, b int) bool {
			return len(touching[a].rows) < len(touching[b].rows)
		})
		pivot := touching[0]
		var pivotGroup map[int64][]int
		if len(pivot.rows) == pivot.rel.Size() {
			pivotGroup = fullGroups[stateIndex[pivot]][level]
		} else {
			pivotGroup = make(map[int64][]int, len(pivot.rows))
			col := pivot.rel.Column(pivot.varPos[level])
			for _, r := range pivot.rows {
				pivotGroup[col[r]] = append(pivotGroup[col[r]], r)
			}
		}
		values := make([]int64, 0, len(pivotGroup))
		for v := range pivotGroup {
			values = append(values, v)
		}
		sort.Slice(values, func(a, b int) bool { return values[a] < values[b] })

		last := level == k-1
		saved := make([][]int, len(touching))
		newRows := make([][]int, len(touching))
		for _, v := range values {
			ok := true
			newRows[0] = pivotGroup[v]
			for ti := 1; ti < len(touching); ti++ {
				st := touching[ti]
				grp := fullGroups[stateIndex[st]][level][v]
				if grp == nil {
					ok = false
					break
				}
				if len(st.rows) == st.rel.Size() {
					newRows[ti] = grp
					continue
				}
				if last {
					// The deepest level never reads the restriction; an
					// existence check suffices.
					if !sortedIntersects(st.rows, grp) {
						ok = false
						break
					}
					newRows[ti] = nil
					continue
				}
				inter := sortedIntersect(st.rows, grp)
				if len(inter) == 0 {
					ok = false
					break
				}
				newRows[ti] = inter
			}
			if !ok {
				continue
			}
			assignment[level] = v
			for ti, st := range touching {
				saved[ti] = st.rows
				st.rows = newRows[ti]
			}
			rec(level + 1)
			for ti, st := range touching {
				st.rows = saved[ti]
			}
		}
	}
	rec(0)
	return out
}

// sortedIntersect intersects two ascending row-index lists by walking the
// smaller and binary-searching the larger. Row lists stay sorted through
// the recursion (initial enumeration, groupings, and intersections all
// preserve ascending order), so the result is sorted too.
func sortedIntersect(a, b []int) []int {
	if len(a) > len(b) {
		a, b = b, a
	}
	var out []int
	for _, x := range a {
		if i := sort.SearchInts(b, x); i < len(b) && b[i] == x {
			out = append(out, x)
		}
	}
	return out
}

// sortedIntersects reports whether two ascending row-index lists share an
// element, early-exiting on the first hit.
func sortedIntersects(a, b []int) bool {
	if len(a) > len(b) {
		a, b = b, a
	}
	for _, x := range a {
		if i := sort.SearchInts(b, x); i < len(b) && b[i] == x {
			return true
		}
	}
	return false
}
