// Package exec is the unified physical execution layer shared by every
// one-round strategy in the repository. The paper's three algorithms —
// HyperCube (§3), the specialized skew join (§4.1), and the general
// bin-combination algorithm (§4.2) — differ only in how they lay out
// virtual servers and route tuples; everything downstream (cluster
// construction, the communication round, local computation, load
// accounting) is identical. Each strategy is therefore a *planner* that
// lowers to a PhysicalPlan, and Run is the single executor they all share,
// so cross-cutting work (plan caching, batched routing, allocation-free
// hot paths) lands here once and benefits every algorithm.
package exec

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/data"
	"repro/internal/join"
	"repro/internal/mpc"
)

// PhysicalPlan is the executable form a strategy planner produces: a
// virtual-server layout, a router over virtual IDs, and the per-server
// local computation. Plans are immutable once built and safe to execute
// repeatedly (and concurrently) — routers that keep mutable scratch must
// implement mpc.PerSenderRouter so every sender goroutine works on its own
// instance. This is what Engine's plan cache stores.
type PhysicalPlan struct {
	// Strategy labels the plan in diagnostics and panics.
	Strategy string
	// Virtual is the number of virtual servers the plan lays out (≥ 1).
	// The paper's skew algorithms allocate Θ(p) of them.
	Virtual int
	// Physical is p, the physical machine count; virtual server v maps to
	// physical machine v mod Physical (round-robin, as the paper assumes).
	Physical int
	// Router decides tuple destinations over virtual IDs in [0, Virtual).
	Router mpc.Router
	// Relations, when non-empty, names the database relations this plan
	// routes; Run then scans only those instead of the whole database.
	// Routers skip foreign relations anyway, so the restriction never
	// changes the result — it keeps a served query's cost independent of
	// unrelated relations living in the same database. Empty means route
	// everything (legacy load-measurement plans).
	Relations []string
	// Local is the per-server local computation; nil means the plan only
	// routes (load-measurement plans).
	Local func(s *mpc.Server) []data.Tuple
	// Dedup removes duplicate answers from the concatenated outputs —
	// needed when sub-plans overlap (the §4.2 bin combinations may produce
	// the same answer in several combinations).
	Dedup bool
	// PredictedBits is the planner's load prediction for this plan (p^λ
	// for HyperCube shares, Eq. 10 for the skew join, max_B p^{λ(B)} for
	// bin combinations).
	PredictedBits float64
	// PartitionHints names the (relation, attribute) pairs whose
	// heavy-partition layout (data.PartitionIndex) this plan's router can
	// exploit through mpc.SpanRouter. Hints are advisory: the serving
	// engine uses them to drive Database.EnsurePartitioned lazily, and an
	// unpartitioned relation simply routes per-tuple.
	PartitionHints []PartitionHint
}

// PartitionHint is one (relation, attribute) pair a plan's router routes
// span-wise when the relation carries a heavy-partition layout on Attr.
type PartitionHint struct {
	Rel  string
	Attr int
}

// Config controls one execution of a plan.
type Config struct {
	// SkipCompute routes and accounts loads only: Output stays empty.
	// Load-focused experiments use this to avoid materializing quadratic
	// join outputs.
	SkipCompute bool
	// Scratch, when non-nil, supplies reusable buffers for Run's load
	// accounting and output concatenation, so repeated executions of a
	// cached plan stop allocating per-server slices every run.
	// Result.PerServerBits and Result.Output then alias the scratch
	// buffers: they are valid until the next Run with the same Scratch
	// (or until the owner calls DetachOutput to let an Output escape).
	Scratch *Scratch
	// Clusters, when non-nil, overrides the pool Run and RunPipeline draw
	// their mpc.Cluster from; nil uses a process-wide shared pool. Engines
	// own a pool per instance so cached-plan serving reuses warm clusters.
	Clusters *ClusterPool
	// Ctx, when non-nil, cancels the execution: Run checks it before the
	// communication round, the sharded engine's route workers check it at
	// every send-part checkpoint inside the round, and RunPipeline
	// additionally checks between rounds. A canceled execution returns the
	// context's error with a zero result; the cluster is still returned to
	// the pool (Reset on Put discards any partial deliveries).
	Ctx context.Context
	// ResidentChunkTuples caps the rows one send part carries out of a
	// resident fragment when a pipeline shuffles intermediates
	// server-to-server; 0 means mpc.DefaultResidentChunkTuples. See
	// BenchmarkResidentChunk for the tradeoff the default balances.
	ResidentChunkTuples int
	// Faults, when non-nil, arms the seeded fault-injection schedule for
	// this execution (see mpc.Faults). Injected faults are recovered in
	// place within the Retry budget — torn rounds are re-driven against
	// the unchanged pre-round state, failed compute phases re-run only the
	// failed servers — and surface as typed errors (mpc.ErrTornRound,
	// mpc.ErrComputeFailed) once the budget is spent.
	Faults *mpc.Faults
	// Retry bounds the execution's fault recovery; the zero value is the
	// default policy (see Retry).
	Retry Retry
	// Recovery, when non-nil, accumulates the execution's recovery stats
	// (attempts, rounds replayed, servers recomputed, backoff waits) so
	// callers can surface them without threading a result through every
	// strategy wrapper.
	Recovery *Recovery
}

// ctxErr returns the configured context's cancellation error, if any.
func (cfg *Config) ctxErr() error {
	if cfg.Ctx == nil {
		return nil
	}
	return cfg.Ctx.Err()
}

// arm installs the execution's per-run state on a cluster drawn from the
// pool (Put's Reset clears it again).
func (cfg *Config) arm(c *mpc.Cluster) {
	c.ResidentChunk = cfg.ResidentChunkTuples
	c.Ctx = cfg.Ctx
	c.Faults = cfg.Faults
}

// recoverable reports whether a round error is an expected runtime
// degradation — an injected fault or the configured context firing — rather
// than a router-contract violation (which stays a panic: planners validate
// their layouts, so a bad destination is an internal bug).
func (cfg *Config) recoverable(err error) bool {
	if errors.Is(err, mpc.ErrTornRound) || errors.Is(err, mpc.ErrComputeFailed) {
		return true
	}
	if cfg.Ctx != nil && cfg.Ctx.Err() != nil {
		return true
	}
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Scratch holds Run's reusable load-accounting and output buffers. A
// Scratch may be reused across any number of Run calls (plans of different
// sizes included) but must not be shared by concurrent runs.
type Scratch struct {
	perServer []int64
	physical  []int64
	output    []data.Tuple
}

// DetachOutput relinquishes the pooled output buffer: the owner is about
// to hand a Result.Output aliasing it to code that outlives this Scratch's
// next reuse, so the next Run must allocate a fresh one instead of
// overwriting the escaped slice.
func (s *Scratch) DetachOutput() { s.output = nil }

// appendOuts concatenates per-server compute outputs into buf in server
// order, sizing the allocation once.
func appendOuts(buf []data.Tuple, outs [][]data.Tuple) []data.Tuple {
	total := 0
	for _, o := range outs {
		total += len(o)
	}
	if cap(buf) < total {
		buf = make([]data.Tuple, 0, total)
	}
	buf = buf[:0]
	for _, o := range outs {
		buf = append(buf, o...)
	}
	return buf
}

// grow returns buf resized to n with every element zeroed, reusing the
// backing array when capacity allows.
func grow(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Result reports one execution of a plan: the answers plus the realized
// loads, both over virtual servers and rolled up onto physical machines.
type Result struct {
	Output []data.Tuple
	// Loads summarizes the virtual-server loads (with replication rate
	// relative to the input database).
	Loads mpc.LoadSummary
	// MaxVirtualBits is the maximum load over virtual servers — the
	// quantity the paper's theorems bound.
	MaxVirtualBits int64
	// MaxPhysicalBits maps virtual servers onto the Physical machines
	// round-robin and reports the max per-machine load.
	MaxPhysicalBits int64
	// PerServerBits is the received load of each virtual server, indexed
	// by virtual ID; planners use it for strategy-specific breakdowns
	// (per-class, per-bin-combination).
	PerServerBits []int64
}

// Run executes plan over db: it draws a pooled cluster sized to the plan,
// runs the one communication round, performs the local computation,
// accounts loads, and parks the cluster for reuse. Routing errors are
// internal bugs (planners validate their layouts), so Run panics on them;
// the errors Run returns are cfg.Ctx's cancellation and injected faults
// from cfg.Faults (mpc.ErrTornRound, mpc.ErrComputeFailed) that outlived
// the cfg.Retry budget — a torn round is re-driven in place and a failed
// compute phase re-runs only the failed servers first.
func Run(plan *PhysicalPlan, db *data.Database, cfg Config) (Result, error) {
	if plan.Virtual < 1 {
		panic(fmt.Sprintf("exec: %s plan has %d virtual servers", plan.Strategy, plan.Virtual))
	}
	if plan.Physical < 1 {
		panic(fmt.Sprintf("exec: %s plan has %d physical servers", plan.Strategy, plan.Physical))
	}
	if err := cfg.ctxErr(); err != nil {
		return Result{}, err
	}
	pool := cfg.Clusters
	if pool == nil {
		pool = &sharedClusters
	}
	cluster := pool.Get(plan.Virtual)
	cfg.arm(cluster)
	rt := newRetrier(&cfg, cluster)
	err := rt.driveRound(nil, func() error {
		if len(plan.Relations) > 0 {
			rels := make([]*data.Relation, len(plan.Relations))
			for i, name := range plan.Relations {
				rels[i] = db.MustGet(name)
			}
			return cluster.RoundRelations(plan.Router, rels...)
		}
		return cluster.Round(db, plan.Router)
	})
	if err != nil {
		if cfg.recoverable(err) {
			pool.Put(cluster)
			return Result{}, err
		}
		panic(fmt.Sprintf("exec: %s routing failed: %v", plan.Strategy, err))
	}
	if err := cfg.ctxErr(); err != nil {
		pool.Put(cluster)
		return Result{}, err
	}
	var res Result
	if plan.Local != nil && !cfg.SkipCompute {
		outs := make([][]data.Tuple, plan.Virtual)
		if err := rt.driveCompute(plan.Strategy, outs, plan.Local); err != nil {
			pool.Put(cluster)
			return Result{}, err
		}
		var buf []data.Tuple
		if cfg.Scratch != nil {
			buf = cfg.Scratch.output
		}
		res.Output = appendOuts(buf, outs)
		if cfg.Scratch != nil {
			cfg.Scratch.output = res.Output
		}
		if plan.Dedup {
			// Dedup compacts in place, so the deduped view still reuses
			// (and is still owned by) the scratch output buffer.
			res.Output = join.Dedup(res.Output)
		}
	}
	res.Loads = cluster.Loads().WithReplication(db.TotalBits())
	res.MaxVirtualBits = res.Loads.MaxBits
	var physical []int64
	if cfg.Scratch != nil {
		cfg.Scratch.perServer = grow(cfg.Scratch.perServer, plan.Virtual)
		cfg.Scratch.physical = grow(cfg.Scratch.physical, plan.Physical)
		res.PerServerBits = cfg.Scratch.perServer
		physical = cfg.Scratch.physical
	} else {
		res.PerServerBits = make([]int64, plan.Virtual)
		physical = make([]int64, plan.Physical)
	}
	for _, sv := range cluster.Servers {
		res.PerServerBits[sv.ID] = sv.BitsIn
		physical[sv.ID%plan.Physical] += sv.BitsIn
	}
	for _, b := range physical {
		if b > res.MaxPhysicalBits {
			res.MaxPhysicalBits = b
		}
	}
	// Everything the result needs has been copied or computed; the
	// cluster can serve the next run.
	pool.Put(cluster)
	return res, nil
}
