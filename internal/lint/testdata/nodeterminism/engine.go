// Package p distills determinism patterns from the engine core. The
// harness checks it under the import path repro/internal/mpc, so the
// violations mirror real regressions and the negatives mirror the seeded
// idioms mpc/exec actually use.
package p

import (
	"math/rand"
	"time"
)

// BadClock reads the wall clock in the deterministic core.
func BadClock() int64 {
	start := time.Now()          // want `time.Now in the deterministic core`
	d := time.Since(start)       // want `time.Since in the deterministic core`
	time.Sleep(time.Millisecond) // want `time.Sleep in the deterministic core`
	return int64(d)
}

// BadGlobalRand draws from process-global randomness.
func BadGlobalRand() int {
	return rand.Intn(10) // want `global math/rand.Intn`
}

// GoodSeeded mirrors the engine idiom: explicitly seeded sources only.
func GoodSeeded(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(10)
}

// Sanctioned mirrors Retry's injectable-default escape hatch: a real wait
// is the documented fallback, waived with an audited directive.
func Sanctioned(d time.Duration) {
	//skewlint:allow nodeterminismbreak — injectable default, mirrors exec.Retry
	time.Sleep(d)
}
