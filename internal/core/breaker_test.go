package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/mpc"
)

// TestBreakerStateMachine drives the breaker struct directly through every
// transition: trip at the threshold, fast-fail behind an in-flight probe,
// neutral outcomes releasing the probe slot without counting, and a probe
// success closing the circuit.
func TestBreakerStateMachine(t *testing.T) {
	b := &breaker{threshold: 2}
	e := &Engine{P: 2, breaker: b}

	if probe, err := b.admit(); probe || err != nil {
		t.Fatalf("closed breaker: admit = (%v, %v)", probe, err)
	}
	b.done(false, breakerFault)
	if st := e.HealthStats(); st.State != "closed" || st.ConsecutiveFailures != 1 {
		t.Fatalf("after one fault: %+v", st)
	}
	b.done(false, breakerFault)
	if st := e.HealthStats(); st.State != "open" || st.Trips != 1 {
		t.Fatalf("threshold reached but not open: %+v", st)
	}

	// The next caller is the probe; callers behind it are shed.
	probe, err := b.admit()
	if !probe || err != nil {
		t.Fatalf("open breaker first admit = (%v, %v), want probe", probe, err)
	}
	if st := e.HealthStats(); st.State != "half-open" {
		t.Fatalf("probe in flight but state = %q", st.State)
	}
	if _, err := b.admit(); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("second admit behind probe: err = %v, want ErrCircuitOpen", err)
	}
	// A neutral outcome (cancellation) releases the slot without judging
	// cluster health: still open, streak untouched, next caller probes.
	b.done(probe, breakerNeutral)
	if st := e.HealthStats(); st.State != "open" || st.ConsecutiveFailures != 2 {
		t.Fatalf("after neutral probe: %+v", st)
	}

	probe, err = b.admit()
	if !probe || err != nil {
		t.Fatalf("re-admit after neutral = (%v, %v), want probe", probe, err)
	}
	b.done(probe, breakerFault)
	if st := e.HealthStats(); st.State != "open" || st.ConsecutiveFailures != 3 {
		t.Fatalf("after failed probe: %+v", st)
	}

	probe, _ = b.admit()
	b.done(probe, breakerOK)
	st := e.HealthStats()
	if st.State != "closed" || st.ConsecutiveFailures != 0 {
		t.Fatalf("probe success did not close the circuit: %+v", st)
	}
	if st.Probes != 3 || st.FastFails != 1 || st.Failures != 3 || st.Successes != 1 {
		t.Fatalf("counters: %+v", st)
	}
}

// TestBreakerTripsProbesAndRecovers drives the breaker through the engine:
// consecutive post-retry fault failures trip it, probes keep testing the
// cluster, and the first clean probe restores service.
func TestBreakerTripsProbesAndRecovers(t *testing.T) {
	mk := func(seed uint64) *mpc.Faults { return &mpc.Faults{Seed: seed, TornRound: 0.5} }
	// Executions consume rounds 1, 2, 3, 4 in order; recovery is disabled so
	// each round's first attempt decides the execution.
	seed := findSeed(t, mk, func(f *mpc.Faults) bool {
		return f.WouldTearRoundAttempt(1, 1) && f.WouldTearRoundAttempt(2, 1) &&
			f.WouldTearRoundAttempt(3, 1) && !f.WouldTearRoundAttempt(4, 1)
	})
	e, err := New(Config{P: 8, Seed: 3, Faults: mk(seed), Retry: Retry{MaxAttempts: -1}, BreakerThreshold: 2})
	if err != nil {
		t.Fatal(err)
	}
	q, o := faultCase()
	hc := HyperCube
	exec := func() error {
		_, err := e.ExecuteContext(context.Background(), q, o.db, ExecOptions{Strategy: &hc})
		return err
	}

	if err := exec(); !errors.Is(err, mpc.ErrTornRound) {
		t.Fatalf("exec 1: err = %v, want ErrTornRound", err)
	}
	if st := e.HealthStats(); st.State != "closed" {
		t.Fatalf("tripped below threshold: %+v", st)
	}
	if err := exec(); !errors.Is(err, mpc.ErrTornRound) {
		t.Fatalf("exec 2: err = %v, want ErrTornRound", err)
	}
	if st := e.HealthStats(); st.State != "open" || st.Trips != 1 {
		t.Fatalf("threshold reached but not open: %+v", st)
	}

	// Execution 3 is the probe — admitted, fails, circuit stays open.
	if err := exec(); !errors.Is(err, mpc.ErrTornRound) {
		t.Fatalf("probe exec: err = %v, want ErrTornRound", err)
	}
	if st := e.HealthStats(); st.State != "open" || st.Probes != 1 {
		t.Fatalf("after failed probe: %+v", st)
	}

	// Execution 4's round is clean: the probe succeeds and closes the circuit.
	if err := exec(); err != nil {
		t.Fatalf("recovering probe failed: %v", err)
	}
	st := e.HealthStats()
	if st.State != "closed" || st.ConsecutiveFailures != 0 || st.Successes != 1 || st.Probes != 2 {
		t.Fatalf("after clean probe: %+v", st)
	}
}

func TestBreakerDisabledAndValidated(t *testing.T) {
	e, err := New(Config{P: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st := e.HealthStats(); st.State != "disabled" {
		t.Fatalf("breaker-less engine state = %q, want disabled", st.State)
	}
	if _, err := New(Config{P: 4, Seed: 1, BreakerThreshold: -1}); err == nil {
		t.Fatal("negative BreakerThreshold accepted")
	}
}
