package exec

import (
	"testing"

	"repro/internal/data"
	"repro/internal/mpc"
)

func TestClusterPoolReusesAcrossBucketSizes(t *testing.T) {
	var cp ClusterPool
	c1 := cp.Get(5)
	if c1.P != 5 {
		t.Fatalf("Get(5).P = %d", c1.P)
	}
	if c1.Capacity() != 8 {
		t.Errorf("Get(5) capacity = %d, want the full bucket (8)", c1.Capacity())
	}
	cp.Put(c1)
	// sync.Pool drops Puts at random when the race detector is on, so
	// assert reuse statistically: across many put/get cycles in the same
	// power-of-two bucket, some Get must return a previously parked
	// cluster — and every returned cluster must come back fully reset.
	seen := map[*mpc.Cluster]bool{c1: true}
	reused := false
	for i := 0; i < 64 && !reused; i++ {
		c := cp.Get(8)
		if seen[c] {
			reused = true
		}
		seen[c] = true
		if c.P != 8 || len(c.Servers) != 8 {
			t.Fatalf("bucket-8 Get resized wrong: P=%d servers=%d", c.P, len(c.Servers))
		}
		for _, s := range c.Servers {
			if s.BitsIn != 0 || s.TuplesIn != 0 || len(s.Received) != 0 {
				t.Fatal("pooled cluster not reset")
			}
		}
		cp.Put(c)
	}
	if !reused {
		t.Error("no Get(8) ever reused a parked bucket-8 cluster")
	}
	// A different bucket never returns a bucket-8 cluster.
	c3 := cp.Get(9)
	if seen[c3] {
		t.Error("Get(9) reused a bucket-8 cluster")
	}
	if c3.Capacity() != 16 {
		t.Errorf("Get(9) capacity = %d, want 16", c3.Capacity())
	}
}

func TestClusterPoolGetPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	var cp ClusterPool
	cp.Get(0)
}

// TestRunReusesPooledCluster runs the same plan repeatedly against an
// explicit pool: some run must draw a previously parked cluster (the pool
// may drop Puts at random under the race detector, so the assertion is
// statistical), and loads must never drift — no state leaks through reuse.
func TestRunReusesPooledCluster(t *testing.T) {
	db := testDB()
	plan := &PhysicalPlan{Strategy: "test", Virtual: 4, Physical: 2, Router: modRouter(4)}
	var cp ClusterPool
	cfg := Config{Clusters: &cp}
	r1, _ := Run(plan, db, cfg)
	seen := make(map[*mpc.Cluster]bool)
	reused := false
	for i := 0; i < 64 && !reused; i++ {
		probe := cp.Get(4) // what the last Run parked, when the pool kept it
		if seen[probe] {
			reused = true
		}
		seen[probe] = true
		cp.Put(probe)
		r, _ := Run(plan, db, cfg)
		if r.Loads != r1.Loads || r.MaxVirtualBits != r1.MaxVirtualBits {
			t.Fatalf("loads drifted across pooled reuse: %+v vs %+v", r.Loads, r1.Loads)
		}
	}
	if !reused {
		t.Error("no execution ever reused a pooled cluster")
	}
}

// TestRunOutputScratch checks the pooled output buffer: reused across runs,
// and detached cleanly when an output must escape.
func TestRunOutputScratch(t *testing.T) {
	db := testDB()
	plan := &PhysicalPlan{
		Strategy: "test",
		Virtual:  4,
		Physical: 2,
		Router:   modRouter(4),
		Local: func(s *mpc.Server) []data.Tuple {
			var out []data.Tuple
			s.Fragment("S").Each(func(_ int, tu data.Tuple) bool {
				out = append(out, append(data.Tuple(nil), tu...))
				return true
			})
			return out
		},
	}
	sc := new(Scratch)
	r1, _ := Run(plan, db, Config{Scratch: sc})
	if len(r1.Output) != 8 {
		t.Fatalf("output = %d tuples", len(r1.Output))
	}
	first := &r1.Output[0]
	r2, _ := Run(plan, db, Config{Scratch: sc})
	if &r2.Output[0] != first {
		t.Error("output buffer was reallocated despite the scratch")
	}
	// After a detach, the escaped output must keep its contents while the
	// next run allocates a fresh buffer.
	escaped := r2.Output
	snapshot := append([]data.Tuple(nil), escaped...)
	sc.DetachOutput()
	r3, _ := Run(plan, db, Config{Scratch: sc})
	if len(r3.Output) != 8 {
		t.Fatalf("post-detach output = %d tuples", len(r3.Output))
	}
	if &r3.Output[0] == first {
		t.Error("detached output buffer was reused anyway")
	}
	for i := range escaped {
		for a := range escaped[i] {
			if escaped[i][a] != snapshot[i][a] {
				t.Fatal("escaped output mutated by a later run")
			}
		}
	}
}
