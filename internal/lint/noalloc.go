package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// NoAlloc enforces the zero-allocation contract on annotated hot paths.
// The contract used to be guarded only dynamically (allocs/op assertions
// in skewbench -storagebench and testing.AllocsPerRun); this analyzer
// catches the same regressions at lint time, construct by construct.
var NoAlloc = &analysis.Analyzer{
	Name: "noalloc",
	Doc: `flag allocating constructs in functions annotated //skewlint:noalloc

A function whose doc comment contains a //skewlint:noalloc line is a
per-tuple hot path (router Destinations/DestinationsAt, comm-engine slab
appends): its body must not allocate at steady state. Function literals
assigned to mpc.SpanRoute.PerRow are implicitly annotated — the span
contract runs them once per row.

Flagged constructs: composite literals, make/new, closures, fmt calls,
string concatenation and string<->[]byte/[]rune conversions, implicit
conversions to interface parameters, and append whose destination does not
trace to a caller-provided buffer (a parameter, the receiver, or a chain
of locals rooted in one). Cold paths inside a hot function (lazy scratch
growth, error reporting) carry //skewlint:allow noalloc with a rationale.`,
	Run: runNoAlloc,
}

// noallocAnnotated reports whether a doc comment opts the function in.
func noallocAnnotated(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, "//skewlint:noalloc") {
			return true
		}
	}
	return false
}

func runNoAlloc(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if noallocAnnotated(fd.Doc) {
				checkNoAlloc(pass, fd.Type, fd.Recv, fd.Body)
			}
			// Implicitly annotated regions: func literals assigned to the
			// PerRow field of an mpc.SpanRoute — the engine runs those once
			// per routed row.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i, lhs := range as.Lhs {
					sel, ok := lhs.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "PerRow" {
						continue
					}
					base := pass.TypesInfo.Types[sel.X].Type
					if base == nil || !namedFrom(base, "repro/internal/mpc", "SpanRoute") {
						continue
					}
					if fl, ok := as.Rhs[i].(*ast.FuncLit); ok {
						checkNoAlloc(pass, fl.Type, nil, fl.Body)
					}
				}
				return true
			})
		}
	}
	return nil
}

// checkNoAlloc walks one annotated function body and reports allocating
// constructs.
func checkNoAlloc(pass *analysis.Pass, ftype *ast.FuncType, recv *ast.FieldList, body *ast.BlockStmt) {
	info := pass.TypesInfo

	// Caller-provided roots: parameters and the receiver.
	callerOwned := map[*types.Var]bool{}
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if v, ok := info.Defs[name].(*types.Var); ok {
					callerOwned[v] = true
				}
			}
		}
	}
	addFields(recv)
	addFields(ftype.Params)

	// Propagate ownership through simple local assignment chains:
	// d := &table[server] makes d caller-owned when table is. Iterate to a
	// fixed point (chains are short; the loop runs at most a handful of
	// times).
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				lv, _ := info.Defs[id].(*types.Var)
				if lv == nil {
					lv, _ = info.Uses[id].(*types.Var)
				}
				if lv == nil || callerOwned[lv] {
					continue
				}
				if rv := rootVar(info, as.Rhs[i]); rv != nil && callerOwned[rv] {
					callerOwned[lv] = true
					changed = true
				}
			}
			return true
		})
	}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(e.Pos(), "closure literal allocates in a //skewlint:noalloc function")
			return false // the literal runs later; judge only its creation here
		case *ast.CompositeLit:
			pass.Reportf(e.Pos(), "composite literal allocates in a //skewlint:noalloc function")
			return true
		case *ast.BinaryExpr:
			if e.Op == token.ADD {
				if tv, ok := info.Types[ast.Expr(e)]; ok && tv.Value == nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						pass.Reportf(e.Pos(), "string concatenation allocates in a //skewlint:noalloc function")
					}
				}
			}
			return true
		case *ast.CallExpr:
			checkNoAllocCall(pass, callerOwned, e)
			return true
		}
		return true
	}
	ast.Inspect(body, walk)
}

// checkNoAllocCall applies the call-site rules: builtins, fmt, string
// conversions, interface-parameter conversions, and append destinations.
func checkNoAllocCall(pass *analysis.Pass, callerOwned map[*types.Var]bool, call *ast.CallExpr) {
	info := pass.TypesInfo

	// Builtins and type conversions.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				pass.Reportf(call.Pos(), "make allocates in a //skewlint:noalloc function")
			case "new":
				pass.Reportf(call.Pos(), "new allocates in a //skewlint:noalloc function")
			case "append":
				if len(call.Args) == 0 {
					return
				}
				root := rootVar(info, call.Args[0])
				if root == nil || !callerOwned[root] {
					pass.Reportf(call.Pos(), "append to a slice not rooted in a caller-provided buffer may allocate in a //skewlint:noalloc function")
				}
			}
			return
		}
	}

	// Conversions: string <-> []byte/[]rune copy, and conversions to
	// interface types box.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, info.Types[call.Args[0]].Type
		if to != nil && from != nil {
			if isStringByteConv(to, from) {
				pass.Reportf(call.Pos(), "string conversion copies in a //skewlint:noalloc function")
			}
			if types.IsInterface(to.Underlying()) && !types.IsInterface(from.Underlying()) {
				pass.Reportf(call.Pos(), "conversion to interface allocates in a //skewlint:noalloc function")
			}
		}
		return
	}

	fn := calleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		pass.Reportf(call.Pos(), "fmt.%s allocates in a //skewlint:noalloc function", fn.Name())
		return
	}

	// Implicit interface conversions at call boundaries: a concrete
	// argument passed for an interface parameter escapes to the heap.
	sig := callSignature(info, call)
	if sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt.Underlying()) {
			continue
		}
		at := info.Types[arg].Type
		if at == nil || types.IsInterface(at.Underlying()) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "implicit conversion to interface parameter allocates in a //skewlint:noalloc function")
	}
}

// callSignature resolves the signature of a (non-builtin, non-conversion)
// call, through named function types and method values.
func callSignature(info *types.Info, call *ast.CallExpr) *types.Signature {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// isStringByteConv reports a string <-> []byte/[]rune conversion.
func isStringByteConv(to, from types.Type) bool {
	isStr := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsString != 0
	}
	isByteSlice := func(t types.Type) bool {
		s, ok := t.Underlying().(*types.Slice)
		if !ok {
			return false
		}
		b, ok := s.Elem().Underlying().(*types.Basic)
		return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
	}
	return (isStr(to) && isByteSlice(from)) || (isByteSlice(to) && isStr(from))
}
