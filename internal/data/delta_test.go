package data

import (
	"fmt"
	"math/rand"
	"testing"
)

// contentSumScan recomputes the content fold the slow way.
func contentSumScan(r *Relation) uint64 {
	var sum uint64
	for i := 0; i < r.Size(); i++ {
		sum += r.rowHash(i)
	}
	return sum
}

func testDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	r := NewRelation("S1", 2, 100)
	r.Add(1, 2)
	r.Add(3, 4)
	r.Add(5, 4)
	db.Put(r)
	s := NewRelation("S2", 1, 100)
	s.Add(9)
	db.Put(s)
	return db
}

func TestApplyInsertDelete(t *testing.T) {
	db := testDB(t)
	d := new(Delta).Insert("S1", 7, 8).Delete("S1", 1, 2).Insert("S2", 3)
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	if err := db.Apply(d); err != nil {
		t.Fatal(err)
	}
	s1 := db.MustGet("S1")
	if s1.Size() != 3 {
		t.Fatalf("S1 size = %d, want 3", s1.Size())
	}
	seen := map[Key]bool{}
	for i := 0; i < s1.Size(); i++ {
		seen[s1.KeyAt(i)] = true
	}
	if seen[KeyOf([]int64{1, 2})] || !seen[KeyOf([]int64{7, 8})] {
		t.Fatalf("wrong tuples after apply: %v", seen)
	}
	if db.MustGet("S2").Size() != 2 {
		t.Fatal("S2 insert missing")
	}
	// Deltas may delete what they inserted (order matters).
	if err := db.Apply(new(Delta).Insert("S2", 44).Delete("S2", 44)); err != nil {
		t.Fatal(err)
	}
	if db.MustGet("S2").Size() != 2 {
		t.Fatal("insert-then-delete should net to zero")
	}
}

func TestApplyAtomicity(t *testing.T) {
	db := testDB(t)
	before := db.MustGet("S1").Size()
	cases := []*Delta{
		new(Delta).Insert("S1", 50, 51).Insert("nope", 1),    // unknown relation
		new(Delta).Insert("S1", 50, 51).Insert("S1", 1),      // arity
		new(Delta).Insert("S1", 50, 51).Insert("S1", 100, 0), // domain
		new(Delta).Insert("S1", 50, 51).Insert("S1", 1, 2),   // duplicate
		new(Delta).Insert("S1", 50, 51).Delete("S1", 90, 90), // absent delete
		new(Delta).Insert("S1", 50, 51).Insert("S1", 50, 51), // dup within delta
		new(Delta).Delete("S1", 3, 4).Delete("S1", 3, 4),     // double delete
		new(Delta).Insert("S1", 60, 61).Delete("S1", 60, 61).Delete("S1", 60, 61),
	}
	for i, d := range cases {
		if err := db.Apply(d); err == nil {
			t.Errorf("case %d: Apply succeeded, want error", i)
		}
		if got := db.MustGet("S1").Size(); got != before {
			t.Fatalf("case %d: size %d after failed Apply, want %d (not atomic)", i, got, before)
		}
	}
	// The failed applies must not have corrupted maintained state.
	s1 := db.MustGet("S1")
	if got, want := s1.ContentSum(), contentSumScan(s1); got != want {
		t.Fatalf("content sum %d, want %d", got, want)
	}
}

// TestDeltaCopiesScratchTuples: building a delta from a reused scratch
// buffer (the ReadTuple idiom) must not alias earlier operations.
func TestDeltaCopiesScratchTuples(t *testing.T) {
	db := NewDatabase()
	r := NewRelation("R", 2, 100)
	r.Add(1, 2)
	r.Add(3, 4)
	r.Add(5, 6)
	db.Put(r)
	d := new(Delta)
	buf := make(Tuple, 2)
	for i := 0; i < 3; i++ {
		r.ReadTuple(i, buf)
		d.Delete("R", buf...)
	}
	if err := db.Apply(d); err != nil {
		t.Fatalf("scratch-built delta failed: %v", err)
	}
	if r.Size() != 0 {
		t.Fatalf("%d tuples left, want 0", r.Size())
	}
}

func TestApplyEmptyAndNil(t *testing.T) {
	db := testDB(t)
	if err := db.Apply(nil); err != nil {
		t.Fatal(err)
	}
	if err := db.Apply(new(Delta)); err != nil {
		t.Fatal(err)
	}
}

func TestApplyRejectsDuplicateRelation(t *testing.T) {
	db := NewDatabase()
	r := NewRelation("R", 1, 10)
	r.Add(1)
	r.Add(1) // generators never do this; Apply must refuse to index it
	db.Put(r)
	if err := db.Apply(new(Delta).Insert("R", 2)); err == nil {
		t.Fatal("Apply on a relation with duplicates should error")
	}
}

// TestApplyMaintainedState drives random delta sequences and checks every
// piece of maintained state against a from-scratch recomputation.
func TestApplyMaintainedState(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	db := NewDatabase()
	const domain = 40
	r := NewRelation("R", 2, domain)
	live := map[Key][2]int64{}
	for i := 0; i < 60; i++ {
		a, b := rng.Int63n(domain), rng.Int63n(domain)
		k := KeyOf([]int64{a, b})
		if _, dup := live[k]; dup {
			continue
		}
		live[k] = [2]int64{a, b}
		r.Add(a, b)
	}
	db.Put(r)

	for step := 0; step < 200; step++ {
		d := new(Delta)
		nOps := 1 + rng.Intn(6)
		pending := map[Key]bool{} // membership after the ops queued so far
		for k := range live {
			pending[k] = true
		}
		for o := 0; o < nOps; o++ {
			if rng.Intn(2) == 0 && len(pending) > 0 {
				// delete a random live tuple
				for k, present := range pending {
					if !present {
						continue
					}
					d.Delete("R", k.At(0), k.At(1))
					pending[k] = false
					break
				}
			} else {
				a, b := rng.Int63n(domain), rng.Int63n(domain)
				k := KeyOf([]int64{a, b})
				if pending[k] {
					continue
				}
				d.Insert("R", a, b)
				pending[k] = true
			}
		}
		if err := db.Apply(d); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		live = map[Key][2]int64{}
		for i := 0; i < r.Size(); i++ {
			live[r.KeyAt(i)] = [2]int64{r.At(i, 0), r.At(i, 1)}
		}

		// Content sum == fresh scan.
		if got, want := r.ContentSum(), contentSumScan(r); got != want {
			t.Fatalf("step %d: content sum %d, want %d", step, got, want)
		}
		// Attribute frequencies == fresh count.
		for a := 0; a < r.Arity; a++ {
			want := map[int64]int64{}
			for _, v := range r.Column(a) {
				want[v]++
			}
			got := r.AttrCounts(a)
			if len(got) != len(want) {
				t.Fatalf("step %d attr %d: %d distinct, want %d", step, a, len(got), len(want))
			}
			for v, c := range want {
				if got[v] != c {
					t.Fatalf("step %d attr %d: freq[%d] = %d, want %d", step, a, v, got[v], c)
				}
			}
		}
		// Index maps every live tuple to its row.
		if len(r.index) != r.Size() {
			t.Fatalf("step %d: index size %d, rows %d", step, len(r.index), r.Size())
		}
		for i := 0; i < r.Size(); i++ {
			if r.index[r.KeyAt(i)] != i {
				t.Fatalf("step %d: index[%v] = %d, want %d", step, r.KeyAt(i), r.index[r.KeyAt(i)], i)
			}
		}
	}
}

func TestContentSumMaintainedAcrossMutators(t *testing.T) {
	r := NewRelation("R", 2, 1000)
	r.Add(1, 2)
	r.Add(3, 4)
	sum := r.ContentSum() // enables maintenance
	if sum != contentSumScan(r) {
		t.Fatal("initial sum wrong")
	}
	r.Add(5, 6)
	other := NewRelation("X", 2, 1000)
	other.Add(9, 9)
	r.AppendRow(other, 0)
	r.AppendColumns([][]int64{{10, 11}, {12, 13}}, 2)
	if got, want := r.ContentSum(), contentSumScan(r); got != want {
		t.Fatalf("sum %d after mutators, want %d", got, want)
	}
	r.Sort()
	if got, want := r.ContentSum(), contentSumScan(r); got != want {
		t.Fatalf("sum %d after Sort, want %d", got, want)
	}
}

func TestDatabaseID(t *testing.T) {
	a, b := NewDatabase(), NewDatabase()
	if a.ID() == 0 || b.ID() == 0 {
		t.Fatal("IDs must be nonzero")
	}
	if a.ID() != a.ID() {
		t.Fatal("ID not stable")
	}
	if a.ID() == b.ID() {
		t.Fatal("IDs must be unique")
	}
}

func ExampleDatabase_Apply() {
	db := NewDatabase()
	r := NewRelation("S", 2, 100)
	r.Add(1, 2)
	db.Put(r)
	err := db.Apply(new(Delta).Insert("S", 3, 4).Delete("S", 1, 2))
	fmt.Println(err, db.MustGet("S").Size())
	// Output: <nil> 1
}
