// Package lp implements an exact linear-programming solver over
// arbitrary-precision rationals, plus vertex enumeration for small polytopes.
//
// The solver is a classic dense two-phase primal simplex with Bland's rule,
// which terminates on every input because all arithmetic is exact (no
// epsilon tolerances, no cycling under Bland's rule). Problems in this
// repository are tiny — the share-exponent LP (5) of Beame–Koutris–Suciu has
// k+1 variables and ℓ+1 constraints — so a dense rational tableau is both
// simple and fast enough.
package lp

import (
	"fmt"
	"math/big"

	"repro/internal/rational"
)

// Rel is the comparison direction of a constraint row.
type Rel int

// Constraint relations.
const (
	LE Rel = iota // Coeffs·x ≤ RHS
	GE            // Coeffs·x ≥ RHS
	EQ            // Coeffs·x = RHS
)

func (r Rel) String() string {
	switch r {
	case LE:
		return "<="
	case GE:
		return ">="
	case EQ:
		return "="
	}
	return "?"
}

// Constraint is one linear constraint over the problem's variables.
type Constraint struct {
	Coeffs rational.Vector
	Rel    Rel
	RHS    *big.Rat
}

// Problem is a linear program over n variables, all implicitly constrained
// to be ≥ 0. Set Maximize to maximize the objective instead of minimizing.
type Problem struct {
	NumVars     int
	Objective   rational.Vector
	Constraints []Constraint
	Maximize    bool
}

// NewProblem returns an empty minimization problem with n variables.
func NewProblem(n int) *Problem {
	return &Problem{NumVars: n, Objective: rational.NewVector(n)}
}

// AddConstraint appends a constraint; coeffs must have length NumVars.
func (p *Problem) AddConstraint(coeffs rational.Vector, rel Rel, rhs *big.Rat) {
	if len(coeffs) != p.NumVars {
		panic(fmt.Sprintf("lp: constraint arity %d, want %d", len(coeffs), p.NumVars))
	}
	p.Constraints = append(p.Constraints, Constraint{Coeffs: coeffs.Clone(), Rel: rel, RHS: rational.Clone(rhs)})
}

// Status reports the outcome of Solve.
type Status int

// Solver outcomes.
const (
	Optimal Status = iota
	Infeasible
	Unbounded
)

func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	}
	return "unknown"
}

// Solution is the result of solving a Problem.
type Solution struct {
	Status    Status
	X         rational.Vector // values of the original variables
	Objective *big.Rat        // objective value at X (in the problem's sense)
}

// tableau is the standard-form simplex state: minimize cost·x subject to
// a·x = b, x ≥ 0, with b ≥ 0 maintained as an invariant.
type tableau struct {
	m, n     int // rows, columns (excluding RHS)
	a        []rational.Vector
	b        rational.Vector
	cost     rational.Vector
	basis    []int    // basis[i] = column basic in row i
	costRHSv *big.Rat // running objective value cB·xB
}

// Solve runs two-phase simplex and returns the solution.
func (p *Problem) Solve() Solution {
	// Standard form: one slack/surplus column per inequality; artificial
	// variables added in phase 1 where no identity column exists.
	m := len(p.Constraints)
	nSlack := 0
	for _, c := range p.Constraints {
		if c.Rel != EQ {
			nSlack++
		}
	}
	n := p.NumVars + nSlack
	t := &tableau{m: m, n: n}
	t.a = make([]rational.Vector, m)
	t.b = rational.NewVector(m)
	t.basis = make([]int, m)

	slackCol := p.NumVars
	slackOf := make([]int, m) // slack column of row i, or -1
	for i, c := range p.Constraints {
		row := rational.NewVector(n)
		for j := 0; j < p.NumVars; j++ {
			row[j].Set(c.Coeffs[j])
		}
		slackOf[i] = -1
		switch c.Rel {
		case LE:
			row[slackCol].SetInt64(1)
			slackOf[i] = slackCol
			slackCol++
		case GE:
			row[slackCol].SetInt64(-1)
			slackOf[i] = slackCol
			slackCol++
		}
		t.a[i] = row
		t.b[i].Set(c.RHS)
		// Normalize to b ≥ 0.
		if t.b[i].Sign() < 0 {
			neg := big.NewRat(-1, 1)
			for j := range row {
				row[j].Mul(row[j], neg)
			}
			t.b[i].Mul(t.b[i], neg)
		}
	}

	// Phase 1: find rows that need artificials. A slack column serves as the
	// initial basis only if its coefficient is +1 after normalization.
	needArt := make([]bool, m)
	one := rational.One()
	for i := 0; i < m; i++ {
		if s := slackOf[i]; s >= 0 && t.a[i][s].Cmp(one) == 0 {
			t.basis[i] = s
		} else {
			needArt[i] = true
		}
	}
	nArt := 0
	for _, need := range needArt {
		if need {
			nArt++
		}
	}
	if nArt > 0 {
		art := n
		t.n = n + nArt
		for i := 0; i < m; i++ {
			t.a[i] = append(t.a[i], rational.NewVector(nArt)...)
			if needArt[i] {
				t.a[i][art].SetInt64(1)
				t.basis[i] = art
				art++
			}
		}
		// Phase-1 cost: sum of artificials.
		t.cost = rational.NewVector(t.n)
		for j := n; j < t.n; j++ {
			t.cost[j].SetInt64(1)
		}
		t.priceOut()
		if !t.pivotLoop() {
			// Phase-1 objective is bounded below by 0, so this cannot occur.
			panic("lp: phase 1 unbounded")
		}
		if t.objective().Sign() != 0 {
			return Solution{Status: Infeasible}
		}
		// Drive artificials out of the basis; drop redundant rows.
		t.evictArtificials(n)
		// Truncate artificial columns.
		t.n = n
		for i := range t.a {
			t.a[i] = t.a[i][:n]
		}
	}

	// Phase 2.
	t.cost = rational.NewVector(t.n)
	for j := 0; j < p.NumVars; j++ {
		if p.Maximize {
			t.cost[j].Neg(p.Objective[j])
		} else {
			t.cost[j].Set(p.Objective[j])
		}
	}
	t.priceOut()
	if !t.pivotLoop() {
		return Solution{Status: Unbounded}
	}

	x := rational.NewVector(p.NumVars)
	for i, bj := range t.basis {
		if bj < p.NumVars {
			x[bj].Set(t.b[i])
		}
	}
	obj := p.Objective.Dot(x)
	return Solution{Status: Optimal, X: x, Objective: obj}
}

// priceOut rewrites the cost row into reduced-cost form for the current
// basis: cost ← cost − Σ_i cost[basis[i]]·row_i, tracking the running
// objective in costRHS.
func (t *tableau) priceOut() {
	t.costRHSv = rational.Zero()
	tmp := new(big.Rat)
	for i, bj := range t.basis {
		cb := rational.Clone(t.cost[bj])
		if rational.IsZero(cb) {
			continue
		}
		for j := 0; j < t.n; j++ {
			tmp.Mul(cb, t.a[i][j])
			t.cost[j].Sub(t.cost[j], tmp)
		}
		tmp.Mul(cb, t.b[i])
		t.costRHSv.Add(t.costRHSv, tmp)
	}
}

func (t *tableau) objective() *big.Rat { return t.costRHSv }

// pivotLoop runs Bland's-rule pivots until optimality. It returns false if
// the problem is unbounded.
func (t *tableau) pivotLoop() bool {
	for {
		// Entering column: smallest index with negative reduced cost.
		enter := -1
		for j := 0; j < t.n; j++ {
			if t.cost[j].Sign() < 0 {
				enter = j
				break
			}
		}
		if enter == -1 {
			return true
		}
		// Leaving row: min ratio b_i / a_ij over a_ij > 0; ties broken by
		// smallest basis index (Bland).
		leave := -1
		var best *big.Rat
		ratio := new(big.Rat)
		for i := 0; i < t.m; i++ {
			if t.a[i][enter].Sign() <= 0 {
				continue
			}
			ratio.Quo(t.b[i], t.a[i][enter])
			if leave == -1 || ratio.Cmp(best) < 0 ||
				(ratio.Cmp(best) == 0 && t.basis[i] < t.basis[leave]) {
				leave = i
				best = rational.Clone(ratio)
			}
		}
		if leave == -1 {
			return false // unbounded
		}
		t.pivot(leave, enter)
	}
}

// pivot makes column enter basic in row leave.
func (t *tableau) pivot(leave, enter int) {
	inv := new(big.Rat).Inv(t.a[leave][enter])
	row := t.a[leave]
	for j := 0; j < t.n; j++ {
		row[j].Mul(row[j], inv)
	}
	t.b[leave].Mul(t.b[leave], inv)
	tmp := new(big.Rat)
	for i := 0; i < t.m; i++ {
		if i == leave || rational.IsZero(t.a[i][enter]) {
			continue
		}
		f := rational.Clone(t.a[i][enter])
		for j := 0; j < t.n; j++ {
			tmp.Mul(f, row[j])
			t.a[i][j].Sub(t.a[i][j], tmp)
		}
		tmp.Mul(f, t.b[leave])
		t.b[i].Sub(t.b[i], tmp)
	}
	if !rational.IsZero(t.cost[enter]) {
		f := rational.Clone(t.cost[enter])
		for j := 0; j < t.n; j++ {
			tmp.Mul(f, row[j])
			t.cost[j].Sub(t.cost[j], tmp)
		}
		// Objective moves by (reduced cost of enter)·θ, where θ is the
		// post-normalization b[leave].
		tmp.Mul(f, t.b[leave])
		t.costRHSv.Add(t.costRHSv, tmp)
	}
	t.basis[leave] = enter
}

// evictArtificials pivots basic artificial variables (columns ≥ nReal) out
// of the basis where possible; rows where no real pivot exists are redundant
// (all-zero over the real columns with b_i = 0 at the phase-1 optimum) and
// are deleted from the tableau.
func (t *tableau) evictArtificials(nReal int) {
	keep := make([]int, 0, t.m)
	for i := 0; i < t.m; i++ {
		if t.basis[i] < nReal {
			keep = append(keep, i)
			continue
		}
		pivotCol := -1
		for j := 0; j < nReal; j++ {
			if !rational.IsZero(t.a[i][j]) {
				pivotCol = j
				break
			}
		}
		if pivotCol >= 0 {
			t.pivot(i, pivotCol)
			keep = append(keep, i)
		}
		// else: redundant row, dropped below.
	}
	if len(keep) != t.m {
		a := make([]rational.Vector, 0, len(keep))
		b := make(rational.Vector, 0, len(keep))
		basis := make([]int, 0, len(keep))
		for _, i := range keep {
			a = append(a, t.a[i])
			b = append(b, t.b[i])
			basis = append(basis, t.basis[i])
		}
		t.a, t.b, t.basis, t.m = a, b, basis, len(keep)
	}
}
