package exp

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/bounds"
	"repro/internal/data"
	"repro/internal/hypercube"
	"repro/internal/query"
	"repro/internal/rounds"
	"repro/internal/skew"
	"repro/internal/workload"
)

// Series is one curve of a figure: y(x) with a name. The paper reports
// formulas rather than plots; these series render the formulas' shapes
// (load vs p, load vs skew, replication vs reducer size) so they can be
// plotted or eyeballed as CSV.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// CSV renders series in long form: series,x,y.
func CSV(series []Series) string {
	var b strings.Builder
	b.WriteString("series,x,y\n")
	for _, s := range series {
		for i := range s.X {
			fmt.Fprintf(&b, "%s,%g,%g\n", s.Name, s.X[i], s.Y[i])
		}
	}
	return b.String()
}

// FigureLoadVsP sweeps the server count for the triangle query on
// skew-free data: measured HC load, the L_lower bound, and the multi-round
// alternative. The HC curve should track m/p^{2/3} (the bound), while
// multi-round tracks m/p on matchings.
func FigureLoadVsP(s Scale) []Series {
	m, _ := sizes(s, 4000, 0, 30000, 0)
	q := query.Triangle()
	db := data.NewDatabase()
	for j, a := range q.Atoms {
		db.Put(workload.Matching(a.Name, 2, m, 1<<21, int64(j+1)))
	}
	bitsM := make([]float64, 3)
	for j, a := range q.Atoms {
		bitsM[j] = float64(db.MustGet(a.Name).Bits())
	}
	ps := []int{8, 16, 32, 64, 128, 256}
	hc := Series{Name: "hypercube"}
	lower := Series{Name: "lower-bound"}
	multi := Series{Name: "multi-round"}
	for _, p := range ps {
		res := hypercube.Run(q, db, hypercube.Config{P: p, Seed: 3, SkipJoin: true})
		hc.X = append(hc.X, float64(p))
		hc.Y = append(hc.Y, float64(res.Loads.MaxBits))
		lb, _ := bounds.SimpleLower(q, bitsM, p)
		lower.X = append(lower.X, float64(p))
		lower.Y = append(lower.Y, lb)
		mr := rounds.Run(rounds.BuildPlan(q), db, rounds.Config{P: p, Seed: 3})
		multi.X = append(multi.X, float64(p))
		multi.Y = append(multi.Y, float64(mr.SumMaxBits))
	}
	return []Series{hc, lower, multi}
}

// FigureLoadVsSkew sweeps the Zipf exponent of the join column at fixed p:
// the skew join's load stays near the Eq. (10) optimum while the vanilla
// hash join's load grows toward Ω(m).
func FigureLoadVsSkew(s Scale) []Series {
	m, p := sizes(s, 4000, 32, 30000, 64)
	domain := int64(1 << 21)
	exps := []float64{1.1, 1.3, 1.5, 1.8, 2.2}
	skewed := Series{Name: "skew-join"}
	vanilla := Series{Name: "vanilla-hash"}
	pred := Series{Name: "eq10-bound"}
	for _, zs := range exps {
		db := joinDB(
			workload.Zipf("S1", m, domain, 1, zs, uint64(m/8), 1),
			workload.Zipf("S2", m, domain, 1, zs, uint64(m/8), 2),
		)
		res := skew.RunJoin(db, skew.JoinConfig{P: p, Seed: 5, SkipJoin: true})
		v := skew.VanillaHashJoinLoads(db, p, 5)
		skewed.X = append(skewed.X, zs)
		skewed.Y = append(skewed.Y, float64(res.MaxVirtualBits))
		vanilla.X = append(vanilla.X, zs)
		vanilla.Y = append(vanilla.Y, float64(v))
		pred.X = append(pred.X, zs)
		pred.Y = append(pred.Y, res.PredictedBits)
	}
	return []Series{skewed, vanilla, pred}
}

// FigureResilience sweeps p for the fully-skewed join under the equal-share
// configuration: the measured load should decay as p^{-1/3} (Cor. 3.2 (ii))
// while the hash join stays flat at Ω(m).
func FigureResilience(s Scale) []Series {
	m, _ := sizes(s, 4000, 0, 30000, 0)
	domain := int64(1 << 21)
	db := joinDB(
		workload.SingleValue("S1", 2, m, domain, 1, 7, 1),
		workload.SingleValue("S2", 2, m, domain, 1, 7, 2),
	)
	q := query.Join2()
	eq := Series{Name: "equal-shares"}
	hash := Series{Name: "hash-join"}
	ref := Series{Name: "m-over-cbrt-p"}
	bitsPer := float64(db.MustGet("S1").BitsPerTuple())
	for _, p := range []int{8, 27, 64, 216, 512} {
		r1 := hypercube.Run(q, db, hypercube.Config{P: p, Seed: 3, EqualShares: true, SkipJoin: true})
		r2 := hypercube.Run(q, db, hypercube.Config{P: p, Seed: 3, Shares: []int{1, 1, p}, SkipJoin: true})
		eq.X = append(eq.X, float64(p))
		eq.Y = append(eq.Y, float64(r1.Loads.MaxBits))
		hash.X = append(hash.X, float64(p))
		hash.Y = append(hash.Y, float64(r2.Loads.MaxBits))
		ref.X = append(ref.X, float64(p))
		ref.Y = append(ref.Y, 2*float64(m)*bitsPer/math.Cbrt(float64(p)))
	}
	return []Series{eq, hash, ref}
}

// Figures lists the series generators by name for cmd/sweep.
func Figures() map[string]func(Scale) []Series {
	return map[string]func(Scale) []Series{
		"load-vs-p":    FigureLoadVsP,
		"load-vs-skew": FigureLoadVsSkew,
		"resilience":   FigureResilience,
	}
}
