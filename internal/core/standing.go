package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/data"
	"repro/internal/exec"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/stats"
)

// ResultDelta is the net effect of one Advance on a standing query's
// materialized result: the answers that became live and the answers that
// were retracted, in unspecified order. Version is the database version
// the standing result now reflects. Slices are owned by the caller.
type ResultDelta struct {
	Added   []data.Tuple
	Removed []data.Tuple
	Version uint64
}

// StandingStats reports a standing query's cumulative maintenance work.
type StandingStats struct {
	// Advances counts Advance calls; Reseeds of them rebuilt resident
	// state from scratch (plan invalidation, schema change, new heavy
	// hitter, or a multi-round fallback refresh — which re-executes every
	// Advance and also counts here).
	Advances uint64
	Reseeds  uint64
	// AppliedOps counts delta operations consumed (including operations on
	// relations outside the query, which are skipped for free).
	AppliedOps uint64
	// RoutedTuples/RoutedBits count delta tuples delivered to virtual
	// servers by incremental maintenance — the standing analogue of the
	// model's received load.
	RoutedTuples int64
	RoutedBits   int64
	// ResidentTuples is the per-server resident state currently held
	// (zero in multi-round fallback mode).
	ResidentTuples int64
	// Pending is the number of captured-but-unadvanced deltas.
	Pending int
	// Recovery accumulates the fault recovery performed across the
	// handle's lifetime: the seed's (and every reseed's) round replays and
	// server recomputes, plus the one reseed retry Advance grants a seed
	// that failed on an injected fault.
	Recovery Recovery
}

// StandingQuery is an incrementally maintained query registration: opened
// by Engine.Standing, it holds the seeded per-server resident state of a
// cached plan and consumes the owning database's delta stream. Each
// Advance routes exactly the tuples applied since the previous Advance
// through the plan's frozen router, updates the resident fragments and the
// counted output, and returns the net ResultDelta.
//
// Maintenance is incremental for single-round plans (hypercube, skew join,
// bin combinations). Multi-round pipelines conservatively fall back to a
// full re-execution per Advance behind the same API.
//
// A StandingQuery is safe for concurrent use; Advance/Result/Stats/Close
// serialize on an internal mutex, and delta capture runs under the
// database's write lock independently of that mutex. Advance never takes
// the database lock: it consumes the captured delta stream and, when it
// must re-read content (schema checks, reseeds, multi-round fallback), it
// reads an immutable snapshot epoch — so advances never block Apply and
// Apply never blocks advances.
type StandingQuery struct {
	e    *Engine
	q    *query.Query
	db   *data.Database
	s    settings
	opts ExecOptions

	// key is the plan-cache key the resident state was seeded from,
	// guarded by e.mu (markStale matches handles by key while holding it;
	// reseeds republish through e.setStandingKey).
	key planKey

	// stale is flagged (without any lock) by plan invalidation —
	// drift-triggered markStale, ClearPlanCache — and by Close.
	stale atomic.Bool

	mu             sync.Mutex
	st             *exec.Standing // nil in multi-round fallback mode
	fallback       *mpc.Counted   // fallback mode's current counted result
	watch          *stats.HeavyWatch
	schema         uint64
	appliedVersion uint64
	closed         bool
	unwatch        func()
	stats          StandingStats

	// queueMu guards pending, the capture queue the Watch callback feeds
	// under the database's write lock. Lock order: db.mu → queueMu (the
	// callback) and h.mu → queueMu (Advance); queueMu is always innermost
	// and nothing is ever acquired while holding it.
	queueMu sync.Mutex
	pending []pendingDelta
}

type pendingDelta struct {
	version uint64
	d       *data.Delta
}

// Standing opens a standing query for q over db: it plans (or reuses the
// cached serving-mode plan), executes the communication and local phases
// once to seed resident per-server state, and subscribes to db's delta
// stream. opts are resolved exactly as in ExecuteContext, except that
// Serving is forced on (standing state only makes sense across content
// deltas) and NoCache is ignored — the handle's identity with the plan
// cache is what lets drift-triggered replans flag it for reseeding.
//
// The caller must not be holding db's lock. Close the handle when done or
// its capture queue grows with every Apply.
func (e *Engine) Standing(ctx context.Context, q *query.Query, db *data.Database, opts ExecOptions) (*StandingQuery, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opts.Serving = true
	opts.NoCache = false
	s := e.settings(opts)
	if s.p < 2 {
		return nil, fmt.Errorf("core: need p >= 2, got %d", s.p)
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrInvalidQuery, err)
	}
	for _, a := range q.Atoms {
		if db.Get(a.Name) == nil {
			return nil, fmt.Errorf("core: database missing relation %s", a.Name)
		}
	}
	h := &StandingQuery{e: e, q: q, db: db, s: s, opts: opts}
	// Subscribe before seeding: anything applied between subscription and
	// the seed's snapshot is captured with version ≤ the snapshot's version
	// and dropped by the gate, so no delta can fall between seed and stream.
	h.unwatch = db.Watch(func(version uint64, d *data.Delta) {
		h.queueMu.Lock()
		h.pending = append(h.pending, pendingDelta{version: version, d: d})
		h.queueMu.Unlock()
	})
	if err := h.seed(ctx); err != nil {
		h.unwatch()
		return nil, err
	}
	e.registerStanding(h)
	return h, nil
}

// seed (re)builds the handle's plan and resident state against a fresh
// snapshot epoch of the database. Callers hold h.mu (or own h exclusively);
// no database lock is taken — the snapshot is immutable, so a concurrent
// Apply cannot tear the seed (its delta lands in the capture queue with a
// version past the snapshot's and is consumed by the next Advance).
func (h *StandingQuery) seed(ctx context.Context) error {
	snap := h.db.Snapshot()
	// A reseed needs the fresh plan now — resident routing is being rebuilt
	// around it — so bypass serve-stale-while-background-replanning.
	ps := h.s
	ps.bgReplan = false
	cp, key, _ := h.e.planFor(h.q, snap, ps)
	var phys *exec.PhysicalPlan
	switch {
	case cp.hc != nil:
		phys = cp.hc.Phys
	case cp.sj != nil:
		phys = cp.sj.Phys
	case cp.gen != nil:
		phys = cp.gen.Phys
	}
	if phys != nil {
		var rec Recovery
		st, err := exec.NewStanding(phys, h.q, snap, exec.Config{
			Clusters:            &h.e.clusters,
			Ctx:                 ctx,
			Faults:              h.s.faults,
			Retry:               h.s.retry,
			Recovery:            &rec,
			ResidentChunkTuples: h.s.residentChunk,
		})
		h.stats.Recovery.Add(rec)
		if err != nil {
			return err
		}
		h.st, h.fallback = st, nil
	} else {
		res, err := h.e.ExecuteContext(ctx, h.q, snap, h.opts)
		if err != nil {
			return err
		}
		h.stats.Recovery.Add(res.Recovery)
		c := mpc.NewCounted()
		for _, t := range res.Output {
			c.Add(t, 1)
		}
		h.st, h.fallback = nil, c
	}
	h.watch = stats.NewHeavyWatch(snap, h.q.AtomNames(), h.s.p)
	h.schema = stats.SchemaFingerprint(snap)
	h.appliedVersion = snap.VersionLocked()
	h.stale.Store(false)
	h.e.setStandingKey(h, key)
	return nil
}

// counted returns the current counted result, whichever mode holds it.
func (h *StandingQuery) counted() *mpc.Counted {
	if h.st != nil {
		return h.st.Counted()
	}
	return h.fallback
}

// Advance consumes every delta applied to the database since the previous
// Advance (or the seed) and returns the net result delta. With incremental
// state it routes only the delta tuples; it falls back to a full reseed —
// replan, re-route, rebuild resident state, diff old vs new result — when
// the plan was invalidated (drift replan, ClearPlanCache), the database
// schema changed, a delta introduced a new heavy hitter past the plan's
// §4.1 threshold (routing it light would void the load guarantee), or the
// capture stream is torn. Multi-round fallback handles re-execute fully on
// every non-empty Advance.
//
// Advance with nothing pending and a valid plan is a no-op returning an
// empty delta.
func (h *StandingQuery) Advance(ctx context.Context) (ResultDelta, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return ResultDelta{}, ErrStandingClosed
	}
	if err := ctx.Err(); err != nil {
		return ResultDelta{}, err
	}

	// Fast path: nothing captured, plan still valid.
	h.queueMu.Lock()
	quiet := len(h.pending) == 0
	h.queueMu.Unlock()
	if quiet && !h.stale.Load() {
		return ResultDelta{Version: h.appliedVersion}, nil
	}

	// Drain the capture queue. No database lock is needed: Apply notifies
	// watchers after it has published, so every drained delta's effects are
	// fully visible, and anything applied after the drain stays queued for
	// the next Advance. The version the incremental result reflects is the
	// drained tail's.
	h.queueMu.Lock()
	pending := h.pending
	h.pending = nil
	h.queueMu.Unlock()
	// Gate: drop anything the seed already saw.
	live := pending[:0]
	for _, pd := range pending {
		if pd.version > h.appliedVersion {
			live = append(live, pd)
		}
	}
	version := h.appliedVersion
	if len(live) > 0 {
		version = live[len(live)-1].version
	}
	h.stats.Advances++
	for _, pd := range live {
		h.stats.AppliedOps += uint64(pd.d.Len())
	}

	reseed := h.stale.Load()
	if !reseed && h.schema != stats.SchemaFingerprint(h.db.Snapshot()) {
		reseed = true
	}
	if !reseed && len(live) > 0 && live[0].version != h.appliedVersion+1 {
		// A torn capture stream (should be impossible) is a correctness
		// hazard; rebuild rather than guess.
		reseed = true
	}
	if !reseed && h.st != nil {
		// Pre-pass: fold every op into the watch's maintained counts and
		// check for new heavy hitters before any op touches resident state,
		// so resident fragments are never half-advanced when we decide to
		// reseed. (A reseed rebuilds the watch, so partially-noted counts
		// on the reseed path are discarded, not leaked.)
		for _, pd := range live {
			pd.d.EachOp(func(rel string, vals []int64, insert bool) {
				if h.watch.Note(rel, vals, insert) {
					reseed = true
				}
			})
			if reseed {
				break
			}
		}
	}

	if !reseed && h.st != nil {
		// Incremental path: route exactly the delta tuples.
		before := h.st.Load()
		var opErr error
		for _, pd := range live {
			pd.d.EachOp(func(rel string, vals []int64, insert bool) {
				if opErr != nil {
					return
				}
				opErr = h.st.ApplyOp(rel, vals, insert)
			})
			if opErr != nil {
				break
			}
		}
		if opErr == nil {
			after := h.st.Load()
			h.stats.RoutedTuples += after.RoutedTuples - before.RoutedTuples
			h.stats.RoutedBits += after.RoutedBits - before.RoutedBits
			added, removed := h.st.Flush()
			h.appliedVersion = version
			return ResultDelta{Added: added, Removed: removed, Version: version}, nil
		}
		// Resident state is inconsistent; fall through to a reseed.
		reseed = true
	}
	if !reseed && h.st == nil {
		// Multi-round fallback: re-execute in full against a fresh snapshot
		// and diff — correctness behind the same API, none of the
		// incremental savings. (ExecuteContext's own drift detection can
		// still flag the plan, in which case the next Advance replans.)
		// The snapshot may be ahead of the drained queue tail; the deltas
		// in between are already reflected in it, and the gate drops their
		// queued copies next Advance.
		snap := h.db.Snapshot()
		res, err := h.e.ExecuteContext(ctx, h.q, snap, h.opts)
		if err != nil {
			h.stale.Store(true)
			return ResultDelta{}, err
		}
		h.stats.Recovery.Add(res.Recovery)
		c := mpc.NewCounted()
		for _, t := range res.Output {
			c.Add(t, 1)
		}
		added, removed := diffCounted(h.fallback, c)
		h.fallback = c
		h.appliedVersion = snap.VersionLocked()
		h.stats.Reseeds++
		return ResultDelta{Added: added, Removed: removed, Version: h.appliedVersion}, nil
	}

	// Reseed: replan against current statistics, rebuild resident state
	// once, and report the diff of the materialized results. markStale
	// forces planFor to rebuild even when the cache entry was still live
	// (new-heavy-hitter reseeds are invisible to drift detection).
	h.e.markStale(h.key)
	old := h.counted()
	err := h.seed(ctx)
	if err != nil && isInjectedFault(err) && ctx.Err() == nil && h.s.retry.MaxAttempts >= 0 {
		// The seed itself is transactional (a failed seed never installs
		// half-built resident state), so a reseed that lost to an injected
		// fault even after the execution-level retry budget gets one more
		// whole-seed try with a backoff in between — the standing analogue
		// of Exec's retry — before the handle is left stale.
		if werr := h.s.retry.Wait(ctx, 1, &h.stats.Recovery); werr == nil {
			h.stats.Recovery.Attempts++
			err = h.seed(ctx)
		}
	}
	if err != nil {
		// Seeding failed (cancellation, injected fault): state is
		// unchanged; the deltas are lost from the queue but appliedVersion
		// still gates a later reseed, which re-reads a snapshot in full.
		h.stale.Store(true)
		return ResultDelta{}, err
	}
	h.stats.Reseeds++
	added, removed := diffCounted(old, h.counted())
	return ResultDelta{Added: added, Removed: removed, Version: h.appliedVersion}, nil
}

// Result returns the standing query's materialized result: the distinct
// answers currently live. The returned slice is a stable snapshot (rows
// are never mutated in place by later advances) but rows are shared with
// internal state — treat them as read-only.
func (h *StandingQuery) Result() []data.Tuple {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]data.Tuple(nil), h.counted().Tuples()...)
}

// Stats returns the handle's cumulative counters.
func (h *StandingQuery) Stats() StandingStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	st := h.stats
	if h.st != nil {
		st.ResidentTuples = h.st.Load().ResidentTuples
	}
	h.queueMu.Lock()
	st.Pending = len(h.pending)
	h.queueMu.Unlock()
	return st
}

// Close unsubscribes from the delta stream and releases the resident
// state. Advance and Result error after Close; Close is idempotent.
func (h *StandingQuery) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	h.unwatch()
	h.e.unregisterStanding(h)
	h.st, h.fallback = nil, mpc.NewCounted()
	h.queueMu.Lock()
	h.pending = nil
	h.queueMu.Unlock()
}

// diffCounted returns the liveness diff old → new: tuples live only in new
// (added) and only in old (removed). Rows are the counted fragments' own
// copies, safe to hand to callers.
func diffCounted(old, new *mpc.Counted) (added, removed []data.Tuple) {
	for _, t := range new.Tuples() {
		if old.Count(data.KeyOf(t)) == 0 {
			added = append(added, t)
		}
	}
	for _, t := range old.Tuples() {
		if new.Count(data.KeyOf(t)) == 0 {
			removed = append(removed, t)
		}
	}
	return added, removed
}

// registerStanding adds h to the engine's invalidation registry.
func (e *Engine) registerStanding(h *StandingQuery) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.standing == nil {
		e.standing = make(map[*StandingQuery]struct{})
	}
	e.standing[h] = struct{}{}
}

// unregisterStanding removes h from the invalidation registry.
func (e *Engine) unregisterStanding(h *StandingQuery) {
	e.mu.Lock()
	defer e.mu.Unlock()
	delete(e.standing, h)
}

// setStandingKey republishes the plan-cache key h's state was seeded from;
// markStale matches handles by key under e.mu.
func (e *Engine) setStandingKey(h *StandingQuery, key planKey) {
	e.mu.Lock()
	defer e.mu.Unlock()
	h.key = key
}
