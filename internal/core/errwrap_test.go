package core

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/query"
)

// Regression for the %v→%w wrapping fix surfaced by skewlint's errwrap
// analyzer: invalid-query failures from ExecuteContext and Standing must
// expose ErrInvalidQuery to errors.Is and keep the structural detail from
// query.Validate reachable in the chain. Under the old %v formatting the
// chain was flattened to text and errors.Is found nothing.
func TestInvalidQueryErrorsWrapSentinel(t *testing.T) {
	bad := &query.Query{Name: "bad"} // no atoms: Validate rejects it
	db := data.NewDatabase()
	e := NewEngine(4, 1)

	_, err := e.ExecuteContext(context.Background(), bad, db, ExecOptions{})
	if !errors.Is(err, ErrInvalidQuery) {
		t.Fatalf("ExecuteContext error %q does not wrap ErrInvalidQuery", err)
	}
	if detail := bad.Validate().Error(); !strings.Contains(err.Error(), detail) {
		t.Fatalf("ExecuteContext error %q lost the Validate detail %q", err, detail)
	}

	h, err := e.Standing(context.Background(), bad, db, ExecOptions{})
	if h != nil {
		defer h.Close()
	}
	if !errors.Is(err, ErrInvalidQuery) {
		t.Fatalf("Standing error %q does not wrap ErrInvalidQuery", err)
	}
}
