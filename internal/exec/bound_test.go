package exec

import (
	"context"
	"testing"

	"repro/internal/data"
	"repro/internal/mpc"
)

// TestClusterPoolBounded: a burst of Puts beyond the per-bucket depth
// discards clusters instead of pinning them, and Stats reports it.
func TestClusterPoolBounded(t *testing.T) {
	cp := ClusterPool{Depth: 2}
	burst := make([]*mpc.Cluster, 6)
	for i := range burst {
		burst[i] = cp.Get(8)
	}
	for _, c := range burst {
		cp.Put(c)
	}
	st := cp.Stats()
	if st.Parked != 2 {
		t.Fatalf("parked = %d, want depth 2", st.Parked)
	}
	if st.Discards != 4 {
		t.Fatalf("discards = %d, want 4", st.Discards)
	}
	if st.Gets != 6 || st.Puts != 6 || st.Reuses != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.ParkedServers != 16 {
		t.Fatalf("parked servers = %d, want 2×8", st.ParkedServers)
	}
	// The two parked clusters serve the next two Gets.
	a, b := cp.Get(8), cp.Get(8)
	if st := cp.Stats(); st.Reuses != 2 || st.Parked != 0 {
		t.Fatalf("after reuse: %+v", st)
	}
	cp.Put(a)
	cp.Put(b)

	// Different buckets have independent depths.
	big := make([]*mpc.Cluster, 3)
	for i := range big {
		big[i] = cp.Get(100)
	}
	for _, c := range big {
		cp.Put(c)
	}
	if st := cp.Stats(); st.Parked != 4 { // 2 in bucket-8, 2 in bucket-128
		t.Fatalf("parked = %d, want 4 across buckets", st.Parked)
	}
}

func TestClusterPoolDefaultDepth(t *testing.T) {
	var cp ClusterPool
	clusters := make([]*mpc.Cluster, DefaultClusterPoolDepth+3)
	for i := range clusters {
		clusters[i] = cp.Get(4)
	}
	for _, c := range clusters {
		cp.Put(c)
	}
	if st := cp.Stats(); st.Parked != DefaultClusterPoolDepth || st.Discards != 3 {
		t.Fatalf("stats = %+v, want %d parked / 3 discards", st, DefaultClusterPoolDepth)
	}
}

// TestRunCanceledContext: a canceled context aborts before routing and
// returns ctx.Err(); a live context runs normally.
func TestRunCanceledContext(t *testing.T) {
	db := testDB()
	plan := &PhysicalPlan{Strategy: "test", Virtual: 4, Physical: 2, Router: modRouter(4)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(plan, db, Config{Ctx: ctx}); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if _, err := Run(plan, db, Config{Ctx: context.Background()}); err != nil {
		t.Fatalf("live context errored: %v", err)
	}
}

// TestRunPipelineCanceledBetweenRounds: cancellation fired after stage 1
// stops the pipeline at the next round boundary, returns ctx.Err(), and
// still releases the cluster back to the pool.
func TestRunPipelineCanceledBetweenRounds(t *testing.T) {
	db := testDB()
	var cp ClusterPool
	ctx, cancel := context.WithCancel(context.Background())
	stage := func(out string, cancelAfter bool) Stage {
		return Stage{
			Plan: &PhysicalPlan{Strategy: "test", Virtual: 4, Physical: 2, Router: modRouter(4)},
			Base: []string{"S"},
			LocalFragment: func(s *mpc.Server) *data.Relation {
				if cancelAfter {
					cancel()
				}
				f := s.Fragment("S")
				if f == nil || f.Size() == 0 {
					return nil
				}
				out := data.NewRelation(out, f.Arity, f.Domain)
				out.AppendColumns(f.Columns(), f.Size())
				return out
			},
			OutName: out, OutArity: 2, OutDomain: 100,
		}
	}
	pl := &Pipeline{
		Strategy: "test",
		Physical: 2,
		Stages:   []Stage{stage("i1", true), stage("i2", false)},
	}
	_, err := RunPipeline(pl, db, Config{Clusters: &cp, Ctx: ctx})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := cp.Stats(); st.Puts != st.Gets {
		t.Fatalf("canceled pipeline leaked a cluster: %+v", st)
	}
	// Without cancellation the same pipeline completes.
	pl2 := &Pipeline{Strategy: "test", Physical: 2, Stages: []Stage{stage("i1", false), stage("i2", false)}}
	if _, err := RunPipeline(pl2, db, Config{Clusters: &cp}); err != nil {
		t.Fatalf("uncanceled pipeline errored: %v", err)
	}
}

// TestRunRelationsScoped: a plan naming its relations routes only those —
// an unrelated relation in the database adds no load.
func TestRunRelationsScoped(t *testing.T) {
	db := testDB()
	filler := data.NewRelation("Filler", 2, 100)
	for i := int64(0); i < 64; i++ {
		filler.Add(i, i)
	}
	db.Put(filler)
	scoped := &PhysicalPlan{Strategy: "test", Virtual: 4, Physical: 2, Router: modRouter(4), Relations: []string{"S"}}
	r1, err := Run(scoped, db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	clean := testDB()
	r2, _ := Run(&PhysicalPlan{Strategy: "test", Virtual: 4, Physical: 2, Router: modRouter(4)}, clean, Config{})
	if r1.Loads.TotalBits != r2.Loads.TotalBits || r1.MaxVirtualBits != r2.MaxVirtualBits {
		t.Fatalf("scoped run loads %+v differ from filler-free %+v", r1.Loads, r2.Loads)
	}
}
