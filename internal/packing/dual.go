package packing

import (
	"math/big"

	"repro/internal/lp"
	"repro/internal/query"
	"repro/internal/rational"
)

// This file implements the §3.3 duality machinery that proves
// Theorem 3.6: the dual LP (8) of the share-exponent LP (5), and the
// fractional vertex cover LP whose optimum equals τ* by LP duality
// ("the value of the maximal fractional edge packing ... is equal to the
// fractional vertex covering number for q").

// FractionalVertexCover solves min Σ_i w_i subject to, for every atom S_j,
// Σ_{i ∈ S_j} w_i ≥ 1 and w ≥ 0, returning an optimal cover and its value.
// By LP duality this value equals τ*(q).
func FractionalVertexCover(q *query.Query) (rational.Vector, *big.Rat) {
	k := q.NumVars()
	p := lp.NewProblem(k)
	for i := 0; i < k; i++ {
		p.Objective[i].SetInt64(1)
	}
	for _, a := range q.Atoms {
		row := rational.NewVector(k)
		for _, v := range a.Vars {
			row[v].SetInt64(1)
		}
		p.AddConstraint(row, lp.GE, rational.One())
	}
	s := p.Solve()
	if s.Status != lp.Optimal {
		panic("packing: vertex cover LP " + s.Status.String())
	}
	return s.X, s.Objective
}

// DualShareLP solves the dual (8) of the share-exponent LP (5) exactly:
//
//	maximize Σ_j μ_j f_j − f
//	s.t. Σ_j f_j ≤ 1;  ∀i: Σ_{j: i ∈ S_j} f_j − f ≤ 0;  f_j, f ≥ 0
//
// μ is given as exact rationals. By strong duality the optimum equals the
// primal λ; the transformation u_j = f_j/f of Lemma 3.8 maps the optimal
// dual solution onto a fractional edge packing, which is how Theorem 3.6
// identifies pk(q) as the witnesses of the bound.
func DualShareLP(q *query.Query, mu rational.Vector) (f rational.Vector, fScalar *big.Rat, objective *big.Rat) {
	l := q.NumAtoms()
	if len(mu) != l {
		panic("packing: mu length mismatch")
	}
	// Variables: f_0..f_{l-1}, then f.
	p := lp.NewProblem(l + 1)
	p.Maximize = true
	for j := 0; j < l; j++ {
		p.Objective[j].Set(mu[j])
	}
	p.Objective[l].SetInt64(-1)

	sum := rational.NewVector(l + 1)
	for j := 0; j < l; j++ {
		sum[j].SetInt64(1)
	}
	p.AddConstraint(sum, lp.LE, rational.One())
	for i := 0; i < q.NumVars(); i++ {
		row := rational.NewVector(l + 1)
		for _, j := range q.AtomsWithVar(i) {
			row[j].SetInt64(1)
		}
		row[l].SetInt64(-1)
		p.AddConstraint(row, lp.LE, rational.Zero())
	}
	s := p.Solve()
	if s.Status != lp.Optimal {
		panic("packing: dual share LP " + s.Status.String())
	}
	return s.X[:l], s.X[l], s.Objective
}

// PackingFromDual applies the Lemma 3.8 transformation u_j = f_j/f to a
// dual solution, returning the induced fractional edge packing (nil when
// f = 0, in which case the dual optimum does not correspond to a packing).
func PackingFromDual(f rational.Vector, fScalar *big.Rat) rational.Vector {
	if fScalar.Sign() == 0 {
		return nil
	}
	u := rational.NewVector(len(f))
	for j := range f {
		u[j].Quo(f[j], fScalar)
	}
	return u
}
