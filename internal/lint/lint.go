// Package lint is skewlint: the static-analysis suite that turns this
// repository's load-bearing conventions — deterministic seeded randomness,
// sleep-free tests, zero-allocation routing hot paths, context propagation,
// pooled-scratch escape discipline, and the typed error taxonomy — into
// mechanically enforced invariants. Each invariant is one analyzer on the
// framework in internal/lint/analysis; cmd/skewlint is the multichecker
// that runs them over `go list` patterns (and speaks the `go vet -vettool`
// protocol). See DESIGN.md, "Static analysis".
//
// Suppression is explicit and audited: a `//skewlint:allow <analyzer>
// [reason]` comment on (or directly above) the offending line waives that
// analyzer there, and `//skewlint:noalloc` in a function's doc comment
// opts the function into the allocation checker.
package lint

import (
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"
	"sync"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// Analyzers returns the five invariant analyzers the suite was built
// around, in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		NoDeterminismBreak,
		NoAlloc,
		CtxFlow,
		ScratchEscape,
		ErrWrap,
	}
}

// Extra returns the standard-analyzer ports (checks `go vet` does not run
// by default) the suite also carries: shadow, copylocks (beyond vet's
// default surface), unusedwrite, and nilness — reimplemented on the local
// framework because x/tools is not vendored.
func Extra() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Shadow,
		CopyLocks,
		UnusedWrite,
		Nilness,
	}
}

// All returns every analyzer cmd/skewlint runs by default.
func All() []*analysis.Analyzer {
	return append(Analyzers(), Extra()...)
}

// ByName resolves a comma-separated analyzer list; unknown names error.
func ByName(names string) ([]*analysis.Analyzer, error) {
	index := map[string]*analysis.Analyzer{}
	for _, a := range All() {
		index[a.Name] = a
	}
	var out []*analysis.Analyzer
	for _, n := range strings.Split(names, ",") {
		n = strings.TrimSpace(n)
		if n == "" {
			continue
		}
		a, ok := index[n]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// Finding is one resolved diagnostic: a concrete file position plus the
// analyzer that produced it.
type Finding struct {
	Pos      token.Position
	Category string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Category, f.Message)
}

// Run executes the analyzers over the packages and returns the surviving
// findings: deduplicated (a file shared by a package and its test variant
// is analyzed twice) and with //skewlint:allow suppressions applied,
// sorted by position.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	type keyed struct {
		key string
		f   Finding
	}
	var mu sync.Mutex
	var all []keyed
	var firstErr error

	var wg sync.WaitGroup
	for _, pkg := range pkgs {
		wg.Add(1)
		go func(pkg *load.Package) {
			defer wg.Done()
			allow := allowDirectives(pkg)
			for _, a := range analyzers {
				pass := &analysis.Pass{
					Analyzer:  a,
					Fset:      pkg.Fset,
					Files:     pkg.Syntax,
					Pkg:       pkg.Types,
					TypesInfo: pkg.TypesInfo,
					IsTest:    pkg.IsTest,
				}
				pass.Report = func(d analysis.Diagnostic) {
					pos := pkg.Fset.Position(d.Pos)
					if allow.allows(a.Name, pos) {
						return
					}
					mu.Lock()
					all = append(all, keyed{
						key: fmt.Sprintf("%s|%s|%s", pos, a.Name, d.Message),
						f:   Finding{Pos: pos, Category: a.Name, Message: d.Message},
					})
					mu.Unlock()
				}
				if err := a.Run(pass); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ID, err)
					}
					mu.Unlock()
				}
			}
		}(pkg)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	seen := map[string]bool{}
	var out []Finding
	for _, k := range all {
		if seen[k.key] {
			continue
		}
		seen[k.key] = true
		out = append(out, k.f)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Category < b.Category
	})
	return out, nil
}

// allowSet records, per file and line, the analyzers a //skewlint:allow
// directive waives.
type allowSet map[string]map[int]map[string]bool

// allows reports whether the named analyzer is waived at pos.
func (s allowSet) allows(name string, pos token.Position) bool {
	lines := s[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][name] || lines[pos.Line]["all"]
}

// allowDirectives scans a package's comments for //skewlint:allow
// directives. A directive suppresses findings on its own line; when the
// directive is the only thing on its line it suppresses the next line
// instead (the conventional "annotation above the statement" placement).
func allowDirectives(pkg *load.Package) allowSet {
	set := allowSet{}
	srcCache := map[string][]byte{}
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				line := pos.Line
				if ownLine(srcCache, pos) {
					line++
				}
				file := set[pos.Filename]
				if file == nil {
					file = map[int]map[string]bool{}
					set[pos.Filename] = file
				}
				byName := file[line]
				if byName == nil {
					byName = map[string]bool{}
					file[line] = byName
				}
				for _, n := range names {
					byName[n] = true
				}
			}
		}
	}
	return set
}

// parseAllow extracts analyzer names from a //skewlint:allow directive
// comment; everything after the names list (a rationale) is ignored.
// Accepted forms:
//
//	//skewlint:allow noalloc
//	//skewlint:allow noalloc,ctxflow -- cold path, runs once per batch
func parseAllow(text string) ([]string, bool) {
	const prefix = "//skewlint:allow"
	if !strings.HasPrefix(text, prefix) {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, prefix))
	if rest == "" {
		return []string{"all"}, true
	}
	fields := strings.Fields(rest)
	var names []string
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	if len(names) == 0 {
		return []string{"all"}, true
	}
	return names, true
}

// ownLine reports whether only whitespace precedes the comment at pos on
// its line (so the directive governs the following line, not its own).
func ownLine(cache map[string][]byte, pos token.Position) bool {
	src, ok := cache[pos.Filename]
	if !ok {
		src, _ = os.ReadFile(pos.Filename)
		cache[pos.Filename] = src
	}
	if src == nil {
		return false
	}
	// pos.Offset is the comment start; scan back to the line start.
	for i := pos.Offset - 1; i >= 0; i-- {
		switch src[i] {
		case '\n':
			return true
		case ' ', '\t', '\r':
		default:
			return false
		}
	}
	return true
}

// LoadAndRun is the one-call driver cmd/skewlint and the tests share:
// load patterns from dir, run the analyzers, return findings.
func LoadAndRun(dir string, analyzers []*analysis.Analyzer, patterns ...string) ([]Finding, error) {
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	for _, p := range pkgs {
		for _, terr := range p.TypeErrors {
			return nil, fmt.Errorf("lint: type checking %s: %w", p.ID, terr)
		}
	}
	return Run(pkgs, analyzers)
}
