package bounds

import (
	"math"
	"testing"

	"repro/internal/data"
	"repro/internal/hypercube"
	"repro/internal/query"
	"repro/internal/workload"
)

func approx(a, b, tol float64) bool {
	if b == 0 {
		return math.Abs(a) < tol
	}
	return math.Abs(a-b)/math.Abs(b) < tol
}

func TestK(t *testing.T) {
	if got := K([]float64{1, 1}, []float64{10, 20}); got != 200 {
		t.Errorf("K = %v", got)
	}
	if got := K([]float64{0.5, 0.5}, []float64{4, 9}); !approx(got, 6, 1e-12) {
		t.Errorf("K = %v, want 6", got)
	}
	// Zero weight ignores the relation entirely (even size 0).
	if got := K([]float64{0, 1}, []float64{0, 5}); got != 5 {
		t.Errorf("K with zero weight = %v", got)
	}
}

func TestL(t *testing.T) {
	// L((1,1), (M,M), p) = (M²/p)^{1/2}.
	got := L([]float64{1, 1}, []float64{100, 100}, 4)
	if !approx(got, math.Sqrt(100*100/4.0), 1e-12) {
		t.Errorf("L = %v", got)
	}
	if L([]float64{0, 0}, []float64{10, 10}, 4) != 0 {
		t.Error("zero packing should bound nothing")
	}
}

func TestSimpleLowerTriangleExample37(t *testing.T) {
	// Example 3.7's table: four packings, four bounds.
	q := query.Triangle()
	p := 64
	m1, m2, m3 := 4096.0, 4096.0, 4096.0
	best, table := SimpleLower(q, []float64{m1, m2, m3}, p)
	if len(table) != 4 {
		t.Fatalf("table has %d rows, want 4", len(table))
	}
	wantHalf := math.Pow(m1*m2*m3, 1.0/3) / math.Pow(float64(p), 2.0/3)
	wantUnit := m1 / float64(p)
	if !approx(best, math.Max(wantHalf, wantUnit), 1e-9) {
		t.Errorf("best = %v, want max(%v, %v)", best, wantHalf, wantUnit)
	}
	// Equal sizes: the (1/2,1/2,1/2) row gives (M³)^{1/3}/p^{2/3} = M/p^{2/3},
	// beating M/p: table must be sorted with it first.
	if !approx(table[0].Bound, wantHalf, 1e-9) {
		t.Errorf("table[0] = %v, want %v", table[0].Bound, wantHalf)
	}
}

func TestSimpleLowerUnequalTriangle(t *testing.T) {
	// When one relation is tiny, a unit packing can win.
	q := query.Triangle()
	p := 64
	best, _ := SimpleLower(q, []float64{1 << 20, 64, 64}, p)
	want := float64(1<<20) / 64 // packing (1,0,0)
	if !approx(best, want, 1e-9) {
		t.Errorf("best = %v, want %v (unit packing)", best, want)
	}
}

func TestTheorem36LPEqualsVertexMax(t *testing.T) {
	// L_upper (LP) = L_lower (vertex max) for a suite of queries and
	// random-ish statistics.
	cases := []struct {
		q    *query.Query
		bits []float64
	}{
		{query.Triangle(), []float64{1 << 16, 1 << 16, 1 << 16}},
		{query.Triangle(), []float64{1 << 20, 1 << 12, 1 << 14}},
		{query.Join2(), []float64{1 << 18, 1 << 13}},
		{query.Path(3), []float64{1 << 15, 1 << 17, 1 << 13}},
		{query.Star(3), []float64{1 << 14, 1 << 15, 1 << 16}},
		{query.Cartesian(2), []float64{1 << 15, 1 << 18}},
		{query.Cycle(4), []float64{1 << 15, 1 << 15, 1 << 15, 1 << 15}},
	}
	for _, c := range cases {
		for _, p := range []int{16, 64, 1024} {
			_, lambda := hypercube.OptimalExponents(c.q, c.bits, p)
			lpB, vtxB := LPLowerEqualsVertexMax(c.q, c.bits, p, lambda)
			if !approx(lpB, vtxB, 1e-6) {
				t.Errorf("%s p=%d: LP bound %v != vertex bound %v", c.q.Name, p, lpB, vtxB)
			}
		}
	}
}

func TestSpaceExponentEqualSizes(t *testing.T) {
	// Equal sizes: load M/p^{1/τ*}, so ε = 1 − 1/τ*.
	cases := []struct {
		q   *query.Query
		tau float64
	}{
		{query.Triangle(), 1.5},
		{query.Join2(), 1},
		{query.Cartesian(2), 2},
		{query.Cycle(4), 2},
	}
	for _, c := range cases {
		bits := make([]float64, c.q.NumAtoms())
		for j := range bits {
			bits[j] = 1 << 20
		}
		got := SpaceExponent(c.q, bits, 64)
		want := 1 - 1/c.tau
		if !approx(got, want, 1e-9) {
			t.Errorf("ε(%s) = %v, want %v", c.q.Name, got, want)
		}
	}
}

func TestSpaceExponentBroadcastRelation(t *testing.T) {
	// A relation below M/p is broadcast: it should not worsen ε.
	q := query.Join2()
	p := 64
	big := float64(int64(1) << 30)
	eps := SpaceExponent(q, []float64{big, big / float64(p*4)}, p)
	// With S2 broadcast the query is effectively a single relation scan:
	// load M/p, ε = 0.
	if !approx(eps, 0, 1e-9) {
		t.Errorf("ε = %v, want 0", eps)
	}
}

func TestExpectedAnswers(t *testing.T) {
	// Lemma A.1: E|q(I)| = n^{k−a} Π m_j. Triangle: k=3, a=6.
	q := query.Triangle()
	n := 100.0
	m := []float64{1000, 1000, 1000}
	got := ExpectedAnswers(q, m, n)
	want := math.Pow(n, -3) * 1e9
	if !approx(got, want, 1e-12) {
		t.Errorf("E = %v, want %v", got, want)
	}
}

func TestResidualLowerJoinExample48(t *testing.T) {
	// Example 4.8: for x={z}, bound = sqrt(Σ_h M1(h)·M2(h) / p).
	p := 16
	s1 := workload.PlantedHeavy("S1", 512, 100000, 1, []workload.HeavySpec{
		{Value: 1, Count: 128}, {Value: 2, Count: 64},
	}, 1)
	s2 := workload.PlantedHeavy("S2", 512, 100000, 1, []workload.HeavySpec{
		{Value: 1, Count: 128}, {Value: 2, Count: 32},
	}, 2)
	db := data.NewDatabase()
	db.Put(s1)
	db.Put(s2)
	q := query.Join2()
	got, table := ResidualLower(q, query.NewVarSet(2), db, p)
	if len(table) == 0 {
		t.Fatal("no saturating packings")
	}
	// Compute Σ_h M1(h)M2(h) by brute force over shared z values.
	bitsW := float64(s1.BitsPerTuple())
	sum := 0.0
	f1 := map[int64]float64{}
	s1.Each(func(_ int, tu data.Tuple) bool { f1[tu[1]]++; return true })
	f2 := map[int64]float64{}
	s2.Each(func(_ int, tu data.Tuple) bool { f2[tu[1]]++; return true })
	for z, c1 := range f1 {
		sum += (c1 * bitsW) * (f2[z] * bitsW)
	}
	want := math.Sqrt(sum / float64(p))
	if !approx(got, want, 1e-9) {
		t.Errorf("residual bound = %v, want %v", got, want)
	}
}

func TestResidualLowerTriangleExample48(t *testing.T) {
	// C3 with x={x1}: bound sqrt(Σ_h m1(h)·m3(h)/p) from packing (1,0,1).
	p := 16
	q := query.Triangle()
	s1 := workload.PlantedHeavy("S1", 256, 100000, 0, []workload.HeavySpec{{Value: 5, Count: 64}}, 3)
	s2 := workload.Uniform("S2", 2, 256, 1000, 4)
	s3 := workload.PlantedHeavy("S3", 256, 100000, 1, []workload.HeavySpec{{Value: 5, Count: 64}}, 5)
	db := data.NewDatabase()
	db.Put(s1)
	db.Put(s2)
	db.Put(s3)
	got, table := ResidualLower(q, query.NewVarSet(0), db, p)
	if got <= 0 {
		t.Fatal("no bound")
	}
	// The (1,0,1) packing must appear in the table.
	found := false
	for _, row := range table {
		if row.U[0] == 1 && row.U[1] == 0 && row.U[2] == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing (1,0,1) packing in %v", table)
	}
}

func TestResidualLowerNoSaturation(t *testing.T) {
	// For Join2 and x={x}, the residual polytope's saturating packings
	// require Σ_{j∋x} u_j ≥ 1, which only S1 provides; check the function
	// returns something sane (possibly zero if nothing saturates).
	q := query.Join2()
	db := data.NewDatabase()
	db.Put(workload.Uniform("S1", 2, 100, 1000, 1))
	db.Put(workload.Uniform("S2", 2, 100, 1000, 2))
	b, _ := ResidualLower(q, query.NewVarSet(0), db, 4)
	if b < 0 {
		t.Error("negative bound")
	}
}

func TestBestLowerPrefersResidualUnderSkew(t *testing.T) {
	// With a single shared heavy z, the residual bound sqrt(m1(h)m2(h)/p)
	// exceeds the simple bound max(M1,M2)/p.
	p := 16
	m := 1024
	s1 := workload.SingleValue("S1", 2, m, 100000, 1, 7, 1)
	s2 := workload.SingleValue("S2", 2, m, 100000, 1, 7, 2)
	db := data.NewDatabase()
	db.Put(s1)
	db.Put(s2)
	q := query.Join2()
	best, desc := BestLower(q, db, p, 0)
	bitsW := float64(s1.BitsPerTuple())
	wantResidual := math.Sqrt(float64(m) * bitsW * float64(m) * bitsW / float64(p))
	wantSimple := float64(m) * bitsW / float64(p)
	if wantResidual <= wantSimple {
		t.Fatal("test setup wrong: residual should dominate")
	}
	if !approx(best, wantResidual, 1e-9) {
		t.Errorf("best = %v (%s), want %v", best, desc, wantResidual)
	}
	if desc == "simple (x = ∅)" {
		t.Errorf("winner should be residual, got %s", desc)
	}
}

func TestBestLowerUniformPrefersSimple(t *testing.T) {
	// Skew-free data: the simple bound should win (or tie).
	db := data.NewDatabase()
	db.Put(workload.Matching("S1", 2, 1024, 100000, 1))
	db.Put(workload.Matching("S2", 2, 1024, 100000, 2))
	q := query.Join2()
	best, _ := BestLower(q, db, 16, 0)
	bitsW := float64(db.MustGet("S1").BitsPerTuple())
	simple := 1024 * bitsW / 16
	// Matching data: residual Σ_h M1(h)M2(h) = Σ_h (bitsW)² over shared
	// values ≤ m·bitsW², sqrt(m/p)·bitsW ≪ simple.
	if best < simple-1e-9 {
		t.Errorf("best = %v below simple bound %v", best, simple)
	}
	if best > simple*1.01 {
		t.Errorf("best = %v, expected ≈ simple %v on skew-free data", best, simple)
	}
}

func TestPanics(t *testing.T) {
	q := query.Join2()
	for _, f := range []func(){
		func() { K([]float64{1}, []float64{1, 2}) },
		func() { SimpleLower(q, []float64{1}, 4) },
		func() { ExpectedAnswers(q, []float64{1}, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestResidualLowerTwoVariableSet(t *testing.T) {
	// Star(2): q(z,x1,x2) = S1(z,x1), S2(z,x2), with x = {z, x1} (d = 2).
	// The residual query is S1(), S2(x2); u = (1,1) saturates both
	// variables (z via u1+u2, x1 via u1). Eq. (12) then reads
	// sqrt(Σ_{(z,x1)} M1(z,x1)·M2(z) / p); verify against brute force.
	q := query.Star(2)
	p := 16
	db := data.NewDatabase()
	s1 := data.NewRelation("S1", 2, 100000)
	s2 := data.NewRelation("S2", 2, 100000)
	// z=5 heavy in both; a few light pairs.
	for i := int64(0); i < 20; i++ {
		s1.Add(5, 100+i)
		s2.Add(5, 200+i)
	}
	for i := int64(0); i < 10; i++ {
		s1.Add(1000+i, 300+i)
		s2.Add(1000+i, 400+i)
	}
	db.Put(s1)
	db.Put(s2)

	x := query.NewVarSet(0, 1) // z, x1
	got, table := ResidualLower(q, x, db, p)
	if len(table) == 0 {
		t.Fatal("no saturating packings for {z,x1}")
	}
	// Brute force: every (z,x1) pair of S1 contributes
	// M1(z,x1)^1 · M2(z)^1 where both are in bits.
	b1 := float64(s1.BitsPerTuple())
	b2 := float64(s2.BitsPerTuple())
	zCount := map[int64]float64{}
	s2.Each(func(_ int, tu data.Tuple) bool { zCount[tu[0]]++; return true })
	sum := 0.0
	s1.Each(func(_ int, tu data.Tuple) bool {
		// Each (z,x1) pair occurs once in S1: M1(h) = b1.
		sum += b1 * (zCount[tu[0]] * b2)
		return true
	})
	want := math.Sqrt(sum / float64(p))
	if !approx(got, want, 1e-9) {
		t.Errorf("d=2 residual bound = %v, want %v", got, want)
	}
}
