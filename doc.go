// Package repro is a from-scratch Go reproduction of "Skew in Parallel
// Query Processing" (Beame, Koutris, Suciu — PODS 2014): one-round
// evaluation of full conjunctive queries in the Massively Parallel
// Communication (MPC) model, with communication cost characterized by
// fractional edge packings.
//
// The package is a facade over the internal implementation:
//
//   - Session: the serving-grade entry point. Open(Config) validates an
//     immutable configuration; Exec(ctx, q, db, opts...) evaluates with
//     per-call functional options (WithStrategy, WithMultiRound,
//     WithoutCache, WithP), honors context cancellation both between
//     communication rounds and mid-round at the routing checkpoints
//     inside them, and serves from a plan cache that databases
//     may mutate under: Database.Apply applies batched tuple deltas while
//     maintaining fingerprints and per-attribute statistics incrementally,
//     and Config.ReplanDriftFactor arms adaptive re-planning when realized
//     loads drift from the statistics a cached plan froze. Standing(ctx,
//     q, db, opts...) registers an incremental view over a mutable
//     database: after the seeding execution, each Advance routes only the
//     applied delta tuples — not the database — through the frozen
//     physical plan's router into resident per-server state, maintaining
//     the materialized result (including exact delete retraction via
//     derivation counting) and emitting a ResultDelta.
//
//     Sessions are built for sustained concurrent serving: reads execute
//     against immutable snapshot epochs (Database.Apply publishes a new
//     epoch per batch, so an Exec never blocks behind a writer or observes
//     a half-applied delta); admission control (Config.MaxInFlight,
//     Config.MaxQueue) bounds in-flight executions and sheds the excess
//     promptly with ErrOverloaded; Close drains in-flight calls and then
//     rejects the rest with ErrSessionClosed; Config.BackgroundReplan
//     moves drift-triggered replanning off the request path; and
//     Config.Faults arms a seeded, deterministic fault-injection schedule
//     (torn rounds, failed computes, stragglers) for exercising every
//     degradation path.
//
//     Fault recovery is round-granular. The sharded communication engine
//     commits a round's deliveries transactionally, so a torn round leaves
//     resident state bit-identical to the pre-round state and is replayed
//     in place — a fault in round k of a multi-round pipeline never repeats
//     rounds 1..k-1 — and a failed compute phase re-runs only the failed
//     servers. Config.Retry bounds the recovery (a shared attempt budget
//     with capped, jittered exponential backoff; Result.Recovery reports
//     what a run consumed, with the legacy Result.FaultRetries kept equal
//     to Recovery.Attempts); faults that outlive the budget surface as
//     ErrTornRound or ErrComputeFailed. Config.BreakerThreshold adds a
//     circuit breaker on top: a persistently faulting cluster sheds calls
//     fast with ErrCircuitOpen while one probe at a time tests for
//     recovery (Session.HealthStats).
//
//     Serving sessions also adapt the physical layout to skew: after
//     planning, relations the chosen plan routes by a single heavy
//     attribute are given a heavy-partition column layout (light rows
//     packed first, then one contiguous run per heavy value), rebuilt
//     lazily as deltas shift the heavy hitters, so the routers resolve one
//     plan per heavy run and ship whole column spans instead of routing
//     tuple by tuple. The layout is a pure physical reorder — answers,
//     realized loads, and fingerprints are identical either way —
//     and Config.DisableAutoPartition turns the maintenance off;
//     CacheStats.Repartitions counts rebuilds.
//
//   - Engine (internal/core): plans and executes a query on p simulated
//     servers, choosing between plain HyperCube (§3), the specialized skew
//     join (§4.1), and the general bin-combination algorithm (§4.2) based
//     on heavy-hitter statistics. Every strategy lowers to a PhysicalPlan
//     run by the unified executor (internal/exec), and plans are cached
//     across Execute calls on unchanged inputs. NewEngine is the
//     pre-Session API (panics on invalid input, mutable config fields);
//     Session wraps it for serving.
//
//   - Lower bounds (internal/bounds): the matching communication lower
//     bounds of Theorems 3.5 and 4.7, in bits.
//
//   - Packings (internal/packing): exact fractional edge packing polytope
//     vertices, pk(q), τ*, covers, and the AGM bound.
//
//   - Workloads (internal/workload): the synthetic instance generators the
//     experiments use (uniform, matching, Zipf, planted heavy hitters,
//     degree sequences).
//
// A minimal serving session:
//
//	q := repro.MustParseQuery("C3(x,y,z) = S1(x,y), S2(y,z), S3(z,x)")
//	db := repro.NewDatabase()
//	db.Put(repro.UniformRelation("S1", 2, 10000, 1<<20, 1))
//	db.Put(repro.UniformRelation("S2", 2, 10000, 1<<20, 2))
//	db.Put(repro.UniformRelation("S3", 2, 10000, 1<<20, 3))
//	s, err := repro.Open(repro.Config{P: 64, ReplanDriftFactor: 2})
//	if err != nil { ... }
//	res, err := s.Exec(ctx, q, db)
//	if err != nil { ... }
//	fmt.Println(len(res.Output), res.MaxLoadBits, res.Plan.Reason)
//
//	// Mutate under the live plan cache; statistics and fingerprints
//	// update in O(delta).
//	err = db.Apply(repro.NewDelta().Insert("S1", 7, 8).Delete("S2", 1, 2))
//
// See DESIGN.md for the planner/executor layering and system inventory;
// `go test -bench .` regenerates the paper-versus-measured experiment
// tables. The engine's invariant contracts (deterministic core,
// allocation-free routing hot paths, context flow, pooled-scratch
// ownership, error wrapping) are mechanically enforced by the custom
// static-analysis suite in internal/lint: run it with
// `go run ./cmd/skewlint ./...`.
package repro
