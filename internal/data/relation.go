// Package data stores relation instances over an integer domain [n] and
// accounts their size in bits, matching the paper's convention
// M_j = a_j · m_j · log n for a relation with arity a_j and m_j tuples.
//
// Storage is columnar: one []int64 per attribute. Routers hash only the
// join columns, local joins scan only the attributes they touch, and the
// simulator's communication phase ships column slices — row views exist
// only at the edges (tests, debug output, reference algorithms).
package data

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Tuple is one row of a relation; len(Tuple) is the relation's arity.
type Tuple []int64

// Key renders a tuple as a compact map key. It allocates; hot paths use
// KeyOf instead and keep Key() for error/debug formatting only.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// keyInline is the arity up to which Key stores values inline without
// allocating. Base relations in this repository have arity ≤ 3 and
// attribute subsets are no wider; the overflow path exists so that wide
// intermediate relations (multi-round plans) stay correct.
const keyInline = 8

// Key is a comparable, allocation-free rendering of a tuple for use as a
// map key: values up to keyInline are stored inline, wider tuples spill
// the remainder into a packed string (one allocation, still comparable).
// The zero Key is the key of the empty tuple.
type Key struct {
	v        [keyInline]int64
	n        int32
	overflow string
}

// KeyOf returns the map key of vals. It never allocates for
// len(vals) ≤ keyInline.
func KeyOf(vals []int64) Key {
	k := Key{n: int32(len(vals))}
	if len(vals) <= keyInline {
		copy(k.v[:], vals)
		return k
	}
	copy(k.v[:], vals[:keyInline])
	var sb strings.Builder
	sb.Grow((len(vals) - keyInline) * 8)
	for _, v := range vals[keyInline:] {
		u := uint64(v)
		sb.Write([]byte{
			byte(u >> 56), byte(u >> 48), byte(u >> 40), byte(u >> 32),
			byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u),
		})
	}
	k.overflow = sb.String()
	return k
}

// Key1 is KeyOf for a single value — the hot single-attribute case.
func Key1(v int64) Key {
	k := Key{n: 1}
	k.v[0] = v
	return k
}

// Len returns the arity of the keyed tuple.
func (k Key) Len() int { return int(k.n) }

// At returns the i-th value of the keyed tuple.
func (k Key) At(i int) int64 {
	if i < keyInline {
		return k.v[i]
	}
	off := (i - keyInline) * 8
	var u uint64
	for b := 0; b < 8; b++ {
		u = u<<8 | uint64(k.overflow[off+b])
	}
	return int64(u)
}

// Tuple materializes the keyed tuple.
func (k Key) Tuple() Tuple {
	t := make(Tuple, k.n)
	for i := range t {
		t[i] = k.At(i)
	}
	return t
}

// Less orders keys by their value sequences (shorter prefixes first).
func (k Key) Less(o Key) bool {
	n := int(k.n)
	if int(o.n) < n {
		n = int(o.n)
	}
	for i := 0; i < n; i++ {
		a, b := k.At(i), o.At(i)
		if a != b {
			return a < b
		}
	}
	return k.n < o.n
}

// String renders the key like Tuple.Key (debug only).
func (k Key) String() string { return k.Tuple().Key() }

// BitsPerValue returns ⌈log₂ n⌉ (minimum 1), the bits needed to encode one
// value from a domain of size n.
func BitsPerValue(domain int64) int {
	if domain <= 1 {
		return 1
	}
	return bits.Len64(uint64(domain - 1))
}

// Relation is a named multiset-free relation instance S_j ⊆ [domain]^arity,
// stored column-wise: cols[a][i] is attribute a of tuple i. Duplicate
// insertion is the caller's responsibility to avoid (generators never
// produce duplicates; AddUnique enforces it when needed).
type Relation struct {
	Name   string
	Arity  int
	Domain int64
	cols   [][]int64
	rows   int
}

// NewRelation returns an empty relation.
func NewRelation(name string, arity int, domain int64) *Relation {
	if arity < 0 || domain < 1 {
		panic(fmt.Sprintf("data: bad relation shape arity=%d domain=%d", arity, domain))
	}
	return &Relation{Name: name, Arity: arity, Domain: domain, cols: make([][]int64, arity)}
}

// Add appends a tuple. Values must lie in [0, Domain).
func (r *Relation) Add(vals ...int64) {
	if len(vals) != r.Arity {
		panic(fmt.Sprintf("data: %s: tuple arity %d, want %d", r.Name, len(vals), r.Arity))
	}
	for a, v := range vals {
		if v < 0 || v >= r.Domain {
			panic(fmt.Sprintf("data: %s: value %d outside domain [0,%d)", r.Name, v, r.Domain))
		}
		r.cols[a] = append(r.cols[a], v)
	}
	r.rows++
}

// AppendColumns bulk-appends count rows given column-wise (cols[a] holds
// attribute a of every appended row). Values are trusted — they must come
// from a relation of the same shape (the simulator's delivery path, where
// every value was validated on its original Add). The slices are copied.
func (r *Relation) AppendColumns(cols [][]int64, count int) {
	if len(cols) != r.Arity {
		panic(fmt.Sprintf("data: %s: AppendColumns arity %d, want %d", r.Name, len(cols), r.Arity))
	}
	for a := range r.cols {
		r.cols[a] = append(r.cols[a], cols[a][:count]...)
	}
	r.rows += count
}

// AppendRow appends row i of src, which must have the same arity.
// Values are trusted (src already validated them).
func (r *Relation) AppendRow(src *Relation, i int) {
	if src.Arity != r.Arity {
		panic(fmt.Sprintf("data: %s: AppendRow from arity %d, want %d", r.Name, src.Arity, r.Arity))
	}
	for a := range r.cols {
		r.cols[a] = append(r.cols[a], src.cols[a][i])
	}
	r.rows++
}

// Size returns m, the number of tuples.
func (r *Relation) Size() int { return r.rows }

// Column returns attribute a of every tuple — the columnar view routers
// and joins scan. The slice aliases internal storage: callers must treat
// it as read-only and must not retain it across Add calls.
func (r *Relation) Column(a int) []int64 { return r.cols[a][:r.rows] }

// Columns returns all column slices (read-only, like Column).
func (r *Relation) Columns() [][]int64 { return r.cols }

// At returns attribute a of tuple i.
func (r *Relation) At(i, a int) int64 { return r.cols[a][i] }

// Tuple materializes the i-th tuple as a fresh row. It allocates — hot
// paths read Column/At directly or use ReadTuple with reusable scratch.
func (r *Relation) Tuple(i int) Tuple {
	return r.ReadTuple(i, make(Tuple, r.Arity))
}

// ReadTuple gathers the i-th tuple into dst (which must have length
// Arity) and returns dst.
func (r *Relation) ReadTuple(i int, dst Tuple) Tuple {
	for a, col := range r.cols {
		dst[a] = col[i]
	}
	return dst
}

// KeyAt returns the map key of the i-th tuple without materializing it.
func (r *Relation) KeyAt(i int) Key {
	if r.Arity <= keyInline {
		k := Key{n: int32(r.Arity)}
		for a, col := range r.cols {
			k.v[a] = col[i]
		}
		return k
	}
	return KeyOf(r.Tuple(i))
}

// Each calls f on every tuple; returning false stops early. The Tuple
// view is scratch reused across iterations (one allocation per Each
// call): it is only valid inside the callback and must be copied to be
// retained. Each itself never writes to the relation, so concurrent scans
// of one relation are safe.
func (r *Relation) Each(f func(i int, t Tuple) bool) {
	t := make(Tuple, r.Arity)
	for i := 0; i < r.rows; i++ {
		for a, col := range r.cols {
			t[a] = col[i]
		}
		if !f(i, t) {
			return
		}
	}
}

// BitsPerTuple returns a_j·⌈log₂ n⌉.
func (r *Relation) BitsPerTuple() int64 {
	return int64(r.Arity) * int64(BitsPerValue(r.Domain))
}

// Bits returns M_j = a_j · m_j · ⌈log₂ n⌉, the size of the relation in bits.
func (r *Relation) Bits() int64 {
	return int64(r.Size()) * r.BitsPerTuple()
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.Name, r.Arity, r.Domain)
	for a := range r.cols {
		c.cols[a] = append([]int64(nil), r.cols[a]...)
	}
	c.rows = r.rows
	return c
}

// Sort orders tuples lexicographically in place (used to canonicalize for
// comparisons in tests). Column-wise: sort a row permutation, then gather
// each column once.
func (r *Relation) Sort() {
	idx := make([]int, r.rows)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		for _, col := range r.cols {
			if col[ia] != col[ib] {
				return col[ia] < col[ib]
			}
		}
		return false
	})
	for a, col := range r.cols {
		sorted := make([]int64, r.rows)
		for out, i := range idx {
			sorted[out] = col[i]
		}
		r.cols[a] = sorted
	}
}

// ContainsDuplicates reports whether any tuple occurs twice.
func (r *Relation) ContainsDuplicates() bool {
	seen := make(map[Key]bool, r.rows)
	for i := 0; i < r.rows; i++ {
		k := r.KeyAt(i)
		if seen[k] {
			return true
		}
		seen[k] = true
	}
	return false
}

// Database is a set of relations keyed by relation (atom) name.
type Database struct {
	Relations map[string]*Relation
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{Relations: make(map[string]*Relation)}
}

// Put stores a relation under its own name.
func (db *Database) Put(r *Relation) { db.Relations[r.Name] = r }

// Get returns the named relation or nil.
func (db *Database) Get(name string) *Relation { return db.Relations[name] }

// MustGet returns the named relation or panics.
func (db *Database) MustGet(name string) *Relation {
	r := db.Relations[name]
	if r == nil {
		panic("data: missing relation " + name)
	}
	return r
}

// TotalBits returns Σ_j M_j, the database size in bits.
func (db *Database) TotalBits() int64 {
	var total int64
	for _, r := range db.Relations {
		total += r.Bits()
	}
	return total
}

// Names returns the relation names in sorted order.
func (db *Database) Names() []string {
	names := make([]string, 0, len(db.Relations))
	for n := range db.Relations {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
