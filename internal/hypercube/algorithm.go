package hypercube

import (
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/exec"
	"repro/internal/hashing"
	"repro/internal/join"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/wcoj"
)

// Router routes tuples to hypercube subcubes: a tuple of S_j fixes the
// coordinates of the dimensions of vars(S_j) by hashing and is replicated
// over every combination of the remaining dimensions (§3.1).
//
// Destinations reuses per-router scratch, so a Router is not safe for
// concurrent use; it implements mpc.PerSenderRouter and mpc.Round gives
// each sender goroutine its own instance.
type Router struct {
	q      *query.Query
	grid   *hashing.Grid
	shares []int
	stride []int // linearization strides, stride[k-1] = 1
	// atomVars[name] maps attribute position → variable index (dimension).
	atomVars map[string][]int
	// Per-tuple scratch, reused across Destinations calls.
	coords []int
	fixed  []bool
}

// NewRouter builds the HC router for the given integer shares (one per
// query variable, product ≤ the cluster size).
func NewRouter(q *query.Query, shares []int, family *hashing.Family) *Router {
	if len(shares) != q.NumVars() {
		panic("hypercube: shares length must equal variable count")
	}
	k := len(shares)
	r := &Router{
		q:        q,
		grid:     hashing.NewGrid(shares, family),
		shares:   append([]int(nil), shares...),
		stride:   make([]int, k),
		atomVars: make(map[string][]int),
		coords:   make([]int, k),
		fixed:    make([]bool, k),
	}
	size := 1
	for i := k - 1; i >= 0; i-- {
		r.stride[i] = size
		size *= shares[i]
	}
	for _, a := range q.Atoms {
		r.atomVars[a.Name] = append([]int(nil), a.Vars...)
	}
	return r
}

// Size returns the number of hypercube cells (Π p_i).
func (r *Router) Size() int { return r.grid.Size() }

// ForSender implements mpc.PerSenderRouter: the copy shares the immutable
// grid and share tables but owns fresh scratch.
func (r *Router) ForSender() mpc.Router {
	c := *r
	c.coords = make([]int, len(r.shares))
	c.fixed = make([]bool, len(r.shares))
	return &c
}

// Destinations implements mpc.Router: the subcube of servers receiving t.
// It appends the cells in lexicographic coordinate order and performs no
// allocations beyond growing dst.
func (r *Router) Destinations(rel string, t data.Tuple, dst []int) []int {
	vars, ok := r.atomVars[rel]
	if !ok {
		panic("hypercube: relation " + rel + " not in query")
	}
	k := len(r.shares)
	coords, fixed := r.coords, r.fixed
	for i := 0; i < k; i++ {
		coords[i] = 0
		fixed[i] = false
	}
	lin := 0
	for pos, v := range vars {
		c := r.grid.HashDim(v, t[pos])
		coords[v] = c
		fixed[v] = true
		lin += c * r.stride[v]
	}
	// Odometer over the free dimensions, last dimension fastest —
	// lexicographic order, maintaining the linear index incrementally.
	for {
		dst = append(dst, lin)
		d := k - 1
		for ; d >= 0; d-- {
			if fixed[d] {
				continue
			}
			if coords[d]+1 < r.shares[d] {
				coords[d]++
				lin += r.stride[d]
				break
			}
			lin -= coords[d] * r.stride[d]
			coords[d] = 0
		}
		if d < 0 {
			return dst
		}
	}
}

// Config controls a HyperCube run.
type Config struct {
	P    int    // number of servers
	Seed uint64 // hash-family seed; same seed → identical run

	// Shares overrides share selection entirely when non-nil.
	Shares []int
	// Exponents overrides the LP when non-nil (rounded per Strategy).
	Exponents []float64
	// Strategy selects integer rounding (default RoundGreedy).
	Strategy Rounding
	// UseAfratiUllman selects the baseline total-load optimizer instead of
	// the paper's LP (ablation A2).
	UseAfratiUllman bool
	// EqualShares forces the skew-resilient p^{1/k} configuration
	// (Corollary 3.2 (ii)).
	EqualShares bool
	// SkipJoin measures communication only: servers receive their
	// fragments but do not compute the local join. Loads are identical;
	// Output stays empty. Load-focused experiments use this to avoid
	// materializing quadratic outputs.
	SkipJoin bool
	// UseWCOJ computes the local joins with the generic worst-case
	// optimal algorithm instead of binary hash joins — useful when server
	// fragments are cyclic and dense enough that binary plans blow up
	// locally (the NPRR separation, [9] in the paper).
	UseWCOJ bool
}

// Result reports a HyperCube run.
type Result struct {
	Shares        []int
	Exponents     []float64
	Lambda        float64 // LP optimum: predicted load is p^λ bits
	PredictedBits float64 // p^λ (only for LP-based share selection)
	Output        []data.Tuple
	Loads         mpc.LoadSummary
}

// Plan is the §3.1 planner output: the selected shares with their LP
// analysis, lowered to the unified executor's PhysicalPlan. Plans are
// reusable across executions (Engine's plan cache holds them).
type Plan struct {
	Shares        []int
	Exponents     []float64
	Lambda        float64
	PredictedBits float64
	Phys          *exec.PhysicalPlan
	skipJoin      bool
}

// BuildPlan selects shares for q over db (LP-optimal by default; cfg can
// force explicit shares, equal shares, or the Afrati–Ullman objective) and
// lowers them to a PhysicalPlan on the cfg.P-cell hypercube.
func BuildPlan(q *query.Query, db *data.Database, cfg Config) *Plan {
	if cfg.P < 1 {
		panic("hypercube: P must be >= 1")
	}
	pl := &Plan{skipJoin: cfg.SkipJoin}
	bits := atomBits(q, db)
	switch {
	case cfg.Shares != nil:
		pl.Shares = append([]int(nil), cfg.Shares...)
	case cfg.EqualShares:
		pl.Shares = EqualShares(q.NumVars(), cfg.P)
	case cfg.Exponents != nil:
		pl.Exponents = append([]float64(nil), cfg.Exponents...)
		pl.Shares = RoundShares(pl.Exponents, cfg.P, cfg.Strategy)
	case cfg.UseAfratiUllman:
		pl.Exponents = AfratiUllmanExponents(q, bits, cfg.P)
		pl.Shares = RoundShares(pl.Exponents, cfg.P, cfg.Strategy)
	default:
		e, lambda := OptimalExponents(q, bits, cfg.P)
		pl.Exponents = e
		pl.Lambda = lambda
		pl.PredictedBits = math.Pow(float64(cfg.P), lambda)
		pl.Shares = RoundShares(e, cfg.P, cfg.Strategy)
	}
	if got := product(pl.Shares); got > cfg.P {
		panic(fmt.Sprintf("hypercube: shares %v use %d > p = %d servers", pl.Shares, got, cfg.P))
	}

	local := func(s *mpc.Server) []data.Tuple {
		return join.Join(q, s.Received)
	}
	if cfg.UseWCOJ {
		local = func(s *mpc.Server) []data.Tuple {
			return wcoj.Join(q, s.Received)
		}
	}
	pl.Phys = &exec.PhysicalPlan{
		Strategy: "hypercube",
		Virtual:  cfg.P,
		Physical: cfg.P,
		Router:   NewRouter(q, pl.Shares, hashing.NewFamily(cfg.Seed)),
		Local:    local,
		// The share product is validated above, so HC routing cannot emit
		// out-of-range destinations; exec.Run treats any error as a bug.
		PredictedBits: pl.PredictedBits,
	}
	return pl
}

// Execute runs the plan on the unified executor and assembles the
// HyperCube-specific result. Result slices are copies: plans are reused
// across executions, so callers must not be able to mutate them.
func (pl *Plan) Execute(db *data.Database) Result {
	er := exec.Run(pl.Phys, db, exec.Config{SkipCompute: pl.skipJoin})
	return Result{
		Shares:        append([]int(nil), pl.Shares...),
		Exponents:     append([]float64(nil), pl.Exponents...),
		Lambda:        pl.Lambda,
		PredictedBits: pl.PredictedBits,
		Output:        er.Output,
		Loads:         er.Loads,
	}
}

// Run executes the one-round HC algorithm for q over db on cfg.P simulated
// servers and returns the answers plus the realized loads.
func Run(q *query.Query, db *data.Database, cfg Config) Result {
	return BuildPlan(q, db, cfg).Execute(db)
}

// atomBits returns M_j in bits for each atom of q, looked up in db.
func atomBits(q *query.Query, db *data.Database) []float64 {
	bits := make([]float64, q.NumAtoms())
	for j, a := range q.Atoms {
		r := db.Get(a.Name)
		if r == nil {
			panic("hypercube: database missing relation " + a.Name)
		}
		b := r.Bits()
		if b <= 0 {
			b = 1 // empty relations: keep logs finite; the join is empty anyway
		}
		bits[j] = float64(b)
	}
	return bits
}
