package core

import (
	"context"
	"errors"
	"testing"

	"repro/internal/data"
	"repro/internal/mpc"
)

// standingFaultCase opens a standing query under the given fault schedule
// and retry policy, forced to the single-round HyperCube plan so the seed
// costs exactly one communication round (the schedule's round 1).
func standingFaultCase(t *testing.T, f *mpc.Faults, r Retry) (*StandingQuery, *Engine, *dbOracle) {
	t.Helper()
	e, err := New(Config{P: 8, Seed: 3, Faults: f, Retry: r})
	if err != nil {
		t.Fatal(err)
	}
	q, o := faultCase()
	hc := HyperCube
	h, err := e.Standing(context.Background(), q, o.db, ExecOptions{Strategy: &hc})
	if err != nil {
		t.Fatalf("clean seed failed: %v", err)
	}
	return h, e, o
}

func assertStandingResult(t *testing.T, h *StandingQuery, o *dbOracle) {
	t.Helper()
	got := make(map[data.Key]bool)
	for _, tu := range h.Result() {
		got[data.KeyOf(tu)] = true
	}
	if len(got) != len(o.want) {
		t.Fatalf("standing result = %d answers, oracle %d", len(got), len(o.want))
	}
	for _, tu := range o.want {
		if !got[data.KeyOf(tu)] {
			t.Fatalf("standing result missing %v", tu)
		}
	}
}

// TestStandingReseedRetriesTornSeedOnce: a reseed whose seed execution loses
// round 2 to a torn round (with the per-execution budget disabled) gets one
// whole-seed retry with a backoff; the retry's round 3 is clean, so Advance
// succeeds and the handle is never left half-advanced.
func TestStandingReseedRetriesTornSeedOnce(t *testing.T) {
	mk := func(seed uint64) *mpc.Faults { return &mpc.Faults{Seed: seed, TornRound: 0.5} }
	// Round 1: clean first seed. Round 2: the reseed tears. Round 3: the
	// reseed retry survives.
	seed := findSeed(t, mk, func(f *mpc.Faults) bool {
		return !f.WouldTearRoundAttempt(1, 1) &&
			f.WouldTearRoundAttempt(2, 1) && !f.WouldTearRoundAttempt(3, 1)
	})
	var ns noSleep
	h, e, o := standingFaultCase(t, mk(seed), Retry{MaxAttempts: 1, Sleep: ns.sleep})
	defer h.Close()

	// Invalidate the plan so the next Advance must reseed.
	e.ClearPlanCache()
	if _, err := h.Advance(context.Background()); err != nil {
		t.Fatalf("reseed with retry failed: %v", err)
	}
	st := h.Stats()
	if st.Reseeds != 1 {
		t.Fatalf("Reseeds = %d, want 1", st.Reseeds)
	}
	if st.Recovery.Attempts != 1 || st.Recovery.RoundsReplayed != 0 {
		t.Fatalf("Recovery = %+v, want exactly the one whole-seed retry", st.Recovery)
	}
	if ns.waits != 1 {
		t.Fatalf("backoff hook saw %d waits, want 1", ns.waits)
	}
	assertStandingResult(t, h, o)
}

// TestStandingReseedSurfacesPersistentFault: when the reseed and its one
// retry both tear, the typed error surfaces, the handle stays stale but
// consistent, and the next Advance recovers on a clean round.
func TestStandingReseedSurfacesPersistentFault(t *testing.T) {
	mk := func(seed uint64) *mpc.Faults { return &mpc.Faults{Seed: seed, TornRound: 0.5} }
	seed := findSeed(t, mk, func(f *mpc.Faults) bool {
		return !f.WouldTearRoundAttempt(1, 1) &&
			f.WouldTearRoundAttempt(2, 1) && f.WouldTearRoundAttempt(3, 1) &&
			!f.WouldTearRoundAttempt(4, 1)
	})
	var ns noSleep
	h, e, o := standingFaultCase(t, mk(seed), Retry{MaxAttempts: 1, Sleep: ns.sleep})
	defer h.Close()

	e.ClearPlanCache()
	if _, err := h.Advance(context.Background()); !errors.Is(err, mpc.ErrTornRound) {
		t.Fatalf("err = %v, want ErrTornRound after the retry also tore", err)
	}
	// The failed reseed left the handle stale; the next Advance reseeds
	// again (round 4, clean) and service resumes.
	if _, err := h.Advance(context.Background()); err != nil {
		t.Fatalf("recovering advance failed: %v", err)
	}
	st := h.Stats()
	if st.Reseeds != 1 {
		t.Fatalf("Reseeds = %d, want 1 (only the successful reseed counts)", st.Reseeds)
	}
	if st.Recovery.Attempts != 1 {
		t.Fatalf("Recovery = %+v, want the one failed whole-seed retry recorded", st.Recovery)
	}
	assertStandingResult(t, h, o)
}
