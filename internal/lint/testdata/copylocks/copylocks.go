// Package p distills by-value travel of lock-bearing types, including
// transitive composition (the engine's padded mailbox pattern).
package p

import "sync"

// Guarded carries a mutex by value through composition.
type Guarded struct {
	mu sync.Mutex
	n  int
}

// padded mirrors the mpc mailbox: the lock is two levels down.
type padded struct {
	g Guarded
	_ [64]byte
}

// ByValue copies its lock-bearing parameter.
func ByValue(g Guarded) int { // want `parameter copies lock value`
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// ByPointer is the correct shape.
func ByPointer(g *Guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// Copy duplicates lock state by assignment.
func Copy(g *Guarded) {
	snapshot := *g // want `assignment copies lock value`
	_ = snapshot.n
}

// Range copies each element's transitively lock-bearing value.
func Range(ps []padded) int {
	total := 0
	for _, p := range ps { // want `range value copies lock value`
		total += p.g.n
	}
	return total
}

// RangeIndex is the correct shape: index, don't copy.
func RangeIndex(ps []padded) int {
	total := 0
	for i := range ps {
		total += ps[i].g.n
	}
	return total
}
