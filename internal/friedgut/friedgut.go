// Package friedgut implements the family of inequalities of Friedgut
// ("Hypergraphs, entropy, and inequalities", Amer. Math. Monthly 2004)
// specialized to query hypergraphs, as used in §2.3 of
// Beame–Koutris–Suciu: for a query q with fractional edge cover u and
// non-negative weights w_j over the tuples of each atom,
//
//	Σ_{a ∈ [n]^k} Π_j w_j(a_j)  ≤  Π_j ( Σ_{a_j} w_j(a_j)^{1/u_j} )^{u_j}
//
// The inequality powers both the AGM output-size bound (set w_j to 0/1
// relation indicators) and the lower-bound proofs of Theorems 3.5/4.7
// (set w_j to tuple-knowledge probabilities). This package evaluates both
// sides exactly enough to test the machinery and exposes the two classic
// corollaries.
package friedgut

import (
	"math"

	"repro/internal/data"
	"repro/internal/join"
	"repro/internal/packing"
	"repro/internal/query"
	"repro/internal/rational"
)

// Weights assigns a non-negative weight to every tuple of every atom.
// Tuples absent from the map have weight 0.
type Weights map[string]map[string]float64

// NewWeights returns an empty weight assignment.
func NewWeights() Weights { return make(Weights) }

// Set assigns weight w to tuple t of atom name.
func (ws Weights) Set(atom string, t data.Tuple, w float64) {
	if w < 0 {
		panic("friedgut: negative weight")
	}
	m, ok := ws[atom]
	if !ok {
		m = make(map[string]float64)
		ws[atom] = m
	}
	m[t.Key()] = w
}

// Get returns the weight of tuple t of the atom (0 if absent).
func (ws Weights) Get(atom string, t data.Tuple) float64 {
	return ws[atom][t.Key()]
}

// FromRelations builds 0/1 indicator weights from relation instances —
// the specialization that yields the AGM bound.
func FromRelations(q *query.Query, rels map[string]*data.Relation) Weights {
	ws := NewWeights()
	for _, a := range q.Atoms {
		r := rels[a.Name]
		if r == nil {
			continue
		}
		r.Each(func(_ int, t data.Tuple) bool {
			ws.Set(a.Name, t, 1)
			return true
		})
	}
	return ws
}

// LHS evaluates Σ_{a} Π_j w_j(a_j), summing only over assignments with all
// factors non-zero (zero-weight combinations contribute nothing). The
// enumeration joins the weight supports, so it is output-sensitive.
func LHS(q *query.Query, ws Weights) float64 {
	// Materialize supports as relations and join them; then accumulate the
	// weight products over the join results.
	rels := make(map[string]*data.Relation)
	for _, a := range q.Atoms {
		sup := data.NewRelation(a.Name, a.Arity(), weightDomain)
		for key := range ws[a.Name] {
			t := parseKey(key, a.Arity())
			sup.Add(t...)
		}
		rels[a.Name] = sup
	}
	total := 0.0
	for _, ans := range join.Join(q, rels) {
		prod := 1.0
		for _, a := range q.Atoms {
			proj := make(data.Tuple, a.Arity())
			for i, v := range a.Vars {
				proj[i] = ans[v]
			}
			prod *= ws.Get(a.Name, proj)
		}
		total += prod
	}
	return total
}

// RHS evaluates Π_j (Σ_{a_j} w_j(a_j)^{1/u_j})^{u_j} for the given
// fractional edge cover u. Atoms with u_j = 0 require all their weights
// ≤ 1 in the limit form; this implementation follows the paper's
// convention by treating u_j = 0 atoms via the limit (max weight)^0·…,
// i.e. they contribute the indicator that some weight is positive.
func RHS(q *query.Query, ws Weights, u []float64) float64 {
	if len(u) != q.NumAtoms() {
		panic("friedgut: cover length mismatch")
	}
	out := 1.0
	for j, a := range q.Atoms {
		if u[j] == 0 {
			// lim_{u→0} (Σ w^{1/u})^{u} = max_w for weights ≤ ... for the
			// inequality's use-cases (indicators, probabilities) this is
			// the max weight.
			maxW := 0.0
			for _, w := range ws[a.Name] {
				if w > maxW {
					maxW = w
				}
			}
			out *= maxW
			continue
		}
		sum := 0.0
		for _, w := range ws[a.Name] {
			sum += math.Pow(w, 1/u[j])
		}
		out *= math.Pow(sum, u[j])
	}
	return out
}

// Holds reports whether the inequality LHS ≤ RHS holds for cover u, with a
// small relative tolerance for float accumulation.
func Holds(q *query.Query, ws Weights, u []float64) bool {
	l, r := LHS(q, ws), RHS(q, ws, u)
	return l <= r*(1+1e-9)+1e-12
}

// AGMFromIndicators specializes the inequality to 0/1 indicators: it
// returns (|q(I)|, Π_j m_j^{u_j}) for the minimum fractional edge cover,
// the Atserias–Grohe–Marx bound of §2.3.
func AGMFromIndicators(q *query.Query, rels map[string]*data.Relation) (outputSize, bound float64) {
	ws := FromRelations(q, rels)
	cover, _ := packing.MinCover(q)
	u := cover.Floats()
	return LHS(q, ws), RHS(q, ws, u)
}

// CoverFloats converts an exact cover to floats.
func CoverFloats(v rational.Vector) []float64 { return v.Floats() }

// weightDomain is the value domain used for support relations; weights key
// on raw tuple values, so any domain large enough for the keys works.
const weightDomain = int64(1) << 62

// parseKey converts a tuple key back into values.
func parseKey(key string, arity int) data.Tuple {
	t := make(data.Tuple, 0, arity)
	v := int64(0)
	neg := false
	started := false
	flush := func() {
		if neg {
			v = -v
		}
		t = append(t, v)
		v, neg, started = 0, false, false
	}
	for i := 0; i < len(key); i++ {
		switch c := key[i]; {
		case c == ',':
			flush()
		case c == '-':
			neg = true
		default:
			v = v*10 + int64(c-'0')
			started = true
		}
	}
	if started || len(key) > 0 {
		flush()
	}
	return t
}
