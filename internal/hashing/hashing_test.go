package hashing

import (
	"math"
	"testing"

	"repro/internal/data"
)

func TestFamilyDeterministic(t *testing.T) {
	f1 := NewFamily(7)
	f2 := NewFamily(7)
	for dim := 0; dim < 3; dim++ {
		for v := int64(0); v < 100; v++ {
			if f1.Hash(dim, v, 17) != f2.Hash(dim, v, 17) {
				t.Fatal("same seed must give same hashes")
			}
		}
	}
}

func TestFamilySeedsDiffer(t *testing.T) {
	f1, f2 := NewFamily(1), NewFamily(2)
	same := 0
	for v := int64(0); v < 1000; v++ {
		if f1.Hash(0, v, 64) == f2.Hash(0, v, 64) {
			same++
		}
	}
	// Expect ~1000/64 ≈ 16 collisions; 100 is a generous cap.
	if same > 100 {
		t.Errorf("seeds look correlated: %d/1000 agreements", same)
	}
}

func TestFamilyDimsIndependent(t *testing.T) {
	f := NewFamily(3)
	same := 0
	for v := int64(0); v < 1000; v++ {
		if f.Hash(0, v, 64) == f.Hash(1, v, 64) {
			same++
		}
	}
	if same > 100 {
		t.Errorf("dims look correlated: %d/1000 agreements", same)
	}
}

func TestHashRange(t *testing.T) {
	f := NewFamily(11)
	for v := int64(0); v < 500; v++ {
		h := f.Hash(2, v, 7)
		if h < 0 || h >= 7 {
			t.Fatalf("Hash out of range: %d", h)
		}
	}
	if f.Hash(0, 42, 1) != 0 {
		t.Error("single bucket must map to 0")
	}
}

func TestHashPanicsOnZeroBuckets(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewFamily(0).Hash(0, 1, 0)
}

func TestHashUniformity(t *testing.T) {
	// Chi-square-ish sanity: 64k values into 16 buckets should be within
	// 5% of uniform per bucket.
	f := NewFamily(99)
	const n, b = 65536, 16
	counts := make([]int, b)
	for v := int64(0); v < n; v++ {
		counts[f.Hash(0, v, b)]++
	}
	want := float64(n) / b
	for i, c := range counts {
		if math.Abs(float64(c)-want)/want > 0.05 {
			t.Errorf("bucket %d load %d deviates >5%% from %v", i, c, want)
		}
	}
}

func TestGridBucketLinearization(t *testing.T) {
	g := NewGrid([]int{3, 4}, NewFamily(5))
	if g.Size() != 12 {
		t.Fatalf("Size = %d", g.Size())
	}
	seen := make(map[int]bool)
	for a := 0; a < 3; a++ {
		for b := 0; b < 4; b++ {
			idx := g.Linear([]int{a, b})
			if idx < 0 || idx >= 12 || seen[idx] {
				t.Fatalf("Linear(%d,%d) = %d invalid or duplicate", a, b, idx)
			}
			seen[idx] = true
		}
	}
}

func TestGridCoordsMatchBucket(t *testing.T) {
	g := NewGrid([]int{4, 5, 6}, NewFamily(8))
	tu := data.Tuple{10, 20, 30}
	if g.Linear(g.Coords(tu)) != g.Bucket(tu) {
		t.Error("Coords/Linear disagree with Bucket")
	}
}

func TestGridPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewGrid([]int{0}, NewFamily(1)) },
		func() { NewGrid([]int{2}, NewFamily(1)).Coords(data.Tuple{1, 2}) },
		func() { NewGrid([]int{2}, NewFamily(1)).Linear([]int{5}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// Lemma 3.1 item 2: if every attribute value occurs at most once (a
// matching), the max load is O(m/p).
func TestMeasureLoadsMatching(t *testing.T) {
	const m = 1 << 16
	r := data.NewRelation("R", 2, m*4)
	for i := int64(0); i < m; i++ {
		r.Add(i, i+m) // all values distinct per column
	}
	g := NewGrid([]int{16, 16}, NewFamily(123))
	rep := MeasureLoads(r, g)
	mean := float64(m) / 256
	if float64(rep.Max) > 3*mean {
		t.Errorf("matching max load %d exceeds 3× mean %v", rep.Max, mean)
	}
	if rep.Tuples != m || rep.Buckets != 256 {
		t.Errorf("report bookkeeping wrong: %+v", rep)
	}
}

// Lemma 3.1 item 4 / Example B.2: all tuples sharing the first attribute
// value forces max load ≥ m / p_2 (only the other dimension spreads).
func TestMeasureLoadsAdversarial(t *testing.T) {
	const m = 4096
	r := data.NewRelation("R", 2, m*2)
	for i := int64(0); i < m; i++ {
		r.Add(0, i) // first column constant
	}
	g := NewGrid([]int{8, 4}, NewFamily(7))
	rep := MeasureLoads(r, g)
	if rep.Max < m/4 {
		t.Errorf("adversarial max load %d should be >= m/p2 = %d", rep.Max, m/4)
	}
	// And bounded by the lemma's m/min(p_i) guarantee times a constant.
	if float64(rep.Max) > 3.1*float64(m)/4 {
		t.Errorf("adversarial max load %d exceeds (3r+1)·m/min p_i", rep.Max)
	}
}

// Lemma 3.1 item 1: expected load per bucket is m/p; totals must add up.
func TestMeasureLoadsConservation(t *testing.T) {
	const m = 1000
	r := data.NewRelation("R", 1, 100000)
	for i := int64(0); i < m; i++ {
		r.Add(i * 97 % 100000)
	}
	g := NewGrid([]int{10}, NewFamily(42))
	rep := MeasureLoads(r, g)
	if rep.Mean != 100 {
		t.Errorf("Mean = %v", rep.Mean)
	}
	if rep.Max < 100 {
		t.Errorf("max %d below mean", rep.Max)
	}
	if rep.Min > 100 {
		t.Errorf("min %d above mean", rep.Min)
	}
	if len(rep.PerDim) != 1 || rep.PerDim[0] < rep.Max {
		t.Errorf("PerDim = %v", rep.PerDim)
	}
}

func TestUint64Deterministic(t *testing.T) {
	f := NewFamily(1)
	if f.Uint64(0, 5) != f.Uint64(0, 5) {
		t.Error("Uint64 not deterministic")
	}
	if f.Uint64(0, 5) == f.Uint64(1, 5) {
		t.Error("Uint64 should differ across dims (w.h.p.)")
	}
}
