package core

import (
	"fmt"
	"testing"

	"repro/internal/data"
	"repro/internal/join"
	"repro/internal/query"
	"repro/internal/workload"
)

// wantHM asserts the hit and miss counters.
func wantHM(t *testing.T, e *Engine, label string, hits, misses uint64) {
	t.Helper()
	cs := e.CacheStats()
	if cs.Hits != hits || cs.Misses != misses {
		t.Errorf("%s: hits=%d misses=%d, want %d/%d", label, cs.Hits, cs.Misses, hits, misses)
	}
}

// TestPlanCacheHitSkipsReplanning is the cache-hit contract: repeated
// Execute on unchanged (query, db, p) reuses the cached physical plan —
// the second call must register a hit, not a second miss — and returns
// identical answers.
func TestPlanCacheHitSkipsReplanning(t *testing.T) {
	q := query.Join2()
	db := db2(
		workload.Zipf("S1", 600, 100000, 1, 1.8, 100, 4),
		workload.Zipf("S2", 600, 100000, 1, 1.8, 100, 5),
	)
	e := NewEngine(16, 9)
	first := e.Execute(q, db)
	wantHM(t, e, "after first Execute", 0, 1)
	second := e.Execute(q, db)
	wantHM(t, e, "after second Execute", 1, 1)
	if !join.EqualTupleSets(first.Output, second.Output) {
		t.Error("cached plan produced different answers")
	}
	if first.Plan.Strategy != second.Plan.Strategy {
		t.Error("cached plan changed strategy")
	}
}

// TestPlanCacheMissOnChange: mutating the database content, changing the
// query, or forcing a different strategy must all bypass the cached entry.
func TestPlanCacheMissOnChange(t *testing.T) {
	q := query.Join2()
	db := db2(
		workload.Matching("S1", 2, 300, 100000, 1),
		workload.Matching("S2", 2, 300, 100000, 2),
	)
	e := NewEngine(8, 1)
	e.Execute(q, db)

	// Same shape, different content: the fingerprint must differ.
	db.MustGet("S1").Add(42, 99)
	e.Execute(q, db)
	wantHM(t, e, "after db mutation", 0, 2)

	// Different query text (renamed head variables keep the same semantics
	// but a different canonical form — conservative misses are fine).
	e.Execute(query.MustParse("q(a,b,c) = S1(a,c), S2(b,c)"), db)
	wantHM(t, e, "after query change", 0, 3)

	// A forced strategy is part of the key.
	force := BinCombination
	e.ForceStrategy = &force
	e.Execute(q, db)
	wantHM(t, e, "after forcing strategy", 0, 4)
	e.ForceStrategy = nil

	// So is the hash seed: a reseeded engine must not reuse old routing.
	e.Seed = 99
	e.Execute(q, db)
	wantHM(t, e, "after reseeding", 0, 5)
	e.Seed = 1

	// And the original (query, db) entries are still live.
	e.Execute(q, db)
	if cs := e.CacheStats(); cs.Hits != 1 {
		t.Errorf("original entry evicted: hits=%d, want 1", cs.Hits)
	}
}

func TestPlanCacheDisable(t *testing.T) {
	q := query.Join2()
	db := db2(
		workload.Matching("S1", 2, 200, 100000, 1),
		workload.Matching("S2", 2, 200, 100000, 2),
	)
	e := NewEngine(8, 1)
	e.DisablePlanCache = true
	e.Execute(q, db)
	e.Execute(q, db)
	wantHM(t, e, "disabled cache still counting", 0, 0)
}

func TestClearPlanCache(t *testing.T) {
	q := query.Join2()
	db := db2(
		workload.Matching("S1", 2, 200, 100000, 1),
		workload.Matching("S2", 2, 200, 100000, 2),
	)
	e := NewEngine(8, 1)
	e.Execute(q, db)
	e.ClearPlanCache()
	cs := e.CacheStats()
	if cs.Hits != 0 || cs.Misses != 0 || cs.Evictions != 0 || cs.Size != 0 {
		t.Errorf("state survives clear: %+v", cs)
	}
	e.Execute(q, db)
	wantHM(t, e, "cache not rebuilt after clear", 0, 1)
}

// TestPlanCacheLRUEviction: with capacity c, inserting c+1 distinct keys
// evicts exactly the least-recently-used entry — a re-Execute of the
// evicted key misses while a recently touched key still hits.
func TestPlanCacheLRUEviction(t *testing.T) {
	q := query.Join2()
	mkdb := func(seed int64) *dbHandle {
		return &dbHandle{db2(
			workload.Matching("S1", 2, 100, 100000, seed),
			workload.Matching("S2", 2, 100, 100000, seed+50),
		)}
	}
	e := NewEngine(8, 1)
	e.PlanCacheCapacity = 2
	a, b, c := mkdb(1), mkdb(2), mkdb(3)

	e.Execute(q, a.db) // cache: [a]
	e.Execute(q, b.db) // cache: [b a]
	cs := e.CacheStats()
	if cs.Size != 2 || cs.Evictions != 0 {
		t.Fatalf("before eviction: %+v", cs)
	}
	e.Execute(q, a.db) // touch a → cache: [a b]
	e.Execute(q, c.db) // evicts b → cache: [c a]
	cs = e.CacheStats()
	if cs.Evictions != 1 || cs.Size != 2 {
		t.Fatalf("after third insert: %+v", cs)
	}
	e.Execute(q, a.db) // must still hit
	if got := e.CacheStats(); got.Hits != 2 {
		t.Errorf("touched entry was evicted: %+v", got)
	}
	e.Execute(q, b.db) // must miss (was the LRU victim) and evict again
	cs = e.CacheStats()
	if cs.Misses != 4 || cs.Evictions != 2 {
		t.Errorf("victim not evicted: %+v", cs)
	}
	if cs.Capacity != 2 {
		t.Errorf("Capacity = %d, want 2", cs.Capacity)
	}
}

// TestCacheStatsDoesNotLatchCapacity: reading CacheStats before the first
// Execute must not freeze the pre-Session PlanCacheCapacity field — the
// documented window is "set before the first Execute".
func TestCacheStatsDoesNotLatchCapacity(t *testing.T) {
	e := NewEngine(8, 1)
	if cs := e.CacheStats(); cs.Capacity != DefaultPlanCacheCapacity {
		t.Fatalf("fresh engine Capacity = %d", cs.Capacity)
	}
	e.PlanCacheCapacity = 2
	if cs := e.CacheStats(); cs.Capacity != 2 {
		t.Fatalf("Capacity = %d after setting the field, want 2 (latched too early)", cs.Capacity)
	}
	q := query.Join2()
	mkdb := func(seed int64) *data.Database {
		return db2(
			workload.Matching("S1", 2, 50, 100000, seed),
			workload.Matching("S2", 2, 50, 100000, seed+50),
		)
	}
	for seed := int64(1); seed <= 3; seed++ {
		e.Execute(q, mkdb(seed))
	}
	if cs := e.CacheStats(); cs.Evictions != 1 || cs.Size != 2 {
		t.Fatalf("capacity 2 not honored after early CacheStats: %+v", cs)
	}
}

// TestPlanCacheUnboundedNegativeCapacity: a negative capacity disables
// eviction entirely.
func TestPlanCacheUnboundedNegativeCapacity(t *testing.T) {
	q := query.Join2()
	e := NewEngine(8, 1)
	e.PlanCacheCapacity = -1
	for seed := int64(0); seed < 5; seed++ {
		db := db2(
			workload.Matching("S1", 2, 50, 100000, seed),
			workload.Matching("S2", 2, 50, 100000, seed+100),
		)
		e.Execute(q, db)
	}
	cs := e.CacheStats()
	if cs.Evictions != 0 || cs.Size != 5 {
		t.Errorf("unbounded cache evicted: %+v", cs)
	}
}

// dbHandle names a database in the eviction test so the LRU walkthrough
// reads as [a b c].
type dbHandle struct{ db *data.Database }

// TestExecuteConcurrentSharedEngine exercises the cache under concurrent
// Execute calls on one engine (the production serving pattern): same
// answers from every goroutine and no data races (run under -race).
func TestExecuteConcurrentSharedEngine(t *testing.T) {
	q := query.Join2()
	db := db2(
		workload.Zipf("S1", 400, 100000, 1, 1.8, 80, 4),
		workload.Zipf("S2", 400, 100000, 1, 1.8, 80, 5),
	)
	e := NewEngine(16, 9)
	want := join.Join(q, join.FromDatabase(db))
	const workers = 4
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			res := e.Execute(q, db)
			if !join.EqualTupleSets(res.Output, want) {
				errs <- fmt.Errorf("concurrent Execute: %d tuples, want %d", len(res.Output), len(want))
				return
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	if cs := e.CacheStats(); cs.Hits+cs.Misses != workers {
		t.Errorf("hits+misses = %d, want %d", cs.Hits+cs.Misses, workers)
	}
}
