package hypercube

import (
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/exec"
	"repro/internal/hashing"
	"repro/internal/join"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/wcoj"
)

// Router routes tuples to hypercube subcubes: a tuple of S_j fixes the
// coordinates of the dimensions of vars(S_j) by hashing and is replicated
// over every combination of the remaining dimensions (§3.1).
//
// The residual subcube of an atom is a fixed set of linear offsets, so it
// is enumerated once at router construction; per tuple, routing is one
// hash per bound dimension plus one append per destination — no odometer
// and no per-tuple scratch. Destinations caches the last relation binding,
// so a Router is not safe for concurrent use; it implements
// mpc.PerSenderRouter and mpc.Round gives each sender its own instance.
type Router struct {
	q      *query.Query
	grid   *hashing.Grid
	shares []int
	stride []int // linearization strides, stride[k-1] = 1
	atoms  map[string]*routerAtom
	// last-bound relation, so Destinations/DestinationsAt resolve the atom
	// table and column slices with an equality check instead of a map
	// lookup (senders route one relation chunk at a time).
	lastRel  *data.Relation
	lastName string
	lastAtom *routerAtom
}

// routerAtom is the per-atom routing table: the hash dimensions of the
// atom's own variables (with their per-dimension hash seeds and linear
// strides precomputed) and the subcube offsets of the free dimensions, in
// lexicographic coordinate order.
type routerAtom struct {
	dims    []atomDim // one per attribute position
	offsets []int
}

// atomDim is one hashed dimension of an atom: attribute pos hashes with
// seed into share buckets contributing coord·stride to the linear index.
type atomDim struct {
	seed   uint64
	share  int
	stride int
}

// NewRouter builds the HC router for the given integer shares (one per
// query variable, product ≤ the cluster size).
func NewRouter(q *query.Query, shares []int, family *hashing.Family) *Router {
	if len(shares) != q.NumVars() {
		panic("hypercube: shares length must equal variable count")
	}
	k := len(shares)
	r := &Router{
		q:      q,
		grid:   hashing.NewGrid(shares, family),
		shares: append([]int(nil), shares...),
		stride: make([]int, k),
		atoms:  make(map[string]*routerAtom),
	}
	size := 1
	for i := k - 1; i >= 0; i-- {
		r.stride[i] = size
		size *= shares[i]
	}
	for _, a := range q.Atoms {
		ra := &routerAtom{dims: make([]atomDim, len(a.Vars))}
		for pos, v := range a.Vars {
			ra.dims[pos] = atomDim{
				seed:   family.DimSeed(v),
				share:  shares[v],
				stride: r.stride[v],
			}
		}
		fixed := make([]bool, k)
		for _, v := range a.Vars {
			fixed[v] = true
		}
		ra.offsets = enumerateFree(r.shares, r.stride, fixed)
		r.atoms[a.Name] = ra
	}
	return r
}

// enumerateFree lists the linear offsets of every combination of the free
// (non-fixed) dimensions in lexicographic coordinate order, last dimension
// fastest — the same order the routing odometer used to produce.
func enumerateFree(shares, stride []int, fixed []bool) []int {
	k := len(shares)
	n := 1
	for d := 0; d < k; d++ {
		if !fixed[d] {
			n *= shares[d]
		}
	}
	offsets := make([]int, 0, n)
	coords := make([]int, k)
	lin := 0
	for {
		offsets = append(offsets, lin)
		d := k - 1
		for ; d >= 0; d-- {
			if fixed[d] {
				continue
			}
			if coords[d]+1 < shares[d] {
				coords[d]++
				lin += stride[d]
				break
			}
			lin -= coords[d] * stride[d]
			coords[d] = 0
		}
		if d < 0 {
			return offsets
		}
	}
}

// Size returns the number of hypercube cells (Π p_i).
func (r *Router) Size() int { return r.grid.Size() }

// ForSender implements mpc.PerSenderRouter: the copy shares the immutable
// grid and offset tables but owns a private relation-binding cache.
func (r *Router) ForSender() mpc.Router {
	c := *r
	c.lastRel, c.lastName, c.lastAtom = nil, "", nil
	return &c
}

// atomFor resolves the routing table of an atom name; nil means the
// relation is not part of the query. The database may carry relations
// outside the query (the engine routes whatever the caller staged), and
// the other strategies' routers skip those, so the HC router must too —
// a panic here would kill a sender goroutine mid-round.
func (r *Router) atomFor(rel string) *routerAtom {
	return r.atoms[rel]
}

// Destinations implements mpc.Router: the subcube of servers receiving t,
// in lexicographic coordinate order, with no allocations beyond growing
// dst. Relations outside the query are not routed.
//
//skewlint:noalloc
func (r *Router) Destinations(rel string, t data.Tuple, dst []int) []int {
	ra := r.lastAtom
	if rel != r.lastName || ra == nil {
		ra = r.atomFor(rel)
		if ra == nil {
			return dst
		}
		r.lastName, r.lastAtom = rel, ra
		r.lastRel = nil
	}
	lin := 0
	for pos := range ra.dims {
		d := &ra.dims[pos]
		lin += hashing.HashSeeded(d.seed, t[pos], d.share) * d.stride
	}
	for _, off := range ra.offsets {
		dst = append(dst, lin+off)
	}
	return dst
}

// DestinationsAt implements mpc.ColumnRouter: identical routing to
// Destinations, hashing the relation's column strides directly.
//
//skewlint:noalloc
func (r *Router) DestinationsAt(rel *data.Relation, row int, dst []int) []int {
	ra := r.lastAtom
	if rel != r.lastRel || ra == nil {
		ra = r.atomFor(rel.Name)
		if ra == nil {
			return dst
		}
		r.lastRel, r.lastName, r.lastAtom = rel, rel.Name, ra
	}
	cols := rel.Columns()
	lin := 0
	for pos := range ra.dims {
		d := &ra.dims[pos]
		lin += hashing.HashSeeded(d.seed, cols[pos][row], d.share) * d.stride
	}
	for _, off := range ra.offsets {
		dst = append(dst, lin+off)
	}
	return dst
}

// Config controls a HyperCube run.
type Config struct {
	P    int    // number of servers
	Seed uint64 // hash-family seed; same seed → identical run

	// Shares overrides share selection entirely when non-nil.
	Shares []int
	// Exponents overrides the LP when non-nil (rounded per Strategy).
	Exponents []float64
	// Strategy selects integer rounding (default RoundGreedy).
	Strategy Rounding
	// UseAfratiUllman selects the baseline total-load optimizer instead of
	// the paper's LP (ablation A2).
	UseAfratiUllman bool
	// EqualShares forces the skew-resilient p^{1/k} configuration
	// (Corollary 3.2 (ii)).
	EqualShares bool
	// SkipJoin measures communication only: servers receive their
	// fragments but do not compute the local join. Loads are identical;
	// Output stays empty. Load-focused experiments use this to avoid
	// materializing quadratic outputs.
	SkipJoin bool
	// UseWCOJ computes the local joins with the generic worst-case
	// optimal algorithm instead of binary hash joins — useful when server
	// fragments are cyclic and dense enough that binary plans blow up
	// locally (the NPRR separation, [9] in the paper).
	UseWCOJ bool
}

// Result reports a HyperCube run.
type Result struct {
	Shares        []int
	Exponents     []float64
	Lambda        float64 // LP optimum: predicted load is p^λ bits
	PredictedBits float64 // p^λ (only for LP-based share selection)
	Output        []data.Tuple
	Loads         mpc.LoadSummary
}

// Plan is the §3.1 planner output: the selected shares with their LP
// analysis, lowered to the unified executor's PhysicalPlan. Plans are
// reusable across executions (Engine's plan cache holds them).
type Plan struct {
	Shares        []int
	Exponents     []float64
	Lambda        float64
	PredictedBits float64
	Phys          *exec.PhysicalPlan
	skipJoin      bool
}

// BuildPlan selects shares for q over db (LP-optimal by default; cfg can
// force explicit shares, equal shares, or the Afrati–Ullman objective) and
// lowers them to a PhysicalPlan on the cfg.P-cell hypercube.
func BuildPlan(q *query.Query, db *data.Database, cfg Config) *Plan {
	if cfg.P < 1 {
		panic("hypercube: P must be >= 1")
	}
	pl := &Plan{skipJoin: cfg.SkipJoin}
	bits := atomBits(q, db)
	switch {
	case cfg.Shares != nil:
		pl.Shares = append([]int(nil), cfg.Shares...)
	case cfg.EqualShares:
		pl.Shares = EqualShares(q.NumVars(), cfg.P)
	case cfg.Exponents != nil:
		pl.Exponents = append([]float64(nil), cfg.Exponents...)
		pl.Shares = RoundShares(pl.Exponents, cfg.P, cfg.Strategy)
	case cfg.UseAfratiUllman:
		pl.Exponents = AfratiUllmanExponents(q, bits, cfg.P)
		pl.Shares = RoundShares(pl.Exponents, cfg.P, cfg.Strategy)
	default:
		e, lambda := OptimalExponents(q, bits, cfg.P)
		pl.Exponents = e
		pl.Lambda = lambda
		pl.PredictedBits = math.Pow(float64(cfg.P), lambda)
		pl.Shares = RoundShares(e, cfg.P, cfg.Strategy)
	}
	if got := product(pl.Shares); got > cfg.P {
		panic(fmt.Sprintf("hypercube: shares %v use %d > p = %d servers", pl.Shares, got, cfg.P))
	}

	local := func(s *mpc.Server) []data.Tuple {
		return join.Join(q, s.Received)
	}
	if cfg.UseWCOJ {
		local = func(s *mpc.Server) []data.Tuple {
			return wcoj.Join(q, s.Received)
		}
	}
	pl.Phys = &exec.PhysicalPlan{
		Strategy:  "hypercube",
		Virtual:   cfg.P,
		Physical:  cfg.P,
		Router:    NewRouter(q, pl.Shares, hashing.NewFamily(cfg.Seed)),
		Relations: q.AtomNames(),
		Local:     local,
		// The share product is validated above, so HC routing cannot emit
		// out-of-range destinations; exec.Run treats any error as a bug.
		PredictedBits: pl.PredictedBits,
	}
	return pl
}

// Execute runs the plan on the unified executor and assembles the
// HyperCube-specific result. Result slices are copies: plans are reused
// across executions, so callers must not be able to mutate them.
func (pl *Plan) Execute(db *data.Database) Result {
	res, _ := pl.ExecuteWith(db, exec.Config{}) // no ctx in the config: never errors
	return res
}

// ExecuteWith is Execute with caller-supplied executor configuration —
// the engine passes a pooled exec.Scratch so repeated executions of a
// cached plan stop allocating load-accounting slices. The plan's own
// SkipJoin setting still governs whether the local join runs. The only
// error is ec.Ctx's cancellation.
func (pl *Plan) ExecuteWith(db *data.Database, ec exec.Config) (Result, error) {
	ec.SkipCompute = ec.SkipCompute || pl.skipJoin
	er, err := exec.Run(pl.Phys, db, ec)
	if err != nil {
		return Result{}, err
	}
	return Result{
		Shares:        append([]int(nil), pl.Shares...),
		Exponents:     append([]float64(nil), pl.Exponents...),
		Lambda:        pl.Lambda,
		PredictedBits: pl.PredictedBits,
		Output:        er.Output,
		Loads:         er.Loads,
	}, nil
}

// Run executes the one-round HC algorithm for q over db on cfg.P simulated
// servers and returns the answers plus the realized loads.
func Run(q *query.Query, db *data.Database, cfg Config) Result {
	return BuildPlan(q, db, cfg).Execute(db)
}

// atomBits returns M_j in bits for each atom of q, looked up in db.
func atomBits(q *query.Query, db *data.Database) []float64 {
	bits := make([]float64, q.NumAtoms())
	for j, a := range q.Atoms {
		r := db.Get(a.Name)
		if r == nil {
			panic("hypercube: database missing relation " + a.Name)
		}
		b := r.Bits()
		if b <= 0 {
			b = 1 // empty relations: keep logs finite; the join is empty anyway
		}
		bits[j] = float64(b)
	}
	return bits
}
