package repro_test

import (
	"context"
	"errors"
	"fmt"

	"repro"
)

// The paper's running example: evaluate a two-relation join in one MPC
// round, letting the engine pick the algorithm from statistics.
func Example_quickstart() {
	q := repro.MustParseQuery("q(x,y,z) = S1(x,z), S2(y,z)")
	db := repro.NewDatabase()
	db.Put(repro.MatchingRelation("S1", 2, 1000, 1<<20, 1))
	db.Put(repro.MatchingRelation("S2", 2, 1000, 1<<20, 2))

	res := repro.NewEngine(16, 42).Execute(q, db)
	fmt.Println("strategy:", res.Plan.Strategy)
	fmt.Println("shares:", res.Plan.Shares)
	// Output:
	// strategy: hypercube
	// shares: [1 1 16]
}

// The serving API: Open validates configuration, Exec takes a context and
// per-call options, and the plan cache keys on database identity — so
// Database.Apply deltas keep cached plans hot.
func ExampleOpen() {
	db := repro.NewDatabase()
	db.Put(repro.MatchingRelation("S1", 2, 1000, 1<<20, 1))
	db.Put(repro.MatchingRelation("S2", 2, 1000, 1<<20, 2))

	s, err := repro.Open(repro.Config{P: 16, Seed: 42, ReplanDriftFactor: 2})
	if err != nil {
		panic(err)
	}
	q := repro.MustParseQuery("q(x,y,z) = S1(x,z), S2(y,z)")
	res, err := s.Exec(context.Background(), q, db)
	if err != nil {
		panic(err)
	}
	fmt.Println("strategy:", res.Plan.Strategy)

	// Mutate the database under the live plan cache: the next Exec still
	// hits (content is not part of the serving cache key), and adaptive
	// re-planning only kicks in when realized load drifts past the
	// configured factor.
	if err := db.Apply(repro.NewDelta().Insert("S1", 7, 7).Insert("S2", 8, 7)); err != nil {
		panic(err)
	}
	res, err = s.Exec(context.Background(), q, db)
	if err != nil {
		panic(err)
	}
	st := s.CacheStats()
	fmt.Println("hits:", st.Hits, "misses:", st.Misses, "replanned:", res.Replanned)
	// Output:
	// strategy: hypercube
	// hits: 1 misses: 1 replanned: false
}

// Per-call options override the session configuration without mutating
// shared state: force a strategy, change p, or bypass the plan cache.
func ExampleSession_Exec_options() {
	db := repro.NewDatabase()
	db.Put(repro.MatchingRelation("S1", 2, 500, 1<<20, 1))
	db.Put(repro.MatchingRelation("S2", 2, 500, 1<<20, 2))
	s, err := repro.Open(repro.Config{P: 16, Seed: 7})
	if err != nil {
		panic(err)
	}
	q := repro.MustParseQuery("q(x,y,z) = S1(x,z), S2(y,z)")

	forced, err := s.Exec(context.Background(), q, db,
		repro.WithStrategy(repro.StrategySkewJoin), repro.WithP(8), repro.WithoutCache())
	if err != nil {
		panic(err)
	}
	fmt.Println("strategy:", forced.Plan.Strategy)
	fmt.Println("cached plans:", s.CacheStats().Size)
	// Output:
	// strategy: skew-join
	// cached plans: 0
}

// A standing query advances by routing only the applied delta tuples
// through the frozen plan into resident per-server state — inserts derive
// new answers, deletes retract exactly.
func ExampleSession_Standing() {
	db := repro.NewDatabase()
	db.Put(repro.MatchingRelation("S1", 2, 1000, 1<<20, 1))
	db.Put(repro.MatchingRelation("S2", 2, 1000, 1<<20, 2))
	s, err := repro.Open(repro.Config{P: 16, Seed: 42})
	if err != nil {
		panic(err)
	}
	q := repro.MustParseQuery("q(x,y,z) = S1(x,z), S2(y,z)")

	h, err := s.Standing(context.Background(), q, db)
	if err != nil {
		panic(err)
	}
	defer h.Close()
	before := len(h.Result())

	// Two matched inserts on a fresh in-domain join value create one new answer.
	z := int64(1<<20 - 1)
	if err := db.Apply(repro.NewDelta().Insert("S1", 7, z).Insert("S2", 8, z)); err != nil {
		panic(err)
	}
	rd, err := h.Advance(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println("added:", len(rd.Added), "removed:", len(rd.Removed))
	fmt.Println("result grew by:", len(h.Result())-before)

	// Deleting one side retracts the answer it derived.
	if err := db.Apply(repro.NewDelta().Delete("S1", 7, z)); err != nil {
		panic(err)
	}
	rd, err = h.Advance(context.Background())
	if err != nil {
		panic(err)
	}
	fmt.Println("added:", len(rd.Added), "removed:", len(rd.Removed))
	fmt.Println("reseeds:", h.Stats().Reseeds)
	// Output:
	// added: 1 removed: 0
	// result grew by: 1
	// added: 0 removed: 1
	// reseeds: 0
}

// Admission control under overload: a session bounds in-flight executions
// and sheds the excess with a typed error callers can branch on. The
// injected straggler parks the first call mid-round — deterministically,
// no timing involved — so the second call finds the session saturated.
func ExampleSession_Exec_overload() {
	db := repro.NewDatabase()
	db.Put(repro.MatchingRelation("S1", 2, 400, 1<<20, 1))
	db.Put(repro.MatchingRelation("S2", 2, 400, 1<<20, 2))
	q := repro.MustParseQuery("q(x,y,z) = S1(x,z), S2(y,z)")

	parked := make(chan struct{}, 64)
	release := make(chan struct{})
	s, err := repro.Open(repro.Config{
		P:           8,
		Seed:        42,
		MaxInFlight: 1,  // one execution at a time
		MaxQueue:    -1, // no wait queue: shed immediately at capacity
		Faults: &repro.Faults{Seed: 1, Straggler: 1, OnStraggle: func() {
			select {
			case parked <- struct{}{}:
			default:
			}
			<-release
		}},
	})
	if err != nil {
		panic(err)
	}
	defer s.Close()

	done := make(chan error, 1)
	go func() {
		_, execErr := s.Exec(context.Background(), q, db)
		done <- execErr
	}()
	<-parked // the first call now holds the only slot, parked mid-round

	_, err = s.Exec(context.Background(), q, db)
	fmt.Println("second call shed:", errors.Is(err, repro.ErrOverloaded))

	close(release) // un-park the first call; it finishes normally
	fmt.Println("first call error:", <-done)
	st := s.AdmissionStats()
	fmt.Println("admitted:", st.Admitted, "shed:", st.Shed)
	// Output:
	// second call shed: true
	// first call error: <nil>
	// admitted: 1 shed: 1
}

// Fault recovery is round-granular: a torn round is replayed in place
// under Config.Retry's attempt budget instead of failing the execution,
// and Result.Recovery reports what the run consumed. The schedule is
// seeded and the Would* predicates are pure, so a seed whose round 1
// tears once and then heals can be picked deterministically up front.
func ExampleSession_Exec_retry() {
	var seed uint64
	for {
		f := &repro.Faults{Seed: seed, TornRound: 0.5}
		if f.WouldTearRoundAttempt(1, 1) && !f.WouldTearRoundAttempt(1, 2) {
			break
		}
		seed++
	}

	db := repro.NewDatabase()
	db.Put(repro.MatchingRelation("S1", 2, 1000, 1<<20, 1))
	db.Put(repro.MatchingRelation("S2", 2, 1000, 1<<20, 2))
	s, err := repro.Open(repro.Config{
		P:      8,
		Seed:   42,
		Faults: &repro.Faults{Seed: seed, TornRound: 0.5},
		// Default budget (three attempts), backoff waits disabled so the
		// example spends no wall-clock time sleeping.
		Retry: repro.Retry{BaseBackoff: -1},
	})
	if err != nil {
		panic(err)
	}
	defer s.Close()

	q := repro.MustParseQuery("q(x,y,z) = S1(x,z), S2(y,z)")
	res, err := s.Exec(context.Background(), q, db)
	if err != nil {
		panic(err)
	}
	fmt.Println("attempts:", res.Recovery.Attempts, "rounds replayed:", res.Recovery.RoundsReplayed)
	fmt.Println("legacy retries:", res.FaultRetries)
	fmt.Println("breaker:", s.HealthStats().State)
	// Output:
	// attempts: 1 rounds replayed: 1
	// legacy retries: 1
	// breaker: disabled
}

// Serving sessions adapt the physical layout to skew: the first Exec on a
// skewed instance plans and gives the join column a heavy-partition layout
// (one contiguous run per heavy value); later Execs read snapshots with
// the new layout and bulk-ship whole runs. The layout is a pure physical
// reorder — answers and realized loads are identical either way.
func ExampleSession_Exec_partitioned() {
	q := repro.Join2Query()
	db := repro.NewDatabase()
	db.Put(repro.ZipfRelation("S1", 2000, 1<<20, 1, 1.6, 64, 1))
	db.Put(repro.ZipfRelation("S2", 2000, 1<<20, 1, 1.6, 64, 2))

	s, err := repro.Open(repro.Config{P: 8, Seed: 42})
	if err != nil {
		panic(err)
	}
	defer s.Close()
	ctx := context.Background()

	r1, _ := s.Exec(ctx, q, db, repro.WithStrategy(repro.StrategySkewJoin))
	r2, _ := s.Exec(ctx, q, db, repro.WithStrategy(repro.StrategySkewJoin))

	fmt.Println("answers equal:", len(r1.Output) == len(r2.Output))
	fmt.Println("loads equal:", r1.MaxLoadBits == r2.MaxLoadBits)
	fmt.Println("layout rebuilds:", s.CacheStats().Repartitions)
	// Output:
	// answers equal: true
	// loads equal: true
	// layout rebuilds: 2
}

// pk(C3) is the four-vertex set of Example 3.7.
func ExamplePackingVertices() {
	vs := repro.PackingVertices(repro.TriangleQuery())
	fmt.Println(len(vs), "non-dominated packing vertices")
	// Output:
	// 4 non-dominated packing vertices
}

// τ* of the triangle is 3/2 — the fractional vertex covering number.
func ExampleTau() {
	fmt.Printf("τ*(C3) = %.1f\n", repro.Tau(repro.TriangleQuery()))
	fmt.Printf("τ*(C4) = %.1f\n", repro.Tau(repro.CycleQuery(4)))
	// Output:
	// τ*(C3) = 1.5
	// τ*(C4) = 2.0
}

// The AGM bound for the triangle with equal cardinalities m is m^{3/2}.
func ExampleAGMBound() {
	fmt.Printf("%.0f\n", repro.AGMBound(repro.TriangleQuery(), []float64{100, 100, 100}))
	// Output:
	// 1000
}

// Parsing accepts both "=" and ":-" separators.
func ExampleParseQuery() {
	q, err := repro.ParseQuery("C3(x,y,z) :- S1(x,y), S2(y,z), S3(z,x)")
	if err != nil {
		panic(err)
	}
	fmt.Println(q.NumVars(), "variables,", q.NumAtoms(), "atoms")
	// Output:
	// 3 variables, 3 atoms
}

// A fully skewed join: every tuple shares one z value. The skew join
// handles it with a per-hitter grid; its output is the full cartesian
// product of the matching sides.
func ExampleRunSkewJoin() {
	db := repro.NewDatabase()
	db.Put(repro.SingleValueRelation("S1", 2, 100, 1<<20, 1, 7, 1))
	db.Put(repro.SingleValueRelation("S2", 2, 100, 1<<20, 1, 7, 2))
	res := repro.RunSkewJoin(db, repro.SkewJoinConfig{P: 16, Seed: 3})
	fmt.Println("answers:", len(res.Output))
	fmt.Println("jointly heavy hitters:", res.NumH12)
	// Output:
	// answers: 10000
	// jointly heavy hitters: 1
}

// Lower bounds react to skew: with a shared heavy hitter the residual
// bound of Theorem 4.7 exceeds the cardinality-only bound.
func ExampleLowerBound() {
	db := repro.NewDatabase()
	db.Put(repro.SingleValueRelation("S1", 2, 1024, 1<<20, 1, 7, 1))
	db.Put(repro.SingleValueRelation("S2", 2, 1024, 1<<20, 1, 7, 2))
	_, witness := repro.LowerBound(repro.Join2Query(), db, 16)
	fmt.Println("winning bound:", witness)
	// Output:
	// winning bound: residual x=[2]
}
