package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/data"
	"repro/internal/exec"
	"repro/internal/query"
	"repro/internal/skew"
	"repro/internal/stats"
	"repro/internal/workload"
)

// StorageBench is the committed BENCH_storage.json baseline for the
// skew-adaptive storage layer: the end-to-end communication round with
// heavy runs span-routed (bulk column appends) against the same plan
// routing tuple by tuple over a flat layout, and the chunked parallel
// statistics scan against the single-CPU serial one.
type StorageBench struct {
	Instance string `json:"instance"`
	GoArch   string `json:"goarch"`
	NumCPU   int    `json:"num_cpu"`
	// End-to-end §4.1 skew-join round (route + deliver, no local join) on
	// the zipf instance, p=64: flat layout (per-tuple routing) vs
	// heavy-partitioned layout (per-value runs bulk-shipped as spans).
	FlatRoundNsPerOp     float64 `json:"flat_round_ns_per_op"`
	SpanRoundNsPerOp     float64 `json:"span_round_ns_per_op"`
	SpanRoundSpeedup     float64 `json:"span_round_speedup"`
	FlatRoundAllocsPerOp int64   `json:"flat_round_allocs_per_op"`
	SpanRoundAllocsPerOp int64   `json:"span_round_allocs_per_op"`
	// stats.Collect over one large zipf relation: GOMAXPROCS=1 serial scan
	// vs the chunked scan on every CPU.
	StatsRelationTuples  int     `json:"stats_relation_tuples"`
	StatsSerialNsPerOp   float64 `json:"stats_serial_ns_per_op"`
	StatsParallelNsPerOp float64 `json:"stats_parallel_ns_per_op"`
	StatsParallelSpeedup float64 `json:"stats_parallel_speedup"`
}

// storageZipfDB is the routing baseline's zipf join instance scaled up: the
// span path's bulk appends only matter when the heavy runs are long.
func storageZipfDB(m int) *data.Database {
	db := data.NewDatabase()
	db.Put(workload.Zipf("S1", m, 1<<20, 1, 1.6, 500, 1))
	db.Put(workload.Zipf("S2", m, 1<<20, 1, 1.6, 500, 2))
	return db
}

// runStorageBench measures the storage baseline and writes it as JSON. It
// fails if the span-routed round allocates more per op than the per-tuple
// baseline — bulk-shipping whole runs must not add allocations.
func runStorageBench(path string) error {
	const m = 50000
	const p = 64
	flat := storageZipfDB(m)
	part := storageZipfDB(m) // content-identical; gets the heavy layout

	plan := skew.PlanJoin(query.Join2(), flat, skew.JoinConfig{P: p, Seed: 3, SkipJoin: true})
	if len(plan.Phys.PartitionHints) == 0 {
		return fmt.Errorf("skew-join plan emitted no partition hints on the zipf instance")
	}
	for _, h := range plan.Phys.PartitionHints {
		part.EnsurePartitioned(h.Rel, h.Attr, p)
	}
	if part.MustGet("S1").Partitions() == nil {
		return fmt.Errorf("EnsurePartitioned left S1 unpartitioned")
	}

	flatRound := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			exec.Run(plan.Phys, flat, exec.Config{SkipCompute: true})
		}
	})
	spanRound := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			exec.Run(plan.Phys, part, exec.Config{SkipCompute: true})
		}
	})
	// Allocations are slab-dominated (the same tuples arrive either way, in
	// the same batches); span routing adds only a few per-span route
	// compilations. Guard against a per-tuple allocation regression: the
	// span path may not exceed the per-tuple baseline by more than 1%.
	if limit := flatRound.AllocsPerOp() + flatRound.AllocsPerOp()/100; spanRound.AllocsPerOp() > limit {
		return fmt.Errorf("span-routed round allocates per routed tuple: %d allocs/op vs %d baseline (limit %d)",
			spanRound.AllocsPerOp(), flatRound.AllocsPerOp(), limit)
	}

	const statsTuples = 800000
	statsRel := workload.Zipf("B", statsTuples, 1<<20, 1, 1.4, 2000, 7)
	procs := runtime.GOMAXPROCS(0)
	runtime.GOMAXPROCS(1)
	serial := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stats.Collect(statsRel, p)
		}
	})
	runtime.GOMAXPROCS(procs)
	parallel := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stats.Collect(statsRel, p)
		}
	})

	out := StorageBench{
		Instance: fmt.Sprintf("join2 zipf: S1,S2 m=%d domain=2^20 zipf(s=1.6) over 500 values, p=%d; stats on zipf m=%d over 2000 values", m, p, statsTuples),
		GoArch:   runtime.GOARCH,
		NumCPU:   runtime.NumCPU(),

		FlatRoundNsPerOp:     float64(flatRound.NsPerOp()),
		SpanRoundNsPerOp:     float64(spanRound.NsPerOp()),
		SpanRoundSpeedup:     float64(flatRound.NsPerOp()) / float64(spanRound.NsPerOp()),
		FlatRoundAllocsPerOp: flatRound.AllocsPerOp(),
		SpanRoundAllocsPerOp: spanRound.AllocsPerOp(),

		StatsRelationTuples:  statsTuples,
		StatsSerialNsPerOp:   float64(serial.NsPerOp()),
		StatsParallelNsPerOp: float64(parallel.NsPerOp()),
		StatsParallelSpeedup: float64(serial.NsPerOp()) / float64(parallel.NsPerOp()),
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("storage baseline written to %s\n%s", path, blob)
	return nil
}
