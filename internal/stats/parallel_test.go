package stats

import (
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/data"
)

// withSmallParallelThreshold lowers the serial cutoff and forces GOMAXPROCS
// above the single-CPU floor so the chunked paths genuinely run on
// test-sized relations (and on single-core CI machines, where
// scanChunks would otherwise always stay serial), restoring both
// afterwards.
func withSmallParallelThreshold(t *testing.T) {
	t.Helper()
	old := parallelMinRows
	parallelMinRows = 8
	oldProcs := runtime.GOMAXPROCS(4)
	t.Cleanup(func() {
		parallelMinRows = old
		runtime.GOMAXPROCS(oldProcs)
	})
}

// randomRelation builds a skewed random relation: a small value domain on
// the first column forces repeats, the last column is a unique row ID so
// delta-style duplicate-free invariants hold.
func randomRelation(rng *rand.Rand, n int) *data.Relation {
	r := data.NewRelation("R", 3, 1<<20)
	vals := 1 + rng.Intn(12)
	for i := 0; i < n; i++ {
		r.Add(int64(rng.Intn(vals)), int64(rng.Intn(50)), int64(i))
	}
	return r
}

func freqMapsEqual(a, b *FreqMap) bool {
	if a.Total != b.Total || len(a.Counts) != len(b.Counts) {
		return false
	}
	for k, c := range a.Counts {
		if b.Counts[k] != c {
			return false
		}
	}
	return true
}

// serialFrequencies is the reference single-threaded scan the parallel path
// is property-tested against.
func serialFrequencies(r *data.Relation, attrs []int) *FreqMap {
	f := &FreqMap{Attrs: append([]int(nil), attrs...), Counts: make(map[data.Key]int64), Total: int64(r.Size())}
	proj := make(data.Tuple, len(attrs))
	for row := 0; row < r.Size(); row++ {
		for i, a := range attrs {
			proj[i] = r.At(row, a)
		}
		f.Counts[data.KeyOf(proj)]++
	}
	return f
}

func TestParallelFrequenciesMatchesSerial(t *testing.T) {
	withSmallParallelThreshold(t)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		r := randomRelation(rng, 50+rng.Intn(2000))
		for _, attrs := range [][]int{{0}, {1}, {0, 1}, {2, 0}} {
			got := FrequenciesOrdered(r, attrs)
			want := serialFrequencies(r, attrs)
			if !freqMapsEqual(got, want) {
				t.Fatalf("trial %d attrs %v: parallel frequencies diverge from serial", trial, attrs)
			}
		}
	}
}

func TestParallelCardinalityMatchesSerial(t *testing.T) {
	withSmallParallelThreshold(t)
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		r := randomRelation(rng, 50+rng.Intn(2000))
		for attr := 0; attr < r.Arity; attr++ {
			seen := make(map[int64]struct{})
			for _, v := range r.Column(attr) {
				seen[v] = struct{}{}
			}
			if got := Cardinality(r, attr); got != int64(len(seen)) {
				t.Fatalf("trial %d attr %d: Cardinality = %d, want %d", trial, attr, got, len(seen))
			}
		}
	}
}

// TestParallelFingerprintRescanBitIdentical asserts the chunked rescan is
// bit-identical to the serial fold (the content term is a commutative sum)
// and still agrees with the incrementally-maintained Fingerprint after
// delta sequences.
func TestParallelFingerprintRescanBitIdentical(t *testing.T) {
	oldProcs := runtime.GOMAXPROCS(4) // chunked scans need >1 proc even on 1-CPU CI
	defer runtime.GOMAXPROCS(oldProcs)
	rng := rand.New(rand.NewSource(13))
	db := data.NewDatabase()
	r := data.NewRelation("R", 2, 1<<20)
	for i := 0; i < 40000; i++ { // above the real parallelMinRows
		r.Add(int64(rng.Intn(100)), int64(i))
	}
	db.Put(r)

	serial := func() uint64 {
		old := parallelMinRows
		parallelMinRows = 1 << 62
		defer func() { parallelMinRows = old }()
		return FingerprintRescan(db)
	}

	if got, want := FingerprintRescan(db), serial(); got != want {
		t.Fatalf("parallel rescan %x differs from serial %x", got, want)
	}
	if got, want := FingerprintRescan(db), Fingerprint(db); got != want {
		t.Fatalf("rescan %x disagrees with maintained fingerprint %x", got, want)
	}

	next := int64(500000)
	for i := 0; i < 10; i++ {
		d := &data.Delta{}
		for j := 0; j < 50; j++ {
			next++
			d.Insert("R", int64(rng.Intn(100)), next)
		}
		d.Delete("R", r.Tuple(rng.Intn(r.Size()))...)
		if err := db.Apply(d); err != nil {
			t.Fatal(err)
		}
		if got, want := FingerprintRescan(db), serial(); got != want {
			t.Fatalf("delta %d: parallel rescan diverged from serial", i)
		}
		if got, want := FingerprintRescan(db), Fingerprint(db); got != want {
			t.Fatalf("delta %d: rescan disagrees with maintained fingerprint", i)
		}
	}
}

func TestParallelCollectDBMatchesSerial(t *testing.T) {
	withSmallParallelThreshold(t)
	rng := rand.New(rand.NewSource(17))
	db := data.NewDatabase()
	for _, name := range []string{"A", "B", "C"} {
		r := randomRelation(rng, 100+rng.Intn(1500))
		r.Name = name
		db.Put(r)
	}
	got := CollectDB(db, 8)
	for name, r := range db.Relations {
		want := Collect(r, 8)
		rs := got.Relations[name]
		if rs.M != want.M || rs.Threshold != want.Threshold {
			t.Fatalf("%s: M/Threshold mismatch", name)
		}
		for key, wf := range want.ByAttrs {
			if !freqMapsEqual(rs.ByAttrs[key], wf) {
				t.Fatalf("%s attrs %s: heavy maps diverge", name, key)
			}
		}
	}
}

// TestSampleFrequenciesDense is the regression test for dense sampling:
// with sampleSize = m over m distinct values, the with-replacement
// estimator re-counted collided rows and scaled, reporting frequencies of 2
// and 3 for values that occur exactly once. Dense samples now draw without
// replacement, so every estimate is exact.
func TestSampleFrequenciesDense(t *testing.T) {
	m := 1000
	r := data.NewRelation("R", 1, 1<<20)
	for i := 0; i < m; i++ {
		r.Add(int64(i))
	}
	f := SampleFrequencies(r, []int{0}, m, 99)
	if len(f.Counts) != m {
		t.Fatalf("sampleSize=m visited %d of %d distinct values", len(f.Counts), m)
	}
	for k, c := range f.Counts {
		if c != 1 {
			t.Fatalf("value %v estimated at %d, want exactly 1", k, c)
		}
	}
	// Dense but partial (sampleSize = m/2 ≥ m/2 boundary): counts stay
	// without replacement — no value can be counted more than once, so no
	// estimate exceeds the scale factor.
	half := SampleFrequencies(r, []int{0}, m/2, 99)
	if len(half.Counts) != m/2 {
		t.Fatalf("half sample drew %d distinct rows, want %d (without replacement)", len(half.Counts), m/2)
	}
	for k, c := range half.Counts {
		if c != 2 { // one occurrence × scale m/(m/2)
			t.Fatalf("value %v estimated at %d, want 2", k, c)
		}
	}
	// Sparse samples keep the classical with-replacement estimator.
	sparse := SampleFrequencies(r, []int{0}, 10, 99)
	if len(sparse.Counts) == 0 || len(sparse.Counts) > 10 {
		t.Fatalf("sparse sample produced %d estimates", len(sparse.Counts))
	}
}
