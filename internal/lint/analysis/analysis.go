// Package analysis is a dependency-free reimplementation of the core API
// of golang.org/x/tools/go/analysis, shaped so skewlint's analyzers read
// (and would port) exactly like upstream ones. The build environment bakes
// in only the Go toolchain — no module proxy, no vendored x/tools — so the
// framework the analyzers run on lives here: an Analyzer is a named Run
// function over a Pass, a Pass carries one type-checked package, and
// diagnostics are plain positions plus messages. Package loading (the part
// of x/tools this package does not mirror) is internal/lint/load, built on
// `go list -export` and the standard library's gc export-data importer.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker. Unlike upstream there is no
// fact or dependency machinery: every skewlint analyzer is a pure function
// of a single package, which keeps the driver embarrassingly parallel and
// `go vet -vettool` integration stateless.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //skewlint:allow directives. Lower-case, no spaces.
	Name string
	// Doc is the one-paragraph contract the analyzer enforces; the first
	// line is the summary shown by `skewlint -list`.
	Doc string
	// Run inspects one package and reports findings through pass.Report.
	// The error return is for operational failures (the package could not
	// be analyzed), not for findings.
	Run func(pass *Pass) error
}

func (a *Analyzer) String() string { return a.Name }

// Pass is one (analyzer, package) unit of work. All fields are read-only
// for the Run function.
type Pass struct {
	Analyzer *Analyzer

	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// IsTest reports, per file index, whether Files[i] came from a
	// _test.go file (either the in-package test variant or an external
	// _test package).
	IsTest []bool

	// Report delivers one diagnostic. The driver installs it; analyzers
	// should use Reportf for convenience.
	Report func(Diagnostic)
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// FileOf returns the *ast.File containing pos, or nil.
func (p *Pass) FileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// InTestFile reports whether pos lies in a _test.go file of the pass.
func (p *Pass) InTestFile(pos token.Pos) bool {
	for i, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return i < len(p.IsTest) && p.IsTest[i]
		}
	}
	return false
}

// Diagnostic is one finding: a position in the pass's FileSet plus a
// human-readable message. Category is the analyzer name (filled in by the
// driver) so multichecker output and directive suppression key off it.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Category string
}
