// Package core is the top of the stack: a one-round MPC query-evaluation
// engine that puts the paper's pieces together. Given a conjunctive query,
// a database, and p servers, the engine collects statistics, decides which
// algorithm applies — plain HyperCube on skew-free data (§3), the
// specialized skew join for the two-relation join (§4.1), or the general
// bin-combination algorithm (§4.2) — computes the matching lower bound
// (Theorems 3.5/4.7), and executes the plan on the simulator.
package core

import (
	"container/list"
	"fmt"
	"sync"

	"repro/internal/bounds"
	"repro/internal/data"
	"repro/internal/exec"
	"repro/internal/hypercube"
	"repro/internal/query"
	"repro/internal/rounds"
	"repro/internal/skew"
	"repro/internal/stats"
)

// Strategy identifies which of the paper's algorithms a plan uses.
type Strategy int

// Strategies.
const (
	// HyperCube is the §3.1 algorithm with LP-optimal shares (skew-free
	// data, simple statistics).
	HyperCube Strategy = iota
	// SkewJoin is the §4.1 algorithm specialized for
	// q(x,y,z) = S1(x,z), S2(y,z) with heavy hitters.
	SkewJoin
	// BinCombination is the general §4.2 algorithm for arbitrary
	// conjunctive queries with heavy hitters.
	BinCombination
	// MultiRound is the traditional one-join-per-round pipeline (skew-aware
	// per-step heavy-hitter grids), executed through exec.RunPipeline with
	// intermediates resident on the servers between rounds.
	MultiRound
)

func (s Strategy) String() string {
	switch s {
	case HyperCube:
		return "hypercube"
	case SkewJoin:
		return "skew-join"
	case BinCombination:
		return "bin-combination"
	case MultiRound:
		return "multi-round"
	}
	return "?"
}

// DefaultPlanCacheCapacity bounds the plan cache when the engine does not
// set an explicit capacity: enough for a realistic working set of
// (query, database-version) pairs, small enough that a churn of one-off
// fingerprints cannot grow the engine without bound.
const DefaultPlanCacheCapacity = 64

// Engine evaluates conjunctive queries in one communication round on p
// simulated servers.
//
// Execute caches physical plans keyed by (query canonical form, database
// fingerprint, p, forced strategy): repeated calls on unchanged inputs —
// the heavy repeated-traffic case — skip statistics collection, LP
// solving, and heavy-hitter planning, paying only a linear fingerprint
// scan before routing. The cache is a bounded LRU
// (DefaultPlanCacheCapacity entries unless PlanCacheCapacity overrides
// it); least-recently-used plans are evicted and counted in CacheStats.
// Engines are safe for concurrent use.
type Engine struct {
	P    int
	Seed uint64
	// ForceStrategy overrides plan selection when non-nil.
	ForceStrategy *Strategy
	// DisablePlanCache replans on every Execute call.
	DisablePlanCache bool
	// PlanCacheCapacity bounds the number of cached plans; 0 means
	// DefaultPlanCacheCapacity, negative means unbounded. Read when an
	// entry is inserted, so set it before the first Execute.
	PlanCacheCapacity int
	// ConsiderMultiRound adds the multi-round pipeline to plan selection:
	// when its predicted cost (SumMaxBits — the busiest server's total bits
	// across rounds) undercuts the chosen one-round strategy's
	// PredictedBits, the engine plans, caches, and executes the pipeline
	// instead. Off by default: the repository reproduces a one-round paper,
	// so trading rounds for load is opt-in.
	ConsiderMultiRound bool

	mu        sync.Mutex
	cache     map[planKey]*list.Element // key → element whose Value is *cacheEntry
	lru       list.List                 // front = most recently used
	hits      uint64
	misses    uint64
	evictions uint64
	// scratchPool recycles exec.Scratch buffers across Execute calls so
	// repeated executions of cached plans don't allocate load-accounting
	// slices.
	scratchPool sync.Pool
	// clusters recycles mpc clusters across Execute calls (size-bucketed):
	// cached-plan serving draws a warm cluster — servers and Received maps
	// retained — instead of reallocating Θ(Virtual) of both per execution.
	clusters exec.ClusterPool
}

// cacheEntry is one LRU node: the key (so eviction can unmap it) plus the
// cached plan bundle.
type cacheEntry struct {
	key planKey
	cp  *cachedPlan
}

// planKey identifies a cached plan: q.String() is a canonical rendering of
// the query (names, variable order, atom order), fp fingerprints the
// database content, seed pins the hash family, and forced pins the
// strategy override in effect.
type planKey struct {
	query   string
	fp      uint64
	p       int
	seed    uint64
	forced  Strategy // -1 when no override
	mrAware bool     // ConsiderMultiRound changes plan selection
}

// cachedPlan holds the logical plan plus the strategy-specific physical
// plan, whichever strategy was chosen.
type cachedPlan struct {
	plan Plan
	hc   *hypercube.Plan
	sj   *skew.JoinPlan
	gen  *skew.GeneralPlan
	mr   *rounds.PipelinePlan
}

// Plan describes the chosen algorithm and the bound analysis for one
// query/database pair.
type Plan struct {
	Strategy       Strategy
	Shares         []int   // HyperCube only
	LowerBoundBits float64 // Theorem 1.2's L_lower = max_{x,u} L_x(u,M,p)
	HasSkew        bool
	Reason         string
	// PredictedBits is the chosen strategy's cost prediction: p^λ for
	// HyperCube, Eq. 10 for the skew join, max_B p^{λ(B)} for bin
	// combinations, and the summed per-round maxima (SumMaxBits) for
	// multi-round pipelines.
	PredictedBits float64
	// Rounds is the number of communication rounds the plan uses (1 for
	// every one-round strategy).
	Rounds int
}

// Result is the outcome of Execute.
type Result struct {
	Plan          Plan
	Output        []data.Tuple
	MaxLoadBits   int64 // max virtual-processor load (what the theorems bound)
	TotalBits     int64
	PredictedBits float64
}

// NewEngine returns an engine for p servers.
func NewEngine(p int, seed uint64) *Engine {
	if p < 2 {
		panic("core: need p >= 2")
	}
	return &Engine{P: p, Seed: seed}
}

// PlanQuery analyzes statistics and picks the algorithm, including the
// multi-round cost comparison when ConsiderMultiRound is set. It builds
// (and discards) the physical plan to obtain the strategy's cost
// prediction; Execute's plan cache avoids the duplicate work on the hot
// path.
func (e *Engine) PlanQuery(q *query.Query, db *data.Database) Plan {
	return e.buildPlan(q, db).plan
}

// logicalPlan runs the one-round strategy selection of §3/§4.
func (e *Engine) logicalPlan(q *query.Query, db *data.Database) Plan {
	if err := q.Validate(); err != nil {
		panic(fmt.Sprintf("core: invalid query: %v", err))
	}
	dbStats := stats.CollectDB(db, e.P)
	hasSkew := false
	for _, a := range q.Atoms {
		rs := dbStats.Relations[a.Name]
		if rs == nil {
			panic("core: database missing relation " + a.Name)
		}
		for _, f := range rs.ByAttrs {
			if len(f.HeavyHitters(rs.Threshold)) > 0 {
				hasSkew = true
			}
		}
	}
	lower, desc := bounds.BestLower(q, db, e.P, 0)
	plan := Plan{LowerBoundBits: lower, HasSkew: hasSkew}
	switch {
	case e.ForceStrategy != nil:
		plan.Strategy = *e.ForceStrategy
		plan.Reason = "forced: " + plan.Strategy.String()
	case !hasSkew:
		plan.Strategy = HyperCube
		plan.Reason = "no heavy hitters at threshold m/p; LP shares are optimal (" + desc + ")"
	case isJoin2Shaped(q):
		plan.Strategy = SkewJoin
		plan.Reason = "two-relation join with heavy hitters; §4.1 specialized algorithm (" + desc + ")"
	default:
		plan.Strategy = BinCombination
		plan.Reason = "heavy hitters on a general query; §4.2 bin combinations (" + desc + ")"
	}
	return plan
}

// Execute plans and runs the query through the unified executor, returning
// answers and realized loads. Plans are cached: a repeat call with the
// same query, database content, and p reuses the cached physical plan.
func (e *Engine) Execute(q *query.Query, db *data.Database) Result {
	cp := e.planFor(q, db)
	res := Result{Plan: cp.plan}
	// Callers own the Result; don't let them mutate the cached plan
	// through the shared backing array.
	res.Plan.Shares = append([]int(nil), cp.plan.Shares...)
	// Pooled load-accounting scratch: PerServerBits aliases it, so each
	// planner's result shaping must finish before the buffers go back.
	sc, _ := e.scratchPool.Get().(*exec.Scratch)
	if sc == nil {
		sc = new(exec.Scratch)
	}
	ec := exec.Config{Scratch: sc, Clusters: &e.clusters}
	switch {
	case cp.hc != nil:
		hc := cp.hc.ExecuteWith(db, ec)
		res.Output = hc.Output
		res.MaxLoadBits = hc.Loads.MaxBits
		res.TotalBits = hc.Loads.TotalBits
		res.PredictedBits = hc.PredictedBits
	case cp.sj != nil:
		sj := cp.sj.ExecuteWith(db, ec)
		res.Output = sj.Output
		res.MaxLoadBits = sj.MaxVirtualBits
		res.PredictedBits = sj.PredictedBits
	case cp.gen != nil:
		g := cp.gen.ExecuteWith(db, ec)
		res.Output = g.Output
		res.MaxLoadBits = g.MaxVirtualBits
		res.PredictedBits = g.PredictedBits
	case cp.mr != nil:
		r := cp.mr.ExecuteWith(db, ec)
		res.Output = r.Output
		// The multi-round analogue of the one-round max load is the summed
		// per-round maxima: the most bits one server could have received
		// across the whole computation.
		res.MaxLoadBits = r.SumMaxBits
		for _, rl := range r.Rounds {
			res.TotalBits += rl.TotalBits
		}
		res.PredictedBits = cp.mr.PredictedSumMaxBits
	}
	// Result.Output escapes to the caller: the scratch must release the
	// buffer it aliases, or the next Execute reusing this scratch would
	// overwrite answers the caller already holds.
	if res.Output != nil {
		sc.DetachOutput()
	}
	e.scratchPool.Put(sc)
	return res
}

// planFor returns the cached plan bundle for (q, db), building and caching
// it on a miss. Hits refresh the entry's LRU position; inserts beyond the
// capacity evict from the cold end.
func (e *Engine) planFor(q *query.Query, db *data.Database) *cachedPlan {
	if e.DisablePlanCache {
		return e.buildPlan(q, db)
	}
	key := planKey{query: q.String(), fp: stats.Fingerprint(db), p: e.P, seed: e.Seed, forced: -1, mrAware: e.ConsiderMultiRound}
	if e.ForceStrategy != nil {
		key.forced = *e.ForceStrategy
	}
	e.mu.Lock()
	if el, ok := e.cache[key]; ok {
		e.hits++
		e.lru.MoveToFront(el)
		cp := el.Value.(*cacheEntry).cp
		e.mu.Unlock()
		return cp
	}
	e.mu.Unlock()
	// Plan outside the lock: planning is the expensive part, and a
	// duplicate build for a racing miss is just redundant work.
	cp := e.buildPlan(q, db)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.misses++
	if el, ok := e.cache[key]; ok {
		// A racing miss already inserted this key; keep the live entry.
		e.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).cp
	}
	if e.cache == nil {
		e.cache = make(map[planKey]*list.Element)
	}
	e.cache[key] = e.lru.PushFront(&cacheEntry{key: key, cp: cp})
	capacity := e.PlanCacheCapacity
	if capacity == 0 {
		capacity = DefaultPlanCacheCapacity
	}
	for capacity > 0 && e.lru.Len() > capacity {
		cold := e.lru.Back()
		e.lru.Remove(cold)
		delete(e.cache, cold.Value.(*cacheEntry).key)
		e.evictions++
	}
	return cp
}

// buildPlan runs the logical planner, lowers the chosen strategy to its
// physical plan, and — when ConsiderMultiRound is on — cost-compares the
// one-round choice against a multi-round pipeline (predicted SumMaxBits vs
// the one-round PredictedBits), switching to the pipeline when cheaper.
func (e *Engine) buildPlan(q *query.Query, db *data.Database) *cachedPlan {
	cp := &cachedPlan{plan: e.logicalPlan(q, db)}
	cp.plan.Rounds = 1
	switch cp.plan.Strategy {
	case HyperCube:
		cp.hc = hypercube.BuildPlan(q, db, hypercube.Config{P: e.P, Seed: e.Seed})
		cp.plan.Shares = cp.hc.Shares
		cp.plan.PredictedBits = cp.hc.PredictedBits
	case SkewJoin:
		cp.sj = skew.PlanJoin(q, db, skew.JoinConfig{P: e.P, Seed: e.Seed})
		cp.plan.PredictedBits = cp.sj.PredictedBits
	case BinCombination:
		cp.gen = skew.PlanGeneral(q, db, skew.GeneralConfig{P: e.P, Seed: e.Seed})
		cp.plan.PredictedBits = cp.gen.PredictedBits
	case MultiRound:
		cp.mr = e.planMultiRound(q, db)
		cp.plan.PredictedBits = cp.mr.PredictedSumMaxBits
		cp.plan.Rounds = len(cp.mr.Logical.Steps)
	}
	if e.ConsiderMultiRound && e.ForceStrategy == nil && cp.mr == nil && q.NumAtoms() >= 2 {
		mr := e.planMultiRound(q, db)
		one := cp.plan.PredictedBits
		if one > 0 && mr.PredictedSumMaxBits < one {
			cp.plan.Reason = fmt.Sprintf(
				"multi-round pipeline predicted Σmax %.0f bits beats one-round %s predicted %.0f bits (%s)",
				mr.PredictedSumMaxBits, cp.plan.Strategy, one, cp.plan.Reason)
			cp.plan.Strategy = MultiRound
			cp.plan.Shares = nil
			cp.plan.PredictedBits = mr.PredictedSumMaxBits
			cp.plan.Rounds = len(mr.Logical.Steps)
			cp.hc, cp.sj, cp.gen = nil, nil, nil
			cp.mr = mr
		} else {
			cp.plan.Reason += fmt.Sprintf(
				"; multi-round rejected (predicted Σmax %.0f bits over %d rounds)",
				mr.PredictedSumMaxBits, len(mr.Logical.Steps))
		}
	}
	return cp
}

// planMultiRound lowers the skew-aware multi-round pipeline for q.
func (e *Engine) planMultiRound(q *query.Query, db *data.Database) *rounds.PipelinePlan {
	return rounds.PlanPipeline(q, db, rounds.Config{P: e.P, Seed: e.Seed, SkewAware: true})
}

// CacheStats reports the plan cache counters and occupancy.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Size      int // live entries
	Capacity  int // effective bound (≤ 0 means unbounded)
}

// CacheStats returns the plan cache counters.
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	capacity := e.PlanCacheCapacity
	if capacity == 0 {
		capacity = DefaultPlanCacheCapacity
	}
	return CacheStats{
		Hits:      e.hits,
		Misses:    e.misses,
		Evictions: e.evictions,
		Size:      len(e.cache),
		Capacity:  capacity,
	}
}

// ClearPlanCache drops all cached plans and resets the counters.
func (e *Engine) ClearPlanCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cache = nil
	e.lru.Init()
	e.hits, e.misses, e.evictions = 0, 0, 0
}

// isJoin2Shaped recognizes q(x,y,z) = S1(x,z), S2(y,z) up to renaming:
// two binary atoms sharing exactly one variable, which sits at the second
// position of both atoms.
func isJoin2Shaped(q *query.Query) bool {
	if q.NumAtoms() != 2 || q.NumVars() != 3 {
		return false
	}
	a, b := q.Atoms[0], q.Atoms[1]
	if a.Arity() != 2 || b.Arity() != 2 {
		return false
	}
	return a.Vars[1] == b.Vars[1] && a.Vars[0] != b.Vars[0]
}
