package repro

import (
	"strconv"
	"testing"

	"repro/internal/bounds"
	"repro/internal/codec"
	"repro/internal/data"
	"repro/internal/exp"
	"repro/internal/hashing"
	"repro/internal/hypercube"
	"repro/internal/join"
	"repro/internal/lp"
	"repro/internal/packing"
	"repro/internal/query"
	"repro/internal/rational"
	"repro/internal/rounds"
	"repro/internal/skew"
	"repro/internal/wcoj"
	"repro/internal/workload"
)

// One benchmark per experiment/ablation in DESIGN.md's index. Each runs
// the corresponding harness at Quick scale and reports whether the
// paper's predicted shape held (pass metric 1 = all internal checks
// passed). `go test -bench=.` therefore regenerates every table.

func benchExperiment(b *testing.B, run func(exp.Scale) exp.Table) {
	b.ReportAllocs()
	pass := 1.0
	for i := 0; i < b.N; i++ {
		t := run(exp.Quick)
		if !t.OK {
			pass = 0
		}
	}
	b.ReportMetric(pass, "pass")
}

func BenchmarkE1ExampleJoinShares(b *testing.B)    { benchExperiment(b, exp.E1ExampleJoinShares) }
func BenchmarkE2TrianglePackingTable(b *testing.B) { benchExperiment(b, exp.E2TrianglePackingTable) }
func BenchmarkE3MatchingBounds(b *testing.B)       { benchExperiment(b, exp.E3MatchingBounds) }
func BenchmarkE4HashingLemma(b *testing.B)         { benchExperiment(b, exp.E4HashingLemma) }
func BenchmarkE5SkewJoin(b *testing.B)             { benchExperiment(b, exp.E5SkewJoin) }
func BenchmarkE6ResidualBounds(b *testing.B)       { benchExperiment(b, exp.E6ResidualBounds) }
func BenchmarkE7BinCombGeneral(b *testing.B)       { benchExperiment(b, exp.E7BinCombGeneral) }
func BenchmarkE8ReplicationRate(b *testing.B)      { benchExperiment(b, exp.E8ReplicationRate) }
func BenchmarkE9SkewResilience(b *testing.B)       { benchExperiment(b, exp.E9SkewResilience) }
func BenchmarkE10CartesianProduct(b *testing.B)    { benchExperiment(b, exp.E10CartesianProduct) }
func BenchmarkE11KnowledgeBound(b *testing.B)      { benchExperiment(b, exp.E11KnowledgeBound) }
func BenchmarkE12RoundsTradeoff(b *testing.B)      { benchExperiment(b, exp.E12RoundsTradeoff) }
func BenchmarkA1ShareRounding(b *testing.B)        { benchExperiment(b, exp.A1ShareRounding) }
func BenchmarkA2ShareOptimizers(b *testing.B)      { benchExperiment(b, exp.A2ShareOptimizers) }
func BenchmarkA3Threshold(b *testing.B)            { benchExperiment(b, exp.A3Threshold) }
func BenchmarkA4OverweightFactor(b *testing.B)     { benchExperiment(b, exp.A4OverweightFactor) }
func BenchmarkA5SamplingStats(b *testing.B)        { benchExperiment(b, exp.A5SamplingStats) }
func BenchmarkA6LocalJoinAlgorithm(b *testing.B)   { benchExperiment(b, exp.A6LocalJoinAlgorithm) }

// Micro-benchmarks of the load-bearing primitives.

func BenchmarkShareLPTriangle(b *testing.B) {
	q := query.Triangle()
	bits := []float64{1 << 20, 1 << 18, 1 << 16}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		hypercube.OptimalExponents(q, bits, 64)
	}
}

func BenchmarkPackingVertexEnumeration(b *testing.B) {
	for _, q := range []*query.Query{query.Triangle(), query.Path(3), query.Cycle(4), query.Star(3)} {
		b.Run(q.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				packing.PK(q)
			}
		})
	}
}

func BenchmarkSimplexBeale(b *testing.B) {
	build := func() *lp.Problem {
		p := lp.NewProblem(4)
		p.Objective = rational.Vector{
			rational.New(-3, 4), rational.FromInt(150), rational.New(-1, 50), rational.FromInt(6),
		}
		p.AddConstraint(rational.Vector{rational.New(1, 4), rational.FromInt(-60), rational.New(-1, 25), rational.FromInt(9)}, lp.LE, rational.Zero())
		p.AddConstraint(rational.Vector{rational.New(1, 2), rational.FromInt(-90), rational.New(-1, 50), rational.FromInt(3)}, lp.LE, rational.Zero())
		p.AddConstraint(rational.Vector{rational.Zero(), rational.Zero(), rational.One(), rational.Zero()}, lp.LE, rational.One())
		return p
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if build().Solve().Status != lp.Optimal {
			b.Fatal("not optimal")
		}
	}
}

func BenchmarkHashingThroughput(b *testing.B) {
	f := hashing.NewFamily(1)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		f.Hash(i&3, int64(i), 64)
	}
}

// BenchmarkRouterDestinations measures the per-tuple cost of the HC
// routing hot path through the row-view entry point. The seed baseline
// (per-call coords/fixed allocation) measured 101.7 ns/op, 27 B/op,
// 2 allocs/op; PR 1's reusable-scratch odometer measured 44.6 ns/op; the
// precomputed-offset router must report 0 allocs/op and ≤ half PR 1's
// ns/op.
func BenchmarkRouterDestinations(b *testing.B) {
	q := query.Triangle()
	fam := hashing.NewFamily(2)
	r := hypercube.NewRouter(q, []int{4, 4, 4}, fam)
	tup := Tuple{12345, 67890}
	var dst []int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = r.Destinations("S1", tup, dst[:0])
	}
	if len(dst) != 4 {
		b.Fatalf("destinations = %d", len(dst))
	}
}

// BenchmarkRouterDestinationsAt measures the columnar entry point
// (mpc.ColumnRouter) the communication phase actually drives: destinations
// are computed from the relation's column strides with no row view at all.
func BenchmarkRouterDestinationsAt(b *testing.B) {
	q := query.Triangle()
	fam := hashing.NewFamily(2)
	r := hypercube.NewRouter(q, []int{4, 4, 4}, fam)
	rel := NewRelation("S1", 2, 1<<20)
	for i := int64(0); i < 1024; i++ {
		rel.Add((12345*i)%(1<<20), (67890*i)%(1<<20))
	}
	var dst []int
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst = r.DestinationsAt(rel, i&1023, dst[:0])
	}
	if len(dst) != 4 {
		b.Fatalf("destinations = %d", len(dst))
	}
}

// BenchmarkPlanCache measures Engine.Execute on a skewed two-relation
// join, with planning amortized by the plan cache (hit) versus replanned
// every call (miss).
func BenchmarkPlanCache(b *testing.B) {
	q := query.Join2()
	db := NewDatabase()
	db.Put(workload.Zipf("S1", 2000, 1<<20, 1, 1.6, 300, 1))
	db.Put(workload.Zipf("S2", 2000, 1<<20, 1, 1.6, 300, 2))
	b.Run("hit", func(b *testing.B) {
		e := NewEngine(64, 3)
		e.Execute(q, db) // prime the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Execute(q, db)
		}
		if e.CacheStats().Hits == 0 {
			b.Fatal("no cache hits")
		}
	})
	b.Run("miss", func(b *testing.B) {
		e := NewEngine(64, 3)
		e.DisablePlanCache = true
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e.Execute(q, db)
		}
	})
}

func BenchmarkLocalJoinTriangle(b *testing.B) {
	q := query.Triangle()
	db := workload.ForQuery([]workload.AtomSpec{
		{Name: "S1", Arity: 2, M: 2000, Domain: 300},
		{Name: "S2", Arity: 2, M: 2000, Domain: 300},
		{Name: "S3", Arity: 2, M: 2000, Domain: 300},
	}, 5)
	rels := join.FromDatabase(db)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		join.Join(q, rels)
	}
}

func BenchmarkHyperCubeEndToEnd(b *testing.B) {
	for _, p := range []int{16, 64, 256} {
		b.Run("p="+strconv.Itoa(p), func(b *testing.B) {
			q := query.Triangle()
			db := workload.ForQuery([]workload.AtomSpec{
				{Name: "S1", Arity: 2, M: 5000, Domain: 1 << 20},
				{Name: "S2", Arity: 2, M: 5000, Domain: 1 << 20},
				{Name: "S3", Arity: 2, M: 5000, Domain: 1 << 20},
			}, 7)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res := hypercube.Run(q, db, hypercube.Config{P: p, Seed: uint64(i), SkipJoin: true})
				b.ReportMetric(float64(res.Loads.MaxBits), "maxload-bits")
			}
		})
	}
}

func BenchmarkSkewJoinEndToEnd(b *testing.B) {
	db := NewDatabase()
	db.Put(workload.Zipf("S1", 5000, 1<<20, 1, 1.6, 500, 1))
	db.Put(workload.Zipf("S2", 5000, 1<<20, 1, 1.6, 500, 2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res := skew.RunJoin(db, skew.JoinConfig{P: 64, Seed: uint64(i), SkipJoin: true})
		b.ReportMetric(float64(res.MaxVirtualBits), "maxload-bits")
	}
}

func BenchmarkResidualLowerBound(b *testing.B) {
	db := NewDatabase()
	db.Put(workload.Zipf("S1", 3000, 1<<20, 1, 1.6, 300, 1))
	db.Put(workload.Zipf("S2", 3000, 1<<20, 1, 1.6, 300, 2))
	q := query.Join2()
	x := query.NewVarSet(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bounds.ResidualLower(q, x, db, 64)
	}
}

func BenchmarkWCOJvsBinaryJoinHard(b *testing.B) {
	// The classic AGM-hard triangle instance: every relation is a double
	// star {0}×[n] ∪ [n]×{0}, so EVERY pairwise join is quadratic (no join
	// order escapes), while the triangle output is only Θ(n). The generic
	// worst-case-optimal join runs near the output size.
	const n = 400
	mk := func(name string) *data.Relation {
		r := NewRelation(name, 2, 1<<20)
		for i := int64(1); i <= n; i++ {
			r.Add(0, i)
			r.Add(i, 0)
		}
		r.Add(0, 0)
		return r
	}
	rels := map[string]*data.Relation{"S1": mk("S1"), "S2": mk("S2"), "S3": mk("S3")}
	q := query.Triangle()
	b.Run("wcoj", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wcoj.Join(q, rels)
		}
	})
	b.Run("binary", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			join.Join(q, rels)
		}
	})
}

func BenchmarkCodecEncodeDecode(b *testing.B) {
	rel := workload.Uniform("S", 2, 10000, 1<<20, 1)
	b.SetBytes(rel.Bits() / 8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire := codec.Encode(rel)
		if _, err := codec.Decode("S", wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGeneralSkewSweepP(b *testing.B) {
	for _, p := range []int{16, 64} {
		b.Run("p="+strconv.Itoa(p), func(b *testing.B) {
			q := query.Join2()
			db := NewDatabase()
			db.Put(workload.Zipf("S1", 3000, 1<<20, 1, 1.7, 400, 1))
			db.Put(workload.Zipf("S2", 3000, 1<<20, 1, 1.7, 400, 2))
			for i := 0; i < b.N; i++ {
				res := skew.RunGeneral(q, db, skew.GeneralConfig{P: p, Seed: uint64(i), SkipJoin: true})
				b.ReportMetric(float64(res.NumBinCombos), "combos")
			}
		})
	}
}

// BenchmarkMultiRoundEndToEnd measures the pipelined multi-round path
// (plan lowering + exec.RunPipeline with resident intermediates) on the
// two canonical instances of BENCH_rounds.json. The pre-refactor loop
// (fresh cluster per round, intermediates re-ingested through a
// data.Database) measured 5.49 ms/op on triangle-matchings and 4543 ms/op
// on the skew-aware zipf join on the recording machine; the pipelined path
// must stay at or below those.
func BenchmarkMultiRoundEndToEnd(b *testing.B) {
	b.Run("triangle-matchings", func(b *testing.B) {
		q := query.Triangle()
		db := NewDatabase()
		for j, name := range []string{"S1", "S2", "S3"} {
			db.Put(workload.Matching(name, 2, 5000, 1<<20, int64(j+1)))
		}
		plan := rounds.BuildPlan(q)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := rounds.Run(plan, db, rounds.Config{P: 64, Seed: uint64(i)})
			b.ReportMetric(float64(res.SumMaxBits), "sum-max-bits")
		}
	})
	b.Run("zipf-join2-skew-aware", func(b *testing.B) {
		q := query.Join2()
		db := NewDatabase()
		db.Put(workload.Zipf("S1", 5000, 1<<20, 1, 1.6, 500, 1))
		db.Put(workload.Zipf("S2", 5000, 1<<20, 1, 1.6, 500, 2))
		plan := rounds.BuildPlan(q)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res := rounds.Run(plan, db, rounds.Config{P: 64, Seed: uint64(i), SkewAware: true})
			b.ReportMetric(float64(res.SumMaxBits), "sum-max-bits")
		}
	})
	// Cached multi-round plans through the engine: lowering amortized away.
	b.Run("engine-cached", func(b *testing.B) {
		q := query.Triangle()
		db := NewDatabase()
		for j, name := range []string{"S1", "S2", "S3"} {
			db.Put(workload.Matching(name, 2, 5000, 1<<20, int64(j+1)))
		}
		force := StrategyMultiRound
		e := NewEngine(64, 3)
		e.ForceStrategy = &force
		e.Execute(q, db) // prime the cache
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			e.Execute(q, db)
		}
	})
}
