package exec

import (
	"testing"

	"repro/internal/data"
	"repro/internal/mpc"
)

func testDB() *data.Database {
	db := data.NewDatabase()
	r := data.NewRelation("S", 2, 16)
	for i := int64(0); i < 8; i++ {
		r.Add(i, (i+1)%16)
	}
	db.Put(r)
	return db
}

// modRouter sends tuple (a,b) to server a mod p.
func modRouter(p int) mpc.Router {
	return mpc.RouterFunc(func(rel string, t data.Tuple, dst []int) []int {
		return append(dst, int(t[0])%p)
	})
}

func TestRunRoutesComputesAndAccounts(t *testing.T) {
	db := testDB()
	plan := &PhysicalPlan{
		Strategy: "test",
		Virtual:  4,
		Physical: 2,
		Router:   modRouter(4),
		Local: func(s *mpc.Server) []data.Tuple {
			var out []data.Tuple
			s.Fragment("S").Each(func(_ int, tu data.Tuple) bool {
				out = append(out, append(data.Tuple(nil), tu...))
				return true
			})
			return out
		},
	}
	res, _ := Run(plan, db, Config{})
	if len(res.Output) != 8 {
		t.Errorf("output = %d tuples, want 8", len(res.Output))
	}
	if len(res.PerServerBits) != 4 {
		t.Fatalf("PerServerBits = %d entries, want 4", len(res.PerServerBits))
	}
	// 8 tuples round-robin over 4 virtual servers: 2 tuples each.
	bpt := db.MustGet("S").BitsPerTuple()
	for id, bits := range res.PerServerBits {
		if bits != 2*bpt {
			t.Errorf("server %d: %d bits, want %d", id, bits, 2*bpt)
		}
	}
	if res.MaxVirtualBits != 2*bpt {
		t.Errorf("MaxVirtualBits = %d, want %d", res.MaxVirtualBits, 2*bpt)
	}
	// Virtual 0,2 → physical 0; 1,3 → physical 1: 4 tuples per machine.
	if res.MaxPhysicalBits != 4*bpt {
		t.Errorf("MaxPhysicalBits = %d, want %d", res.MaxPhysicalBits, 4*bpt)
	}
	if res.Loads.TotalBits != 8*bpt {
		t.Errorf("TotalBits = %d, want %d", res.Loads.TotalBits, 8*bpt)
	}
	if res.Loads.Replication < 0.99 || res.Loads.Replication > 1.01 {
		t.Errorf("Replication = %f, want 1", res.Loads.Replication)
	}
}

func TestRunSkipCompute(t *testing.T) {
	db := testDB()
	called := false
	plan := &PhysicalPlan{
		Strategy: "test",
		Virtual:  2,
		Physical: 2,
		Router:   modRouter(2),
		Local: func(s *mpc.Server) []data.Tuple {
			called = true
			return nil
		},
	}
	res, _ := Run(plan, db, Config{SkipCompute: true})
	if called {
		t.Error("local compute ran despite SkipCompute")
	}
	if len(res.Output) != 0 {
		t.Error("output non-empty despite SkipCompute")
	}
	if res.MaxVirtualBits == 0 {
		t.Error("loads not accounted under SkipCompute")
	}
}

func TestRunDedup(t *testing.T) {
	db := testDB()
	plan := &PhysicalPlan{
		Strategy: "test",
		Virtual:  3,
		Physical: 3,
		// Broadcast: every server holds every tuple, so without Dedup the
		// output would triple.
		Router: mpc.RouterFunc(func(rel string, t data.Tuple, dst []int) []int {
			return append(dst, 0, 1, 2)
		}),
		Local: func(s *mpc.Server) []data.Tuple {
			var out []data.Tuple
			s.Fragment("S").Each(func(_ int, tu data.Tuple) bool {
				out = append(out, append(data.Tuple(nil), tu...))
				return true
			})
			return out
		},
		Dedup: true,
	}
	res, _ := Run(plan, db, Config{})
	if len(res.Output) != 8 {
		t.Errorf("deduped output = %d tuples, want 8", len(res.Output))
	}
}

func TestRunPanicsOnBadPlan(t *testing.T) {
	for _, plan := range []*PhysicalPlan{
		{Strategy: "bad", Virtual: 0, Physical: 1, Router: modRouter(1)},
		{Strategy: "bad", Virtual: 1, Physical: 0, Router: modRouter(1)},
		// Router emits an out-of-range destination.
		{Strategy: "bad", Virtual: 1, Physical: 1, Router: modRouter(5)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("plan %+v: expected panic", plan)
				}
			}()
			Run(plan, testDB(), Config{})
		}()
	}
}

func TestRunScratchReuse(t *testing.T) {
	db := testDB()
	plan := &PhysicalPlan{
		Strategy: "test",
		Virtual:  4,
		Physical: 2,
		Router:   modRouter(4),
	}
	sc := new(Scratch)
	r1, _ := Run(plan, db, Config{Scratch: sc})
	first := &r1.PerServerBits[0]
	want := append([]int64(nil), r1.PerServerBits...)
	r2, _ := Run(plan, db, Config{Scratch: sc})
	if &r2.PerServerBits[0] != first {
		t.Error("scratch-backed PerServerBits was reallocated on the second run")
	}
	for i, b := range r2.PerServerBits {
		if b != want[i] {
			t.Errorf("server %d: %d bits on rerun, want %d", i, b, want[i])
		}
	}
	// A smaller plan reuses the same backing array, zeroed.
	small := &PhysicalPlan{Strategy: "test", Virtual: 2, Physical: 2, Router: modRouter(2)}
	r3, _ := Run(small, db, Config{Scratch: sc})
	if len(r3.PerServerBits) != 2 {
		t.Fatalf("PerServerBits = %d entries, want 2", len(r3.PerServerBits))
	}
	if r3.MaxVirtualBits == 0 {
		t.Error("loads missing after scratch reuse on a smaller plan")
	}
}

// pipelineStage builds a test stage: route S by t[0] mod v, then keep each
// server's fragment under outName with +1 applied to column 0.
func incStage(in string, out string, v int) Stage {
	return Stage{
		Plan: &PhysicalPlan{
			Strategy: "test", Virtual: v, Physical: 2,
			Router: mpc.RouterFunc(func(rel string, t data.Tuple, dst []int) []int {
				return append(dst, int(t[0])%v)
			}),
		},
		LocalFragment: func(s *mpc.Server) *data.Relation {
			f := s.Fragment(in)
			if f == nil || f.Size() == 0 {
				return nil
			}
			o := data.NewRelation(out, f.Arity, f.Domain)
			for i := 0; i < f.Size(); i++ {
				o.Add(f.At(i, 0)+1, f.At(i, 1))
			}
			return o
		},
		OutName: out, OutArity: 2, OutDomain: 16,
	}
}

func TestRunPipelineResidentIntermediates(t *testing.T) {
	db := testDB() // S: (i, (i+1)%16) for i in 0..7, domain 16
	pl := &Pipeline{
		Strategy: "test",
		Physical: 2,
		Stages:   []Stage{incStage("S", "t1", 4), incStage("t1", "t2", 3)},
	}
	pl.Stages[0].Base = []string{"S"}
	pl.Stages[1].Resident = []string{"t1"}
	res, _ := RunPipeline(pl, db, Config{})
	// Both stages increment column 0: output is (i+2, (i+1)%16).
	if res.Output.Size() != 8 {
		t.Fatalf("output = %d tuples, want 8", res.Output.Size())
	}
	seen := make(map[int64]int64)
	for i := 0; i < 8; i++ {
		seen[res.Output.At(i, 0)] = res.Output.At(i, 1)
	}
	for i := int64(0); i < 8; i++ {
		if got, ok := seen[i+2]; !ok || got != (i+1)%16 {
			t.Errorf("output missing (%d,%d); got %v", i+2, (i+1)%16, seen)
		}
	}
	if len(res.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(res.Rounds))
	}
	// Stage 2's input arrived server-to-server, never via the coordinator:
	// the intermediate is counted resident and never entered the database.
	if res.Rounds[1].ResidentTuples != 8 {
		t.Errorf("round 2 resident tuples = %d, want 8", res.Rounds[1].ResidentTuples)
	}
	if db.Get("t1") != nil || db.Get("t2") != nil {
		t.Error("pipeline intermediates round-tripped through the database")
	}
	// Per-round load deltas: each round delivered all 8 tuples exactly once.
	bpt := db.MustGet("S").BitsPerTuple()
	for i, rl := range res.Rounds {
		if rl.TotalBits != 8*bpt {
			t.Errorf("round %d TotalBits = %d, want %d", i, rl.TotalBits, 8*bpt)
		}
		if rl.Intermediate != 8 {
			t.Errorf("round %d intermediate = %d, want 8", i, rl.Intermediate)
		}
	}
	if res.SumMaxBits != res.Rounds[0].MaxBits+res.Rounds[1].MaxBits {
		t.Error("SumMaxBits is not the sum of per-round maxima")
	}
}

func TestRunPipelineEmptyOutputTyped(t *testing.T) {
	db := testDB()
	st := incStage("S", "t1", 4)
	st.Base = []string{"S"}
	st.LocalFragment = func(s *mpc.Server) *data.Relation { return nil }
	pl := &Pipeline{Strategy: "test", Physical: 2, Stages: []Stage{st}}
	res, _ := RunPipeline(pl, db, Config{})
	if res.Output == nil || res.Output.Size() != 0 || res.Output.Arity != 2 {
		t.Errorf("empty pipeline output not typed: %+v", res.Output)
	}
}

func TestRunPipelinePanicsOnBadStages(t *testing.T) {
	db := testDB()
	good := incStage("S", "t1", 4)
	good.Base = []string{"S"}
	for name, pl := range map[string]*Pipeline{
		"no stages":   {Strategy: "bad", Physical: 2},
		"no physical": {Strategy: "bad", Physical: 0, Stages: []Stage{good}},
		"no local": {Strategy: "bad", Physical: 2, Stages: []Stage{{
			Plan: good.Plan, Base: []string{"S"}, OutName: "t1", OutArity: 2, OutDomain: 16,
		}}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			RunPipeline(pl, db, Config{})
		}()
	}
}
