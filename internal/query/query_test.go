package query

import (
	"math/rand"
	"strings"
	"testing"
)

func TestParseBasic(t *testing.T) {
	q, err := Parse("C3(x,y,z) = S1(x,y), S2(y,z), S3(z,x)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "C3" || q.NumVars() != 3 || q.NumAtoms() != 3 {
		t.Errorf("parsed %v", q)
	}
	if q.TotalArity() != 6 {
		t.Errorf("TotalArity = %d, want 6", q.TotalArity())
	}
	if got := q.String(); got != "C3(x,y,z) = S1(x,y), S2(y,z), S3(z,x)" {
		t.Errorf("String = %q", got)
	}
}

func TestParseDatalogSeparator(t *testing.T) {
	q, err := Parse("q(x,y,z) :- S1(x,z), S2(y,z)")
	if err != nil {
		t.Fatal(err)
	}
	if q.NumAtoms() != 2 || q.Atoms[0].Vars[1] != 2 {
		t.Errorf("parsed %v", q)
	}
}

func TestParseWhitespaceTolerant(t *testing.T) {
	if _, err := Parse("  q( x , y )  =  R( x , y ) "); err != nil {
		t.Error(err)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"no separator here",
		"q(x = R(x)",
		"q(x) = R(y)",         // body var not in head
		"q(x,x) = R(x)",       // duplicate head var
		"q(x,y) = R(x)",       // unused head var
		"q(x) = R(x), R(x)",   // self-join
		"q(x) = R(x,x)",       // repeated var in atom
		"q(x) = (x)",          // missing atom name
		"q(x) = R(x,)",        // empty var
		"q(1x) = R(1x)",       // bad identifier
		"q() = R()",           // no atoms with no vars is ok? head empty: validate
		"q(x) = ",             // empty body
		"q(x) = R(x), , S(x)", // empty atom
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			// "q() = R()" parses to a nullary query; that is actually valid
			// structurally, so skip it.
			if c == "q() = R()" {
				continue
			}
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse did not panic")
		}
	}()
	MustParse("garbage")
}

func TestValidateOutOfRange(t *testing.T) {
	q := &Query{Name: "bad", Vars: []string{"x"}, Atoms: []Atom{{Name: "R", Vars: []int{5}}}}
	if err := q.Validate(); err == nil || !strings.Contains(err.Error(), "out-of-range") {
		t.Errorf("err = %v", err)
	}
}

func TestAtomsWithVar(t *testing.T) {
	q := Triangle()
	got := q.AtomsWithVar(0) // x1 in S1 and S3
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("AtomsWithVar(0) = %v", got)
	}
}

func TestVarAndAtomIndex(t *testing.T) {
	q := Join2()
	if q.VarIndex("z") != 2 || q.VarIndex("nope") != -1 {
		t.Error("VarIndex wrong")
	}
	if q.AtomIndex("S2") != 1 || q.AtomIndex("nope") != -1 {
		t.Error("AtomIndex wrong")
	}
}

func TestConnected(t *testing.T) {
	if Cartesian(2).Connected() {
		t.Error("cartesian product should be disconnected")
	}
	if !Triangle().Connected() || !Join2().Connected() || !Path(3).Connected() {
		t.Error("connected queries misreported")
	}
	if !Cartesian(1).Connected() {
		t.Error("single atom is connected")
	}
}

func TestCatalogValidates(t *testing.T) {
	for name, q := range Catalog() {
		if err := q.Validate(); err != nil {
			t.Errorf("catalog query %s invalid: %v", name, err)
		}
	}
	names := CatalogNames()
	if len(names) != len(Catalog()) {
		t.Error("CatalogNames length mismatch")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("CatalogNames not sorted")
		}
	}
}

func TestConstructors(t *testing.T) {
	if got := Path(3).String(); got != "L3(x1,x2,x3,x4) = S1(x1,x2), S2(x2,x3), S3(x3,x4)" {
		t.Errorf("Path(3) = %q", got)
	}
	if got := Star(2).String(); got != "Star2(z,x1,x2) = S1(z,x1), S2(z,x2)" {
		t.Errorf("Star(2) = %q", got)
	}
	if got := Cycle(4).NumAtoms(); got != 4 {
		t.Errorf("Cycle(4) atoms = %d", got)
	}
	if got := Cartesian(3).TotalArity(); got != 3 {
		t.Errorf("Cartesian(3) arity = %d", got)
	}
}

func TestConstructorPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Cartesian(0) },
		func() { Path(0) },
		func() { Cycle(2) },
		func() { Star(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("constructor did not panic on bad arg")
				}
			}()
			f()
		}()
	}
}

func TestResidualJoin2(t *testing.T) {
	// q(x,y,z) = S1(x,z), S2(y,z); residual on {z} is S1(x), S2(y).
	q := Join2()
	res, back := q.Residual(NewVarSet(2))
	if res.NumVars() != 2 {
		t.Fatalf("residual vars = %v", res.Vars)
	}
	if len(back) != 2 || back[0] != 0 || back[1] != 1 {
		t.Errorf("back-map = %v", back)
	}
	if res.Atoms[0].Arity() != 1 || res.Atoms[1].Arity() != 1 {
		t.Errorf("residual = %v", res)
	}
}

func TestResidualTriangle(t *testing.T) {
	// C3 residual on {x1}: S1(x2), S2(x2,x3), S3(x3) — Example 4.8.
	q := Triangle()
	res, _ := q.Residual(NewVarSet(0))
	if res.Atoms[0].Arity() != 1 || res.Atoms[1].Arity() != 2 || res.Atoms[2].Arity() != 1 {
		t.Errorf("residual arities wrong: %v", res)
	}
}

func TestResidualAllVars(t *testing.T) {
	q := Join2()
	res, back := q.Residual(NewVarSet(0, 1, 2))
	if res.NumVars() != 0 || len(back) != 0 {
		t.Errorf("residual of all vars should be empty-headed: %v", res)
	}
	for _, a := range res.Atoms {
		if a.Arity() != 0 {
			t.Errorf("atom %s should be nullary", a.Name)
		}
	}
}

func TestResidualSharesNoStorage(t *testing.T) {
	q := Join2()
	res, _ := q.Residual(NewVarSet(2))
	res.Atoms[0].Name = "MUT"
	if q.Atoms[0].Name != "S1" {
		t.Error("residual shares atom storage with original")
	}
}

func TestVarSet(t *testing.T) {
	s := NewVarSet(3, 1, 2)
	if !s.Contains(1) || s.Contains(0) {
		t.Error("Contains wrong")
	}
	got := s.Sorted()
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("Sorted = %v", got)
	}
	inter := s.Intersect(NewVarSet(2, 3, 9))
	if len(inter) != 2 || !inter.Contains(2) || !inter.Contains(3) {
		t.Errorf("Intersect = %v", inter)
	}
}

func TestHasVar(t *testing.T) {
	a := Atom{Name: "R", Vars: []int{0, 2}}
	if !a.HasVar(2) || a.HasVar(1) {
		t.Error("HasVar wrong")
	}
}

func TestRandomQueriesValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		q := Random(rng, 5, 4)
		if err := q.Validate(); err != nil {
			t.Fatalf("trial %d: %v (query %s)", i, err, q)
		}
		if q.NumVars() > 5 {
			t.Fatalf("too many vars: %s", q)
		}
		for _, a := range q.Atoms {
			if a.Arity() > 3 {
				t.Fatalf("arity too large: %s", q)
			}
		}
	}
}

func TestRandomPanicsOnBadLimits(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Random(rand.New(rand.NewSource(1)), 0, 1)
}

// Property: String/Parse round-trips every random query.
func TestStringParseRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 100; i++ {
		q := Random(rng, 5, 4)
		back, err := Parse(q.String())
		if err != nil {
			t.Fatalf("Parse(String()) failed for %s: %v", q, err)
		}
		if back.String() != q.String() {
			t.Fatalf("round trip changed query: %s vs %s", q, back)
		}
	}
}
