package mpc

import (
	"errors"
	"testing"

	"repro/internal/data"
)

// findFaultSeed scans for a seed whose fault schedule satisfies ok.
// Schedules are pure functions of the seed, so the search is deterministic.
func findFaultSeed(t *testing.T, mk func(seed uint64) *Faults, ok func(*Faults) bool) uint64 {
	t.Helper()
	for seed := uint64(0); seed < 10000; seed++ {
		if ok(mk(seed)) {
			return seed
		}
	}
	t.Fatal("no seed under 10000 produces the wanted fault schedule")
	return 0
}

// TestAttemptPredicates pins the attempt dimension's contract: attempt 1 is
// the legacy schedule (old seeds keep their meaning), further attempts are
// independent deterministic draws.
func TestAttemptPredicates(t *testing.T) {
	f := &Faults{Seed: 42, TornRound: 0.5, ComputeFail: 0.5, Straggler: 0.5}
	for round := uint64(1); round < 50; round++ {
		if f.WouldTearRound(round) != f.WouldTearRoundAttempt(round, 1) {
			t.Fatalf("round %d: WouldTearRound != WouldTearRoundAttempt(·, 1)", round)
		}
		if f.WouldFailCompute(round, 3) != f.WouldFailComputeAttempt(round, 1, 3) {
			t.Fatalf("phase %d: WouldFailCompute != WouldFailComputeAttempt(·, 1, ·)", round)
		}
		if f.WouldStraggle(round, 3) != f.WouldStraggleAttempt(round, 1, 3) {
			t.Fatalf("round %d: WouldStraggle != WouldStraggleAttempt(·, 1, ·)", round)
		}
	}
	// Attempts draw independently: across many rounds, some torn first
	// attempt must pair with a clean second attempt and vice versa.
	healed, relapsed := false, false
	for round := uint64(1); round < 200; round++ {
		a1, a2 := f.WouldTearRoundAttempt(round, 1), f.WouldTearRoundAttempt(round, 2)
		healed = healed || (a1 && !a2)
		relapsed = relapsed || (!a1 && a2)
	}
	if !healed || !relapsed {
		t.Fatalf("attempt dimension not independent: healed=%v relapsed=%v", healed, relapsed)
	}
}

// snapshotCluster captures per-server loads and sorted fragments for exact
// state comparison around a torn round.
type serverSnap struct {
	bits, tuples int64
	frags        map[string]*data.Relation
}

func snapshotCluster(c *Cluster) []serverSnap {
	snaps := make([]serverSnap, len(c.Servers))
	for i, s := range c.Servers {
		sn := serverSnap{bits: s.BitsIn, tuples: s.TuplesIn, frags: make(map[string]*data.Relation)}
		for name, f := range s.Received {
			sn.frags[name] = sortedFragment(f)
		}
		snaps[i] = sn
	}
	return snaps
}

func assertSnapshotUnchanged(t *testing.T, want []serverSnap, c *Cluster) {
	t.Helper()
	for i, s := range c.Servers {
		w := want[i]
		if s.BitsIn != w.bits || s.TuplesIn != w.tuples {
			t.Fatalf("server %d loads changed across torn round: (%d, %d) vs (%d, %d)",
				i, s.BitsIn, s.TuplesIn, w.bits, w.tuples)
		}
		if len(s.Received) != len(w.frags) {
			t.Fatalf("server %d fragment set changed: %d vs %d relations", i, len(s.Received), len(w.frags))
		}
		for name, wf := range w.frags {
			gf := s.Received[name]
			if gf == nil {
				t.Fatalf("server %d lost fragment %q to a torn round", i, name)
			}
			g := sortedFragment(gf)
			if g.Size() != wf.Size() {
				t.Fatalf("server %d fragment %q resized: %d vs %d", i, name, g.Size(), wf.Size())
			}
			for col := 0; col < wf.Arity; col++ {
				gc, wc := g.Column(col), wf.Column(col)
				for row := range wc {
					if gc[row] != wc[row] {
						t.Fatalf("server %d fragment %q mutated by torn round (col %d row %d)", i, name, col, row)
					}
				}
			}
		}
	}
}

// TestTornRoundLeavesStateUntouched drives the transactional invariant
// directly: a second round that tears must leave every fragment and load
// counter from the first round bit-identical, and a replay of the same
// round must land exactly where a fault-free run would have.
func TestTornRoundLeavesStateUntouched(t *testing.T) {
	mk := func(seed uint64) *Faults { return &Faults{Seed: seed, TornRound: 0.5} }
	seed := findFaultSeed(t, mk, func(f *Faults) bool {
		return !f.WouldTearRoundAttempt(1, 1) &&
			f.WouldTearRoundAttempt(2, 1) && !f.WouldTearRoundAttempt(2, 2)
	})
	db1 := singleRel(300)
	db2 := data.NewDatabase()
	r := data.NewRelation("T", 1, 1024)
	for i := int64(0); i < 200; i++ {
		r.Add(i * 3 % 1024)
	}
	db2.Put(r)
	route1 := RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, int(tu[0]%8))
	})
	route2 := RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, int(tu[0]%5), int(tu[0]%7))
	})

	c := NewCluster(8)
	c.Faults = mk(seed)
	if err := c.Round(db1, route1); err != nil {
		t.Fatalf("round 1: %v", err)
	}
	before := snapshotCluster(c)
	err := c.Round(db2, route2)
	if !errors.Is(err, ErrTornRound) {
		t.Fatalf("round 2 err = %v, want ErrTornRound", err)
	}
	assertSnapshotUnchanged(t, before, c)

	// Replay round 2 in place; the fault schedule's attempt 2 is clean.
	c.MarkReplay()
	if err := c.Round(db2, route2); err != nil {
		t.Fatalf("replayed round 2: %v", err)
	}
	oracle := NewCluster(8)
	if err := oracle.Round(db1, route1); err != nil {
		t.Fatal(err)
	}
	if err := oracle.Round(db2, route2); err != nil {
		t.Fatal(err)
	}
	assertClustersEquivalent(t, oracle, c)
}

// TestShuffleResidentRestoresOnTear: a torn resident shuffle must re-attach
// the detached fragments (state identical to pre-shuffle) and a replay must
// match the fault-free shuffle exactly.
func TestShuffleResidentRestoresOnTear(t *testing.T) {
	mk := func(seed uint64) *Faults { return &Faults{Seed: seed, TornRound: 0.5} }
	seed := findFaultSeed(t, mk, func(f *Faults) bool {
		return !f.WouldTearRoundAttempt(1, 1) &&
			f.WouldTearRoundAttempt(2, 1) && !f.WouldTearRoundAttempt(2, 2)
	})
	db := singleRel(1000)
	route1 := RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, int(tu[0]%10))
	})
	route2 := RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, int(tu[0]/100))
	})

	c := NewCluster(10)
	c.Faults = mk(seed)
	if err := c.Round(db, route1); err != nil {
		t.Fatalf("round 1: %v", err)
	}
	before := snapshotCluster(c)
	err := c.ShuffleResident(route2, "S")
	if !errors.Is(err, ErrTornRound) {
		t.Fatalf("shuffle err = %v, want ErrTornRound", err)
	}
	assertSnapshotUnchanged(t, before, c)

	c.MarkReplay()
	if err := c.ShuffleResident(route2, "S"); err != nil {
		t.Fatalf("replayed shuffle: %v", err)
	}
	oracle := NewCluster(10)
	if err := oracle.Round(db, route1); err != nil {
		t.Fatal(err)
	}
	if err := oracle.ShuffleResident(route2, "S"); err != nil {
		t.Fatal(err)
	}
	assertClustersEquivalent(t, oracle, c)
}

// TestRecomputeKeepsSurvivorOutputs: a compute phase with failing servers
// keeps the failed servers' input fragments for recompute, and the
// per-server recompute touches only the listed servers.
func TestRecomputeKeepsSurvivorOutputs(t *testing.T) {
	mk := func(seed uint64) *Faults { return &Faults{Seed: seed, ComputeFail: 0.3} }
	seed := findFaultSeed(t, mk, func(f *Faults) bool {
		n := 0
		for s := 0; s < 8; s++ {
			if f.WouldFailComputeAttempt(1, 2, s) {
				return false
			}
			if f.WouldFailComputeAttempt(1, 1, s) {
				n++
			}
		}
		return n >= 1 && n < 8
	})
	db := singleRel(160)
	c := NewCluster(8)
	c.Faults = mk(seed)
	if err := c.Round(db, RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, int(tu[0]%8))
	})); err != nil {
		t.Fatal(err)
	}
	calls := make([]int, 8)
	local := func(s *Server) *data.Relation {
		calls[s.ID]++
		in := s.Fragment("S")
		out := data.NewRelation("out", 1, in.Domain)
		for _, v := range in.Column(0) {
			out.Add(v)
		}
		return out
	}
	failed := c.ComputeResidentRecover(local)
	if len(failed) == 0 {
		t.Fatal("schedule promised at least one failing server")
	}
	for _, id := range failed {
		if c.Servers[id].Fragment("S") == nil {
			t.Fatalf("failed server %d lost its input fragment before recompute", id)
		}
	}
	if again := c.RecomputeResident(failed, local); len(again) != 0 {
		t.Fatalf("recompute attempt 2 still failing servers %v", again)
	}
	for id, s := range c.Servers {
		if s.Fragment("out") == nil {
			t.Fatalf("server %d missing output after recovery", id)
		}
		if s.Fragment("S") != nil {
			t.Fatalf("server %d still holds the consumed input after recovery", id)
		}
		// An injected failure aborts before the local function runs, so every
		// server — survivor or recovered — computes exactly once.
		if calls[id] != 1 {
			t.Fatalf("server %d computed %d times, want 1", id, calls[id])
		}
	}
}
