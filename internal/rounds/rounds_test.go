package rounds

import (
	"testing"

	"repro/internal/data"
	"repro/internal/join"
	"repro/internal/query"
	"repro/internal/workload"
)

func dbFor(q *query.Query, m int, domain int64, seed int64) *data.Database {
	specs := make([]workload.AtomSpec, q.NumAtoms())
	for j, a := range q.Atoms {
		d := domain
		if a.Arity() == 1 && d < int64(4*m) {
			d = int64(4 * m) // keep unary relations sparse enough to sample
		}
		specs[j] = workload.AtomSpec{Name: a.Name, Arity: a.Arity(), M: m, Domain: d}
	}
	return workload.ForQuery(specs, seed)
}

func TestBuildPlanShapes(t *testing.T) {
	cases := []struct {
		q         *query.Query
		steps     int
		cartesian int // steps with no join vars
	}{
		{query.Join2(), 1, 0},
		{query.Triangle(), 2, 0},
		{query.Path(3), 2, 0},
		{query.Star(3), 2, 0},
		{query.Cartesian(2), 1, 1},
	}
	for _, c := range cases {
		plan := BuildPlan(c.q)
		if len(plan.Steps) != c.steps {
			t.Errorf("%s: %d steps, want %d", c.q.Name, len(plan.Steps), c.steps)
		}
		cart := 0
		for _, st := range plan.Steps {
			if len(st.JoinVars) == 0 {
				cart++
			}
		}
		if cart != c.cartesian {
			t.Errorf("%s: %d cartesian steps, want %d", c.q.Name, cart, c.cartesian)
		}
		// Final schema covers all variables.
		last := plan.Steps[len(plan.Steps)-1]
		if len(last.OutVars) != c.q.NumVars() {
			t.Errorf("%s: final schema %v misses variables", c.q.Name, last.OutVars)
		}
	}
}

func TestBuildPlanConnectedAvoidsCartesian(t *testing.T) {
	plan := BuildPlan(query.Cycle(4))
	for i, st := range plan.Steps {
		if len(st.JoinVars) == 0 {
			t.Errorf("step %d of C4 plan is cartesian", i)
		}
	}
}

func TestRunMatchesReference(t *testing.T) {
	for _, q := range []*query.Query{
		query.Join2(), query.Triangle(), query.Path(3), query.Star(2), query.Cartesian(2), query.Cycle(4),
	} {
		db := dbFor(q, 250, 40, 7)
		want := join.Join(q, join.FromDatabase(db))
		for _, skewAware := range []bool{false, true} {
			res := Run(BuildPlan(q), db, Config{P: 8, Seed: 3, SkewAware: skewAware})
			if !join.EqualTupleSets(res.Output, want) {
				t.Errorf("%s skewAware=%v: %d vs %d tuples",
					q.Name, skewAware, len(res.Output), len(want))
			}
		}
	}
}

func TestRunHeadOrderCorrect(t *testing.T) {
	// Query whose plan order differs from head order: verify column
	// permutation back into head order.
	q := query.MustParse("q(a,b,c) = R(b,c), S(a,b)")
	db := data.NewDatabase()
	r := data.NewRelation("R", 2, 100)
	r.Add(1, 2)
	s := data.NewRelation("S", 2, 100)
	s.Add(9, 1)
	db.Put(r)
	db.Put(s)
	res := Run(BuildPlan(q), db, Config{P: 4, Seed: 1})
	if len(res.Output) != 1 {
		t.Fatalf("output = %v", res.Output)
	}
	// Head (a,b,c) = (9,1,2).
	got := res.Output[0]
	if got[0] != 9 || got[1] != 1 || got[2] != 2 {
		t.Errorf("head order wrong: %v", got)
	}
}

func TestRunRoundsAccounting(t *testing.T) {
	q := query.Triangle()
	db := dbFor(q, 300, 50, 5)
	res := Run(BuildPlan(q), db, Config{P: 8, Seed: 2})
	if len(res.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(res.Rounds))
	}
	var sum int64
	var maxR int64
	for _, r := range res.Rounds {
		if r.MaxBits <= 0 || r.TotalBits < r.MaxBits {
			t.Errorf("bad round load %+v", r)
		}
		sum += r.MaxBits
		if r.MaxBits > maxR {
			maxR = r.MaxBits
		}
	}
	if res.SumMaxBits != sum || res.MaxBitsPerRound != maxR {
		t.Error("aggregate load bookkeeping wrong")
	}
}

func TestSkewAwareBeatsPlainOnSkewedStep(t *testing.T) {
	// Join2 with a single shared heavy z: the plain hash join's round has
	// Ω(m) max load; the skew-aware round splits it across a grid.
	q := query.Join2()
	db := data.NewDatabase()
	db.Put(workload.SingleValue("S1", 2, 1000, 100000, 1, 7, 1))
	db.Put(workload.SingleValue("S2", 2, 1000, 100000, 1, 7, 2))
	plan := BuildPlan(q)
	plain := Run(plan, db, Config{P: 64, Seed: 3})
	aware := Run(plan, db, Config{P: 64, Seed: 3, SkewAware: true})
	if !join.EqualTupleSets(plain.Output, aware.Output) {
		t.Fatal("modes disagree on output")
	}
	if aware.Rounds[0].MaxBits*4 > plain.Rounds[0].MaxBits {
		t.Errorf("skew-aware round (%d bits) not clearly below plain (%d bits)",
			aware.Rounds[0].MaxBits, plain.Rounds[0].MaxBits)
	}
}

func TestMultiRoundVsOneRoundTradeoffMatchings(t *testing.T) {
	// On matchings (tiny intermediates) the 2-round plan for C3 has
	// per-round load ~m/p, below the one-round HC's m/p^{2/3}.
	q := query.Triangle()
	db := data.NewDatabase()
	m := 4096
	for j, a := range q.Atoms {
		db.Put(workload.Matching(a.Name, 2, m, 1<<20, int64(j+1)))
	}
	res := Run(BuildPlan(q), db, Config{P: 64, Seed: 1})
	// Each round's max should be near 2m/p (both sides hashed), far below
	// m/p^{2/3}.
	bitsPer := db.MustGet("S1").BitsPerTuple()
	perRoundBudget := 6 * int64(m) / 64 * bitsPer // generous constant
	for i, r := range res.Rounds {
		if r.MaxBits > perRoundBudget {
			t.Errorf("round %d load %d exceeds ~m/p budget %d", i, r.MaxBits, perRoundBudget)
		}
	}
}

func TestRunPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Run(BuildPlan(query.Join2()), data.NewDatabase(), Config{P: 1}) },
		func() { BuildPlan(&query.Query{Name: "bad"}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestRunSingleAtomQuery(t *testing.T) {
	q := query.MustParse("q(a,b) = R(b,a)")
	db := data.NewDatabase()
	r := data.NewRelation("R", 2, 10)
	r.Add(1, 2) // R(b=1, a=2) → head (a,b) = (2,1)
	db.Put(r)
	res := Run(BuildPlan(q), db, Config{P: 4, Seed: 1})
	if len(res.Output) != 1 || res.Output[0][0] != 2 || res.Output[0][1] != 1 {
		t.Errorf("single-atom output = %v", res.Output)
	}
	if len(res.Rounds) != 0 {
		t.Errorf("single atom should need 0 rounds, got %d", len(res.Rounds))
	}
}

// TestPipelineIntermediatesStayResident is the residency gate: every round
// after the first consumes its intermediate server-to-server (ResidentTuples
// accounts it), and no intermediate ever appears in the caller's database.
func TestPipelineIntermediatesStayResident(t *testing.T) {
	q := query.Triangle()
	db := dbFor(q, 300, 50, 5)
	before := len(db.Relations)
	for _, skewAware := range []bool{false, true} {
		res := Run(BuildPlan(q), db, Config{P: 8, Seed: 2, SkewAware: skewAware})
		if len(res.Rounds) != 2 {
			t.Fatalf("rounds = %d, want 2", len(res.Rounds))
		}
		if res.Rounds[0].ResidentTuples != 0 {
			t.Errorf("skewAware=%v: round 1 has resident input (%d tuples) — both inputs are base relations",
				skewAware, res.Rounds[0].ResidentTuples)
		}
		if res.Rounds[0].Intermediate > 0 && res.Rounds[1].ResidentTuples != int64(res.Rounds[0].Intermediate) {
			t.Errorf("skewAware=%v: round 2 shuffled %d resident tuples, want the full intermediate %d",
				skewAware, res.Rounds[1].ResidentTuples, res.Rounds[0].Intermediate)
		}
	}
	if len(db.Relations) != before {
		t.Errorf("database gained relations during pipelined execution: %v", db.Names())
	}
	for _, name := range []string{"tmp1", "result"} {
		if db.Get(name) != nil {
			t.Errorf("intermediate %q round-tripped through the database", name)
		}
	}
}

// TestPipelinePlanReusable: a lowered plan executes repeatedly (and is what
// the engine caches), producing identical answers each time.
func TestPipelinePlanReusable(t *testing.T) {
	q := query.Triangle()
	db := dbFor(q, 250, 40, 9)
	pp := PlanPipeline(q, db, Config{P: 8, Seed: 4, SkewAware: true})
	want := join.Join(q, join.FromDatabase(db))
	for i := 0; i < 3; i++ {
		res := pp.Execute(db)
		if !join.EqualTupleSets(res.Output, want) {
			t.Fatalf("execution %d: %d vs %d tuples", i, len(res.Output), len(want))
		}
	}
}

// TestPredictedSumMaxBits: the cost prediction is positive and within a
// reasonable factor of the realized SumMaxBits on a skew-free instance.
func TestPredictedSumMaxBits(t *testing.T) {
	q := query.Triangle()
	db := data.NewDatabase()
	for j, a := range q.Atoms {
		db.Put(workload.Matching(a.Name, 2, 4096, 1<<20, int64(j+1)))
	}
	pp := PlanPipeline(q, db, Config{P: 64, Seed: 1, SkewAware: true})
	if pp.PredictedSumMaxBits <= 0 {
		t.Fatal("no cost prediction")
	}
	res := pp.Execute(db)
	ratio := pp.PredictedSumMaxBits / float64(res.SumMaxBits)
	if ratio < 0.1 || ratio > 10 {
		t.Errorf("prediction %f vs realized %d (ratio %f) implausible",
			pp.PredictedSumMaxBits, res.SumMaxBits, ratio)
	}
}

// TestSingleAtomColumnarFastPath: the zero-step plan permutes columns into
// head order without any communication round.
func TestSingleAtomColumnarFastPath(t *testing.T) {
	q := query.MustParse("q(a,b,c) = R(c,a,b)")
	db := data.NewDatabase()
	r := data.NewRelation("R", 3, 100)
	r.Add(3, 1, 2) // R(c=3,a=1,b=2) → head (1,2,3)
	r.Add(6, 4, 5)
	db.Put(r)
	res := Run(BuildPlan(q), db, Config{P: 4, Seed: 1})
	if len(res.Output) != 2 || len(res.Rounds) != 0 {
		t.Fatalf("output = %v, rounds = %d", res.Output, len(res.Rounds))
	}
	want := map[data.Key]bool{
		data.KeyOf(data.Tuple{1, 2, 3}): true,
		data.KeyOf(data.Tuple{4, 5, 6}): true,
	}
	for _, tu := range res.Output {
		if !want[data.KeyOf(tu)] {
			t.Errorf("unexpected head-order tuple %v", tu)
		}
	}
}

// TestSkewAwareNoGridBloatOnSparseIntermediates: when an intermediate's
// size estimate collapses (matchings barely overlap), frequency-1 keys
// must not be classified heavy — the virtual layout stays at p servers.
func TestSkewAwareNoGridBloatOnSparseIntermediates(t *testing.T) {
	q := query.Triangle()
	db := data.NewDatabase()
	for j, a := range q.Atoms {
		db.Put(workload.Matching(a.Name, 2, 2000, 1<<20, int64(j+1)))
	}
	pp := PlanPipeline(q, db, Config{P: 64, Seed: 1, SkewAware: true})
	for i, st := range pp.Pipe.Stages {
		if st.Plan.Virtual != 64 {
			t.Errorf("stage %d allocated %d virtual servers on skew-free matchings, want 64",
				i, st.Plan.Virtual)
		}
	}
	// A provably-empty chain (disjoint join columns) must not bloat either.
	chain := query.MustParse("q(x,y,z,w) = A(x,y), B(y,z), C(z,w)")
	cdb := data.NewDatabase()
	a := data.NewRelation("A", 2, 1000)
	b := data.NewRelation("B", 2, 1000)
	c := data.NewRelation("C", 2, 1000)
	for i := int64(0); i < 100; i++ {
		a.Add(i, i)     // y in [0,100)
		b.Add(500+i, i) // y in [500,600): disjoint from A's
		c.Add(i, 900-i)
	}
	cdb.Put(a)
	cdb.Put(b)
	cdb.Put(c)
	cpp := PlanPipeline(chain, cdb, Config{P: 16, Seed: 2, SkewAware: true})
	for i, st := range cpp.Pipe.Stages {
		if st.Plan.Virtual != 16 {
			t.Errorf("chain stage %d allocated %d virtual servers, want 16", i, st.Plan.Virtual)
		}
	}
	res := cpp.Execute(cdb)
	if len(res.Output) != 0 {
		t.Errorf("disjoint chain produced %d tuples", len(res.Output))
	}
}
