package lp

import (
	"math/big"
	"sort"

	"repro/internal/rational"
)

// EnumerateVertices returns all vertices of the polytope
//
//	{ x ∈ R^n : A·x ≤ b, x ≥ 0 }
//
// by the textbook method: a vertex is a feasible point at which n linearly
// independent constraints hold with equality, so we enumerate all n-subsets
// of the m+n constraints (the m rows of A plus the n axis constraints
// x_i ≥ 0), solve the resulting square system exactly, and keep feasible,
// deduplicated solutions. This is exponential in n but the packing polytopes
// of conjunctive queries have n = ℓ atoms, which is tiny.
//
// The polytope must be bounded in the directions explored; unbounded
// polytopes simply yield their vertex set (rays are not reported).
func EnumerateVertices(a *rational.Matrix, b rational.Vector) []rational.Vector {
	m, n := a.Rows, a.Cols
	if len(b) != m {
		panic("lp: EnumerateVertices shape mismatch")
	}
	total := m + n // constraint indices: 0..m-1 rows of A, m..m+n-1 axes
	var out []rational.Vector
	seen := make(map[string]bool)

	idx := make([]int, n)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == n {
			v, ok := solveTight(a, b, idx)
			if !ok || !feasible(a, b, v) {
				return
			}
			key := v.String()
			if !seen[key] {
				seen[key] = true
				out = append(out, v)
			}
			return
		}
		for c := start; c < total; c++ {
			idx[depth] = c
			rec(c+1, depth+1)
		}
	}
	rec(0, 0)

	sort.Slice(out, func(i, j int) bool { return lexLess(out[i], out[j]) })
	return out
}

// solveTight solves the n×n system formed by making the chosen constraints
// tight. Constraint index c < a.Rows selects row c of A·x = b_c; index
// c ≥ a.Rows selects x_{c-a.Rows} = 0.
func solveTight(a *rational.Matrix, b rational.Vector, chosen []int) (rational.Vector, bool) {
	n := a.Cols
	sys := rational.NewMatrix(n, n)
	rhs := rational.NewVector(n)
	for r, c := range chosen {
		if c < a.Rows {
			for j := 0; j < n; j++ {
				sys.Set(r, j, a.At(c, j))
			}
			rhs[r].Set(b[c])
		} else {
			sys.SetInt(r, c-a.Rows, 1)
			// rhs stays 0
		}
	}
	return rational.Solve(sys, rhs)
}

// feasible reports whether v satisfies A·v ≤ b and v ≥ 0.
func feasible(a *rational.Matrix, b rational.Vector, v rational.Vector) bool {
	for _, x := range v {
		if x.Sign() < 0 {
			return false
		}
	}
	lhs := a.MulVec(v)
	for i := range lhs {
		if lhs[i].Cmp(b[i]) > 0 {
			return false
		}
	}
	return true
}

func lexLess(a, b rational.Vector) bool {
	for i := range a {
		if c := a[i].Cmp(b[i]); c != 0 {
			return c < 0
		}
	}
	return false
}

// MaximizeOverVertices returns the vertex maximizing the linear functional
// obj (and the attained value), among the given vertices. It panics if the
// vertex list is empty.
func MaximizeOverVertices(vertices []rational.Vector, obj rational.Vector) (rational.Vector, *big.Rat) {
	if len(vertices) == 0 {
		panic("lp: no vertices")
	}
	best := vertices[0]
	bestVal := obj.Dot(best)
	for _, v := range vertices[1:] {
		if val := obj.Dot(v); val.Cmp(bestVal) > 0 {
			best, bestVal = v, val
		}
	}
	return best, bestVal
}
