package exec

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/mpc"
)

// Stage is one communication round of a multi-round Pipeline. Its Plan
// supplies the round's virtual-server layout and router (Local/Dedup are
// unused — pipeline stages compute resident fragments instead of shipping
// answers to the coordinator). The router sees two kinds of input, both by
// relation name: Base relations routed from the input servers' uniform
// partitions, and Resident relations — earlier stages' outputs — shuffled
// server-to-server out of the previous round's layout.
type Stage struct {
	// Plan is the stage's physical plan: Virtual, Physical, and Router are
	// used; Local, Dedup, and PredictedBits are ignored.
	Plan *PhysicalPlan
	// Base names database relations entering this round from the input
	// servers.
	Base []string
	// Resident names prior stages' outputs entering this round from the
	// servers currently holding them.
	Resident []string
	// LocalFragment is the stage's local computation: it produces the
	// server's fragment of the stage output (named OutName), which stays
	// resident on the server for the next stage. A nil return leaves the
	// server without a fragment.
	LocalFragment func(s *mpc.Server) *data.Relation
	// OutName/OutArity/OutDomain fix the output relation's schema, so the
	// final gather is correctly typed even when every fragment is empty.
	OutName   string
	OutArity  int
	OutDomain int64
}

// Pipeline is an ordered sequence of executor stages sharing one persistent
// cluster: stage i's output fragments stay resident on the servers and are
// re-shuffled into stage i+1's layout. This is the executable form of a
// multi-round plan, the multi-round counterpart of PhysicalPlan — cacheable,
// immutable once built, and safe to execute repeatedly.
type Pipeline struct {
	// Strategy labels the pipeline in diagnostics and panics.
	Strategy string
	// Physical is p, the physical machine count shared by every stage.
	Physical int
	// Stages are the rounds, in execution order; the last stage's output is
	// the pipeline's result.
	Stages []Stage
	// PredictedSumMaxBits is the planner's cost prediction: the sum over
	// rounds of the predicted maximum per-server load in bits — the
	// multi-round quantity comparable to a one-round plan's PredictedBits.
	PredictedSumMaxBits float64
}

// RoundLoad is the realized load of one pipeline stage.
type RoundLoad struct {
	// MaxBits/TotalBits are this round's received loads over virtual
	// servers (deltas — the persistent cluster accumulates across rounds).
	MaxBits   int64
	TotalBits int64
	// Intermediate is the number of tuples the stage's local computation
	// produced (resident, not yet shipped anywhere).
	Intermediate int
	// ResidentTuples is the number of intermediate tuples that entered this
	// round server-to-server — tuples that never round-tripped through the
	// coordinator or a data.Database.
	ResidentTuples int64
	// Replays counts this stage's communication rounds that tore and were
	// re-driven in place (earlier stages' resident state untouched).
	Replays int
}

// PipelineResult reports one execution of a pipeline.
type PipelineResult struct {
	// Output is the final stage's output, gathered column-wise from the
	// servers' resident fragments in server order.
	Output *data.Relation
	// Rounds holds per-stage loads; SumMaxBits sums the per-round maxima
	// (the busiest-server total the multi-round cost model predicts) and
	// MaxBitsPerRound is their maximum.
	Rounds          []RoundLoad
	MaxBitsPerRound int64
	SumMaxBits      int64
}

// RunPipeline executes the pipeline over db on one persistent cluster:
// every stage routes its base inputs from the database and shuffles its
// resident inputs out of the previous round's layout, computes its output
// fragments locally, and leaves them resident for the next stage. Only the
// last stage's output is gathered. cfg.SkipCompute skips the final stage's
// local join only (intermediate stages must run to feed later rounds) —
// loads are accounted either way; cfg.Scratch is unused (the pipeline's
// accounting is internal) but cfg.Clusters supplies the cluster pool the
// persistent cluster is drawn from and returned to. Routing errors are
// internal bugs (planners validate their layouts), so RunPipeline panics
// on them; the errors it returns are cfg.Ctx's cancellation — checked
// before every round and at send-part checkpoints inside rounds — and
// injected faults from cfg.Faults (mpc.ErrTornRound, mpc.ErrComputeFailed)
// that outlived the cfg.Retry budget. Recovery is round-granular: a torn
// round k is re-driven in place against the surviving resident state
// (rounds 1..k-1 are never repeated), and a failed compute phase re-runs
// only the failed servers. Either way the cluster is released back to the
// pool.
func RunPipeline(pl *Pipeline, db *data.Database, cfg Config) (PipelineResult, error) {
	if len(pl.Stages) == 0 {
		panic(fmt.Sprintf("exec: %s pipeline has no stages", pl.Strategy))
	}
	if pl.Physical < 1 {
		panic(fmt.Sprintf("exec: %s pipeline has %d physical servers", pl.Strategy, pl.Physical))
	}
	maxVirtual := 1
	for i := range pl.Stages {
		st := &pl.Stages[i]
		if st.Plan == nil || st.Plan.Router == nil {
			panic(fmt.Sprintf("exec: %s stage %d has no plan/router", pl.Strategy, i))
		}
		if st.Plan.Virtual < 1 {
			panic(fmt.Sprintf("exec: %s stage %d has %d virtual servers", pl.Strategy, i, st.Plan.Virtual))
		}
		if st.LocalFragment == nil || st.OutName == "" {
			panic(fmt.Sprintf("exec: %s stage %d has no local computation/output name", pl.Strategy, i))
		}
		if st.Plan.Virtual > maxVirtual {
			maxVirtual = st.Plan.Virtual
		}
	}

	pool := cfg.Clusters
	if pool == nil {
		pool = &sharedClusters
	}
	if err := cfg.ctxErr(); err != nil {
		return PipelineResult{}, err
	}
	cluster := pool.Get(maxVirtual)
	cfg.arm(cluster)
	rt := newRetrier(&cfg, cluster)
	prev := make([]int64, maxVirtual)
	var res PipelineResult
	for i := range pl.Stages {
		st := &pl.Stages[i]
		if err := cfg.ctxErr(); err != nil {
			pool.Put(cluster)
			return PipelineResult{}, err
		}
		for id, sv := range cluster.Servers {
			prev[id] = sv.BitsIn
		}
		var load RoundLoad
		for _, sv := range cluster.Servers {
			for _, name := range st.Resident {
				if f := sv.Received[name]; f != nil {
					load.ResidentTuples += int64(f.Size())
				}
			}
		}
		if len(st.Resident) > 0 {
			// A torn shuffle is replayed in place: the sharded engine
			// discarded the round's staged deliveries and re-attached the
			// detached outgoing fragments, so the replay sees exactly the
			// pre-round resident state.
			err := rt.driveRound(&load.Replays, func() error {
				return cluster.ShuffleResident(st.Plan.Router, st.Resident...)
			})
			if err != nil {
				if cfg.recoverable(err) {
					pool.Put(cluster)
					return PipelineResult{}, err
				}
				panic(fmt.Sprintf("exec: %s stage %d resident shuffle failed: %v", pl.Strategy, i, err))
			}
		}
		if len(st.Base) > 0 {
			rels := make([]*data.Relation, len(st.Base))
			for j, name := range st.Base {
				rels[j] = db.MustGet(name)
			}
			err := rt.driveRound(&load.Replays, func() error {
				return cluster.RoundRelations(st.Plan.Router, rels...)
			})
			if err != nil {
				if cfg.recoverable(err) {
					pool.Put(cluster)
					return PipelineResult{}, err
				}
				panic(fmt.Sprintf("exec: %s stage %d routing failed: %v", pl.Strategy, i, err))
			}
		}
		local := st.LocalFragment
		if cfg.SkipCompute && i == len(pl.Stages)-1 {
			local = func(*mpc.Server) *data.Relation { return nil }
		}
		if err := rt.driveComputeResident(pl.Strategy, i, local); err != nil {
			pool.Put(cluster)
			return PipelineResult{}, err
		}
		for id, sv := range cluster.Servers {
			d := sv.BitsIn - prev[id]
			if d > load.MaxBits {
				load.MaxBits = d
			}
			load.TotalBits += d
			if f := sv.Received[st.OutName]; f != nil {
				load.Intermediate += f.Size()
			}
		}
		res.Rounds = append(res.Rounds, load)
		res.SumMaxBits += load.MaxBits
		if load.MaxBits > res.MaxBitsPerRound {
			res.MaxBitsPerRound = load.MaxBits
		}
	}

	last := &pl.Stages[len(pl.Stages)-1]
	out := data.NewRelation(last.OutName, last.OutArity, last.OutDomain)
	for _, sv := range cluster.Servers {
		if f := sv.Received[last.OutName]; f != nil && f.Size() > 0 {
			out.AppendColumns(f.Columns(), f.Size())
		}
	}
	res.Output = out
	// The gather copied every fragment; the cluster can serve the next run.
	pool.Put(cluster)
	return res, nil
}
