package exp

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/bounds"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/hypercube"
	"repro/internal/join"
	"repro/internal/query"
	"repro/internal/rounds"
	"repro/internal/skew"
	"repro/internal/workload"
)

// This file holds the extension experiments beyond the DESIGN.md core
// index: E11 validates the information-theoretic machinery inside the
// Theorem 3.5 lower-bound proof, and A5 measures the sampling-based
// heavy-hitter detection the paper cites as standard practice.

// E11KnowledgeBound simulates the heart of the lower-bound argument: a
// server that receives a uniform fraction f of each relation "knows" an
// answer only when it knows all constituent tuples, so its expected
// knowledge is f^ℓ·E[|q|] — far below the budget Theorem 3.5 grants a
// load-L server, namely (L/(c·L(u,M,p)))^u·E[|q|]/p per server. The
// experiment measures known answers across f and checks (a) the theorem's
// budget is never exceeded, and (b) knowledge decays with exponent ≥ u
// (log-log slope), which is why p servers with bounded load cannot cover
// all answers.
func E11KnowledgeBound(s Scale) Table {
	m, _ := sizes(s, 3000, 0, 15000, 0)
	q := query.Triangle()
	domain := int64(256) // dense enough for a sizable answer set
	db := uniformDB(q, []int{m, m, m}, domain, 41)
	full := join.Join(q, join.FromDatabase(db))
	if len(full) == 0 {
		return Table{ID: "E11", Title: "knowledge bound", OK: false,
			Columns: []string{"error"}, Rows: [][]string{{"empty join"}}}
	}
	// Packing and constants of Theorem 3.5.
	u := []float64{0.5, 0.5, 0.5}
	uTotal := 1.5
	bitsM := make([]float64, 3)
	for j, a := range q.Atoms {
		bitsM[j] = float64(db.MustGet(a.Name).Bits())
	}
	kUM := bounds.K(u, bitsM)
	const c = 1.0 / 6 // c = (a_j − δ)/(3a_j) with a_j = 2, δ = 1

	rng := rand.New(rand.NewSource(43))
	rows := [][]string{}
	ok := true
	type pt struct{ f, known float64 }
	var pts []pt
	for _, f := range []float64{0.2, 0.4, 0.8} {
		sub := make(map[string]*data.Relation)
		loadBits := 0.0
		for _, a := range q.Atoms {
			rel := db.MustGet(a.Name)
			keep := data.NewRelation(a.Name, rel.Arity, rel.Domain)
			rel.Each(func(_ int, t data.Tuple) bool {
				if rng.Float64() < f {
					keep.Add(t...)
				}
				return true
			})
			sub[a.Name] = keep
			loadBits += float64(keep.Bits())
		}
		known := float64(len(join.Join(q, sub)))
		// Theorem 3.5 (1): a load-L server reports at most
		// L^u/(c^u·K(u,M)) · E[|q(I)|] answers in expectation.
		budget := math.Pow(loadBits, uTotal) / (math.Pow(c, uTotal) * kUM) * float64(len(full))
		good := known <= budget
		if !good {
			ok = false
		}
		rows = append(rows, []string{
			f2(f), fk(known), fk(budget), f2(known / float64(len(full))), fmt.Sprint(good),
		})
		pts = append(pts, pt{f, known})
	}
	// Log-log slope of knowledge vs f must be at least u = 1.5 (it is ≈ ℓ = 3).
	slope := math.Log(pts[len(pts)-1].known/pts[0].known) /
		math.Log(pts[len(pts)-1].f/pts[0].f)
	if slope < uTotal {
		ok = false
	}
	rows = append(rows, []string{"log-log slope", f2(slope), "≥ u = 1.50", "", fmt.Sprint(slope >= uTotal)})
	return Table{
		ID: "E11", Title: "Bounded-load servers know few answers (lower-bound machinery)",
		PaperRef: "Theorem 3.5 (1), Appendix A",
		Claim:    "a server holding an f-fraction of each relation knows ≈ f^ℓ·E[|q|] answers, within the L^u/(c^u·K(u,M))·E budget, and the decay exponent exceeds u",
		Columns:  []string{"fraction f", "known answers", "theorem budget", "known/total", "ok"},
		Rows:     rows,
		Notes:    fmt.Sprintf("C3 on m=%d per relation, domain %d, |q(I)| = %d", m, domain, len(full)),
		OK:       ok,
	}
}

// E12RoundsTradeoff contrasts the paper's one-round HyperCube with the
// traditional one-join-per-round strategy its introduction describes. On
// matchings (tiny intermediates) each round costs ~m/p, beating the
// one-round m/p^{2/3}; on dense data the intermediate result explodes and
// one round wins — the tradeoff that motivates single-round algorithms.
func E12RoundsTradeoff(s Scale) Table {
	m, p := sizes(s, 4096, 64, 32768, 64)
	q := query.Triangle()
	rows := [][]string{}
	ok := true

	run := func(label string, db *data.Database, expectOneRoundWins bool) {
		hc := hypercube.Run(q, db, hypercube.Config{P: p, Seed: 5, SkipJoin: true})
		mr := rounds.Run(rounds.BuildPlan(q), db, rounds.Config{P: p, Seed: 5})
		oneRound := float64(hc.Loads.MaxBits)
		multi := float64(mr.SumMaxBits)
		winner := "multi-round"
		if oneRound < multi {
			winner = "one-round"
		}
		if expectOneRoundWins != (winner == "one-round") {
			ok = false
		}
		// The engine's cost model (ConsiderMultiRound) must agree with the
		// measured winner: predicted SumMaxBits vs one-round PredictedBits.
		eng := core.NewEngine(p, 5)
		eng.ConsiderMultiRound = true
		pick := eng.PlanQuery(q, db).Strategy
		pickAgrees := (pick == core.MultiRound) == (winner == "multi-round")
		if !pickAgrees {
			ok = false
		}
		inter := 0
		for _, r := range mr.Rounds {
			if r.Intermediate > inter {
				inter = r.Intermediate
			}
		}
		rows = append(rows, []string{
			label, fk(oneRound), fk(multi), fi(int64(inter)), winner, pick.String(),
		})
	}

	matchings := data.NewDatabase()
	for j, a := range q.Atoms {
		matchings.Put(workload.Matching(a.Name, 2, m, 1<<21, int64(j+1)))
	}
	run("matchings (sparse)", matchings, false)

	dense := data.NewDatabase()
	// Small domain → quadratic intermediate in round 1.
	domain := int64(math.Sqrt(float64(m)) * 2)
	for j, a := range q.Atoms {
		dense.Put(workload.Uniform(a.Name, 2, m, domain, int64(j+10)))
	}
	run("dense (quadratic intermediate)", dense, true)

	return Table{
		ID: "E12", Title: "One round (HyperCube) vs one-join-per-round plans",
		PaperRef: "§1 (motivation for single-round multiway joins; rounds analyzed in [4])",
		Claim:    "multi-round wins when intermediates are small; HC wins when intermediates explode; the engine's cost model picks the measured winner",
		Columns:  []string{"data", "HC 1-round (bits)", "multi-round Σmax (bits)", "max intermediate", "winner", "engine pick"},
		Rows:     rows,
		Notes:    fmt.Sprintf("C3, m=%d per relation, p=%d", m, p),
		OK:       ok,
	}
}

// A5SamplingStats compares exact heavy-hitter detection with the
// sampling-based detection used in practice (and cited in §1).
func A5SamplingStats(s Scale) Table {
	m, p := sizes(s, 4000, 32, 40000, 64)
	domain := int64(1 << 21)
	db := joinDB(
		workload.Zipf("S1", m, domain, 1, 1.6, uint64(m/8), 1),
		workload.Zipf("S2", m, domain, 1, 1.6, uint64(m/8), 2),
	)
	rows := [][]string{}
	exact := skew.RunJoin(db, skew.JoinConfig{P: p, Seed: 5, SkipJoin: true})
	rows = append(rows, []string{"exact", fi(int64(exact.NumH1 + exact.NumH2 + exact.NumH12)),
		fk(float64(exact.MaxVirtualBits)), f2(1.0)})
	ok := true
	for _, size := range []int{m / 8, m / 2} {
		res := skew.RunJoin(db, skew.JoinConfig{P: p, Seed: 5, SkipJoin: true,
			SampleSize: size, SampleSeed: 99})
		ratio := float64(res.MaxVirtualBits) / float64(exact.MaxVirtualBits)
		// Sampling must stay within a small constant of exact detection.
		if ratio > 4 {
			ok = false
		}
		rows = append(rows, []string{
			fmt.Sprintf("sample %d", size),
			fi(int64(res.NumH1 + res.NumH2 + res.NumH12)),
			fk(float64(res.MaxVirtualBits)), f2(ratio),
		})
	}
	// Correctness under sampling, on a smaller instance (join computed).
	small := joinDB(
		workload.Zipf("S1", 1000, domain, 1, 1.6, 200, 3),
		workload.Zipf("S2", 1000, domain, 1, 1.6, 200, 4),
	)
	want := join.Join(query.Join2(), join.FromDatabase(small))
	got := skew.RunJoin(small, skew.JoinConfig{P: 16, Seed: 5, SampleSize: 200, SampleSeed: 7})
	correct := join.EqualTupleSets(got.Output, want)
	if !correct {
		ok = false
	}
	rows = append(rows, []string{"correctness (sampled)", "-", "-", fmt.Sprint(correct)})
	return Table{
		ID: "A5", Title: "Heavy-hitter detection: exact pass vs sampling",
		PaperRef: "§1 (\"detecting the heavy hitters (e.g. using sampling)\")",
		Claim:    "sampled statistics keep the skew join correct and within a small factor of the exact-statistics load",
		Columns:  []string{"statistics", "#hitters", "max load (bits)", "vs exact"},
		Rows:     rows,
		Notes:    fmt.Sprintf("zipf(1.6), m=%d, p=%d", m, p),
		OK:       ok,
	}
}
