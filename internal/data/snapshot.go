package data

// Snapshot isolation for serving databases.
//
// A snapshot is an immutable *Database capturing one epoch of a mutable
// master: the relation set, every relation's rows, and the version at one
// consistent point. Executions read snapshots with no lock held, so
// Database.Apply never blocks behind a long-running query and queries never
// observe a half-applied delta.
//
// Snapshots are cheap because they share storage: each relation view is a
// capacity-clamped slice header over the master's column arrays, frozen at
// the published row count. Master appends land beyond the frozen prefix
// (or reallocate), so they are invisible to live views; the one interior
// write in the system — removeRow's swap-with-last under Apply — copies the
// columns first when it would touch the frozen prefix (Relation.unshare).
// Apply republishes the epoch under the write lock it already holds, reusing
// every view whose relation did not change, so publication is O(relations)
// slice headers, not O(tuples).

// Snapshot returns the database's current published epoch: an immutable
// *Database that shares the master's identity (ID) and storage but never
// changes — safe to read concurrently with Apply on the master, with no
// lock held. Calling Snapshot on a snapshot returns the master's *latest*
// epoch, not the receiver (background replanners use this to re-read fresh
// statistics from a retained handle).
//
// Mutating a snapshot is an error: Apply rejects it, and callers must not
// reach around the API (Put, Relation.Add) on one.
func (db *Database) Snapshot() *Database {
	if db.parent != nil {
		return db.parent.Snapshot()
	}
	db.mu.RLock()
	if s := db.snap.Load(); s != nil && db.snapCurrentLocked(s) {
		db.mu.RUnlock()
		return s
	}
	db.mu.RUnlock()
	// Stale or never published (construction-time mutation happens outside
	// Apply and does not republish eagerly): publish under the write lock.
	db.mu.Lock()
	defer db.mu.Unlock()
	if s := db.snap.Load(); s != nil && db.snapCurrentLocked(s) {
		return s
	}
	return db.publishLocked()
}

// IsSnapshot reports whether db is an immutable snapshot epoch rather than
// a mutable master.
func (db *Database) IsSnapshot() bool { return db.parent != nil }

// snapCurrentLocked reports whether s still describes the master's current
// state: same version, same relation set, and every view frozen at its
// relation's current mutation gen. Callers hold db.mu (either mode).
func (db *Database) snapCurrentLocked(s *Database) bool {
	if s.version != db.version || len(s.Relations) != len(db.Relations) {
		return false
	}
	for name, r := range db.Relations {
		v := s.Relations[name]
		if v == nil || v.viewOf != r || v.viewGen != r.gen {
			return false
		}
	}
	return true
}

// publishLocked builds and installs a fresh epoch under db.mu (write mode),
// reusing views from the previous epoch for relations that did not change.
func (db *Database) publishLocked() *Database {
	prev := db.snap.Load()
	s := &Database{
		Relations: make(map[string]*Relation, len(db.Relations)),
		parent:    db,
		version:   db.version,
	}
	s.id.Store(db.ID())
	for name, r := range db.Relations {
		if prev != nil {
			if pv := prev.Relations[name]; pv != nil && pv.viewOf == r && pv.viewGen == r.gen {
				s.Relations[name] = pv
				continue
			}
		}
		s.Relations[name] = r.view()
	}
	db.snap.Store(s)
	return s
}
