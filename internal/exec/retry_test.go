package exec

import (
	"context"
	"errors"
	"sort"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/mpc"
	"repro/internal/query"
)

// recordSleep is a Retry.Sleep hook keeping fault tests sleep-free while
// still observing the scheduled backoffs.
type recordSleep struct {
	waits []time.Duration
}

func (r *recordSleep) sleep(_ context.Context, d time.Duration) error {
	r.waits = append(r.waits, d)
	return nil
}

func findRetrySeed(t *testing.T, mk func(seed uint64) *mpc.Faults, ok func(*mpc.Faults) bool) uint64 {
	t.Helper()
	for seed := uint64(0); seed < 10000; seed++ {
		if ok(mk(seed)) {
			return seed
		}
	}
	t.Fatal("no seed under 10000 produces the wanted fault schedule")
	return 0
}

// threeRoundPipeline builds a pipeline driving exactly three communication
// rounds: stage 1 routes the base relation (round 1), stages 2 and 3 shuffle
// the resident intermediate (rounds 2 and 3).
func threeRoundPipeline() *Pipeline {
	s1 := incStage("S", "t1", 4)
	s1.Base = []string{"S"}
	s2 := incStage("t1", "t2", 3)
	s2.Resident = []string{"t1"}
	s3 := incStage("t2", "t3", 3)
	s3.Resident = []string{"t2"}
	return &Pipeline{Strategy: "test", Physical: 2, Stages: []Stage{s1, s2, s3}}
}

// relRows canonicalizes a relation into sorted row tuples for multiset
// comparison.
func relRows(r *data.Relation) [][]int64 {
	rows := make([][]int64, r.Size())
	for i := 0; i < r.Size(); i++ {
		row := make([]int64, r.Arity)
		for c := 0; c < r.Arity; c++ {
			row[c] = r.At(i, c)
		}
		rows[i] = row
	}
	sort.Slice(rows, func(i, j int) bool {
		for c := range rows[i] {
			if rows[i][c] != rows[j][c] {
				return rows[i][c] < rows[j][c]
			}
		}
		return false
	})
	return rows
}

func assertSameOutput(t *testing.T, want, got *data.Relation) {
	t.Helper()
	if want.Arity != got.Arity || want.Size() != got.Size() {
		t.Fatalf("output shape differs: %dx%d vs %dx%d", got.Size(), got.Arity, want.Size(), want.Arity)
	}
	w, g := relRows(want), relRows(got)
	for i := range w {
		for c := range w[i] {
			if w[i][c] != g[i][c] {
				t.Fatalf("output differs as a multiset at row %d: %v vs %v", i, g[i], w[i])
			}
		}
	}
}

// TestPipelineReplaysOnlyTornRound is the acceptance test for round-granular
// recovery: for each round k of a 3-round pipeline, a seed that tears
// exactly round k's first attempt must replay only round k — the other
// stages report zero replays, the recovery counters say one replayed round,
// and the output and per-round loads match the fault-free oracle exactly.
func TestPipelineReplaysOnlyTornRound(t *testing.T) {
	db := testDB()
	oracle, err := RunPipeline(threeRoundPipeline(), db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed uint64) *mpc.Faults { return &mpc.Faults{Seed: seed, TornRound: 0.5} }
	for k := uint64(1); k <= 3; k++ {
		k := k
		seed := findRetrySeed(t, mk, func(f *mpc.Faults) bool {
			for r := uint64(1); r <= 3; r++ {
				if r == k {
					if !f.WouldTearRoundAttempt(r, 1) || f.WouldTearRoundAttempt(r, 2) {
						return false
					}
				} else if f.WouldTearRoundAttempt(r, 1) {
					return false
				}
			}
			return true
		})
		var rec Recovery
		var rs recordSleep
		res, err := RunPipeline(threeRoundPipeline(), db, Config{
			Faults:   mk(seed),
			Retry:    Retry{Sleep: rs.sleep},
			Recovery: &rec,
		})
		if err != nil {
			t.Fatalf("round %d: recoverable tear surfaced: %v", k, err)
		}
		if rec.Attempts != 1 || rec.RoundsReplayed != 1 || rec.ServersRecomputed != 0 {
			t.Fatalf("round %d: Recovery = %+v, want exactly 1 attempt replaying 1 round", k, rec)
		}
		if len(rs.waits) != 1 {
			t.Fatalf("round %d: %d backoff waits, want 1", k, len(rs.waits))
		}
		for i, rl := range res.Rounds {
			wantReplays := 0
			if uint64(i+1) == k {
				wantReplays = 1
			}
			if rl.Replays != wantReplays {
				t.Fatalf("round %d: stage %d Replays = %d, want %d", k, i, rl.Replays, wantReplays)
			}
			want := oracle.Rounds[i]
			if rl.MaxBits != want.MaxBits || rl.TotalBits != want.TotalBits ||
				rl.Intermediate != want.Intermediate || rl.ResidentTuples != want.ResidentTuples {
				t.Fatalf("round %d: stage %d load %+v differs from fault-free %+v", k, i, rl, want)
			}
		}
		assertSameOutput(t, oracle.Output, res.Output)
	}
}

// TestPipelineRetryBudgetSharedAcrossRounds: with a budget of one retry, a
// replay spent on round 1 leaves nothing for round 2's tear — the typed
// error surfaces and the recovery counters show the partial recovery.
func TestPipelineRetryBudgetSharedAcrossRounds(t *testing.T) {
	mk := func(seed uint64) *mpc.Faults { return &mpc.Faults{Seed: seed, TornRound: 0.5} }
	seed := findRetrySeed(t, mk, func(f *mpc.Faults) bool {
		return f.WouldTearRoundAttempt(1, 1) && !f.WouldTearRoundAttempt(1, 2) &&
			f.WouldTearRoundAttempt(2, 1)
	})
	var rec Recovery
	var rs recordSleep
	_, err := RunPipeline(threeRoundPipeline(), testDB(), Config{
		Faults:   mk(seed),
		Retry:    Retry{MaxAttempts: 2, Sleep: rs.sleep},
		Recovery: &rec,
	})
	if !errors.Is(err, mpc.ErrTornRound) {
		t.Fatalf("err = %v, want ErrTornRound once the shared budget is spent", err)
	}
	if rec.Attempts != 1 || rec.RoundsReplayed != 1 {
		t.Fatalf("Recovery = %+v, want the single budgeted replay recorded", rec)
	}
}

// TestPipelineRecomputesOnlyFailedServers: a compute-phase failure re-runs
// just the failed servers; the recovered run matches the fault-free oracle.
func TestPipelineRecomputesOnlyFailedServers(t *testing.T) {
	db := testDB()
	oracle, err := RunPipeline(threeRoundPipeline(), db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed uint64) *mpc.Faults { return &mpc.Faults{Seed: seed, ComputeFail: 0.2} }
	// Stage virtual sizes are 4, 3, 3: some server fails its phase's first
	// attempt, every second attempt is clean, so recovery needs exactly one
	// retry per failing phase.
	var wantFailed int
	seed := findRetrySeed(t, mk, func(f *mpc.Faults) bool {
		wantFailed = 0
		for phase := uint64(1); phase <= 3; phase++ {
			for s := 0; s < 4; s++ {
				if f.WouldFailComputeAttempt(phase, 2, s) {
					return false
				}
				if f.WouldFailComputeAttempt(phase, 1, s) {
					wantFailed++
				}
			}
		}
		return wantFailed >= 1
	})
	var rec Recovery
	var rs recordSleep
	res, err := RunPipeline(threeRoundPipeline(), db, Config{
		Faults:   mk(seed),
		Retry:    Retry{Sleep: rs.sleep},
		Recovery: &rec,
	})
	if err != nil {
		t.Fatalf("recoverable compute failure surfaced: %v", err)
	}
	// wantFailed counts over server IDs 0..3 for every phase; stages 2 and 3
	// only run 3 virtual servers, so the realized count can only be lower.
	if rec.ServersRecomputed < 1 || rec.ServersRecomputed > wantFailed {
		t.Fatalf("ServersRecomputed = %d, want in [1, %d]", rec.ServersRecomputed, wantFailed)
	}
	if rec.RoundsReplayed != 0 {
		t.Fatalf("compute recovery replayed %d rounds, want 0", rec.RoundsReplayed)
	}
	assertSameOutput(t, oracle.Output, res.Output)
}

// TestStandingSeedReplaysTornRound: the standing seed shares Run's recovery
// path — a torn seed round is replayed in place and the seeded result
// matches the fault-free oracle.
func TestStandingSeedReplaysTornRound(t *testing.T) {
	db := testDB()
	plan := &PhysicalPlan{
		Strategy: "test",
		Virtual:  4,
		Physical: 2,
		Router:   modRouter(4),
		Local: func(s *mpc.Server) []data.Tuple {
			var out []data.Tuple
			s.Fragment("S").Each(func(_ int, tu data.Tuple) bool {
				out = append(out, append(data.Tuple(nil), tu...))
				return true
			})
			return out
		},
	}
	q := query.MustParse("Q(x,y) :- S(x,y)")
	oracle, err := NewStanding(plan, q, db, Config{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed uint64) *mpc.Faults { return &mpc.Faults{Seed: seed, TornRound: 0.5} }
	seed := findRetrySeed(t, mk, func(f *mpc.Faults) bool {
		return f.WouldTearRoundAttempt(1, 1) && !f.WouldTearRoundAttempt(1, 2)
	})
	var rec Recovery
	var rs recordSleep
	st, err := NewStanding(plan, q, db, Config{
		Faults:   mk(seed),
		Retry:    Retry{Sleep: rs.sleep},
		Recovery: &rec,
	})
	if err != nil {
		t.Fatalf("recoverable torn seed surfaced: %v", err)
	}
	if rec.Attempts != 1 || rec.RoundsReplayed != 1 {
		t.Fatalf("Recovery = %+v, want 1 attempt replaying 1 round", rec)
	}
	want, got := oracle.Result(), st.Result()
	if len(want) != len(got) {
		t.Fatalf("seeded result = %d tuples, want %d", len(got), len(want))
	}
}

// TestRetryPolicyResolution pins the Retry zero-value semantics and the
// deterministic backoff shape.
func TestRetryPolicyResolution(t *testing.T) {
	cases := []struct {
		max  int
		want int
	}{{0, DefaultRetryAttempts - 1}, {-1, 0}, {1, 0}, {5, 4}}
	for _, c := range cases {
		if got := (Retry{MaxAttempts: c.max}).retries(); got != c.want {
			t.Errorf("MaxAttempts %d: retries = %d, want %d", c.max, got, c.want)
		}
	}

	r := Retry{BaseBackoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, JitterSeed: 7}
	prevCap := time.Duration(0)
	for retry := 1; retry <= 6; retry++ {
		// The un-jittered wait doubles per retry, capped at MaxBackoff;
		// jitter keeps the realized wait in [d/2, d).
		d := time.Millisecond << (retry - 1)
		if d > 8*time.Millisecond {
			d = 8 * time.Millisecond
		}
		got := r.backoff(retry)
		if got < d/2 || got >= d {
			t.Errorf("retry %d: backoff %v outside [%v, %v)", retry, got, d/2, d)
		}
		if got2 := r.backoff(retry); got2 != got {
			t.Errorf("retry %d: backoff not deterministic: %v vs %v", retry, got, got2)
		}
		if d == 8*time.Millisecond && prevCap != 0 && got >= 8*time.Millisecond {
			t.Errorf("retry %d: backoff %v above cap", retry, got)
		}
		if d == 8*time.Millisecond {
			prevCap = got
		}
	}
	if got := (Retry{BaseBackoff: -1}).backoff(3); got != 0 {
		t.Errorf("negative BaseBackoff: backoff = %v, want 0", got)
	}
	var rec Recovery
	if err := (Retry{BaseBackoff: -1}).Wait(context.Background(), 1, &rec); err != nil || rec.BackoffWaits != 0 {
		t.Errorf("disabled backoff waited: err=%v rec=%+v", err, rec)
	}
}
