package exp

import (
	"fmt"
	"math"

	"repro/internal/bounds"
	"repro/internal/data"
	"repro/internal/hashing"
	"repro/internal/hypercube"
	"repro/internal/mapreduce"
	"repro/internal/query"
	"repro/internal/skew"
	"repro/internal/workload"
)

// sizes returns (m, p) for a scale.
func sizes(s Scale, quickM, quickP, fullM, fullP int) (int, int) {
	if s == Quick {
		return quickM, quickP
	}
	return fullM, fullP
}

// joinDB assembles a Join2 database from two binary relations.
func joinDB(s1, s2 *data.Relation) *data.Database {
	db := data.NewDatabase()
	a := s1.Clone()
	a.Name = "S1"
	b := s2.Clone()
	b.Name = "S2"
	db.Put(a)
	db.Put(b)
	return db
}

func uniformDB(q *query.Query, ms []int, domain int64, seed int64) *data.Database {
	specs := make([]workload.AtomSpec, q.NumAtoms())
	for j, a := range q.Atoms {
		specs[j] = workload.AtomSpec{Name: a.Name, Arity: a.Arity(), M: ms[j], Domain: domain}
	}
	return workload.ForQuery(specs, seed)
}

// within reports whether v/ref lies in [lo, hi].
func within(v, ref, lo, hi float64) bool {
	if ref == 0 {
		return v == 0
	}
	r := v / ref
	return r >= lo && r <= hi
}

// E1ExampleJoinShares reproduces Example 3.3: the join q(x,y,z) =
// S1(x,z), S2(y,z) under two share allocations — the cube (p^⅓,p^⅓,p^⅓)
// and the hash join (1,1,p) — on skew-free and fully-skewed data.
func E1ExampleJoinShares(s Scale) Table {
	m, p := sizes(s, 4000, 64, 40000, 64)
	pf := float64(p)
	domain := int64(1 << 21)
	cube := hypercube.EqualShares(3, p)
	hashJ := []int{1, 1, p}

	skewFree := joinDB(
		workload.Matching("S1", 2, m, domain, 1),
		workload.Matching("S2", 2, m, domain, 2),
	)
	skewed := joinDB(
		workload.SingleValue("S1", 2, m, domain, 1, 7, 3),
		workload.SingleValue("S2", 2, m, domain, 1, 7, 4),
	)
	q := query.Join2()
	mf := float64(m)
	rows := [][]string{}
	ok := true
	run := func(label string, db *data.Database, shares []int, pred float64) {
		res := hypercube.Run(q, db, hypercube.Config{P: p, Seed: 9, Shares: shares, SkipJoin: true})
		got := float64(res.Loads.MaxTuples)
		// Skew-free cases should be near prediction; skewed hash join is
		// exactly the degenerate case so allow wide slack upward only.
		good := within(got, pred, 0.2, 8*math.Log(pf))
		if !good {
			ok = false
		}
		rows = append(rows, []string{label, fmt.Sprint(shares), f1(got), f1(pred), f2(got / pred)})
	}
	run("skew-free, cube", skewFree, cube, 2*mf/math.Pow(pf, 2.0/3))
	run("skew-free, hash", skewFree, hashJ, 2*mf/pf)
	run("skewed, cube", skewed, cube, 2*mf/math.Pow(pf, 1.0/3))
	run("skewed, hash", skewed, hashJ, 2*mf)
	return Table{
		ID: "E1", Title: "HyperCube share choices on the 2-join (skew-free vs skewed)",
		PaperRef: "Example 3.3",
		Claim:    "cube shares give O(m/p^{2/3}) skew-free and O(m/p^{1/3}) under any skew; hash join gives O(m/p) skew-free but Ω(m) skewed",
		Columns:  []string{"case", "shares", "max load (tuples)", "predicted", "ratio"},
		Rows:     rows,
		OK:       ok,
	}
}

// E2TrianglePackingTable reproduces the table of Example 3.7: the four
// non-dominated packing vertices of C3 and the load bound each induces,
// plus the measured HC load against their maximum.
func E2TrianglePackingTable(s Scale) Table {
	m, p := sizes(s, 3000, 64, 20000, 64)
	q := query.Triangle()
	ms := []int{m, m / 2, m / 4}
	db := uniformDB(q, ms, 1<<21, 5)
	bitsM := make([]float64, 3)
	for j, a := range q.Atoms {
		bitsM[j] = float64(db.MustGet(a.Name).Bits())
	}
	best, table := bounds.SimpleLower(q, bitsM, p)
	rows := [][]string{}
	for _, row := range table {
		rows = append(rows, []string{
			fmt.Sprintf("u=%v", row.U), fk(row.Bound),
		})
	}
	res := hypercube.Run(q, db, hypercube.Config{P: p, Seed: 7})
	got := float64(res.Loads.MaxBits)
	ratio := got / best
	ok := len(table) == 4 && ratio >= 0.2 && ratio <= 8*math.Pow(math.Log(float64(p)), 2)
	rows = append(rows, []string{"measured HC load (bits)", fk(got)})
	rows = append(rows, []string{"measured / max bound", f2(ratio)})
	return Table{
		ID: "E2", Title: "pk(C3) packing table and the induced load bounds",
		PaperRef: "Example 3.7, Theorem 3.6",
		Claim:    "pk(C3) = {(1/2,1/2,1/2),(1,0,0),(0,1,0),(0,0,1)}; the optimal load is the max of the four bounds",
		Columns:  []string{"packing / quantity", "bound (bits)"},
		Rows:     rows,
		Notes:    fmt.Sprintf("cardinalities m=(%d,%d,%d), p=%d", ms[0], ms[1], ms[2], p),
		OK:       ok,
	}
}

// E3MatchingBounds validates Theorems 3.4/3.5/3.6 across the query suite:
// on skew-free data the measured HC load matches L_lower within polylog(p),
// and the LP upper bound equals the vertex-enumeration lower bound.
func E3MatchingBounds(s Scale) Table {
	m, p := sizes(s, 3000, 64, 25000, 64)
	suite := []struct {
		q  *query.Query
		ms []int
	}{
		{query.Cartesian(2), []int{m, m / 4}},
		{query.Join2(), []int{m, m / 2}},
		{query.Path(3), []int{m, m / 2, m / 4}},
		{query.Triangle(), []int{m, m, m}},
		{query.Star(3), []int{m, m / 2, m / 4}},
	}
	rows := [][]string{}
	ok := true
	for _, c := range suite {
		db := dbMatching(c.q, c.ms)
		bitsM := make([]float64, c.q.NumAtoms())
		for j, a := range c.q.Atoms {
			bitsM[j] = float64(db.MustGet(a.Name).Bits())
		}
		lower, _ := bounds.SimpleLower(c.q, bitsM, p)
		res := hypercube.Run(c.q, db, hypercube.Config{P: p, Seed: 11, SkipJoin: true})
		upper := res.PredictedBits
		got := float64(res.Loads.MaxBits)
		thmOK := within(upper, lower, 0.999, 1.001)
		loadOK := within(got, lower, 0.15, 10*math.Pow(math.Log(float64(p)), float64(c.q.NumVars())))
		if !thmOK || !loadOK {
			ok = false
		}
		rows = append(rows, []string{
			c.q.Name, fk(lower), fk(upper), fk(got), f2(got / lower),
			fmt.Sprintf("%v/%v", thmOK, loadOK),
		})
	}
	return Table{
		ID: "E3", Title: "Matching upper/lower bounds on skew-free data (query suite)",
		PaperRef: "Theorems 1.1, 3.4, 3.5, 3.6",
		Claim:    "L_upper(LP) = L_lower(pk vertices); measured HC load within polylog(p) of both",
		Columns:  []string{"query", "L_lower (bits)", "L_upper (bits)", "measured (bits)", "meas/lower", "thmOK/loadOK"},
		Rows:     rows,
		OK:       ok,
	}
}

func dbMatching(q *query.Query, ms []int) *data.Database {
	db := data.NewDatabase()
	for j, a := range q.Atoms {
		db.Put(workload.Matching(a.Name, a.Arity(), ms[j], 1<<21, int64(100+j)))
	}
	return db
}

// E4HashingLemma validates Lemma 3.1 (Appendix B): grid-hash max loads for
// matchings, degree-bounded relations, and the adversarial single-value
// case.
func E4HashingLemma(s Scale) Table {
	m, _ := sizes(s, 1<<14, 0, 1<<18, 0)
	fam := hashing.NewFamily(13)
	grid := hashing.NewGrid([]int{16, 16}, fam)
	pTot := float64(grid.Size())
	rows := [][]string{}
	ok := true

	matching := workload.Matching("R", 2, m, int64(8*m), 1)
	repM := hashing.MeasureLoads(matching, grid)
	okM := within(float64(repM.Max), float64(m)/pTot, 0.5, 4)
	rows = append(rows, []string{"matching (item 2)", fi(int64(repM.Max)), f1(float64(m) / pTot), f2(repM.Overflow), fmt.Sprint(okM)})

	// Degree-bounded: z-column frequencies ≤ m/16 = m/p1 (bin-friendly).
	zipf := workload.Zipf("R", m, int64(8*m), 0, 1.4, uint64(m/64), 2)
	repZ := hashing.MeasureLoads(zipf, grid)
	lnP := math.Log(pTot)
	okZ := within(float64(repZ.Max), float64(m)/pTot, 0.5, 12*lnP*lnP)
	rows = append(rows, []string{"degree-bounded (item 3)", fi(int64(repZ.Max)), f1(float64(m) / pTot), f2(repZ.Overflow), fmt.Sprint(okZ)})

	single := workload.SingleValue("R", 2, m, int64(8*m), 0, 3, 3)
	repS := hashing.MeasureLoads(single, grid)
	// Item 4: max load ~ m/min(p_i) = m/16, far above m/p.
	okS := within(float64(repS.Max), float64(m)/16, 0.5, 4)
	rows = append(rows, []string{"single-value (item 4)", fi(int64(repS.Max)), f1(float64(m) / 16), f2(repS.Overflow), fmt.Sprint(okS)})

	ok = okM && okZ && okS
	return Table{
		ID: "E4", Title: "Hashing lemma: grid max loads by instance class",
		PaperRef: "Lemma 3.1, Appendix B",
		Claim:    "matchings load O(m/p); degree-bounded load O(polylog·m/p); adversarial load Θ(m/min p_i)",
		Columns:  []string{"instance", "max bucket load", "reference", "max/mean", "ok"},
		Rows:     rows,
		Notes:    fmt.Sprintf("m=%d tuples on a 16×16 grid", m),
		OK:       ok,
	}
}

// E5SkewJoin reproduces the §4.1 skew join: measured load versus the
// Eq. (10) prediction and versus the vanilla hash join across skew levels.
func E5SkewJoin(s Scale) Table {
	m, p := sizes(s, 4000, 32, 40000, 64)
	domain := int64(1 << 21)
	sets := []struct {
		name   string
		s1, s2 *data.Relation
		skewed bool
	}{
		{"zipf s=1.2", workload.Zipf("S1", m, domain, 1, 1.2, uint64(m/4), 1), workload.Zipf("S2", m, domain, 1, 1.2, uint64(m/4), 2), true},
		{"zipf s=2.0", workload.Zipf("S1", m, domain, 1, 2.0, uint64(m/4), 3), workload.Zipf("S2", m, domain, 1, 2.0, uint64(m/4), 4), true},
		{"single value", workload.SingleValue("S1", 2, m, domain, 1, 7, 5), workload.SingleValue("S2", 2, m, domain, 1, 7, 6), true},
		{"matching", workload.Matching("S1", 2, m, domain, 7), workload.Matching("S2", 2, m, domain, 8), false},
	}
	rows := [][]string{}
	ok := true
	for _, set := range sets {
		db := joinDB(set.s1, set.s2)
		res := skew.RunJoin(db, skew.JoinConfig{P: p, Seed: 17, SkipJoin: true})
		vanilla := skew.VanillaHashJoinLoads(db, p, 17)
		ratio := float64(res.MaxVirtualBits) / res.PredictedBits
		good := ratio <= 10*math.Log(float64(p)) && ratio >= 0.05
		if set.skewed && res.MaxVirtualBits > vanilla {
			good = false
		}
		if !good {
			ok = false
		}
		rows = append(rows, []string{
			set.name, fk(float64(res.MaxVirtualBits)), fk(res.PredictedBits),
			f2(ratio), fk(float64(vanilla)),
			fmt.Sprintf("%d/%d/%d", res.NumH1, res.NumH2, res.NumH12),
		})
	}
	return Table{
		ID: "E5", Title: "Skew join: measured load vs Eq. (10) vs vanilla hash join",
		PaperRef: "§4.1, Eq. (10)",
		Claim:    "skew join load = O(L log p) for L = max(m1/p, m2/p, L1, L2, L12); vanilla degrades to Ω(m) under skew",
		Columns:  []string{"dataset", "skew join (bits)", "Eq.10 pred (bits)", "ratio", "vanilla (bits)", "H1/H2/H12"},
		Rows:     rows,
		Notes:    fmt.Sprintf("m=%d per relation, p=%d", m, p),
		OK:       ok,
	}
}

// E6ResidualBounds reproduces Example 4.8: residual-packing lower bounds
// dominate the simple bounds exactly when the data is skewed.
func E6ResidualBounds(s Scale) Table {
	m, p := sizes(s, 4096, 16, 32768, 64)
	domain := int64(1 << 21)
	rows := [][]string{}
	ok := true

	// Join with planted joint skew: residual on {z} should dominate.
	hv := []workload.HeavySpec{{Value: 1, Count: m / 4}, {Value: 2, Count: m / 8}}
	db := joinDB(
		workload.PlantedHeavy("S1", m, domain, 1, hv, 1),
		workload.PlantedHeavy("S2", m, domain, 1, hv, 2),
	)
	q := query.Join2()
	bitsM := []float64{float64(db.MustGet("S1").Bits()), float64(db.MustGet("S2").Bits())}
	simple, _ := bounds.SimpleLower(q, bitsM, p)
	residual, _ := bounds.ResidualLower(q, query.NewVarSet(2), db, p)
	res := skew.RunJoin(db, skew.JoinConfig{P: p, Seed: 23, SkipJoin: true})
	meas := float64(res.MaxVirtualBits)
	okJ := residual > simple && within(meas, residual, 0.1, 10*math.Log(float64(p)))
	rows = append(rows, []string{"Join2 skewed z", fk(simple), fk(residual), fk(meas), fmt.Sprint(okJ)})
	if !okJ {
		ok = false
	}

	// Join with matching data: simple bound should win (residual ≤ simple).
	dbU := joinDB(
		workload.Matching("S1", 2, m, domain, 3),
		workload.Matching("S2", 2, m, domain, 4),
	)
	bitsU := []float64{float64(dbU.MustGet("S1").Bits()), float64(dbU.MustGet("S2").Bits())}
	simpleU, _ := bounds.SimpleLower(q, bitsU, p)
	residualU, _ := bounds.ResidualLower(q, query.NewVarSet(2), dbU, p)
	okU := residualU <= simpleU*1.01
	rows = append(rows, []string{"Join2 matching", fk(simpleU), fk(residualU), "-", fmt.Sprint(okU)})
	if !okU {
		ok = false
	}

	// Triangle with a popular vertex: residual on {x1} via packing (1,0,1).
	qc := query.Triangle()
	dbt := data.NewDatabase()
	dbt.Put(workload.PlantedHeavy("S1", m/4, domain, 0, []workload.HeavySpec{{Value: 5, Count: m / 16}}, 5))
	dbt.Put(workload.Uniform("S2", 2, m/4, 2048, 6))
	dbt.Put(workload.PlantedHeavy("S3", m/4, domain, 1, []workload.HeavySpec{{Value: 5, Count: m / 16}}, 7))
	bitsT := make([]float64, 3)
	for j, a := range qc.Atoms {
		bitsT[j] = float64(dbt.MustGet(a.Name).Bits())
	}
	simpleT, _ := bounds.SimpleLower(qc, bitsT, p)
	residualT, _ := bounds.ResidualLower(qc, query.NewVarSet(0), dbt, p)
	okT := residualT > 0
	rows = append(rows, []string{"C3 popular x1", fk(simpleT), fk(residualT), "-", fmt.Sprint(okT)})
	if !okT {
		ok = false
	}

	return Table{
		ID: "E6", Title: "Residual-packing lower bounds under known degree sequences",
		PaperRef: "Example 4.8, Theorem 4.7",
		Claim:    "skew raises the bound: L_x = (Σ_h Π M_j(h)^{u_j}/p)^{1/u} exceeds the cardinality-only bound on skewed data and never on matchings",
		Columns:  []string{"instance", "simple (bits)", "residual (bits)", "measured (bits)", "ok"},
		Rows:     rows,
		OK:       ok,
	}
}

// E7BinCombGeneral exercises the general §4.2 algorithm on skewed multiway
// joins: measured load versus max_B p^{λ(B)} and versus vanilla hashing.
func E7BinCombGeneral(s Scale) Table {
	m, p := sizes(s, 2000, 16, 12000, 64)
	domain := int64(1 << 21)
	rows := [][]string{}
	ok := true

	cases := []struct {
		name string
		q    *query.Query
		db   *data.Database
	}{
		{"join2 single-z", query.Join2(), joinDB(
			workload.SingleValue("S1", 2, m, domain, 1, 7, 1),
			workload.SingleValue("S2", 2, m, domain, 1, 7, 2))},
		{"join2 zipf", query.Join2(), joinDB(
			workload.Zipf("S1", m, domain, 1, 1.7, uint64(m/8), 3),
			workload.Zipf("S2", m, domain, 1, 1.7, uint64(m/8), 4))},
		{"C3 popular vertex", query.Triangle(), func() *data.Database {
			db := data.NewDatabase()
			db.Put(workload.PlantedHeavy("S1", m/2, domain, 0, []workload.HeavySpec{{Value: 0, Count: m / 8}}, 5))
			db.Put(workload.Uniform("S2", 2, m/2, int64(m), 6))
			db.Put(workload.PlantedHeavy("S3", m/2, domain, 1, []workload.HeavySpec{{Value: 0, Count: m / 8}}, 7))
			return db
		}()},
	}
	for _, c := range cases {
		res := skew.RunGeneral(c.q, c.db, skew.GeneralConfig{P: p, Seed: 29, SkipJoin: true})
		ratio := float64(res.MaxVirtualBits) / res.PredictedBits
		good := ratio <= 20*math.Pow(math.Log(float64(p)), 2) && res.NumBinCombos >= 1
		if !good {
			ok = false
		}
		rows = append(rows, []string{
			c.name, fi(int64(res.NumBinCombos)), fk(res.PredictedBits),
			fk(float64(res.MaxVirtualBits)), f2(ratio),
		})
	}
	return Table{
		ID: "E7", Title: "General bin-combination algorithm on skewed multiway joins",
		PaperRef: "§4.2, Theorem 4.6",
		Claim:    "load ≤ log^{O(1)} p · max_B p^{λ(B)} over all bin combinations",
		Columns:  []string{"case", "#combos", "max_B p^λ (bits)", "measured (bits)", "ratio"},
		Rows:     rows,
		Notes:    "overweight factor 1 (practical); see A4 for the paper's N_bc",
		OK:       ok,
	}
}

// E8ReplicationRate reproduces §5 / Example 5.2: the replication rate r
// versus reducer size L for the triangle query follows Θ(sqrt(M/L)).
func E8ReplicationRate(s Scale) Table {
	m, _ := sizes(s, 4000, 0, 30000, 0)
	q := query.Triangle()
	db := uniformDB(q, []int{m, m, m}, 1<<21, 31)
	bitsM := make([]float64, 3)
	for j, a := range q.Atoms {
		bitsM[j] = float64(db.MustGet(a.Name).Bits())
	}
	rows := [][]string{}
	type point struct{ r, l float64 }
	var pts []point
	for _, p := range []int{8, 64, 512} {
		r, maxBits := mapreduce.MeasuredReplication(q, db, p, 31)
		lb := mapreduce.ReplicationLowerBound(q, bitsM, float64(maxBits))
		rows = append(rows, []string{
			fi(int64(p)), fk(float64(maxBits)), f2(r), f2(lb), f2(r / lb),
		})
		pts = append(pts, point{r, float64(maxBits)})
	}
	// Shape check: r should scale like L^{-1/2}: for consecutive sweep
	// points, r2/r1 ≈ sqrt(L1/L2) within a factor 2.
	ok := true
	for i := 1; i < len(pts); i++ {
		gotRatio := pts[i].r / pts[i-1].r
		wantRatio := math.Sqrt(pts[i-1].l / pts[i].l)
		if !within(gotRatio, wantRatio, 0.5, 2) {
			ok = false
		}
	}
	return Table{
		ID: "E8", Title: "Replication rate vs reducer size for C3",
		PaperRef: "§5, Theorem 5.1, Example 5.2",
		Claim:    "r = Θ(sqrt(M/L)); measured r stays above the Theorem 5.1 bound and scales as L^{-1/2}",
		Columns:  []string{"p", "reducer size L (bits)", "measured r", "Thm 5.1 bound", "r/bound"},
		Rows:     rows,
		Notes:    fmt.Sprintf("m=%d per relation", m),
		OK:       ok,
	}
}

// E9SkewResilience validates Corollary 3.2 (ii): equal shares keep the HC
// load at O(m/p^{1/k}) on any database, while the hash join collapses.
func E9SkewResilience(s Scale) Table {
	m, p := sizes(s, 4000, 64, 40000, 512)
	domain := int64(1 << 21)
	db := joinDB(
		workload.SingleValue("S1", 2, m, domain, 1, 7, 1),
		workload.SingleValue("S2", 2, m, domain, 1, 7, 2),
	)
	q := query.Join2()
	mf, pf := float64(m), float64(p)
	resEq := hypercube.Run(q, db, hypercube.Config{P: p, Seed: 3, EqualShares: true, SkipJoin: true})
	resHash := hypercube.Run(q, db, hypercube.Config{P: p, Seed: 3, Shares: []int{1, 1, p}, SkipJoin: true})
	predEq := 2 * mf / math.Pow(pf, 1.0/3)
	predHash := 2 * mf
	okEq := within(float64(resEq.Loads.MaxTuples), predEq, 0.2, 6)
	okHash := within(float64(resHash.Loads.MaxTuples), predHash, 0.9, 1.1)
	rows := [][]string{
		{"HC equal shares", fmt.Sprint(resEq.Shares), fi(resEq.Loads.MaxTuples), f1(predEq), fmt.Sprint(okEq)},
		{"hash join", fmt.Sprint(resHash.Shares), fi(resHash.Loads.MaxTuples), f1(predHash), fmt.Sprint(okHash)},
	}
	return Table{
		ID: "E9", Title: "Skew resilience of HyperCube with equal shares",
		PaperRef: "Corollary 3.2 (ii)",
		Claim:    "equal shares bound the load by O(m/p^{1/k}) with no knowledge of skew; hash join hits Ω(m)",
		Columns:  []string{"algorithm", "shares", "max load (tuples)", "predicted", "ok"},
		Rows:     rows,
		Notes:    fmt.Sprintf("worst case: all %d tuples share one z; p=%d", m, p),
		OK:       okEq && okHash,
	}
}

// E10CartesianProduct reproduces the §1 warm-up: the optimal load for
// S1 × S2 is 2·sqrt(m1·m2/p) tuples, achieved by the p1×p2 grid.
func E10CartesianProduct(s Scale) Table {
	m1, p := sizes(s, 8000, 64, 64000, 256)
	m2 := m1 / 4
	q := query.Cartesian(2)
	db := data.NewDatabase()
	db.Put(workload.Uniform("S1", 1, m1, 1<<21, 1))
	db.Put(workload.Uniform("S2", 1, m2, 1<<21, 2))
	res := hypercube.Run(q, db, hypercube.Config{P: p, Seed: 5, SkipJoin: true})
	pred := 2 * math.Sqrt(float64(m1)*float64(m2)/float64(p))
	got := float64(res.Loads.MaxTuples)
	bitsM := []float64{float64(db.MustGet("S1").Bits()), float64(db.MustGet("S2").Bits())}
	lower, _ := bounds.SimpleLower(q, bitsM, p)
	ok := within(got, pred, 0.4, 3)
	rows := [][]string{
		{"shares", fmt.Sprint(res.Shares), ""},
		{"measured max load (tuples)", f1(got), f2(got / pred)},
		{"predicted 2·sqrt(m1m2/p)", f1(pred), "1.00"},
		{"lower bound (bits)", fk(lower), ""},
		{"measured (bits)", fk(float64(res.Loads.MaxBits)), f2(float64(res.Loads.MaxBits) / lower)},
	}
	return Table{
		ID: "E10", Title: "Cartesian product: grid allocation is optimal",
		PaperRef: "§1 (overview), footnote 2",
		Claim:    "the p1×p2 grid with p1=sqrt(m1p/m2) achieves load 2·sqrt(m1m2/p), matching the inner-product lower bound",
		Columns:  []string{"quantity", "value", "ratio"},
		Rows:     rows,
		Notes:    fmt.Sprintf("m1=%d, m2=%d, p=%d", m1, m2, p),
		OK:       ok,
	}
}
