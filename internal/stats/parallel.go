package stats

import (
	"runtime"
	"sync"

	"repro/internal/data"
	"repro/internal/hashing"
)

// parallelMinRows is the row count below which the chunked statistics scans
// stay serial: goroutine fan-out costs more than it saves on small
// relations. A var (not const) so tests can lower it and exercise the
// parallel paths on small inputs.
var parallelMinRows = 1 << 15

// scanChunks splits [0, m) into up to GOMAXPROCS near-equal half-open row
// ranges, or returns nil when the scan should stay serial (small input or a
// single-CPU process).
func scanChunks(m int) [][2]int {
	workers := runtime.GOMAXPROCS(0)
	if m < parallelMinRows || workers < 2 {
		return nil
	}
	if workers > m {
		workers = m
	}
	out := make([][2]int, 0, workers)
	for i := 0; i < workers; i++ {
		lo, hi := i*m/workers, (i+1)*m/workers
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	if len(out) < 2 {
		return nil
	}
	return out
}

// parallelFrequencies runs FrequenciesOrdered's counting loop with one
// goroutine per chunk and merges the partial maps — the distributed
// statistics pass the paper assumes (each input server counts its own
// partition, then the counts are summed) run on real threads. Every chunk
// count is exact, so the merged map is identical to the serial scan's.
func parallelFrequencies(cols [][]int64, attrs []int, chunks [][2]int) *FreqMap {
	parts := make([]*FreqMap, len(chunks))
	var wg sync.WaitGroup
	for i, ch := range chunks {
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			f := &FreqMap{
				Attrs:  append([]int(nil), attrs...),
				Counts: make(map[data.Key]int64),
				Total:  int64(hi - lo),
			}
			if len(cols) == 1 {
				for _, v := range cols[0][lo:hi] {
					f.Counts[data.Key1(v)]++
				}
			} else {
				proj := make(data.Tuple, len(cols))
				for row := lo; row < hi; row++ {
					for c, col := range cols {
						proj[c] = col[row]
					}
					f.Counts[data.KeyOf(proj)]++
				}
			}
			parts[i] = f
		}(i, ch[0], ch[1])
	}
	wg.Wait()
	return Merge(parts...)
}

// parallelDistinct counts the distinct values of col with chunked scans; the
// per-chunk sets are unioned afterwards, so the result matches the serial
// single-set scan exactly.
func parallelDistinct(col []int64, chunks [][2]int) int64 {
	sets := make([]map[int64]struct{}, len(chunks))
	var wg sync.WaitGroup
	for i, ch := range chunks {
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			seen := make(map[int64]struct{}, hi-lo)
			for _, v := range col[lo:hi] {
				seen[v] = struct{}{}
			}
			sets[i] = seen
		}(i, ch[0], ch[1])
	}
	wg.Wait()
	union := sets[0]
	for _, s := range sets[1:] {
		for v := range s {
			union[v] = struct{}{}
		}
	}
	return int64(len(union))
}

// rescanContent recomputes one relation's commutative content sum from its
// columns. The fold is a wrapping uint64 addition of avalanched per-tuple
// hashes — commutative and associative — so the chunked parallel scan is
// bit-identical to the serial one (FingerprintRescan stays the exact
// reference for data.Relation.ContentSum).
func rescanContent(cols [][]int64, m int) uint64 {
	chunks := scanChunks(m)
	if chunks == nil {
		return rescanContentRange(cols, 0, m)
	}
	partial := make([]uint64, len(chunks))
	var wg sync.WaitGroup
	for i, ch := range chunks {
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			partial[i] = rescanContentRange(cols, lo, hi)
		}(i, ch[0], ch[1])
	}
	wg.Wait()
	var content uint64
	for _, s := range partial {
		content += s
	}
	return content
}

// rescanContentRange is the serial content fold over rows [lo, hi).
func rescanContentRange(cols [][]int64, lo, hi int) uint64 {
	var content uint64
	for i := lo; i < hi; i++ {
		th := fnvOffset
		for _, col := range cols {
			th = (th ^ uint64(col[i])) * fnvPrime
		}
		content += hashing.Mix64(th)
	}
	return content
}
