package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/data"
	"repro/internal/hypercube"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/skew"
	"repro/internal/workload"
)

// CommBench is the committed BENCH_comm.json baseline for the
// communication phase: the sharded zero-channel delivery engine measured
// against the legacy channel engine on a small-Virtual instance (HyperCube
// triangle, Virtual = p) and a large-Virtual one (§4.1 skew join with many
// heavy hitters, Virtual ≫ p — the regime where goroutine-per-server costs
// dominated). CI's comm bench smoke step keeps the harness running; this
// artifact records the numbers a change is judged against. The sharded
// engine must beat the channel engine on the large instance, with
// goroutines per Round at O(GOMAXPROCS) instead of O(Virtual + parts).
type CommBench struct {
	Instance   string `json:"instance"`
	GoArch     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`

	Small CommScenario `json:"small_virtual"`
	Large CommScenario `json:"large_virtual"`
}

// CommScenario compares the two engines on one routing instance.
type CommScenario struct {
	// Virtual is the cluster size the round runs on; RoutedTuples is the
	// delivered tuple count of one Round (the ns/tuple denominator).
	Virtual      int   `json:"virtual_servers"`
	RoutedTuples int64 `json:"routed_tuples"`

	Sharded CommEngineStats `json:"sharded"`
	Channel CommEngineStats `json:"channel"`
}

// CommEngineStats are one engine's measured costs for a full Round
// (route + deliver, no local computation) on a reused cluster.
type CommEngineStats struct {
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerTuple  float64 `json:"ns_per_tuple"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// PeakExtraGoroutines is the peak goroutine count observed during a
	// Round minus the pre-round baseline: O(GOMAXPROCS) for the sharded
	// engine, O(Virtual + parts) for the channel engine.
	PeakExtraGoroutines int `json:"peak_extra_goroutines"`
}

// peakExtraGoroutines runs fn in a goroutine and samples the process
// goroutine count until it returns, reporting the peak above the baseline
// taken before the call.
func peakExtraGoroutines(fn func()) int {
	base := runtime.NumGoroutine()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	peak := 0
	for {
		select {
		case <-done:
			return peak
		default:
			if n := runtime.NumGoroutine() - base; n > peak {
				peak = n
			}
			runtime.Gosched()
		}
	}
}

// measureCommEngine times Round on a reused cluster (Reset between
// iterations — the pooled steady state) for one engine.
func measureCommEngine(virtual int, comm mpc.CommEngine, db *data.Database, router mpc.Router, tuples int64) CommEngineStats {
	c := mpc.NewCluster(virtual)
	c.Comm = comm
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Reset()
			if err := c.Round(db, router); err != nil {
				b.Fatal(err)
			}
		}
	})
	peak := peakExtraGoroutines(func() {
		c.Reset()
		if err := c.Round(db, router); err != nil {
			panic(err)
		}
	})
	ns := float64(r.NsPerOp())
	return CommEngineStats{
		NsPerOp:             ns,
		NsPerTuple:          ns / float64(tuples),
		AllocsPerOp:         r.AllocsPerOp(),
		PeakExtraGoroutines: peak,
	}
}

// measureCommScenario runs both engines on one instance.
func measureCommScenario(virtual int, db *data.Database, router mpc.Router) CommScenario {
	probe := mpc.NewCluster(virtual)
	if err := probe.Round(db, router); err != nil {
		panic(err)
	}
	tuples := probe.Loads().TotalTuples
	return CommScenario{
		Virtual:      virtual,
		RoutedTuples: tuples,
		Sharded:      measureCommEngine(virtual, mpc.ShardedComm, db, router, tuples),
		Channel:      measureCommEngine(virtual, mpc.ChannelComm, db, router, tuples),
	}
}

// runCommBench measures the communication-engine baseline and writes it as
// JSON.
func runCommBench(path string) error {
	// Small Virtual: the HyperCube triangle round, Virtual = p = 64.
	tri := triangleMatchingsDB()
	hcPlan := hypercube.BuildPlan(query.Triangle(), tri, hypercube.Config{P: 64, Seed: 3})
	small := measureCommScenario(hcPlan.Phys.Virtual, tri, hcPlan.Phys.Router)

	// Large Virtual: the §4.1 skew join on the zipf instance at p=256 —
	// hundreds of heavy hitters allocate Θ(p) virtual servers each, the
	// regime whose goroutine/channel overhead motivated the sharded engine.
	zdb := data.NewDatabase()
	zdb.Put(workload.Zipf("S1", 5000, 1<<20, 1, 1.6, 500, 1))
	zdb.Put(workload.Zipf("S2", 5000, 1<<20, 1, 1.6, 500, 2))
	sjPlan := skew.PlanJoin(query.Join2(), zdb, skew.JoinConfig{P: 256, Seed: 3, SkipJoin: true})
	large := measureCommScenario(sjPlan.Phys.Virtual, zdb, sjPlan.Phys.Router)

	out := CommBench{
		Instance: "small: triangle matchings m=5000 p=64 (HC shares); " +
			"large: join2 zipf m=5000 zipf(1.6) over 500 values p=256 (§4.1 router)",
		GoArch:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Small:      small,
		Large:      large,
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("communication baseline written to %s\n%s", path, blob)
	return nil
}
