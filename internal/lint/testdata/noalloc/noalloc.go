// Package p exercises the //skewlint:noalloc contract with shapes taken
// from the routing hot paths.
package p

import (
	"fmt"

	"repro/internal/mpc"
)

// Destinations mirrors a router hot path: growth into the caller's dst
// buffer is the only allowed append target.
//
//skewlint:noalloc
func Destinations(t []int64, dst []int) []int {
	for range t {
		dst = append(dst, 1)
	}
	return dst
}

// BadAllocs collects the flagged constructs.
//
//skewlint:noalloc
func BadAllocs(n int, dst []int) []int {
	tmp := make([]int, n)    // want `make allocates`
	local := []int{1, 2}     // want `composite literal allocates`
	local = append(local, n) // want `append to a slice not rooted in a caller-provided buffer`
	dst = append(dst, tmp...)
	_ = fmt.Sprint(n) // want `fmt.Sprint allocates`
	return append(dst, local...)
}

// BadStrings collects the string and interface boxing cases.
//
//skewlint:noalloc
func BadStrings(a, b string, v int64) string {
	s := a + b    // want `string concatenation allocates`
	_ = []byte(a) // want `string conversion copies`
	sink(v)       // want `implicit conversion to interface parameter allocates`
	return s
}

// BadClosure creates a closure per call.
//
//skewlint:noalloc
func BadClosure(dst []int) []int {
	f := func() {} // want `closure literal allocates`
	f()
	return dst
}

// ColdPath mirrors the comm engine's lazy scratch growth: an audited
// directive waives the one-time allocation.
//
//skewlint:noalloc
func ColdPath(dst []int) []int {
	if cap(dst) == 0 {
		//skewlint:allow noalloc — one-time growth, amortized across calls
		dst = make([]int, 0, 8)
	}
	return dst
}

// OwnedChain mirrors the comm engine's d := &table[server] pattern:
// ownership propagates through local aliases of caller buffers.
//
//skewlint:noalloc
func OwnedChain(table [][]int, server, v int) {
	d := &table[server]
	*d = append(*d, v)
}

// Unannotated functions may allocate freely.
func Unannotated() []int {
	return make([]int, 3)
}

// CompileSpan mirrors the span-router contract: a closure assigned to
// mpc.SpanRoute.PerRow runs once per routed row, so its body is
// implicitly //skewlint:noalloc.
func CompileSpan(sp *mpc.SpanRoute, p int) {
	sp.PerRow = func(row int, dst []int) []int {
		tmp := make([]int, 1) // want `make allocates`
		_ = tmp
		return append(dst, row%p)
	}
}

func sink(v interface{}) { _ = v }
