package join

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/query"
	"repro/internal/workload"
)

func relOf(name string, arity int, domain int64, rows ...[]int64) *data.Relation {
	r := data.NewRelation(name, arity, domain)
	for _, row := range rows {
		r.Add(row...)
	}
	return r
}

func TestJoinTwoRelations(t *testing.T) {
	// q(x,y,z) = S1(x,z), S2(y,z)
	q := query.Join2()
	rels := map[string]*data.Relation{
		"S1": relOf("S1", 2, 10, []int64{1, 5}, []int64{2, 6}),
		"S2": relOf("S2", 2, 10, []int64{3, 5}, []int64{4, 5}, []int64{7, 9}),
	}
	out := SortTuples(Join(q, rels))
	// z=5 joins (1) with (3),(4): outputs (1,3,5),(1,4,5).
	want := []data.Tuple{{1, 3, 5}, {1, 4, 5}}
	if !EqualTupleSets(out, want) {
		t.Errorf("Join = %v, want %v", out, want)
	}
}

func TestJoinTriangle(t *testing.T) {
	q := query.Triangle()
	// Edges forming triangle (1,2,3) plus noise.
	rels := map[string]*data.Relation{
		"S1": relOf("S1", 2, 10, []int64{1, 2}, []int64{4, 5}),
		"S2": relOf("S2", 2, 10, []int64{2, 3}, []int64{5, 6}),
		"S3": relOf("S3", 2, 10, []int64{3, 1}, []int64{6, 7}),
	}
	out := Join(q, rels)
	want := []data.Tuple{{1, 2, 3}}
	if !EqualTupleSets(out, want) {
		t.Errorf("Join = %v, want %v", out, want)
	}
}

func TestJoinCartesian(t *testing.T) {
	q := query.Cartesian(2)
	rels := map[string]*data.Relation{
		"S1": relOf("S1", 1, 10, []int64{1}, []int64{2}),
		"S2": relOf("S2", 1, 10, []int64{8}, []int64{9}),
	}
	out := Join(q, rels)
	if len(out) != 4 {
		t.Errorf("cartesian size = %d, want 4", len(out))
	}
}

func TestJoinEmptyRelation(t *testing.T) {
	q := query.Join2()
	rels := map[string]*data.Relation{
		"S1": relOf("S1", 2, 10, []int64{1, 5}),
		"S2": relOf("S2", 2, 10),
	}
	if out := Join(q, rels); len(out) != 0 {
		t.Errorf("Join with empty relation = %v", out)
	}
}

func TestJoinMissingRelation(t *testing.T) {
	q := query.Join2()
	rels := map[string]*data.Relation{
		"S1": relOf("S1", 2, 10, []int64{1, 5}),
	}
	if out := Join(q, rels); len(out) != 0 {
		t.Errorf("Join with missing relation = %v", out)
	}
	if out := NestedLoop(q, rels); len(out) != 0 {
		t.Errorf("NestedLoop with missing relation = %v", out)
	}
}

func TestJoinNoMatches(t *testing.T) {
	q := query.Join2()
	rels := map[string]*data.Relation{
		"S1": relOf("S1", 2, 10, []int64{1, 5}),
		"S2": relOf("S2", 2, 10, []int64{2, 6}),
	}
	if out := Join(q, rels); len(out) != 0 {
		t.Errorf("Join = %v, want empty", out)
	}
}

func TestJoinSingleAtomIdentity(t *testing.T) {
	q := query.MustParse("q(x,y) = R(x,y)")
	r := relOf("R", 2, 10, []int64{1, 2}, []int64{3, 4})
	out := SortTuples(Join(q, map[string]*data.Relation{"R": r}))
	want := []data.Tuple{{1, 2}, {3, 4}}
	if !EqualTupleSets(out, want) {
		t.Errorf("Join = %v", out)
	}
}

func TestJoinAgainstNestedLoopRandom(t *testing.T) {
	queries := []*query.Query{
		query.Join2(), query.Triangle(), query.Path(3), query.Star(2), query.Cycle(4), query.Cartesian(2),
	}
	rng := rand.New(rand.NewSource(7))
	for _, q := range queries {
		for trial := 0; trial < 5; trial++ {
			rels := make(map[string]*data.Relation)
			for _, a := range q.Atoms {
				// Small domain to force collisions and matches.
				r := data.NewRelation(a.Name, a.Arity(), 6)
				seen := make(map[string]bool)
				for i := 0; i < 12; i++ {
					tu := make(data.Tuple, a.Arity())
					for j := range tu {
						tu[j] = int64(rng.Intn(6))
					}
					if !seen[tu.Key()] {
						seen[tu.Key()] = true
						r.Add(tu...)
					}
				}
				rels[a.Name] = r
			}
			fast := Join(q, rels)
			slow := NestedLoop(q, rels)
			if !EqualTupleSets(fast, slow) {
				t.Errorf("%s trial %d: hash join and nested loop disagree (%d vs %d tuples)",
					q.Name, trial, len(fast), len(slow))
			}
		}
	}
}

func TestJoinProducesNoDuplicates(t *testing.T) {
	q := query.Triangle()
	db := workload.ForQuery([]workload.AtomSpec{
		{Name: "S1", Arity: 2, M: 200, Domain: 20},
		{Name: "S2", Arity: 2, M: 180, Domain: 20},
		{Name: "S3", Arity: 2, M: 150, Domain: 20},
	}, 3)
	out := Join(q, FromDatabase(db))
	if len(Dedup(append([]data.Tuple(nil), out...))) != len(out) {
		t.Error("Join produced duplicate outputs on duplicate-free input")
	}
}

func TestPlanOrderStartsConnected(t *testing.T) {
	// For a path query, the plan should never insert a cross product: each
	// subsequent atom must share a variable with the bound set.
	q := query.Path(4)
	rels := make(map[string]*data.Relation)
	for _, a := range q.Atoms {
		rels[a.Name] = relOf(a.Name, 2, 10, []int64{1, 2})
	}
	order := planOrder(q, rels)
	bound := map[int]bool{}
	for step, j := range order {
		if step > 0 {
			shared := false
			for _, v := range q.Atoms[j].Vars {
				if bound[v] {
					shared = true
				}
			}
			if !shared {
				t.Errorf("step %d atom %d shares no variable with prefix", step, j)
			}
		}
		for _, v := range q.Atoms[j].Vars {
			bound[v] = true
		}
	}
}

func TestJoinLimitTruncates(t *testing.T) {
	// Cartesian 10×10 = 100 answers; limit 7 returns exactly 7 of them.
	q := query.Cartesian(2)
	r1 := data.NewRelation("S1", 1, 100)
	r2 := data.NewRelation("S2", 1, 100)
	for i := int64(0); i < 10; i++ {
		r1.Add(i)
		r2.Add(i + 50)
	}
	rels := map[string]*data.Relation{"S1": r1, "S2": r2}
	got := JoinLimit(q, rels, 7)
	if len(got) != 7 {
		t.Fatalf("JoinLimit = %d tuples, want 7", len(got))
	}
	// Every returned tuple must be a genuine answer.
	full := Join(q, rels)
	set := map[string]bool{}
	for _, tu := range full {
		set[tu.Key()] = true
	}
	for _, tu := range got {
		if !set[tu.Key()] {
			t.Errorf("JoinLimit fabricated tuple %v", tu)
		}
	}
}

func TestJoinLimitZeroMeansUnlimited(t *testing.T) {
	q := query.Cartesian(2)
	r1 := data.NewRelation("S1", 1, 100)
	r2 := data.NewRelation("S2", 1, 100)
	for i := int64(0); i < 5; i++ {
		r1.Add(i)
		r2.Add(i)
	}
	rels := map[string]*data.Relation{"S1": r1, "S2": r2}
	if got := JoinLimit(q, rels, 0); len(got) != 25 {
		t.Errorf("unlimited JoinLimit = %d, want 25", len(got))
	}
}

func TestSortTuples(t *testing.T) {
	ts := []data.Tuple{{2, 1}, {1, 9}, {1, 2}}
	SortTuples(ts)
	if ts[0].Key() != "1,2" || ts[1].Key() != "1,9" || ts[2].Key() != "2,1" {
		t.Errorf("SortTuples = %v", ts)
	}
}

func TestEqualTupleSets(t *testing.T) {
	a := []data.Tuple{{1, 2}, {3, 4}}
	b := []data.Tuple{{3, 4}, {1, 2}}
	if !EqualTupleSets(a, b) {
		t.Error("order should not matter")
	}
	if EqualTupleSets(a, a[:1]) {
		t.Error("length mismatch accepted")
	}
	c := []data.Tuple{{1, 2}, {1, 2}}
	if EqualTupleSets(a, c) {
		t.Error("multiset counts must match")
	}
}

func TestDedup(t *testing.T) {
	ts := []data.Tuple{{1}, {2}, {1}, {3}, {2}}
	got := Dedup(ts)
	if len(got) != 3 || got[0][0] != 1 || got[1][0] != 2 || got[2][0] != 3 {
		t.Errorf("Dedup = %v", got)
	}
}

// Property: joining a relation with itself's copy under a two-atom chain
// yields exactly the composable pairs.
func TestJoinChainCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		q := query.Path(2) // S1(x1,x2), S2(x2,x3)
		r1 := data.NewRelation("S1", 2, 5)
		r2 := data.NewRelation("S2", 2, 5)
		seen1 := map[string]bool{}
		seen2 := map[string]bool{}
		for i := 0; i < 10; i++ {
			t1 := data.Tuple{int64(rng.Intn(5)), int64(rng.Intn(5))}
			if !seen1[t1.Key()] {
				seen1[t1.Key()] = true
				r1.Add(t1...)
			}
			t2 := data.Tuple{int64(rng.Intn(5)), int64(rng.Intn(5))}
			if !seen2[t2.Key()] {
				seen2[t2.Key()] = true
				r2.Add(t2...)
			}
		}
		rels := map[string]*data.Relation{"S1": r1, "S2": r2}
		// Count matches directly.
		want := 0
		r1.Each(func(_ int, a data.Tuple) bool {
			r2.Each(func(_ int, b data.Tuple) bool {
				if a[1] == b[0] {
					want++
				}
				return true
			})
			return true
		})
		return len(Join(q, rels)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
