package workload

import (
	"testing"

	"repro/internal/data"
	"repro/internal/stats"
)

func TestUniformExactCardinalityNoDuplicates(t *testing.T) {
	r := Uniform("S", 2, 1000, 10000, 1)
	if r.Size() != 1000 {
		t.Errorf("Size = %d", r.Size())
	}
	if r.ContainsDuplicates() {
		t.Error("duplicates present")
	}
}

func TestUniformDeterministic(t *testing.T) {
	a := Uniform("S", 2, 100, 1000, 5)
	b := Uniform("S", 2, 100, 1000, 5)
	a.Sort()
	b.Sort()
	for i := 0; i < a.Size(); i++ {
		if a.Tuple(i).Key() != b.Tuple(i).Key() {
			t.Fatal("same seed produced different data")
		}
	}
}

func TestUniformSeedsDiffer(t *testing.T) {
	a := Uniform("S", 1, 50, 1000000, 1)
	b := Uniform("S", 1, 50, 1000000, 2)
	a.Sort()
	b.Sort()
	same := true
	for i := 0; i < a.Size(); i++ {
		if a.Tuple(i)[0] != b.Tuple(i)[0] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestUniformTooDensePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Uniform("S", 1, 9, 10, 1)
}

func TestMatchingColumnsDistinct(t *testing.T) {
	r := Matching("S", 2, 500, 10000, 3)
	if r.Size() != 500 {
		t.Fatalf("Size = %d", r.Size())
	}
	for c := 0; c < 2; c++ {
		f := stats.Frequencies(r, []int{c})
		for k, cnt := range f.Counts {
			if cnt != 1 {
				t.Fatalf("column %d value %s has frequency %d, want 1", c, k, cnt)
			}
		}
	}
}

func TestMatchingDensePermPath(t *testing.T) {
	// m*2 > domain exercises the permutation path.
	r := Matching("S", 2, 60, 100, 3)
	if r.Size() != 60 || r.ContainsDuplicates() {
		t.Error("dense matching wrong")
	}
}

func TestMatchingPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Matching("S", 1, 11, 10, 1)
}

func TestSingleValueAllShareColumn(t *testing.T) {
	r := SingleValue("S", 2, 100, 1000, 1, 42, 9)
	if r.Size() != 100 {
		t.Fatalf("Size = %d", r.Size())
	}
	r.Each(func(_ int, tu data.Tuple) bool {
		if tu[1] != 42 {
			t.Fatalf("tuple %v does not share column value", tu)
		}
		return true
	})
	// Other column distinct → no duplicate tuples.
	if r.ContainsDuplicates() {
		t.Error("duplicates")
	}
}

func TestZipfSkewsColumn(t *testing.T) {
	r := Zipf("S", 10000, 100000, 1, 1.5, 1000, 11)
	if r.Size() != 10000 {
		t.Fatalf("Size = %d", r.Size())
	}
	f := stats.Frequencies(r, []int{1})
	hh := f.HeavyHitters(10000 / 64)
	if len(hh) == 0 {
		t.Error("Zipf(1.5) should produce heavy hitters at threshold m/64")
	}
	// Value 0 should be the most frequent.
	if f.Count(data.Tuple{0}) < f.Count(data.Tuple{500}) {
		t.Error("Zipf head not heavier than tail")
	}
}

func TestZipfNoDuplicateTuples(t *testing.T) {
	r := Zipf("S", 5000, 50000, 0, 2.0, 100, 13)
	if r.ContainsDuplicates() {
		t.Error("duplicates")
	}
}

func TestPlantedHeavyCounts(t *testing.T) {
	specs := []HeavySpec{{Value: 5, Count: 300}, {Value: 9, Count: 100}}
	r := PlantedHeavy("S", 1000, 100000, 1, specs, 17)
	if r.Size() != 1000 {
		t.Fatalf("Size = %d", r.Size())
	}
	f := stats.Frequencies(r, []int{1})
	if f.Count(data.Tuple{5}) != 300 || f.Count(data.Tuple{9}) != 100 {
		t.Errorf("planted counts wrong: 5→%d 9→%d", f.Count(data.Tuple{5}), f.Count(data.Tuple{9}))
	}
	// Light values appear exactly once.
	for k, c := range f.Counts {
		if k != data.Key1(5) && k != data.Key1(9) && c != 1 {
			t.Errorf("light value %v has count %d", k, c)
		}
	}
	if r.ContainsDuplicates() {
		t.Error("duplicates")
	}
}

func TestPlantedHeavyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	PlantedHeavy("S", 10, 1000, 0, []HeavySpec{{Value: 1, Count: 11}}, 1)
}

func TestDegreeSequenceExact(t *testing.T) {
	degs := map[int64]int{3: 7, 8: 2, 15: 1}
	r := DegreeSequence("S", 10000, 0, degs, 21)
	if r.Size() != 10 {
		t.Fatalf("Size = %d, want 10", r.Size())
	}
	f := stats.Frequencies(r, []int{0})
	for v, d := range degs {
		if got := f.Count(data.Tuple{v}); got != int64(d) {
			t.Errorf("degree(%d) = %d, want %d", v, got, d)
		}
	}
}

func TestDegreeSequenceDeterministicAcrossMapOrder(t *testing.T) {
	degs := map[int64]int{1: 3, 2: 3, 3: 3, 4: 3, 5: 3}
	a := DegreeSequence("S", 1000, 0, degs, 5)
	b := DegreeSequence("S", 1000, 0, degs, 5)
	a.Sort()
	b.Sort()
	for i := 0; i < a.Size(); i++ {
		if a.Tuple(i).Key() != b.Tuple(i).Key() {
			t.Fatal("DegreeSequence not deterministic")
		}
	}
}

func TestSkewedGraphShape(t *testing.T) {
	g := SkewedGraph("G", 5000, 500, 1.5, 9)
	if g.Size() != 5000 {
		t.Fatalf("Size = %d", g.Size())
	}
	if g.ContainsDuplicates() {
		t.Error("duplicate edges")
	}
	g.Each(func(_ int, tu data.Tuple) bool {
		if tu[0] == tu[1] {
			t.Fatalf("self loop %v", tu)
		}
		if tu[0] < 0 || tu[0] >= 500 || tu[1] < 0 || tu[1] >= 500 {
			t.Fatalf("endpoint outside vertex set: %v", tu)
		}
		return true
	})
	// Power-law sources: node 0 must have far more out-edges than median.
	f := stats.Frequencies(g, []int{0})
	if f.Count(data.Tuple{0}) < 100 {
		t.Errorf("head degree %d too small for zipf(1.5)", f.Count(data.Tuple{0}))
	}
}

func TestSkewedGraphPanics(t *testing.T) {
	for _, f := range []func(){
		func() { SkewedGraph("G", 10, 2, 1.5, 1) },
		func() { SkewedGraph("G", 1000, 10, 1.5, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestForQuery(t *testing.T) {
	db := ForQuery([]AtomSpec{
		{Name: "S1", Arity: 2, M: 100, Domain: 1000},
		{Name: "S2", Arity: 2, M: 200, Domain: 1000},
	}, 1)
	if db.MustGet("S1").Size() != 100 || db.MustGet("S2").Size() != 200 {
		t.Error("ForQuery cardinalities wrong")
	}
	// Different atoms must not be identical data.
	a, b := db.MustGet("S1"), db.MustGet("S2")
	if a.Size() == b.Size() {
		t.Skip("sizes differ by construction here")
	}
	_ = a
}

func TestPow64Overflow(t *testing.T) {
	if pow64(1<<32, 3) != -1 {
		t.Error("pow64 should flag overflow")
	}
	if pow64(10, 3) != 1000 {
		t.Error("pow64(10,3) wrong")
	}
}
