package mpc

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"repro/internal/data"
)

// fuzzDB builds a small random database from rng: 1–3 relations of arity
// 1–3 over a modest domain.
func fuzzDB(rng *rand.Rand) *data.Database {
	db := data.NewDatabase()
	names := []string{"A", "B", "C"}
	for _, name := range names[:1+rng.Intn(3)] {
		arity := 1 + rng.Intn(3)
		domain := int64(64 + rng.Intn(2048))
		r := data.NewRelation(name, arity, domain)
		m := rng.Intn(400)
		for i := 0; i < m; i++ {
			vals := make([]int64, arity)
			for a := range vals {
				vals[a] = rng.Int63n(domain)
			}
			r.Add(vals...)
		}
		db.Put(r)
	}
	return db
}

// fuzzRouter is a pure router with a mix of fan-out shapes: singles, small
// fan-outs with duplicates, and wide broadcasts (exercising the map-based
// dedup path). Destinations depend only on (rel, tuple, seed).
func fuzzRouter(p int, seed uint64) Router {
	return RouterFunc(func(rel string, t data.Tuple, dst []int) []int {
		h := seed
		for _, c := range rel {
			h = h*1099511628211 + uint64(c)
		}
		for _, v := range t {
			h = h*1099511628211 + uint64(v)
		}
		pick := func(i int) int { return int((h ^ (h >> 7) ^ uint64(i)*2654435761) % uint64(p)) }
		switch h % 8 {
		case 0: // wide broadcast with duplicates, beyond the scan limit
			n := dedupScanLimit + 8 + int(h%17)
			for i := 0; i < n; i++ {
				dst = append(dst, pick(i%((n/2)+1)))
			}
		case 1, 2: // small fan-out with duplicates
			d := pick(0)
			dst = append(dst, d, pick(1), d)
		default:
			dst = append(dst, pick(0))
		}
		return dst
	})
}

// sortedFragment canonicalizes a fragment for multiset comparison.
func sortedFragment(f *data.Relation) *data.Relation {
	c := f.Clone()
	c.Sort()
	return c
}

// assertClustersEquivalent checks both clusters delivered identical loads
// and identical fragments as multisets on every server.
func assertClustersEquivalent(t *testing.T, want, got *Cluster) {
	t.Helper()
	if want.P != got.P {
		t.Fatalf("cluster sizes differ: %d vs %d", want.P, got.P)
	}
	for i := range want.Servers {
		ws, gs := want.Servers[i], got.Servers[i]
		if ws.BitsIn != gs.BitsIn || ws.TuplesIn != gs.TuplesIn {
			t.Fatalf("server %d loads differ: (%d bits, %d tuples) vs (%d bits, %d tuples)",
				i, ws.BitsIn, ws.TuplesIn, gs.BitsIn, gs.TuplesIn)
		}
		if len(ws.Received) != len(gs.Received) {
			t.Fatalf("server %d fragment sets differ: %d vs %d relations", i, len(ws.Received), len(gs.Received))
		}
		for name, wf := range ws.Received {
			gf := gs.Received[name]
			if gf == nil {
				t.Fatalf("server %d missing fragment %q", i, name)
			}
			if wf.Arity != gf.Arity || wf.Domain != gf.Domain || wf.Size() != gf.Size() {
				t.Fatalf("server %d fragment %q shapes differ", i, name)
			}
			a, b := sortedFragment(wf), sortedFragment(gf)
			for col := 0; col < a.Arity; col++ {
				ca, cb := a.Column(col), b.Column(col)
				for row := range ca {
					if ca[row] != cb[row] {
						t.Fatalf("server %d fragment %q differs as a multiset (col %d row %d: %d vs %d)",
							i, name, col, row, ca[row], cb[row])
					}
				}
			}
		}
	}
}

// runEngines routes db (plus an optional resident shuffle) through both
// communication engines and asserts equivalence.
func runEngines(t *testing.T, seed uint64) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(seed)))
	db := fuzzDB(rng)
	p := 1 + rng.Intn(40)
	router := fuzzRouter(p, seed)

	channel := NewCluster(p)
	channel.Comm = ChannelComm
	channel.Senders = 1 + rng.Intn(12)
	if err := channel.Round(db, router); err != nil {
		t.Fatalf("channel engine: %v", err)
	}
	sharded := NewCluster(p)
	sharded.Senders = 1 + rng.Intn(12)
	if err := sharded.Round(db, router); err != nil {
		t.Fatalf("sharded engine: %v", err)
	}
	assertClustersEquivalent(t, channel, sharded)

	// A resident shuffle through a second pure router must also agree
	// (exercises fragment chunking on whatever skew the first round made).
	router2 := fuzzRouter(p, seed^0x9e3779b97f4a7c15)
	names := db.Names()
	if err := channel.ShuffleResident(router2, names...); err != nil {
		t.Fatalf("channel shuffle: %v", err)
	}
	if err := sharded.ShuffleResident(router2, names...); err != nil {
		t.Fatalf("sharded shuffle: %v", err)
	}
	assertClustersEquivalent(t, channel, sharded)
}

// TestEnginesEquivalent pins a spread of deterministic seeds; the fuzz
// target below explores further.
func TestEnginesEquivalent(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		runEngines(t, seed)
	}
}

// FuzzCommunicateEngines differentially fuzzes the sharded zero-channel
// engine against the legacy channel engine: identical per-server loads and
// identical delivered fragments as multisets on random databases and
// routers (delivery order within a fragment is explicitly unspecified).
func FuzzCommunicateEngines(f *testing.F) {
	for _, seed := range []uint64{1, 7, 42, 1 << 20, 0xdeadbeef} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		runEngines(t, seed)
	})
}

func TestShardedOutOfRangeReportsError(t *testing.T) {
	db := singleRel(10)
	c := NewCluster(2)
	err := c.Round(db, RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, 7)
	}))
	if err == nil {
		t.Fatal("expected error for bad destination")
	}
	if c.Loads().TotalTuples != 0 {
		t.Error("bad-destination tuple should be dropped")
	}
}

func TestResizeReusesServersAndMaps(t *testing.T) {
	c := NewCluster(8)
	db := singleRel(100)
	if err := c.Round(db, RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, int(tu[0]%8))
	})); err != nil {
		t.Fatal(err)
	}
	s0, s7 := c.Servers[0], c.Servers[7]

	c.Resize(4)
	if c.P != 4 || len(c.Servers) != 4 {
		t.Fatalf("Resize(4): P=%d, %d servers", c.P, len(c.Servers))
	}
	if c.Capacity() != 8 {
		t.Errorf("Capacity = %d, want 8", c.Capacity())
	}
	if c.Servers[0] != s0 {
		t.Error("Resize did not reuse server 0")
	}
	if len(s0.Received) != 0 || s0.BitsIn != 0 || s0.TuplesIn != 0 {
		t.Error("Resize did not reset the retained server")
	}
	if len(s7.Received) != 0 {
		t.Error("Resize left a fragment pinned on a parked server")
	}

	c.Resize(8)
	if c.Servers[0] != s0 || c.Servers[7] != s7 {
		t.Error("growing back did not reuse parked servers")
	}
	if err := c.Round(db, RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, int(tu[0]%8))
	})); err != nil {
		t.Fatal(err)
	}
	if got := c.Loads().TotalTuples; got != 100 {
		t.Errorf("TotalTuples after resize round = %d, want 100", got)
	}
	c.Reset()
	if len(s0.Received) != 0 {
		t.Error("Reset left entries behind")
	}
}

func TestResizePanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCluster(2).Resize(0)
}

func TestAppendChunkedParts(t *testing.T) {
	rel := data.NewRelation("S", 1, 1024)
	for i := int64(0); i < 10; i++ {
		rel.Add(i)
	}
	parts := appendChunkedParts(nil, rel, 4)
	want := []sendPart{{rel, 0, 4}, {rel, 4, 8}, {rel, 8, 10}}
	if len(parts) != len(want) {
		t.Fatalf("parts = %d, want %d", len(parts), len(want))
	}
	for i, p := range parts {
		if p != want[i] {
			t.Errorf("part %d = [%d,%d), want [%d,%d)", i, p.lo, p.hi, want[i].lo, want[i].hi)
		}
	}
	if got := appendChunkedParts(nil, data.NewRelation("E", 1, 2), 4); len(got) != 0 {
		t.Errorf("empty relation produced %d parts", len(got))
	}
	// A non-positive chunk degrades to single-row parts, never loops.
	if got := appendChunkedParts(nil, rel, 0); len(got) != 10 {
		t.Errorf("chunk 0 produced %d parts, want 10", len(got))
	}
}

// TestShuffleResidentChunksHotFragment routes everything to one server,
// then shuffles it back out: the hot fragment is larger than the chunking
// threshold, and the redistribution must still be exact.
func TestShuffleResidentChunksHotFragment(t *testing.T) {
	m := 3*DefaultResidentChunkTuples + 17
	domain := int64(1)
	for domain < int64(m) {
		domain *= 2
	}
	db := data.NewDatabase()
	r := data.NewRelation("S", 1, domain)
	for i := int64(0); i < int64(m); i++ {
		r.Add(i)
	}
	db.Put(r)
	c := NewCluster(8)
	if err := c.Round(db, RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, 0) // one hot server holds the whole intermediate
	})); err != nil {
		t.Fatal(err)
	}
	if err := c.ShuffleResident(RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, int(tu[0]%8))
	}), "S"); err != nil {
		t.Fatal(err)
	}
	var got []int64
	for id, s := range c.Servers {
		f := s.Fragment("S")
		if f == nil {
			t.Fatalf("server %d empty after chunked shuffle", id)
		}
		for _, v := range f.Column(0) {
			if int(v%8) != id {
				t.Fatalf("server %d holds %d after mod-8 shuffle", id, v)
			}
			got = append(got, v)
		}
	}
	if len(got) != m {
		t.Fatalf("shuffled tuple count = %d, want %d", len(got), m)
	}
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	for i, v := range got {
		if v != int64(i) {
			t.Fatalf("tuple %d lost or duplicated in chunked shuffle", i)
		}
	}
}

func TestDedupSetShrinksAfterWideBroadcast(t *testing.T) {
	var ds dedupSet
	wide := make([]int, 4*dedupShrinkFloor)
	for i := range wide {
		wide[i] = i
	}
	ds.dedup(wide)
	if ds.sized != len(wide) {
		t.Fatalf("sized = %d after wide dedup, want %d", ds.sized, len(wide))
	}
	// A narrow (but still map-path) fan-out must drop the huge map.
	narrow := make([]int, dedupScanLimit+4)
	for i := range narrow {
		narrow[i] = i % 8
	}
	out := ds.dedup(narrow)
	if len(out) != 8 {
		t.Fatalf("narrow dedup kept %d, want 8", len(out))
	}
	if ds.sized != len(narrow) {
		t.Errorf("sized = %d after shrink (map should be recreated at the narrow fan-out), want %d", ds.sized, len(narrow))
	}
	// Small fan-outs never touch the map at all.
	small := []int{3, 1, 3, 2, 1}
	got := ds.dedup(small)
	want := []int{3, 1, 2}
	if len(got) != len(want) {
		t.Fatalf("scan dedup = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("scan dedup = %v, want %v (order must be first-occurrence)", got, want)
		}
	}
}

// TestShardedGoroutineBound asserts the sharded engine's goroutine count
// stays O(GOMAXPROCS) even with hundreds of virtual servers — the channel
// engine would spawn one receiver per server plus one sender per part.
func TestShardedGoroutineBound(t *testing.T) {
	db := singleRel(5000)
	c := NewCluster(512)
	c.Senders = 64
	base := runtime.NumGoroutine()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for r := 0; r < 3; r++ {
			if err := c.Round(db, RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
				return append(dst, int(tu[0]%512), int((tu[0]*7)%512))
			})); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	peak := 0
	for {
		select {
		case <-done:
			limit := base + 2*runtime.GOMAXPROCS(0) + 4
			if peak > limit {
				t.Errorf("peak goroutines = %d, want <= %d (base %d)", peak, limit, base)
			}
			return
		default:
			if n := runtime.NumGoroutine(); n > peak {
				peak = n
			}
			runtime.Gosched()
		}
	}
}

// TestComputeAppendReusesBuffer checks the preallocated concatenation and
// capacity reuse of the local-computation gather.
func TestComputeAppendReusesBuffer(t *testing.T) {
	c := NewCluster(6)
	f := func(s *Server) []data.Tuple {
		out := make([]data.Tuple, 0, s.ID)
		for i := 0; i < s.ID; i++ {
			out = append(out, data.Tuple{int64(s.ID), int64(i)})
		}
		return out
	}
	out1 := c.Compute(f)
	if len(out1) != 15 { // 0+1+...+5
		t.Fatalf("Compute returned %d tuples, want 15", len(out1))
	}
	if cap(out1) != 15 {
		t.Errorf("Compute allocated cap %d, want exactly 15 (preallocated)", cap(out1))
	}
	// Server order must be preserved.
	for i := 1; i < len(out1); i++ {
		if out1[i-1][0] > out1[i][0] {
			t.Fatalf("outputs out of server order at %d: %v then %v", i, out1[i-1], out1[i])
		}
	}
	out2 := c.ComputeAppend(out1, f)
	if len(out2) != 15 {
		t.Fatalf("ComputeAppend returned %d tuples", len(out2))
	}
	if &out1[0] != &out2[0] {
		t.Error("ComputeAppend did not reuse the supplied buffer's backing array")
	}
}
