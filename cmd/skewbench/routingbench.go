package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/data"
	"repro/internal/exec"
	"repro/internal/hashing"
	"repro/internal/hypercube"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/skew"
	"repro/internal/workload"
)

// RoutingBench is the committed BENCH_routing.json baseline: per-tuple
// routing costs and the end-to-end communication round on the canonical
// zipf join instance. CI's benchmark smoke step keeps the benchmarks
// compiling and running; this artifact records the numbers a change is
// judged against.
type RoutingBench struct {
	// Instance documents the workload the numbers were measured on.
	Instance string `json:"instance"`
	GoArch   string `json:"goarch"`
	NumCPU   int    `json:"num_cpu"`
	// Per-tuple routing, HC triangle router with shares (4,4,4).
	HCDestinationsNsPerOp   float64 `json:"hc_destinations_ns_per_op"`
	HCDestinationsAtNsPerOp float64 `json:"hc_destinations_at_ns_per_op"`
	// Per-tuple routing through the §4.1 skew-join router on the zipf
	// instance (columnar entry point, mix of light and heavy values).
	SkewJoinDestinationsAtNsPerOp float64 `json:"skewjoin_destinations_at_ns_per_op"`
	// Full communication round (route + deliver, no local join) of the
	// zipf join on p=64.
	SkewJoinRoundNsPerOp float64 `json:"skewjoin_round_ns_per_op"`
	AllocsPerRouteOp     int64   `json:"allocs_per_route_op"`
}

// zipfJoinDB is the canonical skewed two-relation instance used by the
// routing baseline (matching BenchmarkSkewJoinEndToEnd).
func zipfJoinDB() *data.Database {
	db := data.NewDatabase()
	db.Put(workload.Zipf("S1", 5000, 1<<20, 1, 1.6, 500, 1))
	db.Put(workload.Zipf("S2", 5000, 1<<20, 1, 1.6, 500, 2))
	return db
}

// runRoutingBench measures the routing baseline and writes it as JSON.
func runRoutingBench(path string) error {
	db := zipfJoinDB()

	hcRouter := hypercube.NewRouter(query.Triangle(), []int{4, 4, 4}, hashing.NewFamily(2))
	tup := data.Tuple{12345, 67890}
	hcRow := testing.Benchmark(func(b *testing.B) {
		var dst []int
		for i := 0; i < b.N; i++ {
			dst = hcRouter.Destinations("S1", tup, dst[:0])
		}
		_ = dst
	})
	rel := data.NewRelation("S1", 2, 1<<20)
	for i := int64(0); i < 1024; i++ {
		rel.Add((12345*i)%(1<<20), (67890*i)%(1<<20))
	}
	hcCol := testing.Benchmark(func(b *testing.B) {
		var dst []int
		for i := 0; i < b.N; i++ {
			dst = hcRouter.DestinationsAt(rel, i&1023, dst[:0])
		}
		_ = dst
	})

	plan := skew.PlanJoin(query.Join2(), db, skew.JoinConfig{P: 64, Seed: 3, SkipJoin: true})
	cr := plan.Phys.Router.(mpc.ColumnRouter)
	s1 := db.MustGet("S1")
	m := s1.Size()
	sjCol := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		var dst []int
		for i := 0; i < b.N; i++ {
			dst = cr.DestinationsAt(s1, i%m, dst[:0])
		}
		_ = dst
	})

	round := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exec.Run(plan.Phys, db, exec.Config{SkipCompute: true})
		}
	})

	out := RoutingBench{
		Instance: "join2 zipf: S1,S2 m=5000 domain=2^20 zipf(s=1.6) over 500 values, p=64, seed 1/2/3",
		GoArch:   runtime.GOARCH,
		NumCPU:   runtime.NumCPU(),

		HCDestinationsNsPerOp:         float64(hcRow.NsPerOp()),
		HCDestinationsAtNsPerOp:       float64(hcCol.NsPerOp()),
		SkewJoinDestinationsAtNsPerOp: float64(sjCol.NsPerOp()),
		SkewJoinRoundNsPerOp:          float64(round.NsPerOp()),
		AllocsPerRouteOp:              sjCol.AllocsPerOp(),
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("routing baseline written to %s\n%s", path, blob)
	return nil
}
