// Command qopt analyzes a conjunctive query through the lens of the
// paper: its fractional edge packing polytope, pk(q), τ*, the optimal
// HyperCube share exponents for given statistics, and the induced load
// bounds.
//
// Usage:
//
//	qopt -q "C3(x,y,z) = S1(x,y), S2(y,z), S3(z,x)" -p 64 -bits 1048576,1048576,1048576
//
// When -bits is omitted, all relations are assumed to have 2^20 bits.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/bounds"
	"repro/internal/hypercube"
	"repro/internal/packing"
	"repro/internal/query"
)

func main() {
	qFlag := flag.String("q", "C3(x,y,z) = S1(x,y), S2(y,z), S3(z,x)", "query text")
	pFlag := flag.Int("p", 64, "number of servers")
	bitsFlag := flag.String("bits", "", "comma-separated relation sizes in bits (default 2^20 each)")
	flag.Parse()

	q, err := query.Parse(*qFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qopt: %v\n", err)
		os.Exit(2)
	}
	bits := make([]float64, q.NumAtoms())
	for j := range bits {
		bits[j] = 1 << 20
	}
	if *bitsFlag != "" {
		parts := strings.Split(*bitsFlag, ",")
		if len(parts) != q.NumAtoms() {
			fmt.Fprintf(os.Stderr, "qopt: -bits needs %d values\n", q.NumAtoms())
			os.Exit(2)
		}
		for j, s := range parts {
			v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "qopt: bad bits value %q\n", s)
				os.Exit(2)
			}
			bits[j] = v
		}
	}

	fmt.Printf("query:      %s\n", q)
	fmt.Printf("variables:  %d, atoms: %d, connected: %v\n", q.NumVars(), q.NumAtoms(), q.Connected())
	fmt.Printf("τ* (max fractional packing value): %.4f\n", packing.Tau(q))
	_, rho := packing.MinCover(q)
	rhoF, _ := rho.Float64()
	fmt.Printf("ρ* (min fractional cover value):   %.4f\n\n", rhoF)

	fmt.Println("pk(q) — non-dominated packing vertices and induced bounds (Thm 3.6):")
	best, table := bounds.SimpleLower(q, bits, *pFlag)
	for _, row := range table {
		fmt.Printf("  u = %v  ->  L(u,M,p) = %.1f bits\n", row.U, row.Bound)
	}
	fmt.Printf("L_lower = max = %.1f bits\n\n", best)

	e, lambda := hypercube.OptimalExponents(q, bits, *pFlag)
	fmt.Printf("optimal share exponents (LP 5): e = %v, λ = %.4f\n", fmtFloats(e), lambda)
	fmt.Printf("predicted load p^λ = %.1f bits (Thm 3.4: equals L_lower)\n", math.Pow(float64(*pFlag), lambda))
	shares := hypercube.RoundShares(e, *pFlag, hypercube.RoundGreedy)
	fmt.Printf("integer shares (greedy rounding):  %v\n", shares)
	fmt.Printf("space exponent ε (§3.3):           %.4f\n", bounds.SpaceExponent(q, bits, *pFlag))
}

func fmtFloats(fs []float64) string {
	parts := make([]string, len(fs))
	for i, f := range fs {
		parts[i] = fmt.Sprintf("%.3f", f)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
