// Package rounds implements multi-round MPC query evaluation — the
// traditional one-join-per-round strategy the paper's introduction
// contrasts with its one-round HyperCube algorithm ("the traditional
// approach is to compute one join at a time leading to a number of
// communication rounds at least as large as the depth of the query plan").
//
// A plan is a left-deep sequence of binary join steps. Each step is one
// communication round: both sides are repartitioned by the join keys
// (with §4.1-style heavy-hitter handling per key when skew-aware mode is
// on), servers join locally, and the intermediate result feeds the next
// round. Loads are tracked per round and summed per server, so the
// multi-round cost is directly comparable to the one-round algorithms.
package rounds

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/data"
	"repro/internal/hashing"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/stats"
)

// Step is one binary join in the plan: join Left and Right (base atom
// names or prior step outputs) into Output.
type Step struct {
	Left, Right string
	Output      string
	// LeftVars/RightVars give the query-variable index of every column of
	// the two inputs; OutVars is the schema of the result.
	LeftVars, RightVars, OutVars []int
	// JoinVars are the shared variables (the repartition keys).
	JoinVars []int
}

// Plan is a left-deep multi-round plan for a query.
type Plan struct {
	Query *query.Query
	Steps []Step
}

// BuildPlan constructs a greedy left-deep plan: start from the first atom,
// repeatedly join in the atom sharing the most variables with the current
// schema (avoiding cartesian steps whenever the query is connected).
func BuildPlan(q *query.Query) Plan {
	if err := q.Validate(); err != nil {
		panic(fmt.Sprintf("rounds: invalid query: %v", err))
	}
	used := make([]bool, q.NumAtoms())
	cur := q.Atoms[0]
	used[0] = true
	curName := cur.Name
	curVars := append([]int(nil), cur.Vars...)
	var steps []Step
	for step := 1; step < q.NumAtoms(); step++ {
		best, bestShared := -1, -1
		for j, a := range q.Atoms {
			if used[j] {
				continue
			}
			shared := 0
			for _, v := range a.Vars {
				if containsInt(curVars, v) {
					shared++
				}
			}
			if shared > bestShared {
				best, bestShared = j, shared
			}
		}
		atom := q.Atoms[best]
		used[best] = true
		var joinVars []int
		for _, v := range atom.Vars {
			if containsInt(curVars, v) {
				joinVars = append(joinVars, v)
			}
		}
		outVars := append([]int(nil), curVars...)
		for _, v := range atom.Vars {
			if !containsInt(outVars, v) {
				outVars = append(outVars, v)
			}
		}
		outName := fmt.Sprintf("tmp%d", step)
		if step == q.NumAtoms()-1 {
			outName = "result"
		}
		steps = append(steps, Step{
			Left: curName, Right: atom.Name, Output: outName,
			LeftVars:  append([]int(nil), curVars...),
			RightVars: append([]int(nil), atom.Vars...),
			OutVars:   outVars,
			JoinVars:  joinVars,
		})
		curName, curVars = outName, outVars
	}
	return Plan{Query: q, Steps: steps}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Config controls multi-round execution.
type Config struct {
	P    int
	Seed uint64
	// SkewAware enables §4.1-style per-step heavy-hitter handling: heavy
	// join keys get p_h-server cartesian grids instead of a single hash
	// bucket. Without it every step is a plain hash join.
	SkewAware bool
}

// RoundLoad is the load summary of one communication round.
type RoundLoad struct {
	Step         Step
	MaxBits      int64
	TotalBits    int64
	Intermediate int // tuples produced
}

// Result reports a multi-round run.
type Result struct {
	Output []data.Tuple
	Rounds []RoundLoad
	// MaxBitsPerRound is the max over rounds of the per-round max server
	// load; SumMaxBits sums the per-round maxima (total bits the busiest
	// server could have received across the computation).
	MaxBitsPerRound int64
	SumMaxBits      int64
}

// Run executes the plan over db. Base relations come from db; each step's
// output becomes available to later steps under its Output name.
func Run(plan Plan, db *data.Database, cfg Config) Result {
	if cfg.P < 2 {
		panic("rounds: need P >= 2")
	}
	// Single-atom query: no communication needed, just reorder columns
	// into head order.
	if len(plan.Steps) == 0 {
		atom := plan.Query.Atoms[0]
		var res Result
		db.MustGet(atom.Name).Each(func(_ int, t data.Tuple) bool {
			nt := make(data.Tuple, plan.Query.NumVars())
			for pos, v := range atom.Vars {
				nt[v] = t[pos]
			}
			res.Output = append(res.Output, nt)
			return true
		})
		return res
	}
	// Working set: base relations plus intermediates, with their schemas.
	rels := make(map[string]*data.Relation)
	schemas := make(map[string][]int)
	for _, a := range plan.Query.Atoms {
		rels[a.Name] = db.MustGet(a.Name)
		schemas[a.Name] = append([]int(nil), a.Vars...)
	}
	var res Result
	for si, st := range plan.Steps {
		left, right := rels[st.Left], rels[st.Right]
		out, load := joinRound(st, left, right, cfg, uint64(si))
		rels[st.Output] = out
		schemas[st.Output] = st.OutVars
		res.Rounds = append(res.Rounds, load)
		if load.MaxBits > res.MaxBitsPerRound {
			res.MaxBitsPerRound = load.MaxBits
		}
		res.SumMaxBits += load.MaxBits
	}
	final := rels[plan.Steps[len(plan.Steps)-1].Output]
	// Reorder columns into head order.
	lastVars := plan.Steps[len(plan.Steps)-1].OutVars
	perm := make([]int, plan.Query.NumVars())
	for col, v := range lastVars {
		perm[v] = col
	}
	final.Each(func(_ int, t data.Tuple) bool {
		nt := make(data.Tuple, len(perm))
		for v, col := range perm {
			nt[v] = t[col]
		}
		res.Output = append(res.Output, nt)
		return true
	})
	return res
}

// joinRound executes one step as a single communication round on a fresh
// cluster of p servers (plus Θ(p) virtual servers for heavy keys in
// skew-aware mode).
func joinRound(st Step, left, right *data.Relation, cfg Config, roundSeed uint64) (*data.Relation, RoundLoad) {
	leftKey := keyPositions(st.LeftVars, st.JoinVars)
	rightKey := keyPositions(st.RightVars, st.JoinVars)
	family := hashing.NewFamily(cfg.Seed*1315423911 + roundSeed + 1)

	p := cfg.P
	virtual := p
	heavy := make(map[data.Key]*heavyPlan)
	if cfg.SkewAware && len(st.JoinVars) > 0 {
		fL := stats.Frequencies(left, leftKey)
		fR := stats.Frequencies(right, rightKey)
		thrL := float64(left.Size()) / float64(p)
		thrR := float64(right.Size()) / float64(p)
		seen := make(map[data.Key]bool)
		var keys []data.Key
		for k, c := range fL.Counts {
			if float64(c) >= thrL || float64(fR.Counts[k]) >= thrR {
				keys = append(keys, k)
				seen[k] = true
			}
		}
		for k, c := range fR.Counts {
			if float64(c) >= thrR && !seen[k] {
				keys = append(keys, k)
			}
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
		var sumK float64
		for _, k := range keys {
			sumK += math.Max(1, float64(fL.Counts[k])) * math.Max(1, float64(fR.Counts[k]))
		}
		for _, k := range keys {
			kw := math.Max(1, float64(fL.Counts[k])) * math.Max(1, float64(fR.Counts[k]))
			ph := int(math.Ceil(float64(p) * kw / sumK))
			r1 := math.Max(1, float64(fL.Counts[k]))
			r2 := math.Max(1, float64(fR.Counts[k]))
			p1 := int(math.Round(math.Sqrt(float64(ph) * r1 / r2)))
			if p1 < 1 {
				p1 = 1
			}
			if p1 > ph {
				p1 = ph
			}
			p2 := ph / p1
			if p2 < 1 {
				p2 = 1
			}
			heavy[k] = &heavyPlan{base: virtual, p1: p1, p2: p2}
			virtual += p1 * p2
		}
	}

	router := &stepRouter{
		leftKey: leftKey, rightKey: rightKey,
		cartesian: len(st.JoinVars) == 0,
		heavy:     heavy, p: p, family: family,
	}

	// Stage the two inputs under canonical names.
	roundDB := data.NewDatabase()
	l := left.Clone()
	l.Name = "L"
	r := right.Clone()
	r.Name = "R"
	roundDB.Put(l)
	roundDB.Put(r)

	cluster := mpc.NewCluster(virtual)
	if err := cluster.Round(roundDB, router); err != nil {
		panic(fmt.Sprintf("rounds: %v", err))
	}
	// Local join at each server: index the right fragment by its key
	// columns, probe with the left key columns, and gather output values
	// straight from the column slices.
	outArity := len(st.OutVars)
	rightPosOf := make([]int, 0, outArity)
	for _, v := range st.OutVars {
		if !containsInt(st.LeftVars, v) {
			for pos, rv := range st.RightVars {
				if rv == v {
					rightPosOf = append(rightPosOf, pos)
				}
			}
		}
	}
	domain := left.Domain
	if right.Domain > domain {
		domain = right.Domain
	}
	outs := cluster.Compute(func(s *mpc.Server) []data.Tuple {
		lf, rf := s.Fragment("L"), s.Fragment("R")
		if lf == nil || rf == nil {
			return nil
		}
		index := make(map[data.Key][]int, rf.Size())
		rKeyCols := make([][]int64, len(rightKey))
		for a, pos := range rightKey {
			rKeyCols[a] = rf.Column(pos)
		}
		kbuf := make(data.Tuple, len(rightKey))
		for i := 0; i < rf.Size(); i++ {
			for a, col := range rKeyCols {
				kbuf[a] = col[i]
			}
			k := data.KeyOf(kbuf)
			index[k] = append(index[k], i)
		}
		lCols, rCols := lf.Columns(), rf.Columns()
		lArity := lf.Arity
		lkbuf := make(data.Tuple, len(leftKey))
		var out []data.Tuple
		for li := 0; li < lf.Size(); li++ {
			for a, pos := range leftKey {
				lkbuf[a] = lCols[pos][li]
			}
			for _, ri := range index[data.KeyOf(lkbuf)] {
				nt := make(data.Tuple, 0, outArity)
				for a := 0; a < lArity; a++ {
					nt = append(nt, lCols[a][li])
				}
				for _, pos := range rightPosOf {
					nt = append(nt, rCols[pos][ri])
				}
				out = append(out, nt)
			}
		}
		return out
	})
	result := data.NewRelation(st.Output, outArity, domain)
	for _, t := range outs {
		result.Add(t...)
	}
	loads := cluster.Loads()
	return result, RoundLoad{
		Step: st, MaxBits: loads.MaxBits, TotalBits: loads.TotalBits,
		Intermediate: result.Size(),
	}
}

// heavyPlan is a per-heavy-key cartesian grid of virtual servers.
type heavyPlan struct {
	base, p1, p2 int
}

// Hash-family dimensions used by one join round.
const dimKey, dimLeft, dimRight = 0, 1, 2

// stepRouter routes one binary-join round: heavy keys to their cartesian
// grids, cartesian steps over a p-server grid, everything else by hash
// join on the key columns. The columnar entry point reads key columns in
// place; its projection scratch makes it per-sender
// (mpc.PerSenderRouter).
type stepRouter struct {
	leftKey, rightKey []int
	cartesian         bool
	heavy             map[data.Key]*heavyPlan
	p                 int
	family            *hashing.Family
	proj              data.Tuple // key-projection scratch
}

// ForSender implements mpc.PerSenderRouter.
func (r *stepRouter) ForSender() mpc.Router {
	c := *r
	c.proj = nil
	return &c
}

func (r *stepRouter) keyScratch(n int) data.Tuple {
	want := len(r.leftKey)
	if len(r.rightKey) > want {
		want = len(r.rightKey)
	}
	if r.proj == nil {
		r.proj = make(data.Tuple, want)
	}
	return r.proj[:n]
}

// Destinations implements mpc.Router.
func (r *stepRouter) Destinations(rel string, t data.Tuple, dst []int) []int {
	isLeft := rel == "L"
	kp := r.rightKey
	if isLeft {
		kp = r.leftKey
	}
	key := r.keyScratch(len(kp))
	for i, pos := range kp {
		key[i] = t[pos]
	}
	if hp := r.heavy[data.KeyOf(key)]; hp != nil {
		return r.gridRoute(isLeft, hp.base, hp.p1, hp.p2, rowHash(t), dst)
	}
	if r.cartesian {
		g1, g2 := r.cartesianGrid()
		return r.gridRoute(isLeft, 0, g1, g2, rowHash(t), dst)
	}
	return append(dst, r.keyHash(key))
}

// DestinationsAt implements mpc.ColumnRouter: identical routing, reading
// the key columns (and, on the grid paths, all columns for the row hash)
// in place.
func (r *stepRouter) DestinationsAt(rel *data.Relation, row int, dst []int) []int {
	isLeft := rel.Name == "L"
	cols := rel.Columns()
	kp := r.rightKey
	if isLeft {
		kp = r.leftKey
	}
	key := r.keyScratch(len(kp))
	for i, pos := range kp {
		key[i] = cols[pos][row]
	}
	if hp := r.heavy[data.KeyOf(key)]; hp != nil {
		return r.gridRoute(isLeft, hp.base, hp.p1, hp.p2, rowHashCols(cols, row), dst)
	}
	if r.cartesian {
		g1, g2 := r.cartesianGrid()
		return r.gridRoute(isLeft, 0, g1, g2, rowHashCols(cols, row), dst)
	}
	return append(dst, r.keyHash(key))
}

// cartesianGrid splits p into a g1 × g2 grid for key-less steps.
func (r *stepRouter) cartesianGrid() (int, int) {
	g1 := int(math.Max(1, math.Sqrt(float64(r.p))))
	return g1, r.p / g1
}

// gridRoute places a left row in one grid row (replicated across columns)
// and a right row in one grid column (replicated across rows).
func (r *stepRouter) gridRoute(isLeft bool, base, p1, p2 int, rh int64, dst []int) []int {
	if isLeft {
		row := r.family.Hash(dimLeft, rh, p1)
		for c := 0; c < p2; c++ {
			dst = append(dst, base+row*p2+c)
		}
	} else {
		col := r.family.Hash(dimRight, rh, p2)
		for rr := 0; rr < p1; rr++ {
			dst = append(dst, base+rr*p2+col)
		}
	}
	return dst
}

// keyHash maps a join key to one of the p light servers.
func (r *stepRouter) keyHash(key data.Tuple) int {
	h := 0
	for i, v := range key {
		h = h*31 + r.family.Hash(dimKey+i, v, 1<<30)
	}
	if h < 0 {
		h = -h
	}
	return h % r.p
}

// keyPositions maps join variables to their column positions in a schema.
func keyPositions(schema, joinVars []int) []int {
	var pos []int
	for _, jv := range joinVars {
		for i, v := range schema {
			if v == jv {
				pos = append(pos, i)
			}
		}
	}
	return pos
}

// rowHash folds a whole tuple into one value for the non-key dimension of
// a cartesian grid.
func rowHash(t data.Tuple) int64 {
	h := int64(1469598103934665603)
	for _, v := range t {
		h = h ^ v
		h *= 1099511628211
	}
	return h
}

// rowHashCols is rowHash over a columnar row.
func rowHashCols(cols [][]int64, row int) int64 {
	h := int64(1469598103934665603)
	for _, col := range cols {
		h = h ^ col[row]
		h *= 1099511628211
	}
	return h
}
