package core

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/join"
	"repro/internal/query"
	"repro/internal/workload"
)

// standingOracle recomputes the query from scratch — the ground truth a
// standing query's materialized result must equal after every advance.
func standingOracle(q *query.Query, db *data.Database) []data.Tuple {
	return join.Join(q, join.FromDatabase(db))
}

// applyDelta folds a ResultDelta into a key→tuple view of the previous
// result, failing the test on inconsistent transitions (removing an
// absent answer, adding a present one).
func applyDelta(t *testing.T, view map[data.Key]data.Tuple, rd ResultDelta) {
	t.Helper()
	for _, tu := range rd.Removed {
		k := data.KeyOf(tu)
		if _, ok := view[k]; !ok {
			t.Fatalf("delta removed %v which was not in the result", tu)
		}
		delete(view, k)
	}
	for _, tu := range rd.Added {
		k := data.KeyOf(tu)
		if _, ok := view[k]; ok {
			t.Fatalf("delta added %v which was already in the result", tu)
		}
		view[k] = tu
	}
}

func viewEquals(view map[data.Key]data.Tuple, want []data.Tuple) bool {
	if len(view) != len(want) {
		return false
	}
	for _, tu := range want {
		if _, ok := view[data.KeyOf(tu)]; !ok {
			return false
		}
	}
	return true
}

// TestStandingDifferentialRandomDeltas drives random delta sequences —
// inserts of fresh tuples, deletes and re-inserts of existing ones,
// rejected duplicate inserts and absent deletes, and traffic on an
// unrelated relation — through a standing query under each forced
// single-round strategy, checking after every step that (a) the
// materialized result equals a from-scratch join oracle as a set, (b) the
// emitted ResultDeltas compose to exactly that result, and (c) no step
// fell back to a reseed.
func TestStandingDifferentialRandomDeltas(t *testing.T) {
	const domain = int64(1 << 20)
	for _, tc := range []struct {
		name     string
		strategy Strategy
	}{
		{"hypercube", HyperCube},
		{"skew-join", SkewJoin},
		{"bin-combination", BinCombination},
	} {
		t.Run(tc.name, func(t *testing.T) {
			q := query.Join2()
			db := data.NewDatabase()
			// Zipf data has genuine heavy hitters at plan time, so the
			// skew-aware routers exercise their grids; deltas below touch
			// both heavy and light values.
			db.Put(workload.Zipf("S1", 400, domain, 1, 1.6, 60, 11))
			db.Put(workload.Zipf("S2", 400, domain, 1, 1.6, 60, 12))
			db.Put(workload.Uniform("F", 2, 100, domain, 13))

			e, err := New(Config{P: 16, Seed: 7})
			if err != nil {
				t.Fatal(err)
			}
			forced := tc.strategy
			h, err := e.Standing(context.Background(), q, db, ExecOptions{Strategy: &forced})
			if err != nil {
				t.Fatal(err)
			}
			defer h.Close()

			view := make(map[data.Key]data.Tuple)
			for _, tu := range h.Result() {
				view[data.KeyOf(tu)] = tu
			}
			if want := standingOracle(q, db); !viewEquals(view, want) {
				t.Fatalf("seed result has %d answers, oracle %d", len(view), len(want))
			}

			rng := rand.New(rand.NewSource(int64(len(tc.name))))
			rels := []string{"S1", "S2", "F"}
			next := domain / 2 // fresh values, disjoint from generated data's range use
			for step := 0; step < 60; step++ {
				d := new(data.Delta)
				ops := 1 + rng.Intn(4)
				for i := 0; i < ops; i++ {
					rel := rels[rng.Intn(len(rels))]
					r := db.Relations[rel]
					switch rng.Intn(4) {
					case 0: // insert a fresh tuple
						d.Insert(rel, next%domain, int64(rng.Intn(1000)))
						next++
					case 1: // delete an existing tuple (then maybe re-insert later)
						if r.Size() > 0 {
							row := rng.Intn(r.Size())
							d.Delete(rel, r.Tuple(row)...)
						}
					case 2: // delete + re-insert the same tuple inside one delta
						if r.Size() > 0 {
							row := rng.Intn(r.Size())
							tu := append([]int64(nil), r.Tuple(row)...)
							d.Delete(rel, tu...)
							d.Insert(rel, tu...)
						}
					case 3: // insert two fresh tuples sharing a join value
						z := int64(2000 + rng.Intn(50))
						d.Insert("S1", next%domain, z)
						next++
						d.Insert("S2", next%domain, z)
						next++
					}
				}
				if err := db.Apply(d); err != nil {
					t.Fatalf("step %d: apply: %v", step, err)
				}
				// Rejected deltas must not reach the standing query: a
				// duplicate insert errors and leaves no capture behind.
				if r := db.Relations["S1"]; r.Size() > 0 {
					bad := new(data.Delta).Insert("S1", r.Tuple(0)...)
					if err := db.Apply(bad); err == nil {
						t.Fatalf("step %d: duplicate insert unexpectedly applied", step)
					}
				}
				rd, err := h.Advance(context.Background())
				if err != nil {
					t.Fatalf("step %d: advance: %v", step, err)
				}
				applyDelta(t, view, rd)
				want := standingOracle(q, db)
				if !viewEquals(view, want) {
					t.Fatalf("step %d: composed deltas diverge from oracle (%d vs %d answers)",
						step, len(view), len(want))
				}
				if got := h.Result(); !join.EqualTupleSets(got, want) {
					t.Fatalf("step %d: result has %d answers, oracle %d", step, len(got), len(want))
				}
			}
			st := h.Stats()
			if st.Reseeds != 0 {
				t.Errorf("incremental advances reseeded %d times", st.Reseeds)
			}
			if st.Advances == 0 || st.AppliedOps == 0 {
				t.Errorf("stats did not record work: %+v", st)
			}
			if st.RoutedTuples <= 0 {
				t.Errorf("no delta tuples routed: %+v", st)
			}
		})
	}
}

// TestStandingNewHeavyHitterReseeds grows one join value past the plan's
// m/p threshold: the standing query must reseed exactly once (replanning
// against the new statistics) and keep matching the oracle through it.
func TestStandingNewHeavyHitterReseeds(t *testing.T) {
	q := query.Join2()
	db := data.NewDatabase()
	db.Put(workload.Matching("S1", 2, 320, 1<<20, 1))
	db.Put(workload.Matching("S2", 2, 320, 1<<20, 2))
	e, err := New(Config{P: 16, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	h, err := e.Standing(context.Background(), q, db, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Below threshold (320/16 = 20): stays incremental.
	d := new(data.Delta)
	for i := int64(0); i < 10; i++ {
		d.Insert("S1", 1<<19+i, 777)
	}
	if err := db.Apply(d); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Advance(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := h.Stats(); st.Reseeds != 0 {
		t.Fatalf("sub-threshold delta reseeded: %+v", st)
	}

	// Cross the threshold: one reseed for the whole batch.
	d = new(data.Delta)
	for i := int64(0); i < 15; i++ {
		d.Insert("S1", 1<<19+100+i, 777)
		d.Insert("S2", 1<<19+200+i, 777)
	}
	if err := db.Apply(d); err != nil {
		t.Fatal(err)
	}
	rd, err := h.Advance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := h.Stats()
	if st.Reseeds != 1 {
		t.Fatalf("reseeds = %d, want exactly 1", st.Reseeds)
	}
	want := standingOracle(q, db)
	if got := h.Result(); !join.EqualTupleSets(got, want) {
		t.Fatalf("post-reseed result has %d answers, oracle %d", len(got), len(want))
	}
	if len(rd.Added) == 0 {
		t.Error("reseed delta reported no added answers for a batch of matching inserts")
	}

	// Follow-up light traffic is incremental again against the new plan.
	d = new(data.Delta).Insert("S1", 12345, 999).Insert("S2", 54321, 999)
	if err := db.Apply(d); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Advance(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := h.Stats(); st.Reseeds != 1 {
		t.Fatalf("light follow-up reseeded again: %+v", st)
	}
	if got := h.Result(); !join.EqualTupleSets(got, standingOracle(q, db)) {
		t.Fatal("post-reseed incremental advance diverged from oracle")
	}
}

// TestStandingClearPlanCacheReseeds checks the invalidation registry:
// dropping the plan cache flags live handles, whose next Advance rebuilds
// resident state (exactly once) without changing the result.
func TestStandingClearPlanCacheReseeds(t *testing.T) {
	q := query.Join2()
	db := data.NewDatabase()
	db.Put(workload.Matching("S1", 2, 200, 1<<20, 1))
	db.Put(workload.Matching("S2", 2, 200, 1<<20, 2))
	e, err := New(Config{P: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	h, err := e.Standing(context.Background(), q, db, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	before := h.Result()

	e.ClearPlanCache()
	rd, err := h.Advance(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rd.Added) != 0 || len(rd.Removed) != 0 {
		t.Errorf("reseed on unchanged content reported a non-empty delta (%d added, %d removed)",
			len(rd.Added), len(rd.Removed))
	}
	if st := h.Stats(); st.Reseeds != 1 {
		t.Fatalf("reseeds = %d, want 1", st.Reseeds)
	}
	if got := h.Result(); !join.EqualTupleSets(got, before) {
		t.Fatal("reseed changed the result on unchanged content")
	}
	// Quiet advance after the reseed is a no-op.
	if _, err := h.Advance(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := h.Stats(); st.Reseeds != 1 {
		t.Fatalf("quiet advance reseeded: %+v", st)
	}
}

// TestStandingMultiRoundFallback forces the multi-round strategy: the
// handle must serve correct results by full re-execution per advance.
func TestStandingMultiRoundFallback(t *testing.T) {
	q := query.Path(3)
	db := data.NewDatabase()
	for i, name := range q.AtomNames() {
		db.Put(workload.Uniform(name, 2, 200, 50, int64(i+1)))
	}
	e, err := New(Config{P: 8, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	forced := MultiRound
	h, err := e.Standing(context.Background(), q, db, ExecOptions{Strategy: &forced})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	view := make(map[data.Key]data.Tuple)
	for _, tu := range h.Result() {
		view[data.KeyOf(tu)] = tu
	}
	for step := 0; step < 5; step++ {
		rel := q.AtomNames()[step%len(q.AtomNames())]
		d := new(data.Delta).Insert(rel, int64(step), int64(step+1))
		if err := db.Apply(d); err != nil {
			t.Fatal(err)
		}
		rd, err := h.Advance(context.Background())
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		applyDelta(t, view, rd)
		want := standingOracle(q, db)
		if !viewEquals(view, want) {
			t.Fatalf("step %d: fallback deltas diverge from oracle", step)
		}
		if got := h.Result(); !join.EqualTupleSets(got, want) {
			t.Fatalf("step %d: fallback result diverges from oracle", step)
		}
	}
	if st := h.Stats(); st.Reseeds != 5 {
		t.Errorf("fallback advances = 5 but reseeds = %d", st.Reseeds)
	}
}

// TestStandingClose checks teardown: a closed handle errors on Advance,
// stops capturing deltas, and Close is idempotent.
func TestStandingClose(t *testing.T) {
	q := query.Join2()
	db := data.NewDatabase()
	db.Put(workload.Matching("S1", 2, 100, 1<<20, 1))
	db.Put(workload.Matching("S2", 2, 100, 1<<20, 2))
	e, err := New(Config{P: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	h, err := e.Standing(context.Background(), q, db, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	h.Close()
	if _, err := h.Advance(context.Background()); err == nil {
		t.Error("advance on closed handle did not error")
	}
	if err := db.Apply(new(data.Delta).Insert("S1", 42, 42)); err != nil {
		t.Fatal(err)
	}
	if st := h.Stats(); st.Pending != 0 {
		t.Errorf("closed handle captured %d deltas", st.Pending)
	}
}
