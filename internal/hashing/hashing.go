// Package hashing provides the seeded per-attribute hash families and the
// multi-dimensional bucket grids used by the HyperCube algorithm, plus load
// measurement helpers for validating the hashing lemma (Lemma 3.1 /
// Appendix B of the paper).
//
// The paper assumes perfectly random hash functions; we substitute a
// splitmix64-based mixing family, which is statistically indistinguishable
// for these load-balance experiments and makes every run reproducible from
// an explicit seed.
package hashing

import (
	"fmt"

	"repro/internal/data"
)

// mix64 is the splitmix64 finalizer: a bijective avalanche mix on 64 bits.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 exposes the splitmix64 finalizer for content hashing elsewhere in
// the system (e.g. database fingerprints).
func Mix64(z uint64) uint64 { return mix64(z) }

// Family is a seeded family of independent hash functions, one per
// "dimension" (query variable or attribute position). Different dims give
// independent-looking functions; the same (seed, dim, value) always hashes
// identically.
type Family struct {
	seed uint64
}

// NewFamily returns a hash family derived from seed.
func NewFamily(seed uint64) *Family { return &Family{seed: mix64(seed)} }

// Hash maps value into [0, buckets) using the dim-th function of the
// family. buckets must be ≥ 1.
func (f *Family) Hash(dim int, value int64, buckets int) int {
	if buckets < 1 {
		panic(fmt.Sprintf("hashing: buckets = %d", buckets))
	}
	if buckets == 1 {
		return 0
	}
	return int(mix64(f.DimSeed(dim)^uint64(value)) % uint64(buckets))
}

// DimSeed returns the dimension-specific seed that Hash folds the value
// into. Routing hot paths resolve it once per dimension at plan time and
// call HashSeeded per value, saving a mix per hash; Hash(dim, v, b) ==
// HashSeeded(DimSeed(dim), v, b) always.
func (f *Family) DimSeed(dim int) uint64 {
	return f.seed ^ mix64(uint64(dim)+0x51f7a54d)
}

// HashSeeded is Hash with the per-dimension seed precomputed via DimSeed.
func HashSeeded(dimSeed uint64, value int64, buckets int) int {
	if buckets == 1 {
		return 0
	}
	return int(mix64(dimSeed^uint64(value)) % uint64(buckets))
}

// Uint64 returns a raw 64-bit hash for (dim, value).
func (f *Family) Uint64(dim int, value int64) uint64 {
	return mix64(f.DimSeed(dim) ^ uint64(value))
}

// Grid is a p_1 × … × p_r bucket grid: attribute i of a tuple is hashed by
// the i-th function of the family into [p_i]. This is the hashing scheme of
// Lemma 3.1.
type Grid struct {
	Shares []int // p_1..p_r, all ≥ 1
	family *Family
	stride []int // linearization strides
	size   int
}

// NewGrid builds a grid with the given per-dimension share counts.
func NewGrid(shares []int, family *Family) *Grid {
	size := 1
	stride := make([]int, len(shares))
	for i := len(shares) - 1; i >= 0; i-- {
		if shares[i] < 1 {
			panic(fmt.Sprintf("hashing: share[%d] = %d", i, shares[i]))
		}
		stride[i] = size
		size *= shares[i]
	}
	return &Grid{Shares: append([]int(nil), shares...), family: family, stride: stride, size: size}
}

// Size returns Π p_i, the number of buckets.
func (g *Grid) Size() int { return g.size }

// Coords returns the per-dimension coordinates of a full tuple (one value
// per dimension).
func (g *Grid) Coords(t data.Tuple) []int {
	if len(t) != len(g.Shares) {
		panic("hashing: tuple arity does not match grid dimensions")
	}
	c := make([]int, len(t))
	for i, v := range t {
		c[i] = g.family.Hash(i, v, g.Shares[i])
	}
	return c
}

// HashDim hashes a single value with the dim-th function of the family
// into that dimension's share count. HyperCube routing uses this to fix the
// coordinates of a tuple's own variables.
func (g *Grid) HashDim(dim int, value int64) int {
	return g.family.Hash(dim, value, g.Shares[dim])
}

// Bucket returns the linearized bucket index of a full tuple.
func (g *Grid) Bucket(t data.Tuple) int {
	b := 0
	for i, v := range t {
		b += g.family.Hash(i, v, g.Shares[i]) * g.stride[i]
	}
	return b
}

// Linear converts per-dimension coordinates to the linear bucket index.
func (g *Grid) Linear(coords []int) int {
	b := 0
	for i, c := range coords {
		if c < 0 || c >= g.Shares[i] {
			panic(fmt.Sprintf("hashing: coord %d out of range [0,%d)", c, g.Shares[i]))
		}
		b += c * g.stride[i]
	}
	return b
}

// LoadReport summarizes how a relation's tuples spread over grid buckets.
type LoadReport struct {
	Max      int     // maximum bucket load (tuples)
	Min      int     // minimum bucket load
	Mean     float64 // m / p
	Buckets  int
	Tuples   int
	PerDim   []int // max marginal load per dimension (L_j in Appendix B)
	Overflow float64
}

// MeasureLoads hashes every tuple of r onto the grid and reports the load
// distribution. The relation arity must equal the grid dimension count.
func MeasureLoads(r *data.Relation, g *Grid) LoadReport {
	loads := make([]int, g.Size())
	perDim := make([][]int, len(g.Shares))
	for i, s := range g.Shares {
		perDim[i] = make([]int, s)
	}
	r.Each(func(_ int, t data.Tuple) bool {
		c := g.Coords(t)
		loads[g.Linear(c)]++
		for i, ci := range c {
			perDim[i][ci]++
		}
		return true
	})
	rep := LoadReport{Buckets: g.Size(), Tuples: r.Size()}
	rep.Min = int(^uint(0) >> 1)
	for _, l := range loads {
		if l > rep.Max {
			rep.Max = l
		}
		if l < rep.Min {
			rep.Min = l
		}
	}
	if len(loads) == 0 {
		rep.Min = 0
	}
	rep.Mean = float64(r.Size()) / float64(g.Size())
	for i := range perDim {
		m := 0
		for _, l := range perDim[i] {
			if l > m {
				m = l
			}
		}
		rep.PerDim = append(rep.PerDim, m)
	}
	if rep.Mean > 0 {
		rep.Overflow = float64(rep.Max) / rep.Mean
	}
	return rep
}
