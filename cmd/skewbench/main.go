// Command skewbench runs the full experiment suite of DESIGN.md — one
// experiment per table/example in "Skew in Parallel Query Processing"
// (Beame–Koutris–Suciu, PODS 2014) plus the ablations — and prints
// paper-versus-measured tables.
//
// Usage:
//
//	skewbench [-scale quick|full] [-exp E1,E5,A2] [-markdown out.md]
//	skewbench -routingbench BENCH_routing.json
//	skewbench -roundsbench BENCH_rounds.json
//	skewbench -commbench BENCH_comm.json
//	skewbench -servebench BENCH_serve.json
//	skewbench -incrbench BENCH_incr.json
//	skewbench -overloadbench BENCH_overload.json
//	skewbench -storagebench BENCH_storage.json
//	skewbench -faultbench BENCH_fault.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	scaleFlag := flag.String("scale", "quick", "experiment scale: quick or full")
	expFlag := flag.String("exp", "", "comma-separated experiment IDs (default: all)")
	mdFlag := flag.String("markdown", "", "also write results as markdown to this file")
	routingFlag := flag.String("routingbench", "", "measure the routing baseline on the zipf join instance, write JSON here, and exit")
	roundsFlag := flag.String("roundsbench", "", "measure the multi-round pipeline baseline (resident shuffle + end-to-end), write JSON here, and exit")
	commFlag := flag.String("commbench", "", "measure the communication engine baseline (sharded vs channel), write JSON here, and exit")
	serveFlag := flag.String("servebench", "", "measure the Session serving hit path (latency vs database size, incremental vs rescan fingerprints), write JSON here, and exit")
	incrFlag := flag.String("incrbench", "", "measure standing-query advances (delta routing) vs full cache-hit Exec across delta and database sizes, write JSON here, and exit")
	overloadFlag := flag.String("overloadbench", "", "measure serving under write pressure (snapshot vs lock-coupled reads) and the 2x-capacity shed rate, write JSON here, and exit")
	storageFlag := flag.String("storagebench", "", "measure the skew-adaptive storage baseline (span-routed vs per-tuple round, parallel vs serial statistics), write JSON here, and exit")
	faultFlag := flag.String("faultbench", "", "measure round-replay vs whole-execution fault recovery on the triangle pipeline, write JSON here, and exit")
	flag.Parse()

	if *routingFlag != "" {
		if err := runRoutingBench(*routingFlag); err != nil {
			fmt.Fprintf(os.Stderr, "skewbench: routing bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *roundsFlag != "" {
		if err := runRoundsBench(*roundsFlag); err != nil {
			fmt.Fprintf(os.Stderr, "skewbench: rounds bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *commFlag != "" {
		if err := runCommBench(*commFlag); err != nil {
			fmt.Fprintf(os.Stderr, "skewbench: comm bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *serveFlag != "" {
		if err := runServeBench(*serveFlag); err != nil {
			fmt.Fprintf(os.Stderr, "skewbench: serve bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *incrFlag != "" {
		if err := runIncrBench(*incrFlag); err != nil {
			fmt.Fprintf(os.Stderr, "skewbench: incr bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *overloadFlag != "" {
		if err := runOverloadBench(*overloadFlag); err != nil {
			fmt.Fprintf(os.Stderr, "skewbench: overload bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *storageFlag != "" {
		if err := runStorageBench(*storageFlag); err != nil {
			fmt.Fprintf(os.Stderr, "skewbench: storage bench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *faultFlag != "" {
		if err := runFaultBench(*faultFlag); err != nil {
			fmt.Fprintf(os.Stderr, "skewbench: fault bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	scale := exp.Quick
	switch *scaleFlag {
	case "quick":
	case "full":
		scale = exp.Full
	default:
		fmt.Fprintf(os.Stderr, "skewbench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	want := map[string]bool{}
	if *expFlag != "" {
		for _, id := range strings.Split(*expFlag, ",") {
			want[strings.ToUpper(strings.TrimSpace(id))] = true
		}
	}

	var md strings.Builder
	failures := 0
	for _, r := range exp.All() {
		if len(want) > 0 && !want[r.ID] {
			continue
		}
		start := time.Now()
		table := r.Run(scale)
		fmt.Print(exp.Render(table))
		fmt.Printf("    (%.1fs)\n\n", time.Since(start).Seconds())
		if !table.OK {
			failures++
		}
		if *mdFlag != "" {
			md.WriteString(exp.Markdown(table))
			md.WriteString("\n")
		}
	}
	if *mdFlag != "" {
		if err := os.WriteFile(*mdFlag, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "skewbench: writing %s: %v\n", *mdFlag, err)
			os.Exit(1)
		}
		fmt.Printf("markdown written to %s\n", *mdFlag)
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "skewbench: %d experiment(s) failed their checks\n", failures)
		os.Exit(1)
	}
}
