package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// ScratchEscape enforces the pooled-output discipline around exec.Scratch:
// an owner that lets a scratch-aliasing Output escape must interpose
// Scratch.DetachOutput first, or the next pooled run overwrites answers
// the caller already holds — the aliasing bug class PR 4's
// TestConcurrentExecuteSharedEngine hunts dynamically under -race.
var ScratchEscape = &analysis.Analyzer{
	Name: "scratchescape",
	Doc: `pooled exec.Scratch outputs must be detached before they escape

A function OWNS a scratch when it creates one (new(exec.Scratch),
&exec.Scratch{}) or recycles one through a pool (sync.Pool Get/Put). If an
owning function both executes a plan with that scratch (stores it in an
exec.Config) and lets a value derived from a ".Output" field escape — by
returning it or storing it into longer-lived state — then a
sc.DetachOutput() call must precede the escape. Functions that merely
receive a Config (the strategy planners) are not owners: their results
stay inside the owner's scratch lifetime by contract.`,
	Run: runScratchEscape,
}

func runScratchEscape(pass *analysis.Pass) error {
	// The exec package implements the pool itself.
	if pass.Pkg.Path() == "repro/internal/exec" {
		return nil
	}
	info := pass.TypesInfo
	funcDecls(pass, func(fd *ast.FuncDecl, inTest bool) {
		checkScratchEscape(pass, info, fd)
	})
	return nil
}

func checkScratchEscape(pass *analysis.Pass, info *types.Info, fd *ast.FuncDecl) {
	// Scratch variables this function owns (created or pooled here).
	owned := map[*types.Var]bool{}
	configured := false // some owned scratch was armed into an exec.Config
	var detaches []token.Pos

	isScratchVar := func(e ast.Expr) *types.Var {
		v := rootVar(info, e)
		if v != nil && namedFrom(v.Type(), "repro/internal/exec", "Scratch") {
			return v
		}
		return nil
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range e.Lhs {
				if i >= len(e.Rhs) && len(e.Rhs) != 1 {
					break
				}
				rhs := e.Rhs[min(i, len(e.Rhs)-1)]
				v := isScratchVar(lhs)
				if v == nil {
					continue
				}
				if scratchOrigin(info, rhs) {
					owned[v] = true
				}
			}
		case *ast.CallExpr:
			// sc.DetachOutput() and pool.Put(sc).
			if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "DetachOutput":
					if isScratchVar(sel.X) != nil {
						detaches = append(detaches, e.Pos())
					}
				case "Put":
					if len(e.Args) == 1 {
						if v := isScratchVar(e.Args[0]); v != nil {
							owned[v] = true // recycling implies ownership
						}
					}
				}
			}
		case *ast.CompositeLit:
			// exec.Config{..., Scratch: sc, ...} arms the scratch.
			t := info.Types[ast.Expr(e)].Type
			if t == nil || !namedFrom(t, "repro/internal/exec", "Config") {
				return true
			}
			for _, el := range e.Elts {
				kv, ok := el.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "Scratch" {
					if v := isScratchVar(kv.Value); v != nil && owned[v] {
						configured = true
					}
				}
			}
		}
		return true
	})
	if !configured {
		return
	}

	// Taint: values assigned from a ".Output" selector, or whole results
	// of exec.Run-shaped calls recorded into locals that then escape.
	tainted := map[*types.Var]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) {
				break
			}
			if !outputDerived(info, rhs, tainted) {
				continue
			}
			if v := rootVar(info, as.Lhs[i]); v != nil {
				tainted[v] = true
			}
		}
		return true
	})
	if len(tainted) == 0 {
		return
	}

	detachedBefore := func(pos token.Pos) bool {
		for _, d := range detaches {
			if d < pos {
				return true
			}
		}
		return false
	}

	// Escapes: returns of tainted values, and stores of tainted values
	// into selector chains rooted outside the function's locals.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ReturnStmt:
			for _, res := range e.Results {
				if v := rootVar(info, res); v != nil && tainted[v] && !detachedBefore(e.Pos()) {
					pass.Reportf(e.Pos(), "returning %s, which aliases a pooled exec.Scratch output, without a preceding DetachOutput", v.Name())
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range e.Lhs {
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok || i >= len(e.Rhs) {
					continue
				}
				rv := rootVar(info, e.Rhs[i])
				if rv == nil || !tainted[rv] {
					continue
				}
				if lv := rootVar(info, sel.X); lv != nil && !lv.IsField() && lv.Parent() != nil {
					// A store into a local struct stays inside the
					// function; a store through the receiver or an
					// escaping pointer is an escape. Approximate: flag
					// stores through function parameters/receiver.
					if isParamOrRecv(fd, info, lv) && !detachedBefore(e.Pos()) {
						pass.Reportf(e.Pos(), "storing a pooled exec.Scratch output into %s.%s without a preceding DetachOutput", lv.Name(), sel.Sel.Name)
					}
				}
			}
		}
		return true
	})
}

// scratchOrigin reports whether rhs creates or pools a Scratch:
// new(exec.Scratch), &exec.Scratch{}, or a pool Get (possibly behind a
// type assertion).
func scratchOrigin(info *types.Info, rhs ast.Expr) bool {
	switch e := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "new" {
				return true
			}
		}
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Get" {
			return true
		}
	case *ast.UnaryExpr:
		if _, ok := ast.Unparen(e.X).(*ast.CompositeLit); ok {
			return true
		}
	case *ast.TypeAssertExpr:
		return scratchOrigin(info, e.X)
	}
	return false
}

// outputDerived reports whether rhs reads a ".Output" field or an already
// tainted variable.
func outputDerived(info *types.Info, rhs ast.Expr, tainted map[*types.Var]bool) bool {
	derived := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if e.Sel.Name == "Output" {
				derived = true
				return false
			}
		case *ast.Ident:
			if v, ok := info.Uses[e].(*types.Var); ok && tainted[v] {
				derived = true
				return false
			}
		}
		return !derived
	})
	return derived
}

// isParamOrRecv reports whether v is a parameter or the receiver of fd.
func isParamOrRecv(fd *ast.FuncDecl, info *types.Info, v *types.Var) bool {
	match := false
	check := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if info.Defs[name] == v {
					match = true
				}
			}
		}
	}
	check(fd.Recv)
	check(fd.Type.Params)
	return match
}
