package stats

import (
	"math"
	"testing"

	"repro/internal/data"
)

func makeSkewed(t *testing.T) *data.Relation {
	t.Helper()
	// 100 tuples: value 7 appears 40 times in column 1, rest distinct.
	r := data.NewRelation("S", 2, 1000)
	for i := int64(0); i < 40; i++ {
		r.Add(i, 7)
	}
	for i := int64(0); i < 60; i++ {
		r.Add(100+i, 100+i)
	}
	return r
}

func TestFrequenciesExact(t *testing.T) {
	r := makeSkewed(t)
	f := Frequencies(r, []int{1})
	if f.Total != 100 {
		t.Errorf("Total = %d", f.Total)
	}
	if f.Count(data.Tuple{7}) != 40 {
		t.Errorf("count(7) = %d, want 40", f.Count(data.Tuple{7}))
	}
	if f.Count(data.Tuple{100}) != 1 {
		t.Errorf("count(100) = %d, want 1", f.Count(data.Tuple{100}))
	}
	if f.Count(data.Tuple{9999}) != 0 {
		t.Error("absent value should count 0")
	}
}

func TestFrequenciesMultiAttr(t *testing.T) {
	r := data.NewRelation("S", 3, 100)
	r.Add(1, 2, 3)
	r.Add(1, 2, 4)
	r.Add(1, 5, 3)
	f := Frequencies(r, []int{0, 1})
	if f.Count(data.Tuple{1, 2}) != 2 || f.Count(data.Tuple{1, 5}) != 1 {
		t.Errorf("multi-attr counts wrong: %v", f.Counts)
	}
}

func TestFrequenciesSortsAttrs(t *testing.T) {
	r := data.NewRelation("S", 2, 100)
	r.Add(1, 2)
	f := Frequencies(r, []int{1, 0})
	if f.Attrs[0] != 0 || f.Attrs[1] != 1 {
		t.Errorf("Attrs = %v, want sorted", f.Attrs)
	}
}

func TestHeavyHitters(t *testing.T) {
	r := makeSkewed(t)
	f := Frequencies(r, []int{1})
	// threshold m/p with p=10: 100/10 = 10; only value 7 (40) is heavy.
	hh := f.HeavyHitters(10)
	if len(hh) != 1 || hh[0].Key != data.Key1(7) || hh[0].Count != 40 {
		t.Errorf("HeavyHitters = %v", hh)
	}
	// threshold 0: every distinct value is heavy; sorted by count desc.
	all := f.HeavyHitters(0)
	if len(all) != 61 {
		t.Errorf("len = %d, want 61", len(all))
	}
	if all[0].Count != 40 {
		t.Error("not sorted by count")
	}
}

func TestSampleFrequenciesFindsBigHitter(t *testing.T) {
	r := makeSkewed(t)
	f := SampleFrequencies(r, []int{1}, 400, 7)
	got := f.Count(data.Tuple{7})
	if got < 20 || got > 60 {
		t.Errorf("sampled count(7) = %d, want ≈40", got)
	}
}

func TestSampleFrequenciesEmpty(t *testing.T) {
	r := data.NewRelation("S", 1, 10)
	f := SampleFrequencies(r, []int{0}, 100, 1)
	if len(f.Counts) != 0 {
		t.Error("empty relation should sample nothing")
	}
}

func TestNumBins(t *testing.T) {
	cases := []struct{ p, want int }{
		{1, 2}, {2, 2}, {4, 3}, {8, 4}, {1024, 11}, {1000, 11},
	}
	for _, c := range cases {
		if got := NumBins(c.p); got != c.want {
			t.Errorf("NumBins(%d) = %d, want %d", c.p, got, c.want)
		}
	}
}

func TestBinOf(t *testing.T) {
	const m, p = 1024, 16 // bins 1..4 heavy, 5 light
	cases := []struct {
		freq int64
		want int
	}{
		{1024, 1}, // m itself: m/2^0 >= f > m/2^1
		{513, 1},  // just above m/2
		{512, 2},  // m/2: in bin 2 (m/2 >= f > m/4)
		{257, 2},
		{256, 3},
		{128, 4},
		{65, 4}, // just above m/p = 64
		{64, 5}, // exactly m/p: light
		{1, 5},
	}
	for _, c := range cases {
		if got := BinOf(c.freq, m, p); got != c.want {
			t.Errorf("BinOf(%d) = %d, want %d", c.freq, got, c.want)
		}
	}
}

func TestBinOfPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	BinOf(0, 10, 2)
}

func TestBinExponent(t *testing.T) {
	const p = 16
	if got := BinExponent(1, p); got != 0 {
		t.Errorf("β_1 = %v, want 0", got)
	}
	// β_b = log_p 2^{b-1}: for p=16, β_2 = 1/4.
	if got := BinExponent(2, p); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("β_2 = %v, want 0.25", got)
	}
	if got := BinExponent(NumBins(p), p); got != 1 {
		t.Errorf("light bin β = %v, want 1", got)
	}
	// Monotone increasing.
	prev := -1.0
	for b := 1; b <= NumBins(p); b++ {
		e := BinExponent(b, p)
		if e < prev {
			t.Errorf("bin exponents not monotone at b=%d", b)
		}
		prev = e
	}
}

func TestBinInvariantFrequencyWithinFactor2(t *testing.T) {
	// All heavy hitters in the same bin have frequencies within 2× of each
	// other (the property the algorithm relies on).
	const m, p = 1 << 20, 64
	for f := int64(m/p + 1); f <= m; f = f*3/2 + 1 {
		b := BinOf(f, m, p)
		if b == NumBins(p) {
			continue
		}
		lo := float64(m) / math.Exp2(float64(b))
		hi := float64(m) / math.Exp2(float64(b-1))
		if !(float64(f) > lo && float64(f) <= hi+1e-9) {
			t.Errorf("freq %d in bin %d outside (m/2^b, m/2^{b-1}] = (%v,%v]", f, b, lo, hi)
		}
	}
}

func TestCollect(t *testing.T) {
	r := makeSkewed(t)
	rs := Collect(r, 10)
	if rs.M != 100 || rs.Threshold != 10 {
		t.Errorf("stats: %+v", rs)
	}
	// Attribute subsets of arity 2: {0}, {1}, {0,1}.
	if len(rs.ByAttrs) != 3 {
		t.Errorf("ByAttrs has %d subsets, want 3", len(rs.ByAttrs))
	}
	hh := rs.Heavy([]int{1})
	if len(hh) != 1 || hh[0].Count != 40 {
		t.Errorf("Heavy = %v", hh)
	}
	if rs.Freq([]int{1}, data.Tuple{7}) != 40 {
		t.Error("Freq wrong for heavy value")
	}
	if rs.Freq([]int{1}, data.Tuple{100}) != 0 {
		t.Error("light values should be pruned from stats")
	}
	if rs.Freq([]int{9}, data.Tuple{0}) != 0 {
		t.Error("unknown attr subset should report 0")
	}
}

func TestCollectPrunesLight(t *testing.T) {
	r := makeSkewed(t)
	rs := Collect(r, 10)
	f := rs.ByAttrs[AttrKey([]int{1})]
	if len(f.Counts) != 1 {
		t.Errorf("pruned map holds %d entries, want 1 (only heavy)", len(f.Counts))
	}
}

func TestHeavyCountBound(t *testing.T) {
	// With threshold m/p there are < p heavy hitters (the paper's O(p)).
	r := data.NewRelation("S", 1, 1<<20)
	for i := int64(0); i < 10000; i++ {
		r.Add(i % 100) // 100 values, each freq 100
	}
	for _, p := range []int{2, 4, 16, 64} {
		rs := Collect(r, p)
		hh := rs.Heavy([]int{0})
		if int64(len(hh)) >= int64(p)+1 {
			t.Errorf("p=%d: %d heavy hitters, want < p+1", p, len(hh))
		}
	}
}

func TestCollectDB(t *testing.T) {
	db := data.NewDatabase()
	r := makeSkewed(t)
	db.Put(r)
	r2 := data.NewRelation("T", 1, 10)
	r2.Add(1)
	db.Put(r2)
	s := CollectDB(db, 10)
	if len(s.Relations) != 2 || s.P != 10 {
		t.Errorf("CollectDB: %+v", s)
	}
	cards := s.Cardinalities()
	if cards["S"] != 100 || cards["T"] != 1 {
		t.Errorf("Cardinalities = %v", cards)
	}
}

func TestAttrKey(t *testing.T) {
	if AttrKey([]int{0, 2}) != "0,2" || AttrKey(nil) != "" {
		t.Error("AttrKey wrong")
	}
}

func TestMergePartitionedCountsEqualGlobal(t *testing.T) {
	// Counting per partition then merging must equal one global pass —
	// the distributed statistics collection real systems perform.
	r := makeSkewed(t)
	// Split into 3 partitions round-robin.
	parts := make([]*data.Relation, 3)
	for i := range parts {
		parts[i] = data.NewRelation("S", 2, r.Domain)
	}
	r.Each(func(i int, tu data.Tuple) bool {
		parts[i%3].Add(tu...)
		return true
	})
	var fms []*FreqMap
	for _, p := range parts {
		fms = append(fms, Frequencies(p, []int{1}))
	}
	merged := Merge(fms...)
	global := Frequencies(r, []int{1})
	if merged.Total != global.Total || len(merged.Counts) != len(global.Counts) {
		t.Fatalf("merged %d/%d vs global %d/%d",
			merged.Total, len(merged.Counts), global.Total, len(global.Counts))
	}
	for k, c := range global.Counts {
		if merged.Counts[k] != c {
			t.Errorf("count(%s): merged %d, global %d", k, merged.Counts[k], c)
		}
	}
}

func TestMergeEmpty(t *testing.T) {
	m := Merge()
	if m.Total != 0 || len(m.Counts) != 0 {
		t.Error("empty merge should be empty")
	}
}

func TestMergeMismatchedAttrsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	a := &FreqMap{Attrs: []int{0}, Counts: map[data.Key]int64{}}
	b := &FreqMap{Attrs: []int{1}, Counts: map[data.Key]int64{}}
	Merge(a, b)
}
