package core

import "errors"

// Typed serving-path errors. Callers branch on these with errors.Is; the
// serving API never requires string matching.
var (
	// ErrOverloaded is returned by admission control when the session is at
	// its in-flight capacity and the wait queue is full: the call was shed
	// immediately instead of queueing without bound.
	ErrOverloaded = errors.New("core: session overloaded: admission queue full")

	// ErrSessionClosed is returned for calls entering a session after Close,
	// and to queued waiters a Close drained away.
	ErrSessionClosed = errors.New("core: session is closed")

	// ErrStandingClosed is returned by StandingQuery methods after Close.
	ErrStandingClosed = errors.New("core: standing query is closed")
)
