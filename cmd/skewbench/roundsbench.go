package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro/internal/data"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/rounds"
	"repro/internal/workload"
)

// RoundsBench is the committed BENCH_rounds.json baseline for the
// multi-round pipeline: the server-to-server resident shuffle and the
// end-to-end pipelined execution on the canonical instances (matching
// BenchmarkMultiRoundEndToEnd). PreRefactorEndToEnd* record the
// per-round-fresh-cluster loop this PR replaced, measured on the same
// machine immediately before the refactor — the numbers the pipelined path
// must stay at or below.
type RoundsBench struct {
	Instance string `json:"instance"`
	GoArch   string `json:"goarch"`
	NumCPU   int    `json:"num_cpu"`
	// One ShuffleResident round moving the triangle plan's round-1
	// intermediate (resident fragments, p=64) into the round-2 layout.
	ShuffleNsPerOp float64 `json:"shuffle_ns_per_op"`
	// ShuffleTuples is how many resident tuples one shuffle op moves.
	ShuffleTuples int64 `json:"shuffle_tuples"`
	// End-to-end multi-round runs (plan lowering + pipeline execution).
	TriangleMatchingsMsPerOp    float64 `json:"triangle_matchings_ms_per_op"`
	ZipfJoinSkewAwareMsPerOp    float64 `json:"zipf_join_skew_aware_ms_per_op"`
	PreRefactorTriangleMsPerOp  float64 `json:"pre_refactor_triangle_ms_per_op"`
	PreRefactorZipfSkewAwareMs  float64 `json:"pre_refactor_zipf_skew_aware_ms_per_op"`
	TriangleSumMaxBits          int64   `json:"triangle_sum_max_bits"`
	TriangleResidentRound2Tuple int64   `json:"triangle_resident_round2_tuples"`
}

// Pre-refactor loop timings (fresh cluster per round, intermediates
// re-ingested through a data.Database at the coordinator), measured on the
// machine this baseline was committed from.
const (
	preRefactorTriangleMs = 5.49
	preRefactorZipfMs     = 4543.0
)

// triangleMatchingsDB is the canonical sparse multi-round instance
// (matching BenchmarkMultiRoundEndToEnd/triangle-matchings).
func triangleMatchingsDB() *data.Database {
	db := data.NewDatabase()
	for j, name := range []string{"S1", "S2", "S3"} {
		db.Put(workload.Matching(name, 2, 5000, 1<<20, int64(j+1)))
	}
	return db
}

// runRoundsBench measures the multi-round pipeline baseline and writes it
// as JSON.
func runRoundsBench(path string) error {
	tri := triangleMatchingsDB()
	q := query.Triangle()
	triPlan := rounds.PlanPipeline(q, tri, rounds.Config{P: 64, Seed: 3})

	// Per-round shuffle: stage a cluster in the round-1 layout (round-1
	// routing + local join resident), then repeatedly re-shuffle the
	// intermediate with the round-2 router. Tuples are conserved across
	// shuffles, so every iteration moves the same resident set.
	pipe := triPlan.Pipe
	st1, st2 := &pipe.Stages[0], &pipe.Stages[1]
	maxVirtual := st1.Plan.Virtual
	if st2.Plan.Virtual > maxVirtual {
		maxVirtual = st2.Plan.Virtual
	}
	cluster := mpc.NewCluster(maxVirtual)
	base := make([]*data.Relation, len(st1.Base))
	for i, name := range st1.Base {
		base[i] = tri.MustGet(name)
	}
	if err := cluster.RoundRelations(st1.Plan.Router, base...); err != nil {
		return err
	}
	cluster.ComputeResident(st1.LocalFragment)
	var resident int64
	for _, sv := range cluster.Servers {
		if f := sv.Received[st1.OutName]; f != nil {
			resident += int64(f.Size())
		}
	}
	shuffle := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := cluster.ShuffleResident(st2.Plan.Router, st1.OutName); err != nil {
				b.Fatal(err)
			}
		}
	})

	triRun := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rounds.Run(rounds.BuildPlan(q), tri, rounds.Config{P: 64, Seed: uint64(i)})
		}
	})
	triRes := rounds.Run(rounds.BuildPlan(q), tri, rounds.Config{P: 64, Seed: 3})

	zdb := zipfJoinDB()
	q2 := query.Join2()
	zipfRun := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rounds.Run(rounds.BuildPlan(q2), zdb, rounds.Config{P: 64, Seed: uint64(i), SkewAware: true})
		}
	})

	out := RoundsBench{
		Instance: "triangle matchings m=5000 domain=2^20 p=64; zipf join2 m=5000 zipf(1.6) over 500 values p=64 skew-aware",
		GoArch:   runtime.GOARCH,
		NumCPU:   runtime.NumCPU(),

		ShuffleNsPerOp:              float64(shuffle.NsPerOp()),
		ShuffleTuples:               resident,
		TriangleMatchingsMsPerOp:    float64(triRun.NsPerOp()) / 1e6,
		ZipfJoinSkewAwareMsPerOp:    float64(zipfRun.NsPerOp()) / 1e6,
		PreRefactorTriangleMsPerOp:  preRefactorTriangleMs,
		PreRefactorZipfSkewAwareMs:  preRefactorZipfMs,
		TriangleSumMaxBits:          triRes.SumMaxBits,
		TriangleResidentRound2Tuple: triRes.Rounds[1].ResidentTuples,
	}
	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("rounds baseline written to %s\n%s", path, blob)
	return nil
}
