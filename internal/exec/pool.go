package exec

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/mpc"
)

// ClusterPool recycles mpc.Clusters across executions. Building a cluster
// costs Θ(Virtual) server and map allocations; an engine serving repeated
// traffic off its plan cache pays that on every Execute unless clusters
// are reused. The pool buckets clusters by virtual-server count rounded up
// to a power of two, so a Get for any size in a bucket can reuse any
// cluster parked there (mpc.Cluster.Resize re-targets it and resets its
// state, retaining servers and map storage).
//
// The pool is bounded: each bucket parks at most Depth clusters
// (DefaultClusterPoolDepth when zero), so a burst of oversized plans
// cannot pin unbounded cluster memory — clusters put back into a full
// bucket are discarded to the garbage collector and counted in Stats.
//
// The zero value is ready to use. Clusters obtained from Get are owned
// exclusively until Put; the pool itself is safe for concurrent use.
type ClusterPool struct {
	// Depth bounds the clusters parked per size bucket; 0 means
	// DefaultClusterPoolDepth. Set it before the pool is shared.
	Depth int

	mu      sync.Mutex
	buckets [64][]*mpc.Cluster
	parked  int

	gets, reuses, puts, discards uint64
}

// DefaultClusterPoolDepth is the per-bucket bound when ClusterPool.Depth is
// zero: enough parked clusters to serve a small burst of same-sized
// concurrent executions, small enough that 64 buckets cannot pin more than
// a few hundred clusters process-wide.
const DefaultClusterPoolDepth = 4

// PoolStats reports a ClusterPool's traffic and occupancy.
type PoolStats struct {
	// Gets counts Get calls; Reuses of them were served by a parked
	// cluster (the rest built one).
	Gets, Reuses uint64
	// Puts counts Put calls; Discards of them found their bucket full and
	// dropped the cluster instead of parking it.
	Puts, Discards uint64
	// Parked is the number of clusters currently held, and ParkedServers
	// the total server count across them — the memory the pool pins.
	Parked        int
	ParkedServers int64
}

// clusterBucket returns the bucket index for n servers: the smallest b
// with 1<<b >= n.
func clusterBucket(n int) int {
	return bits.Len(uint(n - 1))
}

// clusterPrealloc is the largest bucket Get fully preallocates; beyond it
// (over a million virtual servers) clusters are sized exactly to avoid
// absurd rounding overhead.
const clusterPrealloc = 20

// depth returns the effective per-bucket bound.
func (cp *ClusterPool) depth() int {
	if cp.Depth > 0 {
		return cp.Depth
	}
	return DefaultClusterPoolDepth
}

// Get returns a cluster resized to exactly virtual servers with all
// fragments and loads cleared — recycled when the bucket has one, freshly
// built otherwise.
func (cp *ClusterPool) Get(virtual int) *mpc.Cluster {
	if virtual < 1 {
		panic(fmt.Sprintf("exec: cluster size %d", virtual))
	}
	b := clusterBucket(virtual)
	cp.mu.Lock()
	cp.gets++
	if n := len(cp.buckets[b]); n > 0 {
		c := cp.buckets[b][n-1]
		cp.buckets[b][n-1] = nil
		cp.buckets[b] = cp.buckets[b][:n-1]
		cp.reuses++
		cp.parked--
		cp.mu.Unlock()
		return c.Resize(virtual)
	}
	cp.mu.Unlock()
	capacity := virtual
	if b <= clusterPrealloc {
		// Build the bucket's full capacity up front so this cluster can
		// serve any size in its bucket without regrowing.
		capacity = 1 << b
	}
	return mpc.NewCluster(capacity).Resize(virtual)
}

// Put parks a cluster for reuse, or discards it when its bucket is already
// holding Depth clusters. The caller must not touch it afterwards.
func (cp *ClusterPool) Put(c *mpc.Cluster) {
	if c == nil {
		return
	}
	// Release fragments before parking: a pooled cluster must not pin the
	// run's delivered data (which can dwarf the cluster itself) until the
	// next Get happens to clear it.
	c.Reset()
	b := clusterBucket(c.Capacity())
	cp.mu.Lock()
	defer cp.mu.Unlock()
	cp.puts++
	if len(cp.buckets[b]) >= cp.depth() {
		cp.discards++
		return
	}
	cp.buckets[b] = append(cp.buckets[b], c)
	cp.parked++
}

// Stats returns the pool's counters and current occupancy.
func (cp *ClusterPool) Stats() PoolStats {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	st := PoolStats{
		Gets: cp.gets, Reuses: cp.reuses,
		Puts: cp.puts, Discards: cp.discards,
		Parked: cp.parked,
	}
	for _, bucket := range cp.buckets {
		for _, c := range bucket {
			st.ParkedServers += int64(c.Capacity())
		}
	}
	return st
}

// sharedClusters serves every Run/RunPipeline without an explicit
// Config.Clusters pool.
var sharedClusters ClusterPool

// SharedPoolStats reports the process-wide shared pool's occupancy.
func SharedPoolStats() PoolStats { return sharedClusters.Stats() }
