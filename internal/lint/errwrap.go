package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// ErrWrap keeps the typed error taxonomy (PR 7) closed: callers branch on
// sentinel errors with errors.Is, which only works when every wrapping
// site uses %w and every sentinel is a package-level Err… variable.
var ErrWrap = &analysis.Analyzer{
	Name: "errwrap",
	Doc: `fmt.Errorf must wrap embedded errors with %w; sentinels must be var Err…

In non-test engine code (everything outside cmd/ harnesses):

  1. A fmt.Errorf call whose arguments include an error must use the %w
     verb, so errors.Is/As can traverse the chain — %v flattens the error
     into text and breaks the taxonomy.
  2. An exported package-level variable of type error must be named with
     an Err prefix (ErrOverloaded, ErrTornRound, …), keeping the sentinel
     namespace scannable and the errors.Is surface explicit.`,
	Run: runErrWrap,
}

func runErrWrap(pass *analysis.Pass) error {
	if isCmdPath(pass.Pkg.Path()) {
		return nil
	}
	info := pass.TypesInfo
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

	for i, file := range pass.Files {
		if i < len(pass.IsTest) && pass.IsTest[i] {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.CallExpr:
				fn := calleeFunc(info, e)
				if !isPkgFunc(fn, "fmt", "Errorf") || len(e.Args) < 2 {
					return true
				}
				format, ok := constFormat(info, e.Args[0])
				if !ok || strings.Contains(format, "%w") {
					return true
				}
				for _, arg := range e.Args[1:] {
					at := info.Types[arg].Type
					if at == nil {
						continue
					}
					if types.Implements(at, errType) {
						pass.Reportf(e.Pos(), "fmt.Errorf embeds an error without %%w: errors.Is/As cannot traverse it — wrap with %%w (or strip the error argument)")
						break
					}
				}
			case *ast.GenDecl:
				for _, spec := range e.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						obj, _ := info.Defs[name].(*types.Var)
						if obj == nil || !obj.Exported() || obj.Parent() != pass.Pkg.Scope() {
							continue
						}
						if !types.Implements(obj.Type(), errType) {
							continue
						}
						if !strings.HasPrefix(name.Name, "Err") {
							pass.Reportf(name.Pos(), "exported sentinel error %s must be named with an Err prefix (var ErrXxx = errors.New(…))", name.Name)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// constFormat extracts a constant string value from an expression.
func constFormat(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
