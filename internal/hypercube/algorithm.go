package hypercube

import (
	"fmt"
	"math"

	"repro/internal/data"
	"repro/internal/hashing"
	"repro/internal/join"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/wcoj"
)

// Router routes tuples to hypercube subcubes: a tuple of S_j fixes the
// coordinates of the dimensions of vars(S_j) by hashing and is replicated
// over every combination of the remaining dimensions (§3.1).
type Router struct {
	q      *query.Query
	grid   *hashing.Grid
	shares []int
	// atomVars[name] maps attribute position → variable index (dimension).
	atomVars map[string][]int
}

// NewRouter builds the HC router for the given integer shares (one per
// query variable, product ≤ the cluster size).
func NewRouter(q *query.Query, shares []int, family *hashing.Family) *Router {
	if len(shares) != q.NumVars() {
		panic("hypercube: shares length must equal variable count")
	}
	r := &Router{
		q:        q,
		grid:     hashing.NewGrid(shares, family),
		shares:   append([]int(nil), shares...),
		atomVars: make(map[string][]int),
	}
	for _, a := range q.Atoms {
		r.atomVars[a.Name] = append([]int(nil), a.Vars...)
	}
	return r
}

// Size returns the number of hypercube cells (Π p_i).
func (r *Router) Size() int { return r.grid.Size() }

// Destinations implements mpc.Router: the subcube of servers receiving t.
func (r *Router) Destinations(rel string, t data.Tuple, dst []int) []int {
	vars, ok := r.atomVars[rel]
	if !ok {
		panic("hypercube: relation " + rel + " not in query")
	}
	k := len(r.shares)
	coords := make([]int, k)
	fixed := make([]bool, k)
	for pos, v := range vars {
		coords[v] = r.grid.HashDim(v, t[pos])
		fixed[v] = true
	}
	// Enumerate the free dimensions.
	var rec func(dim int)
	rec = func(dim int) {
		if dim == k {
			dst = append(dst, r.grid.Linear(coords))
			return
		}
		if fixed[dim] {
			rec(dim + 1)
			return
		}
		for c := 0; c < r.shares[dim]; c++ {
			coords[dim] = c
			rec(dim + 1)
		}
	}
	rec(0)
	return dst
}

// Config controls a HyperCube run.
type Config struct {
	P    int    // number of servers
	Seed uint64 // hash-family seed; same seed → identical run

	// Shares overrides share selection entirely when non-nil.
	Shares []int
	// Exponents overrides the LP when non-nil (rounded per Strategy).
	Exponents []float64
	// Strategy selects integer rounding (default RoundGreedy).
	Strategy Rounding
	// UseAfratiUllman selects the baseline total-load optimizer instead of
	// the paper's LP (ablation A2).
	UseAfratiUllman bool
	// EqualShares forces the skew-resilient p^{1/k} configuration
	// (Corollary 3.2 (ii)).
	EqualShares bool
	// SkipJoin measures communication only: servers receive their
	// fragments but do not compute the local join. Loads are identical;
	// Output stays empty. Load-focused experiments use this to avoid
	// materializing quadratic outputs.
	SkipJoin bool
	// UseWCOJ computes the local joins with the generic worst-case
	// optimal algorithm instead of binary hash joins — useful when server
	// fragments are cyclic and dense enough that binary plans blow up
	// locally (the NPRR separation, [9] in the paper).
	UseWCOJ bool
}

// Result reports a HyperCube run.
type Result struct {
	Shares        []int
	Exponents     []float64
	Lambda        float64 // LP optimum: predicted load is p^λ bits
	PredictedBits float64 // p^λ (only for LP-based share selection)
	Output        []data.Tuple
	Loads         mpc.LoadSummary
}

// Run executes the one-round HC algorithm for q over db on cfg.P simulated
// servers and returns the answers plus the realized loads.
func Run(q *query.Query, db *data.Database, cfg Config) Result {
	if cfg.P < 1 {
		panic("hypercube: P must be >= 1")
	}
	res := Result{}
	bits := atomBits(q, db)
	switch {
	case cfg.Shares != nil:
		res.Shares = append([]int(nil), cfg.Shares...)
	case cfg.EqualShares:
		res.Shares = EqualShares(q.NumVars(), cfg.P)
	case cfg.Exponents != nil:
		res.Exponents = append([]float64(nil), cfg.Exponents...)
		res.Shares = RoundShares(res.Exponents, cfg.P, cfg.Strategy)
	case cfg.UseAfratiUllman:
		res.Exponents = AfratiUllmanExponents(q, bits, cfg.P)
		res.Shares = RoundShares(res.Exponents, cfg.P, cfg.Strategy)
	default:
		e, lambda := OptimalExponents(q, bits, cfg.P)
		res.Exponents = e
		res.Lambda = lambda
		res.PredictedBits = math.Pow(float64(cfg.P), lambda)
		res.Shares = RoundShares(e, cfg.P, cfg.Strategy)
	}
	if got := product(res.Shares); got > cfg.P {
		panic(fmt.Sprintf("hypercube: shares %v use %d > p = %d servers", res.Shares, got, cfg.P))
	}

	family := hashing.NewFamily(cfg.Seed)
	router := NewRouter(q, res.Shares, family)
	cluster := mpc.NewCluster(cfg.P)
	if err := cluster.Round(db, router); err != nil {
		// The share product was validated above, so HC routing cannot emit
		// out-of-range destinations; any error is an internal bug.
		panic(err)
	}
	if !cfg.SkipJoin {
		local := func(s *mpc.Server) []data.Tuple {
			return join.Join(q, s.Received)
		}
		if cfg.UseWCOJ {
			local = func(s *mpc.Server) []data.Tuple {
				return wcoj.Join(q, s.Received)
			}
		}
		res.Output = cluster.Compute(local)
	}
	res.Loads = cluster.Loads().WithReplication(db.TotalBits())
	return res
}

// atomBits returns M_j in bits for each atom of q, looked up in db.
func atomBits(q *query.Query, db *data.Database) []float64 {
	bits := make([]float64, q.NumAtoms())
	for j, a := range q.Atoms {
		r := db.Get(a.Name)
		if r == nil {
			panic("hypercube: database missing relation " + a.Name)
		}
		b := r.Bits()
		if b <= 0 {
			b = 1 // empty relations: keep logs finite; the join is empty anyway
		}
		bits[j] = float64(b)
	}
	return bits
}
