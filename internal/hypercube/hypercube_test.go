package hypercube

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/hashing"
	"repro/internal/join"
	"repro/internal/query"
	"repro/internal/workload"
)

func TestOptimalExponentsTriangleEqualSizes(t *testing.T) {
	// Equal cardinalities: e = (1/3,1/3,1/3), λ = μ - 2/3 where μ = log_p M.
	q := query.Triangle()
	p := 64
	M := math.Pow(64, 1.5) // μ = 1.5 ⇒ λ = 1.5 - 2/3 = 5/6
	e, lambda := OptimalExponents(q, []float64{M, M, M}, p)
	for i, ei := range e {
		if math.Abs(ei-1.0/3) > 1e-9 {
			t.Errorf("e[%d] = %v, want 1/3", i, ei)
		}
	}
	if math.Abs(lambda-5.0/6) > 1e-9 {
		t.Errorf("λ = %v, want 5/6", lambda)
	}
}

func TestOptimalExponentsJoinEqualSizes(t *testing.T) {
	// Join2 with equal sizes: standard hash join on z is optimal:
	// e_z = 1, e_x = e_y = 0, λ = μ - 1.
	q := query.Join2()
	p := 64
	M := float64(64 * 64) // μ = 2
	e, lambda := OptimalExponents(q, []float64{M, M}, p)
	if math.Abs(lambda-1) > 1e-9 {
		t.Errorf("λ = %v, want 1 (load M/p)", lambda)
	}
	if math.Abs(e[2]-1) > 1e-9 {
		t.Errorf("e_z = %v, want 1", e[2])
	}
}

func TestOptimalExponentsCartesianUnequal(t *testing.T) {
	// §1: cartesian product with sizes M1, M2 gives load sqrt(M1 M2 / p):
	// λ = (μ1+μ2-1)/2 when shares balance.
	q := query.Cartesian(2)
	p := 256
	M1, M2 := math.Pow(256, 1.5), math.Pow(256, 1.2)
	_, lambda := OptimalExponents(q, []float64{M1, M2}, p)
	want := (1.5 + 1.2 - 1) / 2
	if math.Abs(lambda-want) > 1e-9 {
		t.Errorf("λ = %v, want %v", lambda, want)
	}
}

func TestOptimalExponentsBroadcastCase(t *testing.T) {
	// If M1 is tiny (μ1 < small), the LP should put all share on the large
	// relation's exclusive variable... for cartesian: e2 ≈ 1, λ ≈ μ1.
	q := query.Cartesian(2)
	p := 256
	M1, M2 := float64(256), math.Pow(256, 2) // μ1 = 1, μ2 = 2
	e, lambda := OptimalExponents(q, []float64{M1, M2}, p)
	if math.Abs(lambda-1) > 1e-9 { // load = max(M1/p^0, M2/p^1) = 256
		t.Errorf("λ = %v, want 1", lambda)
	}
	if e[1] < 0.99 {
		t.Errorf("e2 = %v, want ≈1", e[1])
	}
}

func TestOptimalExponentsPanics(t *testing.T) {
	q := query.Join2()
	for _, f := range []func(){
		func() { OptimalExponents(q, []float64{1}, 4) },
		func() { OptimalExponents(q, []float64{1, 1}, 1) },
		func() { OptimalExponents(q, []float64{0, 1}, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestAfratiUllmanMatchesLPOnSymmetricTriangle(t *testing.T) {
	// For the symmetric triangle both optimizers should land on (1/3,1/3,1/3).
	q := query.Triangle()
	M := []float64{1 << 20, 1 << 20, 1 << 20}
	e := AfratiUllmanExponents(q, M, 64)
	for i, ei := range e {
		if math.Abs(ei-1.0/3) > 0.02 {
			t.Errorf("AU e[%d] = %v, want ≈1/3", i, ei)
		}
	}
}

func TestAfratiUllmanStaysOnSimplex(t *testing.T) {
	q := query.Path(3)
	M := []float64{1 << 10, 1 << 20, 1 << 14}
	e := AfratiUllmanExponents(q, M, 128)
	sum := 0.0
	for _, ei := range e {
		if ei < -1e-9 {
			t.Errorf("negative exponent %v", ei)
		}
		sum += ei
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("Σe = %v, want 1", sum)
	}
}

func TestProjectSimplex(t *testing.T) {
	v := []float64{0.5, 0.5, 0.5}
	projectSimplex(v)
	sum := 0.0
	for _, x := range v {
		sum += x
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("projection sum = %v", sum)
	}
	w := []float64{-5, -1}
	projectSimplex(w)
	sum = w[0] + w[1]
	if math.Abs(sum-1) > 1e-12 || w[0] < 0 || w[1] < 0 {
		t.Errorf("projection of negatives = %v", w)
	}
}

func TestRoundSharesProductBound(t *testing.T) {
	for _, strat := range []Rounding{RoundFloor, RoundGreedy, RoundPowerOfTwo} {
		for _, p := range []int{8, 64, 100, 1000, 4096} {
			e := []float64{0.5, 0.3, 0.2}
			s := RoundShares(e, p, strat)
			if product(s) > p {
				t.Errorf("%v p=%d: shares %v product %d > p", strat, p, s, product(s))
			}
			for _, si := range s {
				if si < 1 {
					t.Errorf("%v p=%d: share < 1: %v", strat, p, s)
				}
			}
		}
	}
}

func TestRoundGreedyBeatsFloor(t *testing.T) {
	// Greedy must use at least as many servers as floor.
	e := []float64{0.5, 0.5}
	p := 512
	floor := RoundShares(e, p, RoundFloor)
	greedy := RoundShares(e, p, RoundGreedy)
	if product(greedy) < product(floor) {
		t.Errorf("greedy %v worse than floor %v", greedy, floor)
	}
}

func TestRoundPowerOfTwo(t *testing.T) {
	s := RoundShares([]float64{0.5, 0.5}, 64, RoundPowerOfTwo)
	for _, si := range s {
		if si&(si-1) != 0 {
			t.Errorf("share %d not a power of two", si)
		}
	}
	if product(s) > 64 {
		t.Errorf("product %d > 64", product(s))
	}
}

func TestEqualShares(t *testing.T) {
	s := EqualShares(3, 64)
	if len(s) != 3 || product(s) > 64 {
		t.Errorf("EqualShares = %v", s)
	}
	// 64^(1/3) = 4: expect all shares 4.
	for _, si := range s {
		if si != 4 {
			t.Errorf("EqualShares(3,64) = %v, want (4,4,4)", s)
		}
	}
}

func TestRoundingStrings(t *testing.T) {
	if RoundFloor.String() != "floor" || RoundGreedy.String() != "greedy" ||
		RoundPowerOfTwo.String() != "pow2" || Rounding(9).String() != "?" {
		t.Error("Rounding strings wrong")
	}
}

func TestRouterDestinationsSubcube(t *testing.T) {
	q := query.Join2() // vars x,y,z
	shares := []int{2, 3, 4}
	r := NewRouter(q, shares, hashing.NewFamily(1))
	if r.Size() != 24 {
		t.Fatalf("Size = %d", r.Size())
	}
	// S1(x,z) tuple: fixed x and z, free y → exactly 3 destinations.
	dst := r.Destinations("S1", data.Tuple{5, 7}, nil)
	if len(dst) != 3 {
		t.Errorf("S1 destinations = %v, want 3", dst)
	}
	// S2(y,z): free x → 2 destinations.
	dst = r.Destinations("S2", data.Tuple{5, 7}, nil)
	if len(dst) != 2 {
		t.Errorf("S2 destinations = %v, want 2", dst)
	}
}

func TestRouterOutputCoverage(t *testing.T) {
	// For any joining pair, the subcubes must intersect in exactly the
	// server of the output tuple's full hash.
	q := query.Join2()
	shares := []int{2, 3, 4}
	r := NewRouter(q, shares, hashing.NewFamily(2))
	d1 := r.Destinations("S1", data.Tuple{11, 99}, nil) // x=11,z=99
	d2 := r.Destinations("S2", data.Tuple{22, 99}, nil) // y=22,z=99
	common := 0
	for _, a := range d1 {
		for _, b := range d2 {
			if a == b {
				common++
			}
		}
	}
	if common != 1 {
		t.Errorf("subcubes intersect in %d servers, want exactly 1", common)
	}
}

func TestRouterSkipsUnknownRelation(t *testing.T) {
	// The database may stage relations the query doesn't mention; like the
	// skew routers, the HC router must not route them (a panic here would
	// kill a sender goroutine mid-round).
	q := query.Join2()
	r := NewRouter(q, []int{1, 1, 2}, hashing.NewFamily(1))
	if dst := r.Destinations("nope", data.Tuple{1, 2}, nil); len(dst) != 0 {
		t.Errorf("unknown relation routed to %v", dst)
	}
	rel := data.NewRelation("nope", 2, 10)
	rel.Add(1, 2)
	if dst := r.DestinationsAt(rel, 0, nil); len(dst) != 0 {
		t.Errorf("unknown relation routed to %v (columnar)", dst)
	}
	// And known relations still route after an unknown one was seen.
	if dst := r.Destinations("S1", data.Tuple{1, 2}, nil); len(dst) == 0 {
		t.Error("known relation stopped routing")
	}
}

func mkDB(q *query.Query, m int, domain int64, seed int64) *data.Database {
	specs := make([]workload.AtomSpec, q.NumAtoms())
	for j, a := range q.Atoms {
		d := domain
		if a.Arity() == 1 && d < int64(4*m) {
			d = int64(4 * m) // keep unary relations sparse enough to sample
		}
		specs[j] = workload.AtomSpec{Name: a.Name, Arity: a.Arity(), M: m, Domain: d}
	}
	return workload.ForQuery(specs, seed)
}

func TestRunCorrectnessAgainstReference(t *testing.T) {
	for _, q := range []*query.Query{query.Join2(), query.Triangle(), query.Path(3), query.Star(2)} {
		db := mkDB(q, 300, 40, 5)
		res := Run(q, db, Config{P: 16, Seed: 3})
		want := join.Join(q, join.FromDatabase(db))
		if !join.EqualTupleSets(res.Output, want) {
			t.Errorf("%s: HC output %d tuples, reference %d", q.Name, len(res.Output), len(want))
		}
	}
}

func TestRunExplicitShares(t *testing.T) {
	q := query.Join2()
	db := mkDB(q, 200, 50, 7)
	res := Run(q, db, Config{P: 8, Seed: 1, Shares: []int{2, 2, 2}})
	want := join.Join(q, join.FromDatabase(db))
	if !join.EqualTupleSets(res.Output, want) {
		t.Error("explicit-share run incorrect")
	}
	if res.Shares[0] != 2 {
		t.Error("shares not honored")
	}
}

func TestRunEqualShares(t *testing.T) {
	q := query.Triangle()
	db := mkDB(q, 200, 40, 9)
	res := Run(q, db, Config{P: 27, Seed: 4, EqualShares: true})
	want := join.Join(q, join.FromDatabase(db))
	if !join.EqualTupleSets(res.Output, want) {
		t.Error("equal-share run incorrect")
	}
	for _, s := range res.Shares {
		if s != 3 {
			t.Errorf("EqualShares on p=27: %v, want (3,3,3)", res.Shares)
		}
	}
}

func TestRunSharesExceedPPanics(t *testing.T) {
	q := query.Join2()
	db := mkDB(q, 10, 100, 1)
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Run(q, db, Config{P: 4, Shares: []int{2, 2, 2}})
}

func TestRunDeterministicAcrossSeeds(t *testing.T) {
	q := query.Join2()
	db := mkDB(q, 100, 200, 3)
	a := Run(q, db, Config{P: 8, Seed: 42})
	b := Run(q, db, Config{P: 8, Seed: 42})
	if a.Loads.MaxBits != b.Loads.MaxBits || len(a.Output) != len(b.Output) {
		t.Error("same seed gave different runs")
	}
}

func TestRunLoadWithinPolylogOfPrediction(t *testing.T) {
	// Theorem 3.4: skew-free max load O(Lupper ln^k p).
	q := query.Join2()
	db := mkDB(q, 20000, 1<<20, 11)
	p := 64
	res := Run(q, db, Config{P: p, Seed: 5})
	if res.PredictedBits <= 0 {
		t.Fatal("no prediction")
	}
	factor := float64(res.Loads.MaxBits) / res.PredictedBits
	logK := math.Pow(math.Log(float64(p)), float64(q.NumVars()))
	if factor > logK {
		t.Errorf("measured/predicted = %v exceeds ln^k p = %v", factor, logK)
	}
	// And not absurdly below the prediction either (sanity: within 100x).
	if factor < 0.01 {
		t.Errorf("measured load suspiciously low: factor %v", factor)
	}
}

func TestAtomBitsMissingRelationPanics(t *testing.T) {
	q := query.Join2()
	db := data.NewDatabase()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Run(q, db, Config{P: 4})
}

func TestRunTernaryAtomQuery(t *testing.T) {
	// q(x,y,z,w) = R(x,y,z), S(z,w): a ternary atom exercises subcube
	// routing with three fixed dimensions.
	q := query.MustParse("q(x,y,z,w) = R(x,y,z), S(z,w)")
	db := data.NewDatabase()
	db.Put(workload.Uniform("R", 3, 400, 30, 1))
	db.Put(workload.Uniform("S", 2, 400, 30, 2))
	res := Run(q, db, Config{P: 16, Seed: 3})
	want := join.Join(q, join.FromDatabase(db))
	if !join.EqualTupleSets(res.Output, want) {
		t.Errorf("ternary HC: %d vs %d tuples", len(res.Output), len(want))
	}
	if len(want) == 0 {
		t.Fatal("test instance produced no answers; lower the domain")
	}
}

func TestOptimalExponentsTernary(t *testing.T) {
	// Shares must respect arity-3 atoms in the LP constraints.
	q := query.MustParse("q(x,y,z,w) = R(x,y,z), S(z,w)")
	e, lambda := OptimalExponents(q, []float64{1 << 20, 1 << 20}, 64)
	if lambda <= 0 {
		t.Errorf("λ = %v", lambda)
	}
	sum := 0.0
	for _, ei := range e {
		if ei < -1e-9 {
			t.Errorf("negative exponent %v", ei)
		}
		sum += ei
	}
	if sum > 1+1e-9 {
		t.Errorf("Σe = %v > 1", sum)
	}
}

func TestRunWithWCOJLocalJoins(t *testing.T) {
	// The worst-case-optimal local join must produce identical output.
	for _, q := range []*query.Query{query.Triangle(), query.Join2(), query.Cycle(4)} {
		db := mkDB(q, 250, 40, 13)
		hash := Run(q, db, Config{P: 8, Seed: 2})
		wc := Run(q, db, Config{P: 8, Seed: 2, UseWCOJ: true})
		if !join.EqualTupleSets(hash.Output, wc.Output) {
			t.Errorf("%s: wcoj local join disagrees (%d vs %d tuples)",
				q.Name, len(wc.Output), len(hash.Output))
		}
		if hash.Loads.MaxBits != wc.Loads.MaxBits {
			t.Errorf("%s: local join choice must not change communication", q.Name)
		}
	}
}

// Property: RoundShares respects the budget for arbitrary exponent vectors
// on the simplex, for every strategy.
func TestRoundSharesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(5)
		e := make([]float64, k)
		sum := 0.0
		for i := range e {
			e[i] = rng.Float64()
			sum += e[i]
		}
		for i := range e {
			e[i] /= sum // normalize onto the simplex
		}
		p := 2 + rng.Intn(2000)
		for _, strat := range []Rounding{RoundFloor, RoundGreedy, RoundPowerOfTwo} {
			s := RoundShares(e, p, strat)
			if product(s) > p {
				return false
			}
			for _, si := range s {
				if si < 1 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: RoundToBudget never exceeds its budget and fills at least half
// of it when ideals allow (greedy increments until blocked).
func TestRoundToBudgetProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(4)
		ideal := make([]float64, k)
		for i := range ideal {
			ideal[i] = 1 + rng.Float64()*20
		}
		budget := 1 + rng.Intn(500)
		s := RoundToBudget(ideal, budget)
		if product(s) > budget {
			return false
		}
		// Greedy exhaustion: no single increment can still fit.
		prod := product(s)
		for i := range s {
			if prod/s[i]*(s[i]+1) <= budget {
				// an increment fits but gain could be 0 only if ideal < 1,
				// which we excluded — so this would be a greedy bug
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: HC on random catalog queries at random p is correct.
func TestRunCatalogSweepP(t *testing.T) {
	for _, name := range query.CatalogNames() {
		q := query.Catalog()[name]
		m := 150
		if !q.Connected() {
			m = 30 // cartesian outputs are m^u; keep them small
		}
		db := mkDB(q, m, 25, 17)
		want := join.Join(q, join.FromDatabase(db))
		for _, p := range []int{2, 5, 16, 63} {
			res := Run(q, db, Config{P: p, Seed: 11})
			if !join.EqualTupleSets(res.Output, want) {
				t.Errorf("%s p=%d: %d vs %d tuples", name, p, len(res.Output), len(want))
			}
		}
	}
}

func TestPredictLoadSkewFreeMatchesSimulation(t *testing.T) {
	// Cor. 3.2 (i): the analytical prediction tracks the simulator on
	// matchings within a small constant.
	q := query.Triangle()
	db := mkDB(q, 3000, 1<<20, 19)
	bits := make([]float64, 3)
	for j, a := range q.Atoms {
		bits[j] = float64(db.MustGet(a.Name).Bits())
	}
	// Matchings, not uniform: rebuild with Matching for the skew-free
	// guarantee.
	db = dbMatch(q, 3000)
	for j, a := range q.Atoms {
		bits[j] = float64(db.MustGet(a.Name).Bits())
	}
	shares := []int{4, 4, 4}
	pred := PredictLoadSkewFree(q, bits, shares)
	res := Run(q, db, Config{P: 64, Seed: 3, Shares: shares, SkipJoin: true})
	// Measured = Σ_j per-relation loads ≤ ℓ · max_j ... so within [1, 3]×.
	ratio := float64(res.Loads.MaxBits) / pred
	if ratio < 0.9 || ratio > 4 {
		t.Errorf("measured/predicted = %v", ratio)
	}
}

func dbMatch(q *query.Query, m int) *data.Database {
	db := data.NewDatabase()
	for j, a := range q.Atoms {
		db.Put(workload.Matching(a.Name, a.Arity(), m, 1<<20, int64(j+50)))
	}
	return db
}

func TestPredictLoadWorstCaseHolds(t *testing.T) {
	// Cor. 3.2 (ii): on the fully-skewed instance the measured load stays
	// within a constant of the worst-case formula.
	q := query.Join2()
	db := data.NewDatabase()
	db.Put(workload.SingleValue("S1", 2, 3000, 1<<20, 1, 7, 1))
	db.Put(workload.SingleValue("S2", 2, 3000, 1<<20, 1, 7, 2))
	bits := []float64{float64(db.MustGet("S1").Bits()), float64(db.MustGet("S2").Bits())}
	shares := EqualShares(3, 64)
	pred := PredictLoadWorstCase(q, bits, shares)
	res := Run(q, db, Config{P: 64, Seed: 3, Shares: shares, SkipJoin: true})
	ratio := float64(res.Loads.MaxBits) / pred
	if ratio > 4 {
		t.Errorf("measured %v exceeds worst-case formula %v by %vx",
			res.Loads.MaxBits, pred, ratio)
	}
}

func TestPredictLoadPanics(t *testing.T) {
	q := query.Join2()
	for _, f := range []func(){
		func() { PredictLoadSkewFree(q, []float64{1}, []int{1, 1, 1}) },
		func() { PredictLoadWorstCase(q, []float64{1, 1}, []int{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}
