package lint

// This file holds the standard-analyzer ports. Vanilla `go vet` ships a
// fixed analyzer set; the x/tools extras reimplemented here (shadow, a
// broader copylocks surface, unusedwrite, nilness) normally require
// golang.org/x/tools, which is not vendored in this module. These are
// deliberately conservative versions: each flags only patterns that are
// almost certainly bugs, so the suite can run blocking in CI without a
// standing triage queue.

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// Shadow flags inner declarations that shadow a same-typed variable of an
// enclosing function scope while the outer variable is still used
// afterwards — the classic `err :=`-in-a-branch bug.
var Shadow = &analysis.Analyzer{
	Name: "shadow",
	Doc: `report shadowed variable declarations that look like bugs

An inner := or var declaration shadows an outer function-scope variable of
the identical type, and the outer variable is read again after the inner
scope closes. (Same-type + used-after is vet's own noise filter: a shadow
nobody reads past is stylistic, not a bug.) Declarations that are Go
idiom — function-literal parameters, "if err := f(); …" init clauses,
"case v := <-ch" receive clauses, and "x := x" loop-variable rebinds —
are never flagged.`,
	Run: runShadow,
}

func runShadow(pass *analysis.Pass) error {
	info := pass.TypesInfo
	funcDecls(pass, func(fd *ast.FuncDecl, inTest bool) {
		// Declarations in control-flow init clauses and select receive
		// clauses are scoped to the statement they guard; shadowing there
		// is deliberate idiom, not a bug.
		idiomatic := map[ast.Stmt]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.IfStmt:
				idiomatic[e.Init] = true
			case *ast.ForStmt:
				idiomatic[e.Init] = true
			case *ast.SwitchStmt:
				idiomatic[e.Init] = true
			case *ast.TypeSwitchStmt:
				idiomatic[e.Init] = true
				idiomatic[e.Assign] = true
			case *ast.CommClause:
				idiomatic[e.Comm] = true
			}
			return true
		})

		checkIdent := func(id *ast.Ident) {
			if id.Name == "_" {
				return
			}
			inner, ok := info.Defs[id].(*types.Var)
			if !ok || inner.IsField() {
				return
			}
			scope := inner.Parent()
			if scope == nil || scope.Parent() == nil {
				return
			}
			// Look outward, stopping at package scope: only function-local
			// shadowing is in scope.
			_, outerObj := scope.Parent().LookupParent(id.Name, id.Pos())
			outer, ok := outerObj.(*types.Var)
			if !ok || outer == inner || outer.IsField() {
				return
			}
			if outer.Parent() == pass.Pkg.Scope() || outer.Parent() == types.Universe {
				return
			}
			if !types.Identical(outer.Type(), inner.Type()) {
				return
			}
			// The shadow is only bug-shaped if the outer variable is used
			// after the inner scope ends.
			if usedAfter(info, fd.Body, outer, scope.End()) {
				pass.Reportf(id.Pos(), "declaration of %q shadows declaration at %s (outer variable is used after this scope)", id.Name, pass.Fset.Position(outer.Pos()))
			}
		}

		// Mirror vet's shadow surface: short variable declarations and var
		// specs. Parameters (the `b.Run(func(b *testing.B))` pattern) and
		// range clauses are out of scope by construction.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.AssignStmt:
				if e.Tok != token.DEFINE || idiomatic[ast.Stmt(e)] {
					return true
				}
				for i, lhs := range e.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					// x := x rebinds (pre-1.22 loop-capture idiom).
					if len(e.Lhs) == len(e.Rhs) {
						if rid, ok := ast.Unparen(e.Rhs[i]).(*ast.Ident); ok && rid.Name == id.Name {
							continue
						}
					}
					checkIdent(id)
				}
			case *ast.GenDecl:
				if e.Tok != token.VAR {
					return true
				}
				for _, spec := range e.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, id := range vs.Names {
							checkIdent(id)
						}
					}
				}
			}
			return true
		})
	})
	return nil
}

// usedAfter reports whether v is referenced at a position past end.
func usedAfter(info *types.Info, body *ast.BlockStmt, v *types.Var, end token.Pos) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		id, ok := n.(*ast.Ident)
		if ok && id.Pos() > end && info.Uses[id] == v {
			used = true
		}
		return !used
	})
	return used
}

// CopyLocks flags lock-containing values copied by value: parameters,
// results, range variables, and plain assignments. It recurses through
// struct and array composition, which is the "beyond defaults" surface —
// vet checks method receivers and a fixed call list.
var CopyLocks = &analysis.Analyzer{
	Name: "copylocks",
	Doc: `report values containing sync primitives passed or assigned by value

A type transitively containing sync.Mutex, sync.RWMutex, sync.WaitGroup,
sync.Once, sync.Cond, sync.Map, sync.Pool, or atomic.* must travel by
pointer; a copy forks the lock state and silently unsynchronizes the two
halves (the engine's cache-line-padded mailbox is exactly such a type).`,
	Run: runCopyLocks,
}

func runCopyLocks(pass *analysis.Pass) error {
	info := pass.TypesInfo
	report := func(pos token.Pos, what string, t types.Type) {
		pass.Reportf(pos, "%s copies lock value: %s contains a sync primitive — pass by pointer", what, t.String())
	}
	funcDecls(pass, func(fd *ast.FuncDecl, inTest bool) {
		check := func(fl *ast.FieldList, what string) {
			if fl == nil {
				return
			}
			for _, f := range fl.List {
				t := info.Types[f.Type].Type
				if t != nil && containsLock(t, nil) {
					report(f.Type.Pos(), what, t)
				}
			}
		}
		check(fd.Type.Params, "parameter")
		check(fd.Type.Results, "result")
		if fd.Recv != nil {
			check(fd.Recv, "receiver")
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range e.Rhs {
					if i >= len(e.Lhs) {
						break
					}
					// Copying an existing value (deref, variable, index) is
					// the bug; building a fresh composite literal is not.
					switch ast.Unparen(rhs).(type) {
					case *ast.CompositeLit, *ast.CallExpr:
						continue
					}
					t := info.Types[rhs].Type
					if t != nil && containsLock(t, nil) {
						report(e.Pos(), "assignment", t)
					}
				}
			case *ast.RangeStmt:
				if e.Value != nil {
					t := info.Types[e.Value].Type
					if t == nil {
						// With :=, the value ident is a definition, not a use.
						if id, ok := e.Value.(*ast.Ident); ok {
							if obj := info.Defs[id]; obj != nil {
								t = obj.Type()
							}
						}
					}
					if t != nil && containsLock(t, nil) {
						report(e.Value.Pos(), "range value", t)
					}
				}
			}
			return true
		})
	})
	return nil
}

// containsLock reports whether t transitively contains a sync primitive by
// value.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			switch obj.Pkg().Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
					return true
				}
			case "sync/atomic":
				return true // all atomic.* types are noCopy
			}
		}
		return containsLock(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// UnusedWrite flags straight-line dead stores: a local variable written
// and then unconditionally overwritten with no intervening read.
var UnusedWrite = &analysis.Analyzer{
	Name: "unusedwrite",
	Doc: `report writes to a local variable that are overwritten before any read

Within one block's consecutive statements: x = a immediately followed
(modulo statements not mentioning x, with no intervening control flow) by
x = b makes the first write dead. Restricted to plain locals that are
never captured by a closure or address-taken, so the finding is exact.`,
	Run: runUnusedWrite,
}

func runUnusedWrite(pass *analysis.Pass) error {
	info := pass.TypesInfo
	funcDecls(pass, func(fd *ast.FuncDecl, inTest bool) {
		// Locals disqualified by capture or address-taking.
		unsafe := map[*types.Var]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.FuncLit:
				ast.Inspect(e.Body, func(m ast.Node) bool {
					if id, ok := m.(*ast.Ident); ok {
						if v, ok := info.Uses[id].(*types.Var); ok {
							unsafe[v] = true
						}
					}
					return true
				})
			case *ast.UnaryExpr:
				if e.Op == token.AND {
					if v := rootVar(info, e.X); v != nil {
						unsafe[v] = true
					}
				}
			}
			return true
		})

		ast.Inspect(fd.Body, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			checkDeadStores(pass, info, block, unsafe)
			return true
		})
	})
	return nil
}

// checkDeadStores scans one statement list for write-then-overwrite pairs.
func checkDeadStores(pass *analysis.Pass, info *types.Info, block *ast.BlockStmt, unsafe map[*types.Var]bool) {
	// pending[v] is the position of v's last unread write.
	pending := map[*types.Var]token.Pos{}
	mentions := func(st ast.Stmt, skipWrite *ast.Ident) map[*types.Var]bool {
		out := map[*types.Var]bool{}
		ast.Inspect(st, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && id != skipWrite {
				if v, ok := info.Uses[id].(*types.Var); ok {
					out[v] = true
				}
			}
			return true
		})
		return out
	}
	for _, st := range block.List {
		as, ok := st.(*ast.AssignStmt)
		// Any control flow, call with side effects on x, etc.: a non-assign
		// statement clears pendings it mentions; control-flow statements
		// clear everything (the write may be read on another path).
		if !ok {
			switch st.(type) {
			case *ast.ExprStmt, *ast.IncDecStmt, *ast.DeclStmt:
				for v := range mentions(st, nil) {
					delete(pending, v)
				}
			default:
				pending = map[*types.Var]token.Pos{}
			}
			continue
		}
		if as.Tok != token.ASSIGN || len(as.Lhs) != 1 {
			// := introduces, compound ops read; multi-assign is rare enough
			// to skip. All still clear mentioned pendings.
			for v := range mentions(as, nil) {
				delete(pending, v)
			}
			continue
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			for v := range mentions(as, nil) {
				delete(pending, v)
			}
			continue
		}
		v, _ := info.Uses[id].(*types.Var)
		if v == nil || unsafe[v] || v.IsField() {
			for m := range mentions(as, nil) {
				delete(pending, m)
			}
			continue
		}
		// Reads on the RHS (and any other vars mentioned) clear pendings.
		for m := range mentions(as, id) {
			delete(pending, m)
		}
		if prev, dead := pending[v]; dead {
			pass.Reportf(prev, "value written to %q is overwritten at %s before any read", id.Name, pass.Fset.Position(as.Pos()))
		}
		pending[v] = as.Pos()
	}
}

// Nilness flags uses of a value inside the branch that just established it
// is nil — a guaranteed runtime panic.
var Nilness = &analysis.Analyzer{
	Name: "nilness",
	Doc: `report guaranteed nil dereferences inside nil-check branches

Inside "if x == nil { … }" (or the else arm of "if x != nil"), a
dereference *x, a field access x.f on a pointer, an index write on a nil
map, an index on a nil slice, or a call of a nil func — before any
reassignment of x — panics unconditionally.`,
	Run: runNilness,
}

func runNilness(pass *analysis.Pass) error {
	info := pass.TypesInfo
	funcDecls(pass, func(fd *ast.FuncDecl, inTest bool) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			ifs, ok := n.(*ast.IfStmt)
			if !ok || ifs.Init != nil {
				return true
			}
			cond, ok := ifs.Cond.(*ast.BinaryExpr)
			if !ok || !isNilIdent(cond.Y) {
				return true
			}
			id, ok := ast.Unparen(cond.X).(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := info.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			switch cond.Op {
			case token.EQL:
				checkNilUses(pass, info, ifs.Body, v)
			case token.NEQ:
				if els, ok := ifs.Else.(*ast.BlockStmt); ok {
					checkNilUses(pass, info, els, v)
				}
			}
			return true
		})
	})
	return nil
}

// checkNilUses reports guaranteed-panic uses of the nil variable v in
// body, stopping at reassignments and skipping nested function literals.
func checkNilUses(pass *analysis.Pass, info *types.Info, body *ast.BlockStmt, v *types.Var) {
	reassigned := token.Pos(-1)
	ast.Inspect(body, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && info.Uses[id] == v {
					if reassigned < 0 || as.Pos() < reassigned {
						reassigned = as.Pos()
					}
				}
			}
		}
		return true
	})
	past := func(pos token.Pos) bool { return reassigned >= 0 && pos > reassigned }

	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		switch e := n.(type) {
		case *ast.StarExpr:
			if isVarUse(info, e.X, v) && !past(e.Pos()) {
				pass.Reportf(e.Pos(), "dereference of %q, which is nil on this path", v.Name())
			}
		case *ast.SelectorExpr:
			if isVarUse(info, e.X, v) && !past(e.Pos()) {
				if _, isPtr := v.Type().Underlying().(*types.Pointer); isPtr {
					if sel, ok := info.Selections[e]; ok && sel.Kind() == types.FieldVal {
						pass.Reportf(e.Pos(), "field access on %q, which is nil on this path", v.Name())
					}
				}
			}
		case *ast.IndexExpr:
			if !isVarUse(info, e.X, v) || past(e.Pos()) {
				return true
			}
			switch v.Type().Underlying().(type) {
			case *types.Slice:
				pass.Reportf(e.Pos(), "index of %q, which is a nil slice on this path", v.Name())
			}
		case *ast.AssignStmt:
			for _, lhs := range e.Lhs {
				if ix, ok := lhs.(*ast.IndexExpr); ok && isVarUse(info, ix.X, v) && !past(e.Pos()) {
					if _, isMap := v.Type().Underlying().(*types.Map); isMap {
						pass.Reportf(ix.Pos(), "write to %q, which is a nil map on this path", v.Name())
					}
				}
			}
		case *ast.CallExpr:
			if isVarUse(info, e.Fun, v) && !past(e.Pos()) {
				if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
					pass.Reportf(e.Pos(), "call of %q, which is a nil func on this path", v.Name())
				}
			}
		}
		return true
	})
}

// isVarUse reports whether e is exactly a use of v.
func isVarUse(info *types.Info, e ast.Expr, v *types.Var) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && info.Uses[id] == v
}
