package data

import (
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// sortedTuples renders r's tuples as a canonical sorted slice for multiset
// comparison across layout changes.
func sortedTuples(r *Relation) [][]int64 {
	out := make([][]int64, r.Size())
	for i := range out {
		t := make([]int64, r.Arity)
		for a := 0; a < r.Arity; a++ {
			t[a] = r.At(i, a)
		}
		out[i] = t
	}
	sort.Slice(out, func(i, j int) bool {
		for a := range out[i] {
			if out[i][a] != out[j][a] {
				return out[i][a] < out[j][a]
			}
		}
		return false
	})
	return out
}

func tuplesEqual(a, b [][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// checkLayout asserts the structural invariants of a heavy-partition index
// against the relation it was built on.
func checkLayout(t *testing.T, r *Relation, idx *PartitionIndex) {
	t.Helper()
	if idx == nil {
		t.Fatal("nil partition index")
	}
	col := r.Column(idx.Attr)
	heavy := make(map[int64]bool, len(idx.Spans))
	for _, sp := range idx.Spans {
		heavy[sp.Value] = true
	}
	for i := 0; i < idx.LightEnd; i++ {
		if heavy[col[i]] {
			t.Fatalf("row %d: heavy value %d in light region [0,%d)", i, col[i], idx.LightEnd)
		}
	}
	pos := idx.LightEnd
	for _, sp := range idx.Spans {
		if sp.Start != pos {
			t.Fatalf("span for %d starts at %d, want %d (spans must tile [LightEnd,Rows))", sp.Value, sp.Start, pos)
		}
		if sp.End <= sp.Start {
			t.Fatalf("empty span for %d: [%d,%d)", sp.Value, sp.Start, sp.End)
		}
		for i := sp.Start; i < sp.End; i++ {
			if col[i] != sp.Value {
				t.Fatalf("row %d: value %d inside run for %d", i, col[i], sp.Value)
			}
		}
		got, ok := idx.Span(sp.Value)
		if !ok || got != sp {
			t.Fatalf("Span(%d) = %v, %v", sp.Value, got, ok)
		}
		pos = sp.End
	}
	if pos != idx.Rows {
		t.Fatalf("spans end at %d, index covers %d rows", pos, idx.Rows)
	}
	if _, ok := idx.Span(int64(-999999)); ok {
		t.Fatal("Span reported a run for an absent value")
	}
}

func TestBuildPartitionsLayout(t *testing.T) {
	r := NewRelation("R", 2, 1<<20)
	// 40 copies of value 7, 25 of value 3, and 100 distinct light values.
	for i := 0; i < 40; i++ {
		r.Add(7, int64(1000+i))
	}
	for i := 0; i < 25; i++ {
		r.Add(3, int64(2000+i))
	}
	for i := 0; i < 100; i++ {
		r.Add(int64(10000+i), int64(i))
	}
	before := sortedTuples(r)
	idx := r.BuildPartitions(0, 20) // heavy: count > 20 → values 7 and 3
	checkLayout(t, r, idx)
	if len(idx.Spans) != 2 {
		t.Fatalf("got %d spans, want 2 (values 3 and 7)", len(idx.Spans))
	}
	if idx.LightEnd != 100 || idx.Rows != 165 {
		t.Fatalf("LightEnd=%d Rows=%d, want 100 and 165", idx.LightEnd, idx.Rows)
	}
	if !tuplesEqual(before, sortedTuples(r)) {
		t.Fatal("partition rebuild changed the tuple multiset")
	}
	if r.Partitions() != idx {
		t.Fatal("Partitions() does not return the built index")
	}
}

func TestBuildPartitionsNoHeavy(t *testing.T) {
	r := NewRelation("R", 1, 1000)
	for i := 0; i < 50; i++ {
		r.Add(int64(i))
	}
	genBefore := r.gen
	col := append([]int64(nil), r.Column(0)...)
	idx := r.BuildPartitions(0, 10)
	if len(idx.Spans) != 0 || idx.LightEnd != 50 {
		t.Fatalf("skew-free relation built spans: %+v", idx)
	}
	if r.gen != genBefore {
		t.Fatal("trivial index bumped gen (would invalidate snapshots for nothing)")
	}
	for i, v := range r.Column(0) {
		if v != col[i] {
			t.Fatal("trivial index reordered rows")
		}
	}
}

func TestBuildPartitionsRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		r := NewRelation("R", 3, 1<<16)
		n := 20 + rng.Intn(400)
		vals := 1 + rng.Intn(20) // small value domain → real skew
		for i := 0; i < n; i++ {
			r.Add(int64(rng.Intn(vals)), int64(rng.Intn(1<<16)), int64(i))
		}
		attr := rng.Intn(2)
		threshold := int64(rng.Intn(n/2 + 1))
		before := sortedTuples(r)
		idx := r.BuildPartitions(attr, threshold)
		checkLayout(t, r, idx)
		if !tuplesEqual(before, sortedTuples(r)) {
			t.Fatalf("trial %d: rebuild changed the tuple multiset", trial)
		}
		// Every value with count > threshold must have a span.
		counts := make(map[int64]int64)
		for _, v := range r.Column(attr) {
			counts[v]++
		}
		for v, c := range counts {
			sp, ok := idx.Span(v)
			if (c > threshold) != ok {
				t.Fatalf("trial %d: value %d count %d threshold %d: span=%v", trial, v, c, threshold, ok)
			}
			if ok && int64(sp.End-sp.Start) != c {
				t.Fatalf("trial %d: value %d run length %d, count %d", trial, v, sp.End-sp.Start, c)
			}
		}
	}
}

func TestEnsurePartitionedLifecycle(t *testing.T) {
	db := NewDatabase()
	r := NewRelation("R", 2, 1<<20)
	for i := 0; i < 80; i++ {
		r.Add(5, int64(i)) // heavy at threshold 100/4=25
	}
	for i := 0; i < 20; i++ {
		r.Add(int64(100+i), int64(i))
	}
	db.Put(r)

	if !db.EnsurePartitioned("R", 0, 4) {
		t.Fatal("first ensure did not build")
	}
	checkLayout(t, r, r.Partitions())
	if db.EnsurePartitioned("R", 0, 4) {
		t.Fatal("second ensure rebuilt an already-current layout")
	}

	// A small append lands in the uncovered tail: the index stays valid and
	// current (tail*4 ≤ rows), so no rebuild.
	r.Add(999, 999)
	if db.EnsurePartitioned("R", 0, 4) {
		t.Fatal("tiny tail triggered a rebuild")
	}

	// Grow the tail past the rebuild rule (tail*4 > rows).
	for i := 0; i < 60; i++ {
		r.Add(5, int64(1000+i))
	}
	if !db.EnsurePartitioned("R", 0, 4) {
		t.Fatal("oversized tail did not trigger a rebuild")
	}
	checkLayout(t, r, r.Partitions())
	if got := r.Partitions().Rows; got != r.Size() {
		t.Fatalf("rebuilt index covers %d rows, relation has %d", got, r.Size())
	}

	// Missing relation: a graceful no.
	if db.EnsurePartitioned("nope", 0, 4) {
		t.Fatal("ensure on a missing relation reported a rebuild")
	}
	// Snapshot delegation reaches the master.
	snap := db.Snapshot()
	if snap.EnsurePartitioned("R", 0, 4) {
		t.Fatal("snapshot-delegated ensure rebuilt a current layout")
	}
}

func TestEnsurePartitionedHeavySetDrift(t *testing.T) {
	db := NewDatabase()
	r := NewRelation("R", 1, 1<<20)
	for i := 0; i < 90; i++ {
		r.Add(1)
	}
	for i := 0; i < 10; i++ {
		r.Add(int64(100 + i))
	}
	db.Put(r)
	if !db.EnsurePartitioned("R", 0, 4) {
		t.Fatal("first ensure did not build")
	}
	// Delete most of the hitter in place (interior deletes invalidate), then
	// re-add light rows: the old heavy set no longer matches.
	for r.Size() > 20 {
		r.removeRow(0)
	}
	if r.Partitions() != nil {
		t.Fatal("interior delete kept a corrupt partition index")
	}
	if !db.EnsurePartitioned("R", 0, 4) {
		t.Fatal("ensure after invalidation did not rebuild")
	}
	checkLayout(t, r, r.Partitions())
}

func TestRemoveRowPartitionInvalidation(t *testing.T) {
	r := NewRelation("R", 1, 1<<20)
	for i := 0; i < 30; i++ {
		r.Add(7)
	}
	for i := 0; i < 10; i++ {
		r.Add(int64(100 + i))
	}
	idx := r.BuildPartitions(0, 20)
	// Rows appended after the build sit past idx.Rows: deleting them swaps
	// tail rows among themselves and keeps the index.
	r.Add(500)
	r.Add(501)
	r.removeRow(idx.Rows) // delete a tail row
	if r.Partitions() == nil {
		t.Fatal("tail delete invalidated the index")
	}
	checkLayout(t, r, r.Partitions())
	// Deleting under the covered prefix pulls an arbitrary row into a run:
	// the index must go.
	r.removeRow(0)
	if r.Partitions() != nil {
		t.Fatal("covered-prefix delete kept the index")
	}
}

func TestPartitionSharedWithSnapshotViews(t *testing.T) {
	db := NewDatabase()
	r := NewRelation("R", 1, 1<<20)
	for i := 0; i < 40; i++ {
		r.Add(3)
	}
	for i := 0; i < 10; i++ {
		r.Add(int64(100 + i))
	}
	db.Put(r)

	before := db.Snapshot()
	beforeTuples := sortedTuples(before.MustGet("R"))
	if before.MustGet("R").Partitions() != nil {
		t.Fatal("pre-build snapshot already sees a partition index")
	}

	db.EnsurePartitioned("R", 0, 4)
	idx := r.Partitions()

	// The pre-build snapshot must keep its frozen, unpartitioned content.
	if before.MustGet("R").Partitions() != nil {
		t.Fatal("rebuild leaked a partition index into an old snapshot view")
	}
	if !tuplesEqual(beforeTuples, sortedTuples(before.MustGet("R"))) {
		t.Fatal("rebuild changed an old snapshot's content")
	}

	// The next snapshot shares the index by pointer and sees the new layout.
	after := db.Snapshot()
	if got := after.MustGet("R").Partitions(); got != idx {
		t.Fatalf("post-build snapshot index = %p, want shared %p", got, idx)
	}
	checkLayout(t, after.MustGet("R"), idx)
}

func TestSortDropsPartitions(t *testing.T) {
	r := NewRelation("R", 1, 1000)
	for i := 0; i < 30; i++ {
		r.Add(7)
	}
	r.Add(1)
	r.BuildPartitions(0, 10)
	r.Sort()
	if r.Partitions() != nil {
		t.Fatal("Sort kept a partition index over reordered rows")
	}
}

// TestPartitionRebuildRacesSnapshots drives concurrent snapshot readers
// against partition rebuilds and deltas on the master — the serving-mode
// interleaving the engine's auto-partition hook produces. Run under -race.
func TestPartitionRebuildRacesSnapshots(t *testing.T) {
	db := NewDatabase()
	r := NewRelation("R", 2, 1<<40)
	for i := 0; i < 2000; i++ {
		r.Add(int64(i%7), int64(i))
	}
	db.Put(r)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := db.Snapshot()
				sr := snap.MustGet("R")
				var sum int64
				for _, v := range sr.Column(0) {
					sum += v
				}
				if idx := sr.Partitions(); idx != nil {
					col := sr.Column(idx.Attr)
					for _, sp := range idx.Spans {
						if col[sp.Start] != sp.Value {
							panic("span run does not match its view")
						}
					}
				}
				_ = sum
			}
		}(int64(w))
	}
	next := int64(1 << 30)
	for i := 0; i < 300; i++ {
		d := &Delta{}
		for j := 0; j < 20; j++ {
			next++
			d.Insert("R", int64(i%5), next)
		}
		if err := db.Apply(d); err != nil {
			t.Fatal(err)
		}
		db.EnsurePartitioned("R", 0, 8)
	}
	close(stop)
	wg.Wait()
}
