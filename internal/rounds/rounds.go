// Package rounds plans multi-round MPC query evaluation — the traditional
// one-join-per-round strategy the paper's introduction contrasts with its
// one-round HyperCube algorithm ("the traditional approach is to compute
// one join at a time leading to a number of communication rounds at least
// as large as the depth of the query plan").
//
// A logical plan is a left-deep sequence of binary join steps. The package
// is a pure planner: Lower turns the logical plan into an exec.Pipeline —
// one executor stage per step, each with its own virtual-server layout and
// router (with §4.1-style heavy-hitter grids per join key when skew-aware
// mode is on) — and exec.RunPipeline executes it on one persistent cluster,
// keeping every intermediate resident on the servers between rounds. Loads
// are tracked per round and summed per server, so the multi-round cost is
// directly comparable to the one-round algorithms.
package rounds

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/exec"
	"repro/internal/query"
)

// Step is one binary join in the plan: join Left and Right (base atom
// names or prior step outputs) into Output.
type Step struct {
	Left, Right string
	Output      string
	// LeftVars/RightVars give the query-variable index of every column of
	// the two inputs; OutVars is the schema of the result.
	LeftVars, RightVars, OutVars []int
	// JoinVars are the shared variables (the repartition keys).
	JoinVars []int
}

// Plan is a left-deep multi-round plan for a query.
type Plan struct {
	Query *query.Query
	Steps []Step
}

// BuildPlan constructs a greedy left-deep plan: start from the first atom,
// repeatedly join in the atom sharing the most variables with the current
// schema (avoiding cartesian steps whenever the query is connected).
func BuildPlan(q *query.Query) Plan {
	if err := q.Validate(); err != nil {
		panic(fmt.Sprintf("rounds: invalid query: %v", err))
	}
	used := make([]bool, q.NumAtoms())
	cur := q.Atoms[0]
	used[0] = true
	curName := cur.Name
	curVars := append([]int(nil), cur.Vars...)
	var steps []Step
	for step := 1; step < q.NumAtoms(); step++ {
		best, bestShared := -1, -1
		for j, a := range q.Atoms {
			if used[j] {
				continue
			}
			shared := 0
			for _, v := range a.Vars {
				if containsInt(curVars, v) {
					shared++
				}
			}
			if shared > bestShared {
				best, bestShared = j, shared
			}
		}
		atom := q.Atoms[best]
		used[best] = true
		var joinVars []int
		for _, v := range atom.Vars {
			if containsInt(curVars, v) {
				joinVars = append(joinVars, v)
			}
		}
		outVars := append([]int(nil), curVars...)
		for _, v := range atom.Vars {
			if !containsInt(outVars, v) {
				outVars = append(outVars, v)
			}
		}
		outName := fmt.Sprintf("tmp%d", step)
		if step == q.NumAtoms()-1 {
			outName = "result"
		}
		// Intermediate names must not shadow base atoms: routers and
		// resident shuffles identify stage inputs by relation name.
		for q.AtomIndex(outName) >= 0 {
			outName += "_"
		}
		steps = append(steps, Step{
			Left: curName, Right: atom.Name, Output: outName,
			LeftVars:  append([]int(nil), curVars...),
			RightVars: append([]int(nil), atom.Vars...),
			OutVars:   outVars,
			JoinVars:  joinVars,
		})
		curName, curVars = outName, outVars
	}
	return Plan{Query: q, Steps: steps}
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

// Config controls multi-round planning and execution.
type Config struct {
	P    int
	Seed uint64
	// SkewAware enables §4.1-style per-step heavy-hitter handling: heavy
	// join keys get p_h-server cartesian grids instead of a single hash
	// bucket. Without it every step is a plain hash join.
	SkewAware bool
}

// RoundLoad is the load summary of one communication round.
type RoundLoad struct {
	Step         Step
	MaxBits      int64
	TotalBits    int64
	Intermediate int // tuples produced
	// ResidentTuples counts intermediate tuples that entered this round
	// server-to-server, never leaving the cluster.
	ResidentTuples int64
}

// Result reports a multi-round run.
type Result struct {
	Output []data.Tuple
	Rounds []RoundLoad
	// MaxBitsPerRound is the max over rounds of the per-round max server
	// load; SumMaxBits sums the per-round maxima (total bits the busiest
	// server could have received across the computation).
	MaxBitsPerRound int64
	SumMaxBits      int64
}

// Run lowers the plan and executes it through exec.RunPipeline. Base
// relations come from db; intermediates stay resident on the pipeline's
// servers between rounds.
func Run(plan Plan, db *data.Database, cfg Config) Result {
	return Lower(plan, db, cfg).Execute(db)
}

// singleAtom answers a zero-step plan: no communication is needed, the
// base relation's columns are permuted into head order (a column-pointer
// permutation — no row-major scan) and materialized once.
func singleAtom(q *query.Query, db *data.Database) Result {
	atom := q.Atoms[0]
	rel := db.MustGet(atom.Name)
	return Result{Output: headOrderTuples(q, rel, atom.Vars)}
}

// headOrderTuples materializes rel — whose columns follow the schema vars —
// as head-ordered tuples. The permutation reorders column pointers; the
// copy is one column-major pass into a single flat backing array.
func headOrderTuples(q *query.Query, rel *data.Relation, vars []int) []data.Tuple {
	k := q.NumVars()
	n := rel.Size()
	if n == 0 {
		return nil
	}
	cols := make([][]int64, k)
	for pos, v := range vars {
		cols[v] = rel.Column(pos)
	}
	flat := make([]int64, n*k)
	for v, col := range cols {
		for i, x := range col {
			flat[i*k+v] = x
		}
	}
	out := make([]data.Tuple, n)
	for i := range out {
		out[i] = flat[i*k : (i+1)*k : (i+1)*k]
	}
	return out
}

// PipelinePlan is the planner output: the logical plan lowered to an
// executor pipeline, plus the cost prediction the engine compares against
// one-round strategies. Plans are immutable and reusable across executions
// (the engine's plan cache holds them).
type PipelinePlan struct {
	Logical Plan
	// Pipe is the lowered pipeline; nil for zero-step (single-atom) plans,
	// which need no communication at all.
	Pipe *exec.Pipeline
	// PredictedSumMaxBits is the planner's multi-round cost model: per
	// round, the predicted maximum per-server load in bits (balanced hash
	// load plus per-heavy-key grid or hotspot terms, with intermediate
	// sizes estimated from base-relation statistics), summed over rounds.
	PredictedSumMaxBits float64
}

// PlanPipeline builds the left-deep logical plan for q and lowers it over
// db's statistics — the engine's entry point for multi-round planning.
func PlanPipeline(q *query.Query, db *data.Database, cfg Config) *PipelinePlan {
	return Lower(BuildPlan(q), db, cfg)
}

// Execute runs the pipeline over db and shapes the multi-round result,
// permuting the final stage's columns into head order.
func (pp *PipelinePlan) Execute(db *data.Database) Result {
	res, _ := pp.ExecuteWith(db, exec.Config{}) // no ctx in the config: never errors
	return res
}

// ExecuteWith is Execute with caller-supplied executor configuration (the
// engine passes its cluster pool so cached pipelines reuse warm clusters,
// and its context so a long pipeline aborts between rounds). The only
// error is ec.Ctx's cancellation.
func (pp *PipelinePlan) ExecuteWith(db *data.Database, ec exec.Config) (Result, error) {
	q := pp.Logical.Query
	if len(pp.Logical.Steps) == 0 {
		return singleAtom(q, db), nil
	}
	pr, err := exec.RunPipeline(pp.Pipe, db, ec)
	if err != nil {
		return Result{}, err
	}
	res := Result{
		MaxBitsPerRound: pr.MaxBitsPerRound,
		SumMaxBits:      pr.SumMaxBits,
	}
	for i, rl := range pr.Rounds {
		res.Rounds = append(res.Rounds, RoundLoad{
			Step:           pp.Logical.Steps[i],
			MaxBits:        rl.MaxBits,
			TotalBits:      rl.TotalBits,
			Intermediate:   rl.Intermediate,
			ResidentTuples: rl.ResidentTuples,
		})
	}
	last := pp.Logical.Steps[len(pp.Logical.Steps)-1]
	res.Output = headOrderTuples(q, pr.Output, last.OutVars)
	return res, nil
}
