package repro

import (
	"context"
	"math/rand"
	"sync"
	"testing"
)

// skewedJoin2DB builds a join2-shaped database with a Zipf-skewed join
// column — heavy enough that the skew-aware planners emit partition hints.
func skewedJoin2DB(m int) *Database {
	db := NewDatabase()
	db.Put(ZipfRelation("S1", m, 1<<40, 1, 1.6, 64, 1))
	db.Put(ZipfRelation("S2", m, 1<<40, 1, 1.6, 64, 2))
	return db
}

// TestPartitionedVsFlatEquivalence is the storage-layout property test: the
// heavy-partition layout is a pure physical reorder, so a session running
// with auto-partitioning (span routing over heavy runs) must produce
// exactly the same answers, the same realized loads, and the same content
// fingerprints as one running flat — under every single-round strategy,
// across a random delta sequence that forces rebuilds and invalidations.
func TestPartitionedVsFlatEquivalence(t *testing.T) {
	strategies := []Strategy{StrategyHyperCube, StrategySkewJoin, StrategyBinCombination}
	q := Join2Query()
	rng := rand.New(rand.NewSource(3))

	dbFlat, dbPart := skewedJoin2DB(800), skewedJoin2DB(800)
	sFlat, err := Open(Config{P: 8, Seed: 7, DisableAutoPartition: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sFlat.Close()
	sPart, err := Open(Config{P: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer sPart.Close()

	ctx := context.Background()
	var inserted []Tuple // tuples added by deltas, candidates for deletion
	next := int64(1 << 30)
	for step := 0; step < 4; step++ {
		if step > 0 {
			// Identical random delta on both databases: deletes of earlier
			// steps' tuples (which by now sit inside the partition-covered
			// prefix and invalidate the index) plus skewed inserts that grow
			// the heavy runs' tails.
			d := NewDelta()
			for k := 0; k < 10 && len(inserted) > 0; k++ {
				i := rng.Intn(len(inserted))
				d.Delete("S1", inserted[i]...)
				inserted[i] = inserted[len(inserted)-1]
				inserted = inserted[:len(inserted)-1]
			}
			for j := 0; j < 100; j++ {
				next++
				tup := Tuple{next, int64(rng.Intn(8))}
				d.Insert("S1", tup...)
				inserted = append(inserted, tup)
				next++
				d.Insert("S2", next, int64(rng.Intn(8)))
			}
			if err := dbFlat.Apply(d); err != nil {
				t.Fatal(err)
			}
			if err := dbPart.Apply(d); err != nil {
				t.Fatal(err)
			}
		}
		if got, want := DatabaseFingerprint(dbPart), DatabaseFingerprint(dbFlat); got != want {
			t.Fatalf("step %d: fingerprints diverged: %x vs %x", step, got, want)
		}
		for _, st := range strategies {
			rFlat, err := sFlat.Exec(ctx, q, dbFlat, WithStrategy(st))
			if err != nil {
				t.Fatalf("step %d %v flat: %v", step, st, err)
			}
			rPart, err := sPart.Exec(ctx, q, dbPart, WithStrategy(st))
			if err != nil {
				t.Fatalf("step %d %v partitioned: %v", step, st, err)
			}
			if !equalTupleSets(rFlat.Output, rPart.Output) {
				t.Fatalf("step %d %v: outputs diverge (%d vs %d tuples)",
					step, st, len(rFlat.Output), len(rPart.Output))
			}
			if rFlat.MaxLoadBits != rPart.MaxLoadBits {
				t.Fatalf("step %d %v: realized loads diverge: flat %d, partitioned %d",
					step, st, rFlat.MaxLoadBits, rPart.MaxLoadBits)
			}
		}
		// Partitioning must not leak into the flat layout's fingerprint.
		if got, want := DatabaseFingerprint(dbPart), DatabaseFingerprint(dbFlat); got != want {
			t.Fatalf("step %d: post-exec fingerprints diverged: %x vs %x", step, got, want)
		}
	}
	if sPart.CacheStats().Repartitions == 0 {
		t.Fatal("partitioned session never rebuilt a layout: the equivalence test exercised nothing")
	}
	if sFlat.CacheStats().Repartitions != 0 {
		t.Fatal("DisableAutoPartition session rebuilt a layout")
	}
}

// TestPartitionRebuildRacesServing drives the serving-mode interleaving end
// to end under -race: concurrent Execs (whose auto-partition hook rebuilds
// layouts on the master), Apply writers, and a standing query advancing over
// the same database.
func TestPartitionRebuildRacesServing(t *testing.T) {
	db := skewedJoin2DB(1000)
	s, err := Open(Config{P: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()
	q := Join2Query()

	sq, err := s.Standing(ctx, q, db, WithStrategy(StrategySkewJoin))
	if err != nil {
		t.Fatal(err)
	}
	defer sq.Close()

	var wg sync.WaitGroup
	for w, st := range []Strategy{StrategyHyperCube, StrategySkewJoin, StrategyBinCombination} {
		wg.Add(1)
		go func(w int, st Strategy) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := s.Exec(ctx, q, db, WithStrategy(st)); err != nil {
					panic(err)
				}
			}
		}(w, st)
	}
	next := int64(1 << 31)
	for i := 0; i < 15; i++ {
		d := NewDelta()
		for j := 0; j < 25; j++ {
			next++
			d.Insert("S1", next, int64(i%6))
			next++
			d.Insert("S2", next, int64(i%6))
		}
		if err := db.Apply(d); err != nil {
			t.Fatal(err)
		}
		if _, err := sq.Advance(ctx); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
}
