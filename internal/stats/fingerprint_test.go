package stats

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/workload"
)

// TestFingerprintIncrementalMatchesRescan is the property test behind the
// serving hit path: after arbitrary random delta sequences, the maintained
// (incremental) fingerprint must equal the from-scratch rescan, and a
// structurally identical database built fresh must fingerprint the same.
func TestFingerprintIncrementalMatchesRescan(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db := data.NewDatabase()
	db.Put(workload.Uniform("S1", 2, 200, 500, 1))
	db.Put(workload.Uniform("S2", 3, 150, 500, 2))

	if got, want := Fingerprint(db), FingerprintRescan(db); got != want {
		t.Fatalf("pre-delta: incremental %x != rescan %x", got, want)
	}

	for step := 0; step < 120; step++ {
		d := new(data.Delta)
		for o := 0; o < 1+rng.Intn(5); o++ {
			name := "S1"
			arity := 2
			if rng.Intn(2) == 0 {
				name, arity = "S2", 3
			}
			r := db.MustGet(name)
			if rng.Intn(2) == 0 && r.Size() > 0 {
				i := rng.Intn(r.Size())
				d.Delete(name, r.Tuple(i)...)
			} else {
				vals := make([]int64, arity)
				for a := range vals {
					vals[a] = rng.Int63n(500)
				}
				d.Insert(name, vals...)
			}
		}
		// Some deltas legitimately fail (duplicate insert, double delete of
		// the same sampled row); the property must hold either way.
		applyErr := db.Apply(d)
		got, want := Fingerprint(db), FingerprintRescan(db)
		if got != want {
			t.Fatalf("step %d (apply err=%v): incremental %x != rescan %x", step, applyErr, got, want)
		}
	}

	// Same content rebuilt from scratch (different insertion order, no
	// maintenance enabled) fingerprints identically.
	rebuilt := data.NewDatabase()
	for _, name := range db.Names() {
		src := db.MustGet(name)
		r := data.NewRelation(name, src.Arity, src.Domain)
		for i := src.Size() - 1; i >= 0; i-- {
			r.Add(src.Tuple(i)...)
		}
		rebuilt.Put(r)
	}
	if got, want := FingerprintRescan(rebuilt), Fingerprint(db); got != want {
		t.Fatalf("rebuilt rescan %x != maintained %x", got, want)
	}
}

func TestSchemaFingerprint(t *testing.T) {
	db := data.NewDatabase()
	db.Put(workload.Uniform("S1", 2, 50, 100, 1))
	db.Put(workload.Uniform("S2", 2, 50, 100, 2))
	base := SchemaFingerprint(db)

	// Content changes don't move the schema fingerprint.
	if err := db.Apply(new(data.Delta).Insert("S1", 0, 0)); err != nil {
		t.Fatal(err)
	}
	if SchemaFingerprint(db) != base {
		t.Fatal("content delta changed schema fingerprint")
	}
	// Shape changes do.
	db.Put(data.NewRelation("S2", 3, 100))
	if SchemaFingerprint(db) == base {
		t.Fatal("arity change kept schema fingerprint")
	}
}

// TestStatsFastPathsAgree pins the maintained-statistics fast paths to the
// scanning implementations.
func TestStatsFastPathsAgree(t *testing.T) {
	r := workload.Zipf("Z", 400, 1000, 1, 1.4, 37, 3)
	db := data.NewDatabase()
	db.Put(r)

	scanCard := make([]int64, r.Arity)
	scanFreq := make([]*FreqMap, r.Arity)
	for a := 0; a < r.Arity; a++ {
		scanCard[a] = Cardinality(r, a)
		scanFreq[a] = Frequencies(r, []int{a})
	}
	// Enable maintenance via a no-net-change delta.
	if err := db.Apply(new(data.Delta).Insert("Z", 999, 999).Delete("Z", 999, 999)); err != nil {
		t.Fatal(err)
	}
	for a := 0; a < r.Arity; a++ {
		if r.AttrCounts(a) == nil {
			t.Fatalf("attr %d: maintenance not enabled", a)
		}
		if got := Cardinality(r, a); got != scanCard[a] {
			t.Fatalf("attr %d: cardinality %d, want %d", a, got, scanCard[a])
		}
		fast := Frequencies(r, []int{a})
		if len(fast.Counts) != len(scanFreq[a].Counts) || fast.Total != scanFreq[a].Total {
			t.Fatalf("attr %d: fast freq shape %d/%d, want %d/%d",
				a, len(fast.Counts), fast.Total, len(scanFreq[a].Counts), scanFreq[a].Total)
		}
		for k, c := range scanFreq[a].Counts {
			if fast.Counts[k] != c {
				t.Fatalf("attr %d: freq[%v] = %d, want %d", a, k, fast.Counts[k], c)
			}
		}
	}
}
