package skew

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/data"
	"repro/internal/exec"
	"repro/internal/hashing"
	"repro/internal/hypercube"
	"repro/internal/join"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/stats"
)

// exclCheck is one overweight-exclusion test for a tuple of an atom within
// a bin combination: project the tuple onto attrs and compare its frequency
// against the overweight threshold. Both the frequency map and the
// threshold are frozen at plan time, so the routing hot path neither
// re-derives attribute keys nor needs the planning state (cached plans
// must not pin the plan-time database).
type exclCheck struct {
	attrs     []int          // attribute positions within the atom (sorted), ⊋ x_j
	fm        *stats.FreqMap // frequencies over attrs; nil → check always passes
	threshold float64        // N_bc · m_j / p^{β_j + Σ e_i} for the extension vars
}

// atomPlan is the routing plan of one atom within one bin combination.
type atomPlan struct {
	xjAttrs      []int              // positions of x_j in the atom (sorted)
	blocksByProj map[data.Key][]int // projected-value key → block bases
	allBases     []int              // used when x_j = ∅
	exclude      []exclCheck
}

// comboPlan is the executable layout of one bin combination: an HC subgrid
// of blockSize virtual servers per assignment h ∈ C'(B).
type comboPlan struct {
	combo     *binCombo
	freeDims  []int // V−x, sorted (grid dimensions)
	shares    []int // integer share per free dim, product = blockSize
	strides   []int
	blockSize int
	byAtom    []atomPlan
}

// GeneralPlan is the §4.2 planner output: every bin combination's HC
// subgrid layout lowered to the unified executor's PhysicalPlan, plus the
// per-combination ranges for the load breakdown. Plans are reusable across
// executions.
type GeneralPlan struct {
	Phys         *exec.PhysicalPlan
	NumBinCombos int
	// PredictedBits is max_B p^{λ(B)} (Theorem 4.6 up to log factors).
	PredictedBits float64
	p             int
	comboRanges   []vrange
	comboMeta     []ComboLoad
	skipJoin      bool
}

// vrange is the virtual-ID range [lo, hi) of one bin combination.
type vrange struct{ lo, hi int }

// plan lays out virtual servers for every bin combination and lowers the
// layout to a PhysicalPlan.
func (gs *generalState) plan(cfg GeneralConfig) *GeneralPlan {
	keys := make([]string, 0, len(gs.combos))
	for key, b := range gs.combos {
		if len(b.cprime) > 0 {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)

	virtual := 0
	predicted := 0.0
	var plans []*comboPlan
	var comboRanges []vrange
	for _, key := range keys {
		b := gs.combos[key]
		rangeLo := virtual
		var freeDims []int
		for i := 0; i < gs.q.NumVars(); i++ {
			if !b.x.Contains(i) {
				freeDims = append(freeDims, i)
			}
		}
		ideal := make([]float64, len(freeDims))
		for di, v := range freeDims {
			ideal[di] = math.Pow(float64(gs.p), b.expo[v])
		}
		budget := int(math.Pow(float64(gs.p), 1-b.alpha))
		if budget < 1 {
			budget = 1
		}
		shares := hypercube.RoundToBudget(ideal, budget)
		blockSize := 1
		strides := make([]int, len(shares))
		for i := len(shares) - 1; i >= 0; i-- {
			strides[i] = blockSize
			blockSize *= shares[i]
		}
		plan := &comboPlan{
			combo: b, freeDims: freeDims, shares: shares,
			strides: strides, blockSize: blockSize,
			byAtom: make([]atomPlan, gs.q.NumAtoms()),
		}
		// Deterministic block layout per assignment.
		hKeys := make([]string, 0, len(b.cprime))
		for hk := range b.cprime {
			hKeys = append(hKeys, hk)
		}
		sort.Strings(hKeys)
		bases := make(map[string]int, len(hKeys))
		for _, hk := range hKeys {
			bases[hk] = virtual
			virtual += blockSize
		}
		// Per-atom projections and exclusion checks.
		for j := range gs.q.Atoms {
			ap := atomPlan{blocksByProj: make(map[data.Key][]int)}
			for _, hk := range hKeys {
				h := b.cprime[hk]
				attrs, vals, ok := gs.atomProj(j, b.xSorted, h)
				if !ok {
					ap.allBases = append(ap.allBases, bases[hk])
					continue
				}
				ap.xjAttrs = attrs
				pk := data.KeyOf(vals)
				ap.blocksByProj[pk] = append(ap.blocksByProj[pk], bases[hk])
			}
			ap.exclude = gs.exclusionChecks(j, b)
			plan.byAtom[j] = ap
		}
		plans = append(plans, plan)
		comboRanges = append(comboRanges, vrange{rangeLo, virtual})
		if pl := math.Pow(float64(gs.p), b.lambda); pl > predicted {
			predicted = pl
		}
	}
	if cfg.MaxVirtual > 0 && virtual > cfg.MaxVirtual {
		panic(fmt.Sprintf("skew: %d virtual servers exceed cap %d", virtual, cfg.MaxVirtual))
	}
	if virtual == 0 {
		virtual = 1
	}

	atomIndex := make(map[string]int, gs.q.NumAtoms())
	maxScratch := 0
	for j, a := range gs.q.Atoms {
		atomIndex[a.Name] = j
		if a.Arity() > maxScratch {
			maxScratch = a.Arity()
		}
	}
	for _, plan := range plans {
		if len(plan.freeDims) > maxScratch {
			maxScratch = len(plan.freeDims)
		}
	}

	gp := &GeneralPlan{
		NumBinCombos:  len(plans),
		PredictedBits: predicted,
		p:             gs.p,
		comboRanges:   comboRanges,
		skipJoin:      cfg.SkipJoin,
	}
	gp.comboMeta = make([]ComboLoad, len(plans))
	for pi, plan := range plans {
		gp.comboMeta[pi] = ComboLoad{
			Vars:      append([]int(nil), plan.combo.xSorted...),
			Bins:      append([]int(nil), plan.combo.bins...),
			CSize:     len(plan.combo.cprime),
			Lambda:    plan.combo.lambda,
			Predicted: math.Pow(float64(gs.p), plan.combo.lambda),
		}
	}
	q := gs.q
	gp.Phys = &exec.PhysicalPlan{
		Strategy:  "bin-combination",
		Virtual:   virtual,
		Physical:  gs.p,
		Relations: q.AtomNames(),
		Router: &generalRouter{
			varPos:    gs.varPos,
			plans:     plans,
			atomIndex: atomIndex,
			family:    hashing.NewFamily(cfg.Seed),
			scratch:   maxScratch,
		},
		Local: func(s *mpc.Server) []data.Tuple {
			return join.Join(q, s.Received)
		},
		// Overlapping bin combinations may each produce the same answer.
		Dedup:         true,
		PredictedBits: predicted,
	}
	// Partition hints: for each atom, the single attribute carrying the
	// largest maintained heavy-hitter mass — its runs gain the most from
	// span compilation (generalRouter accepts any attribute, the hint only
	// picks which layout to maintain). Atoms with no single-attribute heavy
	// hitter are left unhinted.
	hinted := make(map[string]bool, len(q.Atoms))
	for _, a := range q.Atoms {
		if hinted[a.Name] {
			continue
		}
		hinted[a.Name] = true
		bestAttr, bestMass := -1, int64(0)
		for pos := 0; pos < a.Arity(); pos++ {
			fm := gs.st[a.Name].FreqMapFor([]int{pos})
			if fm == nil {
				continue
			}
			var mass int64
			for _, c := range fm.Counts {
				mass += c
			}
			if mass > bestMass {
				bestAttr, bestMass = pos, mass
			}
		}
		if bestAttr >= 0 {
			gp.Phys.PartitionHints = append(gp.Phys.PartitionHints, exec.PartitionHint{Rel: a.Name, Attr: bestAttr})
		}
	}
	return gp
}

// Execute runs the plan on the unified executor and assembles the
// bin-combination result, including the per-combination load breakdown.
func (gp *GeneralPlan) Execute(db *data.Database) GeneralResult {
	res, _ := gp.ExecuteWith(db, exec.Config{}) // no ctx in the config: never errors
	return res
}

// ExecuteWith is Execute with caller-supplied executor configuration (the
// engine passes a pooled exec.Scratch for allocation-free load accounting
// on cached-plan re-executions). The only error is ec.Ctx's cancellation.
func (gp *GeneralPlan) ExecuteWith(db *data.Database, ec exec.Config) (GeneralResult, error) {
	ec.SkipCompute = ec.SkipCompute || gp.skipJoin
	er, err := exec.Run(gp.Phys, db, ec)
	if err != nil {
		return GeneralResult{}, err
	}
	res := GeneralResult{
		Output:          er.Output,
		MaxVirtualBits:  er.MaxVirtualBits,
		MaxPhysicalBits: er.MaxPhysicalBits,
		VirtualServers:  gp.Phys.Virtual,
		NumBinCombos:    gp.NumBinCombos,
		PredictedBits:   gp.PredictedBits,
	}
	// Deep-copy the per-combination metadata: plans are reused across
	// executions, so callers must not be able to mutate the cached slices.
	res.ByCombo = make([]ComboLoad, len(gp.comboMeta))
	for i, cm := range gp.comboMeta {
		cm.Vars = append([]int(nil), cm.Vars...)
		cm.Bins = append([]int(nil), cm.Bins...)
		res.ByCombo[i] = cm
	}
	for id, bits := range er.PerServerBits {
		for pi, vr := range gp.comboRanges {
			if id >= vr.lo && id < vr.hi && bits > res.ByCombo[pi].MaxBits {
				res.ByCombo[pi].MaxBits = bits
			}
		}
	}
	return res, nil
}

// generalRouter routes tuples to every bin combination's subgrid. It
// carries only plan-time tables (thresholds and frequency maps are frozen
// into the comboPlans), never the planning state, so cached plans don't
// pin the database they were built from. Its per-tuple projection and
// odometer scratch is reused across calls, so a generalRouter is not safe
// for concurrent use; it implements mpc.PerSenderRouter and mpc.Round
// gives each sender its own instance.
type generalRouter struct {
	varPos    [][]int // variable index → attribute position per atom
	plans     []*comboPlan
	atomIndex map[string]int
	family    *hashing.Family
	scratch   int // max of atom arities and free-dim counts
	// Per-tuple scratch, reused across Destinations calls.
	proj   data.Tuple
	row    data.Tuple
	coords []int
	fixed  []bool
}

// ForSender implements mpc.PerSenderRouter: the copy shares the immutable
// plan tables but owns fresh scratch.
func (r *generalRouter) ForSender() mpc.Router {
	c := *r
	c.proj = make(data.Tuple, r.scratch)
	c.row = make(data.Tuple, r.scratch)
	c.coords = make([]int, r.scratch)
	c.fixed = make([]bool, r.scratch)
	return &c
}

func (r *generalRouter) ensureScratch() {
	if r.proj == nil {
		r.proj = make(data.Tuple, r.scratch)
		r.row = make(data.Tuple, r.scratch)
		r.coords = make([]int, r.scratch)
		r.fixed = make([]bool, r.scratch)
	}
}

// Destinations implements mpc.Router over the bin-combination layout.
//
//skewlint:noalloc
func (r *generalRouter) Destinations(rel string, t data.Tuple, dst []int) []int {
	j, ok := r.atomIndex[rel]
	if !ok {
		return dst
	}
	r.ensureScratch()
	return r.destinations(j, t, dst)
}

// DestinationsAt implements mpc.ColumnRouter: the row is gathered into
// reusable scratch (the §4.2 projections touch every attribute subset, so
// unlike the HC and skew-join routers there is no untouched column to
// skip) and routed identically to Destinations.
//
//skewlint:noalloc
func (r *generalRouter) DestinationsAt(rel *data.Relation, row int, dst []int) []int {
	j, ok := r.atomIndex[rel.Name]
	if !ok {
		return dst
	}
	r.ensureScratch()
	return r.destinations(j, rel.ReadTuple(row, r.row[:rel.Arity]), dst)
}

// destinations routes one tuple of atom j.
//
//skewlint:noalloc
func (r *generalRouter) destinations(j int, t data.Tuple, dst []int) []int {
	for _, plan := range r.plans {
		ap := &plan.byAtom[j]
		// Overweight exclusion (the S^(B)_j membership test).
		excluded := false
		for _, ec := range ap.exclude {
			if ec.fm == nil {
				continue // no heavy entries over attrs: never overweight
			}
			proj := r.proj[:len(ec.attrs)]
			for pi, a := range ec.attrs {
				proj[pi] = t[a]
			}
			freq := ec.fm.Count(proj)
			if freq > 0 && float64(freq) > ec.threshold {
				excluded = true
				break
			}
		}
		if excluded {
			continue
		}
		var bases []int
		if len(ap.xjAttrs) == 0 {
			bases = ap.allBases
		} else {
			proj := r.proj[:len(ap.xjAttrs)]
			for pi, a := range ap.xjAttrs {
				proj[pi] = t[a]
			}
			bases = ap.blocksByProj[data.KeyOf(proj)]
		}
		if len(bases) == 0 {
			continue
		}
		dst = r.appendSubcube(dst, plan, j, t, bases)
	}
	return dst
}

// spanStep is one bin combination's partially-resolved routing for a heavy
// run: exclusion checks and block lookups over the partition attribute are
// decided at compile time, the rest stays per-row.
type spanStep struct {
	plan *comboPlan
	ap   *atomPlan
	// bases is the resolved block list when resolved is true (xjAttrs is
	// empty or exactly the partition attribute); otherwise the per-row
	// blocksByProj lookup remains.
	bases    []int
	resolved bool
	exclude  []exclCheck // checks not decided by the partition attribute
}

// SpansAttr implements mpc.SpanRouter: any single attribute of a routed
// atom helps — every exclusion check or block lookup over exactly that
// attribute resolves once per run.
func (r *generalRouter) SpansAttr(rel *data.Relation, attr int) bool {
	_, ok := r.atomIndex[rel.Name]
	return ok
}

// CompileSpan implements mpc.SpanRouter: for each bin combination, run the
// partition-attribute exclusion checks and block lookups once for the whole
// run, dropping combinations that exclude the run or route it nowhere. The
// surviving per-row work (multi-attribute exclusions, other-attribute
// lookups, subcube hashing) runs through a closure over the reduced list.
func (r *generalRouter) CompileSpan(rel *data.Relation, attr int, v int64, route *mpc.SpanRoute) bool {
	j, ok := r.atomIndex[rel.Name]
	if !ok {
		return true // not an input of this plan: ship nothing
	}
	r.ensureScratch()
	steps := make([]spanStep, 0, len(r.plans))
	for _, plan := range r.plans {
		ap := &plan.byAtom[j]
		st := spanStep{plan: plan, ap: ap}
		skip := false
		for _, ec := range ap.exclude {
			if ec.fm == nil {
				continue // no heavy entries over attrs: never overweight
			}
			if len(ec.attrs) == 1 && ec.attrs[0] == attr {
				proj := r.proj[:1]
				proj[0] = v
				if freq := ec.fm.Count(proj); freq > 0 && float64(freq) > ec.threshold {
					skip = true // the whole run is overweight here
					break
				}
				continue
			}
			st.exclude = append(st.exclude, ec)
		}
		if skip {
			continue
		}
		switch {
		case len(ap.xjAttrs) == 0:
			st.bases, st.resolved = ap.allBases, true
		case len(ap.xjAttrs) == 1 && ap.xjAttrs[0] == attr:
			st.bases, st.resolved = ap.blocksByProj[data.Key1(v)], true
		}
		if st.resolved && len(st.bases) == 0 {
			continue // the run maps to no block of this combination
		}
		steps = append(steps, st)
	}
	if len(steps) == 0 {
		return true // uniform empty: every combination excluded the run
	}
	cols := rel.Columns()
	arity := rel.Arity
	route.PerRow = func(row int, dst []int) []int {
		t := r.row[:arity]
		for a, col := range cols {
			t[a] = col[row]
		}
		for si := range steps {
			st := &steps[si]
			excluded := false
			for _, ec := range st.exclude {
				proj := r.proj[:len(ec.attrs)]
				for pi, a := range ec.attrs {
					proj[pi] = t[a]
				}
				if freq := ec.fm.Count(proj); freq > 0 && float64(freq) > ec.threshold {
					excluded = true
					break
				}
			}
			if excluded {
				continue
			}
			bases := st.bases
			if !st.resolved {
				proj := r.proj[:len(st.ap.xjAttrs)]
				for pi, a := range st.ap.xjAttrs {
					proj[pi] = t[a]
				}
				bases = st.ap.blocksByProj[data.KeyOf(proj)]
				if len(bases) == 0 {
					continue
				}
			}
			dst = r.appendSubcube(dst, st.plan, j, t, bases)
		}
		return dst
	}
	return true
}

// appendSubcube appends, for every base block, the servers of the HC
// subcube that tuple t of atom j occupies: dimensions of vars(S_j)−x_j are
// fixed by hashing, the remaining free dimensions replicate (odometer over
// the free dimensions, reusing the router's scratch).
func (r *generalRouter) appendSubcube(dst []int, plan *comboPlan, j int, t data.Tuple, bases []int) []int {
	nd := len(plan.freeDims)
	coords, fixed := r.coords[:nd], r.fixed[:nd]
	offset := 0
	for di, dim := range plan.freeDims {
		coords[di] = 0
		fixed[di] = false
		if pos := r.varPos[j][dim]; pos >= 0 {
			coords[di] = r.family.Hash(dim, t[pos], plan.shares[di])
			fixed[di] = true
			offset += coords[di] * plan.strides[di]
		}
	}
	for {
		for _, base := range bases {
			dst = append(dst, base+offset)
		}
		di := nd - 1
		for ; di >= 0; di-- {
			if fixed[di] {
				continue
			}
			if coords[di]+1 < plan.shares[di] {
				coords[di]++
				offset += plan.strides[di]
				break
			}
			offset -= coords[di] * plan.strides[di]
			coords[di] = 0
		}
		if di < 0 {
			return dst
		}
	}
}

// exclusionChecks enumerates the overweight tests for atom j within B: all
// attribute subsets x” ⊆ vars(S_j) that properly extend x_j (any
// non-empty subset when x_j = ∅).
func (gs *generalState) exclusionChecks(j int, b *binCombo) []exclCheck {
	atom := gs.q.Atoms[j]
	var xjPos []int
	inXj := make(map[int]bool)
	for _, v := range atom.Vars {
		if b.x.Contains(v) {
			xjPos = append(xjPos, gs.varPos[j][v])
			inXj[gs.varPos[j][v]] = true
		}
	}
	sort.Ints(xjPos)
	var outside []int // positions of vars(S_j) − x_j
	for pos := range atom.Vars {
		if !inXj[pos] {
			outside = append(outside, pos)
		}
	}
	var checks []exclCheck
	for mask := 1; mask < 1<<len(outside); mask++ {
		attrs := append([]int(nil), xjPos...)
		var extra []int
		for bit, pos := range outside {
			if mask&(1<<bit) != 0 {
				attrs = append(attrs, pos)
				extra = append(extra, atom.Vars[pos])
			}
		}
		sort.Ints(attrs)
		checks = append(checks, exclCheck{
			attrs:     attrs,
			fm:        gs.st[atom.Name].FreqMapFor(attrs),
			threshold: gs.overweightThreshold(b, j, extra),
		})
	}
	return checks
}

// BinCombos exposes, for inspection and tests, the bin combinations built
// for q over db at p servers, as (variable set, bins, |C'|, λ) tuples.
type BinComboInfo struct {
	Vars   []int
	Bins   []int
	CSize  int
	Lambda float64
	Alpha  float64
}

// InspectBinCombos runs only the construction phase and reports the combos
// (with the practical overweight factor of GeneralConfig's default).
func InspectBinCombos(q *query.Query, db *data.Database, p int) []BinComboInfo {
	gs := newGeneralState(q, db, p)
	gs.applyOverweightFactor(GeneralConfig{})
	gs.buildCombos()
	keys := make([]string, 0, len(gs.combos))
	for key, b := range gs.combos {
		if len(b.cprime) > 0 {
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	var out []BinComboInfo
	for _, key := range keys {
		b := gs.combos[key]
		out = append(out, BinComboInfo{
			Vars:   append([]int(nil), b.xSorted...),
			Bins:   append([]int(nil), b.bins...),
			CSize:  len(b.cprime),
			Lambda: b.lambda,
			Alpha:  b.alpha,
		})
	}
	return out
}
