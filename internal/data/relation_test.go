package data

import (
	"testing"
	"testing/quick"
)

func TestBitsPerValue(t *testing.T) {
	cases := []struct {
		domain int64
		want   int
	}{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := BitsPerValue(c.domain); got != c.want {
			t.Errorf("BitsPerValue(%d) = %d, want %d", c.domain, got, c.want)
		}
	}
}

func TestRelationAddSizeTuple(t *testing.T) {
	r := NewRelation("S", 2, 10)
	r.Add(1, 2)
	r.Add(3, 4)
	if r.Size() != 2 {
		t.Fatalf("Size = %d", r.Size())
	}
	if tu := r.Tuple(1); tu[0] != 3 || tu[1] != 4 {
		t.Errorf("Tuple(1) = %v", tu)
	}
}

func TestRelationBits(t *testing.T) {
	// arity 2, domain 1024 (10 bits), 3 tuples: M = 2*3*10 = 60 bits.
	r := NewRelation("S", 2, 1024)
	r.Add(0, 1)
	r.Add(2, 3)
	r.Add(4, 5)
	if r.Bits() != 60 {
		t.Errorf("Bits = %d, want 60", r.Bits())
	}
	if r.BitsPerTuple() != 20 {
		t.Errorf("BitsPerTuple = %d, want 20", r.BitsPerTuple())
	}
}

func TestRelationAddPanics(t *testing.T) {
	r := NewRelation("S", 2, 10)
	for _, f := range []func(){
		func() { r.Add(1) },     // wrong arity
		func() { r.Add(1, 10) }, // out of domain
		func() { r.Add(-1, 0) }, // negative
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("Add did not panic on bad input")
				}
			}()
			f()
		}()
	}
}

func TestNewRelationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewRelation("S", 1, 0)
}

func TestEachEarlyStop(t *testing.T) {
	r := NewRelation("S", 1, 10)
	for i := int64(0); i < 5; i++ {
		r.Add(i)
	}
	count := 0
	r.Each(func(i int, tu Tuple) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Errorf("Each visited %d, want 3", count)
	}
}

func TestCloneIndependent(t *testing.T) {
	r := NewRelation("S", 1, 10)
	r.Add(1)
	c := r.Clone()
	c.Add(2)
	if r.Size() != 1 || c.Size() != 2 {
		t.Error("Clone shares storage")
	}
}

func TestSort(t *testing.T) {
	r := NewRelation("S", 2, 10)
	r.Add(3, 1)
	r.Add(1, 2)
	r.Add(1, 1)
	r.Sort()
	want := [][2]int64{{1, 1}, {1, 2}, {3, 1}}
	for i, w := range want {
		tu := r.Tuple(i)
		if tu[0] != w[0] || tu[1] != w[1] {
			t.Errorf("after Sort tuple %d = %v, want %v", i, tu, w)
		}
	}
}

func TestContainsDuplicates(t *testing.T) {
	r := NewRelation("S", 2, 10)
	r.Add(1, 2)
	r.Add(3, 4)
	if r.ContainsDuplicates() {
		t.Error("false positive")
	}
	r.Add(1, 2)
	if !r.ContainsDuplicates() {
		t.Error("false negative")
	}
}

func TestTupleKey(t *testing.T) {
	if k := (Tuple{1, 22, 3}).Key(); k != "1,22,3" {
		t.Errorf("Key = %q", k)
	}
	if k := (Tuple{}).Key(); k != "" {
		t.Errorf("empty Key = %q", k)
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase()
	r1 := NewRelation("S1", 1, 4) // 2 bits/value
	r1.Add(1)
	r2 := NewRelation("S2", 2, 4)
	r2.Add(1, 2)
	db.Put(r1)
	db.Put(r2)
	if db.Get("S1") != r1 || db.Get("nope") != nil {
		t.Error("Get wrong")
	}
	if db.MustGet("S2") != r2 {
		t.Error("MustGet wrong")
	}
	if got := db.TotalBits(); got != 2+4 {
		t.Errorf("TotalBits = %d, want 6", got)
	}
	names := db.Names()
	if len(names) != 2 || names[0] != "S1" || names[1] != "S2" {
		t.Errorf("Names = %v", names)
	}
}

func TestMustGetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustGet did not panic")
		}
	}()
	NewDatabase().MustGet("missing")
}

// Property: Sort preserves multiset of tuples.
func TestSortPreservesTuplesProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		r := NewRelation("S", 1, 256)
		for _, v := range vals {
			r.Add(int64(v))
		}
		before := make(map[int64]int)
		r.Each(func(_ int, tu Tuple) bool { before[tu[0]]++; return true })
		r.Sort()
		after := make(map[int64]int)
		r.Each(func(_ int, tu Tuple) bool { after[tu[0]]++; return true })
		if len(before) != len(after) {
			return false
		}
		for k, v := range before {
			if after[k] != v {
				return false
			}
		}
		// And sortedness.
		for i := 1; i < r.Size(); i++ {
			if r.Tuple(i - 1)[0] > r.Tuple(i)[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
