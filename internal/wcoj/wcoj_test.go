package wcoj

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/join"
	"repro/internal/packing"
	"repro/internal/query"
	"repro/internal/workload"
)

func TestTriangleBasic(t *testing.T) {
	q := query.Triangle()
	rels := map[string]*data.Relation{
		"S1": rel("S1", [][2]int64{{1, 2}, {4, 5}}),
		"S2": rel("S2", [][2]int64{{2, 3}, {5, 6}}),
		"S3": rel("S3", [][2]int64{{3, 1}, {6, 7}}),
	}
	out := Join(q, rels)
	want := []data.Tuple{{1, 2, 3}}
	if !join.EqualTupleSets(out, want) {
		t.Errorf("Join = %v, want %v", out, want)
	}
}

func rel(name string, rows [][2]int64) *data.Relation {
	r := data.NewRelation(name, 2, 1000)
	for _, row := range rows {
		r.Add(row[0], row[1])
	}
	return r
}

func TestEmptyRelation(t *testing.T) {
	q := query.Join2()
	rels := map[string]*data.Relation{
		"S1": rel("S1", [][2]int64{{1, 2}}),
		"S2": data.NewRelation("S2", 2, 1000),
	}
	if out := Join(q, rels); len(out) != 0 {
		t.Errorf("Join = %v", out)
	}
}

func TestMissingRelation(t *testing.T) {
	q := query.Join2()
	rels := map[string]*data.Relation{"S1": rel("S1", [][2]int64{{1, 2}})}
	if out := Join(q, rels); len(out) != 0 {
		t.Errorf("Join = %v", out)
	}
}

func TestAgainstHashJoinRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	queries := []*query.Query{
		query.Join2(), query.Triangle(), query.Path(3), query.Star(2),
		query.Cycle(4), query.Cartesian(2),
	}
	for _, q := range queries {
		for trial := 0; trial < 6; trial++ {
			rels := make(map[string]*data.Relation)
			for _, a := range q.Atoms {
				r := data.NewRelation(a.Name, a.Arity(), 6)
				seen := map[string]bool{}
				for i := 0; i < 14; i++ {
					tu := make(data.Tuple, a.Arity())
					for j := range tu {
						tu[j] = int64(rng.Intn(6))
					}
					if !seen[tu.Key()] {
						seen[tu.Key()] = true
						r.Add(tu...)
					}
				}
				rels[a.Name] = r
			}
			fast := Join(q, rels)
			ref := join.Join(q, rels)
			if !join.EqualTupleSets(fast, ref) {
				t.Errorf("%s trial %d: wcoj %d vs hash join %d tuples",
					q.Name, trial, len(fast), len(ref))
			}
		}
	}
}

func TestAgainstRandomQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		q := query.Random(rng, 4, 3)
		rels := make(map[string]*data.Relation)
		for _, a := range q.Atoms {
			r := data.NewRelation(a.Name, a.Arity(), 5)
			seen := map[string]bool{}
			for i := 0; i < 10; i++ {
				tu := make(data.Tuple, a.Arity())
				for j := range tu {
					tu[j] = int64(rng.Intn(5))
				}
				if !seen[tu.Key()] {
					seen[tu.Key()] = true
					r.Add(tu...)
				}
			}
			rels[a.Name] = r
		}
		got := Join(q, rels)
		want := join.NestedLoop(q, rels)
		if !join.EqualTupleSets(got, join.Dedup(want)) {
			t.Fatalf("trial %d %s: wcoj %d vs nested loop %d", trial, q, len(got), len(want))
		}
	}
}

func TestOutputWithinAGMBound(t *testing.T) {
	// Sanity link to §2.3: output never exceeds the AGM bound.
	q := query.Triangle()
	db := workload.ForQuery([]workload.AtomSpec{
		{Name: "S1", Arity: 2, M: 300, Domain: 40},
		{Name: "S2", Arity: 2, M: 300, Domain: 40},
		{Name: "S3", Arity: 2, M: 300, Domain: 40},
	}, 7)
	out := Join(q, db.Relations)
	bound := packing.AGMBound(q, []float64{300, 300, 300})
	if float64(len(out)) > bound {
		t.Errorf("output %d exceeds AGM bound %v", len(out), bound)
	}
}

// The classic separation: on a "star of hubs" instance the binary-join
// intermediate S1 ⋈ S2 is quadratic while the triangle output is small.
// wcoj must not materialize it. We can't observe allocations portably, so
// this test just confirms correctness on the adversarial instance at a
// size where a quadratic intermediate would be 10^6 tuples.
func TestHubInstanceStaysTractable(t *testing.T) {
	const hubDegree = 1000
	s1 := data.NewRelation("S1", 2, 1<<20)
	s2 := data.NewRelation("S2", 2, 1<<20)
	s3 := data.NewRelation("S3", 2, 1<<20)
	// S1: hub 0 → many a_i; S2: many a_i? No — classic: S1(x,y): x=0 to
	// all y; S2(y,z): all y to z=1; S3(z,x): only (1,0). Triangle count =
	// hubDegree... that makes output large. Instead: S2 maps all y to
	// z=1, S3 has nothing matching → output 0, but the S1⋈S2 intermediate
	// is hubDegree² pairs? No: S1⋈S2 on y gives hubDegree pairs (x=0, y,
	// z=1). Use S1(0, y_i) and S2(y_i, z_j) for a full bipartite block:
	// intermediate hubDegree·hubDegree, output bounded by S3.
	for i := int64(0); i < hubDegree; i++ {
		s1.Add(0, i)
	}
	for i := int64(0); i < hubDegree; i++ {
		s2.Add(i, 500000+i%3) // three z values
	}
	s3.Add(500000, 0) // one closing edge
	q := query.Triangle()
	out := Join(q, map[string]*data.Relation{"S1": s1, "S2": s2, "S3": s3})
	// Triangles: (0, y, 500000) for y with S2(y, 500000): y ≡ 0 mod 3.
	want := 0
	for i := int64(0); i < hubDegree; i++ {
		if 500000+i%3 == 500000 {
			want++
		}
	}
	if len(out) != want {
		t.Errorf("hub triangles = %d, want %d", len(out), want)
	}
}
