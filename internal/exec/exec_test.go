package exec

import (
	"testing"

	"repro/internal/data"
	"repro/internal/mpc"
)

func testDB() *data.Database {
	db := data.NewDatabase()
	r := data.NewRelation("S", 2, 16)
	for i := int64(0); i < 8; i++ {
		r.Add(i, (i+1)%16)
	}
	db.Put(r)
	return db
}

// modRouter sends tuple (a,b) to server a mod p.
func modRouter(p int) mpc.Router {
	return mpc.RouterFunc(func(rel string, t data.Tuple, dst []int) []int {
		return append(dst, int(t[0])%p)
	})
}

func TestRunRoutesComputesAndAccounts(t *testing.T) {
	db := testDB()
	plan := &PhysicalPlan{
		Strategy: "test",
		Virtual:  4,
		Physical: 2,
		Router:   modRouter(4),
		Local: func(s *mpc.Server) []data.Tuple {
			var out []data.Tuple
			s.Fragment("S").Each(func(_ int, tu data.Tuple) bool {
				out = append(out, append(data.Tuple(nil), tu...))
				return true
			})
			return out
		},
	}
	res := Run(plan, db, Config{})
	if len(res.Output) != 8 {
		t.Errorf("output = %d tuples, want 8", len(res.Output))
	}
	if len(res.PerServerBits) != 4 {
		t.Fatalf("PerServerBits = %d entries, want 4", len(res.PerServerBits))
	}
	// 8 tuples round-robin over 4 virtual servers: 2 tuples each.
	bpt := db.MustGet("S").BitsPerTuple()
	for id, bits := range res.PerServerBits {
		if bits != 2*bpt {
			t.Errorf("server %d: %d bits, want %d", id, bits, 2*bpt)
		}
	}
	if res.MaxVirtualBits != 2*bpt {
		t.Errorf("MaxVirtualBits = %d, want %d", res.MaxVirtualBits, 2*bpt)
	}
	// Virtual 0,2 → physical 0; 1,3 → physical 1: 4 tuples per machine.
	if res.MaxPhysicalBits != 4*bpt {
		t.Errorf("MaxPhysicalBits = %d, want %d", res.MaxPhysicalBits, 4*bpt)
	}
	if res.Loads.TotalBits != 8*bpt {
		t.Errorf("TotalBits = %d, want %d", res.Loads.TotalBits, 8*bpt)
	}
	if res.Loads.Replication < 0.99 || res.Loads.Replication > 1.01 {
		t.Errorf("Replication = %f, want 1", res.Loads.Replication)
	}
}

func TestRunSkipCompute(t *testing.T) {
	db := testDB()
	called := false
	plan := &PhysicalPlan{
		Strategy: "test",
		Virtual:  2,
		Physical: 2,
		Router:   modRouter(2),
		Local: func(s *mpc.Server) []data.Tuple {
			called = true
			return nil
		},
	}
	res := Run(plan, db, Config{SkipCompute: true})
	if called {
		t.Error("local compute ran despite SkipCompute")
	}
	if len(res.Output) != 0 {
		t.Error("output non-empty despite SkipCompute")
	}
	if res.MaxVirtualBits == 0 {
		t.Error("loads not accounted under SkipCompute")
	}
}

func TestRunDedup(t *testing.T) {
	db := testDB()
	plan := &PhysicalPlan{
		Strategy: "test",
		Virtual:  3,
		Physical: 3,
		// Broadcast: every server holds every tuple, so without Dedup the
		// output would triple.
		Router: mpc.RouterFunc(func(rel string, t data.Tuple, dst []int) []int {
			return append(dst, 0, 1, 2)
		}),
		Local: func(s *mpc.Server) []data.Tuple {
			var out []data.Tuple
			s.Fragment("S").Each(func(_ int, tu data.Tuple) bool {
				out = append(out, append(data.Tuple(nil), tu...))
				return true
			})
			return out
		},
		Dedup: true,
	}
	res := Run(plan, db, Config{})
	if len(res.Output) != 8 {
		t.Errorf("deduped output = %d tuples, want 8", len(res.Output))
	}
}

func TestRunPanicsOnBadPlan(t *testing.T) {
	for _, plan := range []*PhysicalPlan{
		{Strategy: "bad", Virtual: 0, Physical: 1, Router: modRouter(1)},
		{Strategy: "bad", Virtual: 1, Physical: 0, Router: modRouter(1)},
		// Router emits an out-of-range destination.
		{Strategy: "bad", Virtual: 1, Physical: 1, Router: modRouter(5)},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("plan %+v: expected panic", plan)
				}
			}()
			Run(plan, testDB(), Config{})
		}()
	}
}
