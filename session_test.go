package repro

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"testing"
)

func sortedTuples(ts []Tuple) []Tuple {
	out := append([]Tuple(nil), ts...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

func equalTupleSets(a, b []Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	as, bs := sortedTuples(a), sortedTuples(b)
	for i := range as {
		for k := range as[i] {
			if as[i][k] != bs[i][k] {
				return false
			}
		}
	}
	return true
}

func TestOpenValidatesConfig(t *testing.T) {
	if _, err := Open(Config{P: 1}); err == nil {
		t.Error("Open accepted p = 1")
	}
	if _, err := Open(Config{P: 8, ReplanDriftFactor: 0.5}); err == nil {
		t.Error("Open accepted drift factor 0.5")
	}
	if _, err := Open(Config{P: 8, ClusterPoolDepth: -1}); err == nil {
		t.Error("Open accepted negative pool depth")
	}
	if _, err := Open(Config{P: 8}); err != nil {
		t.Errorf("Open rejected a valid config: %v", err)
	}
}

func TestSessionExecErrorsNotPanics(t *testing.T) {
	s, err := Open(Config{P: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	db.Put(MatchingRelation("S1", 2, 100, 1000, 1))
	// Missing relation S2.
	if _, err := s.Exec(context.Background(), Join2Query(), db); err == nil {
		t.Error("Exec succeeded with a missing relation")
	}
	// Invalid per-call p.
	db.Put(MatchingRelation("S2", 2, 100, 1000, 2))
	if _, err := s.Exec(context.Background(), Join2Query(), db, WithP(1)); err == nil {
		t.Error("Exec accepted p = 1")
	}
	if _, err := s.Exec(context.Background(), Join2Query(), db); err != nil {
		t.Errorf("valid Exec failed: %v", err)
	}
}

func TestSessionExecMatchesEngineAndOptions(t *testing.T) {
	db := NewDatabase()
	db.Put(ZipfRelation("S1", 500, 1<<16, 1, 1.3, 40, 1))
	db.Put(MatchingRelation("S2", 2, 500, 1<<16, 2))
	q := Join2Query()
	oracle := NewEngine(8, 3).Execute(q, db)

	s, err := Open(Config{P: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(context.Background(), q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !equalTupleSets(res.Output, oracle.Output) {
		t.Fatalf("session answers (%d) differ from engine answers (%d)", len(res.Output), len(oracle.Output))
	}

	// Every forced strategy agrees on answers.
	for _, st := range []Strategy{StrategyHyperCube, StrategySkewJoin, StrategyBinCombination, StrategyMultiRound} {
		r, err := s.Exec(context.Background(), q, db, WithStrategy(st))
		if err != nil {
			t.Fatalf("forced %v: %v", st, err)
		}
		if r.Plan.Strategy != st {
			t.Fatalf("forced %v but plan used %v", st, r.Plan.Strategy)
		}
		if !equalTupleSets(r.Output, oracle.Output) {
			t.Fatalf("forced %v: %d answers, want %d", st, len(r.Output), len(oracle.Output))
		}
	}

	// WithP executes on a different server count, cached separately.
	if r, err := s.Exec(context.Background(), q, db, WithP(4)); err != nil || !equalTupleSets(r.Output, oracle.Output) {
		t.Fatalf("WithP(4): err=%v answers=%d", err, len(r.Output))
	}

	// WithoutCache doesn't grow the cache.
	before := s.CacheStats()
	if _, err := s.Exec(context.Background(), q, db, WithoutCache()); err != nil {
		t.Fatal(err)
	}
	after := s.CacheStats()
	if after.Size != before.Size || after.Misses != before.Misses || after.Hits != before.Hits {
		t.Fatalf("WithoutCache touched the cache: %+v -> %+v", before, after)
	}

	// WithMultiRound(true) lets the pipeline compete per call.
	if _, err := s.Exec(context.Background(), q, db, WithMultiRound(true)); err != nil {
		t.Fatal(err)
	}
}

// TestSessionCacheSurvivesApply: serving-mode plans are keyed by database
// identity + schema, so content deltas keep them hot — where the legacy
// content-fingerprint path replans.
func TestSessionCacheSurvivesApply(t *testing.T) {
	db := NewDatabase()
	db.Put(MatchingRelation("S1", 2, 400, 1<<20, 1))
	db.Put(MatchingRelation("S2", 2, 400, 1<<20, 2))
	q := Join2Query()
	s, err := Open(Config{P: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Exec(ctx, q, db); err != nil {
		t.Fatal(err)
	}
	if err := db.Apply(NewDelta().Insert("S1", 1<<19, 1<<19)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec(ctx, q, db)
	if err != nil {
		t.Fatal(err)
	}
	st := s.CacheStats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("serving cache stats after delta: %+v, want 1 hit / 1 miss", st)
	}
	// The plan ran against the mutated content: answers reflect the delta.
	oracle := NewEngine(8, 1).Execute(q, db)
	if !equalTupleSets(res.Output, oracle.Output) {
		t.Fatalf("post-delta answers (%d) differ from oracle (%d)", len(res.Output), len(oracle.Output))
	}
	// Replacing a relation with a different shape changes the serving key:
	// positional routing would be wrong, so the plan must rebuild.
	db.Put(NewRelation("S2", 2, 1<<21)) // same arity, different domain = new schema
	if _, err := s.Exec(ctx, q, db); err != nil {
		t.Fatal(err)
	}
	if st := s.CacheStats(); st.Misses != 2 {
		t.Fatalf("schema change did not miss: %+v", st)
	}
}

// TestSessionDriftReplan is the adaptive re-planning acceptance test: a
// zipf-style hot value planted after plan caching makes realized load
// exceed the drift threshold, triggering exactly one replan that switches
// to a skew-aware strategy with improved realized load.
func TestSessionDriftReplan(t *testing.T) {
	const p = 16
	db := NewDatabase()
	db.Put(MatchingRelation("S1", 2, 4000, 1<<20, 1))
	db.Put(MatchingRelation("S2", 2, 4000, 1<<20, 2))
	q := Join2Query()
	s, err := Open(Config{P: p, Seed: 1, ReplanDriftFactor: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	r1, err := s.Exec(ctx, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Plan.Strategy != StrategyHyperCube || r1.Replanned {
		t.Fatalf("initial plan: strategy %v replanned %v", r1.Plan.Strategy, r1.Replanned)
	}
	if r2, _ := s.Exec(ctx, q, db); r2.Replanned {
		t.Fatal("clean repeat replanned")
	}

	// Plant the skew: shift half of S2's join column onto one hot value.
	// (Matching columns hold distinct values, so re-pairing each deleted
	// x with z=7 cannot create duplicates.)
	s2 := db.MustGet("S2")
	d := NewDelta()
	for i := 0; i < 2000; i++ {
		tu := s2.Tuple(i)
		d.Delete("S2", tu...).Insert("S2", tu[0], 7)
	}
	if err := db.Apply(d); err != nil {
		t.Fatal(err)
	}

	// The stale-statistics plan still serves (cache hit), but its realized
	// load now drifts past threshold × prediction, arming the replan.
	r3, err := s.Exec(ctx, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Replanned {
		t.Fatal("drifted call itself replanned; marking is for the *next* call")
	}
	if r3.Plan.Strategy != StrategyHyperCube {
		t.Fatalf("drifted call used %v, want the stale hypercube plan", r3.Plan.Strategy)
	}
	if float64(r3.MaxLoadBits) <= 3*r3.Plan.PredictedBits {
		t.Fatalf("planted skew too weak: realized %d vs predicted %.0f", r3.MaxLoadBits, r3.Plan.PredictedBits)
	}

	r4, err := s.Exec(ctx, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if !r4.Replanned {
		t.Fatal("no replan after drift marking")
	}
	if r4.Plan.Strategy != StrategySkewJoin {
		t.Fatalf("replanned strategy %v, want skew-join for the planted hitter", r4.Plan.Strategy)
	}
	if r4.MaxLoadBits >= r3.MaxLoadBits {
		t.Fatalf("replan did not improve realized load: %d -> %d", r3.MaxLoadBits, r4.MaxLoadBits)
	}
	if !equalTupleSets(r4.Output, r3.Output) {
		t.Fatal("replan changed the answers")
	}

	// Exactly one replan: content is unchanged since the rebuild, so the
	// drift gate stays closed no matter how many times we execute.
	for i := 0; i < 3; i++ {
		r, err := s.Exec(ctx, q, db)
		if err != nil {
			t.Fatal(err)
		}
		if r.Replanned {
			t.Fatalf("extra replan on call %d", i)
		}
	}
	if st := s.CacheStats(); st.Replans != 1 {
		t.Fatalf("Replans = %d, want exactly 1 (stats: %+v)", st.Replans, st)
	}
}

func TestSessionContextCancellation(t *testing.T) {
	db := NewDatabase()
	db.Put(MatchingRelation("S1", 2, 300, 1<<16, 1))
	db.Put(MatchingRelation("S2", 2, 300, 1<<16, 2))
	db.Put(MatchingRelation("S3", 2, 300, 1<<16, 3))
	s, err := Open(Config{P: 8, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Exec(ctx, TriangleQuery(), db, WithStrategy(StrategyMultiRound)); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The same call with a live context completes.
	if _, err := s.Exec(context.Background(), TriangleQuery(), db, WithStrategy(StrategyMultiRound)); err != nil {
		t.Fatalf("live context errored: %v", err)
	}
}

// TestSessionConcurrentServing is the serving stress satellite: one
// Session, 9 goroutines mixing Exec (with assorted options), Database.Apply
// deltas, standing-query advances, cache clears, and stats polling under
// the race detector, with answers checked against a fresh-engine oracle
// after every delta and every advance.
func TestSessionConcurrentServing(t *testing.T) {
	baseline := runtime.NumGoroutine()
	const p = 8
	db := NewDatabase()
	db.Put(MatchingRelation("S1", 2, 200, 1<<16, 1))
	db.Put(ZipfRelation("S2", 200, 1<<16, 1, 1.2, 30, 2))
	q := Join2Query()
	s, err := Open(Config{P: p, Seed: 5, ReplanDriftFactor: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// applyMu serializes appliers (and their oracle comparison) against
	// each other only — free readers keep hammering Exec concurrently, so
	// Apply's write path vs Exec's snapshot reads is exercised for real.
	var applyMu sync.Mutex
	var wg sync.WaitGroup
	// heavy tracks the oracle-checked goroutines (appliers, advancers); the
	// closer fires Session.Close once they are done, mid-flight for the
	// rest, so every other worker must treat ErrSessionClosed as a clean
	// shutdown signal rather than a failure.
	var heavy sync.WaitGroup
	fail := func(format string, args ...any) {
		t.Errorf(format, args...)
	}

	// 6 free readers with different option mixes.
	readerOpts := [][]ExecOption{
		nil,
		{WithoutCache()},
		{WithStrategy(StrategyHyperCube)},
		{WithP(4)},
		{WithStrategy(StrategySkewJoin)},
		{WithoutCache(), WithP(4)},
	}
	for g := 0; g < len(readerOpts); g++ {
		wg.Add(1)
		go func(opts []ExecOption) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				res, err := s.Exec(ctx, q, db, opts...)
				if errors.Is(err, ErrSessionClosed) {
					return
				}
				if err != nil {
					fail("reader: %v", err)
					return
				}
				for _, tu := range res.Output {
					if len(tu) != 3 {
						fail("reader: answer arity %d", len(tu))
						return
					}
				}
			}
		}(readerOpts[g])
	}

	// 2 appliers: mutate, then verify the session against a fresh engine
	// (fresh = no cache shared with the session) while no other applier
	// can interleave.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		heavy.Add(1)
		go func(id int) {
			defer wg.Done()
			defer heavy.Done()
			for i := 0; i < 10; i++ {
				applyMu.Lock()
				v := int64(60000 + id*1000 + i)
				d := NewDelta().Insert("S1", v, v).Insert("S2", v, v)
				if err := db.Apply(d); err != nil {
					applyMu.Unlock()
					fail("apply: %v", err)
					return
				}
				got, err := s.Exec(ctx, q, db)
				if err != nil {
					applyMu.Unlock()
					fail("post-apply exec: %v", err)
					return
				}
				want := NewEngine(p, 5).Execute(q, db)
				if !equalTupleSets(got.Output, want.Output) {
					applyMu.Unlock()
					fail("post-apply answers: session %d vs oracle %d", len(got.Output), len(want.Output))
					return
				}
				applyMu.Unlock()
			}
		}(g)
	}

	// 2 standing-query advancers with independent handles: each observes
	// the appliers' deltas and survives the cache clearer's invalidations
	// (each forces a reseed). applyMu pins the database between an advance
	// and its fresh-engine oracle so the comparison is against the state
	// the advance saw.
	for g := 0; g < 2; g++ {
		h, err := s.Standing(ctx, q, db)
		if err != nil {
			t.Fatal(err)
		}
		defer h.Close()
		wg.Add(1)
		heavy.Add(1)
		go func(h *StandingQuery, n int) {
			defer wg.Done()
			defer heavy.Done()
			for i := 0; i < n; i++ {
				applyMu.Lock()
				if _, err := h.Advance(ctx); err != nil {
					applyMu.Unlock()
					fail("standing advance: %v", err)
					return
				}
				got := h.Result()
				want := NewEngine(p, 5).Execute(q, db)
				if !equalTupleSets(got, want.Output) {
					applyMu.Unlock()
					fail("standing result: %d answers vs oracle %d", len(got), len(want.Output))
					return
				}
				applyMu.Unlock()
			}
		}(h, 15-5*g)
	}

	// 1 cache clearer + 1 cache/pool stats poller + 1 admission poller.
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			s.ClearPlanCache()
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = s.CacheStats()
			_ = s.PoolStats()
			_ = DatabaseFingerprint(db)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			st := s.AdmissionStats()
			if st.InFlight < 0 || st.QueueDepth < 0 {
				fail("admission stats: %+v", st)
				return
			}
		}
	}()

	// 1 closer: once the oracle-checked workers are done, close the session
	// under the remaining readers' feet. Close must drain in-flight Execs
	// and flip the rest to ErrSessionClosed.
	wg.Add(1)
	go func() {
		defer wg.Done()
		heavy.Wait()
		if err := s.Close(); err != nil {
			fail("close: %v", err)
		}
	}()

	wg.Wait()
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := s.Exec(ctx, q, db); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("post-close Exec: %v, want ErrSessionClosed", err)
	}
	// Nothing the session or its handles own may outlive Close.
	spinUntil(t, "goroutines drained after Close", func() bool {
		return runtime.NumGoroutine() <= baseline
	})
}
