package core

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/hypercube"
	"repro/internal/join"
	"repro/internal/query"
	"repro/internal/rounds"
	"repro/internal/skew"
)

// randomInstance generates a small random instance for q, with occasional
// planted skew so both code paths of every algorithm are exercised.
func randomInstance(q *query.Query, rng *rand.Rand) *data.Database {
	db := data.NewDatabase()
	const domain = 8 // dense: plenty of matches and repeated values
	for _, a := range q.Atoms {
		r := data.NewRelation(a.Name, a.Arity(), domain)
		seen := make(map[string]bool)
		n := 4 + rng.Intn(20)
		hot := int64(rng.Intn(domain)) // a value to overuse sometimes
		for i := 0; i < n; i++ {
			t := make(data.Tuple, a.Arity())
			for j := range t {
				if rng.Intn(3) == 0 {
					t[j] = hot
				} else {
					t[j] = int64(rng.Intn(domain))
				}
			}
			if !seen[t.Key()] {
				seen[t.Key()] = true
				r.Add(t...)
			}
		}
		db.Put(r)
	}
	return db
}

// TestFuzzAllAlgorithmsAgree cross-checks every evaluation strategy on
// random queries and random (often skewed) instances against the
// independent nested-loop reference. This is the repository's strongest
// correctness gate.
func TestFuzzAllAlgorithmsAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz is integration-scale")
	}
	rng := rand.New(rand.NewSource(2014))
	trials := 150
	for trial := 0; trial < trials; trial++ {
		q := query.Random(rng, 4, 3)
		db := randomInstance(q, rng)
		want := join.NestedLoop(q, join.FromDatabase(db))
		want = join.Dedup(want)

		// HyperCube with LP shares.
		hc := hypercube.Run(q, db, hypercube.Config{P: 8, Seed: uint64(trial)})
		if !join.EqualTupleSets(hc.Output, want) {
			t.Fatalf("trial %d %s: hypercube %d vs reference %d tuples",
				trial, q, len(hc.Output), len(want))
		}
		// HyperCube with equal shares (skew-resilient mode).
		eq := hypercube.Run(q, db, hypercube.Config{P: 8, Seed: uint64(trial), EqualShares: true})
		if !join.EqualTupleSets(eq.Output, want) {
			t.Fatalf("trial %d %s: equal-share HC %d vs %d",
				trial, q, len(eq.Output), len(want))
		}
		// General bin-combination algorithm.
		gen := skew.RunGeneral(q, db, skew.GeneralConfig{P: 8, Seed: uint64(trial)})
		if !join.EqualTupleSets(gen.Output, want) {
			t.Fatalf("trial %d %s: bin-combination %d vs %d",
				trial, q, len(gen.Output), len(want))
		}
		// Multi-round plan.
		mr := rounds.Run(rounds.BuildPlan(q), db, rounds.Config{P: 8, Seed: uint64(trial)})
		if !join.EqualTupleSets(mr.Output, want) {
			t.Fatalf("trial %d %s: multi-round %d vs %d",
				trial, q, len(mr.Output), len(want))
		}
		// Skew-aware multi-round.
		mrs := rounds.Run(rounds.BuildPlan(q), db, rounds.Config{P: 8, Seed: uint64(trial), SkewAware: true})
		if !join.EqualTupleSets(mrs.Output, want) {
			t.Fatalf("trial %d %s: skew-aware multi-round %d vs %d",
				trial, q, len(mrs.Output), len(want))
		}
		// The engine's own choice.
		res := NewEngine(8, uint64(trial)).Execute(q, db)
		if !join.EqualTupleSets(join.Dedup(res.Output), want) {
			t.Fatalf("trial %d %s: engine(%v) %d vs %d",
				trial, q, res.Plan.Strategy, len(res.Output), len(want))
		}
		// The engine's multi-round pipeline, forced: must agree with every
		// one-round strategy through the plan cache and exec.RunPipeline.
		force := MultiRound
		emr := NewEngine(8, uint64(trial))
		emr.ForceStrategy = &force
		fres := emr.Execute(q, db)
		if fres.Plan.Strategy != MultiRound {
			t.Fatalf("trial %d %s: forced multi-round ignored (%v)", trial, q, fres.Plan.Strategy)
		}
		if !join.EqualTupleSets(fres.Output, want) {
			t.Fatalf("trial %d %s: engine multi-round %d vs %d",
				trial, q, len(fres.Output), len(want))
		}
		// Cost-comparing engine: whichever strategy the comparison picks,
		// answers must match the reference.
		ecc := NewEngine(8, uint64(trial))
		ecc.ConsiderMultiRound = true
		cres := ecc.Execute(q, db)
		if !join.EqualTupleSets(join.Dedup(cres.Output), want) {
			t.Fatalf("trial %d %s: cost-comparing engine(%v) %d vs %d",
				trial, q, cres.Plan.Strategy, len(cres.Output), len(want))
		}
	}
}
