package query

import (
	"fmt"
	"math/rand"
)

// Random generates a random full conjunctive query without self-joins:
// up to maxVars variables and maxAtoms atoms, arities in [1,3], no
// repeated variable within an atom, every variable used, and (when
// possible) a connected hypergraph. It is the driver for cross-algorithm
// fuzz tests: every evaluation strategy must agree with the reference
// join on any query Random produces.
func Random(rng *rand.Rand, maxVars, maxAtoms int) *Query {
	if maxVars < 1 || maxAtoms < 1 {
		panic("query: Random needs positive limits")
	}
	k := 1 + rng.Intn(maxVars)
	l := 1 + rng.Intn(maxAtoms)
	q := &Query{Name: "rand"}
	for i := 0; i < k; i++ {
		q.Vars = append(q.Vars, fmt.Sprintf("v%d", i))
	}
	covered := make([]bool, k)
	for j := 0; j < l; j++ {
		arity := 1 + rng.Intn(3)
		if arity > k {
			arity = k
		}
		vars := rng.Perm(k)[:arity]
		// Bias later atoms toward touching an uncovered variable so that
		// validation ("every head variable used") usually succeeds.
		for idx := range vars {
			if covered[vars[idx]] {
				for cand := 0; cand < k; cand++ {
					if !covered[cand] && !containsIntSlice(vars, cand) {
						vars[idx] = cand
						break
					}
				}
			}
		}
		for _, v := range vars {
			covered[v] = true
		}
		q.Atoms = append(q.Atoms, Atom{Name: fmt.Sprintf("R%d", j), Vars: vars})
	}
	// Force-cover any stragglers by widening the last atoms.
	for v := 0; v < k; v++ {
		if covered[v] {
			continue
		}
		for j := range q.Atoms {
			a := &q.Atoms[j]
			if len(a.Vars) < 3 && !a.HasVar(v) {
				a.Vars = append(a.Vars, v)
				covered[v] = true
				break
			}
		}
		if !covered[v] {
			// All atoms full: add a fresh unary atom.
			q.Atoms = append(q.Atoms, Atom{
				Name: fmt.Sprintf("R%d", len(q.Atoms)), Vars: []int{v},
			})
			covered[v] = true
		}
	}
	if err := q.Validate(); err != nil {
		panic("query: Random produced invalid query: " + err.Error())
	}
	return q
}

func containsIntSlice(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}
