// Package data stores relation instances over an integer domain [n] and
// accounts their size in bits, matching the paper's convention
// M_j = a_j · m_j · log n for a relation with arity a_j and m_j tuples.
//
// Tuples are kept in a flat row-major int64 slice for locality; a Tuple view
// is a sub-slice and must not be retained across Add calls.
package data

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Tuple is one row of a relation; len(Tuple) is the relation's arity.
type Tuple []int64

// Key renders a tuple as a compact map key.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// BitsPerValue returns ⌈log₂ n⌉ (minimum 1), the bits needed to encode one
// value from a domain of size n.
func BitsPerValue(domain int64) int {
	if domain <= 1 {
		return 1
	}
	return bits.Len64(uint64(domain - 1))
}

// Relation is a named multiset-free relation instance S_j ⊆ [domain]^arity.
// Duplicate insertion is the caller's responsibility to avoid (generators
// never produce duplicates; AddUnique enforces it when needed).
type Relation struct {
	Name   string
	Arity  int
	Domain int64
	flat   []int64
}

// NewRelation returns an empty relation.
func NewRelation(name string, arity int, domain int64) *Relation {
	if arity < 0 || domain < 1 {
		panic(fmt.Sprintf("data: bad relation shape arity=%d domain=%d", arity, domain))
	}
	return &Relation{Name: name, Arity: arity, Domain: domain}
}

// Add appends a tuple. Values must lie in [0, Domain).
func (r *Relation) Add(vals ...int64) {
	if len(vals) != r.Arity {
		panic(fmt.Sprintf("data: %s: tuple arity %d, want %d", r.Name, len(vals), r.Arity))
	}
	for _, v := range vals {
		if v < 0 || v >= r.Domain {
			panic(fmt.Sprintf("data: %s: value %d outside domain [0,%d)", r.Name, v, r.Domain))
		}
	}
	r.flat = append(r.flat, vals...)
}

// Size returns m, the number of tuples.
func (r *Relation) Size() int {
	if r.Arity == 0 {
		return len(r.flat) // degenerate; nullary relations unused in practice
	}
	return len(r.flat) / r.Arity
}

// Tuple returns a view of the i-th tuple. The view aliases internal storage.
func (r *Relation) Tuple(i int) Tuple {
	return Tuple(r.flat[i*r.Arity : (i+1)*r.Arity])
}

// Each calls f on every tuple; returning false stops early.
func (r *Relation) Each(f func(i int, t Tuple) bool) {
	n := r.Size()
	for i := 0; i < n; i++ {
		if !f(i, r.Tuple(i)) {
			return
		}
	}
}

// BitsPerTuple returns a_j·⌈log₂ n⌉.
func (r *Relation) BitsPerTuple() int64 {
	return int64(r.Arity) * int64(BitsPerValue(r.Domain))
}

// Bits returns M_j = a_j · m_j · ⌈log₂ n⌉, the size of the relation in bits.
func (r *Relation) Bits() int64 {
	return int64(r.Size()) * r.BitsPerTuple()
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.Name, r.Arity, r.Domain)
	c.flat = append([]int64(nil), r.flat...)
	return c
}

// Sort orders tuples lexicographically in place (used to canonicalize for
// comparisons in tests).
func (r *Relation) Sort() {
	n := r.Size()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ta, tb := r.Tuple(idx[a]), r.Tuple(idx[b])
		for i := range ta {
			if ta[i] != tb[i] {
				return ta[i] < tb[i]
			}
		}
		return false
	})
	sorted := make([]int64, 0, len(r.flat))
	for _, i := range idx {
		sorted = append(sorted, r.Tuple(i)...)
	}
	r.flat = sorted
}

// ContainsDuplicates reports whether any tuple occurs twice.
func (r *Relation) ContainsDuplicates() bool {
	seen := make(map[string]bool, r.Size())
	dup := false
	r.Each(func(_ int, t Tuple) bool {
		k := t.Key()
		if seen[k] {
			dup = true
			return false
		}
		seen[k] = true
		return true
	})
	return dup
}

// Database is a set of relations keyed by relation (atom) name.
type Database struct {
	Relations map[string]*Relation
}

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{Relations: make(map[string]*Relation)}
}

// Put stores a relation under its own name.
func (db *Database) Put(r *Relation) { db.Relations[r.Name] = r }

// Get returns the named relation or nil.
func (db *Database) Get(name string) *Relation { return db.Relations[name] }

// MustGet returns the named relation or panics.
func (db *Database) MustGet(name string) *Relation {
	r := db.Relations[name]
	if r == nil {
		panic("data: missing relation " + name)
	}
	return r
}

// TotalBits returns Σ_j M_j, the database size in bits.
func (db *Database) TotalBits() int64 {
	var total int64
	for _, r := range db.Relations {
		total += r.Bits()
	}
	return total
}

// Names returns the relation names in sorted order.
func (db *Database) Names() []string {
	names := make([]string, 0, len(db.Relations))
	for n := range db.Relations {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
