package lint

// The analysistest harness: each testdata corpus is parsed from source,
// type-checked under a chosen import path (so path-scoped analyzers see
// the scope they'd see in production), and run through the same lint.Run
// pipeline cmd/skewlint uses — //skewlint:allow suppression included.
// Expectations are `// want "regex"` comments on the flagged lines,
// mirroring x/tools' analysistest convention.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// repoRoot is the module root relative to this package's directory; the
// importer resolves testdata imports (stdlib and real engine packages)
// from go list export data rooted there.
const repoRoot = "../.."

// loadTestdata parses and type-checks testdata/<dir> as though its import
// path were asPath.
func loadTestdata(t *testing.T, dir, asPath string) *load.Package {
	t.Helper()
	full := filepath.Join("testdata", dir)
	entries, err := os.ReadDir(full)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		t.Fatalf("no corpus files in %s", full)
	}

	fset := token.NewFileSet()
	pkg := &load.Package{ID: asPath, PkgPath: asPath, Dir: full, Fset: fset}
	importSet := map[string]bool{}
	for _, name := range names {
		f, perr := parser.ParseFile(fset, filepath.Join(full, name), nil, parser.ParseComments)
		if perr != nil {
			t.Fatal(perr)
		}
		pkg.Syntax = append(pkg.Syntax, f)
		pkg.IsTest = append(pkg.IsTest, strings.HasSuffix(name, "_test.go"))
		for _, imp := range f.Imports {
			if path, err := strconv.Unquote(imp.Path.Value); err == nil {
				importSet[path] = true
			}
		}
	}
	var imports []string
	for path := range importSet {
		imports = append(imports, path)
	}
	sort.Strings(imports)

	imp, err := load.Importer(repoRoot, fset, imports...)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(asPath, fset, pkg.Syntax, info)
	if err != nil {
		t.Fatalf("type checking %s: %v", full, err)
	}
	pkg.Types = tpkg
	pkg.TypesInfo = info
	return pkg
}

// want is one expectation parsed from a `// want "regex"` comment.
type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

var wantQuoted = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants scans the corpus comments for expectations.
func collectWants(t *testing.T, pkg *load.Package) []*want {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Syntax {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, q := range wantQuoted.FindAllString(rest, -1) {
					var pat string
					if strings.HasPrefix(q, "`") {
						pat = strings.Trim(q, "`")
					} else if u, err := strconv.Unquote(q); err == nil {
						pat = u
					} else {
						t.Fatalf("%s: bad want pattern %s", pos, q)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return wants
}

// runGolden checks one analyzer against one corpus.
func runGolden(t *testing.T, dir, asPath string, a *analysis.Analyzer) {
	t.Helper()
	pkg := loadTestdata(t, dir, asPath)
	findings, err := Run([]*load.Package{pkg}, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	wants := collectWants(t, pkg)

	index := map[string][]*want{}
	for _, w := range wants {
		key := fmt.Sprintf("%s:%d", w.file, w.line)
		index[key] = append(index[key], w)
	}
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, w := range index[key] {
			if w.re.MatchString(f.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no %s finding matched want %q", w.file, w.line, a.Name, w.re)
		}
	}
}

// TestAnalyzersGolden runs every analyzer over its corpus: at least one
// true positive, at least one allow-directive or idiom negative each.
func TestAnalyzersGolden(t *testing.T) {
	cases := []struct {
		dir      string
		asPath   string
		analyzer *analysis.Analyzer
	}{
		{"nodeterminism", "repro/internal/mpc", NoDeterminismBreak},
		{"noalloc", "repro/internal/hot", NoAlloc},
		{"ctxflow", "repro/internal/core", CtxFlow},
		{"scratchescape", "repro/internal/owner", ScratchEscape},
		{"errwrap", "repro/internal/taxo", ErrWrap},
		{"shadow", "repro/internal/sh", Shadow},
		{"copylocks", "repro/internal/cl", CopyLocks},
		{"unusedwrite", "repro/internal/uw", UnusedWrite},
		{"nilness", "repro/internal/nil", Nilness},
	}
	for _, tc := range cases {
		t.Run(tc.dir, func(t *testing.T) {
			runGolden(t, tc.dir, tc.asPath, tc.analyzer)
		})
	}
}

// TestNoDeterminismOutOfScope re-checks core-forbidden calls under a
// non-core import path: the path scoping must silence them all.
func TestNoDeterminismOutOfScope(t *testing.T) {
	pkg := loadTestdata(t, "nodeterminism_outofscope", "repro/internal/stats")
	findings, err := Run([]*load.Package{pkg}, []*analysis.Analyzer{NoDeterminismBreak})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("out-of-scope corpus produced a finding: %s", f)
	}
}
