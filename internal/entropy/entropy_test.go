package entropy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogBinomialSmallExact(t *testing.T) {
	cases := []struct {
		n, k float64
		want float64 // C(n,k)
	}{
		{5, 2, 10}, {10, 3, 120}, {6, 0, 1}, {6, 6, 1}, {52, 5, 2598960},
	}
	for _, c := range cases {
		got := LogBinomial(c.n, c.k)
		want := math.Log2(c.want)
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("LogBinomial(%v,%v) = %v, want %v", c.n, c.k, got, want)
		}
	}
}

func TestLogBinomialInvalid(t *testing.T) {
	if !math.IsInf(LogBinomial(5, -1), -1) || !math.IsInf(LogBinomial(5, 6), -1) {
		t.Error("invalid arguments should give -Inf")
	}
}

func TestRelationEntropyMatchesDirect(t *testing.T) {
	// H for a binary relation over n=4 with m=3: log2 C(16,3) = log2 560.
	got := RelationEntropy(4, 2, 3)
	want := math.Log2(560)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("H = %v, want %v", got, want)
	}
}

func TestRelationEntropyScale(t *testing.T) {
	// For m ≪ n^a, H ≈ m·log2(n^a/m) + O(m): check the paper's
	// log C(n^a, m) ≥ m(a−δ)log n estimate with m = n^δ.
	n, a, delta := 1024.0, 2.0, 1.0
	m := math.Pow(n, delta)
	h := RelationEntropy(n, int(a), m)
	lower := m * (a - delta) * math.Log2(n)
	if h < lower {
		t.Errorf("H = %v below the paper's estimate %v", h, lower)
	}
}

func TestLemmaA3ExplicitCases(t *testing.T) {
	cases := []struct{ n, m, k float64 }{
		{1000, 100, 10},
		{1000, 100, 100}, // k = m
		{1 << 20, 4096, 64},
		{100, 50, 1}, // m = N/2 boundary
	}
	for _, c := range cases {
		if !LemmaA3Holds(c.n, c.m, c.k) {
			t.Errorf("Lemma A.3 fails at N=%v m=%v k=%v: %v > %v",
				c.n, c.m, c.k, LemmaA3LHS(c.n, c.m, c.k), LemmaA3RHS(c.n, c.m, c.k))
		}
	}
}

func TestLemmaA3Property(t *testing.T) {
	// Random parameter triples within the hypotheses.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		bigN := float64(100 + rng.Intn(1<<20))
		m := float64(1 + rng.Intn(int(bigN/2)))
		k := float64(rng.Intn(int(m + 1)))
		return LemmaA3Holds(bigN, m, k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLemmaA3OutsideHypotheses(t *testing.T) {
	// Outside the hypotheses the checker reports true (lemma says nothing).
	if !LemmaA3Holds(100, 80, 5) { // m > N/2
		t.Error("outside-hypothesis case should pass vacuously")
	}
}

func TestKnowledgeBound(t *testing.T) {
	// f = 1 (the whole relation): bound (log2 e + 1)·m ≥ m, consistent
	// with knowing everything.
	m := 1000.0
	if KnowledgeBound(1, m) < m {
		t.Error("full-message bound must allow knowing all tuples")
	}
	// Linear in f.
	if math.Abs(KnowledgeBound(0.5, m)*2-KnowledgeBound(1, m)) > 1e-9 {
		t.Error("bound should be linear in f")
	}
}

func TestMessageFraction(t *testing.T) {
	// Receiving the C0-discounted full size is fraction 1.
	mBits := 10000.0
	got := MessageFraction(mBits/2, mBits, 2, 1) // C0 = 1/2
	if math.Abs(got-1) > 1e-12 {
		t.Errorf("fraction = %v, want 1", got)
	}
}

func TestMessageFractionPanics(t *testing.T) {
	for _, delta := range []float64{0, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			MessageFraction(1, 1, 2, delta)
		}()
	}
}

func TestConstantC(t *testing.T) {
	if math.Abs(C-(math.Log2E+1)) > 1e-15 {
		t.Error("C drifted")
	}
}
