package lp

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/rational"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func TestSolveSimpleMin(t *testing.T) {
	// minimize x + y s.t. x + y >= 2, x >= 0, y >= 0 -> optimum 2.
	p := NewProblem(2)
	p.Objective = rational.VectorFromInts(1, 1)
	p.AddConstraint(rational.VectorFromInts(1, 1), GE, rat(2, 1))
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if s.Objective.Cmp(rat(2, 1)) != 0 {
		t.Errorf("objective = %v, want 2", s.Objective)
	}
}

func TestSolveSimpleMax(t *testing.T) {
	// maximize 3x + 2y s.t. x + y <= 4, x <= 2 -> x=2, y=2, obj=10.
	p := NewProblem(2)
	p.Objective = rational.VectorFromInts(3, 2)
	p.Maximize = true
	p.AddConstraint(rational.VectorFromInts(1, 1), LE, rat(4, 1))
	p.AddConstraint(rational.VectorFromInts(1, 0), LE, rat(2, 1))
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if s.Objective.Cmp(rat(10, 1)) != 0 {
		t.Errorf("objective = %v, want 10", s.Objective)
	}
	if s.X[0].Cmp(rat(2, 1)) != 0 || s.X[1].Cmp(rat(2, 1)) != 0 {
		t.Errorf("X = %v, want (2,2)", s.X)
	}
}

func TestSolveEquality(t *testing.T) {
	// minimize x + 2y s.t. x + y = 3, x <= 1 -> x=1, y=2, obj=5.
	p := NewProblem(2)
	p.Objective = rational.VectorFromInts(1, 2)
	p.AddConstraint(rational.VectorFromInts(1, 1), EQ, rat(3, 1))
	p.AddConstraint(rational.VectorFromInts(1, 0), LE, rat(1, 1))
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if s.Objective.Cmp(rat(5, 1)) != 0 {
		t.Errorf("objective = %v, want 5", s.Objective)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x >= 2 and x <= 1 is infeasible.
	p := NewProblem(1)
	p.Objective = rational.VectorFromInts(1)
	p.AddConstraint(rational.VectorFromInts(1), GE, rat(2, 1))
	p.AddConstraint(rational.VectorFromInts(1), LE, rat(1, 1))
	if s := p.Solve(); s.Status != Infeasible {
		t.Errorf("status = %v, want infeasible", s.Status)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// maximize x with no upper bound.
	p := NewProblem(1)
	p.Objective = rational.VectorFromInts(1)
	p.Maximize = true
	p.AddConstraint(rational.VectorFromInts(1), GE, rat(0, 1))
	if s := p.Solve(); s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestSolveMinimizationUnboundedBelowViaNegativeDirection(t *testing.T) {
	// minimize x - y s.t. x <= 1: y can grow without bound -> unbounded.
	p := NewProblem(2)
	p.Objective = rational.VectorFromInts(1, -1)
	p.AddConstraint(rational.VectorFromInts(1, 0), LE, rat(1, 1))
	if s := p.Solve(); s.Status != Unbounded {
		t.Errorf("status = %v, want unbounded", s.Status)
	}
}

func TestSolveNegativeRHSNormalization(t *testing.T) {
	// -x <= -3 means x >= 3; minimize x -> 3.
	p := NewProblem(1)
	p.Objective = rational.VectorFromInts(1)
	p.AddConstraint(rational.VectorFromInts(-1), LE, rat(-3, 1))
	s := p.Solve()
	if s.Status != Optimal || s.Objective.Cmp(rat(3, 1)) != 0 {
		t.Errorf("got %v obj=%v, want optimal 3", s.Status, s.Objective)
	}
}

func TestSolveDegenerateNoCycle(t *testing.T) {
	// A classically degenerate LP; Bland's rule must terminate.
	// minimize -3/4 x1 + 150 x2 - 1/50 x3 + 6 x4 (Beale's example)
	p := NewProblem(4)
	p.Objective = rational.Vector{rat(-3, 4), rat(150, 1), rat(-1, 50), rat(6, 1)}
	p.AddConstraint(rational.Vector{rat(1, 4), rat(-60, 1), rat(-1, 25), rat(9, 1)}, LE, rat(0, 1))
	p.AddConstraint(rational.Vector{rat(1, 2), rat(-90, 1), rat(-1, 50), rat(3, 1)}, LE, rat(0, 1))
	p.AddConstraint(rational.Vector{rat(0, 1), rat(0, 1), rat(1, 1), rat(0, 1)}, LE, rat(1, 1))
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if s.Objective.Cmp(rat(-1, 20)) != 0 {
		t.Errorf("objective = %v, want -1/20", s.Objective)
	}
}

func TestSolveRedundantEqualities(t *testing.T) {
	// x + y = 2 stated twice; phase 1 must drop the redundant row.
	p := NewProblem(2)
	p.Objective = rational.VectorFromInts(1, 0)
	p.AddConstraint(rational.VectorFromInts(1, 1), EQ, rat(2, 1))
	p.AddConstraint(rational.VectorFromInts(1, 1), EQ, rat(2, 1))
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if s.Objective.Sign() != 0 {
		t.Errorf("objective = %v, want 0 (x can be 0)", s.Objective)
	}
}

// The share-exponent LP (5) from the paper for the triangle query with equal
// cardinalities: minimize λ s.t. e1+e2+e3 <= 1, λ + e_i + e_j >= μ for each
// edge. With μ = 1 the optimum is λ = 1/3 at e = (1/3,1/3,1/3).
func TestSolveTriangleShareLP(t *testing.T) {
	p := NewProblem(4) // e1,e2,e3,λ
	p.Objective = rational.VectorFromInts(0, 0, 0, 1)
	p.AddConstraint(rational.VectorFromInts(1, 1, 1, 0), LE, rat(1, 1))
	mu := rat(1, 1)
	p.AddConstraint(rational.VectorFromInts(1, 1, 0, 1), GE, mu)
	p.AddConstraint(rational.VectorFromInts(0, 1, 1, 1), GE, mu)
	p.AddConstraint(rational.VectorFromInts(1, 0, 1, 1), GE, mu)
	s := p.Solve()
	if s.Status != Optimal {
		t.Fatalf("status = %v", s.Status)
	}
	if s.Objective.Cmp(rat(1, 3)) != 0 {
		t.Errorf("λ = %v, want 1/3", s.Objective)
	}
}

func TestAddConstraintArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	p := NewProblem(2)
	p.AddConstraint(rational.VectorFromInts(1), LE, rat(1, 1))
}

func TestStatusAndRelStrings(t *testing.T) {
	if Optimal.String() != "optimal" || Infeasible.String() != "infeasible" || Unbounded.String() != "unbounded" {
		t.Error("Status strings wrong")
	}
	if LE.String() != "<=" || GE.String() != ">=" || EQ.String() != "=" {
		t.Error("Rel strings wrong")
	}
	if Status(99).String() != "unknown" || Rel(99).String() != "?" {
		t.Error("fallback strings wrong")
	}
}

func TestEnumerateVerticesUnitSquare(t *testing.T) {
	// x <= 1, y <= 1, x,y >= 0: vertices are the 4 corners.
	a := rational.MatrixFromRows(rational.VectorFromInts(1, 0), rational.VectorFromInts(0, 1))
	b := rational.VectorFromInts(1, 1)
	vs := EnumerateVertices(a, b)
	if len(vs) != 4 {
		t.Fatalf("got %d vertices, want 4: %v", len(vs), vs)
	}
}

func TestEnumerateVerticesSimplex(t *testing.T) {
	// x + y + z <= 1: vertices are origin and 3 unit points.
	a := rational.MatrixFromRows(rational.VectorFromInts(1, 1, 1))
	b := rational.VectorFromInts(1)
	vs := EnumerateVertices(a, b)
	if len(vs) != 4 {
		t.Fatalf("got %d vertices, want 4: %v", len(vs), vs)
	}
}

func TestEnumerateVerticesTrianglePacking(t *testing.T) {
	// Packing polytope of C3: u1+u2<=1, u2+u3<=1, u1+u3<=1, u>=0.
	// Vertices: 0, three unit vectors, three (1,0,... pairs?) Let's check:
	// known vertex set: (0,0,0),(1,0,0),(0,1,0),(0,0,1),(1/2,1/2,1/2).
	a := rational.MatrixFromRows(
		rational.VectorFromInts(1, 1, 0),
		rational.VectorFromInts(0, 1, 1),
		rational.VectorFromInts(1, 0, 1),
	)
	b := rational.VectorFromInts(1, 1, 1)
	vs := EnumerateVertices(a, b)
	if len(vs) != 5 {
		t.Fatalf("got %d vertices, want 5: %v", len(vs), vs)
	}
	half := rational.Vector{rat(1, 2), rat(1, 2), rat(1, 2)}
	found := false
	for _, v := range vs {
		if v.Equal(half) {
			found = true
		}
	}
	if !found {
		t.Errorf("missing (1/2,1/2,1/2) vertex in %v", vs)
	}
}

func TestMaximizeOverVertices(t *testing.T) {
	vs := []rational.Vector{
		rational.VectorFromInts(0, 0),
		rational.VectorFromInts(1, 0),
		rational.VectorFromInts(0, 1),
	}
	v, val := MaximizeOverVertices(vs, rational.VectorFromInts(2, 3))
	if val.Cmp(rat(3, 1)) != 0 || !v.Equal(rational.VectorFromInts(0, 1)) {
		t.Errorf("got %v val=%v", v, val)
	}
}

// Property: for random small LPs, the simplex optimum (when optimal) is at
// least as good as every vertex enumerated from the same constraint set.
func TestSimplexMatchesVertexEnumerationProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(3)
		m := 1 + r.Intn(3)
		a := rational.NewMatrix(m, n)
		b := rational.NewVector(m)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.SetInt(i, j, int64(r.Intn(3))) // nonneg rows keep it bounded-ish
			}
			b[i].SetInt64(int64(1 + r.Intn(5)))
		}
		obj := rational.NewVector(n)
		for j := 0; j < n; j++ {
			obj[j].SetInt64(int64(r.Intn(5)))
		}
		// Ensure boundedness: add sum x_i <= 10.
		p := NewProblem(n)
		p.Objective = obj
		p.Maximize = true
		for i := 0; i < m; i++ {
			p.AddConstraint(a.Row(i), LE, b[i])
		}
		ones := rational.NewVector(n)
		for j := range ones {
			ones[j].SetInt64(1)
		}
		p.AddConstraint(ones, LE, rat(10, 1))

		full := rational.NewMatrix(m+1, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				full.Set(i, j, a.At(i, j))
			}
		}
		for j := 0; j < n; j++ {
			full.SetInt(m, j, 1)
		}
		fb := append(b.Clone(), rat(10, 1))

		s := p.Solve()
		if s.Status != Optimal {
			return true
		}
		vs := EnumerateVertices(full, fb)
		for _, v := range vs {
			if obj.Dot(v).Cmp(s.Objective) > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
