package core

import (
	"fmt"
	"testing"

	"repro/internal/join"
	"repro/internal/query"
	"repro/internal/workload"
)

// TestPlanCacheHitSkipsReplanning is the cache-hit contract: repeated
// Execute on unchanged (query, db, p) reuses the cached physical plan —
// the second call must register a hit, not a second miss — and returns
// identical answers.
func TestPlanCacheHitSkipsReplanning(t *testing.T) {
	q := query.Join2()
	db := db2(
		workload.Zipf("S1", 600, 100000, 1, 1.8, 100, 4),
		workload.Zipf("S2", 600, 100000, 1, 1.8, 100, 5),
	)
	e := NewEngine(16, 9)
	first := e.Execute(q, db)
	if hits, misses := e.CacheStats(); hits != 0 || misses != 1 {
		t.Fatalf("after first Execute: hits=%d misses=%d, want 0/1", hits, misses)
	}
	second := e.Execute(q, db)
	if hits, misses := e.CacheStats(); hits != 1 || misses != 1 {
		t.Fatalf("after second Execute: hits=%d misses=%d, want 1/1", hits, misses)
	}
	if !join.EqualTupleSets(first.Output, second.Output) {
		t.Error("cached plan produced different answers")
	}
	if first.Plan.Strategy != second.Plan.Strategy {
		t.Error("cached plan changed strategy")
	}
}

// TestPlanCacheMissOnChange: mutating the database content, changing the
// query, or forcing a different strategy must all bypass the cached entry.
func TestPlanCacheMissOnChange(t *testing.T) {
	q := query.Join2()
	db := db2(
		workload.Matching("S1", 2, 300, 100000, 1),
		workload.Matching("S2", 2, 300, 100000, 2),
	)
	e := NewEngine(8, 1)
	e.Execute(q, db)

	// Same shape, different content: the fingerprint must differ.
	db.MustGet("S1").Add(42, 99)
	e.Execute(q, db)
	if hits, misses := e.CacheStats(); hits != 0 || misses != 2 {
		t.Errorf("after db mutation: hits=%d misses=%d, want 0/2", hits, misses)
	}

	// Different query text (renamed head variables keep the same semantics
	// but a different canonical form — conservative misses are fine).
	e.Execute(query.MustParse("q(a,b,c) = S1(a,c), S2(b,c)"), db)
	if hits, misses := e.CacheStats(); hits != 0 || misses != 3 {
		t.Errorf("after query change: hits=%d misses=%d, want 0/3", hits, misses)
	}

	// A forced strategy is part of the key.
	force := BinCombination
	e.ForceStrategy = &force
	e.Execute(q, db)
	if hits, misses := e.CacheStats(); hits != 0 || misses != 4 {
		t.Errorf("after forcing strategy: hits=%d misses=%d, want 0/4", hits, misses)
	}
	e.ForceStrategy = nil

	// So is the hash seed: a reseeded engine must not reuse old routing.
	e.Seed = 99
	e.Execute(q, db)
	if hits, misses := e.CacheStats(); hits != 0 || misses != 5 {
		t.Errorf("after reseeding: hits=%d misses=%d, want 0/5", hits, misses)
	}
	e.Seed = 1

	// And the original (query, db) entries are still live.
	e.Execute(q, db)
	if hits, _ := e.CacheStats(); hits != 1 {
		t.Errorf("original entry evicted: hits=%d, want 1", hits)
	}
}

func TestPlanCacheDisable(t *testing.T) {
	q := query.Join2()
	db := db2(
		workload.Matching("S1", 2, 200, 100000, 1),
		workload.Matching("S2", 2, 200, 100000, 2),
	)
	e := NewEngine(8, 1)
	e.DisablePlanCache = true
	e.Execute(q, db)
	e.Execute(q, db)
	if hits, misses := e.CacheStats(); hits != 0 || misses != 0 {
		t.Errorf("disabled cache still counting: hits=%d misses=%d", hits, misses)
	}
}

func TestClearPlanCache(t *testing.T) {
	q := query.Join2()
	db := db2(
		workload.Matching("S1", 2, 200, 100000, 1),
		workload.Matching("S2", 2, 200, 100000, 2),
	)
	e := NewEngine(8, 1)
	e.Execute(q, db)
	e.ClearPlanCache()
	if hits, misses := e.CacheStats(); hits != 0 || misses != 0 {
		t.Errorf("counters survive clear: hits=%d misses=%d", hits, misses)
	}
	e.Execute(q, db)
	if hits, misses := e.CacheStats(); hits != 0 || misses != 1 {
		t.Errorf("cache not rebuilt after clear: hits=%d misses=%d", hits, misses)
	}
}

// TestExecuteConcurrentSharedEngine exercises the cache under concurrent
// Execute calls on one engine (the production serving pattern): same
// answers from every goroutine and no data races (run under -race).
func TestExecuteConcurrentSharedEngine(t *testing.T) {
	q := query.Join2()
	db := db2(
		workload.Zipf("S1", 400, 100000, 1, 1.8, 80, 4),
		workload.Zipf("S2", 400, 100000, 1, 1.8, 80, 5),
	)
	e := NewEngine(16, 9)
	want := join.Join(q, join.FromDatabase(db))
	const workers = 4
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			res := e.Execute(q, db)
			if !join.EqualTupleSets(res.Output, want) {
				errs <- fmt.Errorf("concurrent Execute: %d tuples, want %d", len(res.Output), len(want))
				return
			}
			errs <- nil
		}()
	}
	for w := 0; w < workers; w++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
	if hits, misses := e.CacheStats(); hits+misses != workers {
		t.Errorf("hits+misses = %d, want %d", hits+misses, workers)
	}
}
