package stats

import "repro/internal/data"

// HeavyWatch detects when a mutating workload grows a *new* heavy hitter
// past the §4.1 threshold after a plan froze its heavy sets. The skew-aware
// routers fix, at plan time, which values route through dedicated server
// grids; a value that later crosses m/p would keep routing light — still
// correct (equal values still meet), but with the per-server load guarantee
// of Theorems 4.2/4.9 silently void. Standing queries feed every delta
// operation through the watch and reseed from a fresh plan the moment a new
// heavy hitter appears, rather than keep routing with a stale grid.
//
// The watch maintains its *own* per-attribute frequency counts, seeded from
// the snapshot it was built on and advanced by Note — it never reads the
// database after construction, so standing-query advances consult it
// without holding any database lock while Apply churns the master's
// maintained statistics.
//
// The watch covers single attributes only — per-variable frequencies — so a
// value combination over ≥2 attributes crossing the threshold is not
// detected here; the drift-based replan heuristics remain the backstop for
// that (documented limitation).
type HeavyWatch struct {
	rels map[string]*relWatch
}

type relWatch struct {
	// threshold is the plan-time m/p. It is deliberately frozen with the
	// heavy sets: the plan's grids were sized against it, so crossing *it*
	// is what invalidates the plan, not crossing the drifting current m/p.
	threshold int64
	// heavy[a] holds the values of attribute a that the plan already
	// treats as heavy (routes through grids); only values outside it can
	// newly invalidate.
	heavy []map[int64]bool
	// counts[a] is the watch's own value → frequency map of attribute a,
	// advanced by Note so heaviness checks need no database access.
	counts []map[int64]int64
}

// NewHeavyWatch snapshots the heavy sets and frequency counts of the named
// relations of db at threshold m/p. Build it from a consistent snapshot
// (data.Database.Snapshot) — the watch copies what it needs and never reads
// db again.
func NewHeavyWatch(db *data.Database, names []string, p int) *HeavyWatch {
	w := &HeavyWatch{rels: make(map[string]*relWatch, len(names))}
	for _, name := range names {
		r := db.Relations[name]
		if r == nil {
			continue
		}
		rw := &relWatch{
			threshold: int64(r.Size()) / int64(p),
			heavy:     make([]map[int64]bool, r.Arity),
			counts:    make([]map[int64]int64, r.Arity),
		}
		for a := 0; a < r.Arity; a++ {
			f := Frequencies(r, []int{a})
			hs := make(map[int64]bool)
			counts := make(map[int64]int64, len(f.Counts))
			for k, c := range f.Counts {
				counts[k.At(0)] = c
				if c > rw.threshold {
					hs[k.At(0)] = true
				}
			}
			rw.heavy[a] = hs
			rw.counts[a] = counts
		}
		w.rels[name] = rw
	}
	return w
}

// Note folds one delta operation into the watch's maintained counts and
// reports whether it made some attribute value heavy that the plan treats
// as light: its maintained frequency now exceeds the plan-time threshold
// and it was not in the snapshot's heavy set. Deletes maintain counts and
// never report heavy. Every operation consumed by a standing advance must
// pass through Note exactly once, in order, so the counts track the
// database; O(arity) map probes per call, no locks. Relations the watch
// does not cover — not named at construction — never report heavy.
func (w *HeavyWatch) Note(rel string, vals []int64, insert bool) bool {
	rw := w.rels[rel]
	if rw == nil || len(vals) != len(rw.heavy) {
		return false
	}
	newHeavy := false
	for a, v := range vals {
		if insert {
			c := rw.counts[a][v] + 1
			rw.counts[a][v] = c
			if c > rw.threshold && !rw.heavy[a][v] {
				newHeavy = true
			}
		} else {
			if c := rw.counts[a][v] - 1; c <= 0 {
				delete(rw.counts[a], v)
			} else {
				rw.counts[a][v] = c
			}
		}
	}
	return newHeavy
}
