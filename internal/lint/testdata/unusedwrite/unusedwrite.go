// Package p distills straight-line dead stores against the control-flow
// and aliasing shapes the checker must not flag.
package p

// DeadStore overwrites x before any read.
func DeadStore(a, b int) int {
	x := 0
	x = a // want `value written to "x" is overwritten`
	x = b
	return x
}

// ReadBetween reads the first write: never flagged.
func ReadBetween(a, b int) (int, int) {
	x := a
	x = a + 1
	y := x
	x = b
	return x, y
}

// BranchedStore may be read on the other path: never flagged.
func BranchedStore(a, b int, cond bool) int {
	x := a
	if cond {
		return x
	}
	x = b
	return x
}

// AddressTaken writes through an alias between stores: never flagged.
func AddressTaken(a, b int) int {
	x := 0
	p := &x
	x = a
	*p = 0
	x = b
	return x
}

// Captured is written by a closure between stores: never flagged.
func Captured(a, b int) int {
	x := 0
	bump := func() { x++ }
	x = a
	bump()
	x = b
	return x
}
