package stats

import "repro/internal/data"

// HeavyWatch detects when a mutating workload grows a *new* heavy hitter
// past the §4.1 threshold after a plan froze its heavy sets. The skew-aware
// routers fix, at plan time, which values route through dedicated server
// grids; a value that later crosses m/p would keep routing light — still
// correct (equal values still meet), but with the per-server load guarantee
// of Theorems 4.2/4.9 silently void. Standing queries consult the watch on
// every inserted delta tuple and reseed from a fresh plan the moment a new
// heavy hitter appears, rather than keep routing with a stale grid.
//
// The watch covers single attributes only — the per-variable frequency maps
// Database.Apply maintains incrementally — so a value combination over ≥2
// attributes crossing the threshold is not detected here; the drift-based
// replan heuristics remain the backstop for that (documented limitation).
type HeavyWatch struct {
	rels map[string]*relWatch
}

type relWatch struct {
	// threshold is the plan-time m/p. It is deliberately frozen with the
	// heavy sets: the plan's grids were sized against it, so crossing *it*
	// is what invalidates the plan, not crossing the drifting current m/p.
	threshold int64
	// heavy[a] holds the values of attribute a that the plan already
	// treats as heavy (routes through grids); only values outside it can
	// newly invalidate.
	heavy []map[int64]bool
}

// NewHeavyWatch snapshots the heavy sets of the named relations of db at
// threshold m/p. The caller must hold db's read lock (or otherwise exclude
// Apply).
func NewHeavyWatch(db *data.Database, names []string, p int) *HeavyWatch {
	w := &HeavyWatch{rels: make(map[string]*relWatch, len(names))}
	for _, name := range names {
		r := db.Relations[name]
		if r == nil {
			continue
		}
		rw := &relWatch{
			threshold: int64(r.Size()) / int64(p),
			heavy:     make([]map[int64]bool, r.Arity),
		}
		for a := 0; a < r.Arity; a++ {
			f := Frequencies(r, []int{a})
			hs := make(map[int64]bool)
			for k, c := range f.Counts {
				if c > rw.threshold {
					hs[k.At(0)] = true
				}
			}
			rw.heavy[a] = hs
		}
		w.rels[name] = rw
	}
	return w
}

// NewHeavy reports whether inserting vals into rel made some attribute
// value heavy that the plan treats as light: its maintained current
// frequency exceeds the plan-time threshold and it was not in the
// snapshot's heavy set. The caller must hold db's read lock and call this
// *after* the insert has been applied (Database.Apply maintains the
// per-attribute counts the check reads, so it costs O(arity) map probes).
// Relations the watch does not cover — not named at construction — never
// report heavy.
func (w *HeavyWatch) NewHeavy(db *data.Database, rel string, vals []int64) bool {
	rw := w.rels[rel]
	if rw == nil {
		return false
	}
	r := db.Relations[rel]
	if r == nil || len(vals) != len(rw.heavy) {
		return false
	}
	for a, v := range vals {
		if rw.heavy[a][v] {
			continue
		}
		counts := r.AttrCounts(a)
		if counts == nil {
			// Maintenance not enabled: the relation has never been through
			// Apply, so its content cannot have drifted from the snapshot.
			continue
		}
		if counts[v] > rw.threshold {
			return true
		}
	}
	return false
}
