// Package data stores relation instances over an integer domain [n] and
// accounts their size in bits, matching the paper's convention
// M_j = a_j · m_j · log n for a relation with arity a_j and m_j tuples.
//
// Storage is columnar: one []int64 per attribute. Routers hash only the
// join columns, local joins scan only the attributes they touch, and the
// simulator's communication phase ships column slices — row views exist
// only at the edges (tests, debug output, reference algorithms).
package data

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Tuple is one row of a relation; len(Tuple) is the relation's arity.
type Tuple []int64

// Key renders a tuple as a compact map key. It allocates; hot paths use
// KeyOf instead and keep Key() for error/debug formatting only.
func (t Tuple) Key() string {
	var b strings.Builder
	for i, v := range t {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", v)
	}
	return b.String()
}

// keyInline is the arity up to which Key stores values inline without
// allocating. Base relations in this repository have arity ≤ 3 and
// attribute subsets are no wider; the overflow path exists so that wide
// intermediate relations (multi-round plans) stay correct.
const keyInline = 8

// Key is a comparable, allocation-free rendering of a tuple for use as a
// map key: values up to keyInline are stored inline, wider tuples spill
// the remainder into a packed string (one allocation, still comparable).
// The zero Key is the key of the empty tuple.
type Key struct {
	v        [keyInline]int64
	n        int32
	overflow string
}

// KeyOf returns the map key of vals. It never allocates for
// len(vals) ≤ keyInline.
func KeyOf(vals []int64) Key {
	k := Key{n: int32(len(vals))}
	if len(vals) <= keyInline {
		copy(k.v[:], vals)
		return k
	}
	copy(k.v[:], vals[:keyInline])
	var sb strings.Builder
	sb.Grow((len(vals) - keyInline) * 8)
	for _, v := range vals[keyInline:] {
		u := uint64(v)
		sb.Write([]byte{
			byte(u >> 56), byte(u >> 48), byte(u >> 40), byte(u >> 32),
			byte(u >> 24), byte(u >> 16), byte(u >> 8), byte(u),
		})
	}
	k.overflow = sb.String()
	return k
}

// Key1 is KeyOf for a single value — the hot single-attribute case.
func Key1(v int64) Key {
	k := Key{n: 1}
	k.v[0] = v
	return k
}

// Len returns the arity of the keyed tuple.
func (k Key) Len() int { return int(k.n) }

// At returns the i-th value of the keyed tuple.
func (k Key) At(i int) int64 {
	if i < keyInline {
		return k.v[i]
	}
	off := (i - keyInline) * 8
	var u uint64
	for b := 0; b < 8; b++ {
		u = u<<8 | uint64(k.overflow[off+b])
	}
	return int64(u)
}

// Tuple materializes the keyed tuple.
func (k Key) Tuple() Tuple {
	t := make(Tuple, k.n)
	for i := range t {
		t[i] = k.At(i)
	}
	return t
}

// Less orders keys by their value sequences (shorter prefixes first).
func (k Key) Less(o Key) bool {
	n := int(k.n)
	if int(o.n) < n {
		n = int(o.n)
	}
	for i := 0; i < n; i++ {
		a, b := k.At(i), o.At(i)
		if a != b {
			return a < b
		}
	}
	return k.n < o.n
}

// String renders the key like Tuple.Key (debug only).
func (k Key) String() string { return k.Tuple().Key() }

// BitsPerValue returns ⌈log₂ n⌉ (minimum 1), the bits needed to encode one
// value from a domain of size n.
func BitsPerValue(domain int64) int {
	if domain <= 1 {
		return 1
	}
	return bits.Len64(uint64(domain - 1))
}

// fnvOffset and fnvPrime are the 64-bit FNV-1a parameters of the per-tuple
// content hash (shared with stats.Fingerprint — the two must agree so the
// maintained content sum reproduces the scanned fingerprint exactly).
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// mix64 is the splitmix64 finalizer, duplicated from internal/hashing
// (which imports this package, so the dependency cannot point the other
// way). The constants must match hashing.Mix64 bit for bit: the maintained
// content sums below must equal the sums stats.Fingerprint historically
// computed by scanning.
func mix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Maintained-state flag bits (Relation.track).
const (
	// trackContent: contentSum mirrors the commutative fold of per-tuple
	// hashes, so fingerprints stop scanning this relation.
	trackContent uint32 = 1 << iota
	// trackStats: attrFreq (per-attribute value frequencies) and index
	// (tuple → row) are maintained, enabling O(delta) Database.Apply and
	// O(distinct) single-attribute statistics.
	trackStats
)

// Relation is a named multiset-free relation instance S_j ⊆ [domain]^arity,
// stored column-wise: cols[a][i] is attribute a of tuple i. Duplicate
// insertion is the caller's responsibility to avoid (generators never
// produce duplicates; AddUnique enforces it when needed).
//
// A relation lazily maintains serving state — a reversible content-hash sum
// (ContentSum), per-attribute value frequencies, and a tuple index — once a
// fingerprint or a Database.Apply first touches it. Maintenance must not be
// enabled concurrently with mutation: the serving path orders them through
// the Database lock (Apply writes under Lock, executions read under RLock).
type Relation struct {
	Name   string
	Arity  int
	Domain int64
	cols   [][]int64
	rows   int

	// gen counts mutations; snapshot views record the gen they froze so
	// Database.Snapshot can tell whether a published view is still current.
	gen uint64
	// frozen is the published high-water mark of the current column
	// backing: rows [0, frozen) are visible to live snapshot views sharing
	// this backing, so interior mutation below frozen must copy the columns
	// first (unshare). Appends always land at indexes ≥ frozen and never
	// need the copy.
	frozen int
	// viewOf/viewGen identify a snapshot view: the master relation it
	// froze and that master's gen at freeze time. Nil/0 on masters.
	viewOf  *Relation
	viewGen uint64

	// part is the heavy-partition layout index (see partition.go), nil when
	// unpartitioned. It is immutable and replaced wholesale, so snapshot
	// views share the pointer. partCheckedGen records the gen at which
	// EnsurePartitioned last validated the layout, making repeated serving
	// checks O(1) between mutations.
	part           *PartitionIndex
	partCheckedGen uint64

	// track holds the maintained-state flag bits; mutators check it with
	// one atomic load so untracked relations (server fragments, join
	// outputs — the communication hot path) pay nothing else.
	track atomic.Uint32
	// trackMu guards lazy initialization of the maintained state.
	trackMu    sync.Mutex
	contentSum uint64
	attrFreq   []map[int64]int64
	index      map[Key]int
}

// view returns an immutable snapshot view of the relation's current rows,
// sharing the column backing: each view column is a capacity-clamped slice
// of the master's, so master appends beyond the frozen prefix are invisible
// to the view and reallocate rather than overwrite. The master's frozen
// mark advances to the current row count, which is what makes later
// interior mutation (removeRow's swap, below frozen) copy first. The view
// inherits the maintained content sum (fingerprints stay O(relations));
// frequency maps and the tuple index stay master-only — they mutate in
// place under Apply and cannot be shared with concurrent readers.
func (r *Relation) view() *Relation {
	v := &Relation{
		Name: r.Name, Arity: r.Arity, Domain: r.Domain,
		cols: make([][]int64, len(r.cols)), rows: r.rows,
		viewOf: r, viewGen: r.gen,
	}
	for a, col := range r.cols {
		v.cols[a] = col[:r.rows:r.rows]
	}
	// The partition index covers a prefix of the frozen rows and never
	// mutates, so the view shares it; if the master later invalidates or
	// replaces its own index, the view's copy stays valid for the view's
	// immutable rows.
	v.part = r.part
	if r.track.Load()&trackContent != 0 {
		v.contentSum = r.contentSum
		v.track.Store(trackContent)
	}
	r.frozen = r.rows
	return v
}

// unshare copies every column onto fresh backing, detaching the relation
// from any snapshot views that froze the current arrays. Called before the
// first interior write below the frozen mark.
func (r *Relation) unshare() {
	for a := range r.cols {
		c := make([]int64, r.rows)
		copy(c, r.cols[a][:r.rows])
		r.cols[a] = c
	}
	r.frozen = 0
}

// rowHash is the per-tuple content hash Fingerprint folds: FNV-1a over the
// row's values, avalanched. Summing it over rows (mod 2^64) is reversible,
// which is what makes delta maintenance O(delta).
func (r *Relation) rowHash(i int) uint64 {
	th := fnvOffset
	for _, col := range r.cols {
		th = (th ^ uint64(col[i])) * fnvPrime
	}
	return mix64(th)
}

// ContentSum returns the commutative fold (sum mod 2^64) of the avalanched
// per-tuple hashes — the per-relation term of stats.Fingerprint. The first
// call scans the relation and enables incremental maintenance: subsequent
// mutations update the sum per tuple, so fingerprinting a served database
// costs O(relations), not O(tuples). Concurrent ContentSum calls are safe;
// callers must not mutate the relation concurrently (the serving path
// excludes that via the Database lock).
func (r *Relation) ContentSum() uint64 {
	if r.track.Load()&trackContent != 0 {
		return r.contentSum
	}
	r.trackMu.Lock()
	defer r.trackMu.Unlock()
	if r.track.Load()&trackContent != 0 {
		return r.contentSum
	}
	var sum uint64
	for i := 0; i < r.rows; i++ {
		sum += r.rowHash(i)
	}
	r.contentSum = sum
	r.track.Store(r.track.Load() | trackContent)
	return sum
}

// enableStats builds the per-attribute frequency maps and the tuple index
// (and the content sum, sharing the same scan), enabling O(delta) Apply and
// O(distinct) single-attribute statistics. It errors on a duplicate tuple:
// delta semantics (delete one occurrence, reject duplicate inserts) need
// duplicate-free relations, which every generator in this repository
// produces.
func (r *Relation) enableStats() error {
	if r.track.Load()&trackStats != 0 {
		return nil
	}
	r.trackMu.Lock()
	defer r.trackMu.Unlock()
	if r.track.Load()&trackStats != 0 {
		return nil
	}
	freq := make([]map[int64]int64, r.Arity)
	for a := range freq {
		freq[a] = make(map[int64]int64)
	}
	index := make(map[Key]int, r.rows)
	var sum uint64
	for i := 0; i < r.rows; i++ {
		k := r.KeyAt(i)
		if _, dup := index[k]; dup {
			return fmt.Errorf("data: %s: duplicate tuple %v: deltas require duplicate-free relations", r.Name, k.Tuple())
		}
		index[k] = i
		for a, col := range r.cols {
			freq[a][col[i]]++
		}
		sum += r.rowHash(i)
	}
	r.attrFreq, r.index = freq, index
	r.contentSum = sum
	r.track.Store(r.track.Load() | trackContent | trackStats)
	return nil
}

// AttrCounts returns the maintained frequency map of attribute a (value →
// count), or nil when serving statistics are not being maintained for this
// relation. The map is live internal state: read-only, and only valid while
// the relation is not mutated.
func (r *Relation) AttrCounts(a int) map[int64]int64 {
	if r.track.Load()&trackStats == 0 {
		return nil
	}
	return r.attrFreq[a]
}

// noteAppended folds row i (just appended) into the maintained state.
func (r *Relation) noteAppended(i int) {
	t := r.track.Load()
	if t&trackContent != 0 {
		r.contentSum += r.rowHash(i)
	}
	if t&trackStats != 0 {
		for a, col := range r.cols {
			r.attrFreq[a][col[i]]++
		}
		r.index[r.KeyAt(i)] = i
	}
}

// removeRow deletes row i by swapping in the last row (tuple order carries
// no meaning anywhere: routing is per-tuple and fingerprints are
// order-independent), maintaining whatever serving state is enabled.
func (r *Relation) removeRow(i int) {
	// The swap writes into row i (and the truncation drops the last row,
	// which stays ≥ the frozen mark); if row i is visible to a published
	// snapshot view sharing this backing, copy the columns first.
	if i < r.frozen {
		r.unshare()
	}
	// A delete below the partition-covered prefix breaks the layout (the
	// swap pulls an arbitrary row into a heavy run); deletes in the
	// uncovered tail swap tail rows among themselves and keep it. The next
	// EnsurePartitioned rebuilds lazily.
	if r.part != nil && i < r.part.Rows {
		r.part = nil
	}
	r.gen++
	t := r.track.Load()
	if t&trackContent != 0 {
		r.contentSum -= r.rowHash(i)
	}
	if t&trackStats != 0 {
		for a, col := range r.cols {
			v := col[i]
			if n := r.attrFreq[a][v] - 1; n == 0 {
				delete(r.attrFreq[a], v)
			} else {
				r.attrFreq[a][v] = n
			}
		}
		delete(r.index, r.KeyAt(i))
	}
	last := r.rows - 1
	if i != last {
		for a := range r.cols {
			r.cols[a][i] = r.cols[a][last]
		}
		if t&trackStats != 0 {
			r.index[r.KeyAt(i)] = i
		}
	}
	for a := range r.cols {
		r.cols[a] = r.cols[a][:last]
	}
	r.rows = last
}

// NewRelation returns an empty relation.
func NewRelation(name string, arity int, domain int64) *Relation {
	if arity < 0 || domain < 1 {
		panic(fmt.Sprintf("data: bad relation shape arity=%d domain=%d", arity, domain))
	}
	return &Relation{Name: name, Arity: arity, Domain: domain, cols: make([][]int64, arity)}
}

// Add appends a tuple. Values must lie in [0, Domain).
func (r *Relation) Add(vals ...int64) {
	if len(vals) != r.Arity {
		panic(fmt.Sprintf("data: %s: tuple arity %d, want %d", r.Name, len(vals), r.Arity))
	}
	for a, v := range vals {
		if v < 0 || v >= r.Domain {
			panic(fmt.Sprintf("data: %s: value %d outside domain [0,%d)", r.Name, v, r.Domain))
		}
		r.cols[a] = append(r.cols[a], v)
	}
	r.rows++
	r.gen++
	if r.track.Load() != 0 {
		r.noteAppended(r.rows - 1)
	}
}

// AppendColumns bulk-appends count rows given column-wise (cols[a] holds
// attribute a of every appended row). Values are trusted — they must come
// from a relation of the same shape (the simulator's delivery path, where
// every value was validated on its original Add). The slices are copied.
func (r *Relation) AppendColumns(cols [][]int64, count int) {
	if len(cols) != r.Arity {
		panic(fmt.Sprintf("data: %s: AppendColumns arity %d, want %d", r.Name, len(cols), r.Arity))
	}
	for a := range r.cols {
		r.cols[a] = append(r.cols[a], cols[a][:count]...)
	}
	r.rows += count
	r.gen++
	if r.track.Load() != 0 {
		for i := r.rows - count; i < r.rows; i++ {
			r.noteAppended(i)
		}
	}
}

// AppendRow appends row i of src, which must have the same arity.
// Values are trusted (src already validated them).
func (r *Relation) AppendRow(src *Relation, i int) {
	if src.Arity != r.Arity {
		panic(fmt.Sprintf("data: %s: AppendRow from arity %d, want %d", r.Name, src.Arity, r.Arity))
	}
	for a := range r.cols {
		r.cols[a] = append(r.cols[a], src.cols[a][i])
	}
	r.rows++
	r.gen++
	if r.track.Load() != 0 {
		r.noteAppended(r.rows - 1)
	}
}

// Size returns m, the number of tuples.
func (r *Relation) Size() int { return r.rows }

// Column returns attribute a of every tuple — the columnar view routers
// and joins scan. The slice aliases internal storage: callers must treat
// it as read-only and must not retain it across Add calls.
func (r *Relation) Column(a int) []int64 { return r.cols[a][:r.rows] }

// Columns returns all column slices (read-only, like Column).
func (r *Relation) Columns() [][]int64 { return r.cols }

// At returns attribute a of tuple i.
func (r *Relation) At(i, a int) int64 { return r.cols[a][i] }

// Tuple materializes the i-th tuple as a fresh row. It allocates — hot
// paths read Column/At directly or use ReadTuple with reusable scratch.
func (r *Relation) Tuple(i int) Tuple {
	return r.ReadTuple(i, make(Tuple, r.Arity))
}

// ReadTuple gathers the i-th tuple into dst (which must have length
// Arity) and returns dst.
func (r *Relation) ReadTuple(i int, dst Tuple) Tuple {
	for a, col := range r.cols {
		dst[a] = col[i]
	}
	return dst
}

// KeyAt returns the map key of the i-th tuple without materializing it.
func (r *Relation) KeyAt(i int) Key {
	if r.Arity <= keyInline {
		k := Key{n: int32(r.Arity)}
		for a, col := range r.cols {
			k.v[a] = col[i]
		}
		return k
	}
	return KeyOf(r.Tuple(i))
}

// Each calls f on every tuple; returning false stops early. The Tuple
// view is scratch reused across iterations (one allocation per Each
// call): it is only valid inside the callback and must be copied to be
// retained. Each itself never writes to the relation, so concurrent scans
// of one relation are safe.
func (r *Relation) Each(f func(i int, t Tuple) bool) {
	t := make(Tuple, r.Arity)
	for i := 0; i < r.rows; i++ {
		for a, col := range r.cols {
			t[a] = col[i]
		}
		if !f(i, t) {
			return
		}
	}
}

// BitsPerTuple returns a_j·⌈log₂ n⌉.
func (r *Relation) BitsPerTuple() int64 {
	return int64(r.Arity) * int64(BitsPerValue(r.Domain))
}

// Bits returns M_j = a_j · m_j · ⌈log₂ n⌉, the size of the relation in bits.
func (r *Relation) Bits() int64 {
	return int64(r.Size()) * r.BitsPerTuple()
}

// Clone returns a deep copy.
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.Name, r.Arity, r.Domain)
	for a := range r.cols {
		c.cols[a] = append([]int64(nil), r.cols[a]...)
	}
	c.rows = r.rows
	return c
}

// Sort orders tuples lexicographically in place (used to canonicalize for
// comparisons in tests). Column-wise: sort a row permutation, then gather
// each column once.
func (r *Relation) Sort() {
	idx := make([]int, r.rows)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		for _, col := range r.cols {
			if col[ia] != col[ib] {
				return col[ia] < col[ib]
			}
		}
		return false
	})
	for a, col := range r.cols {
		sorted := make([]int64, r.rows)
		for out, i := range idx {
			sorted[out] = col[i]
		}
		r.cols[a] = sorted
	}
	// The gather above replaced every column's backing, so any published
	// snapshot views keep their (unsorted, equal-content) arrays untouched.
	r.frozen = 0
	r.gen++
	// Lexicographic order is not the partition layout.
	r.part = nil
	// The content sum and frequency maps are permutation-invariant; only the
	// tuple index maps rows and must be rebuilt.
	if r.track.Load()&trackStats != 0 {
		for i := 0; i < r.rows; i++ {
			r.index[r.KeyAt(i)] = i
		}
	}
}

// ContainsDuplicates reports whether any tuple occurs twice.
func (r *Relation) ContainsDuplicates() bool {
	seen := make(map[Key]bool, r.rows)
	for i := 0; i < r.rows; i++ {
		k := r.KeyAt(i)
		if seen[k] {
			return true
		}
		seen[k] = true
	}
	return false
}

// Database is a set of relations keyed by relation (atom) name.
//
// A database serving mutable traffic is synchronized through its own
// reader/writer lock: Apply mutates under the write lock, and executions
// that must observe a consistent snapshot hold RLock/RUnlock around their
// run (repro.Session does). Construction-time mutation (Put, generator
// Adds) needs no locking — it happens before the database is shared.
type Database struct {
	Relations map[string]*Relation

	mu sync.RWMutex
	id atomic.Uint64

	// version counts successful Apply calls; watchers receive it with each
	// applied delta so consumers (standing queries) can order and deduplicate
	// the capture stream against state they rebuilt from a snapshot.
	version  uint64
	watchers map[int]func(version uint64, d *Delta)
	nextW    int

	// parent is non-nil on snapshot epochs (see Snapshot): the mutable
	// master database this epoch was published from. Snapshots are
	// immutable — Apply rejects them and Snapshot/Watch delegate to the
	// parent.
	parent *Database
	// snap is the master's current published epoch, or nil before the
	// first Snapshot. Apply republishes it under the write lock, so
	// Snapshot's fast path is one RLock and an atomic load.
	snap atomic.Pointer[Database]
	// overlay is Apply's validation scratch (relation → pending key
	// presence), retained across calls so a steady Apply stream stops
	// allocating it per batch.
	overlay map[string]map[Key]bool
}

// dbIDs hands out process-unique database identities.
var dbIDs atomic.Uint64

// NewDatabase returns an empty database.
func NewDatabase() *Database {
	return &Database{Relations: make(map[string]*Relation)}
}

// ID returns a process-unique identity for this database, assigned on first
// use. Serving-mode plan caches key on it (plus the schema) instead of the
// content fingerprint, so cached plans survive Apply deltas.
func (db *Database) ID() uint64 {
	if id := db.id.Load(); id != 0 {
		return id
	}
	db.id.CompareAndSwap(0, dbIDs.Add(1))
	return db.id.Load()
}

// RLock takes the database's serving lock for a read (an execution that
// must not observe a half-applied delta). Apply excludes readers.
func (db *Database) RLock() { db.mu.RLock() }

// RUnlock releases RLock.
func (db *Database) RUnlock() { db.mu.RUnlock() }

// Version returns the number of successful Apply calls so far. Callers
// that need a version consistent with the content they observe read it
// under RLock; the bare read here is for diagnostics.
func (db *Database) Version() uint64 {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.version
}

// VersionLocked is Version for callers already holding RLock. Go's RWMutex
// read lock is not recursive — re-acquiring it while a writer waits
// deadlocks — so lock-holding callers (a standing query reading a
// consistent snapshot) must use this form.
func (db *Database) VersionLocked() uint64 { return db.version }

// Watch registers w to be called after every successful Apply, under the
// database's write lock (so notifications are totally ordered and the
// delta's effects are fully visible when w runs). w receives the post-apply
// version and the applied delta; it must be fast and must not call back
// into the database. The returned function unregisters the watcher.
//
// This is the delta-capture hook standing queries subscribe to: instead of
// re-reading the database, they replay exactly the operations that changed
// it.
func (db *Database) Watch(w func(version uint64, d *Delta)) (unwatch func()) {
	if db.parent != nil {
		// Snapshots never change; watch the mutable master they came from.
		return db.parent.Watch(w)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.watchers == nil {
		db.watchers = make(map[int]func(uint64, *Delta))
	}
	id := db.nextW
	db.nextW++
	db.watchers[id] = w
	return func() {
		db.mu.Lock()
		defer db.mu.Unlock()
		delete(db.watchers, id)
	}
}

// Put stores a relation under its own name.
func (db *Database) Put(r *Relation) { db.Relations[r.Name] = r }

// Get returns the named relation or nil.
func (db *Database) Get(name string) *Relation { return db.Relations[name] }

// MustGet returns the named relation or panics.
func (db *Database) MustGet(name string) *Relation {
	r := db.Relations[name]
	if r == nil {
		panic("data: missing relation " + name)
	}
	return r
}

// TotalBits returns Σ_j M_j, the database size in bits.
func (db *Database) TotalBits() int64 {
	var total int64
	for _, r := range db.Relations {
		total += r.Bits()
	}
	return total
}

// Names returns the relation names in sorted order.
func (db *Database) Names() []string {
	names := make([]string, 0, len(db.Relations))
	for n := range db.Relations {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
