// Package p distills the typed-error-taxonomy contracts: %w wrapping and
// Err-prefixed sentinels.
package p

import (
	"errors"
	"fmt"
)

// ErrNotFound is a compliant sentinel.
var ErrNotFound = errors.New("p: not found")

// Missing is an exported error sentinel without the Err prefix.
var Missing = errors.New("p: missing") // want `exported sentinel error Missing must be named with an Err prefix`

// BadWrap flattens the chain with %v.
func BadWrap(err error) error {
	return fmt.Errorf("lookup failed: %v", err) // want `fmt.Errorf embeds an error without %w`
}

// GoodWrap keeps the chain traversable.
func GoodWrap(err error) error {
	return fmt.Errorf("lookup failed: %w", err)
}

// NoError has no error argument: %v of a plain value is fine.
func NoError(n int) error {
	return fmt.Errorf("bad count: %v", n)
}

// Allowed keeps a flattened %v with an audited waiver.
func Allowed(err error) error {
	//skewlint:allow errwrap — corpus: deliberate flattening
	return fmt.Errorf("lookup failed: %v", err)
}
