// Package query models full conjunctive queries without self-joins — the
// query class of Beame–Koutris–Suciu (PODS 2014) — together with their
// hypergraphs and the residual queries q_x used by the skew lower bounds.
package query

import (
	"fmt"
	"strings"
)

// Atom is one relational atom S_j(x̄_j) in a query body. Vars holds indices
// into the owning Query's variable list; each variable appears at most once
// per atom (the standard assumption for the HyperCube analysis).
type Atom struct {
	Name string
	Vars []int
}

// Arity returns the number of variables of the atom.
func (a Atom) Arity() int { return len(a.Vars) }

// HasVar reports whether variable index v occurs in the atom.
func (a Atom) HasVar(v int) bool {
	for _, x := range a.Vars {
		if x == v {
			return true
		}
	}
	return false
}

// Query is a full conjunctive query q(x_1..x_k) = S_1(x̄_1), ..., S_ℓ(x̄_ℓ):
// every variable appears in the head and no relation name repeats.
type Query struct {
	Name  string
	Vars  []string // the k variables, in head order
	Atoms []Atom   // the ℓ atoms
}

// NumVars returns k, the number of variables.
func (q *Query) NumVars() int { return len(q.Vars) }

// NumAtoms returns ℓ, the number of atoms.
func (q *Query) NumAtoms() int { return len(q.Atoms) }

// AtomNames returns the relation name of every atom, in body order
// (distinct — the query model has no self-joins). Planners use it to
// scope physical plans to exactly the relations they route.
func (q *Query) AtomNames() []string {
	names := make([]string, len(q.Atoms))
	for i, a := range q.Atoms {
		names[i] = a.Name
	}
	return names
}

// TotalArity returns a = Σ_j a_j.
func (q *Query) TotalArity() int {
	total := 0
	for _, a := range q.Atoms {
		total += a.Arity()
	}
	return total
}

// AtomsWithVar returns the indices of atoms containing variable v.
func (q *Query) AtomsWithVar(v int) []int {
	var out []int
	for j, a := range q.Atoms {
		if a.HasVar(v) {
			out = append(out, j)
		}
	}
	return out
}

// VarIndex returns the index of the named variable, or -1.
func (q *Query) VarIndex(name string) int {
	for i, v := range q.Vars {
		if v == name {
			return i
		}
	}
	return -1
}

// AtomIndex returns the index of the named atom, or -1.
func (q *Query) AtomIndex(name string) int {
	for j, a := range q.Atoms {
		if a.Name == name {
			return j
		}
	}
	return -1
}

// Validate checks the structural invariants: at least one atom, distinct
// atom names (no self-joins), every variable used by some atom, variable
// indices in range, and no repeated variable within an atom.
func (q *Query) Validate() error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("query %s: no atoms", q.Name)
	}
	names := make(map[string]bool)
	used := make([]bool, len(q.Vars))
	for _, a := range q.Atoms {
		if a.Name == "" {
			return fmt.Errorf("query %s: atom with empty name", q.Name)
		}
		if names[a.Name] {
			return fmt.Errorf("query %s: self-join on %s not supported", q.Name, a.Name)
		}
		names[a.Name] = true
		seen := make(map[int]bool)
		for _, v := range a.Vars {
			if v < 0 || v >= len(q.Vars) {
				return fmt.Errorf("query %s: atom %s has out-of-range variable %d", q.Name, a.Name, v)
			}
			if seen[v] {
				return fmt.Errorf("query %s: atom %s repeats variable %s", q.Name, a.Name, q.Vars[v])
			}
			seen[v] = true
			used[v] = true
		}
	}
	for i, u := range used {
		if !u {
			return fmt.Errorf("query %s: head variable %s unused in body", q.Name, q.Vars[i])
		}
	}
	return nil
}

// String renders the query in the parseable syntax, e.g.
// "C3(x,y,z) = S1(x,y), S2(y,z), S3(z,x)".
func (q *Query) String() string {
	var b strings.Builder
	b.WriteString(q.Name)
	b.WriteByte('(')
	b.WriteString(strings.Join(q.Vars, ","))
	b.WriteString(") = ")
	for j, a := range q.Atoms {
		if j > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.Name)
		b.WriteByte('(')
		vs := make([]string, len(a.Vars))
		for i, v := range a.Vars {
			vs[i] = q.Vars[v]
		}
		b.WriteString(strings.Join(vs, ","))
		b.WriteByte(')')
	}
	return b.String()
}

// Connected reports whether the query hypergraph is connected (atoms as
// hyperedges over variables). Cartesian products are disconnected.
func (q *Query) Connected() bool {
	if len(q.Atoms) <= 1 {
		return true
	}
	// Union-find over atoms through shared variables.
	parent := make([]int, len(q.Atoms))
	for j := range parent {
		parent[j] = j
	}
	var find func(int) int
	find = func(x int) int {
		if parent[x] != x {
			parent[x] = find(parent[x])
		}
		return parent[x]
	}
	for v := range q.Vars {
		js := q.AtomsWithVar(v)
		for i := 1; i < len(js); i++ {
			parent[find(js[i])] = find(js[0])
		}
	}
	root := find(0)
	for j := range q.Atoms {
		if find(j) != root {
			return false
		}
	}
	return true
}

// VarSet is a set of variable indices, used for the x in residual queries
// and bin combinations.
type VarSet map[int]bool

// NewVarSet builds a set from indices.
func NewVarSet(vars ...int) VarSet {
	s := make(VarSet, len(vars))
	for _, v := range vars {
		s[v] = true
	}
	return s
}

// Sorted returns the members in increasing order.
func (s VarSet) Sorted() []int {
	out := make([]int, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Contains reports membership.
func (s VarSet) Contains(v int) bool { return s[v] }

// Intersect returns s ∩ other.
func (s VarSet) Intersect(other VarSet) VarSet {
	out := make(VarSet)
	for v := range s {
		if other[v] {
			out[v] = true
		}
	}
	return out
}

// Residual returns the residual query q_x: the query obtained by deleting
// the variables in x from every atom and from the head (§4.3 of the paper).
// Atoms may end up with reduced arity, possibly zero. The returned query
// shares no storage with q. The second return value maps new variable
// indices back to q's variable indices.
func (q *Query) Residual(x VarSet) (*Query, []int) {
	var keepVars []int
	newIdx := make([]int, len(q.Vars))
	for i := range q.Vars {
		if x.Contains(i) {
			newIdx[i] = -1
			continue
		}
		newIdx[i] = len(keepVars)
		keepVars = append(keepVars, i)
	}
	res := &Query{Name: q.Name + "_res"}
	for _, old := range keepVars {
		res.Vars = append(res.Vars, q.Vars[old])
	}
	for _, a := range q.Atoms {
		na := Atom{Name: a.Name}
		for _, v := range a.Vars {
			if newIdx[v] >= 0 {
				na.Vars = append(na.Vars, newIdx[v])
			}
		}
		res.Atoms = append(res.Atoms, na)
	}
	return res, keepVars
}
