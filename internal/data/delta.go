package data

import "fmt"

// Delta is a batched database mutation: an ordered list of tuple inserts
// and deletes across any relations of one database, applied atomically by
// Database.Apply. The zero value is an empty delta; Insert/Delete return
// the receiver for chaining.
type Delta struct {
	ops []deltaOp
}

type deltaOp struct {
	rel    string
	vals   []int64
	insert bool
}

// Insert records the insertion of one tuple into the named relation.
// The values are copied, so callers may reuse a scratch tuple (the
// ReadTuple idiom) across calls.
func (d *Delta) Insert(rel string, vals ...int64) *Delta {
	d.ops = append(d.ops, deltaOp{rel: rel, vals: append([]int64(nil), vals...), insert: true})
	return d
}

// Delete records the deletion of one tuple from the named relation. The
// values are copied, like Insert's.
func (d *Delta) Delete(rel string, vals ...int64) *Delta {
	d.ops = append(d.ops, deltaOp{rel: rel, vals: append([]int64(nil), vals...)})
	return d
}

// Len returns the number of recorded operations.
func (d *Delta) Len() int { return len(d.ops) }

// EachOp calls f on every recorded operation, in the order they were
// recorded. The vals slice is the delta's own storage: recorded operations
// are immutable (Insert/Delete only append), so callers may retain vals
// without copying, but must not modify it. Standing queries use this to
// re-route exactly the tuples a Database.Apply touched.
func (d *Delta) EachOp(f func(rel string, vals []int64, insert bool)) {
	for i := range d.ops {
		op := &d.ops[i]
		f(op.rel, op.vals, op.insert)
	}
}

// Apply mutates the database by the delta, atomically: either every
// operation applies, or none does and an error describes the first invalid
// one (unknown relation, arity or domain mismatch, deleting an absent
// tuple, inserting a duplicate — relations are duplicate-free). Operations
// apply in the order they were recorded, so a delta may delete a tuple it
// inserted earlier.
//
// Apply maintains each touched relation's serving state incrementally: the
// content-hash sum behind stats.Fingerprint (a reversible per-tuple fold),
// the per-attribute value frequencies, and the tuple index. The first Apply
// touching a relation builds that state with one scan; every later Apply
// costs O(delta), and fingerprinting the database afterwards costs
// O(relations) — the database mutates under live plan caches without any
// per-execution rescan.
//
// Apply holds the database's write lock, excluding other Apply calls and
// legacy RLock readers. Snapshot readers (repro.Session's Exec) are not
// blocked: before returning, Apply republishes the snapshot epoch so the
// next Database.Snapshot observes the delta without taking the write lock.
func (db *Database) Apply(d *Delta) error {
	if db.parent != nil {
		return fmt.Errorf("data: Apply on a snapshot: snapshots are immutable, apply to the master database")
	}
	if d == nil || len(d.ops) == 0 {
		return nil
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	// Shape-check every operation and enable maintenance on every touched
	// relation before mutating anything.
	for i := range d.ops {
		op := &d.ops[i]
		r := db.Relations[op.rel]
		if r == nil {
			return fmt.Errorf("data: Apply: unknown relation %q", op.rel)
		}
		if len(op.vals) != r.Arity {
			return fmt.Errorf("data: Apply: %s: tuple arity %d, want %d", op.rel, len(op.vals), r.Arity)
		}
		if op.insert {
			for _, v := range op.vals {
				if v < 0 || v >= r.Domain {
					return fmt.Errorf("data: Apply: %s: value %d outside domain [0,%d)", op.rel, v, r.Domain)
				}
			}
		}
		if err := r.enableStats(); err != nil {
			return err
		}
	}
	// Dry-run membership so the whole delta rejects before any mutation:
	// the overlay records the pending presence of keys this delta touches.
	// The scratch maps persist on the database (cleared here) so a steady
	// Apply stream stops allocating them per batch.
	if db.overlay == nil {
		db.overlay = make(map[string]map[Key]bool)
	}
	for _, ov := range db.overlay {
		clear(ov)
	}
	for _, op := range d.ops {
		r := db.Relations[op.rel]
		k := KeyOf(op.vals)
		ov := db.overlay[op.rel]
		present, pending := ov[k]
		if !pending {
			_, present = r.index[k]
		}
		if op.insert && present {
			return fmt.Errorf("data: Apply: %s: duplicate insert of %v", op.rel, Tuple(op.vals))
		}
		if !op.insert && !present {
			return fmt.Errorf("data: Apply: %s: delete of absent tuple %v", op.rel, Tuple(op.vals))
		}
		if ov == nil {
			ov = make(map[Key]bool)
			db.overlay[op.rel] = ov
		}
		ov[k] = op.insert
	}
	for _, op := range d.ops {
		r := db.Relations[op.rel]
		if op.insert {
			r.Add(op.vals...)
		} else {
			r.removeRow(r.index[KeyOf(op.vals)])
		}
	}
	db.version++
	// Republish the snapshot epoch before notifying watchers: a consumer
	// that observes version v (through the watch callback or a drained
	// capture queue) is guaranteed Snapshot() returns an epoch ≥ v. Before
	// the first Snapshot there is no epoch to refresh and nothing to pay.
	if db.snap.Load() != nil {
		db.publishLocked()
	}
	for _, w := range db.watchers {
		w(db.version, d)
	}
	return nil
}
