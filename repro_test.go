package repro

import (
	"math"
	"testing"
)

// The facade test doubles as the quickstart smoke test: everything a
// downstream user touches first must work through the public API alone.
func TestFacadeEndToEnd(t *testing.T) {
	q := MustParseQuery("C3(x,y,z) = S1(x,y), S2(y,z), S3(z,x)")
	db := NewDatabase()
	db.Put(UniformRelation("S1", 2, 500, 60, 1))
	db.Put(UniformRelation("S2", 2, 500, 60, 2))
	db.Put(UniformRelation("S3", 2, 500, 60, 3))

	res := NewEngine(16, 7).Execute(q, db)
	if res.MaxLoadBits <= 0 {
		t.Error("no load recorded")
	}
	if res.Plan.LowerBoundBits <= 0 {
		t.Error("no lower bound")
	}

	lower, desc := LowerBound(q, db, 16)
	if lower <= 0 || desc == "" {
		t.Error("LowerBound broken")
	}
}

func TestFacadePackingHelpers(t *testing.T) {
	q := TriangleQuery()
	vs := PackingVertices(q)
	if len(vs) != 4 {
		t.Errorf("pk(C3) = %d vertices, want 4", len(vs))
	}
	if math.Abs(Tau(q)-1.5) > 1e-12 {
		t.Errorf("τ*(C3) = %v", Tau(q))
	}
	agm := AGMBound(q, []float64{100, 100, 100})
	if math.Abs(agm-1000) > 1e-6 {
		t.Errorf("AGM = %v, want 1000", agm)
	}
}

func TestFacadeSkewPath(t *testing.T) {
	db := NewDatabase()
	db.Put(SingleValueRelation("S1", 2, 300, 100000, 1, 7, 1))
	db.Put(SingleValueRelation("S2", 2, 300, 100000, 1, 7, 2))
	res := RunSkewJoin(db, SkewJoinConfig{P: 8, Seed: 1})
	if len(res.Output) != 300*300 {
		t.Errorf("skew join output = %d, want 90000", len(res.Output))
	}
	q := Join2Query()
	g := RunGeneralSkew(q, db, GeneralSkewConfig{P: 8, Seed: 1})
	if len(g.Output) != 300*300 {
		t.Errorf("general output = %d", len(g.Output))
	}
}

func TestFacadeBounds(t *testing.T) {
	q := Join2Query()
	bitsM := []float64{1 << 20, 1 << 20}
	simple, table := SimpleLowerBound(q, bitsM, 64)
	if simple <= 0 || len(table) == 0 {
		t.Error("SimpleLowerBound broken")
	}
	eps := SpaceExponent(q, bitsM, 64)
	if eps != 0 { // τ*(join2)=1 ⇒ ε = 0
		t.Errorf("ε = %v, want 0", eps)
	}
	r := ReplicationLowerBound(TriangleQuery(), []float64{1 << 20, 1 << 20, 1 << 20}, 1<<14)
	if r <= 0 {
		t.Error("ReplicationLowerBound broken")
	}
}

func TestFacadeGenerators(t *testing.T) {
	if MatchingRelation("m", 2, 10, 100, 1).Size() != 10 {
		t.Error("MatchingRelation")
	}
	if ZipfRelation("z", 100, 1000, 1, 1.5, 50, 1).Size() != 100 {
		t.Error("ZipfRelation")
	}
	if PlantedHeavyRelation("p", 100, 1000, 1, []HeavySpec{{Value: 3, Count: 40}}, 1).Size() != 100 {
		t.Error("PlantedHeavyRelation")
	}
	if DegreeSequenceRelation("d", 1000, 0, map[int64]int{1: 5}, 1).Size() != 5 {
		t.Error("DegreeSequenceRelation")
	}
	db := DatabaseForQuery([]AtomSpec{{Name: "R", Arity: 1, M: 10, Domain: 100}}, 1)
	if db.MustGet("R").Size() != 10 {
		t.Error("DatabaseForQuery")
	}
}

func TestFacadeMultiRoundPipeline(t *testing.T) {
	q := TriangleQuery()
	db := NewDatabase()
	db.Put(MatchingRelation("S1", 2, 400, 100000, 1))
	db.Put(MatchingRelation("S2", 2, 400, 100000, 2))
	db.Put(MatchingRelation("S3", 2, 400, 100000, 3))

	// Direct lowering + execution through the facade.
	pp := PlanMultiRound(q, db, MultiRoundConfig{P: 8, Seed: 3, SkewAware: true})
	if pp.PredictedSumMaxBits <= 0 {
		t.Error("pipeline plan has no cost prediction")
	}
	res := pp.Execute(db)
	if len(res.Rounds) != 2 {
		t.Fatalf("rounds = %d, want 2", len(res.Rounds))
	}

	// Same answers as the legacy Run entry point and the engine's forced
	// multi-round strategy.
	legacy := RunMultiRound(BuildMultiRoundPlan(q), db, MultiRoundConfig{P: 8, Seed: 3})
	if len(legacy.Output) != len(res.Output) {
		t.Errorf("pipeline %d tuples vs legacy %d", len(res.Output), len(legacy.Output))
	}
	force := StrategyMultiRound
	e := NewEngine(8, 3)
	e.ForceStrategy = &force
	er := e.Execute(q, db)
	if er.Plan.Strategy != StrategyMultiRound || len(er.Output) != len(res.Output) {
		t.Errorf("engine multi-round: strategy %v, %d tuples vs %d",
			er.Plan.Strategy, len(er.Output), len(res.Output))
	}
}
