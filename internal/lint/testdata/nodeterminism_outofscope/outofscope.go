// Package p carries core-forbidden calls under a non-core import path
// (the harness checks it as repro/internal/stats): the analyzer must
// produce nothing here.
package p

import (
	"math/rand"
	"time"
)

// ClockOK reads the wall clock outside the deterministic core.
func ClockOK() time.Time {
	return time.Now()
}

// RandOK draws global randomness outside the deterministic core.
func RandOK() int {
	return rand.Intn(10)
}
