package rational

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConstructors(t *testing.T) {
	if Zero().Sign() != 0 {
		t.Error("Zero() not zero")
	}
	if One().Cmp(big.NewRat(1, 1)) != 0 {
		t.Error("One() not one")
	}
	if New(3, 4).Cmp(big.NewRat(3, 4)) != 0 {
		t.Error("New(3,4) wrong")
	}
	if FromInt(-7).Cmp(big.NewRat(-7, 1)) != 0 {
		t.Error("FromInt(-7) wrong")
	}
}

func TestFromFloatLossless(t *testing.T) {
	for _, f := range []float64{0, 1, 0.5, 0.1, 1e-10, 123456.789, -3.25} {
		r := FromFloat(f)
		back, exact := r.Float64()
		if back != f {
			t.Errorf("FromFloat(%v) round-trips to %v", f, back)
		}
		_ = exact
	}
}

func TestFromFloatPanicsOnNaN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("FromFloat(NaN) did not panic")
		}
	}()
	nan := 0.0
	nan = nan / nan
	FromFloat(nan)
}

func TestCloneIndependence(t *testing.T) {
	a := New(1, 2)
	b := Clone(a)
	b.Add(b, One())
	if a.Cmp(New(1, 2)) != 0 {
		t.Error("Clone shares storage with original")
	}
}

func TestVectorDot(t *testing.T) {
	v := VectorFromInts(1, 2, 3)
	w := VectorFromInts(4, 5, 6)
	got := v.Dot(w)
	if got.Cmp(FromInt(32)) != 0 {
		t.Errorf("dot = %v, want 32", got)
	}
}

func TestVectorDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Dot length mismatch did not panic")
		}
	}()
	VectorFromInts(1).Dot(VectorFromInts(1, 2))
}

func TestVectorSum(t *testing.T) {
	v := Vector{New(1, 2), New(1, 3), New(1, 6)}
	if v.Sum().Cmp(One()) != 0 {
		t.Errorf("sum = %v, want 1", v.Sum())
	}
}

func TestVectorEqualAndDominates(t *testing.T) {
	a := VectorFromInts(1, 2, 3)
	b := VectorFromInts(1, 2, 3)
	c := VectorFromInts(1, 2, 4)
	if !a.Equal(b) {
		t.Error("a != b")
	}
	if a.Equal(c) {
		t.Error("a == c")
	}
	if !c.Dominates(a) {
		t.Error("c should dominate a")
	}
	if a.Dominates(c) {
		t.Error("a should not dominate c")
	}
	if a.Equal(VectorFromInts(1, 2)) {
		t.Error("length mismatch should not be equal")
	}
	if a.Dominates(VectorFromInts(1, 2)) {
		t.Error("length mismatch should not dominate")
	}
}

func TestVectorCloneIndependence(t *testing.T) {
	a := VectorFromInts(1, 2)
	b := a.Clone()
	b[0].SetInt64(99)
	if a[0].Cmp(One()) != 0 {
		t.Error("Vector.Clone shares storage")
	}
}

func TestVectorString(t *testing.T) {
	v := Vector{New(1, 2), FromInt(3)}
	if got := v.String(); got != "(1/2, 3)" {
		t.Errorf("String = %q", got)
	}
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.SetInt(0, 0, 5)
	m.Set(1, 2, New(7, 2))
	if m.At(0, 0).Cmp(FromInt(5)) != 0 || m.At(1, 2).Cmp(New(7, 2)) != 0 {
		t.Error("Set/At mismatch")
	}
	r := m.Row(1)
	if r[2].Cmp(New(7, 2)) != 0 {
		t.Error("Row copy wrong")
	}
	r[2].SetInt64(0)
	if m.At(1, 2).Cmp(New(7, 2)) != 0 {
		t.Error("Row should return a copy")
	}
}

func TestMatrixMulVec(t *testing.T) {
	m := MatrixFromRows(VectorFromInts(1, 2), VectorFromInts(3, 4))
	v := VectorFromInts(5, 6)
	got := m.MulVec(v)
	want := VectorFromInts(17, 39)
	if !got.Equal(want) {
		t.Errorf("MulVec = %v, want %v", got, want)
	}
}

func TestSolveIdentity(t *testing.T) {
	m := MatrixFromRows(VectorFromInts(1, 0), VectorFromInts(0, 1))
	b := VectorFromInts(3, 4)
	x, ok := Solve(m, b)
	if !ok || !x.Equal(b) {
		t.Errorf("Solve identity failed: %v ok=%v", x, ok)
	}
}

func TestSolve2x2(t *testing.T) {
	// 2x + y = 5 ; x - y = 1  => x = 2, y = 1
	m := MatrixFromRows(VectorFromInts(2, 1), VectorFromInts(1, -1))
	x, ok := Solve(m, VectorFromInts(5, 1))
	if !ok {
		t.Fatal("singular")
	}
	want := VectorFromInts(2, 1)
	if !x.Equal(want) {
		t.Errorf("Solve = %v, want %v", x, want)
	}
}

func TestSolveSingular(t *testing.T) {
	m := MatrixFromRows(VectorFromInts(1, 2), VectorFromInts(2, 4))
	if _, ok := Solve(m, VectorFromInts(1, 2)); ok {
		t.Error("Solve accepted a singular matrix")
	}
}

func TestSolveRequiresPivotSwap(t *testing.T) {
	// First pivot is zero; needs a row swap.
	m := MatrixFromRows(VectorFromInts(0, 1), VectorFromInts(1, 0))
	x, ok := Solve(m, VectorFromInts(7, 9))
	if !ok {
		t.Fatal("singular")
	}
	want := VectorFromInts(9, 7)
	if !x.Equal(want) {
		t.Errorf("Solve = %v, want %v", x, want)
	}
}

func TestSolveRational(t *testing.T) {
	// x/2 + y/3 = 1 ; x/4 - y = 0  => solve exactly.
	m := MatrixFromRows(Vector{New(1, 2), New(1, 3)}, Vector{New(1, 4), FromInt(-1)})
	b := Vector{One(), Zero()}
	x, ok := Solve(m, b)
	if !ok {
		t.Fatal("singular")
	}
	// Verify by substitution.
	got := m.MulVec(x)
	if !got.Equal(b) {
		t.Errorf("residual: m·x = %v, want %v", got, b)
	}
}

func TestRank(t *testing.T) {
	tests := []struct {
		rows []Vector
		want int
	}{
		{[]Vector{VectorFromInts(1, 0), VectorFromInts(0, 1)}, 2},
		{[]Vector{VectorFromInts(1, 2), VectorFromInts(2, 4)}, 1},
		{[]Vector{VectorFromInts(0, 0), VectorFromInts(0, 0)}, 0},
		{[]Vector{VectorFromInts(1, 2, 3), VectorFromInts(4, 5, 6), VectorFromInts(7, 8, 9)}, 2},
	}
	for i, tc := range tests {
		m := MatrixFromRows(tc.rows...)
		if got := Rank(m); got != tc.want {
			t.Errorf("case %d: Rank = %d, want %d", i, got, tc.want)
		}
	}
}

// Property: Solve returns a vector satisfying A·x = b on random nonsingular
// integer systems.
func TestSolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cfg := &quick.Config{MaxCount: 60, Rand: rng}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(5)
		m := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				m.SetInt(i, j, int64(r.Intn(21)-10))
			}
		}
		b := NewVector(n)
		for i := range b {
			b[i].SetInt64(int64(r.Intn(21) - 10))
		}
		x, ok := Solve(m, b)
		if !ok {
			return true // singular draw; nothing to check
		}
		return m.MulVec(x).Equal(b)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// Property: Rank is invariant under row scaling.
func TestRankScaleInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(4)
		m := NewMatrix(n, n+1)
		for i := 0; i < n; i++ {
			for j := 0; j < n+1; j++ {
				m.SetInt(i, j, int64(r.Intn(7)-3))
			}
		}
		scaled := m.Clone()
		for j := 0; j < scaled.Cols; j++ {
			v := new(big.Rat).Mul(scaled.At(0, j), big.NewRat(3, 2))
			scaled.Set(0, j, v)
		}
		return Rank(m) == Rank(scaled)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
