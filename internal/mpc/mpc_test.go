package mpc

import (
	"strings"
	"testing"

	"repro/internal/data"
)

func singleRel(m int) *data.Database {
	domain := int64(1024) // 10 bits/value for m <= 1024
	for domain < int64(m) {
		domain *= 2
	}
	db := data.NewDatabase()
	r := data.NewRelation("S", 1, domain)
	for i := int64(0); i < int64(m); i++ {
		r.Add(i)
	}
	db.Put(r)
	return db
}

func TestRoundHashPartition(t *testing.T) {
	db := singleRel(1000)
	c := NewCluster(10)
	c.Round(db, RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, int(tu[0]%10))
	}))
	loads := c.Loads()
	if loads.TotalTuples != 1000 {
		t.Errorf("TotalTuples = %d, want 1000 (no replication)", loads.TotalTuples)
	}
	if loads.MaxTuples != 100 {
		t.Errorf("MaxTuples = %d, want exactly 100 (mod partition)", loads.MaxTuples)
	}
	// 10 bits per tuple.
	if loads.TotalBits != 10000 {
		t.Errorf("TotalBits = %d, want 10000", loads.TotalBits)
	}
}

func TestRoundBroadcast(t *testing.T) {
	db := singleRel(50)
	c := NewCluster(4)
	all := []int{0, 1, 2, 3}
	c.Round(db, RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, all...)
	}))
	loads := c.Loads()
	if loads.TotalTuples != 200 {
		t.Errorf("TotalTuples = %d, want 200", loads.TotalTuples)
	}
	for _, s := range c.Servers {
		if s.TuplesIn != 50 {
			t.Errorf("server %d received %d, want 50", s.ID, s.TuplesIn)
		}
		if s.Fragment("S").Size() != 50 {
			t.Errorf("server %d fragment size %d", s.ID, s.Fragment("S").Size())
		}
	}
}

func TestRoundDuplicateDestinationsDeliveredOnce(t *testing.T) {
	db := singleRel(10)
	c := NewCluster(2)
	c.Round(db, RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, 0, 0, 0)
	}))
	if got := c.Servers[0].TuplesIn; got != 10 {
		t.Errorf("duplicates delivered: %d tuples, want 10", got)
	}
}

func TestRoundAccumulatesAcrossCalls(t *testing.T) {
	db := singleRel(10)
	c := NewCluster(2)
	r := RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, 0)
	})
	c.Round(db, r)
	c.Round(db, r)
	if got := c.Servers[0].TuplesIn; got != 20 {
		t.Errorf("TuplesIn = %d, want 20 after two rounds", got)
	}
}

func TestRoundOutOfRangeReportsError(t *testing.T) {
	db := singleRel(1)
	c := NewCluster(2)
	c.Senders = 1
	err := c.Round(db, RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, 7)
	}))
	if err == nil {
		t.Fatal("expected error for bad destination")
	}
	if c.Loads().TotalTuples != 0 {
		t.Error("bad-destination tuple should be dropped")
	}
}

func TestComputeCollects(t *testing.T) {
	c := NewCluster(5)
	out := c.Compute(func(s *Server) []data.Tuple {
		return []data.Tuple{{int64(s.ID)}}
	})
	if len(out) != 5 {
		t.Fatalf("Compute returned %d tuples", len(out))
	}
	// Server order must be preserved.
	for i, tu := range out {
		if tu[0] != int64(i) {
			t.Errorf("out[%d] = %v", i, tu)
		}
	}
}

func TestReset(t *testing.T) {
	db := singleRel(10)
	c := NewCluster(2)
	c.Round(db, RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, 0)
	}))
	c.Reset()
	loads := c.Loads()
	if loads.TotalBits != 0 || loads.TotalTuples != 0 {
		t.Error("Reset did not clear loads")
	}
	if c.Servers[0].Fragment("S") != nil {
		t.Error("Reset did not clear fragments")
	}
}

func TestWithReplication(t *testing.T) {
	s := LoadSummary{TotalBits: 300}
	if got := s.WithReplication(100).Replication; got != 3 {
		t.Errorf("Replication = %v, want 3", got)
	}
	if got := s.WithReplication(0).Replication; got != 0 {
		t.Errorf("Replication with zero input = %v", got)
	}
}

func TestNewClusterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCluster(0)
}

func TestRoundMultipleRelations(t *testing.T) {
	db := data.NewDatabase()
	r1 := data.NewRelation("A", 1, 4) // 2 bits
	r1.Add(0)
	r1.Add(1)
	r2 := data.NewRelation("B", 2, 4) // 4 bits
	r2.Add(2, 3)
	db.Put(r1)
	db.Put(r2)
	c := NewCluster(2)
	c.Round(db, RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		if rel == "A" {
			return append(dst, 0)
		}
		return append(dst, 1)
	}))
	if c.Servers[0].Fragment("A").Size() != 2 || c.Servers[0].Fragment("B") != nil {
		t.Error("relation A misrouted")
	}
	if c.Servers[1].Fragment("B").Size() != 1 {
		t.Error("relation B misrouted")
	}
	if c.Servers[0].BitsIn != 4 || c.Servers[1].BitsIn != 4 {
		t.Errorf("bits: %d, %d; want 4, 4", c.Servers[0].BitsIn, c.Servers[1].BitsIn)
	}
}

func TestRoundManySendersConsistent(t *testing.T) {
	// Same routing with different sender counts must give identical loads.
	ref := NewCluster(8)
	refRouter := RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, int(tu[0]%8), int((tu[0]*7)%8))
	})
	db := singleRel(5000)
	ref.Senders = 1
	ref.Round(db, refRouter)

	c2 := NewCluster(8)
	c2.Senders = 13
	c2.Round(db, refRouter)

	l1, l2 := ref.Loads(), c2.Loads()
	if l1.TotalBits != l2.TotalBits || l1.MaxBits != l2.MaxBits {
		t.Errorf("sender count changed loads: %+v vs %+v", l1, l2)
	}
}

func TestHistogramBalanced(t *testing.T) {
	db := singleRel(1000)
	c := NewCluster(10)
	c.Round(db, RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, int(tu[0]%10))
	}))
	h := c.Histogram(4)
	total := 0
	for _, n := range h {
		total += n
	}
	if total != 10 {
		t.Errorf("histogram counts %v do not sum to p", h)
	}
	// Perfectly balanced: every server in the top bucket.
	if h[3] != 10 {
		t.Errorf("balanced loads should land in top bucket: %v", h)
	}
}

func TestHistogramEmptyCluster(t *testing.T) {
	c := NewCluster(5)
	h := c.Histogram(3)
	if h[0] != 5 {
		t.Errorf("zero-load histogram = %v", h)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewCluster(1).Histogram(0)
}

func TestRenderHistogram(t *testing.T) {
	db := singleRel(100)
	c := NewCluster(4)
	c.Round(db, RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, 0) // everything to server 0
	}))
	out := c.RenderHistogram(4, 20)
	if !strings.Contains(out, "servers") || !strings.Contains(out, "#") {
		t.Errorf("RenderHistogram output:\n%s", out)
	}
}

func TestGiniCoefficient(t *testing.T) {
	// All to one server: Gini near (n-1)/n.
	db := singleRel(100)
	c := NewCluster(4)
	c.Round(db, RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, 0)
	}))
	g := c.GiniCoefficient()
	if g < 0.7 {
		t.Errorf("one-server Gini = %v, want near 0.75", g)
	}
	// Balanced: near 0.
	c2 := NewCluster(4)
	c2.Round(db, RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, int(tu[0]%4))
	}))
	if g2 := c2.GiniCoefficient(); g2 > 0.1 {
		t.Errorf("balanced Gini = %v, want near 0", g2)
	}
	if NewCluster(3).GiniCoefficient() != 0 {
		t.Error("zero-load Gini should be 0")
	}
}

// Router purity property: the one-round model requires destinations to be
// a pure function of (relation, tuple). Routing the same database twice
// must produce bit-identical loads.
func TestRouterPurityProperty(t *testing.T) {
	db := singleRel(2000)
	router := RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, int(tu[0]%7), int((tu[0]*13)%7))
	})
	a := NewCluster(7)
	a.Round(db, router)
	b := NewCluster(7)
	b.Round(db, router)
	for i := range a.Servers {
		if a.Servers[i].BitsIn != b.Servers[i].BitsIn {
			t.Fatalf("server %d loads differ across identical rounds", i)
		}
	}
}

// Stress: many concurrent rounds on distinct clusters must not interfere.
func TestConcurrentClustersIndependent(t *testing.T) {
	db := singleRel(500)
	done := make(chan int64, 8)
	for g := 0; g < 8; g++ {
		go func() {
			c := NewCluster(4)
			c.Round(db, RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
				return append(dst, int(tu[0]%4))
			}))
			done <- c.Loads().TotalBits
		}()
	}
	first := <-done
	for g := 1; g < 8; g++ {
		if got := <-done; got != first {
			t.Fatalf("concurrent clusters disagree: %d vs %d", got, first)
		}
	}
}

func TestShuffleResidentMovesFragmentsServerToServer(t *testing.T) {
	db := singleRel(1000)
	c := NewCluster(10)
	// Round 1: mod-10 partition.
	if err := c.Round(db, RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, int(tu[0]%10))
	})); err != nil {
		t.Fatal(err)
	}
	bitsAfterRound := c.Loads().TotalBits
	// Shuffle the resident fragments into a different layout (div-100
	// partition) without touching the database.
	if err := c.ShuffleResident(RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, int(tu[0]/100))
	}), "S"); err != nil {
		t.Fatal(err)
	}
	// Every tuple was received twice now: loads accumulate across rounds.
	if got := c.Loads().TotalBits; got != 2*bitsAfterRound {
		t.Errorf("TotalBits after shuffle = %d, want %d", got, 2*bitsAfterRound)
	}
	// The new layout holds every tuple exactly once, by value range.
	total := 0
	for id, s := range c.Servers {
		f := s.Fragment("S")
		if f == nil {
			t.Fatalf("server %d has no fragment after shuffle", id)
		}
		total += f.Size()
		for _, v := range f.Column(0) {
			if int(v/100) != id {
				t.Fatalf("server %d holds %d after div-100 shuffle", id, v)
			}
		}
	}
	if total != 1000 {
		t.Errorf("shuffled tuple count = %d, want 1000", total)
	}
}

func TestShuffleResidentSkipsMissingNames(t *testing.T) {
	c := NewCluster(4)
	if err := c.ShuffleResident(RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, 0)
	}), "nope"); err != nil {
		t.Fatal(err)
	}
	if c.Loads().TotalBits != 0 {
		t.Error("shuffling a missing relation moved bits")
	}
}

func TestComputeResidentReplacesFragments(t *testing.T) {
	db := singleRel(100)
	c := NewCluster(4)
	if err := c.Round(db, RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, int(tu[0]%4))
	})); err != nil {
		t.Fatal(err)
	}
	c.ComputeResident(func(s *Server) *data.Relation {
		in := s.Fragment("S")
		if s.ID == 3 {
			return nil // one server produces nothing
		}
		out := data.NewRelation("doubled", 1, in.Domain)
		for _, v := range in.Column(0) {
			if 2*v < in.Domain {
				out.Add(2 * v)
			}
		}
		return out
	})
	for id, s := range c.Servers {
		if s.Fragment("S") != nil {
			t.Errorf("server %d still holds the consumed input fragment", id)
		}
		if id == 3 {
			if len(s.Received) != 0 {
				t.Errorf("server 3 should be empty, holds %d fragments", len(s.Received))
			}
			continue
		}
		if s.Fragment("doubled") == nil {
			t.Errorf("server %d missing its output fragment", id)
		}
	}
	// Local computation is free in the model: loads unchanged.
	if got := c.Loads().TotalTuples; got != 100 {
		t.Errorf("TotalTuples = %d changed by local compute", got)
	}
}

func TestRoundRelationsRoutesOnlyListed(t *testing.T) {
	db := singleRel(100)
	extra := data.NewRelation("T", 1, 1024)
	extra.Add(1)
	db.Put(extra)
	c := NewCluster(4)
	if err := c.RoundRelations(RouterFunc(func(rel string, tu data.Tuple, dst []int) []int {
		return append(dst, 0)
	}), db.MustGet("S")); err != nil {
		t.Fatal(err)
	}
	if c.Servers[0].Fragment("T") != nil {
		t.Error("unlisted relation was routed")
	}
	if c.Servers[0].Fragment("S") == nil || c.Servers[0].Fragment("S").Size() != 100 {
		t.Error("listed relation not fully routed")
	}
}
