// Package hypercube implements the HYPERCUBE (HC) algorithm of §3.1 of
// Beame–Koutris–Suciu: the p servers are organized into a k-dimensional
// hypercube with one dimension per query variable; every tuple is hashed on
// its own variables and replicated along the remaining dimensions. The
// package covers share selection (the LP (5) of the paper, the
// Afrati–Ullman total-load optimizer as a baseline, and the skew-resilient
// equal-share configuration), integer share rounding, subcube routing, and
// the end-to-end one-round algorithm on the MPC simulator.
package hypercube

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/lp"
	"repro/internal/query"
	"repro/internal/rational"
)

// OptimalExponents solves the share-exponent LP (5):
//
//	minimize λ  s.t.  Σ_i e_i ≤ 1,  ∀j: λ + Σ_{i ∈ S_j} e_i ≥ μ_j,  e, λ ≥ 0
//
// where μ_j = log_p(bits_j). It returns the share exponents e and λ; the
// optimized expected load per server is p^λ bits (Theorem 3.4). bits must
// be positive. The LP is solved exactly over rationals (μ_j converted
// losslessly from float64), so degenerate queries cannot destabilize it.
func OptimalExponents(q *query.Query, bits []float64, p int) (e []float64, lambda float64) {
	if len(bits) != q.NumAtoms() {
		panic("hypercube: bits length mismatch")
	}
	if p < 2 {
		panic("hypercube: need p >= 2")
	}
	k := q.NumVars()
	prob := lp.NewProblem(k + 1) // e_0..e_{k-1}, λ
	prob.Objective[k].SetInt64(1)

	sum := rational.NewVector(k + 1)
	for i := 0; i < k; i++ {
		sum[i].SetInt64(1)
	}
	prob.AddConstraint(sum, lp.LE, rational.One())

	logP := math.Log(float64(p))
	for j, a := range q.Atoms {
		if bits[j] <= 0 {
			panic(fmt.Sprintf("hypercube: bits[%d] = %v", j, bits[j]))
		}
		mu := math.Log(bits[j]) / logP
		row := rational.NewVector(k + 1)
		for _, v := range a.Vars {
			row[v].SetInt64(1)
		}
		row[k].SetInt64(1)
		prob.AddConstraint(row, lp.GE, rational.FromFloat(mu))
	}
	s := prob.Solve()
	if s.Status != lp.Optimal {
		panic("hypercube: share LP " + s.Status.String())
	}
	e = make([]float64, k)
	for i := 0; i < k; i++ {
		e[i], _ = s.X[i].Float64()
	}
	lambda, _ = s.X[k].Float64()
	return e, lambda
}

// AfratiUllmanExponents reproduces the share optimization of Afrati &
// Ullman (EDBT 2010): minimize the total (sum, not max) load
// Σ_j bits_j / p^{Σ_{i∈S_j} e_i} over the simplex Σ_i e_i = 1, e ≥ 0.
// The objective is convex in e, so projected gradient descent converges;
// we run a fixed budget of iterations, ample for the tiny dimension counts
// here. This serves as the baseline share picker in ablation A2.
func AfratiUllmanExponents(q *query.Query, bits []float64, p int) []float64 {
	k := q.NumVars()
	e := make([]float64, k)
	for i := range e {
		e[i] = 1.0 / float64(k)
	}
	logP := math.Log(float64(p))
	grad := make([]float64, k)
	for iter := 0; iter < 4000; iter++ {
		for i := range grad {
			grad[i] = 0
		}
		for j, a := range q.Atoms {
			exp := 0.0
			for _, v := range a.Vars {
				exp += e[v]
			}
			load := bits[j] * math.Exp(-logP*exp)
			for _, v := range a.Vars {
				grad[v] -= logP * load
			}
		}
		// Normalize the gradient scale so the step size is dimensionless.
		norm := 0.0
		for _, g := range grad {
			norm += g * g
		}
		norm = math.Sqrt(norm)
		if norm < 1e-15 {
			break
		}
		step := 0.5 / (1 + float64(iter)/40)
		for i := range e {
			e[i] -= step * grad[i] / norm
		}
		projectSimplex(e)
	}
	return e
}

// projectSimplex projects v onto {x ≥ 0, Σ x_i = 1} in Euclidean norm
// (the standard sort-based algorithm).
func projectSimplex(v []float64) {
	n := len(v)
	u := append([]float64(nil), v...)
	sort.Sort(sort.Reverse(sort.Float64Slice(u)))
	css := 0.0
	rho := -1
	var theta float64
	for i := 0; i < n; i++ {
		css += u[i]
		t := (css - 1) / float64(i+1)
		if u[i]-t > 0 {
			rho = i
			theta = t
		}
	}
	if rho < 0 {
		for i := range v {
			v[i] = 1.0 / float64(n)
		}
		return
	}
	for i := range v {
		v[i] = math.Max(0, v[i]-theta)
	}
}

// Rounding selects how fractional shares p^{e_i} become integers.
type Rounding int

// Rounding strategies (ablation A1).
const (
	// RoundFloor takes p_i = max(1, ⌊p^{e_i}⌋).
	RoundFloor Rounding = iota
	// RoundGreedy starts from RoundFloor and greedily increments the
	// dimension with the largest fractional loss while the product stays
	// ≤ p. This is the default.
	RoundGreedy
	// RoundPowerOfTwo rounds each share down to a power of two, then
	// greedily doubles dimensions while the product stays ≤ p.
	RoundPowerOfTwo
)

func (r Rounding) String() string {
	switch r {
	case RoundFloor:
		return "floor"
	case RoundGreedy:
		return "greedy"
	case RoundPowerOfTwo:
		return "pow2"
	}
	return "?"
}

// RoundShares converts share exponents into integer shares with product
// ≤ p. Exponents must be ≥ 0 and sum to ≤ 1 (tolerating float slack).
func RoundShares(e []float64, p int, strategy Rounding) []int {
	k := len(e)
	ideal := make([]float64, k)
	shares := make([]int, k)
	for i, ei := range e {
		ideal[i] = math.Pow(float64(p), ei)
		shares[i] = int(ideal[i] + 1e-9) // floor with float-noise guard
		if shares[i] < 1 {
			shares[i] = 1
		}
	}
	switch strategy {
	case RoundFloor:
		// done
	case RoundGreedy:
		for {
			prod := product(shares)
			best, bestGain := -1, 0.0
			for i := range shares {
				if prod/shares[i]*(shares[i]+1) > p {
					continue
				}
				gain := ideal[i] / float64(shares[i])
				if gain > bestGain {
					best, bestGain = i, gain
				}
			}
			if best == -1 {
				break
			}
			shares[best]++
		}
	case RoundPowerOfTwo:
		for i := range shares {
			shares[i] = 1 << uint(math.Floor(math.Log2(float64(shares[i]))))
		}
		for {
			prod := product(shares)
			best, bestGain := -1, 0.0
			for i := range shares {
				if prod/shares[i]*(shares[i]*2) > p {
					continue
				}
				gain := ideal[i] / float64(shares[i])
				if gain > bestGain {
					best, bestGain = i, gain
				}
			}
			if best == -1 {
				break
			}
			shares[best] *= 2
		}
	}
	return shares
}

// RoundToBudget rounds ideal (fractional) shares down to integers and then
// greedily increments the dimension with the largest fractional loss while
// the product stays within budget. Used by the bin-combination algorithm,
// whose per-hitter blocks have budget p^{1-α} rather than p.
func RoundToBudget(ideal []float64, budget int) []int {
	if budget < 1 {
		budget = 1
	}
	shares := make([]int, len(ideal))
	for i, f := range ideal {
		shares[i] = int(f + 1e-9)
		if shares[i] < 1 {
			shares[i] = 1
		}
	}
	// Floor may overshoot the budget when Σ exponents carry float slack;
	// shrink the largest dimension until feasible.
	for product(shares) > budget {
		maxI := 0
		for i, s := range shares {
			if s > shares[maxI] {
				maxI = i
			}
		}
		if shares[maxI] == 1 {
			break
		}
		shares[maxI]--
	}
	for {
		prod := product(shares)
		best, bestGain := -1, 0.0
		for i := range shares {
			if prod/shares[i]*(shares[i]+1) > budget {
				continue
			}
			gain := ideal[i] / float64(shares[i])
			if gain > bestGain {
				best, bestGain = i, gain
			}
		}
		if best == -1 {
			break
		}
		shares[best]++
	}
	return shares
}

// EqualShares returns the skew-resilient configuration of Corollary 3.2
// (ii): every variable gets share ⌊p^{1/k}⌋ (greedily bumped while the
// product stays ≤ p), guaranteeing max load O(max_j M_j / p^{1/k}) on any
// database, skewed or not.
func EqualShares(k, p int) []int {
	e := make([]float64, k)
	for i := range e {
		e[i] = 1.0 / float64(k)
	}
	return RoundShares(e, p, RoundGreedy)
}

func product(xs []int) int {
	p := 1
	for _, x := range xs {
		p *= x
	}
	return p
}

// PredictLoadSkewFree returns the Corollary 3.2 (i) expected load in bits
// for explicit integer shares on a skew-free database:
// max_j M_j / Π_{i ∈ S_j} p_i.
func PredictLoadSkewFree(q *query.Query, bits []float64, shares []int) float64 {
	if len(bits) != q.NumAtoms() || len(shares) != q.NumVars() {
		panic("hypercube: PredictLoadSkewFree shape mismatch")
	}
	worst := 0.0
	for j, a := range q.Atoms {
		denom := 1.0
		for _, v := range a.Vars {
			denom *= float64(shares[v])
		}
		if l := bits[j] / denom; l > worst {
			worst = l
		}
	}
	return worst
}

// PredictLoadWorstCase returns the Corollary 3.2 (ii) guarantee in bits,
// valid on ANY database regardless of skew:
// max_j M_j / min_{i ∈ S_j} p_i.
func PredictLoadWorstCase(q *query.Query, bits []float64, shares []int) float64 {
	if len(bits) != q.NumAtoms() || len(shares) != q.NumVars() {
		panic("hypercube: PredictLoadWorstCase shape mismatch")
	}
	worst := 0.0
	for j, a := range q.Atoms {
		minShare := shares[a.Vars[0]]
		for _, v := range a.Vars[1:] {
			if shares[v] < minShare {
				minShare = shares[v]
			}
		}
		if l := bits[j] / float64(minShare); l > worst {
			worst = l
		}
	}
	return worst
}
