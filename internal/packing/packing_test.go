package packing

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"

	"repro/internal/query"
	"repro/internal/rational"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func TestPKTriangleMatchesExample37(t *testing.T) {
	// Example 3.7: pk(C3) has exactly four vertices:
	// (1/2,1/2,1/2), (1,0,0), (0,1,0), (0,0,1).
	pk := PK(query.Triangle())
	if len(pk) != 4 {
		t.Fatalf("|pk(C3)| = %d, want 4: %v", len(pk), pk)
	}
	want := []rational.Vector{
		{rat(1, 2), rat(1, 2), rat(1, 2)},
		rational.VectorFromInts(1, 0, 0),
		rational.VectorFromInts(0, 1, 0),
		rational.VectorFromInts(0, 0, 1),
	}
	for _, w := range want {
		found := false
		for _, v := range pk {
			if v.Equal(w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("pk(C3) missing %v", w)
		}
	}
}

func TestPKJoin2(t *testing.T) {
	// Join2 has packings (1,0) and (0,1); (0,0) dominated.
	pk := PK(query.Join2())
	if len(pk) != 2 {
		t.Fatalf("|pk(Join2)| = %d: %v", len(pk), pk)
	}
}

func TestPKCartesian(t *testing.T) {
	// Cartesian product of u relations: the only non-dominated vertex is
	// all-ones.
	pk := PK(query.Cartesian(3))
	if len(pk) != 1 || !pk[0].Equal(rational.VectorFromInts(1, 1, 1)) {
		t.Errorf("pk(cart3) = %v", pk)
	}
}

func TestPKPathL3(t *testing.T) {
	// L3 = S1(x1,x2), S2(x2,x3), S3(x3,x4). (1,0,1) must be a vertex
	// (§2.2 gives it as a tight feasible packing).
	pk := PK(query.Path(3))
	found := false
	for _, v := range pk {
		if v.Equal(rational.VectorFromInts(1, 0, 1)) {
			found = true
		}
	}
	if !found {
		t.Errorf("pk(L3) missing (1,0,1): %v", pk)
	}
}

func TestTauValues(t *testing.T) {
	cases := []struct {
		q    *query.Query
		want float64
	}{
		{query.Triangle(), 1.5},
		{query.Join2(), 1},
		{query.Cartesian(2), 2},
		{query.Cartesian(4), 4},
		{query.Path(3), 2},   // vertex (1,0,1)
		{query.Star(3), 1},   // all atoms share z
		{query.Cycle(4), 2},  // opposite edges
		{query.Path(2), 1.5}, // (1/2? no: L2 = S1(x1,x2),S2(x2,x3): (1,0),(0,1) value 1... and (1/2,1/2)? sum at x2 = 1 ok, value 1. τ*=1? Let me not guess wrong — computed below.
	}
	// Fix the L2 expectation analytically: constraints u1<=1, u1+u2<=1,
	// u2<=1. Max u1+u2 = 1. So τ*(L2)=1.
	cases[7].want = 1
	for _, c := range cases {
		if got := Tau(c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("τ*(%s) = %v, want %v", c.q.Name, got, c.want)
		}
	}
}

func TestTauEqualsDualCoverForTightCases(t *testing.T) {
	// LP duality: max packing value = min fractional *vertex* cover.
	// For C3 the vertex cover number is 3/2; for C4 it is 2.
	if got := Tau(query.Triangle()); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("τ*(C3) = %v", got)
	}
	if got := Tau(query.Cycle(4)); math.Abs(got-2) > 1e-12 {
		t.Errorf("τ*(C4) = %v", got)
	}
}

func TestIsPackingAndCover(t *testing.T) {
	q := query.Triangle()
	half := rational.Vector{rat(1, 2), rat(1, 2), rat(1, 2)}
	if !IsPacking(q, half) {
		t.Error("(1/2,1/2,1/2) should be a packing of C3")
	}
	if !IsCover(q, half) {
		t.Error("(1/2,1/2,1/2) should be a cover of C3")
	}
	if !IsTight(q, half) {
		t.Error("(1/2,1/2,1/2) should be tight on C3")
	}
	ones := rational.VectorFromInts(1, 1, 1)
	if IsPacking(q, ones) {
		t.Error("(1,1,1) is not a packing of C3")
	}
	if !IsCover(q, ones) {
		t.Error("(1,1,1) is a cover of C3")
	}
	neg := rational.Vector{rat(-1, 2), rat(1, 2), rat(1, 2)}
	if IsPacking(q, neg) || IsCover(q, neg) {
		t.Error("negative weights accepted")
	}
	if IsPacking(q, rational.VectorFromInts(1)) {
		t.Error("wrong arity accepted")
	}
	if IsCover(q, rational.VectorFromInts(1)) {
		t.Error("wrong arity accepted")
	}
}

func TestTightPackingIsTightCover(t *testing.T) {
	// §2.2: every tight fractional edge packing is a tight fractional edge
	// cover. Verify on all tight vertices of catalog queries.
	for name, q := range query.Catalog() {
		for _, v := range Vertices(q) {
			if IsTight(q, v) {
				if !IsCover(q, v) {
					t.Errorf("%s: tight packing %v is not a cover", name, v)
				}
			}
		}
	}
}

func TestMinCoverTriangle(t *testing.T) {
	_, val := MinCover(query.Triangle())
	if val.Cmp(rat(3, 2)) != 0 {
		t.Errorf("ρ*(C3) = %v, want 3/2", val)
	}
}

func TestMinCoverStar(t *testing.T) {
	// Star_3: leaves x1..x3 each need their atom at weight 1: ρ* = 3.
	_, val := MinCover(query.Star(3))
	if val.Cmp(rat(3, 1)) != 0 {
		t.Errorf("ρ*(star3) = %v, want 3", val)
	}
}

func TestAGMBoundTriangle(t *testing.T) {
	// |C3| <= sqrt(m1 m2 m3) (Friedgut application in §2.3).
	got := AGMBound(query.Triangle(), []float64{100, 100, 100})
	want := math.Sqrt(100 * 100 * 100)
	if math.Abs(got-want)/want > 1e-9 {
		t.Errorf("AGM(C3) = %v, want %v", got, want)
	}
}

func TestAGMBoundJoin(t *testing.T) {
	// Join2 cover needs u1=u2=1: bound m1*m2.
	got := AGMBound(query.Join2(), []float64{10, 20})
	if math.Abs(got-200)/200 > 1e-9 {
		t.Errorf("AGM(join2) = %v, want 200", got)
	}
}

func TestAGMBoundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for bad cardinalities")
		}
	}()
	AGMBound(query.Join2(), []float64{10})
}

func TestSaturatesJoin2(t *testing.T) {
	// Example 4.8: residual of Join2 on x={z} is S1(x), S2(y); its sole
	// maximal packing (1,1) saturates z.
	q := query.Join2()
	x := query.NewVarSet(2)
	sat := SaturatingPackings(q, x)
	found := false
	for _, u := range sat {
		if u.Equal(rational.VectorFromInts(1, 1)) {
			found = true
		}
	}
	if !found {
		t.Errorf("saturating packings of Join2 on {z}: %v, want (1,1)", sat)
	}
}

func TestSaturatesTriangleExample48(t *testing.T) {
	// Example 4.8: C3 with x={x1}: residual S1(x2),S2(x2,x3),S3(x3).
	// (1,0,1) saturates x1; (0,1,0) does not.
	q := query.Triangle()
	x := query.NewVarSet(0)
	if !Saturates(q, rational.VectorFromInts(1, 0, 1), x) {
		t.Error("(1,0,1) should saturate x1")
	}
	if Saturates(q, rational.VectorFromInts(0, 1, 0), x) {
		t.Error("(0,1,0) should not saturate x1")
	}
	sat := SaturatingPackings(q, x)
	found := false
	for _, u := range sat {
		if u.Equal(rational.VectorFromInts(1, 0, 1)) {
			found = true
		}
	}
	if !found {
		t.Errorf("saturating packings missing (1,0,1): %v", sat)
	}
}

func TestResidualVerticesNullaryAtomsBounded(t *testing.T) {
	// Residual of Join2 on all vars: both atoms nullary; cap keeps the
	// polytope bounded with max vertex (1,1).
	q := query.Join2()
	vs := ResidualVertices(q, query.NewVarSet(0, 1, 2))
	max := rational.VectorFromInts(1, 1)
	found := false
	for _, v := range vs {
		if v.Equal(max) {
			found = true
		}
		for _, c := range v {
			if c.Cmp(rat(1, 1)) > 0 {
				t.Errorf("vertex %v exceeds cap", v)
			}
		}
	}
	if !found {
		t.Errorf("missing (1,1) vertex: %v", vs)
	}
}

func TestNonDominatedFiltering(t *testing.T) {
	vs := []rational.Vector{
		rational.VectorFromInts(0, 0),
		rational.VectorFromInts(1, 0),
		rational.VectorFromInts(1, 1),
	}
	nd := NonDominated(vs)
	if len(nd) != 1 || !nd[0].Equal(rational.VectorFromInts(1, 1)) {
		t.Errorf("NonDominated = %v", nd)
	}
}

func TestNonDominatedKeepsIncomparable(t *testing.T) {
	vs := []rational.Vector{
		rational.VectorFromInts(1, 0),
		rational.VectorFromInts(0, 1),
	}
	if nd := NonDominated(vs); len(nd) != 2 {
		t.Errorf("NonDominated dropped incomparable vectors: %v", nd)
	}
}

// Property: every vertex of the packing polytope is a feasible packing, and
// every element of PK is a vertex.
func TestVerticesAreFeasibleProperty(t *testing.T) {
	queries := []*query.Query{
		query.Triangle(), query.Join2(), query.Path(3), query.Star(3), query.Cycle(4), query.Cartesian(3),
	}
	for _, q := range queries {
		vs := Vertices(q)
		if len(vs) == 0 {
			t.Errorf("%s: no vertices", q.Name)
		}
		for _, v := range vs {
			if !IsPacking(q, v) {
				t.Errorf("%s: vertex %v infeasible", q.Name, v)
			}
		}
		for _, v := range PK(q) {
			found := false
			for _, w := range vs {
				if w.Equal(v) {
					found = true
				}
			}
			if !found {
				t.Errorf("%s: pk element %v not a vertex", q.Name, v)
			}
		}
	}
}

// Property: τ* is monotone — the max packing value of a subquery (fewer
// atoms) is at most τ* of the full query for star queries where atoms are
// interchangeable.
func TestTauMonotoneStars(t *testing.T) {
	f := func(n uint8) bool {
		r := int(n%4) + 1
		return Tau(query.Star(r)) <= Tau(query.Star(r+1))+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}

// Property: AGM bound with all cardinalities m equals m^{ρ*}.
func TestAGMEqualCardinalitiesProperty(t *testing.T) {
	qs := []*query.Query{query.Triangle(), query.Join2(), query.Path(3), query.Star(2)}
	for _, q := range qs {
		m := 64.0
		ms := make([]float64, q.NumAtoms())
		for i := range ms {
			ms[i] = m
		}
		_, rho := MinCover(q)
		rhoF, _ := rho.Float64()
		want := math.Pow(m, rhoF)
		got := AGMBound(q, ms)
		if math.Abs(got-want)/want > 1e-9 {
			t.Errorf("%s: AGM = %v, want m^ρ* = %v", q.Name, got, want)
		}
	}
}
