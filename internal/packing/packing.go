// Package packing computes fractional edge packings and covers of
// conjunctive queries — the combinatorial objects that characterize
// one-round communication cost in Beame–Koutris–Suciu (PODS 2014).
//
// A fractional edge packing of q assigns a weight u_j ≥ 0 to every atom so
// that for each variable x_i, Σ_{j: x_i ∈ S_j} u_j ≤ 1 (Eq. 2 of the
// paper). The package enumerates the vertices of this polytope exactly,
// extracts the non-dominated vertex set pk(q) of Theorem 3.6, computes the
// maximum packing value τ* (= fractional vertex covering number), fractional
// edge covers and the AGM size bound, and the saturating packings of
// residual queries used by the skew lower bounds of §4.3.
package packing

import (
	"math"
	"math/big"

	"repro/internal/lp"
	"repro/internal/query"
	"repro/internal/rational"
)

// Polytope returns the constraint system (A, b) of the fractional edge
// packing polytope {u ≥ 0 : A·u ≤ b} of q: one row per variable
// (Σ_{j: x_i ∈ S_j} u_j ≤ 1) plus one cap row u_j ≤ 1 per atom. The caps
// are redundant for atoms that contain at least one variable and keep the
// polytope bounded for nullary atoms, which arise in residual queries; they
// never exclude a packing of the original query, where u_j ≤ 1 always holds.
func Polytope(q *query.Query) (*rational.Matrix, rational.Vector) {
	k, l := q.NumVars(), q.NumAtoms()
	a := rational.NewMatrix(k+l, l)
	b := rational.NewVector(k + l)
	for i := 0; i < k; i++ {
		for _, j := range q.AtomsWithVar(i) {
			a.SetInt(i, j, 1)
		}
		b[i].SetInt64(1)
	}
	for j := 0; j < l; j++ {
		a.SetInt(k+j, j, 1)
		b[k+j].SetInt64(1)
	}
	return a, b
}

// Vertices returns all vertices of the packing polytope of q, in
// lexicographic order.
func Vertices(q *query.Query) []rational.Vector {
	a, b := Polytope(q)
	return lp.EnumerateVertices(a, b)
}

// NonDominated filters a vertex list down to the vectors not dominated by
// another vector in the list (u is dominated by u' when u' ≥ u
// componentwise and u' ≠ u). This is pk(q) when applied to Vertices(q).
func NonDominated(vs []rational.Vector) []rational.Vector {
	var out []rational.Vector
	for i, u := range vs {
		dominated := false
		for j, w := range vs {
			if i != j && w.Dominates(u) && !w.Equal(u) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, u)
		}
	}
	return out
}

// PK returns pk(q): the non-dominated vertices of the packing polytope
// (Theorem 3.6). By that theorem, both the optimal HyperCube load and the
// lower bound are max_{u ∈ pk(q)} L(u, M, p).
func PK(q *query.Query) []rational.Vector {
	return NonDominated(Vertices(q))
}

// IsPacking reports whether u is a feasible fractional edge packing of q.
func IsPacking(q *query.Query, u rational.Vector) bool {
	if len(u) != q.NumAtoms() {
		return false
	}
	for _, x := range u {
		if x.Sign() < 0 {
			return false
		}
	}
	one := rational.One()
	for i := 0; i < q.NumVars(); i++ {
		sum := new(big.Rat)
		for _, j := range q.AtomsWithVar(i) {
			sum.Add(sum, u[j])
		}
		if sum.Cmp(one) > 0 {
			return false
		}
	}
	return true
}

// IsCover reports whether u is a feasible fractional edge cover of q
// (Eq. 2 with ≥).
func IsCover(q *query.Query, u rational.Vector) bool {
	if len(u) != q.NumAtoms() {
		return false
	}
	for _, x := range u {
		if x.Sign() < 0 {
			return false
		}
	}
	one := rational.One()
	for i := 0; i < q.NumVars(); i++ {
		sum := new(big.Rat)
		for _, j := range q.AtomsWithVar(i) {
			sum.Add(sum, u[j])
		}
		if sum.Cmp(one) < 0 {
			return false
		}
	}
	return true
}

// IsTight reports whether u satisfies every variable constraint with
// equality; a tight packing is simultaneously a tight cover (§2.2).
func IsTight(q *query.Query, u rational.Vector) bool {
	one := rational.One()
	for i := 0; i < q.NumVars(); i++ {
		sum := new(big.Rat)
		for _, j := range q.AtomsWithVar(i) {
			sum.Add(sum, u[j])
		}
		if sum.Cmp(one) != 0 {
			return false
		}
	}
	return true
}

// Value returns u = Σ_j u_j, the value of the packing.
func Value(u rational.Vector) *big.Rat { return u.Sum() }

// MaxPacking returns a maximum fractional edge packing of q and its value
// τ*, which equals the fractional vertex covering number of q.
func MaxPacking(q *query.Query) (rational.Vector, *big.Rat) {
	vs := Vertices(q)
	ones := rational.NewVector(q.NumAtoms())
	for j := range ones {
		ones[j].SetInt64(1)
	}
	return lp.MaximizeOverVertices(vs, ones)
}

// Tau returns τ*(q) as a float for convenience.
func Tau(q *query.Query) float64 {
	_, v := MaxPacking(q)
	f, _ := v.Float64()
	return f
}

// MinCover returns a minimum fractional edge cover of q and its value ρ*
// by solving the covering LP exactly.
func MinCover(q *query.Query) (rational.Vector, *big.Rat) {
	l := q.NumAtoms()
	p := lp.NewProblem(l)
	for j := 0; j < l; j++ {
		p.Objective[j].SetInt64(1)
	}
	for i := 0; i < q.NumVars(); i++ {
		row := rational.NewVector(l)
		for _, j := range q.AtomsWithVar(i) {
			row[j].SetInt64(1)
		}
		p.AddConstraint(row, lp.GE, rational.One())
	}
	s := p.Solve()
	if s.Status != lp.Optimal {
		panic("packing: covering LP not optimal: " + s.Status.String())
	}
	return s.X, s.Objective
}

// AGMBound returns the Atserias–Grohe–Marx bound on the number of output
// tuples: min over fractional edge covers u of Π_j m_j^{u_j}, computed by
// minimizing Σ_j u_j·log(m_j) over the covering LP. Cardinalities must be
// ≥ 1.
func AGMBound(q *query.Query, m []float64) float64 {
	if len(m) != q.NumAtoms() {
		panic("packing: AGMBound cardinality count mismatch")
	}
	l := q.NumAtoms()
	p := lp.NewProblem(l)
	for j := 0; j < l; j++ {
		if m[j] < 1 {
			panic("packing: AGMBound needs cardinalities >= 1")
		}
		p.Objective[j] = rational.FromFloat(math.Log2(m[j]))
	}
	for i := 0; i < q.NumVars(); i++ {
		row := rational.NewVector(l)
		for _, j := range q.AtomsWithVar(i) {
			row[j].SetInt64(1)
		}
		p.AddConstraint(row, lp.GE, rational.One())
	}
	s := p.Solve()
	if s.Status != lp.Optimal {
		panic("packing: AGM LP not optimal: " + s.Status.String())
	}
	obj, _ := s.Objective.Float64()
	return math.Exp2(obj)
}

// Saturates reports whether the packing u of the residual query q_x
// saturates every variable of x in the original query q: for each x_i ∈ x,
// Σ_{j: x_i ∈ vars(S_j) in q} u_j ≥ 1 (§4.3).
func Saturates(q *query.Query, u rational.Vector, x query.VarSet) bool {
	one := rational.One()
	for v := range x {
		sum := new(big.Rat)
		for _, j := range q.AtomsWithVar(v) {
			sum.Add(sum, u[j])
		}
		if sum.Cmp(one) < 0 {
			return false
		}
	}
	return true
}

// ResidualVertices returns the vertices of the packing polytope of the
// residual query q_x. Atom order (and hence weight indices) matches q.
func ResidualVertices(q *query.Query, x query.VarSet) []rational.Vector {
	res, _ := q.Residual(x)
	return Vertices(res)
}

// SaturatingPackings returns the residual-polytope vertices that saturate x,
// the candidate set for the lower bound L_x of Theorem 4.7. The result may
// be empty (then x contributes no bound).
func SaturatingPackings(q *query.Query, x query.VarSet) []rational.Vector {
	var out []rational.Vector
	for _, u := range ResidualVertices(q, x) {
		if Saturates(q, u, x) {
			out = append(out, u)
		}
	}
	return out
}
