package main

// The go vet -vettool protocol ("unitchecker"): cmd/go type-checks the
// build graph itself and invokes the tool once per package with a JSON
// config file naming the package's sources and the export-data files of
// its dependencies. The tool analyzes that one package, writes a facts
// file (empty here — skewlint's analyzers are fact-free by design), and
// exits non-zero if it found anything. This mirrors the contract of
// x/tools' go/analysis/unitchecker without depending on it.

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/load"
)

// vetConfig is the JSON schema cmd/go writes for vet tools.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// unitcheck runs the suite on one package described by cfgFile and returns
// the process exit code.
func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "skewlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "skewlint: parsing %s: %v\n", cfgFile, err)
		return 2
	}
	// Facts output must exist even when empty, or cmd/go fails the step.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "skewlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: facts only, and skewlint has none
	}

	fset := token.NewFileSet()
	pkg := &load.Package{
		ID:      cfg.ID,
		PkgPath: stripVariant(cfg.ImportPath),
		Dir:     cfg.Dir,
		Fset:    fset,
	}
	for _, name := range cfg.GoFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(cfg.Dir, name)
		}
		f, perr := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if perr != nil {
			fmt.Fprintln(os.Stderr, "skewlint:", perr)
			return 2
		}
		pkg.Syntax = append(pkg.Syntax, f)
		pkg.IsTest = append(pkg.IsTest, strings.HasSuffix(name, "_test.go"))
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Instances:  map[*ast.Ident]types.Instance{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	tc := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := tc.Check(cfg.ImportPath, fset, pkg.Syntax, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "skewlint: type checking %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	pkg.Types = tpkg
	pkg.TypesInfo = info

	findings, err := lint.Run([]*load.Package{pkg}, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "skewlint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// stripVariant removes go list's test-variant suffix from an import path.
func stripVariant(path string) string {
	if i := strings.Index(path, " ["); i >= 0 {
		return path[:i]
	}
	return path
}
