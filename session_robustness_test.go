package repro

import (
	"context"
	"errors"
	"runtime"
	"testing"
)

// spinUntil yields (never sleeps) until cond holds or a bounded number of
// yields elapses.
func spinUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 5_000_000; i++ {
		if cond() {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("condition never held: %s", what)
}

// driftingSession reproduces TestSessionDriftReplan's setup: a hypercube
// plan whose statistics a planted hot value then invalidates.
func driftingSession(t *testing.T, cfg Config) (*Session, *Query, *Database) {
	t.Helper()
	db := NewDatabase()
	db.Put(MatchingRelation("S1", 2, 4000, 1<<20, 1))
	db.Put(MatchingRelation("S2", 2, 4000, 1<<20, 2))
	q := Join2Query()
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, q, db
}

func plantSkew(t *testing.T, db *Database) {
	t.Helper()
	s2 := db.MustGet("S2")
	d := NewDelta()
	for i := 0; i < 2000; i++ {
		tu := s2.Tuple(i)
		d.Delete("S2", tu...).Insert("S2", tu[0], 7)
	}
	if err := db.Apply(d); err != nil {
		t.Fatal(err)
	}
}

func TestSessionBackgroundReplan(t *testing.T) {
	s, q, db := driftingSession(t, Config{P: 16, Seed: 1, ReplanDriftFactor: 3, BackgroundReplan: true})
	defer s.Close()
	ctx := context.Background()

	r1, err := s.Exec(ctx, q, db)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Plan.Strategy != StrategyHyperCube {
		t.Fatalf("initial strategy %v", r1.Plan.Strategy)
	}
	plantSkew(t, db)

	// The drifted call marks the entry stale; with background replanning the
	// stale plan keeps serving and no request ever reports Replanned.
	for i := 0; i < 2; i++ {
		r, err := s.Exec(ctx, q, db)
		if err != nil {
			t.Fatal(err)
		}
		if r.Replanned {
			t.Fatalf("exec %d replanned on the request path", i)
		}
	}
	spinUntil(t, "background replan completed", func() bool {
		return s.CacheStats().BackgroundReplans >= 1
	})
	// The swapped-in plan was built from post-skew statistics.
	spinUntil(t, "swapped plan picks skew-join", func() bool {
		r, err := s.Exec(ctx, q, db)
		if err != nil {
			t.Fatal(err)
		}
		if r.Replanned {
			t.Fatal("post-swap exec reported Replanned")
		}
		return r.Plan.Strategy == StrategySkewJoin
	})
	if st := s.CacheStats(); st.BackgroundReplans < 1 {
		t.Fatalf("BackgroundReplans = %d", st.BackgroundReplans)
	}
}

func TestSessionOverloadShed(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{}, 64)
	f := &Faults{Seed: 1, Straggler: 1, OnStraggle: func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	}}
	db := NewDatabase()
	db.Put(MatchingRelation("S1", 2, 400, 1<<20, 1))
	db.Put(MatchingRelation("S2", 2, 400, 1<<20, 2))
	q := Join2Query()
	s, err := Open(Config{P: 8, Seed: 1, MaxInFlight: 1, MaxQueue: -1, Faults: f})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ctx := context.Background()

	first := make(chan error, 1)
	go func() {
		_, err := s.Exec(ctx, q, db)
		first <- err
	}()
	// The first call is mid-round, parked in the straggle hook with the only
	// slot held.
	<-entered
	if st := s.AdmissionStats(); st.InFlight != 1 {
		t.Fatalf("InFlight = %d with a call parked mid-round", st.InFlight)
	}

	// No queue: the second call sheds immediately with the typed error.
	if _, err := s.Exec(ctx, q, db); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second Exec: %v, want ErrOverloaded", err)
	}

	close(release)
	if err := <-first; err != nil {
		t.Fatalf("parked Exec after release: %v", err)
	}
	st := s.AdmissionStats()
	if st.Admitted != 1 || st.Shed != 1 || st.InFlight != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestSessionCloseMidFlight(t *testing.T) {
	baseline := runtime.NumGoroutine()

	release := make(chan struct{})
	entered := make(chan struct{}, 64)
	f := &Faults{Seed: 1, Straggler: 1, OnStraggle: func() {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-release
	}}
	db := NewDatabase()
	db.Put(MatchingRelation("S1", 2, 400, 1<<20, 1))
	db.Put(MatchingRelation("S2", 2, 400, 1<<20, 2))
	q := Join2Query()
	s, err := Open(Config{P: 8, Seed: 1, MaxInFlight: 1, MaxQueue: -1, BackgroundReplan: true, Faults: f})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	first := make(chan error, 1)
	go func() {
		_, err := s.Exec(ctx, q, db)
		first <- err
	}()
	<-entered

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()
	// Close rejects new work immediately but drains the in-flight call
	// before returning. (Probes shed with ErrOverloaded until the close
	// lands — the parked call still owns the only slot — then flip to the
	// closed error.)
	spinUntil(t, "session rejects post-close Exec", func() bool {
		_, err := s.Exec(ctx, q, db)
		return errors.Is(err, ErrSessionClosed)
	})
	select {
	case <-closed:
		t.Fatal("Close returned with an Exec still in flight")
	default:
	}

	close(release)
	if err := <-first; err != nil {
		t.Fatalf("in-flight Exec during Close: %v", err)
	}
	<-closed
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	// Everything the session owned (gate waiters, replan worker) is gone.
	spinUntil(t, "goroutines drained after Close", func() bool {
		return runtime.NumGoroutine() <= baseline
	})
}

func TestErrorTaxonomy(t *testing.T) {
	errs := map[string]error{
		"ErrOverloaded":     ErrOverloaded,
		"ErrSessionClosed":  ErrSessionClosed,
		"ErrStandingClosed": ErrStandingClosed,
		"ErrTornRound":      ErrTornRound,
		"ErrComputeFailed":  ErrComputeFailed,
	}
	for na, ea := range errs {
		for nb, eb := range errs {
			if (na == nb) != errors.Is(ea, eb) {
				t.Errorf("errors.Is(%s, %s) = %v", na, nb, errors.Is(ea, eb))
			}
		}
	}

	// Errors surfacing from real degradation paths stay errors.Is-matchable
	// through their wrapping.
	db := NewDatabase()
	db.Put(MatchingRelation("S1", 2, 200, 1<<20, 1))
	db.Put(MatchingRelation("S2", 2, 200, 1<<20, 2))
	q := Join2Query()
	s, err := Open(Config{P: 8, Seed: 1, Faults: &Faults{Seed: 1, ComputeFail: 1}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.Exec(context.Background(), q, db); !errors.Is(err, ErrComputeFailed) {
		t.Fatalf("compute-fail session: %v, want ErrComputeFailed", err)
	} else if errors.Is(err, ErrTornRound) {
		t.Fatalf("compute-fail error also matches ErrTornRound: %v", err)
	}
}
