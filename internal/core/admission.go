package core

import (
	"context"
	"fmt"
	"sync"
)

// AdmissionStats reports an admission gate's cumulative traffic and current
// occupancy.
type AdmissionStats struct {
	// Admitted counts calls that entered execution (immediately or after
	// waiting in the queue).
	Admitted uint64
	// Queued counts calls that had to wait for a slot before entering or
	// being shed/cancelled.
	Queued uint64
	// Shed counts calls rejected with ErrOverloaded because the wait queue
	// was full.
	Shed uint64
	// InFlight is the number of calls currently executing.
	InFlight int
	// QueueDepth is the number of calls currently waiting for a slot.
	QueueDepth int
	// MaxInFlight and MaxQueue echo the gate's configured bounds
	// (0 = unbounded).
	MaxInFlight int
	MaxQueue    int
}

// Gate is a bounded in-flight admission gate with a FIFO wait queue: at
// most capacity calls execute concurrently, at most maxQueue more wait
// (context-aware), and beyond that calls are shed with ErrOverloaded.
// Close drains: it rejects new arrivals and queued waiters with
// ErrSessionClosed and blocks until every in-flight call has left.
//
// A capacity ≤ 0 disables the in-flight bound (the gate still tracks
// occupancy and supports Close-drain semantics).
type Gate struct {
	mu       sync.Mutex
	capacity int
	maxQueue int
	inflight int
	waiting  int
	waiters  []*gateWaiter
	closed   bool
	closedCh chan struct{} // closed by Close; wakes every queued waiter
	idle     chan struct{} // closed when inflight drains to 0 after Close

	admitted uint64
	queued   uint64
	shed     uint64
}

type gateWaiter struct {
	ready    chan struct{} // closed when a slot is handed to this waiter
	admitted bool          // guarded by Gate.mu
	canceled bool          // guarded by Gate.mu
}

// NewGate returns a gate admitting capacity concurrent calls with a FIFO
// wait queue of maxQueue. capacity ≤ 0 means unbounded (never queues);
// maxQueue ≤ 0 means shed immediately at capacity.
func NewGate(capacity, maxQueue int) *Gate {
	if capacity <= 0 {
		capacity, maxQueue = 0, 0
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &Gate{capacity: capacity, maxQueue: maxQueue, closedCh: make(chan struct{})}
}

// Enter blocks until the call is admitted, the queue overflows
// (ErrOverloaded), ctx fires (the ctx error, wrapped), or the gate closes
// (ErrSessionClosed). On nil error the caller owns a slot and must Leave.
// A free slot admits immediately without consulting ctx.
func (g *Gate) Enter(ctx context.Context) error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return ErrSessionClosed
	}
	if g.capacity == 0 || g.inflight < g.capacity {
		g.inflight++
		g.admitted++
		g.mu.Unlock()
		return nil
	}
	if g.waiting >= g.maxQueue {
		g.shed++
		g.mu.Unlock()
		return ErrOverloaded
	}
	w := &gateWaiter{ready: make(chan struct{})}
	g.waiters = append(g.waiters, w)
	g.waiting++
	g.queued++
	g.mu.Unlock()

	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	select {
	case <-w.ready:
		return nil
	case <-g.closedCh:
		if g.abandonWaiter(w) {
			return nil // admitted in the race; keep the slot
		}
		return ErrSessionClosed
	case <-done:
		if g.abandonWaiter(w) {
			return nil // admitted in the race; keep the slot
		}
		return fmt.Errorf("core: admission wait: %w", ctx.Err())
	}
}

// abandonWaiter resolves the race between a waiter giving up (cancel,
// close) and Leave handing it a slot. It reports true when the slot was
// already handed over — the caller then proceeds as admitted rather than
// abandoning a slot nobody would release.
func (g *Gate) abandonWaiter(w *gateWaiter) (keptSlot bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if w.admitted {
		return true
	}
	w.canceled = true
	g.waiting--
	return false
}

// Leave releases a slot obtained by Enter, handing it to the head of the
// wait queue if one is live. After Close, slots are not handed over —
// queued waiters are being rejected — so the gate drains.
func (g *Gate) Leave() {
	g.mu.Lock()
	defer g.mu.Unlock()
	for !g.closed && len(g.waiters) > 0 {
		w := g.waiters[0]
		g.waiters[0] = nil
		g.waiters = g.waiters[1:]
		if w.canceled {
			continue
		}
		// Hand the slot over: inflight is unchanged.
		w.admitted = true
		g.waiting--
		g.admitted++
		close(w.ready)
		return
	}
	g.inflight--
	if g.closed && g.inflight == 0 && g.idle != nil {
		close(g.idle)
		g.idle = nil
	}
}

// Close marks the gate closed — subsequent Enter calls and queued waiters
// get ErrSessionClosed — and blocks until every in-flight call has Left.
// Close is idempotent and safe to call concurrently.
func (g *Gate) Close() {
	g.mu.Lock()
	if !g.closed {
		g.closed = true
		close(g.closedCh)
	}
	if g.inflight == 0 {
		g.mu.Unlock()
		return
	}
	if g.idle == nil {
		g.idle = make(chan struct{})
	}
	idle := g.idle
	g.mu.Unlock()
	<-idle
}

// Closed reports whether Close has been called.
func (g *Gate) Closed() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.closed
}

// Stats returns the gate's counters and occupancy.
func (g *Gate) Stats() AdmissionStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	return AdmissionStats{
		Admitted:    g.admitted,
		Queued:      g.queued,
		Shed:        g.shed,
		InFlight:    g.inflight,
		QueueDepth:  g.waiting,
		MaxInFlight: g.capacity,
		MaxQueue:    g.maxQueue,
	}
}
