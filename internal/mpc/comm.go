// The sharded zero-channel communication engine.
//
// The MPC model charges only for bits received, but the simulator used to
// pay real costs the model doesn't: one goroutine per send part and one
// goroutine plus one buffered channel per (virtual) server. A §4.2 plan
// with Θ(p) virtual servers per bin combination spent more time in
// scheduler and channel overhead than in routing. This engine replaces all
// of that with two bounded passes over plain memory:
//
//  1. Route: min(GOMAXPROCS, parts) workers pull sendParts off a shared
//     atomic counter. Each worker batches routed tuples in a dense
//     per-destination table (a slice indexed by server ID with a touched
//     list — no map lookup per tuple) and publishes full column slabs to
//     the destination's mailbox, a plain slice under a per-mailbox mutex.
//  2. Deliver: the same bounded pool claims servers off a second counter
//     and bulk-appends each mailbox's slabs into the server's fragments —
//     no receiver goroutines, no channels, no locks (phase 1 finished).
//
// The two passes double as a transaction: the mailboxes are the round's
// staged state, and the deliver pass is its commit point, run only once
// every send part of the round has been routed. A torn or canceled round
// discards the staged slabs instead (discardStaged), so receiver fragments
// and load counters stay bit-identical to the pre-round state and the
// round can simply be re-driven.
//
// Slabs are recycled through per-worker free lists and mailbox/table
// scratch lives on the Cluster, so a pooled cluster serving repeated
// rounds stops allocating at steady state. Within a fragment the arrival
// order of slabs depends on worker interleaving: delivered fragments are
// deterministic as multisets, not as sequences (the channel engine behaved
// the same way).
package mpc

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/data"
)

// batchTuples is the slab size: tuples per destination batched before the
// slab is published to the destination's mailbox.
const batchTuples = 128

// delivery is one routed tuple batch destined for a single server, shipped
// as per-column slabs: cols[a] holds attribute a of every batched tuple.
// Receivers append the slabs column-wise in one copy per attribute instead
// of re-validating tuples value by value.
type delivery struct {
	rel    string
	arity  int
	domain int64
	bits   int64 // bits per tuple
	cols   [][]int64
	count  int
}

// mailbox collects the published slabs of one receiver. The mutex is
// contended only during the route pass; the deliver pass owns each mailbox
// exclusively. Padded to a cache line so neighboring mailboxes don't false-
// share under concurrent publishes.
type mailbox struct {
	mu  sync.Mutex
	box []delivery
	_   [64 - 8 - 24]byte
}

// maxFreeSlabs bounds a worker's slab free list (maxFreeSlabs·batchTuples
// int64s) so one giant round doesn't pin its whole routed volume as
// recycled slabs on a pooled cluster.
const maxFreeSlabs = 256

// commWorker is one worker's reusable routing state: the dense destination
// table, its touched list, the slab free list, and per-tuple scratch.
type commWorker struct {
	table   []delivery // indexed by destination server
	touched []int      // destinations with a live batch in table
	free    [][]int64  // recycled slabs, each cap batchTuples
	dst     []int
	dedup   dedupSet
	scratch data.Tuple
	span    SpanRoute // CompileSpan scratch, reused across spans
}

// commState is the cluster-owned engine scratch, reused across rounds.
type commState struct {
	mail    []mailbox
	workers []*commWorker
}

// slab returns a recycled (or fresh) slab of cap batchTuples.
func (w *commWorker) slab() []int64 {
	if n := len(w.free); n > 0 {
		s := w.free[n-1][:0]
		w.free[n-1] = nil
		w.free = w.free[:n-1]
		return s
	}
	return make([]int64, 0, batchTuples)
}

// recycle returns a consumed delivery's slabs to the free list.
func (w *commWorker) recycle(cols [][]int64) {
	for _, col := range cols {
		if len(w.free) >= maxFreeSlabs {
			return
		}
		w.free = append(w.free, col)
	}
}

// publish moves the batch in d (if any) to server's mailbox; d is left
// empty with its slabs handed over.
func (w *commWorker) publish(c *Cluster, server int, d *delivery) {
	if d.count == 0 {
		return
	}
	mb := &c.comm.mail[server]
	mb.mu.Lock()
	mb.box = append(mb.box, *d)
	mb.mu.Unlock()
	d.cols = nil
	d.count = 0
}

// route is one worker's share of the route pass: claim parts off the
// shared counter until none remain, batching per destination in the dense
// table, then flush every touched batch.
func (w *commWorker) route(c *Cluster, parts []sendPart, next *atomic.Int64, router Router, report func(error)) {
	r := forSender(router)
	cr, columnar := r.(ColumnRouter)
	sr, spannable := r.(SpanRouter)
	if cap(w.table) < c.P {
		w.table = make([]delivery, c.P)
	}
	table := w.table[:c.P]
	for {
		pi := int(next.Add(1)) - 1
		if pi >= len(parts) {
			break
		}
		// Per-part checkpoint: injected stragglers stall here (the hook is
		// the delay), and a context canceled mid-round aborts this worker
		// instead of letting the round run to completion. Checkpoint
		// granularity is one send part — bounded by Senders/ResidentChunk —
		// so a canceled 1000-part round stops after the parts in flight.
		if f := c.Faults; f != nil && f.OnStraggle != nil && f.WouldStraggleAttempt(c.curRound, c.curAttempt, pi) {
			f.OnStraggle()
		}
		if ctx := c.Ctx; ctx != nil {
			if err := ctx.Err(); err != nil {
				report(fmt.Errorf("mpc: round canceled at part %d of %d: %w", pi, len(parts), err))
				break
			}
		}
		part := parts[pi]
		if spannable {
			if idx := part.rel.Partitions(); idx != nil && sr.SpansAttr(part.rel, idx.Attr) {
				w.routeSpans(c, table, part, idx, sr, report)
				continue
			}
		}
		w.routeRows(c, table, part.rel, part.lo, part.hi, r, cr, columnar, report)
	}
	// Flush the stragglers. touched may hold duplicates (a destination
	// whose batch filled and restarted); publish skips the empties.
	for _, server := range w.touched {
		w.publish(c, server, &table[server])
	}
	w.touched = w.touched[:0]
}

// routeRows routes rows [lo, hi) of rel one tuple at a time — the general
// path for unpartitioned relations, light regions, uncovered tails, and
// declined spans.
//
//skewlint:noalloc
func (w *commWorker) routeRows(c *Cluster, table []delivery, rel *data.Relation, lo, hi int, r Router, cr ColumnRouter, columnar bool, report func(error)) {
	cols := rel.Columns()
	arity := rel.Arity
	bits := rel.BitsPerTuple()
	if cap(w.scratch) < arity {
		//skewlint:allow noalloc — one-time scratch growth to the widest arity, amortized across rounds
		w.scratch = make(data.Tuple, arity)
	}
	scratch := w.scratch[:arity]
	for row := lo; row < hi; row++ {
		if columnar {
			w.dst = cr.DestinationsAt(rel, row, w.dst[:0])
		} else {
			w.dst = r.Destinations(rel.Name, rel.ReadTuple(row, scratch), w.dst[:0])
		}
		w.send(c, table, rel, cols, arity, bits, row, w.dst, report)
	}
}

// routeSpans routes one send part of a partitioned relation partition-wise:
// the light prefix and the uncovered tail per-tuple, each heavy span through
// one CompileSpan call — bulk column-range appends when the route is
// uniform, a pre-resolved per-row closure otherwise.
func (w *commWorker) routeSpans(c *Cluster, table []delivery, part sendPart, idx *data.PartitionIndex, sr SpanRouter, report func(error)) {
	rel := part.rel
	lo, hi := part.lo, part.hi
	if lo < idx.LightEnd {
		w.routeRows(c, table, rel, lo, min(hi, idx.LightEnd), sr, sr, true, report)
	}
	pos := max(lo, idx.LightEnd)
	spans := idx.Spans
	si := sort.Search(len(spans), func(i int) bool { return spans[i].End > pos })
	for ; si < len(spans) && spans[si].Start < hi; si++ {
		sp := spans[si]
		slo, shi := max(sp.Start, lo), min(sp.End, hi)
		if slo >= shi {
			continue
		}
		w.span.Dests = w.span.Dests[:0]
		w.span.PerRow = nil
		if !sr.CompileSpan(rel, idx.Attr, sp.Value, &w.span) {
			w.routeRows(c, table, rel, slo, shi, sr, sr, true, report)
			continue
		}
		if w.span.PerRow != nil {
			w.routePerRow(c, table, rel, slo, shi, w.span.PerRow, report)
		} else {
			w.sendRange(c, table, rel, slo, shi, w.span.Dests, report)
		}
	}
	if hi > idx.Rows {
		w.routeRows(c, table, rel, max(lo, idx.Rows), hi, sr, sr, true, report)
	}
	// Don't pin the last compiled closure (and whatever it captured) on the
	// pooled worker past the round.
	w.span.PerRow = nil
}

// routePerRow routes rows [lo, hi) through a compiled per-row closure.
//
//skewlint:noalloc
func (w *commWorker) routePerRow(c *Cluster, table []delivery, rel *data.Relation, lo, hi int, perRow func(row int, dst []int) []int, report func(error)) {
	cols := rel.Columns()
	arity := rel.Arity
	bits := rel.BitsPerTuple()
	for row := lo; row < hi; row++ {
		w.dst = perRow(row, w.dst[:0])
		w.send(c, table, rel, cols, arity, bits, row, w.dst, report)
	}
}

// send batches row `row` of rel for every (deduplicated, validated)
// destination in dst.
//
//skewlint:noalloc
func (w *commWorker) send(c *Cluster, table []delivery, rel *data.Relation, cols [][]int64, arity int, bits int64, row int, dst []int, report func(error)) {
	for _, server := range w.dedup.dedup(dst) {
		if server < 0 || server >= c.P {
			//skewlint:allow noalloc — error path: a malformed router has already broken the round
			report(fmt.Errorf("mpc: destination %d out of range [0,%d)", server, c.P))
			continue
		}
		d := &table[server]
		if d.cols != nil && d.rel != rel.Name {
			// Batches are per (destination, relation): a new
			// relation closes the previous batch.
			w.publish(c, server, d)
		}
		if d.cols == nil {
			d.rel, d.arity, d.domain, d.bits = rel.Name, arity, rel.Domain, bits
			//skewlint:allow noalloc — fresh-batch header, once per batchTuples rows; columns come from the slab pool
			s := make([][]int64, arity)
			for a := range s {
				s[a] = w.slab()
			}
			d.cols = s
			w.touched = append(w.touched, server)
		}
		for a := 0; a < arity; a++ {
			d.cols[a] = append(d.cols[a], cols[a][row])
		}
		d.count++
		if d.count >= batchTuples {
			w.publish(c, server, d)
		}
	}
}

// sendRange ships rows [lo, hi) of rel wholesale to every destination in
// dst: per-column range appends into slabs, batchTuples at a time — the
// uniform-span fast path with no per-row router work.
//
//skewlint:noalloc
func (w *commWorker) sendRange(c *Cluster, table []delivery, rel *data.Relation, lo, hi int, dst []int, report func(error)) {
	cols := rel.Columns()
	arity := rel.Arity
	bits := rel.BitsPerTuple()
	for _, server := range w.dedup.dedup(dst) {
		if server < 0 || server >= c.P {
			//skewlint:allow noalloc — error path: a malformed router has already broken the round
			report(fmt.Errorf("mpc: destination %d out of range [0,%d)", server, c.P))
			continue
		}
		d := &table[server]
		if d.cols != nil && d.rel != rel.Name {
			w.publish(c, server, d)
		}
		row := lo
		for row < hi {
			if d.cols == nil {
				d.rel, d.arity, d.domain, d.bits = rel.Name, arity, rel.Domain, bits
				//skewlint:allow noalloc — fresh-batch header, once per batchTuples rows; columns come from the slab pool
				s := make([][]int64, arity)
				for a := range s {
					s[a] = w.slab()
				}
				d.cols = s
				w.touched = append(w.touched, server)
			}
			n := min(batchTuples-d.count, hi-row)
			for a := 0; a < arity; a++ {
				d.cols[a] = append(d.cols[a], cols[a][row:row+n]...)
			}
			d.count += n
			row += n
			if d.count >= batchTuples {
				w.publish(c, server, d)
			}
		}
	}
}

// deliver is one worker's share of the deliver pass: claim servers off the
// shared counter and bulk-append their mailboxes. Runs strictly after the
// route pass, so mailboxes need no locking here.
func (w *commWorker) deliver(c *Cluster, next *atomic.Int64) {
	for {
		i := int(next.Add(1)) - 1
		if i >= c.P {
			return
		}
		mb := &c.comm.mail[i]
		if len(mb.box) == 0 {
			continue
		}
		s := c.Servers[i]
		for j := range mb.box {
			d := &mb.box[j]
			frag, ok := s.Received[d.rel]
			if !ok {
				frag = data.NewRelation(d.rel, d.arity, d.domain)
				s.Received[d.rel] = frag
			}
			frag.AppendColumns(d.cols, d.count)
			s.BitsIn += d.bits * int64(d.count)
			s.TuplesIn += int64(d.count)
			w.recycle(d.cols)
			// Drop the stale references so the retained mailbox slice
			// doesn't pin slabs (now owned by the free list) or names.
			*d = delivery{}
		}
		mb.box = mb.box[:0]
	}
}

// stageSharded runs the route pass of the sharded delivery engine: every
// part is routed and its slabs are staged in the receivers' mailboxes, but
// nothing touches receiver fragments or load counters. The round's staged
// state is then either committed wholesale (commitStaged) once the caller
// knows every send part of the round arrived, or discarded wholesale
// (discardStaged) — the transactional half-round that makes a torn round
// replayable in place.
func (c *Cluster) stageSharded(parts []sendPart, router Router) error {
	var errOnce sync.Once
	var routeErr error
	report := func(err error) {
		errOnce.Do(func() { routeErr = err })
	}

	procs := runtime.GOMAXPROCS(0)
	routeWorkers := min(procs, len(parts))
	deliverWorkers := min(procs, c.P)
	st := &c.comm
	if len(st.mail) < c.P {
		st.mail = make([]mailbox, c.P)
	}
	// Size the worker pool for the deliver pass too, so commitStaged can
	// run without re-checking.
	for len(st.workers) < max(routeWorkers, deliverWorkers) {
		st.workers = append(st.workers, &commWorker{})
	}

	var next atomic.Int64
	if routeWorkers <= 1 {
		st.workers[0].route(c, parts, &next, router, report)
	} else {
		var wg sync.WaitGroup
		for w := 0; w < routeWorkers; w++ {
			wg.Add(1)
			go func(cw *commWorker) {
				defer wg.Done()
				cw.route(c, parts, &next, router, report)
			}(st.workers[w])
		}
		wg.Wait()
	}
	return routeErr
}

// commitStaged runs the deliver pass over the staged mailboxes: bounded
// workers claim servers and bulk-append each mailbox's slabs into the
// server's fragments and load counters. This is the round's commit point —
// it runs only after every send part has been routed cleanly.
func (c *Cluster) commitStaged() {
	st := &c.comm
	if len(st.mail) < c.P || len(st.workers) == 0 {
		return // nothing was staged
	}
	deliverWorkers := min(runtime.GOMAXPROCS(0), c.P)
	var next atomic.Int64
	if deliverWorkers <= 1 {
		st.workers[0].deliver(c, &next)
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < deliverWorkers; w++ {
		wg.Add(1)
		go func(cw *commWorker) {
			defer wg.Done()
			cw.deliver(c, &next)
		}(st.workers[w])
	}
	wg.Wait()
}

// discardStaged drops every staged slab without touching receiver fragments
// or load counters, leaving the cluster bit-identical to its pre-round
// state. Slabs are recycled into the first worker's free list up to its
// cap; the rest is left to the collector — discard runs only on faulted or
// canceled rounds.
func (c *Cluster) discardStaged() {
	st := &c.comm
	if len(st.workers) == 0 {
		return
	}
	w := st.workers[0]
	for i := range st.mail {
		mb := &st.mail[i]
		for j := range mb.box {
			w.recycle(mb.box[j].cols)
			mb.box[j] = delivery{}
		}
		mb.box = mb.box[:0]
	}
}

// dedupScanLimit is the fan-out up to which dedup uses the allocation-free
// quadratic scan; routers rarely emit duplicates and rarely fan out wider.
const dedupScanLimit = 32

// dedupSet removes duplicate destinations from wide fan-outs with a map
// reused across tuples. The map is dropped and resized down when its
// allocated size dwarfs the fan-outs it is serving — one §4.2 broadcast
// must not pin a huge map for the rest of the run.
type dedupSet struct {
	seen map[int]struct{}
	// sized is the fan-out the map was last allocated (or grown) for.
	sized int
}

// dedupShrinkFloor and dedupShrinkFactor gate the shrink: recreate the map
// only when it was sized for at least the floor and the current fan-out is
// a factor smaller, so alternating medium fan-outs don't thrash.
const (
	dedupShrinkFloor  = 1024
	dedupShrinkFactor = 4
)

// dedup removes duplicate server IDs from dst in place, preserving
// first-occurrence order (the model delivers duplicates once).
func (ds *dedupSet) dedup(dst []int) []int {
	if len(dst) <= dedupScanLimit {
		n := 0
	outer:
		for _, server := range dst {
			for _, prev := range dst[:n] {
				if prev == server {
					continue outer
				}
			}
			dst[n] = server
			n++
		}
		return dst[:n]
	}
	if ds.seen != nil && ds.sized >= dedupShrinkFloor && ds.sized >= dedupShrinkFactor*len(dst) {
		ds.seen = nil
	}
	if ds.seen == nil {
		ds.seen = make(map[int]struct{}, len(dst))
		ds.sized = len(dst)
	} else {
		clear(ds.seen)
		if len(dst) > ds.sized {
			ds.sized = len(dst)
		}
	}
	n := 0
	for _, server := range dst {
		if _, dup := ds.seen[server]; dup {
			continue
		}
		ds.seen[server] = struct{}{}
		dst[n] = server
		n++
	}
	return dst[:n]
}
