package p

import (
	"testing"
	"time"
)

// TestSleepy violates the sleep-free-test contract; reading the clock in
// a test is fine (only Sleep makes a test timing-dependent).
func TestSleepy(t *testing.T) {
	time.Sleep(time.Millisecond) // want `time.Sleep in a test`
	if time.Now().IsZero() {
		t.Fatal("clock is broken")
	}
}
