// Package workload generates the synthetic database instances used by the
// experiments: uniform random relations (the probability space of the
// paper's lower bounds), matchings (the restricted instances of [4]),
// Zipf-skewed and planted-heavy-hitter relations (the skew experiments of
// §4), single-value worst cases (Example 3.3's "all tuples share one z"),
// and instances with prescribed degree sequences (§4.3).
//
// All generators are deterministic given their seed and never produce
// duplicate tuples, so relation cardinalities are exact.
package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/data"
)

// Uniform returns a relation of exactly m distinct tuples drawn uniformly
// from [domain]^arity, the probability space used in Theorem 3.5. It panics
// if m exceeds half the space (rejection sampling would degrade).
func Uniform(name string, arity, m int, domain int64, seed int64) *data.Relation {
	space := pow64(domain, arity)
	if space > 0 && int64(m) > space/2 {
		panic(fmt.Sprintf("workload: m=%d too dense for domain^arity=%d", m, space))
	}
	r := data.NewRelation(name, arity, domain)
	rng := rand.New(rand.NewSource(seed))
	seen := make(map[string]bool, m)
	t := make(data.Tuple, arity)
	for r.Size() < m {
		for i := range t {
			t[i] = rng.Int63n(domain)
		}
		k := t.Key()
		if seen[k] {
			continue
		}
		seen[k] = true
		r.Add(t...)
	}
	return r
}

// Matching returns a relation of m tuples where every value occurs at most
// once in every column — the "matching" databases of [4] for which the
// HC load analysis is cleanest (Lemma 3.1 item 2). Requires domain ≥ m.
func Matching(name string, arity, m int, domain int64, seed int64) *data.Relation {
	if int64(m) > domain {
		panic("workload: Matching needs domain >= m")
	}
	r := data.NewRelation(name, arity, domain)
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]int64, arity)
	for c := range cols {
		cols[c] = distinctValues(rng, m, domain)
	}
	t := make(data.Tuple, arity)
	for i := 0; i < m; i++ {
		for c := range cols {
			t[c] = cols[c][i]
		}
		r.Add(t...)
	}
	return r
}

// distinctValues draws m distinct values from [0, domain).
func distinctValues(rng *rand.Rand, m int, domain int64) []int64 {
	if int64(m)*2 > domain {
		// Dense: permute a prefix.
		perm := rng.Perm(int(domain))
		out := make([]int64, m)
		for i := 0; i < m; i++ {
			out[i] = int64(perm[i])
		}
		return out
	}
	seen := make(map[int64]bool, m)
	out := make([]int64, 0, m)
	for len(out) < m {
		v := rng.Int63n(domain)
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// SingleValue returns a binary-style worst case: all m tuples share the
// fixed value at column col (Example 3.3's "all tuples have the same z");
// the remaining columns hold distinct values. Requires domain ≥ m and
// value < domain.
func SingleValue(name string, arity, m int, domain int64, col int, value int64, seed int64) *data.Relation {
	if int64(m) > domain {
		panic("workload: SingleValue needs domain >= m")
	}
	r := data.NewRelation(name, arity, domain)
	rng := rand.New(rand.NewSource(seed))
	cols := make([][]int64, arity)
	for c := range cols {
		if c != col {
			cols[c] = distinctValues(rng, m, domain)
		}
	}
	t := make(data.Tuple, arity)
	for i := 0; i < m; i++ {
		for c := 0; c < arity; c++ {
			if c == col {
				t[c] = value
			} else {
				t[c] = cols[c][i]
			}
		}
		r.Add(t...)
	}
	return r
}

// Zipf returns a binary relation S(a, b) of m tuples where column col draws
// from a Zipf(s) distribution over [0, distinct) (heavier skew for larger
// s > 1), and the other column holds distinct values so no tuple repeats.
// Requires domain ≥ m and distinct ≤ domain.
func Zipf(name string, m int, domain int64, col int, s float64, distinct uint64, seed int64) *data.Relation {
	if int64(m) > domain {
		panic("workload: Zipf needs domain >= m")
	}
	r := data.NewRelation(name, 2, domain)
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, distinct-1)
	other := distinctValues(rng, m, domain)
	for i := 0; i < m; i++ {
		v := int64(z.Uint64())
		if col == 0 {
			r.Add(v, other[i])
		} else {
			r.Add(other[i], v)
		}
	}
	return r
}

// SkewedGraph returns a binary edge relation over a vertex set [vertices]:
// source endpoints follow Zipf(s) (power-law out-degrees, "celebrity"
// nodes), destinations are uniform, self-loops and duplicate edges are
// rejected. Both endpoints share the vertex set, so triangles and longer
// cycles occur — the graph workloads of the triangle-counting motivation.
func SkewedGraph(name string, edges int, vertices int64, s float64, seed int64) *data.Relation {
	if vertices < 3 {
		panic("workload: SkewedGraph needs >= 3 vertices")
	}
	maxEdges := vertices * (vertices - 1)
	if int64(edges) > maxEdges/2 {
		panic("workload: SkewedGraph too dense")
	}
	r := data.NewRelation(name, 2, vertices)
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(vertices-1))
	seen := make(map[[2]int64]bool, edges)
	for r.Size() < edges {
		src := int64(z.Uint64())
		dst := rng.Int63n(vertices)
		if src == dst || seen[[2]int64{src, dst}] {
			continue
		}
		seen[[2]int64{src, dst}] = true
		r.Add(src, dst)
	}
	return r
}

// HeavySpec plants one heavy hitter: the value appears Count times at the
// designated column.
type HeavySpec struct {
	Value int64
	Count int
}

// PlantedHeavy returns a binary relation of exactly m tuples where column
// col carries the prescribed heavy hitters and the remaining tuples are
// light (each remaining col-value occurs exactly once). The other column
// always holds distinct values. Σ Count must be ≤ m, and heavy values must
// be < domain.
func PlantedHeavy(name string, m int, domain int64, col int, heavy []HeavySpec, seed int64) *data.Relation {
	total := 0
	for _, h := range heavy {
		total += h.Count
	}
	if total > m {
		panic("workload: planted heavy counts exceed m")
	}
	if int64(m) > domain {
		panic("workload: PlantedHeavy needs domain >= m")
	}
	r := data.NewRelation(name, 2, domain)
	rng := rand.New(rand.NewSource(seed))
	other := distinctValues(rng, m, domain)
	// Reserve light col-values distinct from the planted ones.
	reserved := make(map[int64]bool, len(heavy))
	for _, h := range heavy {
		reserved[h.Value] = true
	}
	lightVals := make([]int64, 0, m-total)
	seen := make(map[int64]bool)
	for len(lightVals) < m-total {
		v := rng.Int63n(domain)
		if reserved[v] || seen[v] {
			continue
		}
		seen[v] = true
		lightVals = append(lightVals, v)
	}
	i := 0
	add := func(colVal int64) {
		if col == 0 {
			r.Add(colVal, other[i])
		} else {
			r.Add(other[i], colVal)
		}
		i++
	}
	for _, h := range heavy {
		for c := 0; c < h.Count; c++ {
			add(h.Value)
		}
	}
	for _, v := range lightVals {
		add(v)
	}
	return r
}

// DegreeSequence returns a binary relation realizing the prescribed degree
// sequence on column col: value v appears degrees[v] times. This is the
// fixed-degree-sequence probability space of §4.3. The other column holds
// distinct values. Values with zero degree may be omitted from the map.
func DegreeSequence(name string, domain int64, col int, degrees map[int64]int, seed int64) *data.Relation {
	m := 0
	specs := make([]HeavySpec, 0, len(degrees))
	for v, d := range degrees {
		if d < 0 {
			panic("workload: negative degree")
		}
		m += d
		specs = append(specs, HeavySpec{Value: v, Count: d})
	}
	// Sort for determinism (map iteration order is random).
	for i := 1; i < len(specs); i++ {
		for j := i; j > 0 && specs[j].Value < specs[j-1].Value; j-- {
			specs[j], specs[j-1] = specs[j-1], specs[j]
		}
	}
	if int64(m) > domain {
		panic("workload: DegreeSequence needs domain >= total degree")
	}
	return PlantedHeavy(name, m, domain, col, specs, seed)
}

// ForQuery returns a database with one Uniform relation per atom of q,
// using the given per-atom cardinalities — the random-instance space of
// the simple-statistics lower bound (Lemma A.1).
func ForQuery(atoms []AtomSpec, seed int64) *data.Database {
	db := data.NewDatabase()
	for i, a := range atoms {
		db.Put(Uniform(a.Name, a.Arity, a.M, a.Domain, seed+int64(i)*7919))
	}
	return db
}

// AtomSpec describes one relation to generate.
type AtomSpec struct {
	Name   string
	Arity  int
	M      int
	Domain int64
}

func pow64(base int64, exp int) int64 {
	result := int64(1)
	for i := 0; i < exp; i++ {
		if result > (1<<62)/base {
			return -1 // overflow sentinel: space is effectively unbounded
		}
		result *= base
	}
	return result
}
