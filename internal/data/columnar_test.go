package data

import (
	"math/rand"
	"testing"
)

// shadowRel is a row-major reference implementation the columnar Relation
// is checked against: same Add order, same values.
type shadowRel struct {
	arity int
	rows  [][]int64
}

func (s *shadowRel) add(vals ...int64) {
	s.rows = append(s.rows, append([]int64(nil), vals...))
}

// TestColumnarViewsAgree pins the columnar accessors to each other:
// Tuple, ReadTuple, At, Column, KeyAt, and Each must present the same
// rows in the same order.
func TestColumnarViewsAgree(t *testing.T) {
	r := NewRelation("S", 3, 100)
	sh := &shadowRel{arity: 3}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		vals := []int64{rng.Int63n(100), rng.Int63n(100), rng.Int63n(100)}
		r.Add(vals...)
		sh.add(vals...)
	}
	if r.Size() != len(sh.rows) {
		t.Fatalf("Size = %d, want %d", r.Size(), len(sh.rows))
	}
	scratch := make(Tuple, r.Arity)
	for i, want := range sh.rows {
		got := r.Tuple(i)
		rt := r.ReadTuple(i, scratch)
		for a := 0; a < r.Arity; a++ {
			if got[a] != want[a] || rt[a] != want[a] ||
				r.At(i, a) != want[a] || r.Column(a)[i] != want[a] {
				t.Fatalf("row %d attr %d: Tuple=%d ReadTuple=%d At=%d Column=%d want %d",
					i, a, got[a], rt[a], r.At(i, a), r.Column(a)[i], want[a])
			}
		}
		if k := r.KeyAt(i); k != KeyOf(want) {
			t.Fatalf("row %d: KeyAt = %v, want %v", i, k, KeyOf(want))
		}
	}
	i := 0
	r.Each(func(row int, tu Tuple) bool {
		if row != i {
			t.Fatalf("Each index %d, want %d", row, i)
		}
		for a := range tu {
			if tu[a] != sh.rows[i][a] {
				t.Fatalf("Each row %d = %v, want %v", i, tu, sh.rows[i])
			}
		}
		i++
		return true
	})
	if i != r.Size() {
		t.Fatalf("Each visited %d rows, want %d", i, r.Size())
	}
}

// TestColumnarRoundTrip checks the Add → Sort → Clone invariants: the
// multiset survives Sort, Clone is deep and bitwise identical, and
// AppendColumns/AppendRow reproduce the source rows.
func TestColumnarRoundTrip(t *testing.T) {
	r := NewRelation("S", 2, 1000)
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		r.Add(rng.Int63n(1000), rng.Int63n(1000))
	}
	counts := func(rel *Relation) map[Key]int {
		m := make(map[Key]int)
		for i := 0; i < rel.Size(); i++ {
			m[rel.KeyAt(i)]++
		}
		return m
	}
	before := counts(r)
	c := r.Clone()
	r.Sort()
	after := counts(r)
	if len(before) != len(after) {
		t.Fatal("Sort changed the key set")
	}
	for k, n := range before {
		if after[k] != n {
			t.Fatalf("Sort changed multiplicity of %v: %d → %d", k, n, after[k])
		}
	}
	for i := 1; i < r.Size(); i++ {
		if r.KeyAt(i).Less(r.KeyAt(i - 1)) {
			t.Fatalf("Sort: row %d out of order", i)
		}
	}
	// Clone is unsorted (deep copy taken before Sort) and preserves counts.
	cc := counts(c)
	for k, n := range before {
		if cc[k] != n {
			t.Fatal("Clone lost tuples")
		}
	}
	// Rebuild via AppendRow and AppendColumns; both must agree with r.
	viaRow := NewRelation("S", 2, 1000)
	for i := 0; i < r.Size(); i++ {
		viaRow.AppendRow(r, i)
	}
	viaCols := NewRelation("S", 2, 1000)
	viaCols.AppendColumns(r.Columns(), r.Size())
	for i := 0; i < r.Size(); i++ {
		if viaRow.KeyAt(i) != r.KeyAt(i) || viaCols.KeyAt(i) != r.KeyAt(i) {
			t.Fatalf("rebuilt row %d differs", i)
		}
	}
}

// TestArityEdgeCases covers arity 0 (nullary relations: rows with no
// attributes) and arity 1.
func TestArityEdgeCases(t *testing.T) {
	r0 := NewRelation("N", 0, 1)
	if r0.Size() != 0 || r0.Bits() != 0 {
		t.Fatalf("empty nullary: Size=%d Bits=%d", r0.Size(), r0.Bits())
	}
	r0.Add()
	if r0.Size() != 1 {
		t.Fatalf("nullary Size = %d, want 1", r0.Size())
	}
	if tu := r0.Tuple(0); len(tu) != 0 {
		t.Fatalf("nullary Tuple = %v", tu)
	}
	if r0.ContainsDuplicates() {
		t.Fatal("one nullary row is not a duplicate")
	}
	r0.Add()
	if !r0.ContainsDuplicates() {
		t.Fatal("two nullary rows are duplicates")
	}
	r0.Sort()
	c0 := r0.Clone()
	if c0.Size() != 2 {
		t.Fatalf("nullary Clone Size = %d", c0.Size())
	}

	r1 := NewRelation("U", 1, 10)
	r1.Add(5)
	r1.Add(3)
	r1.Sort()
	if r1.At(0, 0) != 3 || r1.At(1, 0) != 5 {
		t.Fatalf("unary Sort: %v %v", r1.Tuple(0), r1.Tuple(1))
	}
	if got := r1.Column(0); len(got) != 2 || got[0] != 3 {
		t.Fatalf("unary Column = %v", got)
	}
}

// TestKeyOf pins Key's inline and overflow representations: map equality
// matches tuple equality, and At/Tuple/String round-trip, across the
// inline boundary at keyInline values.
func TestKeyOf(t *testing.T) {
	widths := []int{0, 1, 2, keyInline - 1, keyInline, keyInline + 1, keyInline + 5}
	rng := rand.New(rand.NewSource(3))
	for _, w := range widths {
		tu := make(Tuple, w)
		for i := range tu {
			tu[i] = rng.Int63() - rng.Int63() // exercise negatives too
		}
		k := KeyOf(tu)
		if k.Len() != w {
			t.Fatalf("width %d: Len = %d", w, k.Len())
		}
		for i, v := range tu {
			if k.At(i) != v {
				t.Fatalf("width %d: At(%d) = %d, want %d", w, i, k.At(i), v)
			}
		}
		back := k.Tuple()
		for i := range tu {
			if back[i] != tu[i] {
				t.Fatalf("width %d: Tuple round-trip %v != %v", w, back, tu)
			}
		}
		if k.String() != tu.Key() {
			t.Fatalf("width %d: String = %q, want %q", w, k.String(), tu.Key())
		}
		if k != KeyOf(back) {
			t.Fatalf("width %d: keys of equal tuples differ", w)
		}
		// Perturb one value: keys must differ.
		if w > 0 {
			other := append(Tuple(nil), tu...)
			other[w-1]++
			if KeyOf(other) == k {
				t.Fatalf("width %d: distinct tuples share a key", w)
			}
		}
	}
	// Less is a strict weak order consistent with lexicographic tuples.
	a, b := KeyOf(Tuple{1, 2}), KeyOf(Tuple{1, 3})
	if !a.Less(b) || b.Less(a) || a.Less(a) {
		t.Fatal("Less ordering broken")
	}
	if !KeyOf(Tuple{1}).Less(KeyOf(Tuple{1, 0})) {
		t.Fatal("shorter prefix must sort first")
	}
}

// TestKey1MatchesKeyOf pins the single-value fast path.
func TestKey1MatchesKeyOf(t *testing.T) {
	for _, v := range []int64{0, 1, -5, 1 << 40} {
		if Key1(v) != KeyOf(Tuple{v}) {
			t.Fatalf("Key1(%d) != KeyOf", v)
		}
	}
}

// FuzzRowColumnarAgreement drives the columnar Relation and a row-major
// shadow with the same operation stream decoded from fuzz bytes, then
// requires every view (Tuple, At, Each, KeyAt, Sort order) to agree.
func FuzzRowColumnarAgreement(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6}, uint8(2))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{7, 7, 7, 7, 7, 7, 7, 7, 7}, uint8(3))
	f.Fuzz(func(t *testing.T, raw []byte, arityByte uint8) {
		arity := int(arityByte % 4) // 0..3
		const domain = 256
		r := NewRelation("F", arity, domain)
		sh := &shadowRel{arity: arity}
		if arity > 0 {
			for i := 0; i+arity <= len(raw); i += arity {
				vals := make([]int64, arity)
				for a := 0; a < arity; a++ {
					vals[a] = int64(raw[i+a])
				}
				r.Add(vals...)
				sh.add(vals...)
			}
		} else {
			for range raw {
				r.Add()
				sh.rows = append(sh.rows, nil)
			}
		}
		if r.Size() != len(sh.rows) {
			t.Fatalf("Size = %d, want %d", r.Size(), len(sh.rows))
		}
		check := func() {
			for i, want := range sh.rows {
				got := r.Tuple(i)
				for a := 0; a < arity; a++ {
					if got[a] != want[a] || r.At(i, a) != want[a] {
						t.Fatalf("row %d: %v vs %v", i, got, want)
					}
				}
				if r.KeyAt(i) != KeyOf(want) {
					t.Fatalf("row %d: key mismatch", i)
				}
			}
		}
		check()
		// Sort both and compare again (shadow sorts lexicographically).
		r.Sort()
		rows := sh.rows
		for i := 1; i < len(rows); i++ {
			for j := i; j > 0; j-- {
				if KeyOf(rows[j]).Less(KeyOf(rows[j-1])) {
					rows[j], rows[j-1] = rows[j-1], rows[j]
				} else {
					break
				}
			}
		}
		check()
		if r.ContainsDuplicates() != shadowHasDup(rows) {
			t.Fatal("ContainsDuplicates disagrees with shadow")
		}
	})
}

func shadowHasDup(rows [][]int64) bool {
	seen := make(map[Key]bool)
	for _, row := range rows {
		k := KeyOf(row)
		if seen[k] {
			return true
		}
		seen[k] = true
	}
	return false
}
