package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/data"
	"repro/internal/join"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/workload"
)

// noSleep is a recording Retry.Sleep hook: fault tests stay sleep-free and
// can still assert that backoff waits were scheduled.
type noSleep struct{ waits int }

func (n *noSleep) sleep(_ context.Context, _ time.Duration) error {
	n.waits++
	return nil
}

// faultEngine builds an engine whose every execution runs under the given
// fault schedule and retry policy. Tests force HyperCube per call so each
// execution drives exactly one communication round (round 1) and one
// compute phase (phase 1); replays advance the attempt dimension.
func faultEngine(t *testing.T, f *mpc.Faults, r Retry) *Engine {
	t.Helper()
	e, err := New(Config{P: 8, Seed: 3, Faults: f, Retry: r})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func faultCase() (*query.Query, *dbOracle) {
	q := query.Join2()
	db := db2(
		workload.Matching("S1", 2, 400, 100000, 1),
		workload.Matching("S2", 2, 400, 100000, 2),
	)
	return q, &dbOracle{db: db, want: join.Join(q, join.FromDatabase(db))}
}

type dbOracle struct {
	db   *data.Database
	want []data.Tuple
}

// findSeed scans for a seed whose fault schedule satisfies ok. Schedules are
// pure functions of the seed, so the search is deterministic and cheap.
func findSeed(t *testing.T, mk func(seed uint64) *mpc.Faults, ok func(*mpc.Faults) bool) uint64 {
	t.Helper()
	for seed := uint64(0); seed < 10000; seed++ {
		if ok(mk(seed)) {
			return seed
		}
	}
	t.Fatal("no seed under 10000 produces the wanted fault schedule")
	return 0
}

func TestFaultTornRoundReplaysInPlace(t *testing.T) {
	mk := func(seed uint64) *mpc.Faults { return &mpc.Faults{Seed: seed, TornRound: 0.5} }
	// Round 1 tears on the first attempt and survives the replay.
	seed := findSeed(t, mk, func(f *mpc.Faults) bool {
		return f.WouldTearRoundAttempt(1, 1) && !f.WouldTearRoundAttempt(1, 2)
	})
	var ns noSleep
	e := faultEngine(t, mk(seed), Retry{Sleep: ns.sleep})
	q, o := faultCase()
	hc := HyperCube
	res, err := e.ExecuteContext(context.Background(), q, o.db, ExecOptions{Strategy: &hc})
	if err != nil {
		t.Fatalf("recoverable torn round surfaced: %v", err)
	}
	if res.Recovery.Attempts != 1 || res.Recovery.RoundsReplayed != 1 {
		t.Fatalf("Recovery = %+v, want 1 attempt replaying 1 round", res.Recovery)
	}
	if res.FaultRetries != res.Recovery.Attempts {
		t.Fatalf("legacy FaultRetries = %d, want Recovery.Attempts = %d", res.FaultRetries, res.Recovery.Attempts)
	}
	if res.Recovery.BackoffWaits != 1 || ns.waits != 1 {
		t.Fatalf("BackoffWaits = %d (hook saw %d), want 1", res.Recovery.BackoffWaits, ns.waits)
	}
	if !join.EqualTupleSets(res.Output, o.want) {
		t.Fatalf("post-replay output %d tuples, want %d", len(res.Output), len(o.want))
	}
}

func TestFaultTornRoundBudgetExhaustedSurfacesTyped(t *testing.T) {
	mk := func(seed uint64) *mpc.Faults { return &mpc.Faults{Seed: seed, TornRound: 0.5} }
	// Both attempts the 2-attempt budget grants end torn.
	seed := findSeed(t, mk, func(f *mpc.Faults) bool {
		return f.WouldTearRoundAttempt(1, 1) && f.WouldTearRoundAttempt(1, 2)
	})
	var ns noSleep
	e := faultEngine(t, mk(seed), Retry{MaxAttempts: 2, Sleep: ns.sleep})
	q, o := faultCase()
	hc := HyperCube
	_, err := e.ExecuteContext(context.Background(), q, o.db, ExecOptions{Strategy: &hc})
	if !errors.Is(err, mpc.ErrTornRound) {
		t.Fatalf("err = %v, want ErrTornRound", err)
	}
}

func TestFaultTornRoundNoRetryWhenDisabled(t *testing.T) {
	mk := func(seed uint64) *mpc.Faults { return &mpc.Faults{Seed: seed, TornRound: 0.5} }
	// The replay would succeed — but MaxAttempts < 0 disables recovery.
	seed := findSeed(t, mk, func(f *mpc.Faults) bool {
		return f.WouldTearRoundAttempt(1, 1) && !f.WouldTearRoundAttempt(1, 2)
	})
	e := faultEngine(t, mk(seed), Retry{MaxAttempts: -1})
	q, o := faultCase()
	hc := HyperCube
	_, err := e.ExecuteContext(context.Background(), q, o.db, ExecOptions{Strategy: &hc})
	if !errors.Is(err, mpc.ErrTornRound) {
		t.Fatalf("err = %v, want ErrTornRound on first occurrence", err)
	}
}

func TestFaultComputeFailSurfacesTyped(t *testing.T) {
	// Certain compute failure: every attempt fails identically, so the typed
	// error must surface once the budget is spent rather than loop.
	var ns noSleep
	e := faultEngine(t, &mpc.Faults{Seed: 1, ComputeFail: 1}, Retry{Sleep: ns.sleep})
	q, o := faultCase()
	hc := HyperCube
	_, err := e.ExecuteContext(context.Background(), q, o.db, ExecOptions{Strategy: &hc})
	if !errors.Is(err, mpc.ErrComputeFailed) {
		t.Fatalf("err = %v, want ErrComputeFailed", err)
	}
	if ns.waits != DefaultRetryAttempts-1 {
		t.Fatalf("hook saw %d backoff waits, want the full budget of %d", ns.waits, DefaultRetryAttempts-1)
	}
}

func TestFaultComputeRecoversFailedServersOnly(t *testing.T) {
	mk := func(seed uint64) *mpc.Faults { return &mpc.Faults{Seed: seed, ComputeFail: 0.2} }
	// Some server fails the first compute attempt; the recompute attempt is
	// clean for every server, so one retry recovers exactly the failed set.
	// (HyperCube at p=8 runs at most 8 virtual servers; 16 leaves margin.)
	const maxVirtual = 16
	seed := findSeed(t, mk, func(f *mpc.Faults) bool {
		anyFail := false
		for s := 0; s < maxVirtual; s++ {
			if f.WouldFailComputeAttempt(1, 2, s) {
				return false
			}
			if f.WouldFailComputeAttempt(1, 1, s) {
				anyFail = true
			}
		}
		return anyFail
	})
	var ns noSleep
	e := faultEngine(t, mk(seed), Retry{Sleep: ns.sleep})
	q, o := faultCase()
	hc := HyperCube
	res, err := e.ExecuteContext(context.Background(), q, o.db, ExecOptions{Strategy: &hc})
	if err != nil {
		t.Fatalf("recoverable compute failure surfaced: %v", err)
	}
	if res.Recovery.Attempts != 1 || res.Recovery.ServersRecomputed < 1 {
		t.Fatalf("Recovery = %+v, want 1 attempt recomputing >= 1 server", res.Recovery)
	}
	if res.Recovery.RoundsReplayed != 0 {
		t.Fatalf("compute recovery replayed %d rounds, want 0", res.Recovery.RoundsReplayed)
	}
	if !join.EqualTupleSets(res.Output, o.want) {
		t.Fatalf("post-recompute output %d tuples, want %d", len(res.Output), len(o.want))
	}
}

func TestFaultStragglerCancelMidRound(t *testing.T) {
	// Every send part straggles; the hook cancels the context, so the route
	// worker aborts at its next checkpoint. No sleeps: the "stall" is the
	// hook itself.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var once sync.Once
	f := &mpc.Faults{Seed: 1, Straggler: 1, OnStraggle: func() { once.Do(cancel) }}
	e := faultEngine(t, f, Retry{})
	q, o := faultCase()
	hc := HyperCube
	_, err := e.ExecuteContext(ctx, q, o.db, ExecOptions{Strategy: &hc})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFaultRetryNotCountedOnCleanRun(t *testing.T) {
	e := faultEngine(t, &mpc.Faults{Seed: 1}, Retry{})
	q, o := faultCase()
	hc := HyperCube
	res, err := e.ExecuteContext(context.Background(), q, o.db, ExecOptions{Strategy: &hc})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultRetries != 0 || res.Recovery != (Recovery{}) {
		t.Fatalf("clean run reported recovery: FaultRetries=%d Recovery=%+v", res.FaultRetries, res.Recovery)
	}
	if !join.EqualTupleSets(res.Output, o.want) {
		t.Fatalf("output %d tuples, want %d", len(res.Output), len(o.want))
	}
}
