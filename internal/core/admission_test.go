package core

import (
	"context"
	"errors"
	"runtime"
	"testing"
)

// waitUntil spins (yielding, never sleeping) until cond holds or a bounded
// number of yields elapses.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	for i := 0; i < 1_000_000; i++ {
		if cond() {
			return
		}
		runtime.Gosched()
	}
	t.Fatalf("condition never held: %s", what)
}

func TestGateShedsBeyondQueue(t *testing.T) {
	g := NewGate(1, 0)
	if err := g.Enter(context.Background()); err != nil {
		t.Fatalf("first Enter: %v", err)
	}
	// At capacity with no queue: immediate typed shed.
	if err := g.Enter(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second Enter: %v, want ErrOverloaded", err)
	}
	g.Leave()
	if err := g.Enter(context.Background()); err != nil {
		t.Fatalf("Enter after Leave: %v", err)
	}
	g.Leave()
	st := g.Stats()
	if st.Admitted != 2 || st.Shed != 1 || st.Queued != 0 || st.InFlight != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestGateFIFOHandoff(t *testing.T) {
	g := NewGate(1, 2)
	if err := g.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	order := make(chan int, 2)
	// Queue two waiters in a known order (each is observed queued before the
	// next starts), then verify slots hand off first-come first-served.
	for i := 1; i <= 2; i++ {
		i := i
		depth := i
		go func() {
			if err := g.Enter(context.Background()); err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			order <- i
		}()
		waitUntil(t, "waiter queued", func() bool { return g.Stats().QueueDepth == depth })
	}
	g.Leave() // hands the slot to waiter 1
	if got := <-order; got != 1 {
		t.Fatalf("first handoff went to waiter %d", got)
	}
	g.Leave() // hands to waiter 2
	if got := <-order; got != 2 {
		t.Fatalf("second handoff went to waiter %d", got)
	}
	g.Leave()
	st := g.Stats()
	if st.Admitted != 3 || st.Queued != 2 || st.InFlight != 0 || st.QueueDepth != 0 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestGateContextCancelWhileQueued(t *testing.T) {
	g := NewGate(1, 1)
	if err := g.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() { errCh <- g.Enter(ctx) }()
	waitUntil(t, "waiter queued", func() bool { return g.Stats().QueueDepth == 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("queued waiter: %v, want context.Canceled", err)
	}
	// The canceled waiter left the queue: Leave must not strand the slot.
	g.Leave()
	if err := g.Enter(context.Background()); err != nil {
		t.Fatalf("Enter after canceled waiter: %v", err)
	}
	g.Leave()
}

func TestGateCloseDrainsAndRejects(t *testing.T) {
	g := NewGate(1, 1)
	if err := g.Enter(context.Background()); err != nil {
		t.Fatal(err)
	}
	queued := make(chan error, 1)
	go func() { queued <- g.Enter(context.Background()) }()
	waitUntil(t, "waiter queued", func() bool { return g.Stats().QueueDepth == 1 })

	closed := make(chan struct{})
	go func() { g.Close(); close(closed) }()
	// The queued waiter is rejected, not handed the in-flight slot.
	if err := <-queued; !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("queued waiter after Close: %v, want ErrSessionClosed", err)
	}
	// Close blocks until the in-flight call leaves.
	waitUntil(t, "gate marked closed", g.Closed)
	select {
	case <-closed:
		t.Fatal("Close returned with a call still in flight")
	default:
	}
	if err := g.Enter(context.Background()); !errors.Is(err, ErrSessionClosed) {
		t.Fatalf("Enter after Close: %v, want ErrSessionClosed", err)
	}
	g.Leave()
	<-closed
	if st := g.Stats(); st.InFlight != 0 || st.QueueDepth != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
	g.Close() // idempotent
}

func TestGateUnboundedNeverQueues(t *testing.T) {
	g := NewGate(0, 5)
	for i := 0; i < 100; i++ {
		if err := g.Enter(context.Background()); err != nil {
			t.Fatalf("Enter %d: %v", i, err)
		}
	}
	st := g.Stats()
	if st.InFlight != 100 || st.Queued != 0 || st.Shed != 0 {
		t.Fatalf("stats: %+v", st)
	}
	for i := 0; i < 100; i++ {
		g.Leave()
	}
	g.Close()
}
