// Package mapreduce implements the §5 connection between the MPC model and
// the MapReduce model of Afrati et al. (PVLDB 2013): reducers bounded by a
// size L (in bits), the replication rate r = Σ_i L_i / |I|, the
// lower bound of Theorem 5.1, and a measured replication-rate harness that
// drives the HyperCube algorithm with the number of reducers needed for a
// target reducer size.
package mapreduce

import (
	"math"

	"repro/internal/data"
	"repro/internal/hypercube"
	"repro/internal/packing"
	"repro/internal/query"
)

// ReplicationLowerBound returns the Theorem 5.1 lower bound on the
// replication rate (up to the constant c^u):
//
//	r ≥ u·L/(Σ_j M_j) · max_u Π_j (M_j/L)^{u_j}
//
// maximized over the packing vertices pk(q). bitsM holds M_j in bits; l is
// the reducer size in bits. Relations with M_j < L contribute factor 1 for
// their weight (the paper assumes L ≤ M_j; we clamp to keep the bound
// meaningful on mixed inputs).
func ReplicationLowerBound(q *query.Query, bitsM []float64, l float64) float64 {
	if l <= 0 {
		panic("mapreduce: reducer size must be positive")
	}
	sumM := 0.0
	allFit := true
	for _, m := range bitsM {
		sumM += m
		if m > l {
			allFit = false
		}
	}
	if allFit {
		// Theorem 5.1 assumes L ≤ M_j; when every relation fits in one
		// reducer only the trivial r ≥ 1 holds.
		return 1
	}
	best := 0.0
	for _, vtx := range packing.PK(q) {
		u := vtx.Floats()
		total := 0.0
		prod := 1.0
		for j := range u {
			total += u[j]
			ratio := bitsM[j] / l
			if ratio < 1 {
				ratio = 1
			}
			prod *= math.Pow(ratio, u[j])
		}
		if total == 0 {
			continue
		}
		if r := total * l / sumM * prod; r > best {
			best = r
		}
	}
	return best
}

// MinReducers returns the Theorem 5.1 consequence p ≥ r·|I|/L on the
// number of reducers, using the replication lower bound.
func MinReducers(q *query.Query, bitsM []float64, l float64) float64 {
	sumM := 0.0
	for _, m := range bitsM {
		sumM += m
	}
	return ReplicationLowerBound(q, bitsM, l) * sumM / l
}

// MeasuredReplication runs the HyperCube algorithm with p reducers and
// reports (replication rate, max reducer load in bits). Sweeping p trades
// reducer size against replication — the r-versus-L curve of Example 5.2.
func MeasuredReplication(q *query.Query, db *data.Database, p int, seed uint64) (r float64, maxBits int64) {
	res := hypercube.Run(q, db, hypercube.Config{P: p, Seed: seed})
	return res.Loads.Replication, res.Loads.MaxBits
}
