package rounds

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/data"
	"repro/internal/exec"
	"repro/internal/hashing"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/stats"
)

// input is the planner's view of one stage input: a base relation (rel
// non-nil) or a prior step's output, with the base atoms it was joined
// from and a size estimate. All statistics are frozen at plan time — the
// lowered pipeline is a pure function of (plan, database content, config),
// which is what makes it cacheable.
type input struct {
	vars   []int
	rel    *data.Relation // nil for intermediates
	atoms  []query.Atom   // participating base atoms (the join subtree)
	est    float64        // estimated tuple count (exact for base relations)
	arity  int
	domain int64
	bits   int64 // bits per tuple
	// baseRels resolves subtree atom names to their base relations, so
	// later steps can compute restricted frequencies of an intermediate's
	// constituents without materializing it.
	baseRels map[string]*data.Relation
}

// Lower turns a logical plan into a PipelinePlan over db's statistics: one
// executor stage per step, each with its own virtual-server layout, router
// (heavy-hitter grids per join key in skew-aware mode), and local join.
// Heavy-hitter frequencies of base relations are exact; an intermediate
// input's key frequency is estimated as the product of its subtree atoms'
// restricted frequencies — the join-product skew model — so lowering never
// materializes an intermediate.
func Lower(plan Plan, db *data.Database, cfg Config) *PipelinePlan {
	if cfg.P < 2 {
		panic("rounds: need P >= 2")
	}
	pp := &PipelinePlan{Logical: plan}
	if len(plan.Steps) == 0 {
		db.MustGet(plan.Query.Atoms[0].Name) // surface a missing relation at plan time
		return pp
	}
	inputs := make(map[string]*input)
	for _, a := range plan.Query.Atoms {
		r := db.MustGet(a.Name)
		inputs[a.Name] = &input{
			vars: a.Vars, rel: r, atoms: []query.Atom{a},
			est: float64(r.Size()), arity: r.Arity, domain: r.Domain,
			bits: r.BitsPerTuple(),
		}
	}
	pipe := &exec.Pipeline{Strategy: "multi-round", Physical: cfg.P}
	for si, st := range plan.Steps {
		left, right := inputs[st.Left], inputs[st.Right]
		if left == nil || right == nil {
			panic(fmt.Sprintf("rounds: step %d references unknown input %q/%q", si, st.Left, st.Right))
		}
		stage, out, predBits := planStage(si, st, left, right, cfg)
		pipe.Stages = append(pipe.Stages, stage)
		pipe.PredictedSumMaxBits += predBits
		inputs[st.Output] = out
	}
	pp.Pipe = pipe
	pp.PredictedSumMaxBits = pipe.PredictedSumMaxBits
	return pp
}

// factor is one term of a side's join-key frequency estimate: the ordered
// frequency map of a participating base atom over its share of the join
// variables, plus where those variables sit inside the full join key.
type factor struct {
	fm   *stats.FreqMap
	kIdx []int // positions within JoinVars of the factor's variables
	full bool  // the factor covers every join variable
}

// sideFactors builds the frequency factors of one input for the given join
// variables. For a base relation this is a single exact full-cover factor;
// for an intermediate, one factor per subtree atom sharing join variables.
func sideFactors(in *input, joinVars []int) []factor {
	if len(joinVars) == 0 {
		return nil
	}
	var fs []factor
	for _, a := range in.atoms {
		var pos, kIdx []int
		for ki, v := range joinVars {
			for p, av := range a.Vars {
				if av == v {
					pos = append(pos, p)
					kIdx = append(kIdx, ki)
				}
			}
		}
		if len(pos) == 0 {
			continue
		}
		// Base relations carry exactly one atom — their own — so this scan
		// happens once per (step, base input).
		fs = append(fs, factor{
			fm:   stats.FrequenciesOrdered(relOf(in, a), pos),
			kIdx: kIdx,
			full: len(kIdx) == len(joinVars),
		})
	}
	return fs
}

// relOf resolves the relation backing atom a of input in. For a base input
// it is the input's own relation; for an intermediate, the atom was
// captured at BuildPlan time and its relation still lives in the planner's
// base-input table — sideFactors only ever needs base relations, which the
// planner keeps alive in the atoms slice via this lookup table.
func relOf(in *input, a query.Atom) *data.Relation {
	if in.rel != nil {
		return in.rel
	}
	return in.baseRels[a.Name]
}

// estFreq estimates the frequency of join key k on a side as the product
// of its factors' restricted counts (zero if any factor misses the key).
// Exact when the side is a base relation; the join-product upper-bound
// model otherwise.
func estFreq(fs []factor, k data.Key, scratch data.Tuple) float64 {
	prod := 1.0
	for _, f := range fs {
		for i, idx := range f.kIdx {
			scratch[i] = k.At(idx)
		}
		c := f.fm.Counts[data.KeyOf(scratch[:len(f.kIdx)])]
		if c == 0 {
			return 0
		}
		prod *= float64(c)
	}
	return prod
}

// planStage lowers one step: it detects heavy join keys (exact on base
// sides, join-product-estimated on intermediate sides), allocates their
// §4.1 cartesian grids over virtual servers, and emits the executor stage
// plus the planner's view of the step output and the round's predicted
// maximum per-server load in bits.
func planStage(si int, st Step, left, right *input, cfg Config) (exec.Stage, *input, float64) {
	p := cfg.P
	leftKey := keyPositions(st.LeftVars, st.JoinVars)
	rightKey := keyPositions(st.RightVars, st.JoinVars)
	family := hashing.NewFamily(cfg.Seed*1315423911 + uint64(si) + 1)
	cartesian := len(st.JoinVars) == 0

	type heavyKey struct {
		k      data.Key
		fL, fR float64
	}
	var heavyKeys []heavyKey
	anyCover := false
	var estOut float64
	// Frequency statistics are only collected in skew-aware mode: a plain
	// step is a hash join whose routing needs no statistics at all, so
	// plain lowering stays as cheap as the step router itself.
	if cfg.SkewAware && !cartesian {
		lf := sideFactors(left, st.JoinVars)
		rf := sideFactors(right, st.JoinVars)
		scratch := make(data.Tuple, len(st.JoinVars))
		// Candidate heavy keys come from full-cover factors (a base side
		// always covers the whole key; an intermediate contributes a
		// subtree atom only if it happens to contain every join variable).
		// Keys outside every cover join nothing on that side, but may still
		// be missed hot spots on the other — the same load-only blind spot
		// sampling-based detection accepts.
		seen := make(map[data.Key]bool)
		var cands []heavyKey
		var sumL, sumR float64
		for _, fs := range [][]factor{lf, rf} {
			for _, f := range fs {
				if !f.full {
					continue
				}
				anyCover = true
				for k := range f.fm.Counts {
					if seen[k] {
						continue
					}
					seen[k] = true
					eL := estFreq(lf, k, scratch)
					eR := estFreq(rf, k, scratch)
					estOut += eL * eR
					sumL += eL
					sumR += eR
					cands = append(cands, heavyKey{k, eL, eR})
				}
			}
		}
		// Thresholds are normalized to the estimates' own mass (Σ over
		// candidate keys — exactly the side's size for a base relation),
		// never to the chained size estimate, which can collapse to ~0 for
		// provably tiny intermediates and would then declare every key
		// heavy. The comparison is strict with a one-tuple floor: an
		// estimated frequency of one is never a heavy hitter.
		thrL := math.Max(1, sumL/float64(p))
		thrR := math.Max(1, sumR/float64(p))
		for _, c := range cands {
			if c.fL > thrL || c.fR > thrR {
				heavyKeys = append(heavyKeys, c)
			}
		}
		// Deterministic virtual-server allocation: only the (few) heavy
		// keys need a canonical order, not the full candidate set.
		sort.Slice(heavyKeys, func(i, j int) bool { return heavyKeys[i].k.Less(heavyKeys[j].k) })
	}
	switch {
	case cartesian:
		estOut = left.est * right.est
	case !anyCover:
		// Plain mode, or no full-cover factor anywhere (bushy custom plans):
		// a crude linear guess — later-round predictions degrade, routing
		// does not.
		estOut = left.est + right.est
	}

	// Virtual-server allocation: [0, p) is the light hash range; each heavy
	// key gets a p1×p2 cartesian grid sized by its share of the estimated
	// join product, exactly as §4.1 sizes hitter blocks.
	virtual := p
	heavy := make(map[data.Key]*heavyPlan)
	bL, bR := float64(left.bits), float64(right.bits)
	pred := (left.est*bL + right.est*bR) / float64(p)
	if cartesian {
		g1 := int(math.Max(1, math.Sqrt(float64(p))))
		g2 := p / g1
		if g2 < 1 {
			g2 = 1
		}
		pred = left.est*bL/float64(g1) + right.est*bR/float64(g2)
	}
	if cfg.SkewAware && len(heavyKeys) > 0 {
		var sumK float64
		for _, hk := range heavyKeys {
			sumK += math.Max(1, hk.fL) * math.Max(1, hk.fR)
		}
		for _, hk := range heavyKeys {
			kw := math.Max(1, hk.fL) * math.Max(1, hk.fR)
			ph := int(math.Ceil(float64(p) * kw / sumK))
			r1 := math.Max(1, hk.fL)
			r2 := math.Max(1, hk.fR)
			p1 := int(math.Round(math.Sqrt(float64(ph) * r1 / r2)))
			if p1 < 1 {
				p1 = 1
			}
			if p1 > ph {
				p1 = ph
			}
			p2 := ph / p1
			if p2 < 1 {
				p2 = 1
			}
			heavy[hk.k] = &heavyPlan{base: virtual, p1: p1, p2: p2}
			virtual += p1 * p2
			if grid := r1/float64(p1)*bL + r2/float64(p2)*bR; grid > pred {
				pred = grid
			}
		}
	} else {
		for _, hk := range heavyKeys {
			// Plain hash join: the whole key lands on one server.
			if hot := hk.fL*bL + hk.fR*bR; hot > pred {
				pred = hot
			}
		}
	}

	router := &stepRouter{
		leftName: st.Left, rightName: st.Right,
		leftKey: leftKey, rightKey: rightKey,
		cartesian: cartesian,
		heavy:     heavy, p: p, family: family,
	}

	outArity := len(st.OutVars)
	domain := left.domain
	if right.domain > domain {
		domain = right.domain
	}
	// Columns of the right input contributing new variables, in OutVars
	// order (the left contributes its full schema as the output prefix).
	var rightPosOf []int
	for _, v := range st.OutVars {
		if !containsInt(st.LeftVars, v) {
			for pos, rv := range st.RightVars {
				if rv == v {
					rightPosOf = append(rightPosOf, pos)
				}
			}
		}
	}

	stage := exec.Stage{
		Plan: &exec.PhysicalPlan{
			Strategy: "multi-round",
			Virtual:  virtual,
			Physical: p,
			Router:   router,
		},
		LocalFragment: localJoin(st, leftKey, rightKey, rightPosOf, outArity, domain),
		OutName:       st.Output,
		OutArity:      outArity,
		OutDomain:     domain,
	}
	// Base inputs keyed on a single column route span-wise when partitioned
	// (stepRouter implements mpc.SpanRouter for exactly that shape).
	// Intermediates are rebuilt every round and never carry an index; a
	// self-joined input is classified as left by the router, so only the
	// left key is hinted.
	if !cartesian {
		if left.rel != nil && len(leftKey) == 1 {
			stage.Plan.PartitionHints = append(stage.Plan.PartitionHints, exec.PartitionHint{Rel: st.Left, Attr: leftKey[0]})
		}
		if right.rel != nil && len(rightKey) == 1 && st.Right != st.Left {
			stage.Plan.PartitionHints = append(stage.Plan.PartitionHints, exec.PartitionHint{Rel: st.Right, Attr: rightKey[0]})
		}
	}
	for _, in := range []struct {
		name string
		in   *input
	}{{st.Left, left}, {st.Right, right}} {
		if in.in.rel != nil {
			stage.Base = append(stage.Base, in.name)
		} else {
			stage.Resident = append(stage.Resident, in.name)
		}
	}

	out := &input{
		vars:  st.OutVars,
		atoms: append(append([]query.Atom(nil), left.atoms...), right.atoms...),
		est:   estOut,
		arity: outArity, domain: domain,
		bits:     int64(outArity) * int64(data.BitsPerValue(domain)),
		baseRels: mergeBaseRels(left, right),
	}
	return stage, out, pred
}

// mergeBaseRels combines the base-relation lookup tables of two inputs so
// later steps can resolve any subtree atom's relation.
func mergeBaseRels(left, right *input) map[string]*data.Relation {
	m := make(map[string]*data.Relation)
	for _, in := range []*input{left, right} {
		if in.rel != nil {
			m[in.rel.Name] = in.rel
		}
		for name, r := range in.baseRels {
			m[name] = r
		}
	}
	return m
}

// localJoin builds a stage's local computation: index the right fragment by
// its key columns, probe with the left key columns, and append matches to
// the output fragment column-wise.
func localJoin(st Step, leftKey, rightKey, rightPosOf []int, outArity int, domain int64) func(s *mpc.Server) *data.Relation {
	leftName, rightName, outName := st.Left, st.Right, st.Output
	return func(s *mpc.Server) *data.Relation {
		lf, rf := s.Fragment(leftName), s.Fragment(rightName)
		if lf == nil || rf == nil || lf.Size() == 0 || rf.Size() == 0 {
			return nil
		}
		index := make(map[data.Key][]int, rf.Size())
		rKeyCols := make([][]int64, len(rightKey))
		for a, pos := range rightKey {
			rKeyCols[a] = rf.Column(pos)
		}
		kbuf := make(data.Tuple, len(rightKey))
		for i := 0; i < rf.Size(); i++ {
			for a, col := range rKeyCols {
				kbuf[a] = col[i]
			}
			k := data.KeyOf(kbuf)
			index[k] = append(index[k], i)
		}
		lCols, rCols := lf.Columns(), rf.Columns()
		lArity := lf.Arity
		lkbuf := make(data.Tuple, len(leftKey))
		row := make(data.Tuple, outArity)
		out := data.NewRelation(outName, outArity, domain)
		for li := 0; li < lf.Size(); li++ {
			for a, pos := range leftKey {
				lkbuf[a] = lCols[pos][li]
			}
			for _, ri := range index[data.KeyOf(lkbuf)] {
				for a := 0; a < lArity; a++ {
					row[a] = lCols[a][li]
				}
				for a, pos := range rightPosOf {
					row[lArity+a] = rCols[pos][ri]
				}
				out.Add(row...)
			}
		}
		if out.Size() == 0 {
			return nil
		}
		return out
	}
}

// heavyPlan is a per-heavy-key cartesian grid of virtual servers.
type heavyPlan struct {
	base, p1, p2 int
}

// Hash-family dimensions used by one join round.
const dimKey, dimLeft, dimRight = 0, 1, 2

// stepRouter routes one binary-join round: heavy keys to their cartesian
// grids, cartesian steps over a p-server grid, everything else by hash
// join on the key columns. Inputs are identified by relation name — base
// relations arriving from the input servers and resident intermediates
// shuffled server-to-server route identically. The columnar entry point
// reads key columns in place; its projection scratch makes it per-sender
// (mpc.PerSenderRouter).
type stepRouter struct {
	leftName, rightName string
	leftKey, rightKey   []int
	cartesian           bool
	heavy               map[data.Key]*heavyPlan
	p                   int
	family              *hashing.Family
	proj                data.Tuple // key-projection scratch
}

// ForSender implements mpc.PerSenderRouter.
func (r *stepRouter) ForSender() mpc.Router {
	c := *r
	c.proj = nil
	return &c
}

func (r *stepRouter) keyScratch(n int) data.Tuple {
	want := len(r.leftKey)
	if len(r.rightKey) > want {
		want = len(r.rightKey)
	}
	if r.proj == nil {
		r.proj = make(data.Tuple, want)
	}
	return r.proj[:n]
}

// Destinations implements mpc.Router. Relations that are not this step's
// inputs are not routed.
//
//skewlint:noalloc
func (r *stepRouter) Destinations(rel string, t data.Tuple, dst []int) []int {
	isLeft := rel == r.leftName
	if !isLeft && rel != r.rightName {
		return dst
	}
	kp := r.rightKey
	if isLeft {
		kp = r.leftKey
	}
	key := r.keyScratch(len(kp))
	for i, pos := range kp {
		key[i] = t[pos]
	}
	if hp := r.heavy[data.KeyOf(key)]; hp != nil {
		return r.gridRoute(isLeft, hp.base, hp.p1, hp.p2, rowHash(t), dst)
	}
	if r.cartesian {
		g1, g2 := r.cartesianGrid()
		return r.gridRoute(isLeft, 0, g1, g2, rowHash(t), dst)
	}
	return append(dst, r.keyHash(key))
}

// DestinationsAt implements mpc.ColumnRouter: identical routing, reading
// the key columns (and, on the grid paths, all columns for the row hash)
// in place.
//
//skewlint:noalloc
func (r *stepRouter) DestinationsAt(rel *data.Relation, row int, dst []int) []int {
	isLeft := rel.Name == r.leftName
	if !isLeft && rel.Name != r.rightName {
		return dst
	}
	cols := rel.Columns()
	kp := r.rightKey
	if isLeft {
		kp = r.leftKey
	}
	key := r.keyScratch(len(kp))
	for i, pos := range kp {
		key[i] = cols[pos][row]
	}
	if hp := r.heavy[data.KeyOf(key)]; hp != nil {
		return r.gridRoute(isLeft, hp.base, hp.p1, hp.p2, rowHashCols(cols, row), dst)
	}
	if r.cartesian {
		g1, g2 := r.cartesianGrid()
		return r.gridRoute(isLeft, 0, g1, g2, rowHashCols(cols, row), dst)
	}
	return append(dst, r.keyHash(key))
}

// SpansAttr implements mpc.SpanRouter: a single-column join key of either
// input (the run's value is the whole key, so one heavy-map lookup decides
// the routing of the entire run).
func (r *stepRouter) SpansAttr(rel *data.Relation, attr int) bool {
	if r.cartesian {
		return false
	}
	if rel.Name == r.leftName {
		return len(r.leftKey) == 1 && attr == r.leftKey[0]
	}
	if rel.Name == r.rightName {
		return len(r.rightKey) == 1 && attr == r.rightKey[0]
	}
	return false
}

// CompileSpan implements mpc.SpanRouter. Light runs compile to their single
// hash-join server; heavy runs keep the per-row grid hash but with the
// heavy plan resolved once.
func (r *stepRouter) CompileSpan(rel *data.Relation, attr int, v int64, route *mpc.SpanRoute) bool {
	isLeft := rel.Name == r.leftName
	if hp := r.heavy[data.Key1(v)]; hp != nil {
		cols := rel.Columns()
		base, p1, p2 := hp.base, hp.p1, hp.p2
		fam := r.family
		if isLeft {
			route.PerRow = func(row int, dst []int) []int {
				gr := fam.Hash(dimLeft, rowHashCols(cols, row), p1)
				for c := 0; c < p2; c++ {
					dst = append(dst, base+gr*p2+c)
				}
				return dst
			}
		} else {
			route.PerRow = func(row int, dst []int) []int {
				gc := fam.Hash(dimRight, rowHashCols(cols, row), p2)
				for rr := 0; rr < p1; rr++ {
					dst = append(dst, base+rr*p2+gc)
				}
				return dst
			}
		}
		return true
	}
	key := r.keyScratch(1)
	key[0] = v
	route.Dests = append(route.Dests, r.keyHash(key))
	return true
}

// cartesianGrid splits p into a g1 × g2 grid for key-less steps.
func (r *stepRouter) cartesianGrid() (int, int) {
	g1 := int(math.Max(1, math.Sqrt(float64(r.p))))
	return g1, r.p / g1
}

// gridRoute places a left row in one grid row (replicated across columns)
// and a right row in one grid column (replicated across rows).
//
//skewlint:noalloc
func (r *stepRouter) gridRoute(isLeft bool, base, p1, p2 int, rh int64, dst []int) []int {
	if isLeft {
		row := r.family.Hash(dimLeft, rh, p1)
		for c := 0; c < p2; c++ {
			dst = append(dst, base+row*p2+c)
		}
	} else {
		col := r.family.Hash(dimRight, rh, p2)
		for rr := 0; rr < p1; rr++ {
			dst = append(dst, base+rr*p2+col)
		}
	}
	return dst
}

// keyHash maps a join key to one of the p light servers.
func (r *stepRouter) keyHash(key data.Tuple) int {
	h := 0
	for i, v := range key {
		h = h*31 + r.family.Hash(dimKey+i, v, 1<<30)
	}
	if h < 0 {
		h = -h
	}
	return h % r.p
}

// keyPositions maps join variables to their column positions in a schema.
func keyPositions(schema, joinVars []int) []int {
	var pos []int
	for _, jv := range joinVars {
		for i, v := range schema {
			if v == jv {
				pos = append(pos, i)
			}
		}
	}
	return pos
}

// rowHash folds a whole tuple into one value for the non-key dimension of
// a cartesian grid.
func rowHash(t data.Tuple) int64 {
	h := int64(1469598103934665603)
	for _, v := range t {
		h = h ^ v
		h *= 1099511628211
	}
	return h
}

// rowHashCols is rowHash over a columnar row.
func rowHashCols(cols [][]int64, row int) int64 {
	h := int64(1469598103934665603)
	for _, col := range cols {
		h = h ^ col[row]
		h *= 1099511628211
	}
	return h
}
