package mpc

import (
	"fmt"
	"strings"
)

// Histogram buckets the per-server loads (in bits) into `buckets` equal
// ranges from 0 to the max load and returns the server count per bucket.
// It answers the question the model's L statistic summarizes: how uneven
// is the distribution behind the max?
func (c *Cluster) Histogram(buckets int) []int {
	if buckets < 1 {
		panic("mpc: need at least one bucket")
	}
	max := int64(0)
	for _, s := range c.Servers {
		if s.BitsIn > max {
			max = s.BitsIn
		}
	}
	counts := make([]int, buckets)
	if max == 0 {
		counts[0] = c.P
		return counts
	}
	for _, s := range c.Servers {
		b := int(s.BitsIn * int64(buckets) / (max + 1))
		counts[b]++
	}
	return counts
}

// RenderHistogram draws an ASCII histogram of per-server loads: one row
// per bucket, bar length proportional to the server count.
func (c *Cluster) RenderHistogram(buckets, width int) string {
	counts := c.Histogram(buckets)
	maxCount := 0
	for _, n := range counts {
		if n > maxCount {
			maxCount = n
		}
	}
	maxLoad := int64(0)
	for _, s := range c.Servers {
		if s.BitsIn > maxLoad {
			maxLoad = s.BitsIn
		}
	}
	var b strings.Builder
	for i, n := range counts {
		lo := maxLoad * int64(i) / int64(buckets)
		hi := maxLoad * int64(i+1) / int64(buckets)
		bar := 0
		if maxCount > 0 {
			bar = n * width / maxCount
		}
		fmt.Fprintf(&b, "%10d-%-10d |%-*s| %d servers\n",
			lo, hi, width, strings.Repeat("#", bar), n)
	}
	return b.String()
}

// GiniCoefficient returns the Gini index of the per-server bit loads: 0
// for perfectly balanced, approaching 1 when one server holds everything.
// A direct scalar for "how skewed did the communication end up".
func (c *Cluster) GiniCoefficient() float64 {
	n := len(c.Servers)
	if n == 0 {
		return 0
	}
	loads := make([]int64, n)
	var total int64
	for i, s := range c.Servers {
		loads[i] = s.BitsIn
		total += s.BitsIn
	}
	if total == 0 {
		return 0
	}
	// Sort ascending (insertion sort: n is the server count, small).
	for i := 1; i < n; i++ {
		for j := i; j > 0 && loads[j] < loads[j-1]; j-- {
			loads[j], loads[j-1] = loads[j-1], loads[j]
		}
	}
	var weighted float64
	for i, l := range loads {
		weighted += float64(i+1) * float64(l)
	}
	return (2*weighted)/(float64(n)*float64(total)) - float64(n+1)/float64(n)
}
