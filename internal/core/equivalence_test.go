package core

import (
	"sort"
	"testing"

	"repro/internal/data"
	"repro/internal/join"
	"repro/internal/query"
	"repro/internal/workload"
)

func sortTuples(ts []data.Tuple) {
	sort.Slice(ts, func(i, j int) bool {
		for k := range ts[i] {
			if ts[i][k] != ts[j][k] {
				return ts[i][k] < ts[j][k]
			}
		}
		return false
	})
}

// TestStrategiesAgreeThroughUnifiedExecutor forces every applicable
// strategy on the same query/database and asserts identical sorted outputs
// through the unified executor — the cross-strategy equivalence contract:
// strategies may differ in load, never in answers.
func TestStrategiesAgreeThroughUnifiedExecutor(t *testing.T) {
	cases := []struct {
		name       string
		q          *query.Query
		db         *data.Database
		strategies []Strategy
	}{
		{
			// The §4.1 shape with skew and renamed relations: all three
			// strategies apply (the skew join must route q's own names and
			// column order).
			name: "join2-renamed-zipf",
			q:    query.MustParse("q(a,b,c) = R(a,c), T(b,c)"),
			db: func() *data.Database {
				db := data.NewDatabase()
				db.Put(workload.Zipf("R", 500, 100000, 1, 1.8, 100, 4))
				db.Put(workload.Zipf("T", 500, 100000, 1, 1.8, 100, 5))
				return db
			}(),
			strategies: []Strategy{HyperCube, SkewJoin, BinCombination},
		},
		{
			// A skewed triangle: HyperCube and bin combinations apply.
			name: "triangle-planted-heavy",
			q:    query.Triangle(),
			db: func() *data.Database {
				db := data.NewDatabase()
				db.Put(workload.PlantedHeavy("S1", 300, 100000, 0, []workload.HeavySpec{{Value: 3, Count: 80}}, 1))
				db.Put(workload.Uniform("S2", 2, 300, 200, 2))
				db.Put(workload.Uniform("S3", 2, 300, 200, 3))
				return db
			}(),
			strategies: []Strategy{HyperCube, BinCombination},
		},
	}
	for _, c := range cases {
		want := join.Join(c.q, join.FromDatabase(c.db))
		sortTuples(want)
		for _, s := range c.strategies {
			s := s
			e := NewEngine(16, 9)
			e.ForceStrategy = &s
			res := e.Execute(c.q, c.db)
			if res.Plan.Strategy != s {
				t.Fatalf("%s: forced %v but ran %v", c.name, s, res.Plan.Strategy)
			}
			got := append([]data.Tuple(nil), res.Output...)
			sortTuples(got)
			if len(got) != len(want) {
				t.Errorf("%s/%v: %d tuples, want %d", c.name, s, len(got), len(want))
				continue
			}
			for i := range got {
				for k := range got[i] {
					if got[i][k] != want[i][k] {
						t.Errorf("%s/%v: tuple %d = %v, want %v", c.name, s, i, got[i], want[i])
						break
					}
				}
			}
		}
	}
}
