package core

import (
	"strings"
	"testing"

	"repro/internal/data"
	"repro/internal/join"
	"repro/internal/query"
	"repro/internal/rounds"
	"repro/internal/workload"
)

func db2(s1, s2 *data.Relation) *data.Database {
	db := data.NewDatabase()
	db.Put(s1)
	db.Put(s2)
	return db
}

func TestPlanSkewFreePicksHyperCube(t *testing.T) {
	q := query.Join2()
	db := db2(
		workload.Matching("S1", 2, 1000, 100000, 1),
		workload.Matching("S2", 2, 1000, 100000, 2),
	)
	e := NewEngine(16, 1)
	plan := e.PlanQuery(q, db)
	if plan.Strategy != HyperCube {
		t.Errorf("strategy = %v, want hypercube", plan.Strategy)
	}
	if plan.HasSkew {
		t.Error("matching data reported as skewed")
	}
	if plan.LowerBoundBits <= 0 {
		t.Error("missing lower bound")
	}
}

func TestPlanSkewedJoinPicksSkewJoin(t *testing.T) {
	q := query.Join2()
	db := db2(
		workload.SingleValue("S1", 2, 500, 100000, 1, 7, 1),
		workload.SingleValue("S2", 2, 500, 100000, 1, 7, 2),
	)
	e := NewEngine(16, 1)
	plan := e.PlanQuery(q, db)
	if plan.Strategy != SkewJoin {
		t.Errorf("strategy = %v, want skew-join", plan.Strategy)
	}
	if !plan.HasSkew {
		t.Error("skew not detected")
	}
}

func TestPlanSkewedTrianglePicksBinCombination(t *testing.T) {
	q := query.Triangle()
	db := data.NewDatabase()
	db.Put(workload.PlantedHeavy("S1", 400, 100000, 0, []workload.HeavySpec{{Value: 0, Count: 150}}, 1))
	db.Put(workload.Uniform("S2", 2, 400, 100, 2))
	db.Put(workload.Uniform("S3", 2, 400, 100, 3))
	e := NewEngine(16, 1)
	plan := e.PlanQuery(q, db)
	if plan.Strategy != BinCombination {
		t.Errorf("strategy = %v, want bin-combination", plan.Strategy)
	}
}

func TestExecuteMatchesReferenceAcrossStrategies(t *testing.T) {
	cases := []struct {
		name string
		q    *query.Query
		db   *data.Database
	}{
		{"hypercube", query.Triangle(), func() *data.Database {
			db := data.NewDatabase()
			db.Put(workload.Matching("S1", 2, 300, 100000, 1))
			db.Put(workload.Matching("S2", 2, 300, 100000, 2))
			db.Put(workload.Matching("S3", 2, 300, 100000, 3))
			return db
		}()},
		{"skew-join", query.Join2(), db2(
			workload.Zipf("S1", 600, 100000, 1, 1.8, 100, 4),
			workload.Zipf("S2", 600, 100000, 1, 1.8, 100, 5),
		)},
		{"bin-combination", query.Star(2), func() *data.Database {
			db := data.NewDatabase()
			db.Put(workload.PlantedHeavy("S1", 300, 100000, 0, []workload.HeavySpec{{Value: 5, Count: 100}}, 6))
			db.Put(workload.PlantedHeavy("S2", 300, 100000, 0, []workload.HeavySpec{{Value: 5, Count: 90}}, 7))
			return db
		}()},
	}
	for _, c := range cases {
		e := NewEngine(16, 9)
		res := e.Execute(c.q, c.db)
		want := join.Join(c.q, join.FromDatabase(c.db))
		if !join.EqualTupleSets(res.Output, want) {
			t.Errorf("%s (%v): output %d tuples, want %d",
				c.name, res.Plan.Strategy, len(res.Output), len(want))
		}
		if res.MaxLoadBits <= 0 && len(want) > 0 {
			t.Errorf("%s: no load recorded", c.name)
		}
	}
}

func TestExecuteSkewJoinRemapsRenamedRelations(t *testing.T) {
	// Same Join2 shape but with different relation names and head order.
	q := query.MustParse("q(a,b,c) = R(a,c), T(b,c)")
	db := data.NewDatabase()
	r := workload.SingleValue("R", 2, 300, 100000, 1, 7, 1)
	s := workload.SingleValue("T", 2, 300, 100000, 1, 7, 2)
	db.Put(r)
	db.Put(s)
	e := NewEngine(8, 1)
	plan := e.PlanQuery(q, db)
	if plan.Strategy != SkewJoin {
		t.Fatalf("strategy = %v", plan.Strategy)
	}
	res := e.Execute(q, db)
	want := join.Join(q, join.FromDatabase(db))
	if !join.EqualTupleSets(res.Output, want) {
		t.Errorf("remapped skew join wrong: %d vs %d tuples", len(res.Output), len(want))
	}
}

func TestExecuteSkewJoinIgnoresUnrelatedRelations(t *testing.T) {
	// The engine no longer copies the two joined relations into an
	// isolated database, so the skew-join router must skip relations the
	// query doesn't mention (including ones with other arities).
	q := query.Join2()
	db := db2(
		workload.Zipf("S1", 400, 100000, 1, 1.8, 80, 4),
		workload.Zipf("S2", 400, 100000, 1, 1.8, 80, 5),
	)
	extra := data.NewRelation("U", 1, 100000)
	extra.Add(7)
	extra.Add(8)
	db.Put(extra)
	e := NewEngine(16, 9)
	plan := e.PlanQuery(q, db)
	if plan.Strategy != SkewJoin {
		t.Fatalf("strategy = %v, want skew-join", plan.Strategy)
	}
	res := e.Execute(q, db)
	want := join.Join(q, join.FromDatabase(db))
	if !join.EqualTupleSets(res.Output, want) {
		t.Errorf("output %d tuples, want %d", len(res.Output), len(want))
	}
}

func TestExecuteHyperCubeIgnoresUnrelatedRelations(t *testing.T) {
	// Same contract for the skew-free path: the HyperCube router must skip
	// relations the query doesn't mention instead of panicking in a sender
	// goroutine (which would kill the process, not fail the Execute).
	q := query.Join2()
	db := db2(
		workload.Matching("S1", 2, 300, 100000, 1),
		workload.Matching("S2", 2, 300, 100000, 2),
	)
	extra := data.NewRelation("U", 1, 100000)
	extra.Add(7)
	extra.Add(8)
	db.Put(extra)
	e := NewEngine(16, 9)
	plan := e.PlanQuery(q, db)
	if plan.Strategy != HyperCube {
		t.Fatalf("strategy = %v, want hypercube", plan.Strategy)
	}
	res := e.Execute(q, db)
	want := join.Join(q, join.FromDatabase(db))
	if !join.EqualTupleSets(res.Output, want) {
		t.Errorf("output %d tuples, want %d", len(res.Output), len(want))
	}
}

func TestForceStrategy(t *testing.T) {
	q := query.Join2()
	db := db2(
		workload.Matching("S1", 2, 300, 100000, 1),
		workload.Matching("S2", 2, 300, 100000, 2),
	)
	force := BinCombination
	e := NewEngine(8, 1)
	e.ForceStrategy = &force
	res := e.Execute(q, db)
	if res.Plan.Strategy != BinCombination {
		t.Errorf("forced strategy ignored: %v", res.Plan.Strategy)
	}
	want := join.Join(q, join.FromDatabase(db))
	if !join.EqualTupleSets(res.Output, want) {
		t.Error("forced bin-combination gave wrong output")
	}
}

func TestStrategyString(t *testing.T) {
	if HyperCube.String() != "hypercube" || SkewJoin.String() != "skew-join" ||
		BinCombination.String() != "bin-combination" || Strategy(9).String() != "?" {
		t.Error("Strategy strings wrong")
	}
}

func TestNewEnginePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewEngine(1, 0)
}

func TestPlanMissingRelationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewEngine(4, 0).PlanQuery(query.Join2(), data.NewDatabase())
}

func TestIsJoin2Shaped(t *testing.T) {
	if !isJoin2Shaped(query.Join2()) {
		t.Error("Join2 not recognized")
	}
	if isJoin2Shaped(query.Triangle()) || isJoin2Shaped(query.Cartesian(2)) {
		t.Error("false positive")
	}
	// Shared variable at first position: not the §4.1 shape.
	q := query.MustParse("q(x,y,z) = A(z,x), B(z,y)")
	if isJoin2Shaped(q) {
		t.Error("first-position share misclassified")
	}
}

func TestExplainContainsAnalysis(t *testing.T) {
	q := query.Triangle()
	db := data.NewDatabase()
	db.Put(workload.Matching("S1", 2, 500, 100000, 1))
	db.Put(workload.Matching("S2", 2, 500, 100000, 2))
	db.Put(workload.Matching("S3", 2, 500, 100000, 3))
	out := NewEngine(16, 1).Explain(q, db)
	for _, want := range []string{
		"strategy: hypercube", "τ*", "packing vertices", "share exponents",
		"integer shares", "lower bound",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}

func TestExplainShowsBinCombosUnderSkew(t *testing.T) {
	q := query.Star(2)
	db := data.NewDatabase()
	db.Put(workload.PlantedHeavy("S1", 300, 100000, 0, []workload.HeavySpec{{Value: 5, Count: 100}}, 1))
	db.Put(workload.PlantedHeavy("S2", 300, 100000, 0, []workload.HeavySpec{{Value: 5, Count: 90}}, 2))
	out := NewEngine(16, 1).Explain(q, db)
	if !strings.Contains(out, "bin combinations") {
		t.Errorf("Explain should list bin combinations under skew:\n%s", out)
	}
}

func TestForceMultiRound(t *testing.T) {
	q := query.Triangle()
	db := data.NewDatabase()
	db.Put(workload.Matching("S1", 2, 300, 100000, 1))
	db.Put(workload.Matching("S2", 2, 300, 100000, 2))
	db.Put(workload.Matching("S3", 2, 300, 100000, 3))
	force := MultiRound
	e := NewEngine(8, 1)
	e.ForceStrategy = &force
	res := e.Execute(q, db)
	if res.Plan.Strategy != MultiRound {
		t.Fatalf("forced strategy ignored: %v", res.Plan.Strategy)
	}
	if res.Plan.Rounds != 2 {
		t.Errorf("Plan.Rounds = %d, want 2", res.Plan.Rounds)
	}
	if res.Plan.PredictedBits <= 0 {
		t.Error("multi-round plan has no cost prediction")
	}
	want := join.Join(q, join.FromDatabase(db))
	if !join.EqualTupleSets(res.Output, want) {
		t.Errorf("multi-round output %d tuples, want %d", len(res.Output), len(want))
	}
	if res.MaxLoadBits <= 0 || res.TotalBits <= 0 {
		t.Error("multi-round loads not accounted")
	}
}

func TestConsiderMultiRoundCostComparison(t *testing.T) {
	// Sparse matchings: per-round loads ~m/p beat the one-round m/p^{2/3},
	// so the cost comparison should flip to the pipeline — and the choice
	// must agree with the two predictions it compares.
	q := query.Triangle()
	db := data.NewDatabase()
	for j, a := range q.Atoms {
		db.Put(workload.Matching(a.Name, 2, 4096, 1<<20, int64(j+1)))
	}
	e := NewEngine(64, 3)
	e.ConsiderMultiRound = true
	plan := e.PlanQuery(q, db)

	base := NewEngine(64, 3).PlanQuery(q, db)
	mrPred := rounds.PlanPipeline(q, db, rounds.Config{P: 64, Seed: 3, SkewAware: true}).PredictedSumMaxBits
	wantMR := base.PredictedBits > 0 && mrPred < base.PredictedBits
	if gotMR := plan.Strategy == MultiRound; gotMR != wantMR {
		t.Fatalf("choice %v disagrees with predictions (one-round %.0f, multi-round %.0f)",
			plan.Strategy, base.PredictedBits, mrPred)
	}
	if wantMR && !strings.Contains(plan.Reason, "beats one-round") {
		t.Errorf("reason does not explain the comparison: %q", plan.Reason)
	}
	if !wantMR && !strings.Contains(plan.Reason, "multi-round rejected") {
		t.Errorf("reason does not record the rejection: %q", plan.Reason)
	}
	// Execution under the comparison stays correct.
	res := e.Execute(q, db)
	want := join.Join(q, join.FromDatabase(db))
	if !join.EqualTupleSets(join.Dedup(res.Output), want) {
		t.Errorf("cost-comparing engine output %d tuples, want %d", len(res.Output), len(want))
	}
}

func TestMultiRoundPlanCached(t *testing.T) {
	q := query.Triangle()
	db := data.NewDatabase()
	db.Put(workload.Matching("S1", 2, 400, 100000, 1))
	db.Put(workload.Matching("S2", 2, 400, 100000, 2))
	db.Put(workload.Matching("S3", 2, 400, 100000, 3))
	force := MultiRound
	e := NewEngine(8, 1)
	e.ForceStrategy = &force
	r1 := e.Execute(q, db)
	r2 := e.Execute(q, db)
	st := e.CacheStats()
	if st.Misses != 1 || st.Hits != 1 {
		t.Errorf("cache stats = %+v, want 1 miss + 1 hit", st)
	}
	if !join.EqualTupleSets(r1.Output, r2.Output) {
		t.Error("cached multi-round plan changed its answers")
	}
	// A ConsiderMultiRound toggle is part of the cache key.
	e2 := NewEngine(8, 1)
	e2.ConsiderMultiRound = true
	e2.Execute(q, db)
	e2.ConsiderMultiRound = false
	e2.Execute(q, db)
	if st2 := e2.CacheStats(); st2.Misses != 2 {
		t.Errorf("toggling ConsiderMultiRound reused a stale plan: %+v", st2)
	}
}

func TestExplainListsPredictedCosts(t *testing.T) {
	q := query.Triangle()
	db := data.NewDatabase()
	db.Put(workload.Matching("S1", 2, 500, 100000, 1))
	db.Put(workload.Matching("S2", 2, 500, 100000, 2))
	db.Put(workload.Matching("S3", 2, 500, 100000, 3))
	out := NewEngine(16, 1).Explain(q, db)
	for _, want := range []string{
		"predicted cost per strategy", "hypercube", "skew-join", "bin-combination",
		"multi-round", "SumMaxBits", "← chosen", "not §4.1-shaped",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain missing %q:\n%s", want, out)
		}
	}
}
