// Package core is the top of the stack: a one-round MPC query-evaluation
// engine that puts the paper's pieces together. Given a conjunctive query,
// a database, and p servers, the engine collects statistics, decides which
// algorithm applies — plain HyperCube on skew-free data (§3), the
// specialized skew join for the two-relation join (§4.1), or the general
// bin-combination algorithm (§4.2) — computes the matching lower bound
// (Theorems 3.5/4.7), and executes the plan on the simulator.
package core

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/bounds"
	"repro/internal/data"
	"repro/internal/exec"
	"repro/internal/hypercube"
	"repro/internal/mpc"
	"repro/internal/query"
	"repro/internal/rounds"
	"repro/internal/skew"
	"repro/internal/stats"
)

// Strategy identifies which of the paper's algorithms a plan uses.
type Strategy int

// Strategies.
const (
	// HyperCube is the §3.1 algorithm with LP-optimal shares (skew-free
	// data, simple statistics).
	HyperCube Strategy = iota
	// SkewJoin is the §4.1 algorithm specialized for
	// q(x,y,z) = S1(x,z), S2(y,z) with heavy hitters.
	SkewJoin
	// BinCombination is the general §4.2 algorithm for arbitrary
	// conjunctive queries with heavy hitters.
	BinCombination
	// MultiRound is the traditional one-join-per-round pipeline (skew-aware
	// per-step heavy-hitter grids), executed through exec.RunPipeline with
	// intermediates resident on the servers between rounds.
	MultiRound
)

func (s Strategy) String() string {
	switch s {
	case HyperCube:
		return "hypercube"
	case SkewJoin:
		return "skew-join"
	case BinCombination:
		return "bin-combination"
	case MultiRound:
		return "multi-round"
	}
	return "?"
}

// DefaultPlanCacheCapacity bounds the plan cache when the engine does not
// set an explicit capacity: enough for a realistic working set of
// (query, database-version) pairs, small enough that a churn of one-off
// fingerprints cannot grow the engine without bound.
const DefaultPlanCacheCapacity = 64

// Config is the immutable engine configuration: everything the pre-Session
// API exposed as mutable Engine fields, validated once at construction so
// a served engine never reads a field another goroutine might be writing.
type Config struct {
	// P is the physical server count (≥ 2).
	P int
	// Seed pins every hash family the engine derives.
	Seed uint64
	// PlanCacheCapacity bounds the number of cached plans; 0 means
	// DefaultPlanCacheCapacity, negative means unbounded.
	PlanCacheCapacity int
	// ConsiderMultiRound adds the multi-round pipeline to plan selection:
	// when its predicted cost undercuts the chosen one-round strategy's,
	// the engine plans, caches, and executes the pipeline instead.
	ConsiderMultiRound bool
	// DriftFactor enables adaptive re-planning for serving-mode executions
	// (ExecOptions.Serving): when a run's realized max load exceeds
	// DriftFactor × the plan's predicted bits and the database content has
	// changed since the plan was built, the cached entry is marked stale
	// and the next execution replans against current statistics
	// (Result.Replanned reports it). 0 disables; values in (0, 1) are
	// rejected — they would demand realized loads below the prediction.
	DriftFactor float64
	// ClusterPoolDepth bounds the engine's cluster pool per size bucket;
	// 0 means exec.DefaultClusterPoolDepth.
	ClusterPoolDepth int
	// ResidentChunkTuples caps the rows one send part carries out of a
	// resident fragment when pipelines shuffle intermediates
	// server-to-server; 0 means mpc.DefaultResidentChunkTuples.
	ResidentChunkTuples int
	// BackgroundReplan moves drift-triggered replanning off the request
	// path: a stale cache entry keeps serving (a physical plan stays correct
	// for any content, merely load-suboptimal) while a background worker
	// rebuilds it against a fresh snapshot's statistics and swaps the new
	// plan in. Off, the next execution after a drift mark replans inline and
	// reports Result.Replanned. Engines with this set own a worker goroutine;
	// Close stops it.
	BackgroundReplan bool
	// Faults, when non-nil, arms a seeded fault-injection schedule for every
	// execution (see mpc.Faults). Injected faults are recovered at round
	// granularity within the Retry budget — a torn round is re-driven in
	// place and a failed compute phase re-runs only the failed servers —
	// and surface as typed errors (mpc.ErrTornRound, mpc.ErrComputeFailed)
	// once the budget is spent. Result.Recovery reports what recovery an
	// execution needed.
	Faults *mpc.Faults
	// Retry bounds per-execution fault recovery: attempts, capped
	// exponential backoff with deterministic jitter, and an injectable
	// sleep hook (see Retry). The zero value is the default policy.
	Retry Retry
	// BreakerThreshold arms the engine's circuit breaker: after this many
	// consecutive executions ending in cluster-level fault errors the
	// engine fails fast with ErrCircuitOpen, admitting one probe execution
	// at a time until a probe succeeds (see HealthStats). 0 disables the
	// breaker.
	BreakerThreshold int
	// DisableAutoPartition turns off the lazy heavy-partition layout
	// maintenance serving executions drive by default: after planning, the
	// engine calls data.Database.EnsurePartitioned for every (relation,
	// attribute) the plan's router can span-route, so heavy runs ship
	// wholesale on subsequent executions. Rebuilds are counted in
	// CacheStats.Repartitions.
	DisableAutoPartition bool
}

// Engine evaluates conjunctive queries in one communication round on p
// simulated servers.
//
// Execute caches physical plans keyed by (query canonical form, database
// fingerprint, p, forced strategy): repeated calls on unchanged inputs —
// the heavy repeated-traffic case — skip statistics collection, LP
// solving, and heavy-hitter planning. The fingerprint itself is maintained
// incrementally by the relations (data.Relation.ContentSum), so the
// cache-hit path costs O(relations), not a database rescan. The cache is a
// bounded LRU (DefaultPlanCacheCapacity entries unless the capacity is
// overridden); least-recently-used plans are evicted and counted in
// CacheStats. Engines are safe for concurrent use.
//
// The exported fields exist for pre-Session compatibility: they are read
// at the start of each Execute, so mutating them while other goroutines
// execute is a data race. New code should build engines with New(Config) —
// engines so built ignore the mutable fields entirely — and pass per-call
// overrides through ExecuteContext's ExecOptions (the repro.Session facade
// does both).
type Engine struct {
	P    int
	Seed uint64
	// ForceStrategy overrides plan selection when non-nil. Pre-Session
	// compatibility; prefer ExecOptions.Strategy.
	ForceStrategy *Strategy
	// DisablePlanCache replans on every Execute call. Pre-Session
	// compatibility; prefer ExecOptions.NoCache.
	DisablePlanCache bool
	// PlanCacheCapacity bounds the number of cached plans; 0 means
	// DefaultPlanCacheCapacity, negative means unbounded. Pre-Session
	// compatibility: it is latched the first time the engine needs it, so
	// set it before the first Execute; engines built with New(Config) use
	// Config.PlanCacheCapacity instead.
	PlanCacheCapacity int
	// ConsiderMultiRound adds the multi-round pipeline to plan selection
	// (see Config.ConsiderMultiRound). Pre-Session compatibility; prefer
	// Config or ExecOptions.MultiRound.
	ConsiderMultiRound bool

	// conf is the immutable configuration of engines built with New; nil
	// for engines built with NewEngine, which read the exported fields.
	conf *Config

	mu        sync.Mutex
	cache     map[planKey]*list.Element // key → element whose Value is *cacheEntry
	lru       list.List                 // front = most recently used
	hits      uint64
	misses    uint64
	evictions uint64
	replans   uint64
	// capacity is the latched effective cache bound (see capacityLocked).
	capacity    int
	capResolved bool
	// scratchPool recycles exec.Scratch buffers across Execute calls so
	// repeated executions of cached plans don't allocate load-accounting
	// slices.
	scratchPool sync.Pool
	// clusters recycles mpc clusters across Execute calls (size-bucketed):
	// cached-plan serving draws a warm cluster — servers and Received maps
	// retained — instead of reallocating Θ(Virtual) of both per execution.
	clusters exec.ClusterPool
	// standing registers the engine's live standing-query handles so plan
	// invalidation (drift-triggered markStale, ClearPlanCache) can flag the
	// handles whose resident state was built from the invalidated plan.
	// Guarded by mu; the flag itself is an atomic on the handle, so no
	// handle lock is ever taken under mu.
	standing map[*StandingQuery]struct{}
	// replanCh feeds the background replan worker (Config.BackgroundReplan):
	// markStale enqueues stale keys, the worker rebuilds against a fresh
	// snapshot and swaps the plan in under mu. Nil when background
	// replanning is off. replanClosed (guarded by mu) stops enqueues once
	// Close has closed the channel.
	replanCh     chan planKey
	replanClosed bool
	replanWG     sync.WaitGroup
	bgReplans    uint64
	// repartitions counts heavy-partition layout rebuilds driven by serving
	// executions (see Config.DisableAutoPartition). Guarded by mu.
	repartitions uint64
	// breaker is the per-engine circuit breaker over cluster-fault
	// failures; nil unless Config.BreakerThreshold armed it.
	breaker *breaker
}

// cacheEntry is one LRU node: the key (so eviction can unmap it) plus the
// cached plan bundle and its staleness mark (set by drift detection). q, db,
// and s capture the inputs the entry was planned from so the background
// replan worker can rebuild it off the request path (db may be a snapshot;
// the worker re-snapshots it for fresh statistics).
type cacheEntry struct {
	key   planKey
	cp    *cachedPlan
	stale bool
	q     *query.Query
	db    *data.Database
	s     settings
}

// planKey identifies a cached plan: q.String() is a canonical rendering of
// the query (names, variable order, atom order), p/seed pin the layout and
// hash family, and forced pins the strategy override in effect.
//
// Two keying modes coexist. Content mode (serving=false, the pre-Session
// Execute path) sets fp = stats.Fingerprint(db): any content change is a
// different key, so a cached plan is provably built from the statistics of
// the database it runs on. Serving mode (serving=true) sets fp = the
// database's identity and schema = its schema fingerprint: content deltas
// (Database.Apply) keep the key — a physical plan routes by column
// position and stays *correct* for any content, merely load-suboptimal —
// and drift detection decides when suboptimal has become bad enough to
// replan. A schema change (relation replaced with a different shape) does
// change the key, because positional routing would be wrong.
type planKey struct {
	query   string
	fp      uint64
	schema  uint64
	p       int
	seed    uint64
	forced  Strategy // -1 when no override
	mrAware bool     // multi-round consideration changes plan selection
	serving bool
}

// cachedPlan holds the logical plan plus the strategy-specific physical
// plan, whichever strategy was chosen, and the content fingerprint the
// statistics were frozen at (drift detection replans only when the content
// actually moved since).
type cachedPlan struct {
	plan      Plan
	plannedFP uint64
	hc        *hypercube.Plan
	sj        *skew.JoinPlan
	gen       *skew.GeneralPlan
	mr        *rounds.PipelinePlan
}

// forEachPartitionHint visits the (relation, attribute) pairs the cached
// plan's routers can span-route (exec.PhysicalPlan.PartitionHints).
// HyperCube plans hash uniformly and never hint.
func (cp *cachedPlan) forEachPartitionHint(fn func(exec.PartitionHint)) {
	switch {
	case cp.sj != nil:
		for _, h := range cp.sj.Phys.PartitionHints {
			fn(h)
		}
	case cp.gen != nil:
		for _, h := range cp.gen.Phys.PartitionHints {
			fn(h)
		}
	case cp.mr != nil && cp.mr.Pipe != nil:
		for _, st := range cp.mr.Pipe.Stages {
			for _, h := range st.Plan.PartitionHints {
				fn(h)
			}
		}
	}
}

// ensurePartitions drives lazy skew-adaptive layout maintenance for a
// serving execution: every hinted relation gets a current heavy-partition
// index (data.Database.EnsurePartitioned) so span routing kicks in on the
// next epoch's snapshots. db may be a snapshot — the ensure delegates to
// the mutable master behind it.
func (e *Engine) ensurePartitions(cp *cachedPlan, db *data.Database, p int) {
	rebuilt := 0
	cp.forEachPartitionHint(func(h exec.PartitionHint) {
		if db.EnsurePartitioned(h.Rel, h.Attr, p) {
			rebuilt++
		}
	})
	if rebuilt > 0 {
		e.mu.Lock()
		e.repartitions += uint64(rebuilt)
		e.mu.Unlock()
	}
}

// Plan describes the chosen algorithm and the bound analysis for one
// query/database pair.
type Plan struct {
	Strategy       Strategy
	Shares         []int   // HyperCube only
	LowerBoundBits float64 // Theorem 1.2's L_lower = max_{x,u} L_x(u,M,p)
	HasSkew        bool
	Reason         string
	// PredictedBits is the chosen strategy's cost prediction: p^λ for
	// HyperCube, Eq. 10 for the skew join, max_B p^{λ(B)} for bin
	// combinations, and the summed per-round maxima (SumMaxBits) for
	// multi-round pipelines.
	PredictedBits float64
	// Rounds is the number of communication rounds the plan uses (1 for
	// every one-round strategy).
	Rounds int
}

// Result is the outcome of Execute.
type Result struct {
	Plan          Plan
	Output        []data.Tuple
	MaxLoadBits   int64 // max virtual-processor load (what the theorems bound)
	TotalBits     int64
	PredictedBits float64
	// Replanned reports that this execution rebuilt a cached plan that
	// drift detection had marked stale: the statistics the old plan froze
	// had diverged from realized loads. (With Config.BackgroundReplan the
	// rebuild happens off the request path, so serving executions never
	// report it.)
	Replanned bool
	// Recovery reports the fault recovery this execution needed: retry
	// attempts consumed, rounds replayed in place, servers recomputed, and
	// backoff waits taken. The zero value means a clean run.
	Recovery Recovery
	// FaultRetries is the legacy recovery counter, kept equal to
	// Recovery.Attempts: before round-granular recovery existed it counted
	// whole-execution retries (always 0 or 1); it now counts every
	// recovery attempt the execution consumed, so values above 1 are
	// possible. New code should read Recovery.
	FaultRetries int
}

// Retry bounds per-execution fault recovery; see exec.Retry.
type Retry = exec.Retry

// Recovery reports one execution's fault-recovery stats; see exec.Recovery.
type Recovery = exec.Recovery

// Defaults of the zero Retry policy, re-exported from exec.
const (
	DefaultRetryAttempts    = exec.DefaultRetryAttempts
	DefaultRetryBaseBackoff = exec.DefaultRetryBaseBackoff
	DefaultRetryMaxBackoff  = exec.DefaultRetryMaxBackoff
)

// NewEngine returns an engine for p servers in pre-Session compatibility
// mode: configuration is the exported mutable fields, to be set before the
// engine is shared. New(Config) is the serving-grade constructor.
func NewEngine(p int, seed uint64) *Engine {
	if p < 2 {
		panic("core: need p >= 2")
	}
	return &Engine{P: p, Seed: seed}
}

// New returns an engine built from an immutable Config, or an error for
// invalid configuration (rather than the pre-Session constructor's panic).
// Engines built here never read the exported compatibility fields.
func New(cfg Config) (*Engine, error) {
	if cfg.P < 2 {
		return nil, fmt.Errorf("core: need p >= 2, got %d", cfg.P)
	}
	if cfg.DriftFactor != 0 && cfg.DriftFactor < 1 {
		return nil, fmt.Errorf("core: drift factor %g is below 1: realized loads would always count as drifted", cfg.DriftFactor)
	}
	if cfg.ClusterPoolDepth < 0 {
		return nil, fmt.Errorf("core: negative cluster pool depth %d", cfg.ClusterPoolDepth)
	}
	if cfg.ResidentChunkTuples < 0 {
		return nil, fmt.Errorf("core: negative resident chunk %d", cfg.ResidentChunkTuples)
	}
	if cfg.BreakerThreshold < 0 {
		return nil, fmt.Errorf("core: negative breaker threshold %d", cfg.BreakerThreshold)
	}
	e := &Engine{P: cfg.P, Seed: cfg.Seed, conf: &cfg}
	if cfg.BreakerThreshold > 0 {
		e.breaker = &breaker{threshold: cfg.BreakerThreshold}
	}
	e.capacity = effectiveCapacity(cfg.PlanCacheCapacity)
	e.capResolved = true
	e.clusters.Depth = cfg.ClusterPoolDepth
	if cfg.BackgroundReplan {
		e.replanCh = make(chan planKey, replanQueueDepth)
		e.replanWG.Add(1)
		go e.replanWorker()
	}
	return e, nil
}

// replanQueueDepth bounds the background replan queue. A full queue drops
// the enqueue — the entry stays stale and every subsequent cache hit
// re-enqueues it, so a rebuild is delayed, never lost.
const replanQueueDepth = 64

// replanWorker drains replanCh: for each still-stale entry it rebuilds the
// plan against a fresh snapshot of the entry's database and swaps it in.
// Planning runs outside the engine lock (it is the expensive part); the
// swap re-checks the entry under mu, so a concurrent ClearPlanCache or
// eviction just discards the rebuilt plan.
func (e *Engine) replanWorker() {
	defer e.replanWG.Done()
	for key := range e.replanCh {
		e.mu.Lock()
		var q *query.Query
		var db *data.Database
		var s settings
		if el, ok := e.cache[key]; ok {
			if ent := el.Value.(*cacheEntry); ent.stale {
				q, db, s = ent.q, ent.db, ent.s
			}
		}
		e.mu.Unlock()
		if q == nil || db == nil {
			continue
		}
		cp := e.buildPlan(q, db.Snapshot(), s)
		e.mu.Lock()
		if el, ok := e.cache[key]; ok {
			if ent := el.Value.(*cacheEntry); ent.stale {
				ent.cp = cp
				ent.stale = false
				e.replans++
				e.bgReplans++
			}
		}
		// Standing queries flagged by the same markStale reseed themselves
		// on their next Advance; the swapped-in plan is what their planFor
		// will pick up.
		e.mu.Unlock()
	}
}

// Close stops the engine's background workers (the replan worker, when
// Config.BackgroundReplan is set) and waits for them to exit. Engines
// without background workers Close as a no-op; Close is idempotent and safe
// to call concurrently.
func (e *Engine) Close() {
	e.mu.Lock()
	if e.replanCh != nil && !e.replanClosed {
		e.replanClosed = true
		close(e.replanCh)
	}
	e.mu.Unlock()
	e.replanWG.Wait()
}

// enqueueReplanLocked hands key to the background replan worker if one is
// running. Callers hold e.mu.
func (e *Engine) enqueueReplanLocked(key planKey) {
	if e.replanCh == nil || e.replanClosed {
		return
	}
	select {
	case e.replanCh <- key:
	default:
		// Queue full: the entry stays stale and the next hit re-enqueues.
	}
}

// ExecOptions are per-call overrides for ExecuteContext. The zero value
// means "use the engine's configuration".
type ExecOptions struct {
	// Strategy forces plan selection when non-nil.
	Strategy *Strategy
	// MultiRound overrides the engine's ConsiderMultiRound when non-nil.
	MultiRound *bool
	// NoCache bypasses the plan cache for this call (plan and discard).
	NoCache bool
	// P overrides the engine's server count when > 0.
	P int
	// Serving keys the plan cache by database identity + schema instead of
	// content, so cached plans survive Database.Apply deltas; pair it with
	// a DriftFactor so drifted plans get rebuilt. See planKey.
	Serving bool
	// DriftFactor overrides the engine's drift threshold when > 0 (only
	// meaningful with Serving).
	DriftFactor float64
}

// settings is the resolved effective configuration of one execution.
type settings struct {
	p             int
	seed          uint64
	forced        *Strategy
	mr            bool
	noCache       bool
	serving       bool
	drift         float64
	residentChunk int
	bgReplan      bool
	faults        *mpc.Faults
	retry         Retry
	autoPartition bool
}

// settings resolves the engine configuration (immutable Config if present,
// the pre-Session mutable fields otherwise) plus the per-call overrides.
func (e *Engine) settings(opts ExecOptions) settings {
	s := settings{p: e.P, seed: e.Seed}
	if e.conf != nil {
		s.mr = e.conf.ConsiderMultiRound
		s.drift = e.conf.DriftFactor
		s.residentChunk = e.conf.ResidentChunkTuples
		s.bgReplan = e.conf.BackgroundReplan
		s.faults = e.conf.Faults
		s.retry = e.conf.Retry
	} else {
		s.forced = e.ForceStrategy
		s.mr = e.ConsiderMultiRound
		s.noCache = e.DisablePlanCache
	}
	if opts.Strategy != nil {
		s.forced = opts.Strategy
	}
	if opts.MultiRound != nil {
		s.mr = *opts.MultiRound
	}
	if opts.NoCache {
		s.noCache = true
	}
	if opts.P > 0 {
		s.p = opts.P
	}
	s.serving = opts.Serving
	if opts.DriftFactor > 0 {
		s.drift = opts.DriftFactor
	}
	if !s.serving {
		// Content-keyed entries can never drift: any content change is a
		// new key already.
		s.drift = 0
	}
	// Auto-partitioning is a serving-mode feature: serving executions read
	// immutable snapshots, so the master rebuild behind the database lock
	// never races an in-flight round. (A non-serving Execute reads its
	// database directly and may run concurrently with another, so the
	// engine must not mutate layouts there; such callers partition
	// explicitly via data.Database.EnsurePartitioned.)
	s.autoPartition = s.serving && (e.conf == nil || !e.conf.DisableAutoPartition)
	return s
}

// PlanQuery analyzes statistics and picks the algorithm, including the
// multi-round cost comparison when ConsiderMultiRound is set. It builds
// (and discards) the physical plan to obtain the strategy's cost
// prediction; Execute's plan cache avoids the duplicate work on the hot
// path.
func (e *Engine) PlanQuery(q *query.Query, db *data.Database) Plan {
	return e.buildPlan(q, db, e.settings(ExecOptions{})).plan
}

// logicalPlan runs the one-round strategy selection of §3/§4.
func (e *Engine) logicalPlan(q *query.Query, db *data.Database, s settings) Plan {
	if err := q.Validate(); err != nil {
		panic(fmt.Sprintf("core: invalid query: %v", err))
	}
	dbStats := stats.CollectDB(db, s.p)
	hasSkew := false
	for _, a := range q.Atoms {
		rs := dbStats.Relations[a.Name]
		if rs == nil {
			panic("core: database missing relation " + a.Name)
		}
		for _, f := range rs.ByAttrs {
			if len(f.HeavyHitters(rs.Threshold)) > 0 {
				hasSkew = true
			}
		}
	}
	lower, desc := bounds.BestLower(q, db, s.p, 0)
	plan := Plan{LowerBoundBits: lower, HasSkew: hasSkew}
	switch {
	case s.forced != nil:
		plan.Strategy = *s.forced
		plan.Reason = "forced: " + plan.Strategy.String()
	case !hasSkew:
		plan.Strategy = HyperCube
		plan.Reason = "no heavy hitters at threshold m/p; LP shares are optimal (" + desc + ")"
	case isJoin2Shaped(q):
		plan.Strategy = SkewJoin
		plan.Reason = "two-relation join with heavy hitters; §4.1 specialized algorithm (" + desc + ")"
	default:
		plan.Strategy = BinCombination
		plan.Reason = "heavy hitters on a general query; §4.2 bin combinations (" + desc + ")"
	}
	return plan
}

// Execute plans and runs the query through the unified executor, returning
// answers and realized loads. Plans are cached: a repeat call with the
// same query, database content, and p reuses the cached physical plan.
// This is the pre-Session entry point: it panics on invalid input and
// cannot be canceled; ExecuteContext is the serving-grade form.
func (e *Engine) Execute(q *query.Query, db *data.Database) Result {
	//skewlint:allow ctxflow — Execute is the documented uncancelable pre-Session entry point
	res, err := e.ExecuteContext(context.Background(), q, db, ExecOptions{})
	if err != nil {
		// The pre-Session API surfaced invalid input as panics; keep that
		// contract for existing callers. (A background context never
		// cancels, so validation errors are the only kind possible here.)
		panic(err.Error())
	}
	return res
}

// ExecuteContext plans and runs the query with per-call options, a
// cancelable context, and errors instead of panics for invalid input. The
// context is checked before planning, before the communication round, and
// between the rounds of a multi-round pipeline; a canceled execution
// returns ctx.Err().
//
// With opts.Serving set, the plan cache keys on database identity + schema
// (cached plans survive Database.Apply deltas), and a configured drift
// factor arms adaptive re-planning: an execution whose realized max load
// exceeds driftFactor × the plan's prediction, on content that changed
// since the plan was built, marks the entry stale; the next call replans
// against current statistics and reports Result.Replanned.
func (e *Engine) ExecuteContext(ctx context.Context, q *query.Query, db *data.Database, opts ExecOptions) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s := e.settings(opts)
	if s.p < 2 {
		return Result{}, fmt.Errorf("core: need p >= 2, got %d", s.p)
	}
	if err := q.Validate(); err != nil {
		return Result{}, fmt.Errorf("%w: %w", ErrInvalidQuery, err)
	}
	for _, a := range q.Atoms {
		if db.Get(a.Name) == nil {
			return Result{}, fmt.Errorf("core: database missing relation %s", a.Name)
		}
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	// Circuit breaker: a persistently faulting cluster sheds fast instead of
	// burning a retry-backoff budget per caller. Checked before planning so
	// shed calls cost nothing.
	var probe bool
	if e.breaker != nil {
		var berr error
		if probe, berr = e.breaker.admit(); berr != nil {
			return Result{}, berr
		}
	}
	cp, key, replanned := e.planFor(q, db, s)
	if s.autoPartition {
		// Lazy skew-adaptive layout maintenance: make sure every relation
		// the plan's router can span-route carries a current heavy-partition
		// index. Rebuilds land on the mutable master and reach the *next*
		// epoch — this execution's snapshot keeps its frozen layout (current
		// or not, routing is correct either way; stale layouts just route
		// per-tuple or span-wise with yesterday's runs).
		e.ensurePartitions(cp, db, s.p)
	}
	res := Result{Plan: cp.plan, Replanned: replanned}
	// Callers own the Result; don't let them mutate the cached plan
	// through the shared backing array.
	res.Plan.Shares = append([]int(nil), cp.plan.Shares...)
	// Pooled load-accounting scratch: PerServerBits aliases it, so each
	// planner's result shaping must finish before the buffers go back.
	sc, _ := e.scratchPool.Get().(*exec.Scratch)
	if sc == nil {
		sc = new(exec.Scratch)
	}
	var rec Recovery
	ec := exec.Config{Scratch: sc, Clusters: &e.clusters, Ctx: ctx, ResidentChunkTuples: s.residentChunk, Faults: s.faults, Retry: s.retry, Recovery: &rec}
	var execErr error
	switch {
	case cp.hc != nil:
		hc, err := cp.hc.ExecuteWith(db, ec)
		if execErr = err; err == nil {
			res.Output = hc.Output
			res.MaxLoadBits = hc.Loads.MaxBits
			res.TotalBits = hc.Loads.TotalBits
			res.PredictedBits = hc.PredictedBits
		}
	case cp.sj != nil:
		sj, err := cp.sj.ExecuteWith(db, ec)
		if execErr = err; err == nil {
			res.Output = sj.Output
			res.MaxLoadBits = sj.MaxVirtualBits
			res.PredictedBits = sj.PredictedBits
		}
	case cp.gen != nil:
		g, err := cp.gen.ExecuteWith(db, ec)
		if execErr = err; err == nil {
			res.Output = g.Output
			res.MaxLoadBits = g.MaxVirtualBits
			res.PredictedBits = g.PredictedBits
		}
	case cp.mr != nil:
		r, err := cp.mr.ExecuteWith(db, ec)
		if execErr = err; err == nil {
			res.Output = r.Output
			// The multi-round analogue of the one-round max load is the
			// summed per-round maxima: the most bits one server could have
			// received across the whole computation.
			res.MaxLoadBits = r.SumMaxBits
			for _, rl := range r.Rounds {
				res.TotalBits += rl.TotalBits
			}
			res.PredictedBits = cp.mr.PredictedSumMaxBits
		}
	}
	if execErr != nil {
		// Recovery happened inside the executor (round replays, partial
		// recomputes); an error here means the retry budget is spent. Surface
		// the typed error so the caller can shed or degrade, and let the
		// breaker count cluster-level faults.
		if e.breaker != nil {
			outcome := breakerNeutral
			if isInjectedFault(execErr) {
				outcome = breakerFault
			}
			e.breaker.done(probe, outcome)
		}
		e.scratchPool.Put(sc)
		return Result{}, execErr
	}
	if e.breaker != nil {
		e.breaker.done(probe, breakerOK)
	}
	res.Recovery = rec
	res.FaultRetries = rec.Attempts
	// Result.Output escapes to the caller: the scratch must release the
	// buffer it aliases, or the next Execute reusing this scratch would
	// overwrite answers the caller already holds.
	if res.Output != nil {
		sc.DetachOutput()
	}
	e.scratchPool.Put(sc)
	// Adaptive re-planning: realized load drifted beyond the prediction on
	// content that moved since the statistics were frozen → replan next
	// call. (Equal content cannot replan: rebuilt statistics would be
	// identical, so marking would only thrash the cache.)
	if s.drift > 0 && !s.noCache {
		pred := res.Plan.PredictedBits
		if pred > 0 && float64(res.MaxLoadBits) > s.drift*pred {
			if fp := stats.Fingerprint(db); fp != cp.plannedFP {
				e.markStale(key)
			}
		}
	}
	return res, nil
}

// isInjectedFault reports whether err is a cluster-level fault error — the
// kind the executor's retry budget fights and the circuit breaker counts.
func isInjectedFault(err error) bool {
	return errors.Is(err, mpc.ErrTornRound) || errors.Is(err, mpc.ErrComputeFailed)
}

// markStale marks the cached entry for key (if still cached) so it gets
// rebuilt against current statistics — inline by the next execution, or off
// the request path when the background replan worker is running — and flags
// every standing query built from that plan so its next Advance reseeds.
func (e *Engine) markStale(key planKey) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if el, ok := e.cache[key]; ok {
		el.Value.(*cacheEntry).stale = true
		e.enqueueReplanLocked(key)
	}
	for sq := range e.standing {
		if sq.key == key {
			sq.stale.Store(true)
		}
	}
}

// planFor returns the cached plan bundle for (q, db), building and caching
// it on a miss. Hits refresh the entry's LRU position; a hit on a
// drift-stale entry rebuilds it (reported as replanned); inserts beyond
// the capacity evict from the cold end.
func (e *Engine) planFor(q *query.Query, db *data.Database, s settings) (*cachedPlan, planKey, bool) {
	if s.noCache {
		return e.buildPlan(q, db, s), planKey{}, false
	}
	key := planKey{query: q.String(), p: s.p, seed: s.seed, forced: -1, mrAware: s.mr, serving: s.serving}
	if s.forced != nil {
		key.forced = *s.forced
	}
	if s.serving {
		key.fp = db.ID()
		key.schema = stats.SchemaFingerprint(db)
	} else {
		key.fp = stats.Fingerprint(db)
	}
	replanned := false
	e.mu.Lock()
	if el, ok := e.cache[key]; ok {
		ent := el.Value.(*cacheEntry)
		if !ent.stale || s.bgReplan {
			// A stale entry under background replanning still serves as a
			// hit: the plan is correct for any content, and the worker is
			// rebuilding it off the request path. Re-enqueue in case the
			// original enqueue was dropped on a full queue.
			if ent.stale {
				e.enqueueReplanLocked(key)
			}
			e.hits++
			e.lru.MoveToFront(el)
			cp := ent.cp
			e.mu.Unlock()
			return cp, key, false
		}
		// Drift marked this entry stale: drop it and replan against the
		// database's current statistics.
		e.lru.Remove(el)
		delete(e.cache, key)
		e.replans++
		replanned = true
	}
	e.mu.Unlock()
	// Plan outside the lock: planning is the expensive part, and a
	// duplicate build for a racing miss is just redundant work.
	cp := e.buildPlan(q, db, s)
	e.mu.Lock()
	defer e.mu.Unlock()
	e.misses++
	if el, ok := e.cache[key]; ok {
		// A racing miss already inserted this key; keep the live entry.
		e.lru.MoveToFront(el)
		return el.Value.(*cacheEntry).cp, key, replanned
	}
	if e.cache == nil {
		e.cache = make(map[planKey]*list.Element)
	}
	e.cache[key] = e.lru.PushFront(&cacheEntry{key: key, cp: cp, q: q, db: db, s: s})
	capacity := e.capacityLocked()
	for capacity > 0 && e.lru.Len() > capacity {
		cold := e.lru.Back()
		e.lru.Remove(cold)
		delete(e.cache, cold.Value.(*cacheEntry).key)
		e.evictions++
	}
	return cp, key, replanned
}

// buildPlan runs the logical planner, lowers the chosen strategy to its
// physical plan, and — when multi-round consideration is on — cost-compares
// the one-round choice against a multi-round pipeline (predicted SumMaxBits
// vs the one-round PredictedBits), switching to the pipeline when cheaper.
func (e *Engine) buildPlan(q *query.Query, db *data.Database, s settings) *cachedPlan {
	cp := &cachedPlan{plan: e.logicalPlan(q, db, s)}
	cp.plannedFP = stats.Fingerprint(db)
	cp.plan.Rounds = 1
	switch cp.plan.Strategy {
	case HyperCube:
		cp.hc = hypercube.BuildPlan(q, db, hypercube.Config{P: s.p, Seed: s.seed})
		cp.plan.Shares = cp.hc.Shares
		cp.plan.PredictedBits = cp.hc.PredictedBits
	case SkewJoin:
		cp.sj = skew.PlanJoin(q, db, skew.JoinConfig{P: s.p, Seed: s.seed})
		cp.plan.PredictedBits = cp.sj.PredictedBits
	case BinCombination:
		cp.gen = skew.PlanGeneral(q, db, skew.GeneralConfig{P: s.p, Seed: s.seed})
		cp.plan.PredictedBits = cp.gen.PredictedBits
	case MultiRound:
		cp.mr = planMultiRound(q, db, s)
		cp.plan.PredictedBits = cp.mr.PredictedSumMaxBits
		cp.plan.Rounds = len(cp.mr.Logical.Steps)
	}
	if s.mr && s.forced == nil && cp.mr == nil && q.NumAtoms() >= 2 {
		mr := planMultiRound(q, db, s)
		one := cp.plan.PredictedBits
		if one > 0 && mr.PredictedSumMaxBits < one {
			cp.plan.Reason = fmt.Sprintf(
				"multi-round pipeline predicted Σmax %.0f bits beats one-round %s predicted %.0f bits (%s)",
				mr.PredictedSumMaxBits, cp.plan.Strategy, one, cp.plan.Reason)
			cp.plan.Strategy = MultiRound
			cp.plan.Shares = nil
			cp.plan.PredictedBits = mr.PredictedSumMaxBits
			cp.plan.Rounds = len(mr.Logical.Steps)
			cp.hc, cp.sj, cp.gen = nil, nil, nil
			cp.mr = mr
		} else {
			cp.plan.Reason += fmt.Sprintf(
				"; multi-round rejected (predicted Σmax %.0f bits over %d rounds)",
				mr.PredictedSumMaxBits, len(mr.Logical.Steps))
		}
	}
	return cp
}

// planMultiRound lowers the skew-aware multi-round pipeline for q.
func planMultiRound(q *query.Query, db *data.Database, s settings) *rounds.PipelinePlan {
	return rounds.PlanPipeline(q, db, rounds.Config{P: s.p, Seed: s.seed, SkewAware: true})
}

// effectiveCapacity maps the configured capacity to the effective bound.
func effectiveCapacity(configured int) int {
	if configured == 0 {
		return DefaultPlanCacheCapacity
	}
	return configured
}

// capacityLocked returns the effective cache capacity, latching the
// pre-Session mutable field the first time an insert needs it so the
// bound can never change mid-serving. Callers hold e.mu.
func (e *Engine) capacityLocked() int {
	if !e.capResolved {
		e.capacity = effectiveCapacity(e.PlanCacheCapacity)
		e.capResolved = true
	}
	return e.capacity
}

// capacityPeekLocked is capacityLocked without the latch: CacheStats must
// report the effective bound without freezing a pre-Session engine's
// PlanCacheCapacity before its documented set-before-first-Execute window
// closes. Callers hold e.mu.
func (e *Engine) capacityPeekLocked() int {
	if e.capResolved {
		return e.capacity
	}
	return effectiveCapacity(e.PlanCacheCapacity)
}

// CacheStats reports the plan cache counters and occupancy.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	// Replans counts drift-triggered rebuilds of stale entries (an inline
	// replan also counts as a miss: it plans). BackgroundReplans of them
	// were rebuilt off the request path by the background worker.
	Replans           uint64
	BackgroundReplans uint64
	// Repartitions counts heavy-partition layout rebuilds driven by serving
	// executions (Config.DisableAutoPartition turns the maintenance off).
	Repartitions uint64
	Size         int // live entries
	Capacity     int // effective bound (≤ 0 means unbounded)
}

// CacheStats returns the plan cache counters.
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return CacheStats{
		Hits:              e.hits,
		Misses:            e.misses,
		Evictions:         e.evictions,
		Replans:           e.replans,
		BackgroundReplans: e.bgReplans,
		Repartitions:      e.repartitions,
		Size:              len(e.cache),
		Capacity:          e.capacityPeekLocked(),
	}
}

// PoolStats reports the engine's cluster pool occupancy — the warm
// clusters cached-plan serving draws from and the memory they pin.
func (e *Engine) PoolStats() exec.PoolStats {
	return e.clusters.Stats()
}

// ClearPlanCache drops all cached plans and resets the counters. Live
// standing queries are flagged stale: their resident state was seeded from
// a now-dropped plan, so their next Advance replans and reseeds.
func (e *Engine) ClearPlanCache() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cache = nil
	e.lru.Init()
	e.hits, e.misses, e.evictions, e.replans, e.bgReplans, e.repartitions = 0, 0, 0, 0, 0, 0
	for sq := range e.standing {
		sq.stale.Store(true)
	}
}

// isJoin2Shaped recognizes q(x,y,z) = S1(x,z), S2(y,z) up to renaming:
// two binary atoms sharing exactly one variable, which sits at the second
// position of both atoms.
func isJoin2Shaped(q *query.Query) bool {
	if q.NumAtoms() != 2 || q.NumVars() != 3 {
		return false
	}
	a, b := q.Atoms[0], q.Atoms[1]
	if a.Arity() != 2 || b.Arity() != 2 {
		return false
	}
	return a.Vars[1] == b.Vars[1] && a.Vars[0] != b.Vars[0]
}
