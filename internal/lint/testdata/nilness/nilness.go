// Package p distills guaranteed nil dereferences inside the branch that
// just established nilness.
package p

type node struct {
	next *node
	val  int
}

// DerefNil reads a field inside its own nil branch.
func DerefNil(n *node) int {
	if n == nil {
		return n.val // want `field access on "n", which is nil on this path`
	}
	return n.val
}

// StarNil dereferences explicitly.
func StarNil(p *int) int {
	if p == nil {
		return *p // want `dereference of "p", which is nil on this path`
	}
	return *p
}

// ElseArm writes to the nil map in the else of a != nil check.
func ElseArm(m map[int]int) {
	if m != nil {
		m[1] = 1
	} else {
		m[2] = 2 // want `write to "m", which is a nil map on this path`
	}
}

// NilSlice indexes a nil slice.
func NilSlice(s []int) int {
	if s == nil {
		return s[0] // want `index of "s", which is a nil slice on this path`
	}
	return s[0]
}

// NilFunc calls a nil func.
func NilFunc(f func() int) int {
	if f == nil {
		return f() // want `call of "f", which is a nil func on this path`
	}
	return f()
}

// Reassigned recovers before use: never flagged.
func Reassigned(s []int) int {
	if s == nil {
		s = []int{0}
		return s[0]
	}
	return s[0]
}

// Guarded mirrors the engine's lazy-init idiom: the nil branch only
// creates, then uses after the branch.
func Guarded(m map[int]int) map[int]int {
	if m == nil {
		m = make(map[int]int)
	}
	m[1] = 1
	return m
}
