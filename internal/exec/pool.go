package exec

import (
	"fmt"
	"math/bits"
	"sync"

	"repro/internal/mpc"
)

// ClusterPool recycles mpc.Clusters across executions. Building a cluster
// costs Θ(Virtual) server and map allocations; an engine serving repeated
// traffic off its plan cache pays that on every Execute unless clusters
// are reused. The pool buckets clusters by virtual-server count rounded up
// to a power of two, so a Get for any size in a bucket can reuse any
// cluster parked there (mpc.Cluster.Resize re-targets it and resets its
// state, retaining servers and map storage).
//
// The zero value is ready to use. Clusters obtained from Get are owned
// exclusively until Put; the pool itself is safe for concurrent use.
type ClusterPool struct {
	buckets [64]sync.Pool
}

// clusterBucket returns the bucket index for n servers: the smallest b
// with 1<<b >= n.
func clusterBucket(n int) int {
	return bits.Len(uint(n - 1))
}

// clusterPrealloc is the largest bucket Get fully preallocates; beyond it
// (over a million virtual servers) clusters are sized exactly to avoid
// absurd rounding overhead.
const clusterPrealloc = 20

// Get returns a cluster resized to exactly virtual servers with all
// fragments and loads cleared — recycled when the bucket has one, freshly
// built otherwise.
func (cp *ClusterPool) Get(virtual int) *mpc.Cluster {
	if virtual < 1 {
		panic(fmt.Sprintf("exec: cluster size %d", virtual))
	}
	b := clusterBucket(virtual)
	if c, _ := cp.buckets[b].Get().(*mpc.Cluster); c != nil {
		return c.Resize(virtual)
	}
	capacity := virtual
	if b <= clusterPrealloc {
		// Build the bucket's full capacity up front so this cluster can
		// serve any size in its bucket without regrowing.
		capacity = 1 << b
	}
	return mpc.NewCluster(capacity).Resize(virtual)
}

// Put parks a cluster for reuse. The caller must not touch it afterwards.
func (cp *ClusterPool) Put(c *mpc.Cluster) {
	if c == nil {
		return
	}
	// Release fragments before parking: a pooled cluster must not pin the
	// run's delivered data (which can dwarf the cluster itself) until the
	// next Get happens to clear it.
	c.Reset()
	cp.buckets[clusterBucket(c.Capacity())].Put(c)
}

// sharedClusters serves every Run/RunPipeline without an explicit
// Config.Clusters pool.
var sharedClusters ClusterPool
