// Deterministic fault injection for the communication/compute simulator.
//
// Faults lets robustness tests drive every serving degradation path —
// torn communication rounds, failed local compute, delayed workers — from a
// seed instead of sleeps: each decision is a pure hash of (seed, stream,
// event index), so a given seed produces the same fault schedule on every
// run, under -race, at any GOMAXPROCS. Production paths pay one nil check.
package mpc

import (
	"errors"
	"sync/atomic"

	"repro/internal/hashing"
)

// Typed injected-fault errors. The executor treats them as recoverable
// degradations (replay the round or re-run the failed servers, within the
// retry budget) — unlike router-contract violations, which remain panics.
var (
	// ErrTornRound reports a communication round in which only a prefix of
	// the send parts arrived. Under the sharded engine the round is
	// transactional: the staged prefix is discarded wholesale and receiver
	// fragments are bit-identical to their pre-round state, so the round
	// can simply be re-driven (see Cluster.MarkReplay). The legacy channel
	// engine delivers the prefix directly; there the cluster must be Reset
	// (or discarded) before reuse.
	ErrTornRound = errors.New("mpc: torn communication round (injected fault)")
	// ErrComputeFailed reports a server whose local-computation phase
	// failed; the round's output is incomplete until the failed servers
	// are re-run.
	ErrComputeFailed = errors.New("mpc: local compute failed (injected fault)")
)

// Fault decision streams: each fault family hashes its events in its own
// stream so enabling one family never perturbs another's schedule.
const (
	streamTorn uint64 = 0x746f726e // "torn"
	streamComp uint64 = 0x636f6d70 // "comp"
	streamStrg uint64 = 0x73747267 // "strg"
)

// Faults is a seeded fault-injection schedule threaded through exec.Config
// into the cluster. The zero value (and a nil *Faults) injects nothing.
// Probabilities are per event: per communication round for TornRound, per
// (compute phase, server) for ComputeFail, per routed send part for
// Straggler. Decisions are deterministic in (Seed, event index); event
// indexes advance on the cluster's own round/compute counters, so a
// sequential run replays identically regardless of scheduling.
//
// Every event additionally carries an attempt dimension: when the executor
// re-drives a torn round or re-runs failed servers, the cluster keeps the
// same round/phase number and advances the attempt (see Cluster.MarkReplay),
// so a retry draws a fresh decision instead of deterministically re-hitting
// the same injected event. Attempt 1 hashes exactly as the pre-attempt
// schedule did, so existing seeds fault identically on first tries; the
// WouldXxxAttempt predicates let tests construct multi-fault scenarios
// (e.g. "round 2 tears on attempts 1 and 2, heals on 3") directly instead
// of seed-searching.
//
// One Faults value must not be shared by concurrent executions: the event
// counters are atomic, but interleaving would make event indexes — and so
// the fault schedule — depend on scheduling order.
type Faults struct {
	// Seed pins the schedule; equal seeds and equal call sequences fault
	// identically.
	Seed uint64
	// TornRound is the probability a communication round tears: only a
	// prefix of its send parts is delivered and the round returns
	// ErrTornRound.
	TornRound float64
	// ComputeFail is the probability one server's local compute phase
	// fails, failing the execution with ErrComputeFailed.
	ComputeFail float64
	// Straggler is the probability a route worker stalls at a send-part
	// checkpoint, invoking OnStraggle before routing the part. With a nil
	// OnStraggle it is a no-op: the hook is the delay, so tests block in it
	// (e.g. until a context is canceled) instead of sleeping.
	Straggler float64
	// OnStraggle is called synchronously at each straggling checkpoint.
	OnStraggle func()

	rounds   atomic.Uint64
	computes atomic.Uint64
}

// chance returns the deterministic decision for one event.
func (f *Faults) chance(stream, event uint64, p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	h := hashing.Mix64(f.Seed ^ hashing.Mix64(stream) ^ hashing.Mix64(event))
	return float64(h>>11)/float64(uint64(1)<<53) < p
}

// nextRound advances and returns the communication-round counter.
func (f *Faults) nextRound() uint64 { return f.rounds.Add(1) }

// nextComputePhase advances and returns the compute-phase counter.
func (f *Faults) nextComputePhase() uint64 { return f.computes.Add(1) }

// attemptEvent folds the attempt dimension into an event index. Attempt 1
// (and 0, for callers that don't track attempts) maps to the base event
// itself, so first-try schedules are identical to the pre-attempt ones;
// later attempts re-mix the event so each retry draws an independent
// decision.
func attemptEvent(event, attempt uint64) uint64 {
	if attempt <= 1 {
		return event
	}
	return hashing.Mix64(event ^ hashing.Mix64(attempt))
}

// WouldTearRound reports whether the first attempt of communication round
// number `round` (1-based, in cluster call order) tears under this
// schedule. Equivalent to WouldTearRoundAttempt(round, 1).
func (f *Faults) WouldTearRound(round uint64) bool {
	return f.WouldTearRoundAttempt(round, 1)
}

// WouldTearRoundAttempt reports whether attempt number `attempt` (1-based)
// of communication round `round` tears under this schedule. A replayed
// round keeps its round number and advances the attempt, so tests compose
// scenarios like "round 2 tears twice, then heals" by checking attempts
// 1..3 directly.
func (f *Faults) WouldTearRoundAttempt(round, attempt uint64) bool {
	return f.chance(streamTorn, attemptEvent(round, attempt), f.TornRound)
}

// WouldFailCompute reports whether the given server fails on the first
// attempt of compute phase number `phase` (1-based, in cluster call order).
// Equivalent to WouldFailComputeAttempt(phase, 1, server).
func (f *Faults) WouldFailCompute(phase uint64, server int) bool {
	return f.WouldFailComputeAttempt(phase, 1, server)
}

// WouldFailComputeAttempt reports whether the given server fails on attempt
// number `attempt` (1-based) of compute phase `phase`. Re-running the
// failed servers of a phase advances the attempt, never the phase number.
func (f *Faults) WouldFailComputeAttempt(phase, attempt uint64, server int) bool {
	return f.chance(streamComp, attemptEvent(phase<<20^uint64(server), attempt), f.ComputeFail)
}

// WouldStraggle reports whether part index `part` of the first attempt of
// communication round `round` stalls at its checkpoint. Equivalent to
// WouldStraggleAttempt(round, 1, part).
func (f *Faults) WouldStraggle(round uint64, part int) bool {
	return f.WouldStraggleAttempt(round, 1, part)
}

// WouldStraggleAttempt reports whether part index `part` of attempt number
// `attempt` of communication round `round` stalls at its checkpoint.
func (f *Faults) WouldStraggleAttempt(round, attempt uint64, part int) bool {
	return f.chance(streamStrg, attemptEvent(round<<20^uint64(part), attempt), f.Straggler)
}
