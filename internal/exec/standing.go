package exec

import (
	"fmt"

	"repro/internal/data"
	"repro/internal/mpc"
	"repro/internal/query"
)

// Standing is the incremental counterpart of Run for a one-round plan: it
// executes the plan's communication and local phases once to seed resident
// per-server state, then maintains the result under single-tuple deltas.
// ApplyOp routes one inserted or deleted tuple through the plan's (frozen,
// deterministic) router to exactly the virtual servers a full execution
// would deliver it to, joins it against each server's resident fragments
// of the *other* atoms, and folds the resulting derivations — positive for
// inserts, negative for deletes — into a counted output fragment. An
// advance therefore costs O(|delta| · matched derivations) instead of the
// full-database routing a cache-hit Run pays.
//
// Correctness rests on three invariants of this repository's plans: every
// strategy's local phase is the natural join of the server's received
// fragments (so {t} ⋈ residents is exactly the server's output delta);
// queries have no self-joins (so a delta tuple never joins with itself and
// the remaining atoms' fragments are unaffected by its own insertion); and
// routers are frozen at plan time (so a delete revisits precisely the
// servers its insert populated, making counting-based retraction exact).
//
// A Standing is not safe for concurrent use; callers serialize ApplyOp,
// Flush, and Result (core.StandingQuery holds a handle mutex).
type Standing struct {
	plan   *PhysicalPlan
	q      *query.Query
	router mpc.Router

	layout    *mpc.ResidentLayout
	residents []*mpc.Resident
	atoms     map[string]*deltaAtom
	counted   *mpc.Counted

	// touched snapshots, per advance batch, the derivation count each
	// output tuple had when the batch first touched it; Flush diffs the
	// snapshot against the current counts so a tuple inserted and deleted
	// within one batch reports neither added nor removed.
	touched map[data.Key]touchEntry

	// dst, cur, next are routing/join scratch reused across ops.
	dst       []int
	cur, next []data.Tuple

	routedTuples int64
	routedBits   int64
	derivations  int64
}

type touchEntry struct {
	start int64
	t     data.Tuple
}

// deltaAtom is the compiled per-relation delta program: when a tuple of
// this atom's relation changes, steps extends it through the remaining
// atoms in a fixed greedy order, probing one resident index per step.
type deltaAtom struct {
	atom query.Atom
	bits int64 // BitsPerTuple of the relation, for load accounting
	// steps covers every other atom exactly once.
	steps []deltaStep
}

type deltaStep struct {
	// kind is the resident index to probe (its positions ascending).
	kind int
	// probeVars are the query variables supplying the probe key, aligned
	// with the kind's positions.
	probeVars []int
	// atomVars is the probed atom's variable list; matched tuples bind
	// them (bound positions rebind the same value — the index key already
	// guaranteed equality).
	atomVars []int
}

// NewStanding seeds standing state for plan over db: one pooled
// communication round distributes the query's relations, each server's
// fragments become resident hash indexes, and the plan's local phase runs
// once to seed the counted output. The cluster is returned to the pool
// before NewStanding returns — resident state lives in the Standing, so
// the pool keeps serving ordinary runs. db must not mutate during the seed —
// pass an immutable snapshot epoch (data.Database.Snapshot) or otherwise
// exclude Apply — and the plan must be the same single-round, Local-bearing
// plan the engine would execute for q. The seed's round and compute phase
// recover injected faults exactly as Run does, within cfg.Retry's budget.
func NewStanding(plan *PhysicalPlan, q *query.Query, db *data.Database, cfg Config) (*Standing, error) {
	if plan.Local == nil {
		return nil, fmt.Errorf("exec: standing: %s plan has no local phase", plan.Strategy)
	}
	s := &Standing{
		plan:    plan,
		q:       q,
		router:  mpc.SenderRouter(plan.Router),
		layout:  &mpc.ResidentLayout{},
		atoms:   make(map[string]*deltaAtom, q.NumAtoms()),
		counted: mpc.NewCounted(),
		touched: make(map[data.Key]touchEntry),
	}
	s.compile(db)

	if err := cfg.ctxErr(); err != nil {
		return nil, err
	}
	pool := cfg.Clusters
	if pool == nil {
		pool = &sharedClusters
	}
	cluster := pool.Get(plan.Virtual)
	cfg.arm(cluster)
	rt := newRetrier(&cfg, cluster)
	rels := make([]*data.Relation, 0, q.NumAtoms())
	for _, a := range q.Atoms {
		rels = append(rels, db.MustGet(a.Name))
	}
	err := rt.driveRound(nil, func() error {
		return cluster.RoundRelations(plan.Router, rels...)
	})
	if err != nil {
		pool.Put(cluster)
		if cfg.recoverable(err) {
			return nil, err
		}
		panic(fmt.Sprintf("exec: standing: %s routing failed: %v", plan.Strategy, err))
	}
	if err := cfg.ctxErr(); err != nil {
		pool.Put(cluster)
		return nil, err
	}
	// Seed the counted output from the raw per-server computation: every
	// server's derivations count +1, so answers derived on several servers
	// (overlapping §4.2 bin combinations) carry their true multiplicity
	// and later retractions retire them one derivation at a time.
	outs := make([][]data.Tuple, plan.Virtual)
	if err := rt.driveCompute("standing: "+plan.Strategy, outs, plan.Local); err != nil {
		pool.Put(cluster)
		return nil, err
	}
	out := appendOuts(nil, outs)
	for _, t := range out {
		s.counted.Add(t, 1)
		s.derivations++
	}
	// Freeze each server's fragments as resident indexes.
	s.residents = make([]*mpc.Resident, plan.Virtual)
	for i, sv := range cluster.Servers {
		res := mpc.NewResident(s.layout)
		for _, a := range q.Atoms {
			frag := sv.Fragment(a.Name)
			if frag == nil {
				continue
			}
			frag.Each(func(_ int, t data.Tuple) bool {
				res.Insert(a.Name, t)
				return true
			})
		}
		s.residents[i] = res
	}
	pool.Put(cluster)
	return s, nil
}

// compile builds the per-atom delta programs and the shared index layout:
// for each atom as the delta source, a greedy extension order over the
// remaining atoms (most bound variables first, mirroring join.planOrder's
// preference for connected extensions), each step registering the index
// (relation, bound positions) it will probe.
func (s *Standing) compile(db *data.Database) {
	for j, atom := range s.q.Atoms {
		da := &deltaAtom{atom: atom, bits: db.MustGet(atom.Name).BitsPerTuple()}
		bound := make(map[int]bool, s.q.NumVars())
		for _, v := range atom.Vars {
			bound[v] = true
		}
		used := make([]bool, s.q.NumAtoms())
		used[j] = true
		for range s.q.Atoms[1:] {
			best, bestShared := -1, -1
			for t := range s.q.Atoms {
				if used[t] {
					continue
				}
				shared := 0
				for _, v := range s.q.Atoms[t].Vars {
					if bound[v] {
						shared++
					}
				}
				if shared > bestShared {
					best, bestShared = t, shared
				}
			}
			target := s.q.Atoms[best]
			used[best] = true
			var pos, probeVars []int
			for p, v := range target.Vars {
				if bound[v] {
					pos = append(pos, p)
					probeVars = append(probeVars, v)
				}
			}
			kind := s.layout.AddIndex(target.Name, pos)
			da.steps = append(da.steps, deltaStep{kind: kind, probeVars: probeVars, atomVars: target.Vars})
			for _, v := range target.Vars {
				bound[v] = true
			}
		}
		s.atoms[atom.Name] = da
	}
}

// ApplyOp folds one applied database operation into the standing state: a
// tuple of rel inserted (insert true) or deleted. Operations must be fed
// in the order Database.Apply performed them. Tuples of relations outside
// the query are ignored for free. The returned error reports a resident
// inconsistency (a delete routed to a server that never received the
// insert) — impossible under a frozen router, so callers treat it as a
// signal to rebuild from scratch rather than a recoverable condition.
func (s *Standing) ApplyOp(rel string, vals []int64, insert bool) error {
	da := s.atoms[rel]
	if da == nil {
		return nil
	}
	t := data.Tuple(vals)
	s.dst = s.router.Destinations(rel, t, s.dst[:0])
	s.routedTuples += int64(len(s.dst))
	s.routedBits += da.bits * int64(len(s.dst))
	for _, d := range s.dst {
		if d < 0 || d >= len(s.residents) {
			return fmt.Errorf("exec: standing: %s router sent %s%v to server %d of %d",
				s.plan.Strategy, rel, t, d, len(s.residents))
		}
		res := s.residents[d]
		if insert {
			s.deltaJoin(res, da, t, +1)
			res.Insert(rel, t)
		} else {
			if !res.Delete(rel, t) {
				return fmt.Errorf("exec: standing: %s: delete of %s%v missing from server %d's resident fragment",
					s.plan.Strategy, rel, t, d)
			}
			s.deltaJoin(res, da, t, -1)
		}
	}
	return nil
}

// deltaJoin computes {t} ⋈ (the server's resident fragments of every other
// atom) and folds each derivation into the counted output with the given
// sign. Since no atom repeats a variable and there are no self-joins, the
// extension is a pure index-nested-loop over the compiled steps.
func (s *Standing) deltaJoin(res *mpc.Resident, da *deltaAtom, t data.Tuple, sign int64) {
	k := s.q.NumVars()
	s.cur = s.cur[:0]
	b := make(data.Tuple, k)
	for p, v := range da.atom.Vars {
		b[v] = t[p]
	}
	s.cur = append(s.cur, b)
	probe := make(data.Tuple, 0, k)
	for _, step := range da.steps {
		s.next = s.next[:0]
		for _, b := range s.cur {
			probe = probe[:0]
			for _, v := range step.probeVars {
				probe = append(probe, b[v])
			}
			for _, match := range res.Probe(step.kind, data.KeyOf(probe)) {
				nb := append(data.Tuple(nil), b...)
				for p, v := range step.atomVars {
					nb[v] = match[p]
				}
				s.next = append(s.next, nb)
			}
		}
		s.cur, s.next = s.next, s.cur
		if len(s.cur) == 0 {
			return
		}
	}
	for _, out := range s.cur {
		key := data.KeyOf(out)
		if _, seen := s.touched[key]; !seen {
			s.touched[key] = touchEntry{start: s.counted.Count(key), t: append(data.Tuple(nil), out...)}
		}
		s.counted.Add(out, sign)
		s.derivations += sign
	}
}

// Flush closes the current advance batch and returns its net result
// delta: tuples that became live (added) and tuples that were retracted
// (removed) since the previous Flush, in unspecified order. Tuples whose
// liveness round-tripped within the batch appear in neither.
func (s *Standing) Flush() (added, removed []data.Tuple) {
	for key, e := range s.touched {
		now := s.counted.Count(key)
		switch {
		case e.start == 0 && now > 0:
			added = append(added, e.t)
		case e.start > 0 && now == 0:
			removed = append(removed, e.t)
		}
	}
	clear(s.touched)
	return added, removed
}

// Result returns the materialized standing result: the distinct tuples
// with a positive derivation count. The slice and its rows are live
// internal storage — read-only, valid until the next ApplyOp.
func (s *Standing) Result() []data.Tuple { return s.counted.Tuples() }

// Counted exposes the counted output fragment (read-only) so owners can
// diff two standings across a reseed.
func (s *Standing) Counted() *mpc.Counted { return s.counted }

// StandingLoad reports cumulative incremental-maintenance work.
type StandingLoad struct {
	// RoutedTuples/RoutedBits count delta tuples delivered to servers
	// (each destination counted once, mirroring the model's received-load
	// accounting).
	RoutedTuples int64
	RoutedBits   int64
	// Derivations is the current total derivation count (Σ counts).
	Derivations int64
	// ResidentTuples sums the per-server resident fragment sizes — the
	// state the standing query keeps live between advances.
	ResidentTuples int64
}

// Load returns the standing query's cumulative load counters.
func (s *Standing) Load() StandingLoad {
	l := StandingLoad{
		RoutedTuples: s.routedTuples,
		RoutedBits:   s.routedBits,
		Derivations:  s.derivations,
	}
	for _, r := range s.residents {
		l.ResidentTuples += r.Tuples()
	}
	return l
}
