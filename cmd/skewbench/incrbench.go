package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"repro"
	"repro/internal/data"
)

// IncrBench is the committed BENCH_incr.json baseline for incremental
// standing-query evaluation: StandingQuery.Advance after a small delta
// versus a full cache-hit Session.Exec on the same database. A cache-hit
// Exec re-routes the query's relations in full every call; an advance
// routes only the delta's tuples through the same frozen router into
// resident per-server state, so its cost scales with |delta| and stays
// flat as the database (and any filler sharing it) grows.
type IncrBench struct {
	Instance string    `json:"instance"`
	GoArch   string    `json:"goarch"`
	NumCPU   int       `json:"num_cpu"`
	Rows     []IncrRow `json:"rows"`
}

// IncrRow is one (database size, delta size) point.
type IncrRow struct {
	// FillerTuples is the size of the unrelated relation sharing the
	// database; the queried relations stay fixed.
	FillerTuples int `json:"filler_tuples"`
	// DeltaOps is the operation count of the delta each advance folds in
	// (half matched insert quads deriving answers, half their deletes, so
	// the database is unchanged across iterations).
	DeltaOps int `json:"delta_ops"`
	// ApplyAdvanceNs is one Database.Apply of the delta plus the
	// StandingQuery.Advance folding it into the materialized result.
	ApplyAdvanceNs float64 `json:"apply_advance_ns"`
	// ExecHitNs is a full cache-hit Session.Exec on the same database —
	// the cost of answering by re-execution instead.
	ExecHitNs float64 `json:"exec_hit_ns"`
	// Speedup is ExecHitNs / ApplyAdvanceNs.
	Speedup float64 `json:"speedup"`
}

// incrDelta builds an n-op delta over the queried relations that nets to
// zero: matched S1/S2 insert pairs on fresh join values (each deriving one
// answer) followed by their deletes (retracting it), so repeated applies
// leave the database unchanged while every op routes and joins for real.
func incrDelta(n int) *repro.Delta {
	d := repro.NewDelta()
	// Fresh values above the generated data's typical range, below the
	// declared domain (1<<20).
	base := int64(1<<20 - 4*int64(n) - 7)
	ops := 0
	for i := int64(0); ops+4 <= n; i++ {
		a, b, z := base+4*i, base+4*i+1, base+4*i+2
		d.Insert("S1", a, z).Insert("S2", b, z)
		d.Delete("S1", a, z).Delete("S2", b, z)
		ops += 4
	}
	for i := int64(0); ops < n; i++ {
		v := base - 8 - 2*i
		d.Insert("S1", v, v).Delete("S1", v, v)
		ops += 2
	}
	return d
}

// runIncrBench measures advance-versus-reexecute across database and delta
// sizes and writes the JSON baseline.
func runIncrBench(path string) error {
	const (
		p     = 16
		qrels = 2000
	)
	fillers := []int{0, 50_000, 200_000, 800_000}
	deltas := []int{2, 64, 1000}
	out := IncrBench{
		Instance: fmt.Sprintf("join2 matchings m=%d p=%d seed=1; net-zero deltas on the queried relations; filler relation of growing size sharing the database", qrels, p),
		GoArch:   runtime.GOARCH,
		NumCPU:   runtime.NumCPU(),
	}
	q := repro.MustParseQuery("q(x,y,z) = S1(x,z), S2(y,z)")
	ctx := context.Background()

	for _, fill := range fillers {
		db := repro.NewDatabase()
		db.Put(repro.MatchingRelation("S1", 2, qrels, 1<<20, 1))
		db.Put(repro.MatchingRelation("S2", 2, qrels, 1<<20, 2))
		filler := data.NewRelation("F", 2, 1<<30)
		for i := 0; i < fill; i++ {
			filler.Add(int64(i), int64(i)+1)
		}
		db.Put(filler)

		s, err := repro.Open(repro.Config{P: p, Seed: 1})
		if err != nil {
			return err
		}
		// Warm: plan cached, clusters pooled, content sums maintained.
		for i := 0; i < 2; i++ {
			if _, err := s.Exec(ctx, q, db); err != nil {
				return err
			}
		}
		hit := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := s.Exec(ctx, q, db); err != nil {
					b.Fatal(err)
				}
			}
		})

		h, err := s.Standing(ctx, q, db)
		if err != nil {
			return err
		}
		for _, n := range deltas {
			d := incrDelta(n)
			adv := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := db.Apply(d); err != nil {
						b.Fatal(err)
					}
					if _, err := h.Advance(ctx); err != nil {
						b.Fatal(err)
					}
				}
			})
			if st := h.Stats(); st.Reseeds != 0 {
				return fmt.Errorf("incr bench advances reseeded (%d): measurements are not incremental", st.Reseeds)
			}
			row := IncrRow{
				FillerTuples:   fill,
				DeltaOps:       n,
				ApplyAdvanceNs: float64(adv.NsPerOp()),
				ExecHitNs:      float64(hit.NsPerOp()),
			}
			row.Speedup = row.ExecHitNs / row.ApplyAdvanceNs
			out.Rows = append(out.Rows, row)
		}
		h.Close()
	}

	blob, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("incr baseline written to %s\n%s", path, blob)
	return nil
}
