// Command skewlint is the repository's invariant multichecker: it runs the
// custom analyzers in internal/lint (nodeterminismbreak, noalloc, ctxflow,
// scratchescape, errwrap) plus the standard-analyzer ports (shadow,
// copylocks, unusedwrite, nilness) over go list package patterns.
//
// Standalone (the CI entry point):
//
//	go run ./cmd/skewlint ./...
//	go run ./cmd/skewlint -only noalloc,nodeterminismbreak ./internal/mpc
//	go run ./cmd/skewlint -list
//
// As a vet tool (unitchecker protocol — cmd/go invokes the binary once per
// package with a JSON config file):
//
//	go build -o /tmp/skewlint ./cmd/skewlint
//	go vet -vettool=/tmp/skewlint ./...
//
// Exit status: 0 clean, 1 findings, 2 operational error. Suppressions are
// //skewlint:allow directives in the source (see internal/lint).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	// The go vet driver probes tools with -V=full before anything else and
	// then invokes them with a single *.cfg argument.
	if len(os.Args) == 2 && os.Args[1] == "-V=full" {
		fmt.Println("skewlint version v1.0.0")
		return
	}
	// The driver also probes -flags for the tool's flag schema; we expose
	// none in vet mode.
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(unitcheck(os.Args[1]))
	}

	var (
		listFlag = flag.Bool("list", false, "list analyzers and exit")
		onlyFlag = flag.String("only", "", "comma-separated analyzer names to run (default: all)")
		dirFlag  = flag.String("C", ".", "directory to resolve patterns in (module root)")
	)
	flag.Parse()

	if *listFlag {
		for _, a := range lint.All() {
			doc := a.Doc
			if i := strings.IndexByte(doc, '\n'); i >= 0 {
				doc = doc[:i]
			}
			fmt.Printf("%-20s %s\n", a.Name, doc)
		}
		return
	}

	analyzers := lint.All()
	if *onlyFlag != "" {
		var err error
		if analyzers, err = lint.ByName(*onlyFlag); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.LoadAndRun(*dirFlag, analyzers, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	report(findings)
}

// report prints findings and exits non-zero when any exist.
func report(findings []lint.Finding) {
	if len(findings) == 0 {
		return
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	fmt.Fprintf(os.Stderr, "skewlint: %d finding(s)\n", len(findings))
	os.Exit(1)
}
