package skew

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/data"
	"repro/internal/lp"
	"repro/internal/query"
	"repro/internal/rational"
	"repro/internal/stats"
)

// This file implements the general skew-aware algorithm of §4.2 and
// Appendix D: tuples are partitioned by bin combinations
// B = (x, (β_j)_j) — a variable set x plus a factor-2 frequency bin per
// relation — and each bin combination runs the HyperCube algorithm with
// share exponents from the LP (11), over p^{1-α} virtual processors for
// each of the ≤ p^α heavy-hitter assignments in C'(B). The sets C'(B) are
// built inductively through "overweight" heavy hitters exactly as in
// Appendix D.

// binCombo is one bin combination B with its LP solution and C'(B).
type binCombo struct {
	x       query.VarSet
	xSorted []int
	bins    []int     // per atom: bin index (0 when x_j = ∅)
	betas   []float64 // per atom: bin exponent β_j

	// cprime maps the canonical key of an assignment h (values aligned
	// with xSorted) to the assignment.
	cprime map[string]data.Tuple

	alpha  float64         // log_p |C'(B)|
	lambda float64         // LP (11) optimum
	expo   map[int]float64 // share exponent e_i for each i ∈ V−x
	solved bool
}

func (b *binCombo) key() string {
	var sb strings.Builder
	for _, v := range b.xSorted {
		fmt.Fprintf(&sb, "v%d,", v)
	}
	sb.WriteByte('|')
	for _, bin := range b.bins {
		fmt.Fprintf(&sb, "%d,", bin)
	}
	return sb.String()
}

// GeneralConfig configures the §4.2 algorithm.
type GeneralConfig struct {
	P    int
	Seed uint64
	// MaxVirtual caps the total number of virtual servers (safety valve
	// for experiments); 0 means no cap.
	MaxVirtual int
	// OverweightFactor is the multiplier C in the overweight threshold
	// C·m_j/p^{β_j+Σe_i}. The paper uses C = N_bc (the number of bin
	// combinations) to prove |C'(B)| ≤ p; at laptop scales that makes the
	// threshold vacuous (nothing is ever overweight and the algorithm
	// degenerates to plain HC), so the default is the practical C = 1,
	// which preserves correctness (coverage never depends on C) and lets
	// the mechanism engage. Set UsePaperNbc for the paper-faithful value.
	OverweightFactor float64
	// UsePaperNbc selects C = N_bc, overriding OverweightFactor.
	UsePaperNbc bool
	// SkipJoin measures routing loads only (no local join, empty Output).
	SkipJoin bool
}

// ComboLoad reports one bin combination's realized load against its own
// LP optimum — the per-combination statement of Corollary 4.4.
type ComboLoad struct {
	Vars      []int
	Bins      []int
	CSize     int
	Lambda    float64
	MaxBits   int64
	Predicted float64 // p^λ(B) in bits
}

// GeneralResult reports a bin-combination run.
type GeneralResult struct {
	Output          []data.Tuple
	MaxVirtualBits  int64
	MaxPhysicalBits int64
	VirtualServers  int
	NumBinCombos    int
	// PredictedBits is max_B p^{λ(B)}: Theorem 4.6 bounds the load by this
	// times log^{O(1)} p.
	PredictedBits float64
	// ByCombo breaks the load down per bin combination (Corollary 4.4).
	ByCombo []ComboLoad
}

// generalState carries everything the construction needs.
type generalState struct {
	q   *query.Query
	db  *data.Database
	p   int
	st  map[string]*stats.RelationStats
	nbc float64 // the N_bc multiplier in the overweight threshold

	// varPos[j] maps variable index → attribute position in atom j (-1 if
	// the variable does not occur in the atom).
	varPos [][]int

	combos map[string]*binCombo
}

// RunGeneral executes the general skew-aware algorithm for q over db.
func RunGeneral(q *query.Query, db *data.Database, cfg GeneralConfig) GeneralResult {
	return PlanGeneral(q, db, cfg).Execute(db)
}

// PlanGeneral runs the Appendix-D bin-combination construction for q over
// db and lowers the layout to a reusable PhysicalPlan. Statistics are
// frozen at plan time, so the plan stays valid while (q, db, p) do.
func PlanGeneral(q *query.Query, db *data.Database, cfg GeneralConfig) *GeneralPlan {
	if cfg.P < 2 {
		panic("skew: RunGeneral needs P >= 2")
	}
	gs := newGeneralState(q, db, cfg.P)
	gs.applyOverweightFactor(cfg)
	gs.buildCombos()
	return gs.plan(cfg)
}

// applyOverweightFactor resolves the overweight multiplier from cfg: the
// paper-faithful N_bc, an explicit factor, or the practical default 1.
func (gs *generalState) applyOverweightFactor(cfg GeneralConfig) {
	switch {
	case cfg.UsePaperNbc:
		// keep gs.nbc as computed
	case cfg.OverweightFactor > 0:
		gs.nbc = cfg.OverweightFactor
	default:
		gs.nbc = 1
	}
}

func newGeneralState(q *query.Query, db *data.Database, p int) *generalState {
	gs := &generalState{
		q:      q,
		db:     db,
		p:      p,
		st:     make(map[string]*stats.RelationStats),
		combos: make(map[string]*binCombo),
	}
	for _, a := range q.Atoms {
		gs.st[a.Name] = stats.Collect(db.MustGet(a.Name), p)
	}
	gs.varPos = make([][]int, q.NumAtoms())
	for j, a := range q.Atoms {
		gs.varPos[j] = make([]int, q.NumVars())
		for i := range gs.varPos[j] {
			gs.varPos[j][i] = -1
		}
		for pos, v := range a.Vars {
			gs.varPos[j][v] = pos
		}
	}
	// N_bc: an a-priori bound on the number of bin combinations, used in
	// the overweight threshold. Σ over variable sets x of
	// NumBins^{#relations touched}; this is the log^{O(1)} p quantity of
	// §4.2 (a conservative choice only loosens the load bound, never
	// correctness).
	nb := float64(stats.NumBins(p))
	total := 0.0
	for mask := 0; mask < 1<<q.NumVars(); mask++ {
		touched := 0
		for j := range q.Atoms {
			for _, v := range q.Atoms[j].Vars {
				if mask&(1<<v) != 0 {
					touched++
					break
				}
			}
		}
		total += math.Pow(nb, float64(touched))
	}
	gs.nbc = total
	return gs
}

// atomProj projects an assignment h (values over xSorted) onto the
// positions of atom j, returning the attribute positions and values of
// x_j = x ∩ vars(S_j) in attribute order. ok is false when x_j = ∅.
func (gs *generalState) atomProj(j int, xSorted []int, h data.Tuple) (attrs []int, vals data.Tuple, ok bool) {
	for idx, v := range xSorted {
		if pos := gs.varPos[j][v]; pos >= 0 {
			attrs = append(attrs, pos)
			vals = append(vals, h[idx])
		}
	}
	if len(attrs) == 0 {
		return nil, nil, false
	}
	// Sort by attribute position for canonical stats lookups.
	order := make([]int, len(attrs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return attrs[order[a]] < attrs[order[b]] })
	sa := make([]int, len(attrs))
	sv := make(data.Tuple, len(vals))
	for i, o := range order {
		sa[i] = attrs[o]
		sv[i] = vals[o]
	}
	return sa, sv, true
}

// comboFor returns (creating if needed) the bin combination that the
// assignment h to x belongs to, determined by the actual frequency bins of
// h's projections in each relation.
func (gs *generalState) comboFor(x query.VarSet, xSorted []int, h data.Tuple) *binCombo {
	l := gs.q.NumAtoms()
	bins := make([]int, l)
	betas := make([]float64, l)
	for j, a := range gs.q.Atoms {
		attrs, vals, ok := gs.atomProj(j, xSorted, h)
		if !ok {
			continue // x_j = ∅ → bin 0, β 0
		}
		rs := gs.st[a.Name]
		freq := rs.Freq(attrs, vals)
		var b int
		if freq == 0 {
			b = stats.NumBins(gs.p) // light (or absent): last bin
		} else {
			b = stats.BinOf(freq, rs.M, gs.p)
		}
		bins[j] = b
		betas[j] = stats.BinExponent(b, gs.p)
	}
	proto := &binCombo{x: x, xSorted: xSorted, bins: bins, betas: betas}
	key := proto.key()
	if existing, ok := gs.combos[key]; ok {
		return existing
	}
	proto.cprime = make(map[string]data.Tuple)
	gs.combos[key] = proto
	return proto
}

// solveLP solves LP (11) for B: minimize λ subject to
//
//	∀j: λ + Σ_{x_i ∈ vars(S_j)−x_j} e_i ≥ μ_j − β_j
//	Σ_{i ∈ V−x} e_i ≤ 1 − α,  e, λ ≥ 0
func (gs *generalState) solveLP(b *binCombo) {
	if b.solved {
		return
	}
	b.alpha = 0
	if n := len(b.cprime); n > 1 {
		b.alpha = math.Log(float64(n)) / math.Log(float64(gs.p))
	}
	free := make([]int, 0, gs.q.NumVars())
	for i := 0; i < gs.q.NumVars(); i++ {
		if !b.x.Contains(i) {
			free = append(free, i)
		}
	}
	idx := make(map[int]int, len(free))
	for fi, v := range free {
		idx[v] = fi
	}
	n := len(free) + 1 // e's then λ
	prob := lp.NewProblem(n)
	prob.Objective[n-1].SetInt64(1)

	budget := 1 - b.alpha
	if budget < 0 {
		budget = 0
	}
	sumRow := rational.NewVector(n)
	for fi := range free {
		sumRow[fi].SetInt64(1)
	}
	prob.AddConstraint(sumRow, lp.LE, rational.FromFloat(budget))

	logP := math.Log(float64(gs.p))
	for j, a := range gs.q.Atoms {
		rs := gs.st[a.Name]
		bits := float64(rs.Bits)
		if bits < 1 {
			bits = 1
		}
		mu := math.Log(bits) / logP
		row := rational.NewVector(n)
		for _, v := range a.Vars {
			if fi, ok := idx[v]; ok {
				row[fi].SetInt64(1)
			}
		}
		row[n-1].SetInt64(1)
		rhs := mu - b.betas[j]
		if rhs < 0 {
			rhs = 0
		}
		prob.AddConstraint(row, lp.GE, rational.FromFloat(rhs))
	}
	s := prob.Solve()
	if s.Status != lp.Optimal {
		panic("skew: bin LP " + s.Status.String())
	}
	b.expo = make(map[int]float64, len(free))
	for fi, v := range free {
		e, _ := s.X[fi].Float64()
		b.expo[v] = e
	}
	b.lambda, _ = s.X[n-1].Float64()
	b.solved = true
}

// overweightThreshold is the frequency above which a heavy hitter over
// attrs (extending x_j, with bin exponent β_j in B) is overweight for B:
// N_bc · m_j / p^{β_j + Σ_{i ∈ attrs−x_j} e_i^{(B)}}.
func (gs *generalState) overweightThreshold(b *binCombo, j int, extraVars []int) float64 {
	exp := b.betas[j]
	for _, v := range extraVars {
		exp += b.expo[v]
	}
	rs := gs.st[gs.q.Atoms[j].Name]
	return gs.nbc * float64(rs.M) / math.Pow(float64(gs.p), exp)
}

// buildCombos runs the inductive Appendix-D construction level by level.
func (gs *generalState) buildCombos() {
	// B∅.
	empty := gs.comboFor(query.NewVarSet(), nil, data.Tuple{})
	empty.cprime[""] = data.Tuple{}

	k := gs.q.NumVars()
	for level := 0; level < k; level++ {
		// Collect combos at this level; extensions land at strictly higher
		// levels so iteration over a snapshot is safe.
		var current []*binCombo
		for _, b := range gs.combos {
			if len(b.xSorted) == level && len(b.cprime) > 0 {
				current = append(current, b)
			}
		}
		sort.Slice(current, func(i, j int) bool { return current[i].key() < current[j].key() })
		for _, b := range current {
			gs.solveLP(b)
			gs.extend(b)
		}
	}
	// Solve remaining LPs (top-level combos generated but not yet solved).
	keys := make([]string, 0, len(gs.combos))
	for key := range gs.combos {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	for _, key := range keys {
		if b := gs.combos[key]; len(b.cprime) > 0 {
			gs.solveLP(b)
		}
	}
}

// extend finds, for every h' ∈ C'(B') and every relation S_j, the
// overweight heavy hitters of S_j extending h' and inserts the extended
// assignments into the C' of their bin combinations.
func (gs *generalState) extend(bPrime *binCombo) {
	q := gs.q
	for j, a := range q.Atoms {
		// Variables of S_j outside x': candidate extension sets y.
		var outside []int
		for _, v := range a.Vars {
			if !bPrime.x.Contains(v) {
				outside = append(outside, v)
			}
		}
		if len(outside) == 0 {
			continue
		}
		rs := gs.st[a.Name]
		for mask := 1; mask < 1<<len(outside); mask++ {
			var y []int
			for bit, v := range outside {
				if mask&(1<<bit) != 0 {
					y = append(y, v)
				}
			}
			// xNew = x' ∪ y; x_jNew positions within the atom.
			xNew := query.NewVarSet(append(append([]int(nil), bPrime.xSorted...), y...)...)
			xNewSorted := xNew.Sorted()
			attrs := make([]int, 0, len(xNewSorted))
			for _, v := range xNewSorted {
				if pos := gs.varPos[j][v]; pos >= 0 {
					attrs = append(attrs, pos)
				}
			}
			sort.Ints(attrs)
			hitters := rs.Heavy(attrs)
			if len(hitters) == 0 {
				continue
			}
			thresholdVars := y // attrs − x'_j corresponds to the new vars y
			for hKey, hPrime := range bPrime.cprime {
				_ = hKey
				// h' restricted to this atom, for the extension check.
				pAttrs, pVals, hasPrev := gs.atomProj(j, bPrime.xSorted, hPrime)
				threshold := gs.overweightThreshold(bPrime, j, thresholdVars)
				for _, hh := range hitters {
					vals := hh.Key.Tuple()
					if hasPrev && !consistentWith(attrs, vals, pAttrs, pVals) {
						continue
					}
					if float64(hh.Count) <= threshold {
						continue // not overweight
					}
					// Build the extended assignment h over xNew.
					h := make(data.Tuple, len(xNewSorted))
					for idx, v := range xNewSorted {
						if pos := gs.varPos[j][v]; pos >= 0 {
							// Value from the hitter.
							for ai, attr := range attrs {
								if attr == pos {
									h[idx] = vals[ai]
								}
							}
						} else {
							// Value from h' (v ∈ x' and not in S_j).
							for pi, pv := range bPrime.xSorted {
								if pv == v {
									h[idx] = hPrime[pi]
								}
							}
						}
					}
					combo := gs.comboFor(xNew, xNewSorted, h)
					combo.cprime[h.Key()] = h
				}
			}
		}
	}
}

// consistentWith checks that the hitter values (over attrs) agree with the
// previous assignment's values (over pAttrs ⊆ attrs).
func consistentWith(attrs []int, vals data.Tuple, pAttrs []int, pVals data.Tuple) bool {
	for pi, pa := range pAttrs {
		for ai, a := range attrs {
			if a == pa && vals[ai] != pVals[pi] {
				return false
			}
		}
	}
	return true
}
