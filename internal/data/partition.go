package data

// Skew-adaptive physical layout (heavy-hitter partitioned columns).
//
// A partitioned relation segregates the rows of its maintained heavy
// hitters on one attribute into contiguous per-value runs at the top of the
// column arrays, with the remaining light rows densely packed below them:
//
//	[ light rows | value v₁ run | value v₂ run | ... ]
//	0         LightEnd                              Rows
//
// Routers that classify tuples by a single attribute (the §4.1 skew join on
// z, a multi-round stage on its join key, the §4.2 block router on a bound
// variable) can then resolve one routing decision per heavy run and bulk-ship
// whole column spans, instead of paying a map lookup per tuple; light rows
// keep the dense per-tuple path. See mpc.SpanRouter for the routing side.
//
// The layout is maintained lazily: appends land past the covered prefix and
// leave the index valid (the uncovered tail routes per-tuple until the next
// rebuild), interior deletes below the covered prefix invalidate it, and
// Database.EnsurePartitioned rebuilds when the heavy set crossed the m/p
// threshold or the unpartitioned tail grew past a quarter of the relation.

import (
	"fmt"
	"sort"
)

// PartitionSpan is one contiguous run of rows sharing a heavy value on the
// partition attribute: rows [Start, End) all carry Value there.
type PartitionSpan struct {
	Value      int64
	Start, End int
}

// PartitionIndex describes the heavy-partition layout of a relation on one
// attribute. It is immutable once built: mutators replace or drop the whole
// index, so snapshot views can share the pointer with the master.
type PartitionIndex struct {
	// Attr is the partition attribute.
	Attr int
	// Threshold is the heavy-hitter cutoff the layout was built with
	// (a value is heavy when its count exceeds it — the paper's m/p).
	Threshold int64
	// Rows is the covered prefix: rows [0, Rows) obey the layout. Rows
	// appended after the build land at [Rows, Size()) in arrival order and
	// must be routed per-tuple.
	Rows int
	// LightEnd bounds the light region: rows [0, LightEnd) carry no heavy
	// value on Attr. Spans cover [LightEnd, Rows).
	LightEnd int
	// Spans lists the heavy runs in ascending Start (and ascending Value)
	// order, back to back: Spans[0].Start == LightEnd and
	// Spans[len-1].End == Rows.
	Spans []PartitionSpan

	byValue map[int64]int
}

// Span returns the heavy run of value v, if v was heavy at build time.
func (idx *PartitionIndex) Span(v int64) (PartitionSpan, bool) {
	si, ok := idx.byValue[v]
	if !ok {
		return PartitionSpan{}, false
	}
	return idx.Spans[si], true
}

// Partitions returns the relation's current heavy-partition index, or nil
// when the relation is unpartitioned (never built, or invalidated by an
// interior delete or a Sort). The index is immutable; on snapshot views it
// describes the view's frozen rows permanently.
func (r *Relation) Partitions() *PartitionIndex { return r.part }

// BuildPartitions physically reorders the relation into the heavy-partition
// layout on attribute attr — heavy values are those whose frequency exceeds
// threshold — and installs the resulting index. The reorder gathers every
// column onto fresh backing (published snapshot views keep their arrays),
// preserves nothing about row order beyond the layout contract, and leaves
// content-derived state (content sum, frequency maps) untouched; only the
// tuple index is rebuilt. Callers synchronize like any other mutation
// (Database.EnsurePartitioned does this under the serving write lock).
func (r *Relation) BuildPartitions(attr int, threshold int64) *PartitionIndex {
	if attr < 0 || attr >= r.Arity {
		panic(fmt.Sprintf("data: %s: partition attribute %d outside arity %d", r.Name, attr, r.Arity))
	}
	counts := r.AttrCounts(attr)
	if counts == nil {
		counts = make(map[int64]int64)
		for _, v := range r.cols[attr][:r.rows] {
			counts[v]++
		}
	}
	r.buildPartitionsFrom(attr, threshold, counts)
	return r.part
}

// buildPartitionsFrom is BuildPartitions with the attribute counts already
// in hand (EnsurePartitioned computes them for its drift check first).
func (r *Relation) buildPartitionsFrom(attr int, threshold int64, counts map[int64]int64) {
	heavy := make([]int64, 0, 16)
	for v, c := range counts {
		if c > threshold {
			heavy = append(heavy, v)
		}
	}
	sort.Slice(heavy, func(a, b int) bool { return heavy[a] < heavy[b] })

	idx := &PartitionIndex{Attr: attr, Threshold: threshold, Rows: r.rows}
	if len(heavy) == 0 {
		// Everything is light: the layout holds trivially, no reorder.
		idx.LightEnd = r.rows
		r.part = idx
		return
	}

	idx.byValue = make(map[int64]int, len(heavy))
	idx.Spans = make([]PartitionSpan, len(heavy))
	heavyRows := 0
	for si, v := range heavy {
		idx.byValue[v] = si
		heavyRows += int(counts[v])
	}
	idx.LightEnd = r.rows - heavyRows
	off := idx.LightEnd
	for si, v := range heavy {
		idx.Spans[si] = PartitionSpan{Value: v, Start: off, End: off + int(counts[v])}
		off = idx.Spans[si].End
	}

	// Destination permutation: light rows keep their relative order in
	// [0, LightEnd), each heavy row goes to the next free slot of its run.
	out := make([]int, r.rows)
	next := make([]int, len(heavy))
	for si := range idx.Spans {
		next[si] = idx.Spans[si].Start
	}
	lightNext := 0
	for i, v := range r.cols[attr][:r.rows] {
		if si, ok := idx.byValue[v]; ok {
			out[i] = next[si]
			next[si]++
		} else {
			out[i] = lightNext
			lightNext++
		}
	}

	// Gather every column onto fresh backing (columns are independent, so
	// wide relations gather in parallel). Published snapshot views keep the
	// old arrays untouched, exactly as in Sort.
	gatherColumns(r.cols, r.rows, out)
	r.frozen = 0
	r.gen++
	// Content sum and frequency maps are permutation-invariant; the tuple
	// index maps rows and must follow the permutation.
	if r.track.Load()&trackStats != 0 {
		for i := 0; i < r.rows; i++ {
			r.index[r.KeyAt(i)] = i
		}
	}
	r.part = idx
}

// gatherMinRows is the row count below which the per-column gather is not
// worth a goroutine per column.
const gatherMinRows = 1 << 15

// gatherColumns replaces each of the first `rows` entries of every column
// with fresh backing permuted by out (new[out[i]] = old[i]).
func gatherColumns(cols [][]int64, rows int, out []int) {
	gather := func(a int) {
		nc := make([]int64, rows)
		oc := cols[a][:rows]
		for i, o := range out {
			nc[o] = oc[i]
		}
		cols[a] = nc
	}
	if rows < gatherMinRows || len(cols) < 2 {
		for a := range cols {
			gather(a)
		}
		return
	}
	done := make(chan int, len(cols))
	for a := range cols {
		go func(a int) {
			gather(a)
			done <- a
		}(a)
	}
	for range cols {
		<-done
	}
}

// partitionTailMax is the denominator of the lazy-rebuild tail rule: once
// more than rows/partitionTailMax rows sit past the covered prefix, the
// per-tuple tail is deemed worth a rebuild.
const partitionTailMax = 4

// EnsurePartitioned lazily maintains the heavy-partition layout of the named
// relation on attribute attr for a p-server round (heavy threshold m/p). It
// is the serving entry point: cheap when the layout is current — one read
// lock and a generation check — and rebuilding under the write lock only
// when the relation is unpartitioned for attr, the maintained heavy set
// drifted across the threshold, or the unpartitioned tail outgrew a quarter
// of the relation. On snapshots it delegates to the mutable master (the
// snapshot itself is immutable; the rebuilt layout reaches the next epoch).
// It reports whether a rebuild happened.
func (db *Database) EnsurePartitioned(name string, attr, p int) bool {
	if db.parent != nil {
		return db.parent.EnsurePartitioned(name, attr, p)
	}
	if p < 1 {
		panic(fmt.Sprintf("data: EnsurePartitioned: p=%d", p))
	}
	db.mu.RLock()
	r := db.Relations[name]
	if r == nil {
		db.mu.RUnlock()
		return false
	}
	if attr < 0 || attr >= r.Arity {
		db.mu.RUnlock()
		panic(fmt.Sprintf("data: %s: partition attribute %d outside arity %d", name, attr, r.Arity))
	}
	current := r.part != nil && r.part.Attr == attr && r.partCheckedGen == r.gen
	db.mu.RUnlock()
	if current {
		return false
	}

	db.mu.Lock()
	defer db.mu.Unlock()
	r = db.Relations[name]
	if r == nil {
		return false
	}
	if r.part != nil && r.part.Attr == attr && r.partCheckedGen == r.gen {
		return false
	}
	threshold := int64(r.rows) / int64(p)
	counts := r.AttrCounts(attr)
	if counts == nil {
		counts = make(map[int64]int64)
		for _, v := range r.cols[attr][:r.rows] {
			counts[v]++
		}
	}
	if idx := r.part; idx != nil && idx.Attr == attr && partitionCurrent(idx, counts, threshold, r.rows) {
		r.partCheckedGen = r.gen
		return false
	}
	r.buildPartitionsFrom(attr, threshold, counts)
	r.partCheckedGen = r.gen
	return true
}

// partitionCurrent reports whether an existing index still matches the
// relation: the heavy set under the new threshold is exactly the span set,
// and the unpartitioned tail is small.
func partitionCurrent(idx *PartitionIndex, counts map[int64]int64, threshold int64, rows int) bool {
	tail := rows - idx.Rows
	if tail < 0 || tail*partitionTailMax > rows {
		return false
	}
	heavyNow := 0
	for v, c := range counts {
		if c > threshold {
			heavyNow++
			if _, ok := idx.byValue[v]; !ok {
				return false
			}
		}
	}
	return heavyNow == len(idx.Spans)
}
