// Triangle counting on a skewed graph — the workload that motivated
// one-round multiway algorithms (Suri & Vassilvitskii's "curse of the last
// reducer", cited as [11] in the paper). A power-law graph has celebrity
// nodes; edge-partitioned counting overloads whoever holds them, while the
// HyperCube algorithm with equal shares keeps every server at
// O(m/p^{1/3}) regardless of skew (Corollary 3.2 (ii)).
package main

import (
	"fmt"

	"repro"
)

func main() {
	const (
		edges    = 30000
		vertices = 1500
		p        = 64
	)
	// A power-law graph: source endpoints follow Zipf(1.5), so a few
	// celebrity nodes have very high out-degree. The triangle query C3
	// needs the same edge set under three atom names.
	q := repro.TriangleQuery()
	db := repro.NewDatabase()
	base := repro.SkewedGraphRelation("S1", edges, vertices, 1.5, 7)
	for _, name := range []string{"S1", "S2", "S3"} {
		r := base.Clone()
		r.Name = name
		db.Put(r)
	}

	fmt.Printf("graph: %d edges, zipf(1.5) out-degrees, p = %d servers\n\n", edges, p)

	// Skew-resilient HyperCube: p^{1/3} shares per vertex variable.
	hc := repro.RunHyperCube(q, db, repro.HyperCubeConfig{P: p, Seed: 1, EqualShares: true})
	fmt.Printf("HyperCube (equal shares %v):\n", hc.Shares)
	fmt.Printf("  triangles (as ordered C3 answers): %d\n", len(hc.Output))
	fmt.Printf("  max load: %d bits  (replication %.1fx)\n\n",
		hc.Loads.MaxBits, hc.Loads.Replication)

	// Baseline: hash-join-style shares that partition on one vertex only;
	// the celebrity node's edges pile onto a few servers.
	naive := repro.RunHyperCube(q, db, repro.HyperCubeConfig{P: p, Seed: 1, Shares: []int{p, 1, 1}})
	fmt.Printf("vertex-partitioned baseline (shares %v):\n", naive.Shares)
	fmt.Printf("  max load: %d bits\n\n", naive.Loads.MaxBits)

	fmt.Printf("skew penalty of the baseline: %.1fx more bits on the hottest server\n",
		float64(naive.Loads.MaxBits)/float64(hc.Loads.MaxBits))
}
